.PHONY: all build test fmt ci clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# Single gate run by CI and before every commit: formatting must be
# canonical (dune files; ocamlformat is not in the pinned toolchain),
# everything must build, and the full tier-1 suite must pass.
ci: fmt build test

clean:
	dune clean

.PHONY: all build test fmt smoke-serve smoke-pool smoke-chaos smoke-cluster smoke-flight smoke-paged smoke-tune smoke-migrate smoke-regress smoke-trace ci clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# Short serving smoke: 2 s of synthetic load through the continuous-
# batching scheduler, then the bench JSON is parsed back (the bench
# binary self-validates it and exits non-zero on malformed output).
smoke-serve: build
	dune exec bench/main.exe -- --serve --serve-duration 2 --json /tmp/bench.json
	@test -s /tmp/bench.json && echo "smoke-serve: /tmp/bench.json ok"

# Dispatch-overhead smoke (~2 s): persistent-pool vs spawn-per-call
# microbenchmark. The bench self-validates its JSON with
# Telemetry.Json_check and exits non-zero if the pool never reused a
# worker (which would mean every region silently fell back to spawning).
smoke-pool: build
	dune exec bench/main.exe -- dispatch --json /tmp/bench-pool.json
	@test -s /tmp/bench-pool.json && echo "smoke-pool: /tmp/bench-pool.json ok"

# Chaos smoke (~2 s): the serve loop under the default seeded fault
# plan (every fault-site class fires). The bench binary exits non-zero
# if any liveness/ledger/bit-identity invariant is violated, if no
# fault was actually injected, or if the bench JSON fails Json_check.
smoke-chaos: build
	dune exec bench/main.exe -- --chaos --json /tmp/bench-chaos.json
	@test -s /tmp/bench-chaos.json && echo "smoke-chaos: /tmp/bench-chaos.json ok"

# Cluster smoke (~3 s): a short multi-replica chaos run — 3 sharded
# replicas behind the router, replica 1 quarantined mid-run — followed
# by a disaggregated pass. The bench binary exits non-zero on any
# router-conservation violation (request lost/double-served, pool not
# drained fleet-wide, double KV release, identity mismatch); the grep
# insists the fleet SLO-burn counters actually made it into the JSON.
smoke-cluster: build
	dune exec bench/main.exe -- --chaos --replicas 3 --shards 2 --json /tmp/bench-cluster.json
	@grep -q '"fleet_slo_ttft_breaches"' /tmp/bench-cluster.json \
	  && grep -q '"fleet_slo_deadline_breaches"' /tmp/bench-cluster.json \
	  || { echo "smoke-cluster: fleet SLO counters missing from JSON"; exit 1; }
	dune exec bench/main.exe -- --chaos --replicas 2 --disaggregate --chaos-requests 16
	@echo "smoke-cluster: /tmp/bench-cluster.json ok"

# Flight-recorder smoke (~2 s): the chaos run again, this time with the
# recorder's dump directory armed. The default fault plan makes workers
# die, so the hardened failure paths must snapshot the per-thread rings
# into post-mortem dumps; `recorder check --require-fault` then insists
# every dump is well-formed trace JSON and at least one captured an
# injected-fault event.
smoke-flight: build
	rm -rf /tmp/parlooper-flight && mkdir -p /tmp/parlooper-flight
	PARLOOPER_DUMP_DIR=/tmp/parlooper-flight dune exec bench/main.exe -- --chaos --chaos-requests 12
	dune exec bin/parlooper_cli.exe -- recorder check /tmp/parlooper-flight --require-fault
	@echo "smoke-flight: /tmp/parlooper-flight dumps ok"

# Paged-KV smoke (~5 s): the "paged" experiment measures max concurrent
# width at a fixed arena and exits non-zero unless paged+prefix beats
# contiguous strictly and the trie recorded hits; then a paged serve run
# with speculative decoding and a shared system prompt (the grep insists
# prefix sharing actually happened — kv_prefix_hits lands in the JSON
# non-zero), and finally a paged chaos pass which exits non-zero on any
# leaked block (free-list + trie pins must equal the arena) or identity
# mismatch.
smoke-paged: build
	dune exec bench/main.exe -- paged --serve --paged --block-size 16 --num-blocks 128 --spec-decode 4 --sys-prompt 32 --serve-duration 2 --json /tmp/bench-paged.json
	@grep -q '"kv_prefix_hits":0[,}]' /tmp/bench-paged.json \
	  && { echo "smoke-paged: no prefix hits recorded in serve run"; exit 1; } \
	  || true
	@grep -q '"kv_prefix_hits"' /tmp/bench-paged.json \
	  || { echo "smoke-paged: kv_prefix_hits missing from JSON"; exit 1; }
	dune exec bench/main.exe -- --chaos --paged --spec-decode 4 --sys-prompt 32
	@echo "smoke-paged: /tmp/bench-paged.json ok"

# Failover smoke (~3 s): a 3-replica chaos run where replica 1 is
# hard-killed mid-run with sessions mid-decode, so its live KV state
# must migrate to the survivors (the quarantine drain path is not
# enough). The bench binary exits non-zero on any conservation
# violation, if the killed replica's ledger moved after the kill, if a
# migration vanished in transit, or if no migration completed (a run
# that proves nothing about failover); the greps insist the migration
# counters landed in the JSON and completed is non-zero. A paged pass
# with a shared prefix exercises the trie re-attach import path.
smoke-migrate: build
	dune exec bench/main.exe -- --chaos --replicas 3 --hard-kill --json /tmp/bench-migrate.json
	@grep -q '"migrations_completed"' /tmp/bench-migrate.json \
	  || { echo "smoke-migrate: migrations_completed missing from JSON"; exit 1; }
	@grep -q '"migrations_completed":0[,}]' /tmp/bench-migrate.json \
	  && { echo "smoke-migrate: no migration completed"; exit 1; } || true
	dune exec bench/main.exe -- --chaos --replicas 3 --hard-kill --paged --sys-prompt 12
	@echo "smoke-migrate: /tmp/bench-migrate.json ok"

# Tuner smoke (~5 s): first the "tune" experiment — exhaustive vs
# model-guided search on two GEMM shapes; the bench binary exits
# non-zero unless beam search matches the exhaustive top-1 within 2%
# while scoring under 10% of the spec space. Then a short serve run
# with the online per-shape spec cache on; the greps insist the
# tuner.cache counters made it into the bench JSON and that the cache
# actually served hits, tuned in the background, and hot-swapped at
# least one spec (all zero would mean the resolver hook never fired).
smoke-tune: build
	dune exec bench/main.exe -- tune --json /tmp/bench-tune.json
	dune exec bench/main.exe -- --serve --serve-duration 2 --online-tune --json /tmp/bench-tune-serve.json
	@for c in hits misses swaps tunes; do \
	  grep -q "\"tuner_cache_$$c\"" /tmp/bench-tune-serve.json \
	    || { echo "smoke-tune: tuner_cache_$$c missing from JSON"; exit 1; }; \
	  grep -q "\"tuner_cache_$$c\":0[,}]" /tmp/bench-tune-serve.json \
	    && { echo "smoke-tune: tuner_cache_$$c is zero"; exit 1; } || true; \
	done
	@echo "smoke-tune: /tmp/bench-tune.json ok"

# Perf-regression smoke (~10 s): rerun the recorder microbench and the
# serve-level chaos harness, then gate against the committed baseline
# (bench/baselines/smoke.json) with per-metric tolerances — exact match
# on correctness counters (violations, mismatched, numeric_errors),
# a 1.5x band on timing metrics, presence for the rest. The recorder
# bench itself also hard-fails if trace-lane emits cost more than 10%
# over dense-lane emits. Regenerate the baseline on an intentional
# perf change with:
#   dune exec bench/main.exe -- recorder --chaos --json bench/baselines/smoke.json
smoke-regress: build
	dune exec bench/main.exe -- recorder --chaos --compare bench/baselines/smoke.json
	@echo "smoke-regress: baseline bench/baselines/smoke.json held"

# Causal-tracing smoke (~3 s): a 3-replica disaggregated serve under
# tight deadlines with the tail sampler armed, then the worst retained
# TTFT exemplar must resolve to a complete causal timeline that reaches
# a decode span, and every dumped trace JSON must validate as a Chrome
# trace (recorder check).
smoke-trace: build
	rm -rf /tmp/parlooper-traces
	dune exec bin/parlooper_cli.exe -- serve --rate 60 --duration 2 --deadline-ms 30 --replicas 3 --disaggregate --trace-dir /tmp/parlooper-traces --trace-sample 8
	dune exec bin/parlooper_cli.exe -- trace worst --metric ttft --dir /tmp/parlooper-traces --require-decode > /tmp/parlooper-trace-worst.txt
	@grep -q "trace_end" /tmp/parlooper-trace-worst.txt \
	  || { echo "smoke-trace: worst trace has no terminal span"; exit 1; }
	dune exec bin/parlooper_cli.exe -- recorder check /tmp/parlooper-traces
	@echo "smoke-trace: /tmp/parlooper-traces ok"

# Single gate run by CI and before every commit: formatting must be
# canonical (dune files; ocamlformat is not in the pinned toolchain),
# everything must build, the full tier-1 suite must pass, the serving
# and pooled-dispatch paths must produce valid machine-readable output,
# a multi-replica chaos run with a quarantined replica must hold the
# router conservation invariants, a chaos run with the recorder
# armed must produce a validating post-mortem flight dump, and the
# paged-KV path must beat contiguous on width, share prefixes, and
# survive chaos without leaking a block, a hard-killed replica's live
# sessions must migrate and finish bit-identically on the survivors,
# and the model-guided tuner must match exhaustive search cheaply while
# the online spec cache demonstrably serves, tunes, and hot-swaps in
# the serve path, the committed perf baseline must hold within its
# per-metric tolerances, and a tail-sampled serve run must yield a
# complete causal timeline for its worst retained TTFT exemplar.
ci: fmt build test smoke-serve smoke-pool smoke-chaos smoke-cluster smoke-flight smoke-paged smoke-migrate smoke-tune smoke-regress smoke-trace

clean:
	dune clean

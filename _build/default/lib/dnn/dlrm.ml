type config = {
  dense_features : int;
  num_tables : int;
  rows_per_table : int;
  embed_dim : int;
  bottom : int list;
  top : int list;
}

let default_config =
  {
    dense_features = 16;
    num_tables = 8;
    rows_per_table = 64;
    embed_dim = 16;
    bottom = [ 32 ];
    top = [ 64; 32 ];
  }

let interaction_features cfg =
  let v = cfg.num_tables + 1 in
  cfg.embed_dim + (v * (v - 1) / 2)

type t = {
  cfg : config;
  tables : Tensor.t array;  (** [rows x embed_dim] each *)
  bottom_mlp : Fc.t list;
  top_mlp : Fc.t list;  (** last layer is linear; sigmoid applied after *)
}

let build_mlp ~rng ~block ~spec ~act widths =
  let rec go = function
    | fin :: (fout :: _ as rest) ->
      let is_last = List.length rest = 1 in
      Fc.create ~rng ~block ~spec
        ~act:(if is_last then Fc.Linear else act)
        ~in_features:fin ~out_features:fout ()
      :: go rest
    | _ -> []
  in
  go widths

let create ~rng ?(block = 16) ?(spec = Gemm.default_spec) cfg =
  let tables =
    Array.init cfg.num_tables (fun _ ->
        let t =
          Tensor.create Datatype.F32 [| cfg.rows_per_table; cfg.embed_dim |]
        in
        Tensor.fill_random t rng ~scale:0.1;
        t)
  in
  let bottom_widths = (cfg.dense_features :: cfg.bottom) @ [ cfg.embed_dim ] in
  let top_widths = (interaction_features cfg :: cfg.top) @ [ 1 ] in
  {
    cfg;
    tables;
    (* bottom MLP keeps ReLU through its output (standard DLRM) *)
    bottom_mlp =
      List.map
        (fun fc -> { fc with Fc.act = Fc.Relu_act })
        (build_mlp ~rng ~block ~spec ~act:Fc.Relu_act bottom_widths);
    top_mlp = build_mlp ~rng ~block ~spec ~act:Fc.Relu_act top_widths;
  }

let config t = t.cfg

let run_mlp ?nthreads layers x =
  List.fold_left (fun x fc -> Fc.forward ?nthreads fc x) x layers

(* embedding lookup: gather one row per batch item *)
let lookup t f ids =
  let table = t.tables.(f) in
  Tensor.init Datatype.F32
    [| Array.length ids; t.cfg.embed_dim |]
    (fun i -> Tensor.get table [| ids.(i.(0)); i.(1) |])

(* pairwise dot-product interaction of (num_tables+1) embed_dim vectors
   per batch item, concatenated after the bottom output *)
let interact t bottom embs =
  let batch = (Tensor.dims bottom).(0) in
  let d = t.cfg.embed_dim in
  let vectors = Array.of_list (bottom :: Array.to_list embs) in
  let v = Array.length vectors in
  let out =
    Tensor.create Datatype.F32 [| batch; interaction_features t.cfg |]
  in
  for i = 0 to batch - 1 do
    for x = 0 to d - 1 do
      Tensor.set out [| i; x |] (Tensor.get bottom [| i; x |])
    done;
    let col = ref d in
    for a = 0 to v - 1 do
      for b = a + 1 to v - 1 do
        let dot = ref 0.0 in
        for x = 0 to d - 1 do
          dot :=
            !dot
            +. (Tensor.get vectors.(a) [| i; x |]
               *. Tensor.get vectors.(b) [| i; x |])
        done;
        Tensor.set out [| i; !col |] !dot;
        incr col
      done
    done
  done;
  out

let sigmoid_inplace x =
  let v =
    Tensor.view_flat x ~off:0 ~rows:1 ~cols:(Tensor.numel x)
      ~ld:(Tensor.numel x)
  in
  Tpp_unary.exec Tpp_unary.Sigmoid ~inp:v ~out:v

let forward ?nthreads t ~dense ~sparse =
  let dims = Tensor.dims dense in
  assert (dims.(1) = t.cfg.dense_features);
  assert (Array.length sparse = t.cfg.num_tables);
  let bottom = run_mlp ?nthreads t.bottom_mlp dense in
  let embs = Array.mapi (fun f ids -> lookup t f ids) sparse in
  let feats = interact t bottom embs in
  let logit = run_mlp ?nthreads t.top_mlp feats in
  sigmoid_inplace logit;
  logit

let reference_forward t ~dense ~sparse =
  let fc_ref (fc : Fc.t) x =
    let wt =
      Tensor.init Datatype.F32 [| fc.Fc.in_features; fc.Fc.out_features |]
        (fun i -> Tensor.get fc.Fc.weights [| i.(1); i.(0) |])
    in
    let y = Reference.matmul x wt in
    Tensor.init Datatype.F32 (Tensor.dims y) (fun i ->
        let v = Tensor.get y i +. Tensor.get fc.Fc.bias [| i.(1) |] in
        match fc.Fc.act with
        | Fc.Linear -> v
        | Fc.Relu_act -> Reference.relu v
        | Fc.Gelu_act -> Reference.gelu v)
  in
  let run_ref layers x = List.fold_left (fun x fc -> fc_ref fc x) x layers in
  let bottom = run_ref t.bottom_mlp dense in
  let embs = Array.mapi (fun f ids -> lookup t f ids) sparse in
  let feats = interact t bottom embs in
  let logit = run_ref t.top_mlp feats in
  Tensor.init Datatype.F32 (Tensor.dims logit) (fun i ->
      Reference.sigmoid (Tensor.get logit i))

let mlp_flops widths ~batch =
  let rec go = function
    | a :: (b :: _ as rest) ->
      (2.0 *. float_of_int (a * b) *. float_of_int batch) +. go rest
    | _ -> 0.0
  in
  go widths

let flops cfg ~batch =
  let bottom = (cfg.dense_features :: cfg.bottom) @ [ cfg.embed_dim ] in
  let top = (interaction_features cfg :: cfg.top) @ [ 1 ] in
  let v = cfg.num_tables + 1 in
  let interact =
    2.0
    *. float_of_int (v * (v - 1) / 2)
    *. float_of_int cfg.embed_dim *. float_of_int batch
  in
  mlp_flops bottom ~batch +. mlp_flops top ~batch +. interact

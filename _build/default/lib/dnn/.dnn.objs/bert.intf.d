lib/dnn/bert.mli: Attention Datatype Fc Prng Tensor

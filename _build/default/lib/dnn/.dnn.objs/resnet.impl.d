lib/dnn/resnet.ml: Array Conv Datatype Fc List Prng Reference Tensor Tpp_binary Tpp_unary

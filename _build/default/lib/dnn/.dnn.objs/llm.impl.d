lib/dnn/llm.ml: Array Attention Blocks Datatype Fc Gemm List Prng Tensor Tpp_binary Tpp_unary

lib/dnn/sparse_bert.ml: Array Attention Bcsc Bert Blocks Datatype Fc List Spmm_kernel Tensor Tpp_binary Tpp_unary

lib/dnn/fc.ml: Array Datatype Gemm Prng Reference Tensor Tpp_binary Tpp_unary

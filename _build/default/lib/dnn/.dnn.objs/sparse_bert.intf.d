lib/dnn/sparse_bert.mli: Bert Tensor

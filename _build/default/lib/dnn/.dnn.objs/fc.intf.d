lib/dnn/fc.mli: Datatype Prng Tensor

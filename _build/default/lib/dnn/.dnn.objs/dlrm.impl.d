lib/dnn/dlrm.ml: Array Datatype Fc Gemm List Reference Tensor Tpp_unary

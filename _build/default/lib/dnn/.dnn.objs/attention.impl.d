lib/dnn/attention.ml: Array Blocks Brgemm Datatype Fc Gemm Reference Tensor Tpp_unary

lib/dnn/bert.ml: Array Attention Blocks Datatype Fc Fun Gemm Prng Reference Tensor Tpp_binary

lib/dnn/resnet.mli: Datatype Prng Tensor

lib/dnn/llm.mli: Datatype Prng Tensor

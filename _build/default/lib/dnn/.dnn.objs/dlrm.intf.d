lib/dnn/dlrm.mli: Prng Tensor

lib/dnn/attention.mli: Datatype Fc Prng Tensor

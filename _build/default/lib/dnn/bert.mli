(** BERT encoder built from the four fused PARLOOPER/TPP modules of §IV-A:

    - {b Embeddings}: token + position + segment lookups, layernorm, dropout
    - {b Self-Attention}: blocked contractions fused with scale/softmax
    - {b Output / Self-Output}: BRGEMM fused with bias, dropout, residual
      add and layernorm TPPs on 2D-block granularity (Listing 6)
    - {b Intermediate}: BRGEMM cascaded with bias add and GELU

    The implementation is exact (verified against naive references at small
    shapes); the paper-scale BERT-Base/Large shapes are exposed via
    {!base_config} / {!large_config} and consumed by the benchmark
    harness's analytic workload models. *)

type config = {
  hidden : int;
  heads : int;
  intermediate : int;
  layers : int;
  vocab : int;
  max_seq : int;
}

val base_config : config  (** BERT-Base: 768/12/3072/12 *)
val large_config : config  (** BERT-Large: 1024/16/4096/24 *)

(** Tiny config for executable tests/examples. *)
val tiny_config : config

(** One encoder layer's parameters. *)
type layer = {
  attention : Attention.t;
  att_output : Fc.t;  (** hidden -> hidden (Bert-SelfOutput dense) *)
  att_gamma : Tensor.t;
  att_beta : Tensor.t;
  intermediate_fc : Fc.t;  (** hidden -> intermediate, fused GELU *)
  out_fc : Fc.t;  (** intermediate -> hidden (Bert-Output dense) *)
  out_gamma : Tensor.t;
  out_beta : Tensor.t;
}

type t = {
  cfg : config;
  token_embedding : Tensor.t;  (** [vocab x hidden] *)
  position_embedding : Tensor.t;  (** [max_seq x hidden] *)
  emb_gamma : Tensor.t;
  emb_beta : Tensor.t;
  encoder : layer array;
  dropout_p : float;
}

val create :
  rng:Prng.t -> ?dtype:Datatype.t -> ?block:int -> ?spec:string ->
  ?dropout_p:float -> config -> t

(** Bert-Embeddings: token ids -> [seq x hidden] (layernormed; dropout is
    applied only when [training]). *)
val embed : ?training:bool -> rng:Prng.t -> t -> int array -> Tensor.t

(** One encoder layer forward on [seq x hidden]. Inference mode (dropout
    off). *)
val encoder_layer : ?nthreads:int -> t -> layer -> Tensor.t -> Tensor.t

(** Full forward: token ids -> final hidden states. *)
val forward : ?nthreads:int -> rng:Prng.t -> t -> int array -> Tensor.t

(** Naive reference of one encoder layer (tests). *)
val reference_encoder_layer : t -> layer -> Tensor.t -> Tensor.t

(** FLOPs of one encoder layer forward at sequence length [seq]. *)
val layer_flops : config -> seq:int -> float

(** FLOPs of a full forward pass. *)
val forward_flops : config -> seq:int -> float

(** FLOPs of one training step (fwd + bwd ~ 3x fwd contraction work). *)
val train_step_flops : config -> seq:int -> batch:int -> float

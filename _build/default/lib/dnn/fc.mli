(** Fully-connected layer on logical [tokens x features] activations, built
    on the PARLOOPER GEMM kernel, with a training-grade backward pass.

    Convention (matching BERT-style layers): activations are row-major
    [N x in_features]; weights are [out_features x in_features];
    [forward] computes Y = X W^T + b. Internally the GEMM runs on blocked
    tensors with W as the A operand and X^T as the B operand, exactly the
    paper's fully-connected formulation O = W x I. *)

type activation = Linear | Relu_act | Gelu_act

type t = {
  in_features : int;
  out_features : int;
  weights : Tensor.t;  (** logical [out x in] *)
  bias : Tensor.t;  (** [out] *)
  act : activation;
  block : int;
  dtype : Datatype.t;
  spec : string;
}

val create :
  rng:Prng.t ->
  ?dtype:Datatype.t ->
  ?act:activation ->
  ?block:int ->
  ?spec:string ->
  in_features:int ->
  out_features:int ->
  unit ->
  t

(** [forward t x] with [x : N x in] returns [N x out]. [n] (token count)
    must be divisible by the block size. *)
val forward : ?nthreads:int -> t -> Tensor.t -> Tensor.t

(** Saved context from a forward pass used by backward. *)
type ctx

val forward_ctx : ?nthreads:int -> t -> Tensor.t -> Tensor.t * ctx

type grads = { d_input : Tensor.t; d_weights : Tensor.t; d_bias : Tensor.t }

(** [backward t ctx ~dy] — gradients for input, weights and bias given the
    upstream gradient [N x out]. *)
val backward : ?nthreads:int -> t -> ctx -> dy:Tensor.t -> grads

(** Apply SGD update in place: w -= lr * dw. *)
val sgd_update : t -> grads -> lr:float -> unit

(** Forward FLOPs for [n] tokens: 2 * n * in * out. *)
val flops : t -> n:int -> float

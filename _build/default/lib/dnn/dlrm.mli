(** DLRM — Deep Learning Recommendation Model (Naumov et al.), the
    end-to-end workload the paper names as future work (§VII) and whose
    GEMM shapes appear in Fig. 5.

    Architecture: a bottom MLP embeds the dense features; sparse
    categorical features are looked up in embedding tables; all pairwise
    dot-product interactions between the bottom output and the embeddings
    are concatenated back with the bottom output and fed to a top MLP
    ending in a sigmoid CTR probability. The MLPs run on the PARLOOPER FC
    kernels; lookups and interactions are TPP-style 2D-block operations. *)

type config = {
  dense_features : int;
  num_tables : int;  (** categorical features *)
  rows_per_table : int;
  embed_dim : int;  (** must equal the bottom MLP's output width *)
  bottom : int list;  (** hidden widths of the bottom MLP (output is
                          [embed_dim]) *)
  top : int list;  (** hidden widths of the top MLP (output is 1 logit) *)
}

(** A small runnable default (Criteo-like structure, reduced sizes). *)
val default_config : config

type t

val create : rng:Prng.t -> ?block:int -> ?spec:string -> config -> t

val config : t -> config

(** Width of the interaction feature vector fed to the top MLP:
    embed_dim + (num_tables+1 choose 2). *)
val interaction_features : config -> int

(** [forward t ~dense ~sparse] — [dense : batch x dense_features];
    [sparse.(f).(i)] is the category id of feature [f] for batch item [i].
    Returns CTR probabilities [batch x 1] in (0, 1). *)
val forward :
  ?nthreads:int -> t -> dense:Tensor.t -> sparse:int array array -> Tensor.t

(** Naive reference forward (tests). *)
val reference_forward : t -> dense:Tensor.t -> sparse:int array array -> Tensor.t

(** Forward FLOPs per batch of [batch] (MLPs + interaction dots). *)
val flops : config -> batch:int -> float

(** Instruction-set architectures modeled by the TPP backend.

    The real LIBXSMM backend JITs different instruction sequences per ISA.
    Here each ISA is a descriptor consumed by (a) the kernel dispatcher,
    which picks microkernel strategies (VNNI layouts, tile blocking), and
    (b) the performance model, which needs vector widths and accumulation
    -chain constraints — e.g. the AMX systolic array reaches peak only with
    accumulation-length multiples of 32, which is what caps 4x4 Block-SpMM
    at 4/32 = 12.5% of BF16 peak in Fig. 8. *)

type t =
  | AVX2            (** 256-bit x86, FP32 only (ADL client parts) *)
  | AVX512F         (** 512-bit x86 FP32 *)
  | AVX512_BF16     (** x86 BF16 dot-product FMAs (Zen4) *)
  | AMX_BF16        (** Intel Advanced Matrix eXtensions tiles (SPR) *)
  | SVE256          (** Arm SVE 256-bit FP32 (Graviton 3) *)
  | BF16_MMLA       (** Arm SVE BF16 matrix-multiply-accumulate *)
  | BF16_DOT        (** Arm BF16 dot product *)

val to_string : t -> string
val equal : t -> t -> bool

(** Vector register width in bits (AMX reported as tile row width, 512). *)
val vector_bits : t -> int

(** Datatype the ISA's contraction path computes with. *)
val native_dtype : t -> Datatype.t

(** Minimum accumulation-chain length (elements of K) needed to reach the
    ISA's contraction peak. Efficiency for a chain of length [l] is
    [min 1 (l / chain)] — the mechanism behind the paper's Fig. 8 analysis. *)
val min_chain : t -> int

(** Peak fused multiply-add FLOPs per cycle per core of a full-width
    implementation of this ISA (2 ops per MAC). *)
val flops_per_cycle : t -> float

(** Efficiency factor in (0, 1] of a contraction whose accumulation chain
    (inner-product extent per microkernel invocation) is [chain]. *)
val chain_efficiency : t -> chain:int -> float

(** Does this ISA accelerate BF16 contractions natively? *)
val has_bf16 : t -> bool

(** Best contraction ISA for [dtype] among [available], by flops/cycle.
    Returns [None] if no listed ISA can compute that precision (a BF16
    request falls back to an FP32 ISA in the dispatcher, mirroring
    reference-path execution). *)
val best_for : Datatype.t -> t list -> t option

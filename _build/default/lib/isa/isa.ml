type t =
  | AVX2
  | AVX512F
  | AVX512_BF16
  | AMX_BF16
  | SVE256
  | BF16_MMLA
  | BF16_DOT

let to_string = function
  | AVX2 -> "avx2"
  | AVX512F -> "avx512f"
  | AVX512_BF16 -> "avx512-bf16"
  | AMX_BF16 -> "amx-bf16"
  | SVE256 -> "sve256"
  | BF16_MMLA -> "bf16-mmla"
  | BF16_DOT -> "bf16-dot"

let equal a b = a = b

let vector_bits = function
  | AVX2 -> 256
  | AVX512F | AVX512_BF16 | AMX_BF16 -> 512
  | SVE256 | BF16_MMLA | BF16_DOT -> 256

let native_dtype = function
  | AVX2 | AVX512F | SVE256 -> Datatype.F32
  | AVX512_BF16 | AMX_BF16 | BF16_MMLA | BF16_DOT -> Datatype.BF16

(* AMX: systolic array fully utilized at accumulation length multiples of 32;
   SVE MMLA consumes 4-deep K packs; dot-product FMAs consume 2-deep. *)
let min_chain = function
  | AMX_BF16 -> 32
  | BF16_MMLA | BF16_DOT -> 4
  | AVX512_BF16 -> 2
  | AVX2 | AVX512F | SVE256 -> 1

(* FMA FLOPs per cycle per core, assuming 2 full-width FMA pipes on x86
   and 2 SVE pipes on Neoverse V1. AMX: TDPBF16PS = 16x16x32 MACs in 16
   cycles = 512 MACs = 1024 FLOPs/cycle, i.e. the paper's "up to 16x more
   peak flops than FP32 AVX512". *)
let flops_per_cycle = function
  | AVX2 -> 32.0
  | AVX512F -> 64.0
  | AVX512_BF16 -> 128.0
  | AMX_BF16 -> 1024.0
  | SVE256 -> 32.0
  | BF16_MMLA -> 128.0
  | BF16_DOT -> 64.0

let chain_efficiency isa ~chain =
  let c = min_chain isa in
  if chain <= 0 then 0.0 else Float.min 1.0 (float_of_int chain /. float_of_int c)

let has_bf16 isa = Datatype.equal (native_dtype isa) Datatype.BF16

let best_for dtype available =
  let candidates =
    List.filter
      (fun i ->
        match dtype with
        | Datatype.BF16 -> has_bf16 i
        | Datatype.F32 -> not (has_bf16 i))
      available
  in
  match candidates with
  | [] -> None
  | l ->
    Some
      (List.fold_left
         (fun best i ->
           if flops_per_cycle i > flops_per_cycle best then i else best)
         (List.hd l) l)

(** Block-sparse x dense GEMM via PARLOOPER + BCSC-SpMM TPP — the paper's
    Listing 5.

    C[M x N] = A x B where A [M x K] is block-sparse (BCSC, [bm x bk]
    blocks) and B/C are dense. B is consumed VNNI-packed ([K/v][N][v]);
    C is a plain row-major [M x N] tensor. Two logical loops are declared
    (a: M block rows, b: N column panels of width bn); the K reduction over
    the stored blocks of a row happens inside the TPP. *)

type config = {
  m : int;
  n : int;
  k : int;
  bm : int;
  bk : int;  (** sparsity block size (must match the BCSC matrix) *)
  bn : int;  (** N panel width *)
  dtype : Datatype.t;
}

val make_config :
  ?bn:int -> ?dtype:Datatype.t -> m:int -> n:int -> k:int -> bm:int -> bk:int ->
  unit -> config

(** Effective FLOPs given the sparse A actually used (2*M*N*K * density). *)
val effective_flops : config -> a:Bcsc.t -> float

(** Dense-equivalent FLOPs 2*M*N*K. *)
val dense_flops : config -> float

val loop_specs : config -> Loop_spec.t list

(** Block rows and column panels collapsed-parallel. *)
val default_spec : string

type t

val create : config -> string -> t
val config : t -> config

(** VNNI-pack a logical [K x N] dense B. *)
val pack_b : config -> Tensor.t -> Tensor.t

(** [run t ~a ~b ~c] — [b] VNNI-packed, [c] a zero-or-overwritten
    [M x N] tensor. *)
val run : ?nthreads:int -> t -> a:Bcsc.t -> b:Tensor.t -> c:Tensor.t -> unit

(** Pack + run against logical dense B; returns dense C. *)
val run_logical : ?nthreads:int -> t -> a:Bcsc.t -> b:Tensor.t -> Tensor.t

(** Direct convolution via PARLOOPER + BRGEMM TPP — the paper's Listing 4.

    Blocked layouts:
    - input  I [N][Cb][Hp][Wp][bc]   (Hp, Wp include physical padding)
    - weight W [Kb][Cb][R][S][bc][bk]
    - output O [N][Kb][P][Q][bk]

    Seven logical loops are declared (a: N, b: Cb, c: Kb, d: P, e: Q,
    f: R, g: S). The kernel body zeroes an output block on the first
    (ic, ir, is) visit and issues one BRGEMM whose batch folds
    [c_step x r_step x s_step] reductions: stride-based when R = S = 1,
    offset-based otherwise (§III-B). The microkernel contraction per
    output row is [w_step pixels x bc] x [bc x bk]. *)

type config = {
  n : int;  (** minibatch *)
  c : int;  (** input feature maps *)
  k : int;  (** output feature maps *)
  h : int;
  w : int;  (** input spatial dims (unpadded) *)
  r : int;
  s : int;  (** filter spatial dims *)
  stride : int;
  pad : int;
  bc : int;
  bk : int;  (** feature-map blockings *)
  c_step : int;  (** Cb-loop step = channel-block batch count *)
  h_step : int;
  w_step : int;  (** output-pixel blocking of the P and Q loops *)
  r_step : int;
  s_step : int;  (** filter-tap folding (r_step = R folds all taps) *)
  dtype : Datatype.t;
}

val make_config :
  ?stride:int ->
  ?pad:int ->
  ?bc:int ->
  ?bk:int ->
  ?c_step:int ->
  ?h_step:int ->
  ?w_step:int ->
  ?r_step:int ->
  ?s_step:int ->
  ?dtype:Datatype.t ->
  n:int ->
  c:int ->
  k:int ->
  h:int ->
  w:int ->
  r:int ->
  s:int ->
  unit ->
  config

(** Output spatial dims P, Q. *)
val out_dims : config -> int * int

(** FLOPs: 2*N*K*P*Q*C*R*S. *)
val flops : config -> float

val loop_specs : config -> Loop_spec.t list

(** Parallel over minibatch, then Kb / P / Q, with channel and filter
    reductions innermost. *)
val default_spec : string

type t

val create : config -> string -> t
val config : t -> config

(** Pack a logical [N; C; H; W] activation into blocked padded storage. *)
val pack_input : config -> Tensor.t -> Tensor.t

(** Pack logical [K; C; R; S] weights. *)
val pack_weights : config -> Tensor.t -> Tensor.t

val alloc_output : ?dtype:Datatype.t -> config -> Tensor.t

(** Unpack blocked output to logical [N; K; P; Q]. *)
val unpack_output : config -> Tensor.t -> Tensor.t

(** [run t ~input ~weights ~output] on blocked tensors. [post], if given,
    runs on each finished [w_step x bk] output row block (fusion point for
    batchnorm/ReLU). *)
val run :
  ?nthreads:int ->
  ?post:(n:int -> kb:int -> p:int -> q:int -> block:Tensor.View.t -> unit) ->
  t ->
  input:Tensor.t ->
  weights:Tensor.t ->
  output:Tensor.t ->
  unit

(** Pack, run, unpack against logical tensors. *)
val run_logical :
  ?nthreads:int -> t -> input:Tensor.t -> weights:Tensor.t -> Tensor.t

lib/kernels/spmm_kernel.ml: Array Bcsc Datatype Dispatch Loop_spec Spmm Tensor Threaded_loop Vnni

lib/kernels/mlp.ml: Array Datatype Gemm List Prng Reference Tensor Tpp_binary Tpp_unary

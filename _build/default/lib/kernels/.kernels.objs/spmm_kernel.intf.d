lib/kernels/spmm_kernel.mli: Bcsc Datatype Loop_spec Tensor

lib/kernels/gemm.ml: Array Brgemm Datatype Dispatch Loop_spec Tensor Threaded_loop

lib/kernels/conv.mli: Datatype Loop_spec Tensor

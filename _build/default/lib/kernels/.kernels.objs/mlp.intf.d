lib/kernels/mlp.mli: Datatype Gemm Prng Tensor

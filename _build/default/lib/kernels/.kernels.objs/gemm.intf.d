lib/kernels/gemm.mli: Datatype Loop_spec Tensor

(** Multi-Layer Perceptron via PARLOOPER + TPP (§III-A).

    Each layer is a fully-connected GEMM [O_l = W_l x I_l] with optional
    bias addition and activation fused into the GEMM body on 2D-block
    granularity (the paper's [if (ik == Kb-k_step) relu_tpp(...)]). The
    cascading structure makes layer l's output tensor (GEMM C, layout
    [Nb][Mb][bm][bn]) directly consumable as layer l+1's input (GEMM B,
    layout [Nb][Kb][bk][bn]) when bm = bk — which [create] enforces.

    Tensor roles per layer: A = weights [features_out x features_in],
    B = activations [features_in x batch], C = [features_out x batch];
    bias is per output feature (C-block rows). *)

type activation = No_activation | Relu | Gelu | Sigmoid

type layer = {
  gemm : Gemm.t;
  weights : Tensor.t;  (** blocked [Mb][Kb][bm][bk] *)
  bias : Tensor.t option;  (** [features_out] *)
  act : activation;
}

type t = {
  layers : layer array;
  batch : int;
  block : int;  (** shared bm = bk = bn block size *)
  dtype : Datatype.t;
}

(** [create ~rng ~dtype ~batch ~features ~block ~bias ~act ~spec ()] builds
    an MLP with [List.length features - 1] layers; [features] lists layer
    widths (input first). Weights are Xavier-ish random from [rng]; all
    dimensions must be divisible by [block]. [spec] is the PARLOOPER
    instantiation used by every layer's GEMM. *)
val create :
  rng:Prng.t ->
  ?dtype:Datatype.t ->
  ?bias:bool ->
  ?act:activation ->
  ?spec:string ->
  batch:int ->
  features:int list ->
  block:int ->
  unit ->
  t

(** Blocked input activations [Nb][Kb][bk][bn] for the first layer from a
    logical [features_in x batch] tensor. *)
val pack_input : t -> Tensor.t -> Tensor.t

(** Run all layers; returns the blocked output of the last layer. *)
val forward : ?nthreads:int -> t -> Tensor.t -> Tensor.t

(** Logical [features_out x batch] view of a blocked activation tensor
    produced by layer [layer_idx] (or the output of {!forward} with the
    last index). *)
val unpack_output : t -> layer_idx:int -> Tensor.t -> Tensor.t

(** Total forward FLOPs (2*M*N*K summed over layers). *)
val flops : t -> float

(** Naive reference forward on logical tensors, for testing. *)
val reference_forward : t -> Tensor.t -> Tensor.t

(** Integer factorization helpers for the auto-tuner's blocking-size
    selection (§II-D constraint 2: blocking factors are prefix products of
    the prime factorization of a loop's trip count). *)

(** Prime factors in non-decreasing order; [factorize 12] = [2; 2; 3]. *)
val factorize : int -> int list

(** Prefix products of the prime factors, excluding 1 and the number
    itself; [prefix_products 12] = [2; 4] (from 2, 2*2). *)
val prefix_products : int -> int list

(** All divisors, ascending. *)
val divisors : int -> int list

(** Candidate blocking-step lists (outer-to-inner, each dividing the
    previous) with exactly [depth] levels, built from prefix products
    scaled by [step]. Lists are returned with the largest factor outermost
    and are guaranteed perfectly nested. *)
val blocking_lists : trip:int -> step:int -> depth:int -> int list list

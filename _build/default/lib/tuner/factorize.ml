let factorize n =
  assert (n > 0);
  let rec go n d acc =
    if n = 1 then List.rev acc
    else if d * d > n then List.rev (n :: acc)
    else if n mod d = 0 then go (n / d) d (d :: acc)
    else go n (d + 1) acc
  in
  go n 2 []

let prefix_products n =
  let fs = factorize n in
  let rec go acc p = function
    | [] -> List.rev acc
    | f :: rest ->
      let p = p * f in
      if p = n then List.rev acc else go (p :: acc) p rest
  in
  go [] 1 fs

let divisors n =
  let rec go d acc =
    if d > n then List.rev acc
    else if n mod d = 0 then go (d + 1) (d :: acc)
    else go (d + 1) acc
  in
  go 1 []

(* Strictly decreasing chains of length [depth] of divisors of [trip]
   (excluding trip and 1) in which each element divides the previous —
   scaled by [step] so the lists slot directly into Loop_spec.block_steps. *)
let blocking_lists ~trip ~step ~depth =
  if depth = 0 then [ [] ]
  else begin
    let divs = divisors trip |> List.filter (fun d -> d > 1 && d < trip) in
    (* strictly decreasing divisibility chains, outermost first *)
    let rec chains depth upper =
      if depth = 0 then [ [] ]
      else
        List.concat_map
          (fun d ->
            let ok =
              match upper with None -> true | Some u -> d < u && u mod d = 0
            in
            if ok then
              List.map (fun rest -> d :: rest) (chains (depth - 1) (Some d))
            else [])
          divs
    in
    chains depth None
    |> List.map (List.map (fun d -> d * step))
    |> List.sort_uniq compare
  end

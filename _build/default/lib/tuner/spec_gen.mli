(** Exhaustive [loop_spec_string] generation under constraints — the
    paper's auto-tuning infrastructure (§II-D, Fig. 1-Box B2).

    Tunable decisions mapped 1-to-1 onto spec strings:
    (i) how many times each loop is blocked, (ii) the blocking sizes
    (prefix products of the trip count's prime factors), (iii) which loops
    are parallelized, (iv) the loop order. *)

type constraints = {
  trip_counts : int array;  (** per logical loop *)
  steps : int array;  (** innermost steps (block units) *)
  max_blockings : int array;  (** per loop, e.g. a<=2 and b,c<=3 for GEMM *)
  parallelizable : bool array;  (** loops that define independent tasks *)
  max_parallel : int;  (** capitalize at most this many occurrences *)
}

(** A candidate instantiation: the spec string plus the per-loop blocking
    step lists that make it legal. *)
type candidate = { spec : string; block_steps : int list array }

(** GEMM defaults: a (K) up to [ka] blockings, b/c (M/N) up to [mb]/[nb];
    only M and N parallelizable (K is a reduction); up to 2 consecutive
    parallel occurrences (collapse). *)
val gemm_constraints :
  ?max_k_blockings:int ->
  ?max_mn_blockings:int ->
  trip_a:int ->
  trip_b:int ->
  trip_c:int ->
  step_a:int ->
  unit ->
  constraints

(** Deterministic candidate enumeration, capped at [max_candidates]
    (default 1000, matching the paper's ~1000-configuration searches). *)
val generate : ?max_candidates:int -> constraints -> candidate list

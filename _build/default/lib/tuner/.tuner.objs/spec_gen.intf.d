lib/tuner/spec_gen.mli:

lib/tuner/factorize.ml: List

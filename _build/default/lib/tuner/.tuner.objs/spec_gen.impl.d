lib/tuner/spec_gen.ml: Array Char Factorize Fun List String

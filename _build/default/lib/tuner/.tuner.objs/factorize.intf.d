lib/tuner/factorize.mli:

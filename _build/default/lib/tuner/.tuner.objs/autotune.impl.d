lib/tuner/autotune.ml: Array Gemm Gemm_trace List Perf_model Platform Prng Spec_gen Tensor Threaded_loop Unix

lib/tuner/autotune.mli: Gemm Platform Spec_gen

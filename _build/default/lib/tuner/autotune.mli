(** Off-line auto-tuning of PARLOOPER GEMMs (§II-D / Fig. 1-Box B2).

    Candidates from {!Spec_gen} are evaluated either by actually running
    the kernel (measured objective) or through the §II-E performance model
    (modeled objective, enabling cross-architecture tuning without the
    target machine). Zero lines of user kernel code change between
    candidates — only the [loop_spec_string] and blocking lists vary. *)

type objective =
  | Measured of { nthreads : int; repeats : int }
  | Modeled of { platform : Platform.t; nthreads : int }

type entry = {
  spec : string;
  cfg : Gemm.config;
  gflops : float;
}

type report = {
  ranked : entry list;  (** best first *)
  evaluated : int;
  tuning_seconds : float;
}

(** [tune_gemm ?max_candidates objective base] sweeps instantiations of the
    GEMM described by [base] (its m/n/k/block sizes and dtype are kept; its
    blocking lists are replaced per candidate). *)
val tune_gemm :
  ?max_candidates:int -> ?constraints:Spec_gen.constraints -> objective ->
  Gemm.config -> report

(** Measured GFLOPS of a single (config, spec) point (used by benches). *)
val measure_gemm : nthreads:int -> repeats:int -> Gemm.config -> string -> float

type constraints = {
  trip_counts : int array;
  steps : int array;
  max_blockings : int array;
  parallelizable : bool array;
  max_parallel : int;
}

type candidate = { spec : string; block_steps : int list array }

let gemm_constraints ?(max_k_blockings = 1) ?(max_mn_blockings = 2) ~trip_a
    ~trip_b ~trip_c ~step_a () =
  {
    trip_counts = [| trip_a; trip_b; trip_c |];
    steps = [| step_a; 1; 1 |];
    max_blockings = [| max_k_blockings; max_mn_blockings; max_mn_blockings |];
    parallelizable = [| false; true; true |];
    max_parallel = 2;
  }

(* multiset permutations of a char list, deterministic order *)
let rec multiset_perms = function
  | [] -> [ [] ]
  | items ->
    List.sort_uniq compare items
    |> List.concat_map (fun x ->
           let rec remove_one = function
             | [] -> []
             | y :: rest -> if y = x then rest else y :: remove_one rest
           in
           multiset_perms (remove_one items)
           |> List.map (fun p -> x :: p))

(* all choices of blocking depth per loop, within max_blockings and the
   available divisor chains *)
let depth_choices cons =
  let nloops = Array.length cons.trip_counts in
  let rec go l =
    if l = nloops then [ [] ]
    else begin
      let max_d = cons.max_blockings.(l) in
      let rest = go (l + 1) in
      List.concat_map
        (fun d -> List.map (fun r -> d :: r) rest)
        (List.init (max_d + 1) Fun.id)
    end
  in
  go 0

(* capitalize parallel occurrences: choose a run of [np] consecutive
   positions whose letters are all parallelizable and distinct (OpenMP
   collapse of distinct loops) *)
let parallel_variants cons chars =
  let n = List.length chars in
  let arr = Array.of_list chars in
  (* the all-serial instantiation is itself a candidate *)
  let serial =
    String.init n (fun i -> Char.chr (arr.(i) + Char.code 'a'))
  in
  let variants = ref [ serial ] in
  for np = 1 to cons.max_parallel do
    for start = 0 to n - np do
      let letters = Array.sub arr start np in
      let distinct =
        Array.length letters
        = List.length (List.sort_uniq compare (Array.to_list letters))
      in
      let all_par =
        Array.for_all (fun c -> cons.parallelizable.(c)) letters
      in
      if distinct && all_par then begin
        let s =
          String.init n (fun i ->
              let c = arr.(i) in
              let ch = Char.chr (c + Char.code 'a') in
              if i >= start && i < start + np then Char.uppercase_ascii ch
              else ch)
        in
        variants := s :: !variants
      end
    done
  done;
  List.sort_uniq compare !variants

let generate ?(max_candidates = 1000) cons =
  let nloops = Array.length cons.trip_counts in
  let out = ref [] in
  let count = ref 0 in
  (try
     List.iter
       (fun depths ->
         let depths = Array.of_list depths in
         (* per-loop blocking lists for this depth choice *)
         let per_loop_lists =
           Array.init nloops (fun l ->
               Factorize.blocking_lists ~trip:cons.trip_counts.(l)
                 ~step:cons.steps.(l) ~depth:depths.(l))
         in
         if Array.for_all (fun l -> l <> []) per_loop_lists then begin
           (* character multiset: loop l appears depths.(l)+1 times *)
           let chars =
             List.concat
               (List.init nloops (fun l ->
                    List.init (depths.(l) + 1) (fun _ -> l)))
           in
           let perms = multiset_perms chars in
           (* combine: first blocking list per loop is the canonical one;
              additionally sweep blocking lists for the identity order *)
           let emit spec block_steps =
             if !count < max_candidates then begin
               out := { spec; block_steps } :: !out;
               incr count
             end
             else raise Exit
           in
           List.iter
             (fun perm ->
               let specs = parallel_variants cons perm in
               let canonical =
                 Array.map
                   (fun l -> match l with [] -> [] | x :: _ -> x)
                   per_loop_lists
               in
               List.iter (fun s -> emit s canonical) specs)
             perms;
           (* blocking-size sweep on the canonical loop order *)
           match perms with
           | first :: _ ->
             let rec cartesian = function
               | [] -> [ [] ]
               | opts :: rest ->
                 List.concat_map
                   (fun choice ->
                     List.map (fun r -> choice :: r) (cartesian rest))
                   opts
             in
             let all_lists =
               cartesian (Array.to_list per_loop_lists)
               |> List.map Array.of_list
             in
             let specs = parallel_variants cons first in
             (match specs with
             | s :: _ ->
               List.iter
                 (fun bs -> if bs <> Array.map (fun l -> match l with [] -> [] | x :: _ -> x) per_loop_lists then emit s bs)
                 all_lists
             | [] -> ())
           | [] -> ()
         end)
       (depth_choices cons)
   with Exit -> ());
  List.rev !out

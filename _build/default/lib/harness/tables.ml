type table1_row = { system : string; minutes : float }

(* per-socket sustained BERT training throughput (seq/s) from the Fig. 9
   machinery, halved from the 2-socket figure *)
let per_socket_seq_s () =
  let pts = Fig9.compute () in
  let two_socket =
    (List.find
       (fun (p : Fig9.point) ->
         p.Fig9.label = "PARLOOPER+TPP" && p.Fig9.platform = "SPR")
       pts)
      .Fig9.sequences_per_s
  in
  two_socket /. 2.0

(* per-step gradient allreduce of BERT-Large (~334M params, fp32 grads)
   over 100 Gb/s fabric with a ring: 2 * bytes / link_bw, overlapped 50% *)
let allreduce_seconds = 2.0 *. (334.0e6 *. 4.0) /. 12.5e9 *. 0.5

let global_batch = 448
let steps_per_second sockets =
  let seqs = per_socket_seq_s () *. float_of_int sockets in
  let t_compute = float_of_int global_batch /. seqs in
  1.0 /. (t_compute +. allreduce_seconds)

(* MLPerf-defined training work, in optimizer steps: calibrated once so
   the 8-node (16-socket) configuration reproduces the submitted 85.91
   minutes; the 16-node row is then a genuine prediction *)
let mlperf_steps =
  Float.round (steps_per_second 16 *. 85.91 *. 60.0)

let table1 () =
  let minutes sockets =
    mlperf_steps /. steps_per_second sockets /. 60.0
  in
  [
    { system = "8 nodes SPR (16 sockets)"; minutes = minutes 16 };
    { system = "16 nodes SPR (32 sockets)"; minutes = minutes 32 };
    { system = "DGX Box (8xA100 GPU)"; minutes = Anchors.dgx_a100_bert_ttt_minutes };
  ]

type table2_row = { system : string; implementation : string; images_per_s : float }

(* ResNet-50 BF16 training on one socket: conv fwd+bwd at the modeled conv
   rate, batchnorm/elementwise as streamed bytes *)
let resnet_imgs_per_s (p : Platform.t) ~conv_gflops_fn =
  let sockets_scale = if p.Platform.name = "SPR" then 0.5 else 1.0 in
  let conv_rate =
    (* throughput-weighted geomean across the layer shapes *)
    Modelkit.geomean
      (List.map (fun sh -> conv_gflops_fn sh) Resnet.conv_shapes)
    *. sockets_scale
  in
  let conv_flops = Resnet.train_step_flops ~n:1 in
  let t_conv = conv_flops /. (conv_rate *. 1e9) in
  (* activation traffic: ~25M activations, ~20 fwd+bwd elementwise passes
     of batchnorm/relu/residual at 2 bytes *)
  let elem_bytes = 25.0e6 *. 20.0 *. 2.0 in
  let t_elem =
    elem_bytes /. (p.Platform.mem_bw_gbs *. sockets_scale *. 1e9)
  in
  1.0 /. (t_conv +. t_elem)

let table2 () =
  let ours p =
    resnet_imgs_per_s p ~conv_gflops_fn:(fun sh ->
        Modelkit.parlooper_conv ~platform:p ~dtype:Datatype.BF16 sh)
  in
  let ipex p =
    resnet_imgs_per_s p ~conv_gflops_fn:(fun sh ->
        Modelkit.onednn_conv ~platform:p ~dtype:Datatype.BF16 sh)
  in
  [
    { system = "GVT3"; implementation = "PARLOOPER + TPP";
      images_per_s = ours Platform.gvt3 };
    { system = "SPR"; implementation = "PARLOOPER + TPP";
      images_per_s = ours Platform.spr };
    { system = "SPR"; implementation = "IPEX + oneDNN";
      images_per_s = ipex Platform.spr };
  ]

let run () =
  Modelkit.section "Table I: BERT MLPerf v2.1 time-to-train";
  List.iter
    (fun (r : table1_row) ->
      Printf.printf "%-26s %8.2f minutes\n" r.system r.minutes)
    (table1 ());
  Printf.printf "(paper: 85.91 / 47.26 / 19.6 minutes)\n";
  Modelkit.section "Table II: ResNet-50 BF16 training (images/s)";
  List.iter
    (fun r ->
      Printf.printf "%-6s %-18s %8.0f images/s\n" r.system r.implementation
        r.images_per_s)
    (table2 ());
  Printf.printf "(paper: GVT3 145, SPR 255 vs IPEX 265)\n"

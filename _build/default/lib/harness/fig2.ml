type point = {
  platform : string;
  dtype : Datatype.t;
  m : int;
  n : int;
  k : int;
  parlooper : float;
  onednn : float;
}

let shapes =
  [
    (512, 512, 512);
    (1024, 1024, 1024);
    (2048, 2048, 2048);
    (4096, 4096, 4096);
    (1024, 4096, 1024);
  ]

let platforms = [ Platform.spr; Platform.gvt3; Platform.zen4 ]

let compute () =
  List.concat_map
    (fun (p : Platform.t) ->
      let cores = Platform.cores p in
      List.concat_map
        (fun dtype ->
          List.map
            (fun (m, n, k) ->
              let parlooper =
                Modelkit.parlooper_gemm ~platform:p ~nthreads:cores ~dtype ~m
                  ~n ~k
              in
              let b = if m >= 1024 then 128 else 64 in
              let cfg =
                Gemm.make_config ~bm:b ~bn:b ~bk:b ~dtype ~k_step:4 ~m ~n ~k ()
              in
              let onednn = Onednn.gemm_gflops ~platform:p ~nthreads:cores cfg in
              { platform = p.Platform.name; dtype; m; n; k; parlooper; onednn })
            shapes)
        [ Datatype.F32; Datatype.BF16 ])
    platforms

let run () =
  Modelkit.section "Figure 2: GEMM vs vendor library (GFLOPS, modeled)";
  Printf.printf "%-6s %-5s %-18s %12s %12s %8s\n" "plat" "dtype" "MxKxN"
    "PARLOOPER" "oneDNN" "speedup";
  let pts = compute () in
  List.iter
    (fun pt ->
      Printf.printf "%-6s %-5s %6dx%-6dx%-5d %12.0f %12.0f %7.2fx\n"
        pt.platform
        (Datatype.to_string pt.dtype)
        pt.m pt.k pt.n pt.parlooper pt.onednn
        (pt.parlooper /. pt.onednn))
    pts;
  (* headline checks from §V-A1 *)
  let spr_bf16 =
    List.filter (fun p -> p.platform = "SPR" && p.dtype = Datatype.BF16) pts
  in
  let max_speedup =
    List.fold_left (fun a p -> Float.max a (p.parlooper /. p.onednn)) 0.0
      spr_bf16
  in
  let spr_f32 =
    List.filter (fun p -> p.platform = "SPR" && p.dtype = Datatype.F32) pts
  in
  let bf16_over_f32 =
    List.fold_left2
      (fun a b f -> Float.max a (b.parlooper /. f.parlooper))
      0.0 spr_bf16 spr_f32
  in
  Printf.printf
    "SPR BF16 max speedup over vendor: %.2fx (paper: up to 1.98x)\n"
    max_speedup;
  Printf.printf "SPR BF16 over FP32: up to %.1fx (paper: up to 9x)\n"
    bf16_over_f32

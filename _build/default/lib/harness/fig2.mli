(** Fig. 2 — GEMM performance of varying sizes on SPR / GVT3 / Zen4 for
    FP32 and BF16: PARLOOPER/TPP vs the vendor library (oneDNN; on Zen4
    the AOCL bar behaves like oneDNN within 4%, per §V-A1). *)

type point = {
  platform : string;
  dtype : Datatype.t;
  m : int;
  n : int;
  k : int;
  parlooper : float;  (** GFLOPS *)
  onednn : float;
}

val shapes : (int * int * int) list
val compute : unit -> point list
val run : unit -> unit

type point = {
  model : string;
  platform : string;
  impl : string;
  dtype : Datatype.t;
  first_token_ms : float;
  next_token_ms : float;
  total_ms : float;
}

let n_in = 1024
let n_out = 32

let latencies (p : Platform.t) (cfg : Llm.config) dtype ~eff ~extra =
  let peak = Platform.peak_gflops p dtype *. 1e9 *. eff in
  let bw = p.Platform.mem_bw_gbs *. 1e9 in
  let params = Llm.param_bytes cfg dtype in
  (* prefill: compute-dominated, but weights stream at least once *)
  let first =
    Float.max (Llm.prefill_flops cfg ~n_in /. peak) (params /. bw) *. extra
  in
  (* decode: every step streams all weights + KV cache *)
  let kv_bytes past =
    2.0
    *. float_of_int (cfg.Llm.layers * cfg.Llm.hidden * past)
    *. float_of_int (Datatype.bytes dtype)
  in
  let next =
    List.init n_out (fun i ->
        let past = n_in + i in
        Float.max
          (Llm.decode_flops cfg ~past /. peak)
          ((params +. kv_bytes past) /. bw)
        *. extra)
    |> List.fold_left ( +. ) 0.0
    |> fun t -> t /. float_of_int n_out
  in
  (first *. 1e3, next *. 1e3)

let impls (p : Platform.t) dtype =
  let ours_eff = Modelkit.parlooper_efficiency ~platform:p dtype in
  let hf_eff =
    Onednn.dense_efficiency ~platform:p dtype
    *. Anchors.hf_eager_efficiency_factor
  in
  let hf_unusable =
    p.Platform.name = "GVT3"
    && Datatype.equal dtype Datatype.BF16
    && not Anchors.hf_gvt3_bf16_usable
  in
  [ ("PARLOOPER+TPP", ours_eff, 1.0, false); ("HuggingFace", hf_eff, 1.0, hf_unusable) ]

let compute () =
  List.concat_map
    (fun (p : Platform.t) ->
      List.concat_map
        (fun cfg ->
          List.concat_map
            (fun dtype ->
              List.filter_map
                (fun (impl, eff, extra, unusable) ->
                  if unusable || eff <= 0.0 then None
                  else begin
                    let first, next = latencies p cfg dtype ~eff ~extra in
                    Some
                      {
                        model = cfg.Llm.name;
                        platform = p.Platform.name;
                        impl;
                        dtype;
                        first_token_ms = first;
                        next_token_ms = next;
                        total_ms = first +. (float_of_int (n_out - 1) *. next);
                      }
                  end)
                (impls p dtype))
            [ Datatype.F32; Datatype.BF16 ])
        [ Llm.gptj_6b; Llm.llama2_13b ])
    [ Platform.spr; Platform.gvt3 ]

let run () =
  Modelkit.section
    "Figure 11: LLM inference (1024 in / 32 out tokens, BS=1)";
  Printf.printf "%-11s %-5s %-14s %-5s %10s %10s %10s\n" "model" "plat"
    "impl" "dtype" "first(ms)" "next(ms)" "total(ms)";
  let pts = compute () in
  List.iter
    (fun pt ->
      Printf.printf "%-11s %-5s %-14s %-5s %10.0f %10.1f %10.0f\n" pt.model
        pt.platform pt.impl
        (Datatype.to_string pt.dtype)
        pt.first_token_ms pt.next_token_ms pt.total_ms)
    pts;
  let get model plat impl dtype =
    List.find
      (fun x ->
        x.model = model && x.platform = plat && x.impl = impl
        && x.dtype = dtype)
      pts
  in
  let ours = get "GPTJ-6B" "SPR" "PARLOOPER+TPP" Datatype.BF16 in
  let ours32 = get "GPTJ-6B" "SPR" "PARLOOPER+TPP" Datatype.F32 in
  let hf = get "GPTJ-6B" "SPR" "HuggingFace" Datatype.BF16 in
  Printf.printf
    "\nSPR GPTJ BF16: %.1fx over HF (paper: 1.1x-2.3x); BF16 speeds first \
     token %.1fx and next tokens %.1fx over FP32 (paper: 5.7x / 1.9x)\n"
    (hf.total_ms /. ours.total_ms)
    (ours32.first_token_ms /. ours.first_token_ms)
    (ours32.next_token_ms /. ours.next_token_ms)

type point = {
  platform : string;
  dense_items_per_s : float;
  sparse_items_per_s : float;
  roofline_items_per_s : float;
}

let cfg = Bert.base_config
let seq = 384
let sparsity = 0.8
let block = 8
let cores = 8

(* per-sequence contraction work split into FC (prunable) and attention
   score/context (kept dense) *)
let fc_flops =
  float_of_int cfg.Bert.layers
  *. ((4.0 *. 2.0 *. float_of_int (seq * cfg.Bert.hidden * cfg.Bert.hidden))
     +. (2.0 *. 2.0 *. float_of_int (seq * cfg.Bert.hidden * cfg.Bert.intermediate)))

let attn_flops =
  float_of_int cfg.Bert.layers
  *. (2.0 *. 2.0 *. float_of_int (seq * seq * cfg.Bert.hidden))

(* FC weight bytes streamed per sequence at BS=1 (no weight reuse) *)
let fc_weight_bytes dtype =
  float_of_int cfg.Bert.layers
  *. float_of_int
       (((4 * cfg.Bert.hidden * cfg.Bert.hidden)
        + (2 * cfg.Bert.hidden * cfg.Bert.intermediate))
       * Datatype.bytes dtype)

(* softmax/layernorm/gelu/residual passes over the activations *)
let elementwise_bytes =
  20.0 *. float_of_int (cfg.Bert.layers * seq * cfg.Bert.hidden * 4)

let mem_bw_share (p : Platform.t) used_cores =
  p.Platform.mem_bw_gbs *. 1e9
  *. Float.min 1.0 (2.0 *. float_of_int used_cores /. float_of_int (Platform.cores p))

let times (p : Platform.t) dtype =
  let isa = Platform.contraction_isa p dtype in
  let dtype = match isa with Some _ -> dtype | None -> Datatype.F32 in
  let peak =
    Platform.core_peak_gflops p dtype *. float_of_int cores *. 1e9
  in
  let eff = Modelkit.parlooper_efficiency_at ~platform:p ~cores dtype in
  let bw = mem_bw_share p cores in
  let chain_eff =
    match Platform.contraction_isa p dtype with
    | Some isa -> Isa.chain_efficiency isa ~chain:block
    | None -> 1.0
  in
  let density = 1.0 -. sparsity in
  (* dense: compute vs streaming the dense weights *)
  let t_dense_fc =
    Float.max (fc_flops /. (peak *. eff)) (fc_weight_bytes dtype /. bw)
  in
  (* sparse: 5x fewer weight bytes (+12% index), compute at the block's
     chain efficiency *)
  let t_sparse_fc =
    Float.max
      (density *. fc_flops /. (peak *. eff *. chain_eff))
      (density *. 1.12 *. fc_weight_bytes dtype /. bw)
  in
  let t_attn = attn_flops /. (peak *. eff) in
  let t_elem = elementwise_bytes /. bw in
  let t_other = t_attn +. t_elem in
  let dense = t_dense_fc +. t_other in
  let sparse = t_sparse_fc +. t_other in
  let roofline = (t_dense_fc /. 5.0) +. t_other in
  (dense, sparse, roofline)

let compute () =
  List.map
    (fun (p : Platform.t) ->
      let dense, sparse, roofline = times p Datatype.BF16 in
      {
        platform = p.Platform.name;
        dense_items_per_s = 1.0 /. dense;
        sparse_items_per_s = 1.0 /. sparse;
        roofline_items_per_s = 1.0 /. roofline;
      })
    [ Platform.spr; Platform.gvt3; Platform.zen4 ]

let deepsparse_comparison () =
  (* FP32, BS=32, all 24 cores of c5.12xlarge: batch amortizes weight
     streaming across 32 sequences *)
  let p = Platform.c5_12xlarge in
  let peak = Platform.peak_gflops p Datatype.F32 *. 1e9 in
  let eff = Modelkit.parlooper_efficiency ~platform:p Datatype.F32 in
  let chain_eff = 1.0 in
  let density = 1.0 -. sparsity in
  let bs = 32.0 in
  let bw = p.Platform.mem_bw_gbs *. 1e9 in
  let t_fc =
    Float.max
      (bs *. density *. fc_flops /. (peak *. eff *. chain_eff))
      (density *. 1.12 *. fc_weight_bytes Datatype.F32 /. bw)
  in
  let t_other = (bs *. attn_flops /. (peak *. eff)) +. (bs *. elementwise_bytes /. bw) in
  let ours = bs /. (t_fc +. t_other) in
  (ours, Anchors.deepsparse_bert_items_per_s)

let run () =
  Modelkit.section
    "Figure 10: block-sparse BERT-Base inference (BS=1, 8 cores, 80% 8x8)";
  Printf.printf "%-6s %10s %10s %10s %9s %9s\n" "plat" "dense/s" "sparse/s"
    "roofline" "speedup" "of-roof";
  let pts = compute () in
  List.iter
    (fun pt ->
      Printf.printf "%-6s %10.1f %10.1f %10.1f %8.2fx %8.0f%%\n" pt.platform
        pt.dense_items_per_s pt.sparse_items_per_s pt.roofline_items_per_s
        (pt.sparse_items_per_s /. pt.dense_items_per_s)
        (100.0 *. pt.sparse_items_per_s /. pt.roofline_items_per_s))
    pts;
  Printf.printf
    "(paper: speedups 1.75x/1.95x/2.79x; 71%%/72%%/88%% of roofline)\n";
  let ours, ds = deepsparse_comparison () in
  Printf.printf
    "c5.12xlarge FP32 BS=32: PARLOOPER %.0f items/s vs DeepSparse %.0f => \
     %.2fx (paper: 1.56x)\n"
    ours ds (ours /. ds)

lib/harness/fig7.mli:

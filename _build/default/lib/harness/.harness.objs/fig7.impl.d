lib/harness/fig7.ml: Datatype List Modelkit Platform Printf Resnet

lib/harness/fig9.mli:

lib/harness/fig2.ml: Datatype Float Gemm List Modelkit Onednn Platform Printf

lib/harness/fig6.ml: Autotune Gemm Gemm_trace List Modelkit Perf_model Platform Printf String

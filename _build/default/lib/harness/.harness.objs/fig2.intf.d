lib/harness/fig2.mli: Datatype

lib/harness/fig5.ml: Anchors Datatype List Modelkit Platform Printf

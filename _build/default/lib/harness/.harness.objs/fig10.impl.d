lib/harness/fig10.ml: Anchors Bert Datatype Float Isa List Modelkit Platform Printf

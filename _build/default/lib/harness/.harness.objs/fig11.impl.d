lib/harness/fig11.ml: Anchors Datatype Float List Llm Modelkit Onednn Platform Printf

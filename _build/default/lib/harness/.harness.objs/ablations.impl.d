lib/harness/ablations.ml: Array Datatype Fig6 Float Gemm Gemm_trace List Loop_spec Modelkit Perf_model Platform Printf Resnet Threaded_loop Unix

lib/harness/fig3.mli:

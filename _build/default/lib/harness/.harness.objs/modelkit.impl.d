lib/harness/modelkit.ml: Array Conv Conv_trace Datatype Float Gemm Gemm_trace Hashtbl Isa List Onednn Perf_model Platform Printf Resnet

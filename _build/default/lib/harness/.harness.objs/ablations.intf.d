lib/harness/ablations.mli:

lib/harness/fig6.mli: Gemm Platform

lib/harness/fig3.ml: Datatype Float List Modelkit Platform Printf

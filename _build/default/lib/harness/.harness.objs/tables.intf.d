lib/harness/tables.mli:

lib/harness/fig9.ml: Anchors Bert Datatype Float Gemm Gemm_trace List Modelkit Onednn Perf_model Platform Printf

lib/harness/tables.ml: Anchors Datatype Fig9 Float List Modelkit Platform Printf Resnet

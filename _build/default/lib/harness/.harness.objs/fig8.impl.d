lib/harness/fig8.ml: Datatype Float Isa List Modelkit Option Platform Printf

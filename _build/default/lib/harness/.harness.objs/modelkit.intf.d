lib/harness/modelkit.mli: Datatype Platform Resnet

lib/harness/fig4.ml: Autotune Datatype Float Gemm List Modelkit Onednn Platform Printf Tvm Unix

(** Fig. 8 — BF16 Block-SpMM (M = N = K = 2048) vs sparsity on SPR / GVT3
    / Zen4 for block sizes 32x32 .. 4x4, against the dense GEMM baseline.

    Mechanisms: effective FLOPs scale with density; the contraction rate
    is capped by the ISA's accumulation-chain efficiency at the block's
    K extent (AMX needs 32 -> 4x4 blocks peak at 12.5%); and the kernel
    streams the surviving A blocks plus dense B/C, so at high sparsity the
    dense-operand bandwidth bounds the attainable speedup (9.4x / 9.8x on
    GVT3 / Zen4). *)

type point = {
  platform : string;
  block : int;  (** bm = bk *)
  sparsity : float;
  effective_gflops : float;
  dense_gflops : float;  (** dense GEMM baseline *)
}

val compute : unit -> point list
val run : unit -> unit

(** Fig. 7 — ResNet-50 convolution shapes on SPR / GVT3 / Zen4 / ADL:
    PARLOOPER/TPP vs oneDNN. BF16 on the first three platforms, FP32 on
    ADL (no BF16 hardware); minibatch = core count (1 on ADL); ADL uses
    [schedule(dynamic)] for the hybrid P/E cores. Paper geomeans:
    1.16x / 1.75x / 1.12x / 1.14x. *)

type point = {
  platform : string;
  layer_id : int;
  parlooper : float;  (** GFLOPS *)
  onednn : float;
}

val compute : unit -> point list

(** Geomean speedup per platform name. *)
val geomeans : point list -> (string * float) list

val run : unit -> unit

type point = {
  platform : string;
  block : int;
  sparsity : float;
  effective_gflops : float;
  dense_gflops : float;
}

let dim = 2048
let blocks = [ 32; 16; 8; 4 ]
let sparsities = [ 0.0; 0.1; 0.3; 0.5; 0.7; 0.8; 0.9; 0.95 ]
let platforms = [ Platform.spr; Platform.gvt3; Platform.zen4 ]

(* microkernel register-blocking efficiency of the dense bm x bk x bn
   payload multiply: small blocks cannot hide FMA latency with 2D register
   blocking *)
let register_eff block = if block >= 16 then 0.9 else if block >= 8 then 0.8 else 0.65

let spmm_point (p : Platform.t) block sparsity =
  let dtype = Datatype.BF16 in
  let density = 1.0 -. sparsity in
  let isa = Option.get (Platform.contraction_isa p dtype) in
  let peak = Platform.peak_gflops p dtype *. 1e9 in
  let dense_eff = Modelkit.parlooper_efficiency ~platform:p dtype in
  let f = float_of_int dim in
  let dense_flops = 2.0 *. f *. f *. f in
  let eff_flops = dense_flops *. density in
  (* compute term: chain efficiency at the block's K extent *)
  let chain = Isa.chain_efficiency isa ~chain:block in
  let t_compute =
    eff_flops /. (peak *. chain *. register_eff block *. dense_eff)
  in
  (* bandwidth term: surviving A blocks (+12% BCSC index overhead) plus
     the dense B operand and C output *)
  let dt = float_of_int (Datatype.bytes dtype) in
  let a_bytes = density *. f *. f *. dt *. 1.12 in
  let bc_bytes = (f *. f *. dt) +. (f *. f *. 4.0) in
  let t_mem = (a_bytes +. bc_bytes) /. (p.Platform.mem_bw_gbs *. 1e9) in
  let t = Float.max t_compute t_mem in
  let dense_gflops = Platform.peak_gflops p dtype *. dense_eff in
  {
    platform = p.Platform.name;
    block;
    sparsity;
    effective_gflops = dense_flops /. t /. 1e9;
    dense_gflops;
  }

let compute () =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun b -> List.map (spmm_point p b) sparsities)
        blocks)
    platforms

let run () =
  Modelkit.section
    "Figure 8: BF16 Block-SpMM 2048^3 vs sparsity (effective GFLOPS)";
  let pts = compute () in
  List.iter
    (fun (p : Platform.t) ->
      let name = p.Platform.name in
      Printf.printf "--- %s (dense GEMM baseline: %.0f GFLOPS) ---\n" name
        (List.find (fun x -> x.platform = name) pts).dense_gflops;
      Printf.printf "%-10s" "sparsity";
      List.iter (fun b -> Printf.printf " %8dx%-3d" b b) blocks;
      print_newline ();
      List.iter
        (fun sp ->
          Printf.printf "%-10.2f" sp;
          List.iter
            (fun b ->
              let x =
                List.find
                  (fun q ->
                    q.platform = name && q.block = b && q.sparsity = sp)
                  pts
              in
              Printf.printf " %12.0f" x.effective_gflops)
            blocks;
          print_newline ())
        sparsities)
    platforms;
  (* headline checks *)
  let get name b sp =
    List.find (fun q -> q.platform = name && q.block = b && q.sparsity = sp) pts
  in
  let spr_50 = get "SPR" 32 0.5 and spr_90 = get "SPR" 32 0.9 in
  Printf.printf
    "\nSPR 32x32: %.1fx at 50%% sparsity, %.1fx at 90%% (paper: 1.7x, 5.3x)\n"
    (spr_50.effective_gflops /. spr_50.dense_gflops)
    (spr_90.effective_gflops /. spr_90.dense_gflops);
  let spr4 = get "SPR" 4 0.9 in
  Printf.printf "SPR 4x4 stays below dense even at 90%% (%.2fx; AMX chain 4/32)\n"
    (spr4.effective_gflops /. spr4.dense_gflops);
  let max_speedup name =
    List.filter (fun q -> q.platform = name) pts
    |> List.fold_left
         (fun a q -> Float.max a (q.effective_gflops /. q.dense_gflops))
         0.0
  in
  Printf.printf "max speedup GVT3 %.1fx, Zen4 %.1fx (paper: 9.4x, 9.8x)\n"
    (max_speedup "GVT3") (max_speedup "Zen4")

type point = {
  platform : string;
  mk : int;
  tflops : float;
  efficiency : float;
}

let sizes = [ 256; 512; 1024; 2048; 4096 ]
let batch = 512

let mlp_point (p : Platform.t) mk =
  let dtype = Datatype.BF16 in
  (* steady state: each core's weight panel stays resident across the
     minibatch (increasing re-use with weight size), so the contraction
     itself runs near peak; what the cascade pays for is moving the
     activations between layers through the LLC *)
  let layer_flops = 2.0 *. float_of_int mk *. float_of_int mk *. float_of_int batch in
  let t_compute = layer_flops /. (Platform.peak_gflops p dtype *. 0.9 *. 1e9) in
  (* activations of one layer cross the LLC to the next layer's consumers:
     read + write of [mk x batch] bf16 *)
  let act_bytes = 2.0 *. float_of_int (mk * batch * Datatype.bytes dtype) in
  let t_llc = act_bytes /. (Modelkit.llc_xcore_gbs p *. 1e9) in
  let t = Float.max t_compute t_llc in
  let peak = Platform.peak_gflops p dtype in
  let tflops = layer_flops /. t /. 1e12 in
  { platform = p.Platform.name; mk; tflops; efficiency = tflops *. 1e3 /. peak }

let compute () =
  List.concat_map
    (fun p -> List.map (mlp_point p) sizes)
    [ Platform.spr; Platform.gvt3; Platform.zen4 ]

let run () =
  Modelkit.section
    "Figure 3: BF16 MLP (bias+ReLU), N=512 - performance and efficiency";
  Printf.printf "%-6s %6s %10s %10s\n" "plat" "M=K" "TFLOPS" "eff";
  let pts = compute () in
  List.iter
    (fun pt ->
      Printf.printf "%-6s %6d %10.2f %9.1f%%\n" pt.platform pt.mk pt.tflops
        (100.0 *. pt.efficiency))
    pts;
  let spr_max =
    List.filter (fun p -> p.platform = "SPR") pts
    |> List.fold_left (fun a p -> Float.max a p.efficiency) 0.0
  in
  let others_max name =
    List.filter (fun p -> p.platform = name) pts
    |> List.fold_left (fun a p -> Float.max a p.efficiency) 0.0
  in
  Printf.printf
    "SPR efficiency maxes out at %.1f%% (paper: 37.4%%, LLC-bandwidth bound)\n"
    (100.0 *. spr_max);
  Printf.printf "GVT3 max eff %.0f%%, Zen4 max eff %.0f%% (paper: >90%%)\n"
    (100.0 *. others_max "GVT3")
    (100.0 *. others_max "Zen4");
  (* absolute-rate dominance of SPR (paper: up to 3.3x GVT3, 6.6x Zen4) *)
  let at name mk =
    (List.find (fun p -> p.platform = name && p.mk = mk) pts).tflops
  in
  Printf.printf
    "SPR is %.1fx GVT3 and %.1fx Zen4 at M=K=1024 (paper: up to 3.3x / 6.6x)\n"
    (at "SPR" 1024 /. at "GVT3" 1024)
    (at "SPR" 1024 /. at "Zen4" 1024)

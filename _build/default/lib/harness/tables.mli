(** Table I — MLPerf v2.1 BERT time-to-train on 8/16 SPR nodes (with the
    published DGX-A100 anchor), via a distributed scaling model: total
    training work is fixed by the MLPerf workload (calibrated once against
    the 8-node submission), per-socket throughput comes from the Fig. 9
    model, and multi-node efficiency from a per-step gradient allreduce.

    Table II — ResNet-50 BF16 training throughput (images/s) on single-
    socket SPR and GVT3: convolution time from the Fig. 7 conv model plus
    streamed batchnorm/elementwise traffic; IPEX+oneDNN anchored. *)

type table1_row = { system : string; minutes : float }

val table1 : unit -> table1_row list

type table2_row = { system : string; implementation : string; images_per_s : float }

val table2 : unit -> table2_row list

val run : unit -> unit

(** Fig. 4 — FP32 GEMM on SPR: PARLOOPER vs oneDNN vs TVM-Autoscheduler
    (1000 searched schedules), plus the auto-tuning-cost comparison
    (PARLOOPER searched ~1000 outer-loop configs in 2s-22min; TVM took
    17-50 minutes, i.e. 2.3x-500x slower). *)

type point = {
  m : int;
  n : int;
  k : int;
  parlooper : float;
  onednn : float;
  tvm : float;
  parlooper_tune_s : float;  (** measured on this host, scaled candidates *)
  tvm_tune_s : float;
}

val compute : unit -> point list
val run : unit -> unit

(** Fig. 5 — FP32 GEMM with BERT/GPT/DLRM shapes: the 20-LOC
    PARLOOPER/TPP GEMM vs the Mojo matmul (anchored from the Modular blog)
    on a Xeon 8223 (c5.4xlarge). The paper reports a geomean speedup of
    1.35x. *)

type point = {
  name : string;
  m : int;
  k : int;
  n : int;
  parlooper : float;
  mojo : float;
}

val compute : unit -> point list
val run : unit -> unit

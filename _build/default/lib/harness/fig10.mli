(** Fig. 10 — block-sparse BERT-Base SQuAD inference (BS = 1, 8 cores,
    BF16): dense vs 80%-sparse 8x8 blocks, with the paper's roofline
    (max 5x on contractions, no speedup elsewhere), plus the FP32 BS=32
    DeepSparse comparison on c5.12xlarge (Fig. 10-Right). *)

type point = {
  platform : string;
  dense_items_per_s : float;
  sparse_items_per_s : float;
  roofline_items_per_s : float;
}

val compute : unit -> point list

(** (PARLOOPER items/s, DeepSparse items/s) on c5.12xlarge, FP32 BS=32. *)
val deepsparse_comparison : unit -> float * float

val run : unit -> unit

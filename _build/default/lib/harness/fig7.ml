type point = {
  platform : string;
  layer_id : int;
  parlooper : float;
  onednn : float;
}

let platform_dtype =
  [
    (Platform.spr, Datatype.BF16);
    (Platform.gvt3, Datatype.BF16);
    (Platform.zen4, Datatype.BF16);
    (Platform.adl, Datatype.F32);
  ]

let compute () =
  List.concat_map
    (fun ((p : Platform.t), dtype) ->
      List.map
        (fun (sh : Resnet.conv_shape) ->
          {
            platform = p.Platform.name;
            layer_id = sh.Resnet.layer_id;
            parlooper = Modelkit.parlooper_conv ~platform:p ~dtype sh;
            onednn = Modelkit.onednn_conv ~platform:p ~dtype sh;
          })
        Resnet.conv_shapes)
    platform_dtype

let geomeans pts =
  List.map
    (fun ((p : Platform.t), _) ->
      let name = p.Platform.name in
      let mine = List.filter (fun x -> x.platform = name) pts in
      ( name,
        Modelkit.geomean (List.map (fun x -> x.parlooper /. x.onednn) mine) ))
    platform_dtype

let run () =
  Modelkit.section
    "Figure 7: ResNet-50 convolutions vs oneDNN (GFLOPS, modeled)";
  let pts = compute () in
  List.iter
    (fun ((p : Platform.t), dtype) ->
      let name = p.Platform.name in
      Printf.printf "--- %s (%s, minibatch=%d) ---\n" name
        (Datatype.to_string dtype)
        (if name = "ADL" then 1 else Platform.cores p);
      Printf.printf "%-6s %12s %12s %8s\n" "layer" "PARLOOPER" "oneDNN"
        "speedup";
      List.iter
        (fun x ->
          if x.platform = name then
            Printf.printf "%-6d %12.0f %12.0f %7.2fx\n" x.layer_id x.parlooper
              x.onednn
              (x.parlooper /. x.onednn))
        pts)
    platform_dtype;
  Printf.printf "\ngeomean speedups (paper: SPR 1.16x GVT3 1.75x Zen4 1.12x ADL 1.14x):\n";
  List.iter
    (fun (name, g) -> Printf.printf "  %-5s %.2fx\n" name g)
    (geomeans pts)

(** Fig. 6 — performance-model fidelity: measured vs modeled GFLOPS across
    many loop instantiations of a GEMM.

    Unlike the other figures, the "measured" series here is {e real}: each
    candidate [loop_spec_string] is executed by the actual OCaml kernels
    on this machine and timed; the "modeled" series replays the same
    instantiations through the §II-E cache model with the host's platform
    description. The paper's claim — the top-5 modeled schedules always
    contain the most performant one — is then checked directly. *)

type point = {
  spec : string;
  cfg : Gemm.config;
  measured : float;  (** GFLOPS on this host *)
  modeled : float;  (** GFLOPS predicted by the cache model *)
}

(** Re-score the modeled series against a (possibly perturbed) platform,
    keeping the measured series. *)
val remodel : platform:Platform.t -> point list -> point list

(** [compute ~candidates ()] — default 16 schedules on a 256^3 GEMM. *)
val compute : ?candidates:int -> unit -> point list

(** Rank (1-based) of the best measured schedule in the modeled ordering. *)
val best_measured_model_rank : point list -> int

val run : unit -> unit

type point = {
  label : string;
  platform : string;
  sequences_per_s : float;
}

let cfg = Bert.large_config
let padded_seq = 384

(* training-loop elementwise traffic per sequence: activations touched by
   dropout/softmax/layernorm/residual forward+backward plus optimizer
   state updates, as streamed FP32 bytes *)
let elementwise_bytes ~seq =
  let act_pass =
    float_of_int (cfg.Bert.layers * seq * cfg.Bert.hidden * 4)
  in
  30.0 *. act_pass

type impl = {
  label : string;
  eff : Platform.t -> float;  (** contraction efficiency, BF16 *)
  unpad : bool;
  extra_factor : float;  (** eager-mode slowdown on everything *)
}

let parlooper_eff p = Modelkit.parlooper_efficiency ~platform:p Datatype.BF16

(* prior work [12]: same TPP contractions but one fixed loop
   instantiation - score the untuned static order instead of the best *)
let tpp_static_eff (p : Platform.t) =
  let cores = Platform.cores p in
  let cfg =
    Gemm.make_config ~bm:64 ~bn:64 ~bk:64 ~dtype:Datatype.BF16 ~k_step:4
      ~m:1024 ~n:1024 ~k:1024 ()
  in
  (Gemm_trace.score ~representative:4 ~platform:p ~nthreads:cores cfg "BCa")
    .Perf_model.gflops
  /. Platform.peak_gflops p Datatype.BF16

let vendor_eff p = Onednn.dense_efficiency ~platform:p Datatype.BF16

let impls =
  [
    { label = "PARLOOPER+TPP"; eff = parlooper_eff; unpad = true;
      extra_factor = 1.0 };
    { label = "TPP-static [12]"; eff = tpp_static_eff; unpad = true;
      extra_factor = 1.0 };
    { label = "IPEX+oneDNN"; eff = vendor_eff; unpad = false;
      extra_factor = 1.0 };
    { label = "HuggingFace"; eff = vendor_eff; unpad = false;
      extra_factor = 1.0 /. Anchors.hf_eager_efficiency_factor };
  ]

let seq_per_s (p : Platform.t) impl =
  let seq =
    if impl.unpad then
      int_of_float
        (Float.round
           (Anchors.squad_real_token_fraction *. float_of_int padded_seq))
    else padded_seq
  in
  let flops = 3.0 *. Bert.forward_flops cfg ~seq in
  let rate = Platform.peak_gflops p Datatype.BF16 *. 1e9 *. impl.eff p in
  let t_contr = flops /. rate in
  let t_elem = elementwise_bytes ~seq /. (p.Platform.mem_bw_gbs *. 1e9) in
  1.0 /. ((t_contr +. t_elem) *. impl.extra_factor)

let compute () =
  let spr =
    List.map
      (fun i ->
        ({ label = i.label; platform = "SPR";
           sequences_per_s = seq_per_s Platform.spr i }
          : point))
      impls
  in
  let ours = List.hd impls in
  let others =
    List.map
      (fun (p : Platform.t) ->
        { label = ours.label; platform = p.Platform.name;
          sequences_per_s = seq_per_s p ours })
      [ Platform.gvt3; Platform.zen4 ]
  in
  spr @ others

let run () =
  Modelkit.section "Figure 9: BERT-Large SQuAD fine-tuning (sequences/s)";
  let pts = compute () in
  Printf.printf "%-18s %-6s %10s\n" "implementation" "plat" "seq/s";
  List.iter
    (fun (pt : point) ->
      Printf.printf "%-18s %-6s %10.1f\n" pt.label pt.platform
        pt.sequences_per_s)
    pts;
  let get l p =
    (List.find (fun (x : point) -> x.label = l && x.platform = p) pts)
      .sequences_per_s
  in
  Printf.printf
    "PARLOOPER vs TPP-static: %.2fx (paper: 1.22x); vs IPEX: %.1fx (paper: \
     3.3x)\n"
    (get "PARLOOPER+TPP" "SPR" /. get "TPP-static [12]" "SPR")
    (get "PARLOOPER+TPP" "SPR" /. get "IPEX+oneDNN" "SPR");
  Printf.printf
    "SPR vs GVT3: %.1fx (paper: 2.8x); SPR vs Zen4: %.1fx (paper: 4.4x)\n"
    (get "PARLOOPER+TPP" "SPR" /. get "PARLOOPER+TPP" "GVT3")
    (get "PARLOOPER+TPP" "SPR" /. get "PARLOOPER+TPP" "Zen4")

(** Fig. 9 — BERT-Large SQuAD fine-tuning throughput (sequences/s):
    PARLOOPER/TPP vs TPP-with-static-loops [12], IPEX+oneDNN and
    HuggingFace on SPR, plus PARLOOPER on GVT3 and Zen4.

    Mechanisms: contraction rate from the cache model per implementation
    (tuned instantiations vs a fixed static order vs the vendor model);
    the Unpad optimization computes only on real tokens while IPEX/HF
    process the full padded batch; HF additionally pays the eager-mode
    anchor factor. Non-contraction work (optimizer, dropout/softmax/
    layernorm traffic, embeddings) is charged as streamed bytes. *)

type point = {
  label : string;
  platform : string;
  sequences_per_s : float;
}

val compute : unit -> point list
val run : unit -> unit

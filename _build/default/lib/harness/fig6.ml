type point = {
  spec : string;
  cfg : Gemm.config;
  measured : float;
  modeled : float;
}

(* per-BRGEMM-invocation driver cost of these OCaml kernels on this host
   (accumulator setup, view arithmetic, closure dispatch), measured once
   and used by the model's overhead term *)
let host_invocation_overhead_cycles ~bm ~bn =
  1000.0 +. (8.0 *. float_of_int (bm * bn))

let remodel ~platform pts =
  List.map
    (fun p ->
      let order = List.hd (String.split_on_char ' ' p.spec) in
      let bm = p.cfg.Gemm.bm and bn = p.cfg.Gemm.bn in
      {
        p with
        modeled =
          (Gemm_trace.score
             ~overhead_cycles:(host_invocation_overhead_cycles ~bm ~bn)
             ~platform ~nthreads:1 p.cfg order)
            .Perf_model.gflops;
      })
    pts

(* the schedule sweep varies what the paper's auto-tuner varies: block
   (tile) sizes, batch-reduce span and loop order — these change both real
   wall-clock on this host and the model's prediction *)
let dim = 512

let schedules =
  List.concat_map
    (fun b ->
      List.concat_map
        (fun k_step ->
          if k_step * b > dim then []
          else
            List.map
              (fun order -> (b, k_step, order))
              [ "abc"; "bca"; "cab"; "acb" ])
        [ 1; 4 ])
    [ 8; 16; 32; 64 ]

let median3 a b c = max (min a b) (min (max a b) c)

let compute ?(candidates = 16) () =
  let picked = List.filteri (fun i _ -> i < candidates * 2) schedules in
  List.map
    (fun (b, k_step, order) ->
      let cfg =
        Gemm.make_config ~bm:b ~bn:b ~bk:b ~k_step ~m:dim ~n:dim ~k:dim ()
      in
      let meas () = Autotune.measure_gemm ~nthreads:1 ~repeats:1 cfg order in
      let measured = median3 (meas ()) (meas ()) (meas ()) in
      let modeled =
        (Gemm_trace.score
           ~overhead_cycles:(host_invocation_overhead_cycles ~bm:b ~bn:b)
           ~platform:Platform.host ~nthreads:1 cfg order)
          .Perf_model.gflops
      in
      let spec = Printf.sprintf "%s b%d ks%d" order b k_step in
      { spec; cfg; measured; modeled })
    picked

let best_measured_model_rank pts =
  let best =
    List.fold_left (fun a p -> if p.measured > a.measured then p else a)
      (List.hd pts) pts
  in
  let by_model =
    List.sort (fun a b -> compare b.modeled a.modeled) pts
  in
  let rec find i = function
    | [] -> i
    | p :: rest -> if p.spec = best.spec then i else find (i + 1) rest
  in
  find 1 by_model

let run () =
  Modelkit.section
    "Figure 6: performance model vs real measurement across loop schedules";
  let pts = compute () in
  Printf.printf "%-14s %14s %14s\n" "schedule" "measured GF" "modeled GF";
  List.iter
    (fun pt ->
      Printf.printf "%-14s %14.3f %14.3f\n" pt.spec pt.measured pt.modeled)
    pts;
  let rank = best_measured_model_rank pts in
  Printf.printf
    "best measured schedule ranks #%d in the modeled ordering (paper: \
     top-5 modeled always contains the best)\n"
    rank

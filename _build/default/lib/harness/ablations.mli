(** Ablation benches for the design choices DESIGN.md calls out — beyond
    the paper's own figures:

    - blocked vs flat B layout at a power-of-two leading dimension
      (isolates Fig. 2's conflict-miss mechanism);
    - JIT cache: cost of compiling a loop nest vs a cache hit, measured
      for real on this host;
    - static vs dynamic scheduling on hybrid (P/E) cores, modeled;
    - performance-model robustness: the top schedule's rank under +/-50%
      cache-size perturbation. *)

val run : unit -> unit

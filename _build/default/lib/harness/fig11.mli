(** Fig. 11 — LLM inference (GPT-J-6B and Llama2-13B) on SPR and GVT3:
    first-token latency (compute-bound prefill over 1024 input tokens) and
    next-token latency (bandwidth-bound decode, 32 output tokens), BF16 vs
    FP32, PARLOOPER/TPP vs HuggingFace. *)

type point = {
  model : string;
  platform : string;
  impl : string;
  dtype : Datatype.t;
  first_token_ms : float;
  next_token_ms : float;
  total_ms : float;  (** 1 first + 31 next *)
}

val compute : unit -> point list
val run : unit -> unit

type point = {
  name : string;
  m : int;
  k : int;
  n : int;
  parlooper : float;
  mojo : float;
}

let compute () =
  let p = Platform.xeon_8223 in
  let cores = Platform.cores p in
  List.map
    (fun (name, (m, k, n), mojo) ->
      let parlooper =
        Modelkit.parlooper_gemm ~platform:p ~nthreads:cores
          ~dtype:Datatype.F32 ~m ~n ~k
      in
      { name; m; k; n; parlooper; mojo })
    Anchors.mojo_gemms

let run () =
  Modelkit.section
    "Figure 5: GEMM shapes from BERT/GPT/DLRM - PARLOOPER vs Mojo (Xeon 8223)";
  Printf.printf "%-10s %-16s %10s %10s %8s\n" "workload" "MxKxN" "PARLOOPER"
    "Mojo" "speedup";
  let pts = compute () in
  List.iter
    (fun pt ->
      Printf.printf "%-10s %5dx%-5dx%-4d %10.0f %10.0f %7.2fx\n" pt.name pt.m
        pt.k pt.n pt.parlooper pt.mojo
        (pt.parlooper /. pt.mojo))
    pts;
  let g = Modelkit.geomean (List.map (fun p -> p.parlooper /. p.mojo) pts) in
  Printf.printf "geomean speedup: %.2fx (paper: 1.35x)\n" g

(** Shared utilities for the figure/table harnesses: the PARLOOPER side of
    every experiment (candidate loop instantiations scored through the
    §II-E model), platform aggregation helpers, and output formatting. *)

(** Modeled GFLOPS of the PARLOOPER/TPP GEMM: best of a small per-shape
    candidate set of loop instantiations (the auto-tuned configuration). *)
val parlooper_gemm :
  platform:Platform.t ->
  nthreads:int ->
  dtype:Datatype.t ->
  m:int ->
  n:int ->
  k:int ->
  float

(** Modeled GFLOPS of the PARLOOPER/TPP convolution across the whole chip:
    per-core simulation of one image, scaled by throughput-proportional
    core aggregation (dynamic scheduling handles hybrid cores). *)
val parlooper_conv :
  platform:Platform.t -> dtype:Datatype.t -> Resnet.conv_shape -> float

(** Vendor-library convolution counterpart ({!Onednn.conv_gflops}) for a
    shape record. *)
val onednn_conv :
  platform:Platform.t -> dtype:Datatype.t -> Resnet.conv_shape -> float

(** Dense-contraction efficiency (0..1) of the tuned PARLOOPER GEMM at a
    representative large shape (memoized). *)
val parlooper_efficiency : platform:Platform.t -> Datatype.t -> float

(** Efficiency with only [cores] active (e.g. the 8-core latency setup of
    Fig. 10). *)
val parlooper_efficiency_at :
  platform:Platform.t -> cores:int -> Datatype.t -> float

(** Sustained cross-core LLC bandwidth (GB/s) used for activation
    hand-off between cascading layers (Fig. 3's limiting factor on SPR). *)
val llc_xcore_gbs : Platform.t -> float

(** Sum of per-group core throughput scales relative to the fastest core:
    e.g. ADL = 8 + 8 * (E-core speed / P-core speed). *)
val effective_cores : Platform.t -> Datatype.t -> float

val geomean : float list -> float

(** Formatting helpers: a titled section and aligned rows. *)
val section : string -> unit
val rowf : ('a, out_channel, unit) format -> 'a

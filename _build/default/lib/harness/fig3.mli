(** Fig. 3 — BF16 MLP with bias + ReLU: performance and efficiency vs
    weight size (M = K sweep, N = 512 minibatch) on SPR / GVT3 / Zen4.

    The cascading layers hand activations core-to-core through the LLC;
    on SPR this bandwidth (not compute) caps efficiency at ~37%. *)

type point = {
  platform : string;
  mk : int;
  tflops : float;
  efficiency : float;
}

val compute : unit -> point list
val run : unit -> unit

let section title =
  Printf.printf "\n== %s ==\n%!" title

let rowf fmt = Printf.printf fmt

let geomean = function
  | [] -> 0.0
  | xs ->
    exp (List.fold_left (fun a x -> a +. log (Float.max 1e-12 x)) 0.0 xs
         /. float_of_int (List.length xs))

(* modeling granularity: big blocks keep traces small without changing
   who-wins comparisons *)
let model_block dim = if dim >= 1024 then 128 else if dim >= 256 then 64 else 32

let gemm_candidates (cfg : Gemm.config) =
  let mb = Gemm.mb cfg and nb = Gemm.nb cfg in
  let base = [ ("BCa", cfg) ] in
  let dyn = [ ("BCa @ schedule(dynamic,1)", cfg) ] in
  let blocked =
    if mb mod 4 = 0 && nb mod 4 = 0 then
      [
        ( "BCabc",
          { cfg with Gemm.mk_blocks = [ mb / 4 ]; nk_blocks = [ nb / 4 ] } );
        ( "aBCbc",
          { cfg with Gemm.mk_blocks = [ mb / 4 ]; nk_blocks = [ nb / 4 ] } );
      ]
    else []
  in
  base @ dyn @ blocked

let parlooper_gemm ~platform ~nthreads ~dtype ~m ~n ~k =
  let bmax = min (model_block m) (min (model_block n) (model_block k)) in
  let block_sizes =
    (* small problems benefit from fine-grained tasking *)
    let fine = if m <= 512 || n <= 512 then [ min 16 bmax ] else [] in
    List.sort_uniq compare ([ bmax; min 32 bmax; min 64 bmax ] @ fine)
  in
  let rep = min nthreads 4 in
  List.concat_map
    (fun b ->
      let cfg =
        Gemm.make_config ~bm:(min b m) ~bn:(min b n) ~bk:(min b k) ~dtype
          ~k_step:(min 4 (k / min b k)) ~m ~n ~k ()
      in
      gemm_candidates cfg)
    block_sizes
  |> List.map (fun (spec, cfg) ->
         (Gemm_trace.score ~representative:rep ~platform ~nthreads cfg spec)
           .Perf_model.gflops)
  |> List.fold_left Float.max 0.0

let eff_memo : (string * string * int, float) Hashtbl.t = Hashtbl.create 16

(* efficiency at a given active core count (defaults to the whole chip) *)
let parlooper_efficiency_at ~platform ~cores dtype =
  let key =
    (platform.Platform.name, Datatype.to_string dtype, cores)
  in
  match Hashtbl.find_opt eff_memo key with
  | Some e -> e
  | None ->
    let g =
      parlooper_gemm ~platform ~nthreads:cores ~dtype ~m:2048 ~n:2048 ~k:2048
    in
    let peak = Platform.peak_gflops ~cores platform dtype in
    let e = if peak <= 0.0 then 0.0 else g /. peak in
    Hashtbl.replace eff_memo key e;
    e

let parlooper_efficiency ~platform dtype =
  parlooper_efficiency_at ~platform ~cores:(Platform.cores platform) dtype

let effective_cores (p : Platform.t) dtype =
  let per_group gi (g : Platform.core_group) =
    ignore gi;
    match Isa.best_for dtype g.Platform.isas with
    | Some i ->
      Isa.flops_per_cycle i *. g.Platform.freq_ghz *. g.Platform.fma_scale
    | None -> (
      match Isa.best_for Datatype.F32 g.Platform.isas with
      | Some i ->
        Isa.flops_per_cycle i *. g.Platform.freq_ghz *. g.Platform.fma_scale
      | None -> 0.0)
  in
  let rates = Array.to_list (Array.mapi per_group p.Platform.core_groups) in
  let fastest = List.fold_left Float.max 0.0 rates in
  if fastest <= 0.0 then 0.0
  else
    List.fold_left2
      (fun acc (g : Platform.core_group) rate ->
        acc +. (float_of_int g.Platform.count *. (rate /. fastest)))
      0.0
      (Array.to_list p.Platform.core_groups)
      rates

let conv_config_of_shape ~dtype (sh : Resnet.conv_shape) ~n =
  let bc = min 32 sh.Resnet.c and bk = min 32 sh.Resnet.k in
  Conv.make_config ~stride:sh.Resnet.stride ~pad:sh.Resnet.pad ~bc ~bk
    ~c_step:(min 4 (sh.Resnet.c / bc))
    ~dtype ~n ~c:sh.Resnet.c ~k:sh.Resnet.k ~h:sh.Resnet.h ~w:sh.Resnet.w
    ~r:sh.Resnet.r ~s:sh.Resnet.s ()

let conv_specs = [ "acdebfg"; "acdbefg"; "adcebfg" ]

let parlooper_conv ~platform ~dtype sh =
  let cfg = conv_config_of_shape ~dtype sh ~n:1 in
  let per_core =
    conv_specs
    |> List.map (fun spec ->
           (Conv_trace.score ~platform ~nthreads:1 ~representative:1 cfg spec)
             .Perf_model.gflops)
    |> List.fold_left Float.max 0.0
  in
  per_core *. effective_cores platform dtype

let onednn_conv ~platform ~dtype sh =
  let cfg = conv_config_of_shape ~dtype sh ~n:(Platform.cores platform) in
  Onednn.conv_gflops ~platform cfg

(* sustained all-to-all LLC / uncore bandwidth for core-to-core activation
   hand-off between cascading layers: SPR crosses two sockets' meshes and
   UPI; single-socket parts sustain more relative to their compute peak *)
let llc_xcore_gbs (p : Platform.t) =
  match p.Platform.name with
  | "SPR" -> 40.0
  | "GVT3" -> 160.0
  | "Zen4" -> 120.0
  | "ADL" -> 100.0
  | _ -> 80.0

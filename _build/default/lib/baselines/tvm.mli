(** Behavioural model of TVM-Autoscheduler / Ansor (Fig. 4 comparator).

    Mechanisms reproduced rather than hard-coded outcomes:
    - the search space extends down to register blocking and instruction
      selection, so each candidate must be compiled and measured —
      auto-tuning costs seconds per schedule (the paper observes 17-50
      minutes for 1000 schedules, i.e. 2.3x-500x slower than PARLOOPER's
      outer-loop-only search);
    - no BF16 VNNI/AMX code generation: low-precision requests fall back
      to FP32-class instruction sequences (§V-A2);
    - generated kernels lack the BRGEMM batch-reduce accumulation: K is
      reduced in register-tile-sized steps with the C tile re-visited per
      step, which costs extra C traffic on small/skewed shapes while
      large compute-bound shapes still reach comparable performance. *)

(** Seconds to search [n_schedules] candidates. *)
val autotune_seconds : n_schedules:int -> float

(** Modeled performance of the best schedule TVM finds. *)
val gemm_gflops : platform:Platform.t -> nthreads:int -> Gemm.config -> float

(** Behavioural model of a vendor library (oneDNN / ACL / AOCL) — the
    paper's principal comparator.

    Rather than hard-coding the paper's bars, this model reproduces the
    {e mechanisms} the paper attributes the gaps to, running the same
    cache/cycle simulator as the PARLOOPER score:

    - GEMM: B is consumed {e flat} (not blocked), so panels with large
      power-of-two leading dimensions suffer set-conflict capacity waste
      (§V-A1's "extraneous cache-conflict misses for the case with leading
      dimension 4096");
    - a fixed heuristic loop schedule per kernel rather than per-shape
      tuned instantiations;
    - convolutions on hybrid ADL use static scheduling (no
      [schedule(dynamic)]), so the slower E-cores straggle;
    - the oneDNN/ACL integration on Graviton 3 runs an FP32 front-end that
      converts tensors to BF16 on the fly (§V-A4), charged as extra
      streaming traffic and halved effective contraction peak. *)

(** Modeled GEMM performance of the vendor library. *)
val gemm_gflops :
  platform:Platform.t -> nthreads:int -> Gemm.config -> float

(** Modeled convolution performance of the vendor library at minibatch
    [n] images spread over the platform's cores. *)
val conv_gflops : platform:Platform.t -> Conv.config -> float

(** Dense-contraction efficiency of the vendor library at a
    representative workload shape (used by the end-to-end models). *)
val dense_efficiency : platform:Platform.t -> Datatype.t -> float

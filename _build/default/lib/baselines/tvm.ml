(* per-candidate compile + on-hardware measurement cost (seconds);
   the paper's 1000-schedule searches take 17-50 minutes *)
let per_schedule_seconds = 1.8

let autotune_seconds ~n_schedules = float_of_int n_schedules *. per_schedule_seconds

(* graph-executor dispatch + packed-function call overhead per kernel
   launch; negligible for large GEMMs, significant for small ones *)
let dispatch_overhead_s = 25e-6

let gemm_gflops ~platform ~nthreads (cfg : Gemm.config) =
  (* no AMX/VNNI codegen: BF16 falls back to an FP32-class pipeline *)
  let dtype = Datatype.F32 in
  let m = cfg.Gemm.m and n = cfg.Gemm.n and k = cfg.Gemm.k in
  (* Ansor explores tilings freely, but its generated kernels reduce K in
     register-tile steps (no batch-reduce) and use static schedules *)
  let blocks =
    List.filter (fun b -> m mod b = 0 && n mod b = 0 && k mod b = 0)
      [ 32; 64; 128 ]
  in
  List.map
    (fun b ->
      let cfg' = Gemm.make_config ~bm:b ~bn:b ~bk:b ~dtype ~k_step:1 ~m ~n ~k () in
      (Gemm_trace.score ~representative:4 ~platform ~nthreads cfg' "BCa")
        .Perf_model.gflops)
    blocks
  |> List.fold_left Float.max 0.0
  |> fun gflops ->
  let flops = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k in
  let t = (flops /. (gflops *. 1e9)) +. dispatch_overhead_s in
  flops /. t /. 1e9

(* fixed vendor heuristic schedule: parallel over M and N blocks, K inner,
   single-level blocking *)
let vendor_gemm_spec = "BCa"
let vendor_conv_spec = "Acdebfg"

let gemm_gflops ~platform ~nthreads (cfg : Gemm.config) =
  let cfg = { cfg with Gemm.mk_blocks = []; nk_blocks = []; kk_blocks = [] } in
  (Gemm_trace.score ~flat_b:true ~platform ~nthreads cfg vendor_gemm_spec)
    .Perf_model.gflops

(* halve a platform's contraction throughput (ACL FP32-front-end
   conversion stalls on GVT3) *)
let halved_fma (p : Platform.t) =
  {
    p with
    Platform.core_groups =
      Array.map
        (fun (g : Platform.core_group) ->
          { g with Platform.fma_scale = g.fma_scale *. 0.6 })
        p.core_groups;
  }

let per_core_groups (p : Platform.t) dtype =
  Array.to_list p.core_groups
  |> List.mapi (fun gi (g : Platform.core_group) ->
         let gf =
           match Isa.best_for dtype g.isas with
           | Some i -> Isa.flops_per_cycle i *. g.freq_ghz *. g.fma_scale
           | None -> (
             match Isa.best_for Datatype.F32 g.isas with
             | Some i -> Isa.flops_per_cycle i *. g.freq_ghz *. g.fma_scale
             | None -> 0.0)
         in
         ignore gi;
         (g.count, gf))

let conv_gflops ~(platform : Platform.t) (cfg : Conv.config) =
  (* per-core score at one image per core; vendor library uses the fixed
     schedule, static partitioning, and no batch-reduce folding over the
     channel-block loop (c_step = 1 -> the output block is re-visited per
     channel block) *)
  let cfg1 = { cfg with Conv.n = 1; c_step = min 2 cfg.Conv.c_step; h_step = 1 } in
  let acl_conversion_path =
    platform.Platform.name = "GVT3" && Datatype.equal cfg.Conv.dtype Datatype.BF16
  in
  let sim_platform =
    if acl_conversion_path then halved_fma platform else platform
  in
  let r =
    Conv_trace.score ~flat_input:acl_conversion_path ~platform:sim_platform
      ~nthreads:1 ~representative:1 cfg1 vendor_conv_spec
  in
  let per_core = r.Perf_model.gflops in
  (* scale per-core throughput to the whole chip; heterogeneous cores with
     a STATIC schedule straggle on the slowest group *)
  let groups = per_core_groups platform cfg.Conv.dtype in
  match groups with
  | [ (n, _) ] -> per_core *. float_of_int n
  | groups ->
    let fastest = List.fold_left (fun a (_, g) -> Float.max a g) 0.0 groups in
    let total_cores = List.fold_left (fun a (n, _) -> a + n) 0 groups in
    let slowest_pos =
      List.fold_left (fun a (_, g) -> Float.min a g) infinity groups
    in
    (* static partitioning straggles on the slowest core group; vendor
       runtimes commonly fall back to pinning work on the fast cores
       only, so take the better of the two *)
    let static_all =
      per_core *. float_of_int total_cores *. (slowest_pos /. fastest)
    in
    let fast_only =
      List.fold_left
        (fun acc (cnt, g) -> if g = fastest then acc + cnt else acc)
        0 groups
      |> float_of_int |> ( *. ) per_core
    in
    Float.max static_all fast_only

let dense_efficiency ~(platform : Platform.t) dtype =
  let cfg =
    Gemm.make_config ~bm:64 ~bn:64 ~bk:64 ~dtype
      ~vnni_b:false ~k_step:4 ~m:2048 ~n:2048 ~k:2048 ()
  in
  let cores = Platform.cores platform in
  let g = gemm_gflops ~platform ~nthreads:cores cfg in
  let peak = Platform.peak_gflops ~cores platform dtype in
  if peak <= 0.0 then 0.0 else g /. peak

(** Anchored comparators.

    The paper itself does not run these systems: Mojo numbers are
    extracted from the Modular blog (Fig. 5), DeepSparse from Neural
    Magic's website (Fig. 10-Right), and the DGX-A100 row of Table I from
    the MLPerf v2.1 results. We therefore carry them as fixed anchor
    tables, exactly as the paper does, and recompute only the
    PARLOOPER/TPP side mechanistically. Eager-mode HuggingFace efficiency
    is an anchored scalar used by the end-to-end workload models. *)

(** Fig. 5 GEMM shapes (m, k, n) from BERT/GPT/DLRM with Mojo's achieved
    GFLOPS on a Xeon 8223 (c5.4xlarge) as published on the Modular blog. *)
val mojo_gemms : (string * (int * int * int) * float) list

(** DeepSparse sparse BERT-base SQuAD throughput (items/s) at FP32,
    BS=32, 24 cores on c5.12xlarge (F1 87.1 model). *)
val deepsparse_bert_items_per_s : float

(** DGX box (8x A100) BERT MLPerf v2.1 time-to-train, minutes (Table I). *)
val dgx_a100_bert_ttt_minutes : float

(** Fraction of vendor-library dense efficiency achieved by eager-mode
    HuggingFace transformer code (drives the HF bars of Figs. 9/11). *)
val hf_eager_efficiency_factor : float

(** HF BF16 on Graviton 3 runs a reference (non-vectorized) path — the
    paper reports it timing out; effectively unusable. *)
val hf_gvt3_bf16_usable : bool

(** Average fraction of a padded SQuAD batch that is real tokens; the
    Unpad optimization computes only on these (implementations without it
    spend 1/x more contraction FLOPs). *)
val squad_real_token_fraction : float

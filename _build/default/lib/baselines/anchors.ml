(* Shapes from the Modular matmul blog (BERT/GPT/DLRM workloads) with
   Mojo's reported GFLOPS on the AWS c5.4xlarge (Xeon 8223) instance.
   Values are anchor approximations of the published bar chart. *)
let mojo_gemms =
  [
    ("BERT-attn", (768, 768, 512), 700.0);
    ("BERT-ffn1", (3072, 768, 512), 790.0);
    ("BERT-ffn2", (768, 3072, 512), 690.0);
    ("GPT-proj", (2304, 768, 512), 780.0);
    ("GPT-mlp", (3072, 768, 1024), 740.0);
    ("DLRM-bot", (512, 256, 2048), 680.0);
    ("DLRM-top", (1024, 512, 2048), 730.0);
  ]

(* neuralmagic.com pruning blog: compound-sparsified BERT-base SQuAD,
   FP32, BS=32, 24 cores *)
let deepsparse_bert_items_per_s = 46.0

(* MLPerf v2.1 (Nov'22) closed division, Table I *)
let dgx_a100_bert_ttt_minutes = 19.6

(* eager-mode per-op dispatch, no fusion, extra layout conversions *)
let hf_eager_efficiency_factor = 0.30

let hf_gvt3_bf16_usable = false

(* SQuAD sequences padded to 384; average real length ~170 tokens *)
let squad_real_token_fraction = 0.45

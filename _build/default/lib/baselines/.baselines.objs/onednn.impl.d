lib/baselines/onednn.ml: Array Conv Conv_trace Datatype Float Gemm Gemm_trace Isa List Perf_model Platform

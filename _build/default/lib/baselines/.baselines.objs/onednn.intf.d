lib/baselines/onednn.mli: Conv Datatype Gemm Platform

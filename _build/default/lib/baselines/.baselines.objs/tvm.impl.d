lib/baselines/tvm.ml: Datatype Float Gemm Gemm_trace List Perf_model

lib/baselines/anchors.mli:

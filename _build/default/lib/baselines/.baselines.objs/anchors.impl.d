lib/baselines/anchors.ml:

lib/baselines/tvm.mli: Gemm Platform

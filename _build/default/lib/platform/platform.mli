(** Machine models of the four CPUs the paper evaluates on (§V).

    A platform bundles the parameters the performance model needs: core
    topology (including hybrid P/E cores on ADL), clock, supported ISAs,
    a three-level cache hierarchy with sizes and bandwidths, and memory
    bandwidth. Peak FLOPs derive from the ISA table in {!Isa}. *)

type core_group = {
  count : int;
  freq_ghz : float;  (** sustained all-core frequency under vector load *)
  isas : Isa.t list;  (** contraction ISAs available on these cores *)
  fma_scale : float;
      (** throughput scale vs. a full-width implementation of the ISA:
          0.5 for Zen4's double-pumped AVX-512 and ADL Gracemont's
          half-width FMA, 1.0 elsewhere *)
}

type cache_level = {
  size_bytes : int;  (** capacity per core (or per-core share if shared) *)
  bw_bytes_per_cycle : float;  (** sustained load bandwidth per core *)
  latency_cycles : float;  (** access latency charged once per slice *)
  shared : bool;  (** shared across cores (LLC) vs private *)
}

(** DRAM access latency in core cycles (charged once per slice miss). *)
val mem_latency_cycles : float

type t = {
  name : string;
  core_groups : core_group array;  (** ADL has two groups; others one *)
  caches : cache_level array;  (** index 0 = L1 ... *)
  mem_bw_gbs : float;  (** aggregate DRAM bandwidth, GB/s *)
  tdp_watts : float option;
}

(** 2-socket Intel Xeon 8480+ "Sapphire Rapids": 112 Golden Cove cores,
    AVX-512 + AMX, DDR5-4800 x 16 channels. *)
val spr : t

(** AWS Graviton 3: 64 Neoverse V1 cores, SVE256 + BF16 MMLA, DDR5 8ch. *)
val gvt3 : t

(** AMD Ryzen 9 7950X "Zen4": 16 cores, AVX-512 + AVX512-BF16, DDR5-6000. *)
val zen4 : t

(** Intel i9-12900K "Alder Lake": 8 P-cores + 8 E-cores, AVX2, DDR5-5600. *)
val adl : t

(** Xeon 8223 (AWS c5.4xlarge) model used for the Mojo comparison (Fig 5). *)
val xeon_8223 : t

(** Xeon 8275CL-class (AWS c5.12xlarge, 24 cores) used for the DeepSparse
    comparison (Fig 10-Right). *)
val c5_12xlarge : t

(** Generic model of the machine running this repository (single core,
    scalar kernels); lets the Fig. 6 harness rank loop instantiations that
    are then actually measured on this host. *)
val host : t

val all : t list
val by_name : string -> t option

(** Total core count. *)
val cores : t -> int

(** Best contraction ISA for [dtype] on the platform's fastest core group. *)
val contraction_isa : t -> Datatype.t -> Isa.t option

(** Aggregate peak GFLOPS for [dtype] over [cores] cores (defaults to all),
    summing heterogeneous groups proportionally. *)
val peak_gflops : ?cores:int -> t -> Datatype.t -> float

(** Peak GFLOPS of one core of the fastest group. *)
val core_peak_gflops : t -> Datatype.t -> float

(** Does any core group expose native BF16 contraction hardware? *)
val has_bf16 : t -> bool

type core_group = {
  count : int;
  freq_ghz : float;
  isas : Isa.t list;
  fma_scale : float;
}

type cache_level = {
  size_bytes : int;
  bw_bytes_per_cycle : float;
  latency_cycles : float;
  shared : bool;
}

let mem_latency_cycles = 300.0

type t = {
  name : string;
  core_groups : core_group array;
  caches : cache_level array;
  mem_bw_gbs : float;
  tdp_watts : float option;
}

let kib n = n * 1024
let mib n = n * 1024 * 1024

let spr =
  {
    name = "SPR";
    core_groups =
      [|
        {
          count = 112;
          freq_ghz = 1.9;
          isas = [ Isa.AVX512F; Isa.AVX512_BF16; Isa.AMX_BF16 ];
          fma_scale = 1.0;
        };
      |];
    caches =
      [|
        { size_bytes = kib 48; bw_bytes_per_cycle = 128.0; latency_cycles = 4.0; shared = false };
        { size_bytes = mib 2; bw_bytes_per_cycle = 48.0; latency_cycles = 14.0; shared = false };
        (* 105 MB LLC per socket / 56 cores: per-core share *)
        { size_bytes = kib 1920; bw_bytes_per_cycle = 12.0; latency_cycles = 50.0; shared = true };
      |];
    mem_bw_gbs = 614.0;
    tdp_watts = Some 700.0;
  }

let gvt3 =
  {
    name = "GVT3";
    core_groups =
      [|
        {
          count = 64;
          freq_ghz = 2.6;
          isas = [ Isa.SVE256; Isa.BF16_MMLA; Isa.BF16_DOT ];
          fma_scale = 1.0;
        };
      |];
    caches =
      [|
        { size_bytes = kib 64; bw_bytes_per_cycle = 96.0; latency_cycles = 4.0; shared = false };
        { size_bytes = mib 1; bw_bytes_per_cycle = 40.0; latency_cycles = 14.0; shared = false };
        { size_bytes = kib 512; bw_bytes_per_cycle = 10.0; latency_cycles = 50.0; shared = true };
      |];
    mem_bw_gbs = 307.0;
    tdp_watts = None;
  }

let zen4 =
  {
    name = "Zen4";
    core_groups =
      [|
        {
          count = 16;
          freq_ghz = 4.5;
          isas = [ Isa.AVX512F; Isa.AVX512_BF16 ];
          (* Zen4 executes AVX-512 double-pumped on 256-bit datapaths *)
          fma_scale = 0.5;
        };
      |];
    caches =
      [|
        { size_bytes = kib 32; bw_bytes_per_cycle = 96.0; latency_cycles = 4.0; shared = false };
        { size_bytes = mib 1; bw_bytes_per_cycle = 40.0; latency_cycles = 14.0; shared = false };
        { size_bytes = mib 4; bw_bytes_per_cycle = 14.0; latency_cycles = 50.0; shared = true };
      |];
    mem_bw_gbs = 96.0;
    tdp_watts = Some 205.0;
  }

let adl =
  {
    name = "ADL";
    core_groups =
      [|
        { count = 8; freq_ghz = 4.9; isas = [ Isa.AVX2 ]; fma_scale = 1.0 };
        (* Gracemont E-cores: 2x128-bit FMA, roughly half the vector
           throughput of a P-core and lower clock *)
        { count = 8; freq_ghz = 3.7; isas = [ Isa.AVX2 ]; fma_scale = 0.5 };
      |];
    caches =
      [|
        { size_bytes = kib 48; bw_bytes_per_cycle = 96.0; latency_cycles = 4.0; shared = false };
        { size_bytes = kib 1280; bw_bytes_per_cycle = 40.0; latency_cycles = 14.0; shared = false };
        { size_bytes = kib 1920; bw_bytes_per_cycle = 12.0; latency_cycles = 50.0; shared = true };
      |];
    mem_bw_gbs = 89.6;
    tdp_watts = Some 241.0;
  }

let xeon_8223 =
  {
    name = "Xeon-8223";
    core_groups =
      [|
        { count = 8; freq_ghz = 2.7; isas = [ Isa.AVX512F ]; fma_scale = 1.0 };
      |];
    caches =
      [|
        { size_bytes = kib 32; bw_bytes_per_cycle = 96.0; latency_cycles = 4.0; shared = false };
        { size_bytes = mib 1; bw_bytes_per_cycle = 32.0; latency_cycles = 14.0; shared = false };
        { size_bytes = kib 1408; bw_bytes_per_cycle = 10.0; latency_cycles = 50.0; shared = true };
      |];
    mem_bw_gbs = 120.0;
    tdp_watts = None;
  }

let c5_12xlarge =
  {
    name = "c5.12xlarge";
    core_groups =
      [|
        { count = 24; freq_ghz = 3.0; isas = [ Isa.AVX512F ]; fma_scale = 1.0 };
      |];
    caches =
      [|
        { size_bytes = kib 32; bw_bytes_per_cycle = 96.0; latency_cycles = 4.0; shared = false };
        { size_bytes = mib 1; bw_bytes_per_cycle = 32.0; latency_cycles = 14.0; shared = false };
        { size_bytes = kib 1408; bw_bytes_per_cycle = 10.0; latency_cycles = 50.0; shared = true };
      |];
    mem_bw_gbs = 140.0;
    tdp_watts = None;
  }

(* Generic model of the machine running this repository: one core,
   scalar OCaml kernels (~2 flops/cycle), desktop-ish cache hierarchy.
   Used by the Fig. 6 harness to rank loop instantiations whose measured
   counterpart is the actual wall-clock of our kernels on this host. *)
let host =
  {
    name = "host";
    core_groups =
      [|
        (* AVX2 table entry scaled down to scalar-OCaml FMA throughput *)
        { count = 1; freq_ghz = 2.1; isas = [ Isa.AVX2 ]; fma_scale = 0.017 };
      |];
    caches =
      [|
        { size_bytes = kib 48; bw_bytes_per_cycle = 16.0; latency_cycles = 4.0; shared = false };
        { size_bytes = mib 2; bw_bytes_per_cycle = 6.0; latency_cycles = 14.0; shared = false };
        (* slice of the machine's large shared L3 *)
        { size_bytes = mib 32; bw_bytes_per_cycle = 3.0; latency_cycles = 50.0; shared = true };
      |];
    mem_bw_gbs = 10.0;
    tdp_watts = None;
  }

let all = [ spr; gvt3; zen4; adl; xeon_8223; c5_12xlarge; host ]

let by_name n =
  List.find_opt (fun p -> String.lowercase_ascii p.name = String.lowercase_ascii n) all

let cores t = Array.fold_left (fun acc g -> acc + g.count) 0 t.core_groups

let fastest_group t =
  Array.fold_left
    (fun best g ->
      let peak g' =
        match Isa.best_for Datatype.F32 g'.isas with
        | Some i -> Isa.flops_per_cycle i *. g'.freq_ghz
        | None -> 0.0
      in
      if peak g > peak best then g else best)
    t.core_groups.(0) t.core_groups

let contraction_isa t dtype = Isa.best_for dtype (fastest_group t).isas

let group_core_gflops t gi dtype =
  let g = t.core_groups.(gi) in
  match Isa.best_for dtype g.isas with
  | None -> 0.0
  | Some i -> Isa.flops_per_cycle i *. g.freq_ghz *. g.fma_scale

let peak_gflops ?cores:(n = -1) t dtype =
  let total_cores = cores t in
  let n = if n < 0 then total_cores else min n total_cores in
  (* fill from the fastest group first *)
  let order =
    let idx = Array.mapi (fun i _ -> i) t.core_groups in
    Array.sort
      (fun a b ->
        compare (group_core_gflops t b dtype) (group_core_gflops t a dtype))
      idx;
    idx
  in
  let remaining = ref n and acc = ref 0.0 in
  Array.iter
    (fun gi ->
      let take = min !remaining t.core_groups.(gi).count in
      acc := !acc +. (float_of_int take *. group_core_gflops t gi dtype);
      remaining := !remaining - take)
    order;
  !acc

let core_peak_gflops t dtype =
  Array.to_list t.core_groups
  |> List.mapi (fun i _ -> group_core_gflops t i dtype)
  |> List.fold_left Float.max 0.0

let has_bf16 t =
  Array.exists (fun g -> List.exists Isa.has_bf16 g.isas) t.core_groups

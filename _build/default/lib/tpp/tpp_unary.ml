module View = Tensor.View

type op =
  | Zero
  | Copy
  | Relu
  | Relu_backward
  | Gelu
  | Gelu_backward
  | Sigmoid
  | Tanh
  | Exp
  | Sqrt
  | Square
  | Reciprocal
  | Negate
  | Abs
  | Scale of float
  | Shift of float

let op_to_string = function
  | Zero -> "zero"
  | Copy -> "copy"
  | Relu -> "relu"
  | Relu_backward -> "relu-bwd"
  | Gelu -> "gelu"
  | Gelu_backward -> "gelu-bwd"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Exp -> "exp"
  | Sqrt -> "sqrt"
  | Square -> "square"
  | Reciprocal -> "reciprocal"
  | Negate -> "negate"
  | Abs -> "abs"
  | Scale a -> Printf.sprintf "scale(%g)" a
  | Shift a -> Printf.sprintf "shift(%g)" a

let inv_sqrt2 = 1.0 /. Float.sqrt 2.0
let inv_sqrt2pi = 1.0 /. Float.sqrt (2.0 *. Float.pi)

let gelu x = 0.5 *. x *. (1.0 +. Float.erf (x *. inv_sqrt2))

let gelu_grad x =
  let cdf = 0.5 *. (1.0 +. Float.erf (x *. inv_sqrt2)) in
  cdf +. (x *. inv_sqrt2pi *. exp (-0.5 *. x *. x))

let scalar_fn = function
  | Zero -> fun _ -> 0.0
  | Copy -> fun x -> x
  | Relu -> fun x -> if x > 0.0 then x else 0.0
  | Gelu -> gelu
  | Sigmoid -> fun x -> 1.0 /. (1.0 +. exp (-.x))
  | Tanh -> tanh
  | Exp -> exp
  | Sqrt -> sqrt
  | Square -> fun x -> x *. x
  | Reciprocal -> fun x -> 1.0 /. x
  | Negate -> fun x -> -.x
  | Abs -> Float.abs
  | Scale a -> fun x -> a *. x
  | Shift a -> fun x -> a +. x
  | Relu_backward | Gelu_backward ->
    invalid_arg "Tpp_unary: backward ops need exec2"

let check_same_shape (a : View.t) (b : View.t) =
  assert (a.rows = b.rows && a.cols = b.cols)

let exec op ~inp ~out =
  check_same_shape inp out;
  match op with
  | Zero ->
    for i = 0 to out.View.rows - 1 do
      for j = 0 to out.View.cols - 1 do
        View.set out i j 0.0
      done
    done
  | _ ->
    let f = scalar_fn op in
    for i = 0 to out.View.rows - 1 do
      for j = 0 to out.View.cols - 1 do
        View.set out i j (f (View.get inp i j))
      done
    done

let exec2 op ~inp ~aux ~out =
  check_same_shape inp out;
  check_same_shape aux out;
  let f =
    match op with
    | Relu_backward -> fun g x -> if x > 0.0 then g else 0.0
    | Gelu_backward -> fun g x -> g *. gelu_grad x
    | _ -> invalid_arg "Tpp_unary.exec2: not a two-input op"
  in
  for i = 0 to out.View.rows - 1 do
    for j = 0 to out.View.cols - 1 do
      View.set out i j (f (View.get inp i j) (View.get aux i j))
    done
  done

type reduce_kind = Sum | Max | Min
type reduce_axis = Rows | Cols

let reduce kind axis ~inp ~out =
  let combine, init =
    match kind with
    | Sum -> (( +. ), 0.0)
    | Max -> (Float.max, neg_infinity)
    | Min -> (Float.min, infinity)
  in
  (match axis with
  | Rows ->
    assert (out.View.rows = inp.View.rows && out.View.cols = 1);
    for i = 0 to inp.View.rows - 1 do
      let acc = ref init in
      for j = 0 to inp.View.cols - 1 do
        acc := combine !acc (View.get inp i j)
      done;
      View.set out i 0 !acc
    done
  | Cols ->
    assert (out.View.cols = inp.View.cols && out.View.rows = 1);
    for j = 0 to inp.View.cols - 1 do
      let acc = ref init in
      for i = 0 to inp.View.rows - 1 do
        acc := combine !acc (View.get inp i j)
      done;
      View.set out 0 j !acc
    done)

let transpose ~inp ~out =
  assert (out.View.rows = inp.View.cols && out.View.cols = inp.View.rows);
  for i = 0 to inp.View.rows - 1 do
    for j = 0 to inp.View.cols - 1 do
      View.set out j i (View.get inp i j)
    done
  done

let convert ~inp ~out = exec Copy ~inp ~out

let broadcast_row ~inp ~out =
  assert (inp.View.rows = 1 && inp.View.cols = out.View.cols);
  for i = 0 to out.View.rows - 1 do
    for j = 0 to out.View.cols - 1 do
      View.set out i j (View.get inp 0 j)
    done
  done

let broadcast_col ~inp ~out =
  assert (inp.View.cols = 1 && inp.View.rows = out.View.rows);
  for i = 0 to out.View.rows - 1 do
    for j = 0 to out.View.cols - 1 do
      View.set out i j (View.get inp i 0)
    done
  done

module View = Tensor.View

type op = Add | Sub | Mul | Div | Max | Min

type broadcast = Full | Row | Col | Scalar

let op_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Max -> "max"
  | Min -> "min"

let fn = function
  | Add -> ( +. )
  | Sub -> ( -. )
  | Mul -> ( *. )
  | Div -> ( /. )
  | Max -> Float.max
  | Min -> Float.min

let exec op ?(bcast = Full) ~a ~b ~out =
  assert (a.View.rows = out.View.rows && a.View.cols = out.View.cols);
  (match bcast with
  | Full -> assert (b.View.rows = out.View.rows && b.View.cols = out.View.cols)
  | Row -> assert (b.View.rows = 1 && b.View.cols = out.View.cols)
  | Col -> assert (b.View.cols = 1 && b.View.rows = out.View.rows)
  | Scalar -> assert (b.View.rows = 1 && b.View.cols = 1));
  let f = fn op in
  let bval i j =
    match bcast with
    | Full -> View.get b i j
    | Row -> View.get b 0 j
    | Col -> View.get b i 0
    | Scalar -> View.get b 0 0
  in
  for i = 0 to out.View.rows - 1 do
    for j = 0 to out.View.cols - 1 do
      View.set out i j (f (View.get a i j) (bval i j))
    done
  done

let muladd ~a ~b ~c ~out =
  assert (
    a.View.rows = out.View.rows && a.View.cols = out.View.cols
    && b.View.rows = out.View.rows
    && b.View.cols = out.View.cols
    && c.View.rows = out.View.rows
    && c.View.cols = out.View.cols);
  for i = 0 to out.View.rows - 1 do
    for j = 0 to out.View.cols - 1 do
      View.set out i j ((View.get a i j *. View.get b i j) +. View.get c i j)
    done
  done

let axpy ~alpha ~a ~out =
  assert (a.View.rows = out.View.rows && a.View.cols = out.View.cols);
  for i = 0 to out.View.rows - 1 do
    for j = 0 to out.View.cols - 1 do
      View.set out i j (View.get out i j +. (alpha *. View.get a i j))
    done
  done

(** Binary (and ternary-FMA) Tensor Processing Primitives over 2D views. *)

type op = Add | Sub | Mul | Div | Max | Min

(** Broadcast mode for the second operand. *)
type broadcast =
  | Full  (** same shape as output *)
  | Row  (** [1 x cols], broadcast down rows — e.g. bias add *)
  | Col  (** [rows x 1], broadcast across columns *)
  | Scalar  (** [1 x 1] *)

val op_to_string : op -> string

(** [exec op ?bcast ~a ~b ~out] — out := a (op) broadcast(b). [a] and [out]
    must have identical shapes; [b]'s shape must match [bcast]. [out] may
    alias [a] (in-place accumulate patterns). *)
val exec :
  op ->
  ?bcast:broadcast ->
  a:Tensor.View.t ->
  b:Tensor.View.t ->
  out:Tensor.View.t ->
  unit

(** Fused multiply-add: out := a * b + c (elementwise, all same shape;
    [out] may alias [c]). *)
val muladd :
  a:Tensor.View.t -> b:Tensor.View.t -> c:Tensor.View.t -> out:Tensor.View.t -> unit

(** out := out + alpha * a (axpy on 2D blocks). *)
val axpy : alpha:float -> a:Tensor.View.t -> out:Tensor.View.t -> unit

(** Block-Sparse x Dense matrix multiply TPP (§III-C).

    Computes one [bm x bn] block of C = A x B where A is block-sparse in
    BCSC format (block size [bm x bk]) and B, C are dense. B is consumed in
    VNNI-packed layout (the paper pre-formats B in VNNI to deploy
    low-precision FMAs; for FP32 the packing factor is 1 = flat).

    The microkernel walks the non-empty blocks of one block-row of A and
    multiplies each with the corresponding [bk x bn] block of B, with FP32
    accumulation ("2D register blocking whenever possible"). *)

type config = {
  n : int;  (** bn: C-block columns *)
  bm : int;
  bk : int;  (** A block size, from the BCSC matrix *)
  dtype : Datatype.t;
  beta : float;
}

val make_config :
  ?dtype:Datatype.t -> ?beta:float -> n:int -> bm:int -> bk:int -> unit -> config

val config_to_string : config -> string

type kernel

val compile : config -> kernel
val config_of : kernel -> config

(** [exec k ~a ~block_row ~b ~col ~c]:
    C_block += (block row [block_row] of A) x B[:, col .. col+n-1].
    [b] is a view of the whole VNNI-packed B ([K/v] rows x [N*v] cols);
    [c] is the [bm x n] output block view. *)
val exec :
  kernel ->
  a:Bcsc.t ->
  block_row:int ->
  b:Tensor.View.t ->
  col:int ->
  c:Tensor.View.t ->
  unit

(** Effective FLOPs (counting only stored blocks) for one block row. *)
val effective_flops : config -> a:Bcsc.t -> block_row:int -> float

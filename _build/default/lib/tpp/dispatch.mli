(** Kernel dispatch and caching — the analogue of LIBXSMM's JIT dispatcher.

    In the real system, requesting a TPP for a (shape, datatype, ISA) tuple
    the first time JIT-compiles machine code, and subsequent requests return
    the cached function pointer. Here "compilation" builds a specialized
    kernel value; the cache makes repeat dispatches O(1) and is shared,
    thread-safe, and instrumented (hit/miss counters drive the JIT-overhead
    ablation bench). *)

(** Cached BRGEMM kernel for a configuration. *)
val brgemm : Brgemm.config -> Brgemm.kernel

(** Cached Block-SpMM kernel. *)
val spmm : Spmm.config -> Spmm.kernel

type stats = { hits : int; misses : int }

val stats : unit -> stats

(** Reset counters and drop all cached kernels (tests/benches). *)
val clear : unit -> unit

(** Unary Tensor Processing Primitives: elementwise maps, reductions and
    reformats over 2D views (the paper's TPP collection, §I/§II).

    All TPPs read FP32 values (BF16 data is stored rounded, see {!Tensor})
    and quantize on store to the output view's datatype. *)

type op =
  | Zero
  | Copy
  | Relu
  | Relu_backward  (** out := out-grad where saved input > 0 (see exec2) *)
  | Gelu  (** exact erf-based GELU, as used for BERT-Intermediate *)
  | Gelu_backward
  | Sigmoid
  | Tanh
  | Exp
  | Sqrt
  | Square
  | Reciprocal
  | Negate
  | Abs
  | Scale of float  (** multiply by a constant *)
  | Shift of float  (** add a constant *)

val op_to_string : op -> string

(** [exec op ~inp ~out] — elementwise map; shapes must match. [Zero] ignores
    [inp] (pass [out]). *)
val exec : op -> inp:Tensor.View.t -> out:Tensor.View.t -> unit

(** Two-input unary variants: [exec2 op ~inp ~aux ~out].
    [Relu_backward]: out := inp (grad) masked by aux (saved activation) > 0.
    [Gelu_backward]: out := inp * gelu'(aux). *)
val exec2 :
  op -> inp:Tensor.View.t -> aux:Tensor.View.t -> out:Tensor.View.t -> unit

type reduce_kind = Sum | Max | Min
type reduce_axis = Rows  (** one result per row *) | Cols  (** per column *)

(** [reduce kind axis ~inp ~out] — [out] must be [rows x 1] for [Rows] and
    [1 x cols] for [Cols]. *)
val reduce :
  reduce_kind -> reduce_axis -> inp:Tensor.View.t -> out:Tensor.View.t -> unit

(** Out-of-place transpose: [out.(j).(i) = inp.(i).(j)]. *)
val transpose : inp:Tensor.View.t -> out:Tensor.View.t -> unit

(** Datatype conversion is a [Copy] whose output view carries the target
    dtype; provided named for readability at call sites. *)
val convert : inp:Tensor.View.t -> out:Tensor.View.t -> unit

(** Broadcast a [1 x cols] row across all rows of [out]. *)
val broadcast_row : inp:Tensor.View.t -> out:Tensor.View.t -> unit

(** Broadcast a [rows x 1] column across all columns of [out]. *)
val broadcast_col : inp:Tensor.View.t -> out:Tensor.View.t -> unit

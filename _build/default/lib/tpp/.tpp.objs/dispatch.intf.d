lib/tpp/dispatch.mli: Brgemm Spmm

lib/tpp/tpp_binary.ml: Float Tensor

lib/tpp/equation.mli: Tensor Tpp_binary Tpp_unary

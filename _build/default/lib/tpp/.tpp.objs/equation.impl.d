lib/tpp/equation.ml: Array Float Fun Printf Tensor Tpp_binary Tpp_unary

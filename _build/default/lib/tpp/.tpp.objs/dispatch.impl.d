lib/tpp/dispatch.ml: Brgemm Hashtbl Mutex Spmm

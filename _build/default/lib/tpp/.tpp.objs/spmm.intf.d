lib/tpp/spmm.mli: Bcsc Datatype Tensor

lib/tpp/tpp_binary.mli: Tensor

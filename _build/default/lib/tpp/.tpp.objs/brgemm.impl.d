lib/tpp/brgemm.ml: Array Bigarray Datatype List Printf Tensor

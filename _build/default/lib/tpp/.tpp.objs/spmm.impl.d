lib/tpp/spmm.ml: Array Bcsc Bigarray Datatype Printf Tensor

lib/tpp/blocks.ml: Array Float Prng Tensor

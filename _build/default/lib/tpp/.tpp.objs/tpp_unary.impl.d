lib/tpp/tpp_unary.ml: Float Printf Tensor

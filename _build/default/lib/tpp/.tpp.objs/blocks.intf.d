lib/tpp/blocks.mli: Prng Tensor

lib/tpp/tpp_unary.mli: Tensor

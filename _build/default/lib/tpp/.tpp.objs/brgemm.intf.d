lib/tpp/brgemm.mli: Datatype Tensor

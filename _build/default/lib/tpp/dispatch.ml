type stats = { hits : int; misses : int }

let lock = Mutex.create ()
let hits = ref 0
let misses = ref 0

let brgemm_cache : (Brgemm.config, Brgemm.kernel) Hashtbl.t = Hashtbl.create 64
let spmm_cache : (Spmm.config, Spmm.kernel) Hashtbl.t = Hashtbl.create 64

let cached cache compile cfg =
  Mutex.lock lock;
  let kernel =
    match Hashtbl.find_opt cache cfg with
    | Some k ->
      incr hits;
      k
    | None ->
      incr misses;
      let k = compile cfg in
      Hashtbl.replace cache cfg k;
      k
  in
  Mutex.unlock lock;
  kernel

let brgemm cfg = cached brgemm_cache Brgemm.compile cfg
let spmm cfg = cached spmm_cache Spmm.compile cfg

let stats () =
  Mutex.lock lock;
  let s = { hits = !hits; misses = !misses } in
  Mutex.unlock lock;
  s

let clear () =
  Mutex.lock lock;
  hits := 0;
  misses := 0;
  Hashtbl.reset brgemm_cache;
  Hashtbl.reset spmm_cache;
  Mutex.unlock lock

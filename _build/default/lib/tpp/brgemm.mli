(** Batch-Reduce GEMM (BRGEMM) — the paper's main tensor-contraction TPP.

    BRGEMM materializes [C = beta*C + sum_{i=0}^{count-1} A_i x B_i] over
    [bm x bk] blocks of A and [bk x bn] blocks of B, reducing into one
    [bm x bn] block of C. Three addressing variants are supported, as in
    LIBXSMM: stride-based (A_i/B_i at fixed element strides from a base),
    offset-based (explicit per-i offsets; used to fold convolution R/S
    loops), and address-based (arbitrary block list).

    Accumulation is always FP32 (matching AMX/MMLA semantics); inputs may be
    FP32 or BF16 (values already on the BF16 grid), and the store to C
    quantizes to C's datatype. The B operand may be in flat [bk x bn] layout
    or packed VNNI layout [bk/v][bn][v]. *)

type b_layout = Flat | Vnni

type config = {
  m : int;
  n : int;
  k : int;  (** block extents bm, bn, bk *)
  dtype : Datatype.t;  (** input (A/B) datatype *)
  b_layout : b_layout;
  beta : float;  (** 0.0 (overwrite) or 1.0 (accumulate) *)
}

val make_config :
  ?dtype:Datatype.t ->
  ?b_layout:b_layout ->
  ?beta:float ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  config

val config_to_string : config -> string

(** A compiled kernel: given base views of A, B, C plus the batch
    description, performs the contraction. Obtain via {!Dispatch.brgemm}
    (cached) or {!compile} (uncached). *)
type kernel

(** Build a kernel for a configuration (the "JIT" step). *)
val compile : config -> kernel

val config_of : kernel -> config

(** Stride variant: [A_i] starts [i*stride_a] elements after [a]'s origin
    (same leading dimension), likewise for B.
    [a]: [m x k] view, [b]: [k x n] flat view (or the VNNI-packed
    equivalent: [k/v] rows of [n*v] elements), [c]: [m x n] view. *)
val exec_stride :
  kernel ->
  a:Tensor.View.t ->
  b:Tensor.View.t ->
  c:Tensor.View.t ->
  stride_a:int ->
  stride_b:int ->
  count:int ->
  unit

(** Offset variant: per-batch element offsets from the A and B origins.
    Arrays must have equal length = batch count. *)
val exec_offsets :
  kernel ->
  a:Tensor.View.t ->
  b:Tensor.View.t ->
  c:Tensor.View.t ->
  offs_a:int array ->
  offs_b:int array ->
  unit

(** Address variant: explicit (A_i, B_i) views. *)
val exec_list :
  kernel -> ab:(Tensor.View.t * Tensor.View.t) list -> c:Tensor.View.t -> unit

(** Plain GEMM block (count = 1). *)
val exec :
  kernel -> a:Tensor.View.t -> b:Tensor.View.t -> c:Tensor.View.t -> unit

(** FLOPs of one kernel invocation with [count] batches: 2*m*n*k*count. *)
val flops : config -> count:int -> float

(** Trace generation and modeled performance for PARLOOPER GEMMs.

    [score] is the tool of Fig. 1-Box B3 / Fig. 6: given a GEMM blocking,
    a candidate [loop_spec_string] and a platform, it replays the exact
    loop instantiation's per-thread slice traces through the cache model
    and predicts GFLOPS. *)

(** [trace cfg spec ~nthreads ~flat_b] — per-thread work lists for the
    GEMM of Listing 1. [flat_b] models a vendor-library-style flat
    (unblocked) B operand: panel slices that additionally waste cache
    capacity when the leading dimension is a large power of two (the
    conflict-miss mechanism of §V-A1). *)
val trace :
  ?flat_b:bool ->
  ?overhead_cycles:float ->
  Gemm.config ->
  string ->
  nthreads:int ->
  Perf_model.work list array

(** Modeled performance of one (config, spec, platform, threads) point. *)
val score :
  ?flat_b:bool ->
  ?overhead_cycles:float ->
  ?representative:int ->
  platform:Platform.t ->
  nthreads:int ->
  Gemm.config ->
  string ->
  Perf_model.result

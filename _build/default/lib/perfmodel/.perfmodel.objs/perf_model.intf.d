lib/perfmodel/perf_model.mli: Datatype Platform Threaded_loop

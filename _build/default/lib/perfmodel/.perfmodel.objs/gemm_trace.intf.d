lib/perfmodel/gemm_trace.mli: Gemm Perf_model Platform

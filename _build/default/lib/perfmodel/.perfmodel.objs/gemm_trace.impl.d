lib/perfmodel/gemm_trace.ml: Array Datatype Gemm Perf_model Threaded_loop

lib/perfmodel/conv_trace.ml: Array Conv Datatype Perf_model Threaded_loop

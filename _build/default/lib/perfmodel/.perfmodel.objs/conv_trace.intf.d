lib/perfmodel/conv_trace.mli: Conv Perf_model Platform

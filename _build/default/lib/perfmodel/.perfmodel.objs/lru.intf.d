lib/perfmodel/lru.mli:

lib/perfmodel/perf_model.ml: Array Datatype Float Isa List Lru Platform Threaded_loop

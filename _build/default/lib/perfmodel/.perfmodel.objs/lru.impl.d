lib/perfmodel/lru.ml: Hashtbl List

(** Byte-capacity LRU set of tensor slices — one cache level of the
    performance model (§II-E: "Each level of cache is represented as set
    and is updated based on the LRU policy"). *)

type t

(** [create ~capacity_bytes]. *)
val create : capacity_bytes:int -> t

(** Is the slice resident? Does not touch recency. *)
val mem : t -> int -> bool

(** [touch t key ~bytes] inserts (or refreshes) a slice occupying [bytes],
    evicting least-recently-used slices until it fits. Slices larger than
    the capacity simply never become resident. *)
val touch : t -> int -> bytes:int -> unit

(** Current resident bytes (tests). *)
val occupancy : t -> int

(** Resident keys in most-recently-used-first order (tests). *)
val contents : t -> int list

val clear : t -> unit

let is_pow2 x = x > 0 && x land (x - 1) = 0

let trace ?(flat_b = false) ?(overhead_cycles = 0.0) (cfg : Gemm.config) spec
    ~nthreads =
  let loop = Threaded_loop.create (Gemm.loop_specs cfg) spec in
  let dt = Datatype.bytes cfg.Gemm.dtype in
  let kb = Gemm.kb cfg in
  let a_bytes = cfg.Gemm.bm * cfg.Gemm.bk * dt in
  let b_bytes = cfg.Gemm.bk * cfg.Gemm.bn * dt in
  let c_bytes = cfg.Gemm.bm * cfg.Gemm.bn * 4 in
  (* flat B with a power-of-two row length >= 4K bytes suffers set
     conflicts: panels inhabit few sets, wasting ~4x capacity *)
  let b_occupancy =
    if flat_b && is_pow2 cfg.Gemm.n && cfg.Gemm.n * dt >= 4096 then
      b_bytes * 6
    else b_bytes
  in
  let body ind =
    let ik = ind.(0) and im = ind.(1) and in_ = ind.(2) in
    let count = min cfg.Gemm.k_step (kb - ik) in
    let accesses = ref [] in
    for j = count - 1 downto 0 do
      accesses :=
        Perf_model.access ~tensor:0
          ~block:((im * kb) + ik + j)
          ~bytes:a_bytes ()
        :: Perf_model.access ~tensor:1
             ~block:((in_ * kb) + ik + j)
             ~bytes:b_bytes ~occupancy:b_occupancy ()
        :: !accesses
    done;
    (* C block is read (when accumulating) and written back *)
    let c_access =
      Perf_model.access ~tensor:2
        ~block:((in_ * Gemm.mb cfg) + im)
        ~bytes:c_bytes ()
    in
    (* FP32 accumulator tile + the batch's B blocks + an A block *)
    let working_set_bytes =
      (8 * cfg.Gemm.bm * cfg.Gemm.bn) + (count * b_bytes) + a_bytes
    in
    Perf_model.work ~overhead_cycles ~working_set_bytes
      ~flops:
        (2.0 *. float_of_int cfg.Gemm.bm *. float_of_int cfg.Gemm.bn
        *. float_of_int cfg.Gemm.bk *. float_of_int count)
      ~chain:(cfg.Gemm.bk * count)
      ~accesses:(c_access :: !accesses)
      ~store_bytes:c_bytes ()
  in
  Perf_model.trace_loop loop ~nthreads ~body

let score ?flat_b ?overhead_cycles ?representative ~platform ~nthreads cfg
    spec =
  let traces = trace ?flat_b ?overhead_cycles cfg spec ~nthreads in
  Perf_model.simulate ?representative ~platform ~dtype:cfg.Gemm.dtype
    ~nthreads ~traces ()

(** Trace generation and modeled performance for PARLOOPER convolutions
    (used by the Fig. 7 harness).

    Slices: input rows per (image, channel-block, padded row), weight taps
    per (K-block, C-block, r, s), output rows per (image, K-block, row). *)

val trace :
  ?flat_input:bool ->
  Conv.config ->
  string ->
  nthreads:int ->
  Perf_model.work list array

(** Modeled performance of one (config, spec, platform, threads) point. *)
val score :
  ?flat_input:bool ->
  ?representative:int ->
  platform:Platform.t ->
  nthreads:int ->
  Conv.config ->
  string ->
  Perf_model.result

(** The paper's lightweight performance model (§II-E).

    Each thread of a PARLOOPER instantiation produces a chronological
    {e trace} of the tensor slices its BRGEMM invocations touch. The trace
    is replayed through a private multi-level LRU cache simulator; every
    invocation is charged the maximum of its compute time (ISA peak scaled
    by accumulation-chain efficiency) and its data-movement time (bytes
    served from the level where each slice was found, at that level's
    bandwidth). Kernel time is the slowest thread, further bounded below by
    aggregate DRAM traffic over the platform's memory bandwidth. *)

(** One tensor-slice access of a kernel invocation. [occupancy] is the
    cache footprint the slice charges (> [bytes] models set-conflict waste,
    e.g. flat-B panels with power-of-two leading dimensions). *)
type access = {
  tensor : int;  (** operand id: disjoint per logical tensor *)
  block : int;  (** slice id within the tensor *)
  bytes : int;
  occupancy : int;
}

val access : ?occupancy:int -> tensor:int -> block:int -> bytes:int -> unit -> access

(** One body invocation (e.g. one BRGEMM call). *)
type work = {
  flops : float;
  chain : int;  (** accumulation-chain length (K extent x batch count) *)
  accesses : access list;
  store_bytes : int;  (** output write-back traffic *)
  overhead_cycles : float;
      (** fixed per-invocation cost (dispatch, accumulator setup) that
          overlaps with neither compute nor transfer *)
  working_set_bytes : int;
      (** microkernel-resident bytes (accumulator + operand tiles); when
          this exceeds the platform's L1, the compute rate degrades — the
          register/L1-blocking constraint the TPP backend honors *)
}

val work :
  ?overhead_cycles:float ->
  ?working_set_bytes:int ->
  flops:float ->
  chain:int ->
  accesses:access list ->
  store_bytes:int ->
  unit ->
  work

type result = {
  time_s : float;
  gflops : float;
  max_thread_cycles : float;
  mem_read_bytes : float;  (** aggregate DRAM reads *)
  total_flops : float;
  level_hits : int array;  (** per cache level, summed over threads *)
  mem_accesses : int;
  compute_bound_fraction : float;
      (** fraction of invocations whose compute time dominated *)
}

(** [simulate ~platform ~dtype ~nthreads ~traces] — [traces.(t)] is thread
    t's chronological work list. [representative] (default: all threads)
    simulates only the first r per-thread traces and takes the max-cycles
    thread among them (valid when threads are symmetric). *)
val simulate :
  ?representative:int ->
  platform:Platform.t ->
  dtype:Datatype.t ->
  nthreads:int ->
  traces:work list array ->
  unit ->
  result

(** Build per-thread traces from a compiled PARLOOPER loop: [body ind] maps
    logical indices to the work of one invocation. *)
val trace_loop :
  Threaded_loop.t -> nthreads:int -> body:(int array -> work) -> work list array

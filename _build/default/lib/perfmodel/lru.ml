(* Doubly-linked recency list + hashtable index. *)

type node = {
  key : int;
  mutable bytes : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  index : (int, node) Hashtbl.t;
  mutable head : node option;  (** most recently used *)
  mutable tail : node option;  (** least recently used *)
  mutable used : int;
}

let create ~capacity_bytes =
  assert (capacity_bytes > 0);
  { capacity = capacity_bytes; index = Hashtbl.create 256; head = None;
    tail = None; used = 0 }

let mem t key = Hashtbl.mem t.index key

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.index node.key;
    t.used <- t.used - node.bytes

let touch t key ~bytes =
  (match Hashtbl.find_opt t.index key with
  | Some node ->
    t.used <- t.used - node.bytes + bytes;
    node.bytes <- bytes;
    unlink t node;
    push_front t node
  | None ->
    if bytes <= t.capacity then begin
      let node = { key; bytes; prev = None; next = None } in
      Hashtbl.replace t.index key node;
      push_front t node;
      t.used <- t.used + bytes
    end);
  while t.used > t.capacity do
    evict_lru t
  done

let occupancy t = t.used

let contents t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

let clear t =
  Hashtbl.reset t.index;
  t.head <- None;
  t.tail <- None;
  t.used <- 0

let trace ?(flat_input = false) (cfg : Conv.config) spec ~nthreads =
  let loop = Threaded_loop.create (Conv.loop_specs cfg) spec in
  let p, q = Conv.out_dims cfg in
  let hp = cfg.Conv.h + (2 * cfg.Conv.pad) in
  let wp = cfg.Conv.w + (2 * cfg.Conv.pad) in
  let cb = cfg.Conv.c / cfg.Conv.bc and kb = cfg.Conv.k / cfg.Conv.bk in
  let dt = Datatype.bytes cfg.Conv.dtype in
  let in_row_bytes = wp * cfg.Conv.bc * dt in
  (* a flat (NCHW, unblocked) input reads with large strides between
     channels: charge extra occupancy for the gathered rows *)
  let in_occupancy = if flat_input then in_row_bytes * 4 else in_row_bytes in
  let w_tap_bytes = cfg.Conv.bc * cfg.Conv.bk * dt in
  let out_row_bytes = cfg.Conv.w_step * cfg.Conv.bk * 4 in
  let body ind =
    let in_ = ind.(0) and ic = ind.(1) and ik = ind.(2) in
    let ih = ind.(3) and iw = ind.(4) and ir = ind.(5) and is = ind.(6) in
    ignore iw;
    let c_cnt = min cfg.Conv.c_step (cb - ic) in
    let h_cnt = min cfg.Conv.h_step (p - ih) in
    let accesses = ref [] in
    for h2 = 0 to h_cnt - 1 do
      let oh = ih + h2 in
      for dc = 0 to c_cnt - 1 do
        for dr = 0 to cfg.Conv.r_step - 1 do
          (* one padded input row per (channel block, filter row) *)
          let hin = (oh * cfg.Conv.stride) + ir + dr in
          accesses :=
            Perf_model.access ~tensor:0
              ~block:((((in_ * cb) + ic + dc) * hp) + hin)
              ~bytes:in_row_bytes ~occupancy:in_occupancy ()
            :: !accesses;
          for ds = 0 to cfg.Conv.s_step - 1 do
            accesses :=
              Perf_model.access ~tensor:1
                ~block:
                  ((((ik * cb) + ic + dc) * cfg.Conv.r * cfg.Conv.s)
                  + ((ir + dr) * cfg.Conv.s)
                  + is + ds)
                ~bytes:w_tap_bytes ()
              :: !accesses
          done
        done
      done;
      accesses :=
        Perf_model.access ~tensor:2
          ~block:((((in_ * kb) + ik) * p) + oh)
          ~bytes:out_row_bytes ()
        :: !accesses
    done;
    let taps = c_cnt * cfg.Conv.r_step * cfg.Conv.s_step in
    Perf_model.work
      ~flops:
        (2.0
        *. float_of_int (h_cnt * cfg.Conv.w_step * cfg.Conv.bk)
        *. float_of_int (cfg.Conv.bc * taps))
      ~chain:(cfg.Conv.bc * taps)
      ~accesses:!accesses
      ~store_bytes:(out_row_bytes * h_cnt) ()
  in
  Perf_model.trace_loop loop ~nthreads ~body

let score ?flat_input ?representative ~platform ~nthreads cfg spec =
  let traces = trace ?flat_input cfg spec ~nthreads in
  Perf_model.simulate ?representative ~platform ~dtype:cfg.Conv.dtype
    ~nthreads ~traces ()

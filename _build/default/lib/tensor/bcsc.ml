type t = {
  rows : int;
  cols : int;
  bm : int;
  bk : int;
  colptr : int array;
  rowind : int array;
  values : Tensor.t;
  row_index : (int * int) array array;
  dtype : Datatype.t;
}

let nnz_blocks t = Array.length t.rowind

let total_blocks t = (t.rows / t.bm) * (t.cols / t.bk)

let sparsity t =
  1.0 -. (float_of_int (nnz_blocks t) /. float_of_int (total_blocks t))

let build_row_index ~mblocks ~colptr ~rowind =
  let acc = Array.make mblocks [] in
  let kblocks = Array.length colptr - 1 in
  (* walk columns in reverse so each row list ends up sorted by column *)
  for jb = kblocks - 1 downto 0 do
    for slot = colptr.(jb + 1) - 1 downto colptr.(jb) do
      let ib = rowind.(slot) in
      acc.(ib) <- (jb, slot) :: acc.(ib)
    done
  done;
  Array.map Array.of_list acc

(* Build from a predicate + element reader.
   [keep ib jb] decides if block (ib, jb) is stored;
   [read i j] gives the dense element. *)
let build ~dtype ~rows ~cols ~bm ~bk ~keep ~read =
  assert (rows mod bm = 0 && cols mod bk = 0);
  let mblocks = rows / bm and kblocks = cols / bk in
  let colptr = Array.make (kblocks + 1) 0 in
  let blocks = ref [] in
  let count = ref 0 in
  for jb = 0 to kblocks - 1 do
    colptr.(jb) <- !count;
    for ib = 0 to mblocks - 1 do
      if keep ib jb then begin
        blocks := (ib, jb) :: !blocks;
        incr count
      end
    done
  done;
  colptr.(kblocks) <- !count;
  let stored = Array.of_list (List.rev !blocks) in
  let rowind = Array.map fst stored in
  let values = Tensor.create dtype [| max 1 !count; bm; bk |] in
  Array.iteri
    (fun slot (ib, jb) ->
      for i = 0 to bm - 1 do
        for j = 0 to bk - 1 do
          Tensor.set values [| slot; i; j |]
            (read ((ib * bm) + i) ((jb * bk) + j))
        done
      done)
    stored;
  {
    rows;
    cols;
    bm;
    bk;
    colptr;
    rowind;
    values;
    row_index = build_row_index ~mblocks ~colptr ~rowind;
    dtype;
  }

let of_dense ~bm ~bk a =
  assert (Tensor.rank a = 2);
  let dims = Tensor.dims a in
  let rows = dims.(0) and cols = dims.(1) in
  let nonzero ib jb =
    let nz = ref false in
    for i = 0 to bm - 1 do
      for j = 0 to bk - 1 do
        if Tensor.get a [| (ib * bm) + i; (jb * bk) + j |] <> 0.0 then
          nz := true
      done
    done;
    !nz
  in
  build ~dtype:(Tensor.dtype a) ~rows ~cols ~bm ~bk ~keep:nonzero
    ~read:(fun i j -> Tensor.get a [| i; j |])

let to_dense t =
  let d = Tensor.create t.dtype [| t.rows; t.cols |] in
  let kblocks = t.cols / t.bk in
  for jb = 0 to kblocks - 1 do
    for slot = t.colptr.(jb) to t.colptr.(jb + 1) - 1 do
      let ib = t.rowind.(slot) in
      for i = 0 to t.bm - 1 do
        for j = 0 to t.bk - 1 do
          Tensor.set d
            [| (ib * t.bm) + i; (jb * t.bk) + j |]
            (Tensor.get t.values [| slot; i; j |])
        done
      done
    done
  done;
  d

let random ~rng ~dtype ~rows ~cols ~bm ~bk ~sparsity =
  assert (sparsity >= 0.0 && sparsity <= 1.0);
  let mblocks = rows / bm and kblocks = cols / bk in
  let mask = Array.make_matrix mblocks kblocks false in
  for ib = 0 to mblocks - 1 do
    for jb = 0 to kblocks - 1 do
      mask.(ib).(jb) <- not (Prng.bernoulli rng ~p:sparsity)
    done
  done;
  build ~dtype ~rows ~cols ~bm ~bk
    ~keep:(fun ib jb -> mask.(ib).(jb))
    ~read:(fun _ _ -> Prng.uniform rng ~scale:1.0)

let block_view t slot =
  Tensor.view t.values [| slot; 0; 0 |] ~rows:t.bm ~cols:t.bk

let row_blocks t ib =
  Array.map (fun (jb, slot) -> (jb, block_view t slot)) t.row_index.(ib)

let prune_dense ~bm ~bk ~sparsity a =
  assert (Tensor.rank a = 2);
  let dims = Tensor.dims a in
  let rows = dims.(0) and cols = dims.(1) in
  assert (rows mod bm = 0 && cols mod bk = 0);
  let mblocks = rows / bm and kblocks = cols / bk in
  let norms = Array.make (mblocks * kblocks) (0.0, 0) in
  for ib = 0 to mblocks - 1 do
    for jb = 0 to kblocks - 1 do
      let s = ref 0.0 in
      for i = 0 to bm - 1 do
        for j = 0 to bk - 1 do
          let v = Tensor.get a [| (ib * bm) + i; (jb * bk) + j |] in
          s := !s +. (v *. v)
        done
      done;
      norms.((ib * kblocks) + jb) <- (!s, (ib * kblocks) + jb)
    done
  done;
  Array.sort compare norms;
  let to_drop =
    int_of_float (Float.round (sparsity *. float_of_int (Array.length norms)))
  in
  let dropped = Hashtbl.create to_drop in
  Array.iteri
    (fun rank (_, id) -> if rank < to_drop then Hashtbl.replace dropped id ())
    norms;
  build ~dtype:(Tensor.dtype a) ~rows ~cols ~bm ~bk
    ~keep:(fun ib jb -> not (Hashtbl.mem dropped ((ib * kblocks) + jb)))
    ~read:(fun i j -> Tensor.get a [| i; j |])

let epsilon = 1.0 /. 256.0

let bits_of_float x =
  if Float.is_nan x then 0x7FC0
  else begin
    let b32 = Int32.bits_of_float x in
    (* round-to-nearest-even on the low 16 bits *)
    let lsb = Int32.to_int (Int32.shift_right_logical b32 16) land 1 in
    let bias = Int32.of_int (0x7FFF + lsb) in
    let rounded = Int32.add b32 bias in
    Int32.to_int (Int32.shift_right_logical rounded 16) land 0xFFFF
  end

let float_of_bits bits =
  Int32.float_of_bits (Int32.shift_left (Int32.of_int (bits land 0xFFFF)) 16)

let round x = if Float.is_nan x then x else float_of_bits (bits_of_float x)

type t = F32 | BF16

let bytes = function F32 -> 4 | BF16 -> 2

let to_string = function F32 -> "f32" | BF16 -> "bf16"

let equal a b = match a, b with F32, F32 | BF16, BF16 -> true | _ -> false

let quantize dt x = match dt with F32 -> x | BF16 -> Bf16.round x

let vnni_factor = function F32 -> 1 | BF16 -> 2

(** Block Compressed Sparse Column (BCSC) matrices.

    The paper's Block-SpMM TPP (§III-C) takes the sparse A operand of
    C = A x B in BCSC format with a parameterized [bm x bk] block size:
    the M x K matrix is tiled into (M/bm) x (K/bk) blocks and only
    non-empty blocks are stored, compressed along block columns.

    In addition to the column-compressed index we keep a row-major index
    (built once at construction) because the SpMM microkernel walks a block
    row of A for each output block row of C. *)

type t = private {
  rows : int;  (** M *)
  cols : int;  (** K *)
  bm : int;
  bk : int;
  colptr : int array;  (** length K/bk + 1, offsets into [rowind] *)
  rowind : int array;  (** block-row index of each stored block *)
  values : Tensor.t;  (** [nnzb; bm; bk] dense payloads, colptr order *)
  row_index : (int * int) array array;
      (** [row_index.(ib)] = (block-col, block-slot) pairs of block row ib,
          sorted by block-col *)
  dtype : Datatype.t;
}

(** Number of stored (non-empty) blocks. *)
val nnz_blocks : t -> int

(** Fraction of blocks that are zero (dropped), in [0, 1]. *)
val sparsity : t -> float

(** [of_dense ~bm ~bk a] compresses a rank-2 tensor, dropping blocks that
    are entirely zero. M, K must be divisible by bm, bk. *)
val of_dense : bm:int -> bk:int -> Tensor.t -> t

(** Reconstruct the dense matrix (zero-filled where blocks are absent). *)
val to_dense : t -> Tensor.t

(** [random ~rng ~dtype ~rows ~cols ~bm ~bk ~sparsity] draws a block-sparse
    matrix: each block survives with probability [1 - sparsity], surviving
    blocks hold uniform values in [-1, 1). *)
val random :
  rng:Prng.t ->
  dtype:Datatype.t ->
  rows:int ->
  cols:int ->
  bm:int ->
  bk:int ->
  sparsity:float ->
  t

(** View of a stored block's [bm x bk] payload by slot index. *)
val block_view : t -> int -> Tensor.View.t

(** Blocks of block-row [ib] as (block-col, payload view) pairs. *)
val row_blocks : t -> int -> (int * Tensor.View.t) array

(** [prune_dense ~bm ~bk ~sparsity a] magnitude-prunes a dense matrix to the
    requested block sparsity: blocks with the smallest Frobenius norms are
    zeroed until [sparsity] fraction of blocks is empty. Returns the BCSC
    form. This is the "block-wise weight pruning" step of §IV-B. *)
val prune_dense : bm:int -> bk:int -> sparsity:float -> Tensor.t -> t

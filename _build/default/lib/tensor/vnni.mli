(** VNNI layout transformations.

    Low-precision contraction hardware (AVX512-VNNI/BF16, AMX, SVE MMLA)
    consumes the B operand with [v] consecutive elements of the K dimension
    packed together: a logical [K x N] matrix is stored as [K/v][N][v].
    For BF16, v = 2; for FP32, v = 1 (identity). *)

(** [pack b] reformats a rank-2 [K x N] tensor into VNNI layout
    [K/v; N; v] where [v = Datatype.vnni_factor (dtype b)].
    K must be divisible by [v]. *)
val pack : Tensor.t -> Tensor.t

(** Inverse of {!pack}: rank-3 [K/v; N; v] back to [K; N]. *)
val unpack : Tensor.t -> Tensor.t

(** Element of a VNNI-packed tensor by logical (k, n) coordinates, given the
    packing factor. *)
val get : Tensor.t -> v:int -> k:int -> n:int -> float

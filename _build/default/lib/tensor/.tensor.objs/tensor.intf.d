lib/tensor/tensor.mli: Bigarray Datatype Prng

lib/tensor/tensor.ml: Array Bigarray Datatype Float List Prng

lib/tensor/prng.mli:

lib/tensor/reference.ml: Array Datatype Float Tensor

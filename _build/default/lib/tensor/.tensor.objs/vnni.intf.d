lib/tensor/vnni.mli: Tensor

lib/tensor/bf16.ml: Float Int32

lib/tensor/datatype.mli:

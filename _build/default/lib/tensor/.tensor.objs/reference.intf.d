lib/tensor/reference.mli: Tensor

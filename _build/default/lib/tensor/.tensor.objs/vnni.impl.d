lib/tensor/vnni.ml: Array Datatype Tensor

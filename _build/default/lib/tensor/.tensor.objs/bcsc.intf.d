lib/tensor/bcsc.mli: Datatype Prng Tensor

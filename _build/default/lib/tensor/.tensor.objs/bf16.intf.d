lib/tensor/bf16.mli:

lib/tensor/datatype.ml: Bf16

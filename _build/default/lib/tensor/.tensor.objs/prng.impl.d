lib/tensor/prng.ml: Float Int64

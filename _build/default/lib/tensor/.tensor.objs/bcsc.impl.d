lib/tensor/bcsc.ml: Array Datatype Float Hashtbl List Prng Tensor

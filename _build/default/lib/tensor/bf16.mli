(** BF16 (bfloat16) arithmetic emulation.

    BF16 keeps the FP32 exponent and truncates the mantissa to 7 bits.
    Hardware (AMX, AVX512-BF16, SVE BF16-MMLA) converts with round-to-nearest
    -even; accumulation happens in FP32. We reproduce exactly that: [round]
    maps an FP32 value to the nearest representable BF16 value, returned as
    FP32. *)

(** Round-to-nearest-even onto the BF16 grid. NaN is preserved. *)
val round : float -> float

(** Raw 16-bit pattern of the BF16 encoding of [x] (top half of the FP32
    bits after rounding). *)
val bits_of_float : float -> int

(** Decode a 16-bit BF16 pattern back to FP32. *)
val float_of_bits : int -> float

(** Relative unit roundoff of BF16 (2^-8), handy for test tolerances. *)
val epsilon : float

let matmul_acc c a b =
  let da = Tensor.dims a and db = Tensor.dims b and dc = Tensor.dims c in
  let m = da.(0) and k = da.(1) and n = db.(1) in
  assert (db.(0) = k && dc.(0) = m && dc.(1) = n);
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref (Tensor.get c [| i; j |]) in
      for p = 0 to k - 1 do
        acc := !acc +. (Tensor.get a [| i; p |] *. Tensor.get b [| p; j |])
      done;
      Tensor.set c [| i; j |] !acc
    done
  done

let matmul a b =
  let m = (Tensor.dims a).(0) and n = (Tensor.dims b).(1) in
  let c = Tensor.create Datatype.F32 [| m; n |] in
  matmul_acc c a b;
  c

let conv2d ~stride ~pad i w =
  let di = Tensor.dims i and dw = Tensor.dims w in
  let n = di.(0) and c = di.(1) and h = di.(2) and wd = di.(3) in
  let k = dw.(0) and r = dw.(2) and s = dw.(3) in
  assert (dw.(1) = c);
  let p = ((h + (2 * pad) - r) / stride) + 1 in
  let q = ((wd + (2 * pad) - s) / stride) + 1 in
  let o = Tensor.create Datatype.F32 [| n; k; p; q |] in
  for in_ = 0 to n - 1 do
    for ik = 0 to k - 1 do
      for ip = 0 to p - 1 do
        for iq = 0 to q - 1 do
          let acc = ref 0.0 in
          for ic = 0 to c - 1 do
            for ir = 0 to r - 1 do
              for is = 0 to s - 1 do
                let ih = (ip * stride) + ir - pad in
                let iw = (iq * stride) + is - pad in
                if ih >= 0 && ih < h && iw >= 0 && iw < wd then
                  acc :=
                    !acc
                    +. Tensor.get i [| in_; ic; ih; iw |]
                       *. Tensor.get w [| ik; ic; ir; is |]
              done
            done
          done;
          Tensor.set o [| in_; ik; ip; iq |] !acc
        done
      done
    done
  done;
  o

let relu x = if x > 0.0 then x else 0.0

let gelu x = 0.5 *. x *. (1.0 +. Float.erf (x /. Float.sqrt 2.0))

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let softmax_rows x =
  let d = Tensor.dims x in
  let rows = d.(0) and cols = d.(1) in
  let y = Tensor.create Datatype.F32 d in
  for i = 0 to rows - 1 do
    let mx = ref neg_infinity in
    for j = 0 to cols - 1 do
      mx := Float.max !mx (Tensor.get x [| i; j |])
    done;
    let sum = ref 0.0 in
    for j = 0 to cols - 1 do
      let e = exp (Tensor.get x [| i; j |] -. !mx) in
      Tensor.set y [| i; j |] e;
      sum := !sum +. e
    done;
    for j = 0 to cols - 1 do
      Tensor.set y [| i; j |] (Tensor.get y [| i; j |] /. !sum)
    done
  done;
  y

let layernorm_rows ~eps x gamma beta =
  let d = Tensor.dims x in
  let rows = d.(0) and cols = d.(1) in
  assert (Array.length gamma = cols && Array.length beta = cols);
  let y = Tensor.create Datatype.F32 d in
  for i = 0 to rows - 1 do
    let mean = ref 0.0 in
    for j = 0 to cols - 1 do
      mean := !mean +. Tensor.get x [| i; j |]
    done;
    let mean = !mean /. float_of_int cols in
    let var = ref 0.0 in
    for j = 0 to cols - 1 do
      let dx = Tensor.get x [| i; j |] -. mean in
      var := !var +. (dx *. dx)
    done;
    let var = !var /. float_of_int cols in
    let inv = 1.0 /. sqrt (var +. eps) in
    for j = 0 to cols - 1 do
      let v = (Tensor.get x [| i; j |] -. mean) *. inv in
      Tensor.set y [| i; j |] ((v *. gamma.(j)) +. beta.(j))
    done
  done;
  y

let maxpool2d ~window ~stride x =
  let d = Tensor.dims x in
  let n = d.(0) and c = d.(1) and h = d.(2) and w = d.(3) in
  let p = ((h - window) / stride) + 1 in
  let q = ((w - window) / stride) + 1 in
  let y = Tensor.create Datatype.F32 [| n; c; p; q |] in
  for in_ = 0 to n - 1 do
    for ic = 0 to c - 1 do
      for ip = 0 to p - 1 do
        for iq = 0 to q - 1 do
          let mx = ref neg_infinity in
          for dy = 0 to window - 1 do
            for dx = 0 to window - 1 do
              mx :=
                Float.max !mx
                  (Tensor.get x
                     [| in_; ic; (ip * stride) + dy; (iq * stride) + dx |])
            done
          done;
          Tensor.set y [| in_; ic; ip; iq |] !mx
        done
      done
    done
  done;
  y

let global_avgpool x =
  let d = Tensor.dims x in
  let n = d.(0) and c = d.(1) and h = d.(2) and w = d.(3) in
  let y = Tensor.create Datatype.F32 [| n; c |] in
  let area = float_of_int (h * w) in
  for in_ = 0 to n - 1 do
    for ic = 0 to c - 1 do
      let s = ref 0.0 in
      for ih = 0 to h - 1 do
        for iw = 0 to w - 1 do
          s := !s +. Tensor.get x [| in_; ic; ih; iw |]
        done
      done;
      Tensor.set y [| in_; ic |] (!s /. area)
    done
  done;
  y

(** Tensor element datatypes supported by the TPP backend.

    The paper's TPPs are precision-aware: the same kernel code runs with any
    supported datatype. We model FP32 and BF16 (the two precisions evaluated
    in the paper); BF16 values are stored as FP32 values rounded to the BF16
    grid, which is bit-equivalent to hardware BF16 semantics with FP32
    accumulation. *)

type t = F32 | BF16

(** Size in bytes of one element as stored by real hardware — used by the
    performance model for bandwidth accounting (2 for BF16, 4 for FP32). *)
val bytes : t -> int

val to_string : t -> string

val equal : t -> t -> bool

(** [quantize dt x] rounds [x] onto the representable grid of [dt].
    Identity for [F32]; round-to-nearest-even BF16 truncation for [BF16]. *)
val quantize : t -> float -> float

(** VNNI packing factor for low-precision contractions: 32 bits divided by
    the element width (2 for BF16, 1 for FP32). *)
val vnni_factor : t -> int

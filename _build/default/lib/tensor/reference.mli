(** Naive reference implementations used as test oracles.

    Deliberately simple triple-loop / direct-formula code, independent of the
    TPP backend and PARLOOPER, against which all optimized kernels are
    verified. All math is FP32; callers quantize inputs beforehand when
    checking BF16 paths. *)

(** [matmul a b] for rank-2 [M x K] and [K x N]; returns FP32 [M x N]. *)
val matmul : Tensor.t -> Tensor.t -> Tensor.t

(** [matmul_acc c a b] — c := c + a*b in place (c FP32 rank-2). *)
val matmul_acc : Tensor.t -> Tensor.t -> Tensor.t -> unit

(** Direct convolution, NCHW logical layout.
    [conv2d ~stride ~pad i w] with input [N; C; H; W] and weights
    [K; C; R; S]; returns [N; K; P; Q]. *)
val conv2d : stride:int -> pad:int -> Tensor.t -> Tensor.t -> Tensor.t

val relu : float -> float

(** Exact (erf-based) GELU. *)
val gelu : float -> float

val sigmoid : float -> float

(** Row-wise softmax of a rank-2 tensor (numerically stabilized). *)
val softmax_rows : Tensor.t -> Tensor.t

(** Row-wise layer normalization with per-column gamma/beta.
    [layernorm_rows ~eps x gamma beta]. *)
val layernorm_rows :
  eps:float -> Tensor.t -> float array -> float array -> Tensor.t

(** Max pooling on [N; C; H; W] with square window/stride. *)
val maxpool2d : window:int -> stride:int -> Tensor.t -> Tensor.t

(** Global average pooling: [N; C; H; W] -> [N; C]. *)
val global_avgpool : Tensor.t -> Tensor.t

(** Deterministic splitmix64 pseudo-random number generator.

    All randomized data in the repository (synthetic weights, sparse
    patterns, test inputs) flows through this generator so that every
    experiment and test is exactly reproducible from a seed. *)

type t

(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [-scale, scale). *)
val uniform : t -> scale:float -> float

(** Standard normal via Box-Muller. *)
val gaussian : t -> float

(** Uniform int in [0, bound). [bound] must be positive. *)
val int : t -> int -> int

(** Bernoulli draw with probability [p] of [true]. *)
val bernoulli : t -> p:float -> bool

(** Independent generator derived from this one (for parallel streams). *)
val split : t -> t

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~scale = (float t *. 2.0 -. 1.0) *. scale

let gaussian t =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bernoulli t ~p = float t < p

let split t = { state = mix (next_int64 t) }

let pack b =
  assert (Tensor.rank b = 2);
  let dims = Tensor.dims b in
  let k = dims.(0) and n = dims.(1) in
  let v = Datatype.vnni_factor (Tensor.dtype b) in
  assert (k mod v = 0);
  Tensor.init (Tensor.dtype b) [| k / v; n; v |] (fun idx ->
      Tensor.get b [| (idx.(0) * v) + idx.(2); idx.(1) |])

let unpack p =
  assert (Tensor.rank p = 3);
  let dims = Tensor.dims p in
  let kv = dims.(0) and n = dims.(1) and v = dims.(2) in
  Tensor.init (Tensor.dtype p) [| kv * v; n |] (fun idx ->
      Tensor.get p [| idx.(0) / v; idx.(1); idx.(0) mod v |])

let get p ~v ~k ~n = Tensor.get p [| k / v; n; k mod v |]

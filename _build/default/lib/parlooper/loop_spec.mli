(** Logical loop declarations — the [LoopSpecs {start, bound, step, {l1,l0}}]
    of the paper's Listing 1.

    A logical loop is declared once, with its iteration range and innermost
    step, plus an optional list of blocking steps consumed outer-to-inner
    when the [loop_spec_string] blocks the loop multiple times. *)

type t = {
  start : int;
  bound : int;
  step : int;
  block_steps : int list;
      (** outer-to-inner blocking steps, e.g. [l1_step; l0_step] *)
}

(** [make ?start ?block_steps ~bound ~step ()]. [step] must be positive and
    [start <= bound]. *)
val make : ?start:int -> ?block_steps:int list -> bound:int -> step:int -> unit -> t

(** Logical trip count: number of innermost-step iterations. *)
val trip_count : t -> int

(** The step used by the [occ]-th (0-based, outer-to-inner) of [total]
    occurrences of this loop in a spec string: blocking steps first, the
    declared [step] last. Raises [Invalid_argument] if the declaration does
    not provide enough blocking steps. *)
val step_at : t -> occ:int -> total:int -> int

val to_string : t -> string

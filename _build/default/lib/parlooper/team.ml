type ctx = {
  tid : int;
  nthreads : int;
  barrier : unit -> unit;
  fetch_chunk : instance:int -> chunk:int -> int;
}

(* Sense-reversing barrier, safe across domains and systhreads. *)
module Barrier = struct
  type t = {
    mutex : Mutex.t;
    cond : Condition.t;
    total : int;
    mutable arrived : int;
    mutable generation : int;
  }

  let create total =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      total;
      arrived = 0;
      generation = 0;
    }

  let wait t =
    Mutex.lock t.mutex;
    let gen = t.generation in
    t.arrived <- t.arrived + 1;
    if t.arrived = t.total then begin
      t.arrived <- 0;
      t.generation <- t.generation + 1;
      Condition.broadcast t.cond
    end
    else
      while t.generation = gen do
        Condition.wait t.cond t.mutex
      done;
    Mutex.unlock t.mutex
end

(* Per-instance dynamic work-sharing counters. Work-sharing constructs are
   matched across threads by per-thread encounter order (like the OpenMP
   runtime), so the table is indexed by the instance number and grown on
   demand. *)
module Counters = struct
  type t = {
    mutex : Mutex.t;
    mutable table : int Atomic.t array;
  }

  let create () = { mutex = Mutex.create (); table = [||] }

  let get t instance =
    let n = Array.length t.table in
    if instance < n then t.table.(instance)
    else begin
      Mutex.lock t.mutex;
      let n = Array.length t.table in
      if instance >= n then begin
        let fresh = Array.init (instance + 1 - n) (fun _ -> Atomic.make 0) in
        t.table <- Array.append t.table fresh
      end;
      let c = t.table.(instance) in
      Mutex.unlock t.mutex;
      c
    end

  let fetch t ~instance ~chunk =
    let c = get t instance in
    Atomic.fetch_and_add c chunk
end

let domains_for n =
  let cores = Domain.recommended_domain_count () in
  max 1 (min n cores)

let run ~nthreads f =
  assert (nthreads > 0);
  if nthreads = 1 then
    f
      {
        tid = 0;
        nthreads = 1;
        barrier = (fun () -> ());
        fetch_chunk =
          (let counters = Counters.create () in
           fun ~instance ~chunk -> Counters.fetch counters ~instance ~chunk);
      }
  else begin
    let barrier = Barrier.create nthreads in
    let counters = Counters.create () in
    let failure = Atomic.make None in
    let record_exn e =
      ignore (Atomic.compare_and_set failure None (Some e))
    in
    let thread_body tid () =
      try
        f
          {
            tid;
            nthreads;
            barrier = (fun () -> Barrier.wait barrier);
            fetch_chunk =
              (fun ~instance ~chunk ->
                Counters.fetch counters ~instance ~chunk);
          }
      with e -> record_exn e
    in
    let ndomains = domains_for nthreads in
    (* round-robin logical threads over domains; each domain runs its
       share as systhreads so barriers interleave correctly *)
    let domains =
      List.init (ndomains - 1) (fun d ->
          Domain.spawn (fun () ->
              let mine =
                List.init nthreads Fun.id
                |> List.filter (fun t -> t mod ndomains = d + 1)
              in
              let threads =
                List.map (fun tid -> Thread.create (thread_body tid) ()) mine
              in
              List.iter Thread.join threads))
    in
    (* domain 0 = current domain *)
    let mine =
      List.init nthreads Fun.id |> List.filter (fun t -> t mod ndomains = 0)
    in
    let threads = List.map (fun tid -> Thread.create (thread_body tid) ()) mine in
    List.iter Thread.join threads;
    List.iter Domain.join domains;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end

let run_sequential ~nthreads f =
  assert (nthreads > 0);
  (* deterministic round-robin dynamic assignment: per-(instance, tid)
     private counters stepping by nthreads*chunk *)
  for tid = 0 to nthreads - 1 do
    let local : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
    let fetch_chunk ~instance ~chunk =
      let r =
        match Hashtbl.find_opt local instance with
        | Some r -> r
        | None ->
          let r = ref (tid * chunk) in
          Hashtbl.replace local instance r;
          r
      in
      let v = !r in
      r := v + (nthreads * chunk);
      v
    in
    f { tid; nthreads; barrier = (fun () -> ()); fetch_chunk }
  done

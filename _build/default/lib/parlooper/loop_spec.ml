type t = {
  start : int;
  bound : int;
  step : int;
  block_steps : int list;
}

let make ?(start = 0) ?(block_steps = []) ~bound ~step () =
  if step <= 0 then invalid_arg "Loop_spec.make: step must be positive";
  if start > bound then invalid_arg "Loop_spec.make: start > bound";
  List.iter
    (fun s -> if s <= 0 then invalid_arg "Loop_spec.make: blocking step <= 0")
    block_steps;
  { start; bound; step; block_steps }

let trip_count t = (t.bound - t.start + t.step - 1) / t.step

let step_at t ~occ ~total =
  if occ < 0 || occ >= total then invalid_arg "Loop_spec.step_at: bad occ";
  if total - 1 > List.length t.block_steps then
    invalid_arg
      (Printf.sprintf
         "Loop_spec.step_at: loop blocked %d times but only %d blocking \
          steps declared"
         (total - 1)
         (List.length t.block_steps));
  if occ = total - 1 then t.step else List.nth t.block_steps occ

let to_string t =
  Printf.sprintf "[%d..%d step %d blocks (%s)]" t.start t.bound t.step
    (String.concat ", " (List.map string_of_int t.block_steps))

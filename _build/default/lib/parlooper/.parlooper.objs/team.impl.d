lib/parlooper/team.ml: Array Atomic Condition Domain Fun Hashtbl List Mutex Thread

lib/parlooper/spec_parser.ml: Buffer Char List Printf String

lib/parlooper/threaded_loop.mli: Loop_spec

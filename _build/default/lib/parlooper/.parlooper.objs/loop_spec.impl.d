lib/parlooper/loop_spec.ml: List Printf String

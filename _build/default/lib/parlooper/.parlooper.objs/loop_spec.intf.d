lib/parlooper/loop_spec.mli:

lib/parlooper/team.mli:

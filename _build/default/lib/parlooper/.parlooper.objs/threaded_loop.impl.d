lib/parlooper/threaded_loop.ml: Array Domain Hashtbl List Loop_spec Mutex Nest Printf Spec_parser String

lib/parlooper/spec_parser.mli:

lib/parlooper/nest.ml: Array Char Loop_spec Printf Spec_parser Team

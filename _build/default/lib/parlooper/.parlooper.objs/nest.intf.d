lib/parlooper/nest.mli: Loop_spec Spec_parser

(** Thread-team runtime — the concurrency substrate PARLOOPER generates
    loops for (the paper's POC uses OpenMP; the back-end is designed to be
    swappable, §II-B).

    A team of [nthreads] logical threads executes a function in SPMD style,
    like an [omp parallel] region. Logical threads are real preemptive
    threads spread over OCaml domains (true parallelism when cores are
    available, correct interleaving always), so team barriers and dynamic
    work-sharing behave like their OpenMP counterparts regardless of the
    physical core count. *)

type ctx = {
  tid : int;  (** logical thread id, 0-based *)
  nthreads : int;
  barrier : unit -> unit;  (** team-wide barrier *)
  fetch_chunk : instance:int -> chunk:int -> int;
      (** dynamic work-sharing: atomically claim the next [chunk]-sized
          range start for work-sharing construct number [instance] (the
          per-thread encounter index); returns the claimed start. *)
}

(** [run ~nthreads f] executes [f ctx] on every logical thread and waits
    for all of them. Exceptions raised by any thread are re-raised (the
    first one observed) after the team finishes. *)
val run : nthreads:int -> (ctx -> unit) -> unit

(** Sequential "trace" execution: runs logical threads one after another
    (tid order) with barriers as no-ops and [fetch_chunk] replaced by a
    deterministic round-robin assignment. Used by the performance model to
    extract per-thread access traces without timing effects. *)
val run_sequential : nthreads:int -> (ctx -> unit) -> unit

(** Number of physical domains [run] will use for a team of [n]. *)
val domains_for : int -> int

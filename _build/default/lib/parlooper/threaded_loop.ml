exception Invalid_spec of string

type t = {
  specs : Loop_spec.t array;
  spec_string : string;
  nest : Nest.t;
}

(* ---- JIT cache ---- *)

let cache : (string, t) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let hits = ref 0
let misses = ref 0

let cache_key specs spec_string =
  String.concat ";" (List.map Loop_spec.to_string specs) ^ "|" ^ spec_string

let compile specs_list spec_string =
  let specs = Array.of_list specs_list in
  let parsed =
    try Spec_parser.parse spec_string
    with Spec_parser.Parse_error m -> raise (Invalid_spec m)
  in
  let nest =
    try Nest.compile specs parsed
    with Nest.Invalid_spec m -> raise (Invalid_spec m)
  in
  { specs; spec_string; nest }

let create specs_list spec_string =
  let key = cache_key specs_list spec_string in
  Mutex.lock cache_lock;
  match Hashtbl.find_opt cache key with
  | Some t ->
    incr hits;
    Mutex.unlock cache_lock;
    t
  | None ->
    Mutex.unlock cache_lock;
    (* compile outside the lock; racing duplicates are harmless *)
    let t = compile specs_list spec_string in
    Mutex.lock cache_lock;
    if not (Hashtbl.mem cache key) then begin
      incr misses;
      Hashtbl.replace cache key t
    end
    else incr hits;
    Mutex.unlock cache_lock;
    t

let spec_string t = t.spec_string
let specs t = Array.copy t.specs

let default_threads () = Domain.recommended_domain_count ()

let threads_used ?nthreads t =
  let default = match nthreads with Some n -> n | None -> default_threads () in
  Nest.required_threads t.nest ~default

let run ?nthreads ?init ?term t body =
  let n = threads_used ?nthreads t in
  (* a serial spec just runs serially whatever team size was offered; an
     explicit thread count only conflicts with a PAR-MODE 2 grid *)
  (match (nthreads, Nest.grid_threads t.nest) with
  | Some m, Some g when m <> g ->
    raise
      (Invalid_spec
         (Printf.sprintf "spec %S requires %d threads but %d were requested"
            t.spec_string g m))
  | _ -> ());
  Nest.exec t.nest ~nthreads:n ~init ~term ~body

let run_traced ?nthreads t body =
  let n = threads_used ?nthreads t in
  Nest.exec_sequential t.nest ~nthreads:n ~body

let body_invocations t = Nest.body_invocations t.nest

let cache_stats () =
  Mutex.lock cache_lock;
  let s = (!hits, !misses) in
  Mutex.unlock cache_lock;
  s

let cache_clear () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  hits := 0;
  misses := 0;
  Mutex.unlock cache_lock

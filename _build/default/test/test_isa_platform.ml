(* Tests for the ISA descriptors and platform models — these anchor the
   performance model, so several paper-stated ratios are asserted. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-6)) msg

let test_amx_16x_over_avx512 () =
  (* §V-A1: AMX offers up to 16x more peak flops than FP32 AVX512 *)
  checkf "amx/avx512 = 16" 16.0
    (Isa.flops_per_cycle Isa.AMX_BF16 /. Isa.flops_per_cycle Isa.AVX512F)

let test_amx_chain_4x4_restriction () =
  (* Fig. 8 analysis: 4x4 blocks reach 4/32 = 12.5% of AMX BF16 peak *)
  checkf "4/32 chain" 0.125 (Isa.chain_efficiency Isa.AMX_BF16 ~chain:4);
  checkf "full chain" 1.0 (Isa.chain_efficiency Isa.AMX_BF16 ~chain:32);
  checkf "over-chain clamps" 1.0 (Isa.chain_efficiency Isa.AMX_BF16 ~chain:64)

let test_mmla_4x_over_sve () =
  (* §V-A1: BF16-MMLA up to ~4x (measured 3.43x) over FP32 SVE256 *)
  checkf "mmla/sve" 4.0
    (Isa.flops_per_cycle Isa.BF16_MMLA /. Isa.flops_per_cycle Isa.SVE256)

let test_min_chains () =
  checki "amx" 32 (Isa.min_chain Isa.AMX_BF16);
  checki "mmla" 4 (Isa.min_chain Isa.BF16_MMLA);
  checki "avx512-bf16" 2 (Isa.min_chain Isa.AVX512_BF16);
  checki "avx512f" 1 (Isa.min_chain Isa.AVX512F)

let test_best_for () =
  let spr = [ Isa.AVX512F; Isa.AVX512_BF16; Isa.AMX_BF16 ] in
  checkb "bf16 -> amx" true
    (Isa.best_for Datatype.BF16 spr = Some Isa.AMX_BF16);
  checkb "f32 -> avx512f" true
    (Isa.best_for Datatype.F32 spr = Some Isa.AVX512F);
  checkb "no bf16 -> none" true (Isa.best_for Datatype.BF16 [ Isa.AVX2 ] = None)

let test_native_dtype_consistency () =
  List.iter
    (fun i ->
      checkb "has_bf16 consistent" true
        (Isa.has_bf16 i = Datatype.equal (Isa.native_dtype i) Datatype.BF16))
    [ Isa.AVX2; Isa.AVX512F; Isa.AVX512_BF16; Isa.AMX_BF16; Isa.SVE256;
      Isa.BF16_MMLA; Isa.BF16_DOT ]

(* ---- platforms ---- *)

let test_core_counts () =
  checki "spr" 112 (Platform.cores Platform.spr);
  checki "gvt3" 64 (Platform.cores Platform.gvt3);
  checki "zen4" 16 (Platform.cores Platform.zen4);
  checki "adl" 16 (Platform.cores Platform.adl)

let test_spr_bf16_peak_ratio () =
  let f32 = Platform.peak_gflops Platform.spr Datatype.F32 in
  let bf16 = Platform.peak_gflops Platform.spr Datatype.BF16 in
  checkf "spr bf16/f32 = 16" 16.0 (bf16 /. f32)

let test_zen4_bf16_peak_ratio () =
  (* §V-A1: AVX512-BF16 gives 2x over FP32 on Zen4 *)
  let f32 = Platform.peak_gflops Platform.zen4 Datatype.F32 in
  let bf16 = Platform.peak_gflops Platform.zen4 Datatype.BF16 in
  checkf "zen4 bf16/f32 = 2" 2.0 (bf16 /. f32)

let test_gvt3_bf16_peak_ratio () =
  let f32 = Platform.peak_gflops Platform.gvt3 Datatype.F32 in
  let bf16 = Platform.peak_gflops Platform.gvt3 Datatype.BF16 in
  checkf "gvt3 bf16/f32 = 4" 4.0 (bf16 /. f32)

let test_spr_vs_others_peak () =
  (* §V-A1 Fig 3: SPR up to 3.3x GVT3 and 6.6x Zen4 on BF16 MLP *)
  let spr = Platform.peak_gflops Platform.spr Datatype.BF16 in
  let gvt3 = Platform.peak_gflops Platform.gvt3 Datatype.BF16 in
  let zen4 = Platform.peak_gflops Platform.zen4 Datatype.BF16 in
  checkb "spr >> gvt3 (>=3x)" true (spr /. gvt3 >= 3.0);
  checkb "spr >> zen4 (>=6x)" true (spr /. zen4 >= 6.0)

let test_adl_no_bf16 () =
  checkb "adl f32 only" false (Platform.has_bf16 Platform.adl);
  checkb "spr has bf16" true (Platform.has_bf16 Platform.spr)

let test_adl_hybrid_peak () =
  (* P-cores contribute more than E-cores: 8-core peak > half of 16-core *)
  let p8 = Platform.peak_gflops ~cores:8 Platform.adl Datatype.F32 in
  let all = Platform.peak_gflops Platform.adl Datatype.F32 in
  checkb "heterogeneous halves" true (p8 > all /. 2.0)

let test_by_name () =
  checkb "lookup spr" true (Platform.by_name "spr" = Some Platform.spr);
  checkb "lookup Zen4" true (Platform.by_name "Zen4" = Some Platform.zen4);
  checkb "lookup nonsense" true (Platform.by_name "tpu" = None)

let test_contraction_isa () =
  checkb "spr bf16 = amx" true
    (Platform.contraction_isa Platform.spr Datatype.BF16 = Some Isa.AMX_BF16);
  checkb "gvt3 bf16 = mmla" true
    (Platform.contraction_isa Platform.gvt3 Datatype.BF16 = Some Isa.BF16_MMLA);
  checkb "adl bf16 = none" true
    (Platform.contraction_isa Platform.adl Datatype.BF16 = None)

let test_cache_shapes () =
  List.iter
    (fun p ->
      checki
        (p.Platform.name ^ " has 3 cache levels")
        3
        (Array.length p.Platform.caches))
    Platform.all

let () =
  Alcotest.run "isa-platform"
    [
      ( "isa",
        [
          Alcotest.test_case "AMX 16x AVX512" `Quick test_amx_16x_over_avx512;
          Alcotest.test_case "AMX 4x4 chain = 12.5%" `Quick
            test_amx_chain_4x4_restriction;
          Alcotest.test_case "MMLA 4x SVE" `Quick test_mmla_4x_over_sve;
          Alcotest.test_case "min chains" `Quick test_min_chains;
          Alcotest.test_case "best_for" `Quick test_best_for;
          Alcotest.test_case "native dtype" `Quick test_native_dtype_consistency;
        ] );
      ( "platform",
        [
          Alcotest.test_case "core counts" `Quick test_core_counts;
          Alcotest.test_case "SPR bf16 16x f32" `Quick test_spr_bf16_peak_ratio;
          Alcotest.test_case "Zen4 bf16 2x f32" `Quick test_zen4_bf16_peak_ratio;
          Alcotest.test_case "GVT3 bf16 4x f32" `Quick test_gvt3_bf16_peak_ratio;
          Alcotest.test_case "SPR dominates peaks" `Quick test_spr_vs_others_peak;
          Alcotest.test_case "ADL lacks bf16" `Quick test_adl_no_bf16;
          Alcotest.test_case "ADL hybrid peak" `Quick test_adl_hybrid_peak;
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "contraction isa" `Quick test_contraction_isa;
          Alcotest.test_case "cache levels" `Quick test_cache_shapes;
        ] );
    ]

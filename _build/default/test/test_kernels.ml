(* Tests for the PARLOOPER/TPP kernels: GEMM (Listing 1), MLP, direct
   convolution (Listing 4) and Block-SpMM (Listing 5), all verified against
   naive references. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let qt t = QCheck_alcotest.to_alcotest t

let random_tensor ?(dtype = Datatype.F32) rng dims =
  let t = Tensor.create dtype dims in
  Tensor.fill_random t rng ~scale:1.0;
  t

(* ---- gemm ---- *)

let gemm_case ~spec ~dtype ~vnni_b ~nthreads () =
  let rng = Prng.create 100 in
  let m, n, k = (64, 48, 96) in
  let a = random_tensor ~dtype rng [| m; k |] in
  let b = random_tensor ~dtype rng [| k; n |] in
  let cfg =
    Gemm.make_config ~bm:16 ~bn:16 ~bk:16 ~dtype ~vnni_b ~k_step:2
      ~mk_blocks:[ 4; 2 ] ~nk_blocks:[ 3 ] ~m ~n ~k ()
  in
  let g = Gemm.create cfg spec in
  let c = Gemm.run_logical ~nthreads g ~a ~b in
  checkb
    (Printf.sprintf "gemm %s %s" spec (Datatype.to_string dtype))
    true
    (Tensor.approx_equal ~tol:1e-4 c (Reference.matmul a b))

let test_gemm_specs () =
  List.iter
    (fun spec -> gemm_case ~spec ~dtype:Datatype.F32 ~vnni_b:false ~nthreads:4 ())
    [
      "BCa"; "aBC"; "bca"; "cab"; "acb"; "bcabcb"; "bC{R:2}aB{C:2}cb";
      "BCa @ schedule(dynamic,2)"; "aBC @ schedule(dynamic,1)"; "caBbc";
    ]

let test_gemm_bf16 () =
  gemm_case ~spec:"BCa" ~dtype:Datatype.BF16 ~vnni_b:false ~nthreads:2 ();
  gemm_case ~spec:"BCa" ~dtype:Datatype.BF16 ~vnni_b:true ~nthreads:2 ();
  gemm_case ~spec:"bcaBCb" ~dtype:Datatype.BF16 ~vnni_b:true ~nthreads:3 ()

let test_gemm_flops () =
  let cfg = Gemm.make_config ~m:100 ~n:50 ~k:20 ~bm:10 ~bn:10 ~bk:10 () in
  Alcotest.(check (float 0.0)) "2MNK" 200000.0 (Gemm.flops cfg)

let test_gemm_pack_roundtrip () =
  let rng = Prng.create 4 in
  let cfg = Gemm.make_config ~bm:8 ~bn:8 ~bk:8 ~m:16 ~n:24 ~k:16 () in
  let c = random_tensor rng [| 16; 24 |] in
  let packed = Gemm.pack_c cfg c in
  checkb "pack_c/unpack_c" true
    (Tensor.max_abs_diff (Gemm.unpack_c cfg packed) c = 0.0)

let test_gemm_rejects_bad_blocks () =
  match Gemm.make_config ~bm:7 ~m:16 ~n:16 ~k:16 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid block size"

let prop_gemm_random_shapes =
  QCheck.Test.make ~name:"gemm == reference on random divisible shapes"
    ~count:25
    QCheck.(
      quad (int_range 1 4) (int_range 1 4) (int_range 1 4) (int_range 0 2))
    (fun (mb, nb, kb, which) ->
      let bm, bn, bk = (8, 8, 8) in
      let m = mb * bm and n = nb * bn and k = kb * bk in
      let rng = Prng.create ((m * 7) + (n * 13) + k + which) in
      let a = random_tensor rng [| m; k |] in
      let b = random_tensor rng [| k; n |] in
      let spec = List.nth [ "BCa"; "abc"; "cba" ] which in
      let cfg = Gemm.make_config ~bm ~bn ~bk ~m ~n ~k () in
      let g = Gemm.create cfg spec in
      let c = Gemm.run_logical ~nthreads:3 g ~a ~b in
      Tensor.approx_equal ~tol:1e-4 c (Reference.matmul a b))

let test_gemm_post_hook_runs_once_per_block () =
  let cfg =
    Gemm.make_config ~bm:8 ~bn:8 ~bk:8 ~k_step:2 ~m:16 ~n:16 ~k:32 ()
  in
  let g = Gemm.create cfg "abc" in
  let rng = Prng.create 5 in
  let a = Gemm.pack_a cfg (random_tensor rng [| 16; 32 |]) in
  let b = Gemm.pack_b cfg (random_tensor rng [| 32; 16 |]) in
  let c = Gemm.alloc_c cfg in
  let calls = ref 0 in
  Gemm.run ~post:(fun ~im:_ ~in_:_ ~c_block:_ -> incr calls) g ~a ~b ~c;
  checki "post per C block" 4 !calls

(* ---- mlp ---- *)

let test_mlp_matches_reference () =
  let rng = Prng.create 6 in
  let mlp =
    Mlp.create ~rng ~batch:16 ~features:[ 32; 48; 16 ] ~block:16 ()
  in
  let input = random_tensor rng [| 32; 16 |] in
  let out = Mlp.forward ~nthreads:3 mlp (Mlp.pack_input mlp input) in
  let got = Mlp.unpack_output mlp ~layer_idx:1 out in
  let expect = Mlp.reference_forward mlp input in
  checkb "mlp relu" true (Tensor.approx_equal ~tol:1e-4 got expect)

let test_mlp_activations () =
  List.iter
    (fun act ->
      let rng = Prng.create 7 in
      let mlp =
        Mlp.create ~rng ~act ~batch:8 ~features:[ 16; 8 ] ~block:8 ()
      in
      let input = random_tensor rng [| 16; 8 |] in
      let out = Mlp.forward mlp (Mlp.pack_input mlp input) in
      let got = Mlp.unpack_output mlp ~layer_idx:0 out in
      checkb "activation variant" true
        (Tensor.approx_equal ~tol:1e-4 got (Mlp.reference_forward mlp input)))
    [ Mlp.No_activation; Mlp.Relu; Mlp.Gelu; Mlp.Sigmoid ]

let test_mlp_bf16 () =
  let rng = Prng.create 8 in
  let mlp =
    Mlp.create ~rng ~dtype:Datatype.BF16 ~batch:16 ~features:[ 32; 32; 32 ]
      ~block:16 ()
  in
  let input = random_tensor ~dtype:Datatype.BF16 rng [| 32; 16 |] in
  let out = Mlp.forward ~nthreads:2 mlp (Mlp.pack_input mlp input) in
  let got = Mlp.unpack_output mlp ~layer_idx:1 out in
  let expect = Mlp.reference_forward mlp input in
  checkb "bf16 mlp close to reference" true
    (Tensor.approx_equal ~tol:0.05 got expect)

let test_mlp_relu_nonnegative () =
  let rng = Prng.create 9 in
  let mlp = Mlp.create ~rng ~batch:8 ~features:[ 16; 16 ] ~block:8 () in
  let input = random_tensor rng [| 16; 8 |] in
  let out = Mlp.forward mlp (Mlp.pack_input mlp input) in
  let got = Mlp.unpack_output mlp ~layer_idx:0 out in
  checkb "relu output nonnegative" true
    (List.for_all (fun x -> x >= 0.0) (Tensor.to_list got))

(* ---- conv ---- *)

let conv_case ~stride ~pad ~spec ~c_step ~r_step ~s_step ~h_step ~w_step () =
  let rng = Prng.create 10 in
  let n, c, k, h, w, r, s = (2, 16, 16, 8, 8, 3, 3) in
  let inp = random_tensor rng [| n; c; h; w |] in
  let wts = random_tensor rng [| k; c; r; s |] in
  let cfg =
    Conv.make_config ~stride ~pad ~bc:8 ~bk:8 ~c_step ~r_step ~s_step ~h_step
      ~w_step ~n ~c ~k ~h ~w ~r ~s ()
  in
  let cv = Conv.create cfg spec in
  let got = Conv.run_logical ~nthreads:3 cv ~input:inp ~weights:wts in
  let expect = Reference.conv2d ~stride ~pad inp wts in
  checkb
    (Printf.sprintf "conv s%d p%d %s" stride pad spec)
    true
    (Tensor.approx_equal ~tol:1e-4 got expect)

let test_conv_variants () =
  conv_case ~stride:1 ~pad:1 ~spec:"Acdebfg" ~c_step:1 ~r_step:3 ~s_step:3
    ~h_step:1 ~w_step:0 ();
  conv_case ~stride:1 ~pad:1 ~spec:"abcdefg" ~c_step:2 ~r_step:1 ~s_step:1
    ~h_step:2 ~w_step:4 ();
  conv_case ~stride:2 ~pad:1 ~spec:"ACdebfg" ~c_step:1 ~r_step:1 ~s_step:3
    ~h_step:1 ~w_step:0 ();
  conv_case ~stride:1 ~pad:0 ~spec:"gfAcdeb" ~c_step:2 ~r_step:1 ~s_step:1
    ~h_step:1 ~w_step:3 ();
  conv_case ~stride:1 ~pad:1 ~spec:"ADcebfg" ~c_step:1 ~r_step:3 ~s_step:3
    ~h_step:1 ~w_step:2 ()

let test_conv_1x1_stride_path () =
  (* R = S = 1 takes the stride-based BRGEMM fast path *)
  let rng = Prng.create 11 in
  let n, c, k, h, w = (2, 32, 16, 6, 6) in
  let inp = random_tensor rng [| n; c; h; w |] in
  let wts = random_tensor rng [| k; c; 1; 1 |] in
  List.iter
    (fun stride ->
      let cfg =
        Conv.make_config ~stride ~bc:16 ~bk:16 ~c_step:2 ~n ~c ~k ~h ~w ~r:1
          ~s:1 ()
      in
      let cv = Conv.create cfg "Acdebfg" in
      let got = Conv.run_logical ~nthreads:2 cv ~input:inp ~weights:wts in
      let expect = Reference.conv2d ~stride ~pad:0 inp wts in
      checkb "1x1 conv" true (Tensor.approx_equal ~tol:1e-4 got expect))
    [ 1; 2 ]

let test_conv_bf16 () =
  let rng = Prng.create 12 in
  let n, c, k, h, w, r, s = (1, 16, 8, 6, 6, 3, 3) in
  let inp = random_tensor ~dtype:Datatype.BF16 rng [| n; c; h; w |] in
  let wts = random_tensor ~dtype:Datatype.BF16 rng [| k; c; r; s |] in
  let cfg =
    Conv.make_config ~pad:1 ~bc:8 ~bk:8 ~dtype:Datatype.BF16 ~n ~c ~k ~h ~w ~r
      ~s ()
  in
  let cv = Conv.create cfg "Acdebfg" in
  let got = Conv.run_logical cv ~input:inp ~weights:wts in
  let expect = Reference.conv2d ~stride:1 ~pad:1 inp wts in
  checkb "bf16 conv" true (Tensor.approx_equal ~tol:0.05 got expect)

let test_conv_post_hook () =
  let cfg =
    Conv.make_config ~pad:1 ~bc:8 ~bk:8 ~n:1 ~c:8 ~k:8 ~h:4 ~w:4 ~r:3 ~s:3 ()
  in
  let cv = Conv.create cfg "Acdebfg" in
  let rng = Prng.create 13 in
  let ip = Conv.pack_input cfg (random_tensor rng [| 1; 8; 4; 4 |]) in
  let wp = Conv.pack_weights cfg (random_tensor rng [| 8; 8; 3; 3 |]) in
  let o = Conv.alloc_output cfg in
  let calls = ref 0 in
  Conv.run ~post:(fun ~n:_ ~kb:_ ~p:_ ~q:_ ~block:_ -> incr calls) cv
    ~input:ip ~weights:wp ~output:o;
  (* one call per (n, kb, p) row since w_step = Q *)
  checki "post per output row" 4 !calls

let test_conv_flops () =
  let cfg =
    Conv.make_config ~pad:1 ~n:2 ~c:4 ~k:8 ~h:4 ~w:4 ~r:3 ~s:3 ~bc:4 ~bk:8 ()
  in
  (* P=Q=4: 2*2*8*4*4*4*3*3 = 18432 *)
  Alcotest.(check (float 0.0)) "conv flops" 18432.0 (Conv.flops cfg)

(* ---- spmm ---- *)

let spmm_case ~sparsity ~bm ~bk ~dtype ~spec () =
  let rng = Prng.create 14 in
  let m, n, k = (64, 48, 64) in
  let a = Bcsc.random ~rng ~dtype ~rows:m ~cols:k ~bm ~bk ~sparsity in
  let b = random_tensor ~dtype rng [| k; n |] in
  let cfg = Spmm_kernel.make_config ~bn:16 ~dtype ~m ~n ~k ~bm ~bk () in
  let sp = Spmm_kernel.create cfg spec in
  let got = Spmm_kernel.run_logical ~nthreads:3 sp ~a ~b in
  let expect = Reference.matmul (Bcsc.to_dense a) b in
  checkb
    (Printf.sprintf "spmm %.1f %dx%d" sparsity bm bk)
    true
    (Tensor.approx_equal ~tol:1e-4 got expect)

let test_spmm_sparsities () =
  List.iter
    (fun sp -> spmm_case ~sparsity:sp ~bm:8 ~bk:8 ~dtype:Datatype.F32 ~spec:"AB" ())
    [ 0.0; 0.3; 0.7; 0.9; 1.0 ]

let test_spmm_block_sizes () =
  List.iter
    (fun (bm, bk) ->
      spmm_case ~sparsity:0.5 ~bm ~bk ~dtype:Datatype.F32 ~spec:"AB" ())
    [ (4, 4); (8, 16); (16, 8); (32, 32) ]

let test_spmm_bf16_and_specs () =
  spmm_case ~sparsity:0.5 ~bm:16 ~bk:16 ~dtype:Datatype.BF16 ~spec:"AB" ();
  spmm_case ~sparsity:0.5 ~bm:8 ~bk:8 ~dtype:Datatype.F32 ~spec:"BA" ();
  spmm_case ~sparsity:0.5 ~bm:8 ~bk:8 ~dtype:Datatype.F32 ~spec:"ab" ()

let test_spmm_effective_flops () =
  let rng = Prng.create 15 in
  let a =
    Bcsc.random ~rng ~dtype:Datatype.F32 ~rows:32 ~cols:32 ~bm:8 ~bk:8
      ~sparsity:0.5
  in
  let cfg = Spmm_kernel.make_config ~m:32 ~n:32 ~k:32 ~bm:8 ~bk:8 () in
  let eff = Spmm_kernel.effective_flops cfg ~a in
  let dense = Spmm_kernel.dense_flops cfg in
  Alcotest.(check (float 1.0))
    "effective = density * dense"
    (dense *. (1.0 -. Bcsc.sparsity a))
    eff

let () =
  Alcotest.run "kernels"
    [
      ( "gemm",
        [
          Alcotest.test_case "spec strings" `Quick test_gemm_specs;
          Alcotest.test_case "bf16 / vnni" `Quick test_gemm_bf16;
          Alcotest.test_case "flops" `Quick test_gemm_flops;
          Alcotest.test_case "pack roundtrip" `Quick test_gemm_pack_roundtrip;
          Alcotest.test_case "bad blocks rejected" `Quick
            test_gemm_rejects_bad_blocks;
          qt prop_gemm_random_shapes;
          Alcotest.test_case "post hook" `Quick
            test_gemm_post_hook_runs_once_per_block;
        ] );
      ( "mlp",
        [
          Alcotest.test_case "matches reference" `Quick
            test_mlp_matches_reference;
          Alcotest.test_case "activations" `Quick test_mlp_activations;
          Alcotest.test_case "bf16" `Quick test_mlp_bf16;
          Alcotest.test_case "relu nonneg" `Quick test_mlp_relu_nonnegative;
        ] );
      ( "conv",
        [
          Alcotest.test_case "variants" `Quick test_conv_variants;
          Alcotest.test_case "1x1 stride path" `Quick test_conv_1x1_stride_path;
          Alcotest.test_case "bf16" `Quick test_conv_bf16;
          Alcotest.test_case "post hook" `Quick test_conv_post_hook;
          Alcotest.test_case "flops" `Quick test_conv_flops;
        ] );
      ( "spmm",
        [
          Alcotest.test_case "sparsity sweep" `Quick test_spmm_sparsities;
          Alcotest.test_case "block sizes" `Quick test_spmm_block_sizes;
          Alcotest.test_case "bf16 + specs" `Quick test_spmm_bf16_and_specs;
          Alcotest.test_case "effective flops" `Quick test_spmm_effective_flops;
        ] );
    ]

(* Tests for the performance model: LRU cache level, the multi-level
   simulator, and GEMM trace scoring. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let qt t = QCheck_alcotest.to_alcotest t

(* ---- lru ---- *)

let test_lru_basic () =
  let l = Lru.create ~capacity_bytes:100 in
  Lru.touch l 1 ~bytes:40;
  Lru.touch l 2 ~bytes:40;
  checkb "both resident" true (Lru.mem l 1 && Lru.mem l 2);
  Lru.touch l 3 ~bytes:40;
  checkb "lru evicted" false (Lru.mem l 1);
  checkb "recent kept" true (Lru.mem l 2 && Lru.mem l 3)

let test_lru_touch_refreshes () =
  let l = Lru.create ~capacity_bytes:100 in
  Lru.touch l 1 ~bytes:40;
  Lru.touch l 2 ~bytes:40;
  Lru.touch l 1 ~bytes:40;
  (* 1 is now MRU *)
  Lru.touch l 3 ~bytes:40;
  checkb "2 evicted" false (Lru.mem l 2);
  checkb "1 kept" true (Lru.mem l 1)

let test_lru_oversized_never_resident () =
  let l = Lru.create ~capacity_bytes:100 in
  Lru.touch l 1 ~bytes:500;
  checkb "too big" false (Lru.mem l 1);
  checki "empty" 0 (Lru.occupancy l)

let test_lru_mru_order () =
  let l = Lru.create ~capacity_bytes:1000 in
  Lru.touch l 1 ~bytes:10;
  Lru.touch l 2 ~bytes:10;
  Lru.touch l 3 ~bytes:10;
  Lru.touch l 1 ~bytes:10;
  Alcotest.(check (list int)) "mru first" [ 1; 3; 2 ] (Lru.contents l)

let test_lru_resize_entry () =
  let l = Lru.create ~capacity_bytes:100 in
  Lru.touch l 1 ~bytes:30;
  Lru.touch l 1 ~bytes:60;
  checki "occupancy updated" 60 (Lru.occupancy l)

let prop_lru_matches_naive_model =
  (* model-based test against a naive list implementation *)
  QCheck.Test.make ~name:"lru matches naive model" ~count:100
    QCheck.(list (pair (int_range 0 9) (int_range 1 30)))
    (fun ops ->
      let cap = 64 in
      let l = Lru.create ~capacity_bytes:cap in
      (* naive: (key, bytes) list, head = MRU *)
      let naive = ref [] in
      let naive_touch k b =
        naive := (k, b) :: List.remove_assoc k !naive;
        let rec trim acc used = function
          | [] -> List.rev acc
          | (k', b') :: rest ->
            if used + b' <= cap then trim ((k', b') :: acc) (used + b') rest
            else trim acc used rest
        in
        (* evict from tail until fits *)
        let total = List.fold_left (fun a (_, b') -> a + b') 0 !naive in
        if total > cap then begin
          let rec drop_tail lst =
            let tot = List.fold_left (fun a (_, b') -> a + b') 0 lst in
            if tot <= cap then lst
            else
              match List.rev lst with
              | [] -> []
              | _ :: rev_rest -> drop_tail (List.rev rev_rest)
          in
          naive := drop_tail !naive
        end;
        ignore trim
      in
      List.for_all
        (fun (k, b) ->
          if b <= cap then begin
            Lru.touch l k ~bytes:b;
            naive_touch k b;
            List.map fst !naive = Lru.contents l
          end
          else true)
        ops)

(* ---- simulator ---- *)

let mk_work ~flops ~chain accesses =
  Perf_model.work ~flops ~chain
    ~accesses:
      (List.map
         (fun (t, b, bytes) -> Perf_model.access ~tensor:t ~block:b ~bytes ())
         accesses)
    ~store_bytes:0 ()

let test_simulate_compute_bound_peak () =
  (* tiny working set, lots of flops: should run at core peak *)
  let w = mk_work ~flops:1e6 ~chain:64 [ (0, 0, 1024) ] in
  let traces = [| List.init 100 (fun _ -> w) |] in
  let r =
    Perf_model.simulate ~platform:Platform.zen4 ~dtype:Datatype.F32
      ~nthreads:1 ~traces ()
  in
  let peak = Platform.core_peak_gflops Platform.zen4 Datatype.F32 in
  checkb "near peak" true (r.Perf_model.gflops > 0.9 *. peak);
  checkb "not above peak" true (r.Perf_model.gflops <= peak *. 1.0001)

let test_simulate_repeated_slice_hits_cache () =
  let w = mk_work ~flops:1.0 ~chain:1 [ (0, 0, 4096) ] in
  let traces = [| [ w; w; w; w ] |] in
  let r =
    Perf_model.simulate ~platform:Platform.spr ~dtype:Datatype.F32 ~nthreads:1
      ~traces ()
  in
  checki "one memory access" 1 r.Perf_model.mem_accesses;
  checki "three L1 hits" 3 r.Perf_model.level_hits.(0)

let test_simulate_capacity_spill_to_l2 () =
  (* cycle through slices larger than L1 (48KB on SPR) but within L2 *)
  let slices = List.init 4 (fun i -> mk_work ~flops:1.0 ~chain:1 [ (0, i, 16384) ]) in
  let trace = List.concat [ slices; slices; slices ] in
  let r =
    Perf_model.simulate ~platform:Platform.spr ~dtype:Datatype.F32 ~nthreads:1
      ~traces:[| trace |] ()
  in
  checki "4 cold misses" 4 r.Perf_model.mem_accesses;
  checkb "L2 serves repeats" true (r.Perf_model.level_hits.(1) >= 4)

let test_simulate_memory_bound () =
  (* every access a fresh huge slice: time bounded by DRAM bandwidth *)
  let trace =
    List.init 100 (fun i -> mk_work ~flops:1.0 ~chain:1 [ (0, i, 1 lsl 21) ])
  in
  let r =
    Perf_model.simulate ~platform:Platform.zen4 ~dtype:Datatype.F32
      ~nthreads:1 ~traces:[| trace |] ()
  in
  let bytes = 100.0 *. float_of_int (1 lsl 21) in
  let min_time = bytes /. (Platform.zen4.Platform.mem_bw_gbs *. 1e9) in
  checkb "respects DRAM bound" true (r.Perf_model.time_s >= min_time *. 0.99)

let test_simulate_slowest_thread_dominates () =
  let w = mk_work ~flops:1e6 ~chain:64 [ (0, 0, 1024) ] in
  let traces = [| List.init 10 (fun _ -> w); List.init 100 (fun _ -> w) |] in
  let r1 =
    Perf_model.simulate ~platform:Platform.spr ~dtype:Datatype.F32 ~nthreads:2
      ~traces ()
  in
  let r2 =
    Perf_model.simulate ~platform:Platform.spr ~dtype:Datatype.F32 ~nthreads:2
      ~traces:[| List.init 100 (fun _ -> w); List.init 100 (fun _ -> w) |] ()
  in
  Alcotest.(check (float 1e-9))
    "imbalanced time = slowest thread" r2.Perf_model.time_s r1.Perf_model.time_s

let test_chain_efficiency_affects_compute () =
  let short = mk_work ~flops:1e6 ~chain:4 [ (0, 0, 64) ] in
  let long = mk_work ~flops:1e6 ~chain:64 [ (0, 0, 64) ] in
  let run w =
    (Perf_model.simulate ~platform:Platform.spr ~dtype:Datatype.BF16
       ~nthreads:1
       ~traces:[| List.init 50 (fun _ -> w) |]
       ())
      .Perf_model.gflops
  in
  (* AMX with chain 4 is limited to 12.5% of peak (Fig. 8) *)
  let ratio = run long /. run short in
  checkb "chain-8x gap" true (ratio > 7.0 && ratio < 9.0)

(* ---- gemm traces ---- *)

let small_cfg =
  Gemm.make_config ~bm:32 ~bn:32 ~bk:32 ~m:256 ~n:256 ~k:256 ()

let test_gemm_trace_flops_total () =
  let traces = Gemm_trace.trace small_cfg "BCa" ~nthreads:4 in
  let total =
    Array.fold_left
      (fun acc t ->
        List.fold_left (fun a w -> a +. w.Perf_model.flops) acc t)
      0.0 traces
  in
  Alcotest.(check (float 1.0)) "sum = 2MNK" (Gemm.flops small_cfg) total

let test_gemm_trace_thread_count () =
  let traces = Gemm_trace.trace small_cfg "BCa" ~nthreads:4 in
  checki "4 traces" 4 (Array.length traces);
  Array.iter
    (fun t -> checkb "balanced" true (List.length t > 0))
    traces

let test_score_parallel_beats_serial () =
  let par =
    (Gemm_trace.score ~platform:Platform.zen4 ~nthreads:8 small_cfg "BCa")
      .Perf_model.gflops
  in
  let ser =
    (Gemm_trace.score ~platform:Platform.zen4 ~nthreads:8 small_cfg "bca")
      .Perf_model.gflops
  in
  checkb "parallel faster" true (par > 3.0 *. ser)

let test_score_flat_b_conflict_penalty () =
  (* pow2 leading dimension: flat B wastes cache -> more DRAM traffic *)
  let cfg =
    Gemm.make_config ~bm:64 ~bn:64 ~bk:64 ~m:1024 ~n:2048 ~k:2048 ()
  in
  let blocked =
    Gemm_trace.score ~platform:Platform.spr ~nthreads:8 cfg "BCa"
  in
  let flat =
    Gemm_trace.score ~flat_b:true ~platform:Platform.spr ~nthreads:8 cfg "BCa"
  in
  checkb "flat B reads more DRAM" true
    (flat.Perf_model.mem_read_bytes > blocked.Perf_model.mem_read_bytes)

let test_score_respects_platform_peak () =
  List.iter
    (fun (p, dtype) ->
      let r = Gemm_trace.score ~platform:p ~nthreads:8 small_cfg "BCa" in
      let peak = Platform.peak_gflops ~cores:8 p dtype in
      checkb
        (p.Platform.name ^ " within peak")
        true
        (r.Perf_model.gflops <= peak *. 1.0001))
    [
      (Platform.spr, Datatype.F32);
      (Platform.zen4, Datatype.F32);
      (Platform.gvt3, Datatype.F32);
    ]

let prop_more_threads_not_slower_modeled =
  QCheck.Test.make ~name:"model: 8 threads >= 2 threads on parallel spec"
    ~count:10
    (QCheck.int_range 0 1000)
    (fun seed ->
      ignore seed;
      let s8 =
        (Gemm_trace.score ~platform:Platform.spr ~nthreads:8 small_cfg "BCa")
          .Perf_model.gflops
      in
      let s2 =
        (Gemm_trace.score ~platform:Platform.spr ~nthreads:2 small_cfg "BCa")
          .Perf_model.gflops
      in
      s8 >= s2)

let () =
  Alcotest.run "perfmodel"
    [
      ( "lru",
        [
          Alcotest.test_case "basic eviction" `Quick test_lru_basic;
          Alcotest.test_case "touch refreshes" `Quick test_lru_touch_refreshes;
          Alcotest.test_case "oversized" `Quick test_lru_oversized_never_resident;
          Alcotest.test_case "mru order" `Quick test_lru_mru_order;
          Alcotest.test_case "resize entry" `Quick test_lru_resize_entry;
          qt prop_lru_matches_naive_model;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "compute bound peak" `Quick
            test_simulate_compute_bound_peak;
          Alcotest.test_case "cache hits" `Quick
            test_simulate_repeated_slice_hits_cache;
          Alcotest.test_case "L2 spill" `Quick test_simulate_capacity_spill_to_l2;
          Alcotest.test_case "memory bound" `Quick test_simulate_memory_bound;
          Alcotest.test_case "slowest thread" `Quick
            test_simulate_slowest_thread_dominates;
          Alcotest.test_case "chain efficiency" `Quick
            test_chain_efficiency_affects_compute;
        ] );
      ( "gemm-trace",
        [
          Alcotest.test_case "flops total" `Quick test_gemm_trace_flops_total;
          Alcotest.test_case "thread count" `Quick test_gemm_trace_thread_count;
          Alcotest.test_case "parallel beats serial" `Quick
            test_score_parallel_beats_serial;
          Alcotest.test_case "flat-B conflict" `Quick
            test_score_flat_b_conflict_penalty;
          Alcotest.test_case "within peak" `Quick test_score_respects_platform_peak;
          qt prop_more_threads_not_slower_modeled;
        ] );
    ]

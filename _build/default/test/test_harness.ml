(* Tests for the experiment harness and baselines: each figure's headline
   qualitative claim (who wins, where the crossovers are) must hold in the
   reproduction. *)

let checkb = Alcotest.(check bool)

(* ---- fig2: GEMM vs vendor ---- *)

let fig2_points = lazy (Fig2.compute ())

let test_fig2_matches_or_exceeds () =
  List.iter
    (fun (p : Fig2.point) ->
      checkb
        (Printf.sprintf "%s %s %dx%dx%d" p.Fig2.platform
           (Datatype.to_string p.Fig2.dtype)
           p.Fig2.m p.Fig2.k p.Fig2.n)
        true
        (p.Fig2.parlooper >= 0.99 *. p.Fig2.onednn))
    (Lazy.force fig2_points)

let test_fig2_bf16_conflict_gap () =
  (* somewhere in the SPR BF16 sweep the blocked layout must win clearly *)
  let spr_bf16 =
    List.filter
      (fun (p : Fig2.point) ->
        p.Fig2.platform = "SPR" && p.Fig2.dtype = Datatype.BF16)
      (Lazy.force fig2_points)
  in
  let best =
    List.fold_left
      (fun a (p : Fig2.point) -> Float.max a (p.Fig2.parlooper /. p.Fig2.onednn))
      0.0 spr_bf16
  in
  checkb "conflict-miss gap exists" true (best > 1.2)

let test_fig2_within_peaks () =
  List.iter
    (fun (p : Fig2.point) ->
      let platform = Option.get (Platform.by_name p.Fig2.platform) in
      let peak = Platform.peak_gflops platform p.Fig2.dtype in
      checkb "within peak" true (p.Fig2.parlooper <= peak *. 1.0001))
    (Lazy.force fig2_points)

(* ---- fig3: MLP efficiency ---- *)

let test_fig3_spr_llc_cap () =
  let pts = Fig3.compute () in
  let spr_max =
    List.filter (fun (p : Fig3.point) -> p.Fig3.platform = "SPR") pts
    |> List.fold_left (fun a (p : Fig3.point) -> Float.max a p.Fig3.efficiency) 0.0
  in
  (* paper: 37.4% *)
  checkb "SPR caps near 37%" true (spr_max > 0.30 && spr_max < 0.45);
  List.iter
    (fun name ->
      let m =
        List.filter (fun (p : Fig3.point) -> p.Fig3.platform = name) pts
        |> List.fold_left (fun a (p : Fig3.point) -> Float.max a p.Fig3.efficiency) 0.0
      in
      checkb (name ^ " reaches >85%") true (m > 0.85))
    [ "GVT3"; "Zen4" ]

let test_fig3_efficiency_increases () =
  let pts =
    List.filter (fun (p : Fig3.point) -> p.Fig3.platform = "SPR") (Fig3.compute ())
  in
  let sorted = List.sort (fun a b -> compare a.Fig3.mk b.Fig3.mk) pts in
  let rec monotone = function
    | (a : Fig3.point) :: (b :: _ as rest) ->
      a.Fig3.efficiency <= b.Fig3.efficiency +. 1e-9 && monotone rest
    | _ -> true
  in
  checkb "efficiency grows with weight size" true (monotone sorted)

(* ---- fig5: Mojo ---- *)

let test_fig5_geomean () =
  let pts = Fig5.compute () in
  let g =
    Modelkit.geomean
      (List.map (fun (p : Fig5.point) -> p.Fig5.parlooper /. p.Fig5.mojo) pts)
  in
  checkb "geomean near 1.35x" true (g > 1.15 && g < 1.6)

(* ---- fig8: block-spmm ---- *)

let fig8_points = lazy (Fig8.compute ())

let fig8_get name block sp =
  List.find
    (fun (q : Fig8.point) ->
      q.Fig8.platform = name && q.Fig8.block = block && q.Fig8.sparsity = sp)
    (Lazy.force fig8_points)

let test_fig8_spr_amx_chain () =
  (* 4x4 blocks cannot beat dense on SPR at moderate sparsity (12.5% of
     AMX peak), 32x32 can *)
  let p44 = fig8_get "SPR" 4 0.5 in
  checkb "4x4 below dense" true
    (p44.Fig8.effective_gflops < p44.Fig8.dense_gflops);
  let p32 = fig8_get "SPR" 32 0.5 in
  checkb "32x32 above dense" true
    (p32.Fig8.effective_gflops > 1.4 *. p32.Fig8.dense_gflops)

let test_fig8_gvt3_zen4_modest_sparsity () =
  (* paper: benefits even for sparsity > 10% for all block sizes *)
  List.iter
    (fun name ->
      List.iter
        (fun b ->
          let p = fig8_get name b 0.3 in
          checkb
            (Printf.sprintf "%s %dx%d helps at 30%%" name b b)
            true
            (p.Fig8.effective_gflops >= p.Fig8.dense_gflops))
        [ 32; 16; 8 ])
    [ "GVT3"; "Zen4" ]

let test_fig8_monotone_in_sparsity () =
  List.iter
    (fun name ->
      let pts =
        List.filter
          (fun (q : Fig8.point) -> q.Fig8.platform = name && q.Fig8.block = 16)
          (Lazy.force fig8_points)
        |> List.sort (fun a b -> compare a.Fig8.sparsity b.Fig8.sparsity)
      in
      let rec mono = function
        | (a : Fig8.point) :: (b :: _ as rest) ->
          a.Fig8.effective_gflops <= b.Fig8.effective_gflops +. 1e-6
          && mono rest
        | _ -> true
      in
      checkb (name ^ " monotone") true (mono pts))
    [ "SPR"; "GVT3"; "Zen4" ]

(* ---- fig9 / fig10 / fig11 / tables ---- *)

let test_fig9_ordering () =
  let pts = Fig9.compute () in
  let get l p =
    (List.find
       (fun (x : Fig9.point) -> x.Fig9.label = l && x.Fig9.platform = p)
       pts)
      .Fig9.sequences_per_s
  in
  let ours = get "PARLOOPER+TPP" "SPR" in
  checkb "beats static TPP" true (ours > get "TPP-static [12]" "SPR");
  checkb "beats IPEX by >2x" true (ours > 2.0 *. get "IPEX+oneDNN" "SPR");
  checkb "beats HF" true (ours > get "HuggingFace" "SPR");
  checkb "SPR fastest platform" true
    (ours > get "PARLOOPER+TPP" "GVT3" && ours > get "PARLOOPER+TPP" "Zen4")

let test_fig10_sparse_wins () =
  List.iter
    (fun (p : Fig10.point) ->
      checkb (p.Fig10.platform ^ " sparse beats dense") true
        (p.Fig10.sparse_items_per_s > p.Fig10.dense_items_per_s);
      checkb (p.Fig10.platform ^ " within roofline") true
        (p.Fig10.sparse_items_per_s <= p.Fig10.roofline_items_per_s *. 1.0001))
    (Fig10.compute ());
  let ours, ds = Fig10.deepsparse_comparison () in
  checkb "faster than DeepSparse" true (ours > ds)

let test_fig11_structure () =
  let pts = Fig11.compute () in
  let get model plat impl dtype =
    List.find
      (fun (x : Fig11.point) ->
        x.Fig11.model = model && x.Fig11.platform = plat
        && x.Fig11.impl = impl && x.Fig11.dtype = dtype)
      pts
  in
  let b = get "GPTJ-6B" "SPR" "PARLOOPER+TPP" Datatype.BF16 in
  let f = get "GPTJ-6B" "SPR" "PARLOOPER+TPP" Datatype.F32 in
  (* bf16 next-token ~2x faster (weights half the bytes, paper: 1.9x) *)
  let r = f.Fig11.next_token_ms /. b.Fig11.next_token_ms in
  checkb "bf16 next-token ~2x" true (r > 1.6 && r < 2.4);
  checkb "bf16 first-token >2x" true
    (f.Fig11.first_token_ms /. b.Fig11.first_token_ms > 2.0);
  let hf = get "GPTJ-6B" "SPR" "HuggingFace" Datatype.BF16 in
  checkb "faster than HF" true (b.Fig11.total_ms < hf.Fig11.total_ms);
  (* HF BF16 unusable on GVT3 (paper: timed out) *)
  checkb "no HF bf16 on GVT3" true
    (not
       (List.exists
          (fun (x : Fig11.point) ->
            x.Fig11.platform = "GVT3" && x.Fig11.impl = "HuggingFace"
            && x.Fig11.dtype = Datatype.BF16)
          pts))

let test_table1 () =
  let rows = Tables.table1 () in
  let get s = (List.find (fun (r : Tables.table1_row) -> r.Tables.system = s) rows).Tables.minutes in
  let m8 = get "8 nodes SPR (16 sockets)" in
  let m16 = get "16 nodes SPR (32 sockets)" in
  (* the 8-node row is the calibration anchor *)
  checkb "8-node anchored" true (Float.abs (m8 -. 85.91) < 0.5);
  (* the 16-node prediction must land near the submission (47.26) with
     sub-linear scaling from the allreduce *)
  checkb "16-node prediction" true (m16 > 43.0 && m16 < 56.0);
  checkb "scaling sub-linear" true (m16 > m8 /. 2.0)

let test_table2 () =
  let rows = Tables.table2 () in
  let get sys impl =
    (List.find
       (fun (r : Tables.table2_row) ->
         r.Tables.system = sys && r.Tables.implementation = impl)
       rows)
      .Tables.images_per_s
  in
  let ours = get "SPR" "PARLOOPER + TPP" in
  let ipex = get "SPR" "IPEX + oneDNN" in
  (* paper: within 4%; we accept within 25% *)
  checkb "SPR within 25% of IPEX" true
    (ours /. ipex > 0.75 && ours /. ipex < 1.35);
  checkb "SPR faster than GVT3" true (ours > get "GVT3" "PARLOOPER + TPP")

(* ---- baselines ---- *)

let test_tvm_tuning_cost () =
  Alcotest.(check (float 1.0))
    "1000 schedules = 30 min" 1800.0
    (Tvm.autotune_seconds ~n_schedules:1000)

let test_onednn_efficiency_sane () =
  List.iter
    (fun p ->
      let e = Onednn.dense_efficiency ~platform:p Datatype.F32 in
      checkb (p.Platform.name ^ " vendor eff in (0,1]") true
        (e > 0.0 && e <= 1.0))
    [ Platform.spr; Platform.zen4 ]

let test_anchors_documented () =
  checkb "mojo anchor count" true (List.length Anchors.mojo_gemms = 7);
  checkb "hf factor sane" true
    (Anchors.hf_eager_efficiency_factor > 0.0
    && Anchors.hf_eager_efficiency_factor < 1.0);
  checkb "squad fraction" true
    (Anchors.squad_real_token_fraction > 0.0
    && Anchors.squad_real_token_fraction < 1.0)

let () =
  Alcotest.run "harness"
    [
      ( "fig2",
        [
          Alcotest.test_case "matches/exceeds vendor" `Slow
            test_fig2_matches_or_exceeds;
          Alcotest.test_case "bf16 conflict gap" `Slow
            test_fig2_bf16_conflict_gap;
          Alcotest.test_case "within peaks" `Slow test_fig2_within_peaks;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "SPR LLC cap" `Quick test_fig3_spr_llc_cap;
          Alcotest.test_case "efficiency grows" `Quick
            test_fig3_efficiency_increases;
        ] );
      ("fig5", [ Alcotest.test_case "geomean" `Quick test_fig5_geomean ]);
      ( "fig8",
        [
          Alcotest.test_case "AMX chain restriction" `Slow
            test_fig8_spr_amx_chain;
          Alcotest.test_case "modest sparsity helps" `Slow
            test_fig8_gvt3_zen4_modest_sparsity;
          Alcotest.test_case "monotone in sparsity" `Slow
            test_fig8_monotone_in_sparsity;
        ] );
      ("fig9", [ Alcotest.test_case "ordering" `Slow test_fig9_ordering ]);
      ("fig10", [ Alcotest.test_case "sparse wins" `Slow test_fig10_sparse_wins ]);
      ("fig11", [ Alcotest.test_case "structure" `Slow test_fig11_structure ]);
      ( "tables",
        [
          Alcotest.test_case "table1" `Slow test_table1;
          Alcotest.test_case "table2" `Slow test_table2;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "tvm cost" `Quick test_tvm_tuning_cost;
          Alcotest.test_case "vendor efficiency" `Slow
            test_onednn_efficiency_sane;
          Alcotest.test_case "anchors" `Quick test_anchors_documented;
        ] );
    ]

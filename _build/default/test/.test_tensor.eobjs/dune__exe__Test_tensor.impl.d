test/test_tensor.ml: Alcotest Array Bcsc Bf16 Datatype Float List Prng QCheck QCheck_alcotest Tensor Vnni

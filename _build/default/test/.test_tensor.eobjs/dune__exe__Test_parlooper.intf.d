test/test_parlooper.mli:

test/test_perfmodel.ml: Alcotest Array Datatype Gemm Gemm_trace List Lru Perf_model Platform QCheck QCheck_alcotest

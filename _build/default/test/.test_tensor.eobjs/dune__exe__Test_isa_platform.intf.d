test/test_isa_platform.mli:

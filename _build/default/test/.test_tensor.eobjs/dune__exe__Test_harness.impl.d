test/test_harness.ml: Alcotest Anchors Datatype Fig10 Fig11 Fig2 Fig3 Fig5 Fig8 Fig9 Float Lazy List Modelkit Onednn Option Platform Printf Tables Tvm

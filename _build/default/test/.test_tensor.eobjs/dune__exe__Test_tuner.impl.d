test/test_tuner.ml: Alcotest Array Autotune Factorize Gemm Gemm_trace List Loop_spec Perf_model Platform QCheck QCheck_alcotest Spec_gen String Threaded_loop

test/test_tpp.ml: Alcotest Array Bcsc Blocks Brgemm Datatype Dispatch Equation Float Fun List Prng QCheck QCheck_alcotest Reference Spmm Tensor Tpp_binary Tpp_unary Vnni

test/test_parlooper.ml: Alcotest Array Atomic Fun List Loop_spec Mutex QCheck QCheck_alcotest Spec_parser Team Threaded_loop

test/test_isa_platform.ml: Alcotest Array Datatype Isa List Platform

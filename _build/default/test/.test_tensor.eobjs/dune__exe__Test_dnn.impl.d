test/test_dnn.ml: Alcotest Array Attention Bert Datatype Dlrm Fc Float List Llm Option Prng Reference Resnet Sparse_bert Tensor

test/test_kernels.ml: Alcotest Bcsc Conv Datatype Gemm List Mlp Printf Prng QCheck QCheck_alcotest Reference Spmm_kernel Tensor

test/test_tpp.mli:

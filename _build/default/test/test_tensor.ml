(* Unit + property tests for the tensor substrate: Prng, Bf16, Datatype,
   Tensor, Vnni, Bcsc. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    checkb "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  checkb "different seeds differ" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_float_range () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.float r in
    checkb "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_int_range () =
  let r = Prng.create 9 in
  for _ = 1 to 1000 do
    let x = Prng.int r 13 in
    checkb "in [0,13)" true (x >= 0 && x < 13)
  done

let test_prng_split_independent () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  checkb "split stream differs" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_gaussian_moments () =
  let r = Prng.create 3 in
  let n = 20000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian r in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  checkb "mean ~ 0" true (Float.abs mean < 0.05);
  checkb "var ~ 1" true (Float.abs (var -. 1.0) < 0.05)

(* ---- Bf16 ---- *)

let test_bf16_exact_small_ints () =
  List.iter
    (fun x -> checkf "small ints exact" x (Bf16.round x))
    [ 0.0; 1.0; -1.0; 2.0; 128.0; 0.5; -0.25 ]

let test_bf16_truncates () =
  (* 1 + 2^-9 is not representable; rounds to 1.0 *)
  checkf "rounds to nearest" 1.0 (Bf16.round (1.0 +. (1.0 /. 512.0) /. 2.0))

let test_bf16_nan_inf () =
  checkb "nan preserved" true (Float.is_nan (Bf16.round Float.nan));
  checkf "inf preserved" Float.infinity (Bf16.round Float.infinity);
  checkf "-inf preserved" Float.neg_infinity (Bf16.round Float.neg_infinity)

let test_bf16_bits_roundtrip () =
  List.iter
    (fun x ->
      let b = Bf16.bits_of_float x in
      checkf "bits roundtrip" (Bf16.round x) (Bf16.float_of_bits b))
    [ 3.14159; -2.71828; 1e-3; 65504.0; 1e20; -1e-20 ]

let prop_bf16_idempotent =
  QCheck.Test.make ~name:"bf16 rounding is idempotent" ~count:1000
    (QCheck.float_range (-1e6) 1e6)
    (fun x -> Bf16.round (Bf16.round x) = Bf16.round x)

let prop_bf16_relative_error =
  QCheck.Test.make ~name:"bf16 relative error <= 2^-8" ~count:1000
    (QCheck.float_range 1e-10 1e10)
    (fun x -> Float.abs (Bf16.round x -. x) <= Bf16.epsilon *. Float.abs x)

let prop_bf16_monotone =
  QCheck.Test.make ~name:"bf16 rounding is monotone" ~count:1000
    QCheck.(pair (float_range (-1e5) 1e5) (float_range (-1e5) 1e5))
    (fun (a, b) ->
      let a, b = if a <= b then (a, b) else (b, a) in
      Bf16.round a <= Bf16.round b)

(* ---- Tensor ---- *)

let test_tensor_create_zeroed () =
  let t = Tensor.create Datatype.F32 [| 3; 4 |] in
  checki "numel" 12 (Tensor.numel t);
  checkb "all zero" true (List.for_all (fun x -> x = 0.0) (Tensor.to_list t))

let test_tensor_get_set () =
  let t = Tensor.create Datatype.F32 [| 2; 3; 4 |] in
  Tensor.set t [| 1; 2; 3 |] 5.0;
  checkf "set/get" 5.0 (Tensor.get t [| 1; 2; 3 |]);
  checkf "flat offset" 5.0 (Tensor.get_flat t ((1 * 12) + (2 * 4) + 3))

let test_tensor_init_rowmajor () =
  let t =
    Tensor.init Datatype.F32 [| 2; 3 |] (fun i ->
        float_of_int ((i.(0) * 10) + i.(1)))
  in
  check
    (Alcotest.list (Alcotest.float 0.0))
    "row major order"
    [ 0.; 1.; 2.; 10.; 11.; 12. ]
    (Tensor.to_list t)

let test_tensor_bf16_store_quantizes () =
  let t = Tensor.create Datatype.BF16 [| 1 |] in
  Tensor.set_flat t 0 (1.0 +. (1.0 /. 4096.0));
  checkf "bf16 store rounds" 1.0 (Tensor.get_flat t 0)

let test_tensor_reshape () =
  let t = Tensor.init Datatype.F32 [| 2; 6 |] (fun i -> float_of_int i.(1)) in
  let r = Tensor.reshape t [| 3; 4 |] in
  checkf "shares data" (Tensor.get t [| 0; 5 |]) (Tensor.get r [| 1; 1 |])

let test_tensor_cast () =
  let t = Tensor.create Datatype.F32 [| 2 |] in
  Tensor.set_flat t 0 (1.0 +. (1.0 /. 4096.0));
  let c = Tensor.cast t Datatype.BF16 in
  checkf "cast rounds" 1.0 (Tensor.get_flat c 0);
  checkf "original unchanged" (1.0 +. (1.0 /. 4096.0)) (Tensor.get_flat t 0)

let test_tensor_view () =
  let t =
    Tensor.init Datatype.F32 [| 4; 5 |] (fun i ->
        float_of_int ((i.(0) * 5) + i.(1)))
  in
  let v = Tensor.view t [| 1; 2 |] ~rows:2 ~cols:3 in
  checkf "view (0,0)" 7.0 (Tensor.View.get v 0 0);
  checkf "view (1,2)" 14.0 (Tensor.View.get v 1 2);
  Tensor.View.set v 1 2 99.0;
  checkf "view writes through" 99.0 (Tensor.get t [| 2; 4 |])

let test_view_sub () =
  let t =
    Tensor.init Datatype.F32 [| 4; 4 |] (fun i ->
        float_of_int ((i.(0) * 4) + i.(1)))
  in
  let v = Tensor.view2d t in
  let s = Tensor.View.sub v ~row:1 ~col:1 ~rows:2 ~cols:2 in
  checkf "sub view" 5.0 (Tensor.View.get s 0 0);
  checkf "sub view corner" 10.0 (Tensor.View.get s 1 1)

let test_tensor_copy_independent () =
  let t = Tensor.create Datatype.F32 [| 2 |] in
  let c = Tensor.copy t in
  Tensor.set_flat c 0 1.0;
  checkf "copy is deep" 0.0 (Tensor.get_flat t 0)

let test_max_abs_diff () =
  let a = Tensor.init Datatype.F32 [| 3 |] (fun i -> float_of_int i.(0)) in
  let b = Tensor.init Datatype.F32 [| 3 |] (fun i -> float_of_int i.(0) +. 0.5) in
  checkf "max abs diff" 0.5 (Tensor.max_abs_diff a b)

(* ---- Vnni ---- *)

let prop_vnni_roundtrip =
  QCheck.Test.make ~name:"vnni pack/unpack roundtrip (bf16)" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (kh, n) ->
      let k = 2 * kh in
      let rng = Prng.create (kh + (n * 100)) in
      let b = Tensor.create Datatype.BF16 [| k; n |] in
      Tensor.fill_random b rng ~scale:1.0;
      let p = Vnni.pack b in
      let u = Vnni.unpack p in
      Tensor.max_abs_diff b u = 0.0)

let test_vnni_identity_f32 () =
  let b = Tensor.init Datatype.F32 [| 3; 2 |] (fun i -> float_of_int i.(0)) in
  let p = Vnni.pack b in
  checki "f32 vnni factor 1" 3 (Tensor.dims p).(0);
  checkf "values preserved" 2.0 (Vnni.get p ~v:1 ~k:2 ~n:0)

let test_vnni_layout () =
  let b =
    Tensor.init Datatype.BF16 [| 4; 3 |] (fun i ->
        float_of_int ((i.(0) * 3) + i.(1)))
  in
  let p = Vnni.pack b in
  (* element (k=1, n=2) should be at [0][2][1] *)
  checkf "packed position" 5.0 (Tensor.get p [| 0; 2; 1 |]);
  checkf "get helper" 5.0 (Vnni.get p ~v:2 ~k:1 ~n:2)

(* ---- Bcsc ---- *)

let test_bcsc_roundtrip_dense () =
  let rng = Prng.create 21 in
  let a = Tensor.create Datatype.F32 [| 16; 24 |] in
  Tensor.fill_random a rng ~scale:1.0;
  let s = Bcsc.of_dense ~bm:4 ~bk:8 a in
  checkb "dense roundtrip" true (Tensor.max_abs_diff (Bcsc.to_dense s) a = 0.0)

let test_bcsc_drops_zero_blocks () =
  let a = Tensor.create Datatype.F32 [| 8; 8 |] in
  (* only block (1,1) nonzero *)
  Tensor.set a [| 5; 6 |] 1.0;
  let s = Bcsc.of_dense ~bm:4 ~bk:4 a in
  checki "one stored block" 1 (Bcsc.nnz_blocks s);
  checkf "sparsity 3/4" 0.75 (Bcsc.sparsity s);
  checkb "roundtrip" true (Tensor.max_abs_diff (Bcsc.to_dense s) a = 0.0)

let test_bcsc_row_blocks_sorted () =
  let rng = Prng.create 33 in
  let s =
    Bcsc.random ~rng ~dtype:Datatype.F32 ~rows:32 ~cols:32 ~bm:8 ~bk:8
      ~sparsity:0.3
  in
  for ib = 0 to 3 do
    let blocks = Bcsc.row_blocks s ib in
    let cols = Array.to_list (Array.map fst blocks) in
    checkb "sorted by block col" true (List.sort compare cols = cols)
  done

let prop_bcsc_random_roundtrip =
  QCheck.Test.make ~name:"bcsc random roundtrip via of_dense" ~count:30
    QCheck.(triple (int_range 1 4) (int_range 1 4) (int_range 0 10))
    (fun (mb, kb, sp10) ->
      let bm = 4 and bk = 8 in
      let rows = mb * bm and cols = kb * bk in
      let rng = Prng.create (mb + (kb * 17) + (sp10 * 101)) in
      let s =
        Bcsc.random ~rng ~dtype:Datatype.F32 ~rows ~cols ~bm ~bk
          ~sparsity:(float_of_int sp10 /. 10.0)
      in
      let d = Bcsc.to_dense s in
      let s2 = Bcsc.of_dense ~bm ~bk d in
      Tensor.max_abs_diff (Bcsc.to_dense s2) d = 0.0)

let test_prune_dense_hits_target () =
  let rng = Prng.create 5 in
  let a = Tensor.create Datatype.F32 [| 64; 64 |] in
  Tensor.fill_random a rng ~scale:1.0;
  let s = Bcsc.prune_dense ~bm:8 ~bk:8 ~sparsity:0.75 a in
  checkf "sparsity on target" 0.75 (Bcsc.sparsity s)

let test_prune_keeps_largest () =
  let a = Tensor.create Datatype.F32 [| 8; 8 |] in
  (* block (0,0) small values, block (1,1) large *)
  Tensor.set a [| 0; 0 |] 0.01;
  Tensor.set a [| 5; 5 |] 10.0;
  let s = Bcsc.prune_dense ~bm:4 ~bk:4 ~sparsity:0.75 a in
  let d = Bcsc.to_dense s in
  checkf "large block kept" 10.0 (Tensor.get d [| 5; 5 |]);
  checkf "small block pruned" 0.0 (Tensor.get d [| 0; 0 |])

(* ---- Datatype ---- *)

let test_datatype_basics () =
  checki "bf16 bytes" 2 (Datatype.bytes Datatype.BF16);
  checki "f32 bytes" 4 (Datatype.bytes Datatype.F32);
  checki "bf16 vnni" 2 (Datatype.vnni_factor Datatype.BF16);
  checki "f32 vnni" 1 (Datatype.vnni_factor Datatype.F32);
  checkf "f32 quantize id" 1.234 (Datatype.quantize Datatype.F32 1.234)

let qt t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "tensor"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        ] );
      ( "bf16",
        [
          Alcotest.test_case "exact small values" `Quick test_bf16_exact_small_ints;
          Alcotest.test_case "round to nearest" `Quick test_bf16_truncates;
          Alcotest.test_case "nan/inf" `Quick test_bf16_nan_inf;
          Alcotest.test_case "bits roundtrip" `Quick test_bf16_bits_roundtrip;
          qt prop_bf16_idempotent;
          qt prop_bf16_relative_error;
          qt prop_bf16_monotone;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "create zeroed" `Quick test_tensor_create_zeroed;
          Alcotest.test_case "get/set" `Quick test_tensor_get_set;
          Alcotest.test_case "row-major init" `Quick test_tensor_init_rowmajor;
          Alcotest.test_case "bf16 stores quantize" `Quick
            test_tensor_bf16_store_quantizes;
          Alcotest.test_case "reshape" `Quick test_tensor_reshape;
          Alcotest.test_case "cast" `Quick test_tensor_cast;
          Alcotest.test_case "views" `Quick test_tensor_view;
          Alcotest.test_case "view sub" `Quick test_view_sub;
          Alcotest.test_case "copy independence" `Quick
            test_tensor_copy_independent;
          Alcotest.test_case "max_abs_diff" `Quick test_max_abs_diff;
        ] );
      ( "vnni",
        [
          qt prop_vnni_roundtrip;
          Alcotest.test_case "f32 identity" `Quick test_vnni_identity_f32;
          Alcotest.test_case "bf16 layout" `Quick test_vnni_layout;
        ] );
      ( "bcsc",
        [
          Alcotest.test_case "dense roundtrip" `Quick test_bcsc_roundtrip_dense;
          Alcotest.test_case "zero blocks dropped" `Quick
            test_bcsc_drops_zero_blocks;
          Alcotest.test_case "row blocks sorted" `Quick
            test_bcsc_row_blocks_sorted;
          qt prop_bcsc_random_roundtrip;
          Alcotest.test_case "prune hits target" `Quick
            test_prune_dense_hits_target;
          Alcotest.test_case "prune keeps largest" `Quick
            test_prune_keeps_largest;
        ] );
      ( "datatype",
        [ Alcotest.test_case "basics" `Quick test_datatype_basics ] );
    ]

examples/autotune_gemm.mli:

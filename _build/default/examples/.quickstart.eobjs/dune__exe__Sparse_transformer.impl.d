examples/sparse_transformer.ml: Bcsc Bert Datatype Printf Prng Sparse_bert Spmm_kernel Tensor Unix

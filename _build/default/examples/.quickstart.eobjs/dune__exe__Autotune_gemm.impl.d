examples/autotune_gemm.ml: Autotune Gemm List Platform Printf

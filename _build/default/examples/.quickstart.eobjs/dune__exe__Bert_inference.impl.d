examples/bert_inference.ml: Array Bert Datatype Printf Prng Tensor Unix

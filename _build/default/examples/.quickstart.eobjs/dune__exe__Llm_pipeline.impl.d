examples/llm_pipeline.ml: Array Datatype List Llm Option Printf Prng Tensor Unix

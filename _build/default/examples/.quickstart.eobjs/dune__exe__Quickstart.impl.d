examples/quickstart.ml: Datatype Gemm List Printf Prng Reference Tensor Threaded_loop Unix

examples/bert_inference.mli:

examples/quickstart.mli:

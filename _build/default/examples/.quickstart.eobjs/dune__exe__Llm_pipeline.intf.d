examples/llm_pipeline.mli:

examples/resnet_convs.ml: Datatype List Printf Prng Resnet Tensor Unix

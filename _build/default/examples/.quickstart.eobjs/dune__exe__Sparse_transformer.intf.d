examples/sparse_transformer.mli:

examples/resnet_convs.mli:

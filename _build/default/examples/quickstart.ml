(* Quickstart: the paper's Listing 1 in ~20 lines of user code.

   Declare the three logical GEMM loops, pick an instantiation with a
   single runtime knob (the loop_spec_string), and express the kernel
   body with TPPs and the logical indices. The same code runs any
   instantiation — serial, blocked, collapsed-parallel or an explicit
   thread grid — and any precision.

     dune exec examples/quickstart.exe
*)

let () =
  let m, n, k = (256, 256, 256) in
  let rng = Prng.create 42 in
  let a = Tensor.create Datatype.F32 [| m; k |] in
  let b = Tensor.create Datatype.F32 [| k; n |] in
  Tensor.fill_random a rng ~scale:1.0;
  Tensor.fill_random b rng ~scale:1.0;

  (* blocked GEMM: logical loops a (K blocks), b (M blocks), c (N blocks) *)
  let cfg =
    (* the blocking lists supply the extra loop levels that multi-level
       spec strings (e.g. "bcaBCb") consume *)
    Gemm.make_config ~bm:32 ~bn:32 ~bk:32 ~k_step:2 ~mk_blocks:[ 4; 2 ]
      ~nk_blocks:[ 4 ] ~m ~n ~k ()
  in

  (* the SAME user code, three very different loop instantiations *)
  List.iter
    (fun spec_string ->
      let gemm = Gemm.create cfg spec_string in
      let t0 = Unix.gettimeofday () in
      let c = Gemm.run_logical ~nthreads:4 gemm ~a ~b in
      let dt = Unix.gettimeofday () -. t0 in
      let expect = Reference.matmul a b in
      Printf.printf "%-28s %8.2f GFLOPS  correct=%b\n" spec_string
        (Gemm.flops cfg /. dt /. 1e9)
        (Tensor.approx_equal ~tol:1e-4 c expect))
    [
      "BCa" (* M,N collapsed parallel, K inner *);
      "bcaBCb" (* two-level blocked, inner pair parallel *);
      "BCa @ schedule(dynamic,1)" (* OpenMP-style dynamic scheduling *);
    ];

  (* the JIT cache makes re-creating a known instantiation free *)
  let hits, misses = Threaded_loop.cache_stats () in
  Printf.printf "loop-nest JIT cache: %d hits, %d misses\n" hits misses

(* ResNet-50 convolutions (§IV-C / Fig. 7): run a residual CNN built from
   the PARLOOPER direct-convolution kernel with fused batchnorm + ReLU,
   verify it against a reference, and print the paper's 20-shape table
   with modeled per-platform performance.

     dune exec examples/resnet_convs.exe
*)

let () =
  let rng = Prng.create 3 in
  (* executable residual network at reduced scale *)
  let net = Resnet.create ~rng ~channels:16 ~blocks:2 () in
  let images = Tensor.create Datatype.F32 [| 2; 3; 16; 16 |] in
  Tensor.fill_random images rng ~scale:1.0;
  let t0 = Unix.gettimeofday () in
  let logits = Resnet.forward ~nthreads:2 net images in
  let dt = Unix.gettimeofday () -. t0 in
  let reference = Resnet.reference_forward net images in
  Printf.printf
    "residual CNN forward (2 images): %.1f ms, matches reference: %b\n"
    (dt *. 1e3)
    (Tensor.approx_equal ~tol:1e-3 logits reference);

  (* the ResNet-50 shape table that drives Fig. 7 *)
  Printf.printf "\nResNet-50 unique convolution shapes (224x224 input):\n";
  Printf.printf "%-4s %-26s %8s %10s\n" "id" "CxK RxS /stride @HxW" "x" "GFLOPs(N=1)";
  List.iter
    (fun (sh : Resnet.conv_shape) ->
      Printf.printf "%-4d %4dx%-5d %dx%d /%d @%3dx%-3d %6d %10.2f\n"
        sh.Resnet.layer_id sh.Resnet.c sh.Resnet.k sh.Resnet.r sh.Resnet.s
        sh.Resnet.stride sh.Resnet.h sh.Resnet.w sh.Resnet.repeats
        (Resnet.conv_shape_flops sh ~n:1 /. 1e9))
    Resnet.conv_shapes;
  Printf.printf "total: %.1f GFLOPs per image\n"
    (Resnet.total_conv_flops ~n:1 /. 1e9)

(* Block-sparse transformer inference (§IV-B / Fig. 10): magnitude-prune a
   dense BERT's FC weights block-wise to 80% sparsity, replace the dense
   contractions with Block-SpMM PARLOOPER kernels, and verify the sparse
   pipeline is exact w.r.t. the dense kernels on the same pruned weights.
   Then measure the real kernel-level speedup of SpMM vs dense GEMM on
   this host.

     dune exec examples/sparse_transformer.exe
*)

let () =
  let rng = Prng.create 11 in
  let bert = Bert.create ~rng ~block:16 Bert.tiny_config in
  let sparse = Sparse_bert.sparsify ~bm:8 ~bk:8 ~sparsity:0.8 bert in
  Printf.printf "pruned BERT-tiny to %.0f%% block sparsity (8x8 blocks)\n"
    (100.0 *. Sparse_bert.achieved_sparsity sparse);

  let x = Tensor.create Datatype.F32 [| 32; Bert.tiny_config.Bert.hidden |] in
  Tensor.fill_random x rng ~scale:1.0;
  let ys = Sparse_bert.forward sparse x in
  let yd = Sparse_bert.dense_equivalent_forward sparse x in
  Printf.printf "sparse forward == dense kernels on pruned weights: %b\n"
    (Tensor.approx_equal ~tol:1e-3 ys yd);
  Printf.printf "effective layer FLOPs at seq 64: %.1f%% of dense\n"
    (100.0
    *. Sparse_bert.layer_effective_flops sparse ~seq:64
    /. Sparse_bert.layer_effective_flops
         (Sparse_bert.sparsify ~bm:8 ~bk:8 ~sparsity:0.0 bert)
         ~seq:64);

  (* real kernel-level speedup on this host *)
  let dim = 512 in
  let time_spmm sparsity =
    let a =
      Bcsc.random ~rng ~dtype:Datatype.F32 ~rows:dim ~cols:dim ~bm:16 ~bk:16
        ~sparsity
    in
    let b = Tensor.create Datatype.F32 [| dim; dim |] in
    Tensor.fill_random b rng ~scale:1.0;
    let cfg =
      Spmm_kernel.make_config ~bn:32 ~m:dim ~n:dim ~k:dim ~bm:16 ~bk:16 ()
    in
    let sp = Spmm_kernel.create cfg "AB" in
    let bp = Spmm_kernel.pack_b cfg b in
    let c = Tensor.create Datatype.F32 [| dim; dim |] in
    Spmm_kernel.run sp ~a ~b:bp ~c;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 3 do
      Spmm_kernel.run sp ~a ~b:bp ~c
    done;
    (Unix.gettimeofday () -. t0) /. 3.0
  in
  let dense_t = time_spmm 0.0 and sparse_t = time_spmm 0.8 in
  Printf.printf
    "real Block-SpMM 512^3 on this host: dense %.1f ms, 80%% sparse %.1f ms \
     -> %.2fx\n"
    (dense_t *. 1e3) (sparse_t *. 1e3) (dense_t /. sparse_t)

(* End-to-end BERT encoder inference (§IV-A) at executable scale: the four
   fused PARLOOPER/TPP modules (embeddings, self-attention,
   output/self-output, intermediate) running a full forward pass, verified
   against a naive reference.

     dune exec examples/bert_inference.exe
*)

let () =
  let rng = Prng.create 7 in
  let cfg = Bert.tiny_config in
  let bert = Bert.create ~rng ~block:16 cfg in
  let seq = 32 in
  let ids = Array.init seq (fun i -> (i * 13) mod cfg.Bert.vocab) in

  let t0 = Unix.gettimeofday () in
  let hidden = Bert.forward ~nthreads:2 ~rng bert ids in
  let dt = Unix.gettimeofday () -. t0 in

  Printf.printf "BERT (%d layers, hidden %d, %d heads) forward on %d tokens\n"
    cfg.Bert.layers cfg.Bert.hidden cfg.Bert.heads seq;
  Printf.printf "  %.1f ms, %.2f MFLOPs of contractions\n" (dt *. 1e3)
    (Bert.forward_flops cfg ~seq /. 1e6);

  (* verify one encoder layer against the naive reference *)
  let x = Tensor.create Datatype.F32 [| seq; cfg.Bert.hidden |] in
  Tensor.fill_random x rng ~scale:1.0;
  let layer = bert.Bert.encoder.(0) in
  let fused = Bert.encoder_layer bert layer x in
  let reference = Bert.reference_encoder_layer bert layer x in
  Printf.printf "  fused layer matches reference: %b (max diff %.2e)\n"
    (Tensor.approx_equal ~tol:1e-3 fused reference)
    (Tensor.max_abs_diff fused reference);

  (* paper-scale shapes drive the Fig. 9 throughput model *)
  Printf.printf
    "BERT-Large training step at seq 384: %.1f GFLOPs (x3 for fwd+bwd)\n"
    (Bert.train_step_flops Bert.large_config ~seq:384 ~batch:1 /. 1e9)

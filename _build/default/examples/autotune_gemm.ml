(* Auto-tuning a GEMM (§II-D) with zero user-code changes: enumerate
   loop_spec_string candidates under the paper's constraints, score them
   with the §II-E performance model for a target platform you do NOT have
   (cross-architecture tuning), then actually measure the best few on this
   host.

     dune exec examples/autotune_gemm.exe
*)

let () =
  let base = Gemm.make_config ~bm:32 ~bn:32 ~bk:32 ~m:512 ~n:512 ~k:512 () in

  (* 1. modeled tuning for Sapphire Rapids *)
  let report =
    Autotune.tune_gemm ~max_candidates:300
      (Autotune.Modeled { platform = Platform.spr; nthreads = 112 })
      base
  in
  Printf.printf
    "modeled %d instantiations for SPR in %.2fs; top 5 for that machine:\n"
    report.Autotune.evaluated report.Autotune.tuning_seconds;
  List.iteri
    (fun i e ->
      if i < 5 then
        Printf.printf "  #%d %-14s %8.0f GFLOPS (modeled)\n" (i + 1)
          e.Autotune.spec e.Autotune.gflops)
    report.Autotune.ranked;

  (* 2. measured tuning on this host (serial; still zero code changes) *)
  let host_report =
    Autotune.tune_gemm ~max_candidates:12
      (Autotune.Measured { nthreads = 1; repeats = 1 })
      base
  in
  Printf.printf "\nmeasured %d instantiations on this host in %.1fs:\n"
    host_report.Autotune.evaluated host_report.Autotune.tuning_seconds;
  List.iteri
    (fun i e ->
      if i < 3 then
        Printf.printf "  #%d %-14s %8.2f GFLOPS (measured)\n" (i + 1)
          e.Autotune.spec e.Autotune.gflops)
    host_report.Autotune.ranked

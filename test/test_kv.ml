(* Tests for lib/kv and its integration: free-list exhaustion denies
   instead of growing, refcounts can never go negative, copy-on-write
   isolates writers from shared blocks, truncation frees exactly the
   tail blocks, a prefix-trie hit produces bit-identical attention
   output to a cold prefill, paged storage is bit-identical to
   contiguous through the whole scheduler, speculative decoding is
   token-identical to greedy, and the chaos harnesses hold the arena
   conservation invariant under paged configs. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let clean () =
  Telemetry.Registry.reset ();
  Telemetry.Registry.disable ()

let make_llm () =
  let rng = Prng.create 7 in
  Llm.create ~rng ~block:8 Llm.tiny

(* tol 0.0 = bit-identical for non-NaN values *)
let bits_equal = Tensor.approx_equal ~tol:0.0

let frozen_now () = 0.0

let mk_mgr ?(block_size = 4) ?(num_blocks = 8) ?(layers = 1) ?(hidden = 4) ()
    =
  Kv.Block_manager.create ~block_size ~num_blocks ~layers ~hidden ()

(* ---- block manager: allocation, refcounts, COW ---- *)

let test_exhaustion_denies () =
  clean ();
  let m = mk_mgr ~num_blocks:3 () in
  let got = ref [] in
  for _ = 1 to 3 do
    match Kv.Block_manager.acquire m with
    | `Block b -> got := b :: !got
    | `Denied -> Alcotest.fail "denied with free blocks available"
  done;
  checki "arena drained" 0 (Kv.Block_manager.free_blocks m);
  (match Kv.Block_manager.acquire m with
  | `Block _ -> Alcotest.fail "acquired from an empty free list"
  | `Denied -> ());
  (* distinct physical blocks *)
  checki "3 distinct blocks" 3
    (List.length (List.sort_uniq compare !got));
  List.iter (Kv.Block_manager.release m) !got;
  checki "all returned" 3 (Kv.Block_manager.free_blocks m)

let test_refcount_never_negative () =
  clean ();
  let m = mk_mgr () in
  let b =
    match Kv.Block_manager.acquire m with
    | `Block b -> b
    | `Denied -> Alcotest.fail "empty arena"
  in
  checki "fresh block refcount" 1 (Kv.Block_manager.refcount m b);
  Kv.Block_manager.retain m b;
  checki "retained" 2 (Kv.Block_manager.refcount m b);
  Kv.Block_manager.release m b;
  Kv.Block_manager.release m b;
  checki "freed at zero" 0 (Kv.Block_manager.refcount m b);
  Alcotest.check_raises "underflow rejected"
    (Invalid_argument "Block_manager.release: refcount underflow") (fun () ->
      Kv.Block_manager.release m b);
  Alcotest.check_raises "retain on free block rejected"
    (Invalid_argument "Block_manager.retain: block is free") (fun () ->
      Kv.Block_manager.retain m b)

let test_cow_isolates_writers () =
  clean ();
  let hidden = 4 in
  let m = mk_mgr ~hidden () in
  let s1 = Kv.Seq.create m in
  (* two committed rows in the first block of s1 *)
  let mk_rows base rows =
    Tensor.init Datatype.F32 [| rows; hidden |] (fun i ->
        base +. float_of_int ((i.(0) * hidden) + i.(1)))
  in
  Kv.Seq.ensure s1 ~len:0 ~extra:2;
  Kv.Seq.append s1 ~layer:0 ~at:0 ~rows:2 ~k_src:(mk_rows 10.0 2)
    ~v_src:(mk_rows 20.0 2);
  let b0 = (Kv.Seq.blocks s1).(0) in
  (* s2 shares that block (a prefix hit), then appends at row 2: the
     mid-block write must copy, not scribble over the shared rows *)
  let s2 = Kv.Seq.create m in
  Kv.Seq.attach s2 ~blocks:[| b0 |];
  checki "shared refcount" 2 (Kv.Block_manager.refcount m b0);
  Kv.Seq.ensure s2 ~len:2 ~extra:1;
  checkb "COW swapped the shared block" true ((Kv.Seq.blocks s2).(0) <> b0);
  checki "source back to one owner" 1 (Kv.Block_manager.refcount m b0);
  Kv.Seq.append s2 ~layer:0 ~at:2 ~rows:1 ~k_src:(mk_rows 90.0 1)
    ~v_src:(mk_rows 95.0 1);
  (* the copy carried the shared rows; the source never saw the write *)
  let k1 = Tensor.create Datatype.F32 [| 4; hidden |] in
  let v1 = Tensor.create Datatype.F32 [| 4; hidden |] in
  Kv.Seq.gather s2 ~layer:0 ~rows:3 ~k_dst:k1 ~v_dst:v1;
  for j = 0 to hidden - 1 do
    Alcotest.(check (float 0.0))
      "copied row 0" (10.0 +. float_of_int j)
      (Tensor.get k1 [| 0; j |]);
    Alcotest.(check (float 0.0))
      "appended row 2" (90.0 +. float_of_int j)
      (Tensor.get k1 [| 2; j |])
  done;
  let k0 = Tensor.create Datatype.F32 [| 2; hidden |] in
  let v0 = Tensor.create Datatype.F32 [| 2; hidden |] in
  Kv.Seq.gather s1 ~layer:0 ~rows:2 ~k_dst:k0 ~v_dst:v0;
  for j = 0 to hidden - 1 do
    Alcotest.(check (float 0.0))
      "source row 1 untouched"
      (10.0 +. float_of_int (hidden + j))
      (Tensor.get k0 [| 1; j |])
  done;
  Kv.Seq.release_all s1;
  Kv.Seq.release_all s2;
  checki "no leak after release" 8 (Kv.Block_manager.free_blocks m)

let test_seq_out_of_blocks () =
  clean ();
  let m = mk_mgr ~num_blocks:2 () in
  let s = Kv.Seq.create m in
  Kv.Seq.ensure s ~len:0 ~extra:8;  (* exactly the whole arena *)
  checkb "mid-flight exhaustion raises" true
    (try
       Kv.Seq.ensure s ~len:8 ~extra:1;
       false
     with Kv.Seq.Out_of_blocks -> true);
  (* the failed ensure must not have leaked a partial extension *)
  checki "table unchanged" 2 (Kv.Seq.block_count s);
  Kv.Seq.release_all s;
  checki "arena whole" 2 (Kv.Block_manager.free_blocks m)

let test_truncate_frees_exact_tail () =
  clean ();
  let m = mk_mgr ~num_blocks:8 () in
  let s = Kv.Seq.create m in
  Kv.Seq.ensure s ~len:0 ~extra:10;  (* 3 blocks of 4 *)
  checki "blocks for 10 rows" 3 (Kv.Seq.block_count s);
  checki "free after grow" 5 (Kv.Block_manager.free_blocks m);
  Kv.Seq.truncate s ~len:5;  (* rows 0..4 still span 2 blocks *)
  checki "tail block freed" 2 (Kv.Seq.block_count s);
  checki "exactly one returned" 6 (Kv.Block_manager.free_blocks m);
  Kv.Seq.truncate s ~len:4;  (* row 3 is the last row of block 0 *)
  checki "second block freed" 1 (Kv.Seq.block_count s);
  Kv.Seq.truncate s ~len:4;  (* idempotent at a block boundary *)
  checki "truncate idempotent" 1 (Kv.Seq.block_count s);
  Kv.Seq.truncate s ~len:0;
  checki "empty table" 0 (Kv.Seq.block_count s);
  checki "everything back" 8 (Kv.Block_manager.free_blocks m)

(* ---- retry rewind landing inside a pinned shared-prefix block ----
   a truncate to a row inside a trie-pinned block must not free or
   scribble the shared block: the re-extension COWs it, the trie keeps
   serving the prefix, refcounts never underflow, and the replayed
   decode is bit-identical to a cold contiguous run *)

let test_truncate_cow_inside_pinned_prefix () =
  clean ();
  Telemetry.Registry.enable ();
  let llm = make_llm () in
  let vocab = (Llm.config llm).Llm.vocab in
  let shared = Array.init 8 (fun i -> (3 + (7 * i)) mod vocab) in
  let prompt =
    Array.append shared (Array.init 2 (fun i -> (29 + (13 * i)) mod vocab))
  in
  let pool =
    Serve.Kv_pool.create
      ~policy:
        (Serve.Kv_pool.Paged
           { block_size = 4; num_blocks = 32; prefix = true })
      llm
  in
  let m =
    match Serve.Kv_pool.manager pool with
    | Some m -> m
    | None -> Alcotest.fail "paged pool has a manager"
  in
  let trie =
    match Serve.Kv_pool.prefix_cache pool with
    | Some p -> p
    | None -> Alcotest.fail "paged pool has a prefix trie"
  in
  (* warm the trie: the 8-token prefix pins two full blocks *)
  (match Serve.Kv_pool.acquire_for pool ~prompt:shared ~total_rows:12 () with
  | `Denied -> Alcotest.fail "cold acquire denied"
  | `Cache (c, _) ->
    ignore (Llm.extend llm c (Llm.embed llm shared));
    Serve.Kv_pool.register pool ~prompt:shared c;
    Serve.Kv_pool.release pool c);
  let pins = Kv.Prefix.pinned trie in
  checkb "trie pinned the prefix" true (pins > 0);
  (* the retry victim shares both pinned blocks *)
  let cache, matched =
    match Serve.Kv_pool.acquire_for pool ~prompt ~total_rows:16 () with
    | `Denied -> Alcotest.fail "prefix-hit acquire denied"
    | `Cache (c, matched) -> (c, matched)
  in
  checki "both pinned blocks shared" 8 matched;
  let suffix = Array.sub prompt matched (Array.length prompt - matched) in
  ignore (Llm.extend llm cache (Llm.embed llm suffix));
  let gen = [| 5; 17; 23 |] in
  Array.iter
    (fun tok -> ignore (Llm.decode_step llm cache (Llm.embed llm [| tok |])))
    gen;
  checki "session decoded to 13 rows" 13 (Llm.cache_len cache);
  (* retry rewind to row 6 — inside pinned block 1 (rows 4..7) *)
  let cows_before = Telemetry.Counter.value Kv.Block_manager.cow_copies_name in
  Llm.truncate_cache cache 6;
  checki "rewound" 6 (Llm.cache_len cache);
  checki "pins survived the truncate" pins (Kv.Prefix.pinned trie);
  (* cold contiguous reference for the replay *)
  let rc = Llm.new_cache llm in
  let all = Llm.extend llm rc (Llm.embed llm prompt) in
  let hidden = (Llm.config llm).Llm.hidden in
  (* re-extend rows 6..9: the row-6 write lands in the shared block, so
     COW must copy it rather than scribble over the trie's rows *)
  let tail = Array.sub prompt 6 (Array.length prompt - 6) in
  let re = Llm.extend llm cache (Llm.embed llm tail) in
  checkb "COW fired on the pinned block" true
    (Telemetry.Counter.value Kv.Block_manager.cow_copies_name > cows_before);
  for r = 0 to Array.length tail - 1 do
    for j = 0 to hidden - 1 do
      Alcotest.(check (float 0.0))
        (Printf.sprintf "replayed row %d col %d" (6 + r) j)
        (Tensor.get all [| 6 + r; j |])
        (Tensor.get re [| r; j |])
    done
  done;
  Array.iteri
    (fun i tok ->
      let e = Llm.embed llm [| tok |] in
      checkb
        (Printf.sprintf "post-rewind decode %d bit-identical" i)
        true
        (bits_equal (Llm.decode_step llm rc e) (Llm.decode_step llm cache e)))
    gen;
  (* the trie still serves the prefix after the rewind *)
  (match Serve.Kv_pool.acquire_for pool ~prompt ~total_rows:16 () with
  | `Denied -> Alcotest.fail "trie hit denied after rewind"
  | `Cache (c, matched2) ->
    checki "trie intact after COW" 8 matched2;
    Serve.Kv_pool.release pool c);
  Serve.Kv_pool.release pool cache;
  checki "arena conserved (free + pins)" 32
    (Kv.Block_manager.free_blocks m + Kv.Prefix.pinned trie)

(* ---- paged storage is bit-identical to contiguous ---- *)

let test_paged_bit_identical_to_contiguous () =
  clean ();
  let llm = make_llm () in
  let cfg = Llm.config llm in
  let m =
    Kv.Block_manager.create ~block_size:4 ~num_blocks:32
      ~layers:cfg.Llm.layers ~hidden:cfg.Llm.hidden ()
  in
  let cc = Llm.new_cache llm in
  let pc = Llm.new_paged_cache llm m in
  let vocab = cfg.Llm.vocab in
  let prompt = Array.init 7 (fun i -> (5 + (3 * i)) mod vocab) in
  let a = Llm.prefill llm cc (Llm.embed llm prompt) in
  let b = Llm.prefill llm pc (Llm.embed llm prompt) in
  checkb "prefill bit-identical" true (bits_equal a b);
  for k = 0 to 9 do
    let e = Llm.embed llm [| (11 + (5 * k)) mod vocab |] in
    let x = Llm.decode_step llm cc e in
    let y = Llm.decode_step llm pc e in
    checkb
      (Printf.sprintf "decode step %d bit-identical" k)
      true (bits_equal x y)
  done;
  (* rewind mid-generation: both policies must replay identically *)
  Llm.truncate_cache cc 9;
  Llm.truncate_cache pc 9;
  let e = Llm.embed llm [| 3 |] in
  checkb "post-truncate step bit-identical" true
    (bits_equal (Llm.decode_step llm cc e) (Llm.decode_step llm pc e));
  Llm.reset_cache pc;
  checki "reset returns every block" 32 (Kv.Block_manager.free_blocks m)

let test_prefix_hit_bit_identical () =
  clean ();
  let llm = make_llm () in
  let vocab = (Llm.config llm).Llm.vocab in
  let shared = Array.init 8 (fun i -> (3 + (7 * i)) mod vocab) in
  let mk_prompt id =
    Array.append shared
      (Array.init 5 (fun i -> (13 + (11 * id) + i) mod vocab))
  in
  let pool =
    Serve.Kv_pool.create
      ~policy:
        (Serve.Kv_pool.Paged
           { block_size = 4; num_blocks = 32; prefix = true })
      llm
  in
  (* warm the trie with request 0's prompt *)
  let p0 = mk_prompt 0 in
  (match Serve.Kv_pool.acquire_for pool ~prompt:p0 ~total_rows:16 () with
  | `Denied -> Alcotest.fail "cold acquire denied"
  | `Cache (c, matched) ->
    checki "cold lookup matches nothing" 0 matched;
    ignore (Llm.extend llm c (Llm.embed llm p0));
    Serve.Kv_pool.register pool ~prompt:p0 c);
  (* request 1 shares the 8-token prefix (2 full blocks) *)
  let p1 = mk_prompt 1 in
  let cache, matched =
    match Serve.Kv_pool.acquire_for pool ~prompt:p1 ~total_rows:16 () with
    | `Denied -> Alcotest.fail "prefix-hit acquire denied"
    | `Cache (c, matched) -> (c, matched)
  in
  checki "two full blocks shared" 8 matched;
  checki "cache pre-seeded to the match" 8 (Llm.cache_len cache);
  let suffix = Array.sub p1 matched (Array.length p1 - matched) in
  let hit = Llm.extend llm cache (Llm.embed llm suffix) in
  (* reference: the same prompt prefilled cold into a contiguous cache *)
  let ref_cache = Llm.new_cache llm in
  let all = Llm.extend llm ref_cache (Llm.embed llm p1) in
  let hidden = (Llm.config llm).Llm.hidden in
  for r = 0 to Array.length suffix - 1 do
    for j = 0 to hidden - 1 do
      Alcotest.(check (float 0.0))
        (Printf.sprintf "suffix row %d col %d" r j)
        (Tensor.get all [| matched + r; j |])
        (Tensor.get hit [| r; j |])
    done
  done;
  (* and the generation that follows stays bit-identical *)
  for k = 0 to 3 do
    let e = Llm.embed llm [| (17 + k) mod vocab |] in
    checkb
      (Printf.sprintf "post-hit decode %d" k)
      true
      (bits_equal (Llm.decode_step llm ref_cache e)
         (Llm.decode_step llm cache e))
  done

(* ---- pool admission over the arena ---- *)

let test_pool_denies_on_exhausted_arena () =
  clean ();
  let llm = make_llm () in
  let pool =
    Serve.Kv_pool.create
      ~policy:
        (Serve.Kv_pool.Paged { block_size = 4; num_blocks = 4; prefix = false })
      llm
  in
  let prompt = Array.init 6 (fun i -> i + 1) in
  (* 16 arena rows: a 12-row request fits, the next one must be refused
     at admission (not fail mid-decode) *)
  (match Serve.Kv_pool.acquire_for pool ~prompt ~total_rows:12 () with
  | `Denied -> Alcotest.fail "first request denied"
  | `Cache (c, _) -> ignore (Llm.extend llm c (Llm.embed llm prompt)));
  (match Serve.Kv_pool.acquire_for pool ~prompt ~total_rows:12 () with
  | `Denied -> ()
  | `Cache _ -> Alcotest.fail "admitted past the arena");
  checki "denial counted" 1 (Serve.Kv_pool.denied pool)

(* ---- speculative decoding ---- *)

let mk_req ?(deadline_s = Float.infinity) ~prompt_len ~new_tokens id =
  let vocab = Llm.tiny.Llm.vocab in
  let prompt = Array.init prompt_len (fun i -> (7 + (3 * id) + i) mod vocab) in
  let gen = Array.init new_tokens (fun i -> (11 + (5 * id) + i) mod vocab) in
  Serve.Request.make ~id ~prompt ~gen ~deadline_s ()

let drain_outputs config reqs =
  let llm = make_llm () in
  let sched = Serve.Scheduler.create ~config llm in
  List.iter
    (fun r -> checkb "accepted" true (Serve.Scheduler.submit sched ~now:0.0 r))
    reqs;
  Serve.Scheduler.drain sched ~now:frozen_now;
  List.map
    (fun (r : Serve.Request.t) ->
      checkb "finished" true (r.Serve.Request.state = Serve.Request.Finished);
      (r.Serve.Request.id, Serve.Request.outputs r))
    (Serve.Scheduler.finished sched)

let test_spec_decode_matches_greedy () =
  clean ();
  let mk () =
    [ mk_req ~prompt_len:5 ~new_tokens:6 0;
      mk_req ~prompt_len:3 ~new_tokens:1 1;  (* prefill-only *)
      mk_req ~prompt_len:8 ~new_tokens:2 2;  (* shorter than one round *)
      mk_req ~prompt_len:4 ~new_tokens:9 3 ]
  in
  let greedy = drain_outputs Serve.Scheduler.default_config (mk ()) in
  List.iter
    (fun (spec_k, accuracy) ->
      clean ();
      let config =
        { Serve.Scheduler.default_config with
          Serve.Scheduler.spec_k; spec_accuracy = accuracy }
      in
      let spec = drain_outputs config (mk ()) in
      checki "same request count" (List.length greedy) (List.length spec);
      List.iter
        (fun (id, outs) ->
          let souts = List.assoc id spec in
          checki
            (Printf.sprintf "req %d token count (k=%d)" id spec_k)
            (List.length outs) (List.length souts);
          List.iteri
            (fun i (a, b) ->
              checkb
                (Printf.sprintf "req %d token %d (k=%d, acc %.2f)" id i
                   spec_k accuracy)
                true (bits_equal a b))
            (List.combine outs souts))
        greedy;
      let proposed =
        Telemetry.Counter.value Serve.Metrics.spec_proposed_name
      in
      let accepted =
        Telemetry.Counter.value Serve.Metrics.spec_accepted_name
      in
      let rejected =
        Telemetry.Counter.value Serve.Metrics.spec_rejected_name
      in
      checkb "proposals made" true (proposed > 0);
      checki "proposals conserved" proposed (accepted + rejected);
      if accuracy >= 1.0 then checki "perfect draft never rejected" 0 rejected)
    [ (3, 0.75); (4, 0.0); (2, 1.0) ]

let test_spec_decode_paged_matches_greedy () =
  clean ();
  let mk () =
    [ mk_req ~prompt_len:6 ~new_tokens:5 0; mk_req ~prompt_len:9 ~new_tokens:7 1 ]
  in
  let greedy = drain_outputs Serve.Scheduler.default_config (mk ()) in
  clean ();
  let config =
    { Serve.Scheduler.default_config with
      Serve.Scheduler.paged = true; block_size = 4; num_blocks = 32;
      spec_k = 3 }
  in
  let spec = drain_outputs config (mk ()) in
  List.iter
    (fun (id, outs) ->
      let souts = List.assoc id spec in
      checki "token count" (List.length outs) (List.length souts);
      List.iteri
        (fun i (a, b) ->
          checkb
            (Printf.sprintf "req %d token %d paged+spec" id i)
            true (bits_equal a b))
        (List.combine outs souts))
    greedy

(* ---- chaos: arena conservation under faults ---- *)

let test_serve_chaos_paged_no_leaks () =
  clean ();
  let scheduler =
    { Serve.Chaos.default.Serve.Chaos.scheduler with
      Serve.Scheduler.paged = true; block_size = 8; num_blocks = 64;
      spec_k = 3 }
  in
  let config =
    { Serve.Chaos.default with
      Serve.Chaos.requests = 12; scheduler; shared_prefix = 8 }
  in
  let r = Serve.Chaos.run ~config () in
  Alcotest.(check (list string)) "no violations" [] r.Serve.Chaos.violations;
  checkb "faults fired" true (r.Serve.Chaos.injected > 0);
  checkb "arena was used" true (r.Serve.Chaos.pages_allocated > 0);
  checkb "prefix sharing happened" true (r.Serve.Chaos.prefix_hits > 0);
  checki "bit-identity held" 0 r.Serve.Chaos.mismatched

let test_cluster_chaos_paged_no_leaks () =
  clean ();
  let scheduler =
    { Cluster.Chaos.default.Cluster.Chaos.scheduler with
      Serve.Scheduler.paged = true; block_size = 8; num_blocks = 64;
      spec_k = 3 }
  in
  let config =
    { Cluster.Chaos.default with
      Cluster.Chaos.requests = 12; replicas = 2; scheduler;
      shared_prefix = 8 }
  in
  let r = Cluster.Chaos.run ~config () in
  Alcotest.(check (list string)) "no violations" [] r.Cluster.Chaos.violations;
  checkb "faults fired" true (r.Cluster.Chaos.injected > 0);
  checki "fleet bit-identity held" 0 r.Cluster.Chaos.mismatched

(* disaggregation hands block tables over the prefiller's own arena to
   the decode tier, which appends into them until the exactly-once
   release returns the blocks *)
let test_cluster_chaos_paged_disaggregated () =
  clean ();
  let scheduler =
    { Cluster.Chaos.default.Cluster.Chaos.scheduler with
      Serve.Scheduler.paged = true; block_size = 8; num_blocks = 64 }
  in
  let config =
    { Cluster.Chaos.default with
      Cluster.Chaos.requests = 12; replicas = 2; disaggregate = true;
      scheduler; shared_prefix = 8 }
  in
  let r = Cluster.Chaos.run ~config () in
  Alcotest.(check (list string)) "no violations" [] r.Cluster.Chaos.violations;
  checkb "sessions adopted over the handoff" true (r.Cluster.Chaos.adopted > 0);
  checki "no double release" 0 r.Cluster.Chaos.double_released;
  checki "fleet bit-identity held" 0 r.Cluster.Chaos.mismatched

let () =
  Alcotest.run "kv"
    [
      ( "block-manager",
        [
          Alcotest.test_case "exhaustion denies" `Quick test_exhaustion_denies;
          Alcotest.test_case "refcount never negative" `Quick
            test_refcount_never_negative;
          Alcotest.test_case "COW isolates writers" `Quick
            test_cow_isolates_writers;
        ] );
      ( "seq",
        [
          Alcotest.test_case "mid-flight exhaustion raises" `Quick
            test_seq_out_of_blocks;
          Alcotest.test_case "truncate frees exact tail" `Quick
            test_truncate_frees_exact_tail;
          Alcotest.test_case "rewind inside pinned prefix COWs" `Quick
            test_truncate_cow_inside_pinned_prefix;
        ] );
      ( "identity",
        [
          Alcotest.test_case "paged = contiguous (bit-identical)" `Quick
            test_paged_bit_identical_to_contiguous;
          Alcotest.test_case "prefix hit = cold prefill" `Quick
            test_prefix_hit_bit_identical;
        ] );
      ( "admission",
        [
          Alcotest.test_case "arena exhaustion denies at admission" `Quick
            test_pool_denies_on_exhausted_arena;
        ] );
      ( "speculative",
        [
          Alcotest.test_case "spec = greedy (token-identical)" `Quick
            test_spec_decode_matches_greedy;
          Alcotest.test_case "paged+spec = greedy" `Quick
            test_spec_decode_paged_matches_greedy;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "paged serve chaos conserves arena" `Quick
            test_serve_chaos_paged_no_leaks;
          Alcotest.test_case "paged cluster chaos conserves arena" `Quick
            test_cluster_chaos_paged_no_leaks;
          Alcotest.test_case "paged disaggregated handoff" `Quick
            test_cluster_chaos_paged_disaggregated;
        ] );
    ]

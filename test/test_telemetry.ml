(* Tests for lib/telemetry: monotonic clock, spans, atomic counters across
   domains, registry aggregation, report/Chrome-trace JSON well-formedness. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let reset_on () =
  Telemetry.Registry.reset ();
  Telemetry.Registry.enable ()

let off () = Telemetry.Registry.disable ()

(* ---- clock ---- *)

let test_clock_monotonic () =
  let a = Telemetry.Clock.now_ns () in
  let b = Telemetry.Clock.now_ns () in
  ignore (Sys.opaque_identity (Array.init 1000 Fun.id));
  let c = Telemetry.Clock.now_ns () in
  checkb "b >= a" true (Int64.compare b a >= 0);
  checkb "c >= b" true (Int64.compare c b >= 0);
  let x, dt = Telemetry.Clock.time (fun () -> 42) in
  checki "time result" 42 x;
  checkb "time non-negative" true (dt >= 0.0)

(* ---- spans ---- *)

let test_span_disabled_records_nothing () =
  Telemetry.Registry.reset ();
  off ();
  Telemetry.Span.record ~name:"ghost" ~start_ns:0L ~dur_ns:1L ();
  let r = Telemetry.Span.with_span "ghost2" (fun () -> 7) in
  checki "with_span passthrough" 7 r;
  checki "nothing recorded while disabled" 0 (Telemetry.Span.count ())

let test_span_nesting () =
  reset_on ();
  let r =
    Telemetry.Span.with_span "outer" (fun () ->
        Telemetry.Span.with_span "inner" (fun () -> 3) + 1)
  in
  off ();
  checki "result" 4 r;
  match Telemetry.Span.all () with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer first by start" "outer" outer.Telemetry.Span.name;
    Alcotest.(check string) "inner second" "inner" inner.Telemetry.Span.name;
    let open Int64 in
    let o_end = add outer.Telemetry.Span.start_ns outer.Telemetry.Span.dur_ns in
    let i_end = add inner.Telemetry.Span.start_ns inner.Telemetry.Span.dur_ns in
    checkb "inner starts after outer" true
      (compare inner.Telemetry.Span.start_ns outer.Telemetry.Span.start_ns >= 0);
    checkb "inner contained in outer" true (compare i_end o_end <= 0)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_still_recorded () =
  reset_on ();
  (try Telemetry.Span.with_span "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  off ();
  checki "span recorded despite exception" 1 (Telemetry.Span.count ())

(* ---- counters across domains ---- *)

let test_counter_cross_domain () =
  Telemetry.Counter.reset_all ();
  let c = Telemetry.Counter.find_or_create "test.cross_domain" in
  let worker () =
    let mine = Telemetry.Counter.find_or_create "test.cross_domain" in
    for _ = 1 to 1000 do
      Telemetry.Counter.incr mine
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  worker ();
  Domain.join d1;
  Domain.join d2;
  checki "3 x 1000 increments aggregated" 3000 (Telemetry.Counter.get c);
  checki "value by name" 3000 (Telemetry.Counter.value "test.cross_domain");
  Telemetry.Counter.reset_all ();
  checki "reset zeroes but keeps identity" 0 (Telemetry.Counter.get c)

(* ---- registry ---- *)

let test_registry_kernel_stats () =
  reset_on ();
  Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:"t" ~flops:2e9
    ~bytes:1e9 ~seconds:0.5;
  Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:"t" ~flops:2e9
    ~bytes:1e9 ~seconds:0.5;
  off ();
  match Telemetry.Registry.kernel_stats () with
  | [ s ] ->
    checki "invocations aggregated" 2 s.Telemetry.Registry.invocations;
    Alcotest.(check (float 1e-6)) "gflops" 4.0 (Telemetry.Registry.gflops s);
    Alcotest.(check (float 1e-6)) "ai" 2.0
      (Telemetry.Registry.arithmetic_intensity s)
  | l -> Alcotest.failf "expected 1 stat, got %d" (List.length l)

let test_registry_predictions () =
  reset_on ();
  Telemetry.Registry.record_prediction ~name:"p" ~predicted_gflops:120.0
    ~measured_gflops:100.0;
  off ();
  match Telemetry.Registry.predictions () with
  | [ p ] ->
    Alcotest.(check (float 1e-9)) "signed deviation" 0.2
      (Telemetry.Registry.deviation p);
    Alcotest.(check (float 1e-9)) "mean abs deviation" 0.2
      (Telemetry.Registry.mean_abs_deviation [ p ])
  | l -> Alcotest.failf "expected 1 prediction, got %d" (List.length l)

let test_registry_reset () =
  reset_on ();
  Telemetry.Span.record ~name:"s" ~start_ns:0L ~dur_ns:1L ();
  Telemetry.Registry.record_kernel ~kind:"k" ~instance:"i" ~flops:1.0
    ~bytes:1.0 ~seconds:1.0;
  Telemetry.Registry.record_prediction ~name:"p" ~predicted_gflops:1.0
    ~measured_gflops:1.0;
  Telemetry.Counter.incr (Telemetry.Counter.find_or_create "test.reset");
  Telemetry.Registry.reset ();
  off ();
  checki "spans cleared" 0 (Telemetry.Span.count ());
  checki "kernels cleared" 0
    (List.length (Telemetry.Registry.kernel_stats ()));
  checki "predictions cleared" 0
    (List.length (Telemetry.Registry.predictions ()));
  checki "counters zeroed" 0 (Telemetry.Counter.value "test.reset")

(* ---- histograms ---- *)

let test_histogram_basic () =
  Telemetry.Histogram.reset_all ();
  let h = Telemetry.Histogram.find_or_create "test.hist.basic" in
  checkb "same name, same histogram" true
    (h == Telemetry.Histogram.find_or_create "test.hist.basic");
  for i = 1 to 1000 do
    Telemetry.Histogram.observe h (float_of_int i)
  done;
  checki "count" 1000 (Telemetry.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" 500500.0 (Telemetry.Histogram.sum h);
  Alcotest.(check (float 1e-6)) "min exact" 1.0
    (Telemetry.Histogram.min_value h);
  Alcotest.(check (float 1e-6)) "max exact" 1000.0
    (Telemetry.Histogram.max_value h);
  (* log buckets: quantiles within ~9% relative error *)
  let q50 = Telemetry.Histogram.quantile h 0.5 in
  checkb "p50 within bucket resolution"
    true
    (Float.abs (q50 -. 500.0) /. 500.0 < 0.10);
  let q0 = Telemetry.Histogram.quantile h 0.0 in
  let q100 = Telemetry.Histogram.quantile h 1.0 in
  checkb "q0 clamped to observed min" true (q0 >= 1.0);
  checkb "q1 clamped to observed max" true (q100 <= 1000.0);
  checkb "quantiles monotone" true (q0 <= q50 && q50 <= q100)

let test_histogram_empty_and_reset () =
  Telemetry.Histogram.reset_all ();
  let h = Telemetry.Histogram.find_or_create "test.hist.empty" in
  checki "empty count" 0 (Telemetry.Histogram.count h);
  checkb "empty mean is nan" true (Float.is_nan (Telemetry.Histogram.mean h));
  checkb "empty quantile is nan" true
    (Float.is_nan (Telemetry.Histogram.quantile h 0.5));
  Telemetry.Histogram.observe h 3.0;
  Telemetry.Histogram.reset h;
  checki "reset zeroes but keeps identity" 0 (Telemetry.Histogram.count h);
  checkb "registry reset clears histograms" true
    (Telemetry.Histogram.observe h 1.0;
     Telemetry.Registry.reset ();
     Telemetry.Histogram.count h = 0)

let test_histogram_merge_across_domains () =
  Telemetry.Histogram.reset_all ();
  let into = Telemetry.Histogram.find_or_create "test.hist.merged" in
  (* per-domain shards observed concurrently, then merged *)
  let shard i =
    let h =
      Telemetry.Histogram.find_or_create
        (Printf.sprintf "test.hist.shard%d" i)
    in
    for v = 1 to 500 do
      Telemetry.Histogram.observe h (float_of_int v)
    done;
    h
  in
  let d1 = Domain.spawn (fun () -> shard 1) in
  let d2 = Domain.spawn (fun () -> shard 2) in
  let h1 = Domain.join d1 and h2 = Domain.join d2 in
  Telemetry.Histogram.merge_into h1 ~into;
  Telemetry.Histogram.merge_into h2 ~into;
  checki "merged count" 1000 (Telemetry.Histogram.count into);
  Alcotest.(check (float 1e-6)) "merged sum" 250500.0
    (Telemetry.Histogram.sum into);
  Alcotest.(check (float 1e-6)) "merged max" 500.0
    (Telemetry.Histogram.max_value into);
  let q50 = Telemetry.Histogram.quantile into 0.5 in
  checkb "merged p50 sane" true (Float.abs (q50 -. 250.0) /. 250.0 < 0.10)

(* ---- JSON well-formedness (validator lives in Telemetry.Json_check) ---- *)

let parse_json s = Telemetry.Json_check.validate s

let test_json_check_rejects_malformed () =
  let bad =
    [ "{"; "{\"a\":1,}"; "[1 2]"; "\"unterminated"; "{\"a\":01x}"; "{} {}" ]
  in
  List.iter
    (fun s ->
      match Telemetry.Json_check.check s with
      | Ok () -> Alcotest.failf "accepted malformed JSON: %s" s
      | Error _ -> ())
    bad;
  List.iter
    (fun s ->
      match Telemetry.Json_check.check s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "rejected valid JSON %s: %s" s m)
    [ "{}"; "[]"; "{\"a\":[1,2.5,-3e4,true,false,null,\"s\\n\"]}" ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_chrome_trace_json () =
  reset_on ();
  Telemetry.Span.record ~cat:"loop" ~tid:0 ~name:"sp\"an\\1"
    ~args:[ ("nthreads", 2.0) ] ~start_ns:1000L ~dur_ns:5000L ();
  Telemetry.Span.record ~cat:"loop" ~tid:1 ~name:"span2" ~start_ns:2000L
    ~dur_ns:3000L ();
  Telemetry.Span.record ~name:"main-span" ~start_ns:500L ~dur_ns:9000L ();
  off ();
  let s = Telemetry.Chrome_trace.to_string () in
  (try parse_json s with
  | Telemetry.Json_check.Bad_json m -> Alcotest.failf "invalid JSON: %s" m);
  checkb "has traceEvents" true (contains ~needle:"\"traceEvents\"" s);
  checkb "has complete events" true (contains ~needle:"\"ph\":\"X\"" s);
  checkb "names worker thread" true (contains ~needle:"worker-1" s);
  checkb "names main thread" true (contains ~needle:"\"main\"" s);
  checkb "escapes span names" true (contains ~needle:"sp\\\"an\\\\1" s)

let test_report_json () =
  reset_on ();
  Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:"256^3 f32 BCa"
    ~flops:33.5e6 ~bytes:1.05e6 ~seconds:1.0e-3;
  Telemetry.Registry.record_prediction ~name:"gemm 256" ~predicted_gflops:50.0
    ~measured_gflops:40.0;
  Telemetry.Histogram.observe
    (Telemetry.Histogram.find_or_create "test.report.lat_ms")
    1.5;
  off ();
  let j = Telemetry.Report.to_json ~peak_gflops:100.0 ~mem_bw_gbs:50.0 () in
  (try parse_json j with
  | Telemetry.Json_check.Bad_json m -> Alcotest.failf "invalid JSON: %s" m);
  checkb "kernels in json" true (contains ~needle:"\"kernels\"" j);
  checkb "predictions in json" true (contains ~needle:"\"predictions\"" j);
  checkb "histograms in json" true (contains ~needle:"\"histograms\"" j);
  checkb "histogram named in json" true
    (contains ~needle:"test.report.lat_ms" j);
  let txt = Telemetry.Report.summary ~peak_gflops:100.0 ~mem_bw_gbs:50.0 () in
  checkb "summary names kernel" true (contains ~needle:"256^3 f32 BCa" txt)

let test_roofline () =
  Alcotest.(check (float 1e-9))
    "bandwidth bound" 5.0
    (Telemetry.Report.roofline ~peak_gflops:100.0 ~mem_bw_gbs:50.0 0.1);
  Alcotest.(check (float 1e-9))
    "compute bound" 100.0
    (Telemetry.Report.roofline ~peak_gflops:100.0 ~mem_bw_gbs:50.0 1000.0)

(* ---- gauges ---- *)

let test_gauge_basic () =
  Telemetry.Gauge.reset_all ();
  let g = Telemetry.Gauge.find_or_create "test.gauge" in
  checkb "same name, same gauge" true
    (g == Telemetry.Gauge.find_or_create "test.gauge");
  Alcotest.(check string) "name" "test.gauge" (Telemetry.Gauge.name g);
  Telemetry.Gauge.set g 5;
  checki "set" 5 (Telemetry.Gauge.get g);
  Telemetry.Gauge.add g 3;
  Telemetry.Gauge.incr g;
  Telemetry.Gauge.decr g;
  checki "add/incr/decr" 8 (Telemetry.Gauge.get g);
  checki "value by name" 8 (Telemetry.Gauge.value "test.gauge");
  Telemetry.Gauge.set g (-2);
  checki "gauges can go negative" (-2) (Telemetry.Gauge.get g);
  checkb "listed in all" true
    (List.mem_assoc "test.gauge" (Telemetry.Gauge.all ()));
  Telemetry.Gauge.reset_all ();
  checki "reset zeroes but keeps identity" 0 (Telemetry.Gauge.get g)

(* ---- span cap ---- *)

let test_span_cap () =
  reset_on ();
  let old = Telemetry.Span.limit () in
  Telemetry.Span.set_limit 4;
  for i = 1 to 10 do
    Telemetry.Span.record
      ~name:(string_of_int i)
      ~start_ns:(Int64.of_int i) ~dur_ns:1L ()
  done;
  off ();
  Telemetry.Span.set_limit old;
  checki "kept at most the cap" 4 (Telemetry.Span.count ());
  checki "overflow counted" 6
    (Telemetry.Counter.value Telemetry.Registry.spans_dropped_name)

(* ---- live metrics plane (Expose) ---- *)

let test_expose_jsonl () =
  reset_on ();
  let c = Telemetry.Counter.find_or_create "test.expose.c" in
  Telemetry.Counter.incr c;
  Telemetry.Gauge.set (Telemetry.Gauge.find_or_create "test.expose.g") 7;
  let s1 = Telemetry.Expose.take () in
  Telemetry.Counter.add c 4;
  let s2 = Telemetry.Expose.take () in
  off ();
  let line1 = Telemetry.Expose.jsonl s1 in
  let line2 = Telemetry.Expose.jsonl ~prev:s1 s2 in
  (try parse_json line1 with
  | Telemetry.Json_check.Bad_json m -> Alcotest.failf "invalid JSONL: %s" m);
  (try parse_json line2 with
  | Telemetry.Json_check.Bad_json m ->
    Alcotest.failf "invalid JSONL with prev: %s" m);
  checkb "no deltas without prev" false (contains ~needle:"\"deltas\"" line1);
  checkb "deltas present with prev" true (contains ~needle:"\"deltas\"" line2);
  checkb "rates present with prev" true (contains ~needle:"\"rates\"" line2);
  checkb "gauge in snapshot" true (contains ~needle:"test.expose.g" line1);
  match List.assoc_opt "test.expose.c" (Telemetry.Expose.deltas ~prev:s1 s2)
  with
  | Some d -> checki "counter delta" 4 d
  | None -> Alcotest.fail "counter missing from deltas"

let test_expose_prometheus () =
  reset_on ();
  Telemetry.Counter.incr (Telemetry.Counter.find_or_create "test.prom.count");
  Telemetry.Gauge.set (Telemetry.Gauge.find_or_create "test.prom.depth") 3;
  off ();
  let s = Telemetry.Expose.prometheus () in
  checkb "TYPE counter line" true
    (contains ~needle:"# TYPE test_prom_count counter" s);
  checkb "TYPE gauge line" true
    (contains ~needle:"# TYPE test_prom_depth gauge" s);
  checkb "gauge sample" true (contains ~needle:"test_prom_depth 3" s)

(* ---- flight recorder ---- *)

let test_recorder_emit_decode () =
  Telemetry.Recorder.reset ();
  Telemetry.Recorder.set_enabled true;
  let lbl = Telemetry.Recorder.intern "test.recorder" in
  Telemetry.Recorder.emit Telemetry.Recorder.Sched_admit ~label:lbl ~a:7 ~b:2;
  Telemetry.Recorder.emit Telemetry.Recorder.Mark
    ~label:Telemetry.Recorder.no_label ~a:0 ~b:0;
  (match Telemetry.Recorder.events () with
  | [ e1; e2 ] ->
    checkb "kind decodes" true
      (e1.Telemetry.Recorder.ekind = Telemetry.Recorder.Sched_admit);
    Alcotest.(check string)
      "label decodes" "test.recorder" e1.Telemetry.Recorder.label;
    checki "a" 7 e1.Telemetry.Recorder.a;
    checki "b" 2 e1.Telemetry.Recorder.b;
    checkb "time ordered" true
      (e2.Telemetry.Recorder.t_ns >= e1.Telemetry.Recorder.t_ns);
    checkb "seq ordered" true
      (e2.Telemetry.Recorder.seq > e1.Telemetry.Recorder.seq)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  checki "one recording thread" 1 (List.length (Telemetry.Recorder.tids ()));
  Telemetry.Recorder.reset ()

let test_recorder_kill_switch () =
  Telemetry.Recorder.reset ();
  Telemetry.Recorder.set_enabled false;
  Telemetry.Recorder.emit Telemetry.Recorder.Mark
    ~label:Telemetry.Recorder.no_label ~a:0 ~b:0;
  checki "disabled emits nothing" 0
    (List.length (Telemetry.Recorder.events ()));
  Telemetry.Recorder.set_enabled true

let test_recorder_wrap () =
  Telemetry.Recorder.reset ();
  Telemetry.Recorder.set_enabled true;
  Telemetry.Recorder.set_capacity 16;
  let lbl = Telemetry.Recorder.intern "test.wrap" in
  (* a fresh thread gets a fresh ring at the new capacity *)
  let t =
    Thread.create
      (fun () ->
        for i = 1 to 100 do
          Telemetry.Recorder.emit Telemetry.Recorder.Mark ~label:lbl ~a:i ~b:0
        done)
      ()
  in
  Thread.join t;
  Telemetry.Recorder.set_capacity 4096;
  let evs = Telemetry.Recorder.events () in
  checki "ring kept exactly capacity events" 16 (List.length evs);
  let min_a =
    List.fold_left (fun m e -> min m e.Telemetry.Recorder.a) max_int evs
  in
  checki "survivors are the newest" 85 min_a;
  Telemetry.Recorder.reset ()

let test_recorder_trace_json () =
  Telemetry.Recorder.reset ();
  Telemetry.Recorder.set_enabled true;
  (* labels exercise JSON escaping: quotes, backslash, and non-ASCII
     (UTF-8 multibyte) kernel names must all survive *)
  let k = Telemetry.Recorder.intern "gemm \"64\xc2\xb3\" bf16\\f32" in
  let f = Telemetry.Recorder.intern "team.worker.body" in
  Telemetry.Recorder.emit Telemetry.Recorder.Kernel_begin ~label:k ~a:4 ~b:0;
  Telemetry.Recorder.emit Telemetry.Recorder.Fault_fired ~label:f ~a:47 ~b:0;
  Telemetry.Recorder.emit Telemetry.Recorder.Kernel_end ~label:k ~a:4 ~b:0;
  let evs = Telemetry.Recorder.events () in
  let s = Telemetry.Recorder.trace_of_events ~reason:"test.trace" evs in
  (try parse_json s with
  | Telemetry.Json_check.Bad_json m ->
    Alcotest.failf "invalid trace JSON: %s" m);
  checkb "fault category present" true (contains ~needle:"\"cat\":\"fault\"" s);
  checkb "kernel begin" true (contains ~needle:"\"ph\":\"B\"" s);
  checkb "kernel end" true (contains ~needle:"\"ph\":\"E\"" s);
  checkb "non-ASCII label survives" true (contains ~needle:"64\xc2\xb3" s);
  let txt = Telemetry.Recorder.text_of_events ~reason:"test.trace" evs in
  checkb "text timeline carries reason" true
    (contains ~needle:"test.trace" txt);
  Telemetry.Recorder.reset ()

let test_recorder_post_mortem () =
  Telemetry.Recorder.reset ();
  Telemetry.Recorder.set_enabled true;
  let dir = Filename.temp_file "parlooper-flight" ".d" in
  Sys.remove dir;
  let old = Telemetry.Recorder.dump_dir () in
  Telemetry.Recorder.set_dump_dir (Some dir);
  Telemetry.Recorder.emit Telemetry.Recorder.Mark
    ~label:(Telemetry.Recorder.intern "pm")
    ~a:1 ~b:0;
  (match Telemetry.Recorder.post_mortem ~reason:"test.pm" with
  | None -> Alcotest.fail "no dump produced"
  | Some prefix ->
    let trace = prefix ^ ".trace.json" in
    checkb "trace file exists" true (Sys.file_exists trace);
    checkb "text file exists" true (Sys.file_exists (prefix ^ ".txt"));
    let ic = open_in_bin trace in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (try parse_json s with
    | Telemetry.Json_check.Bad_json m ->
      Alcotest.failf "dumped trace invalid: %s" m);
    checkb "reason recorded in dump" true (contains ~needle:"test.pm" s);
    checki "dump counted" 1 (Telemetry.Recorder.dumps_written ()));
  Telemetry.Recorder.set_dump_dir old;
  Telemetry.Recorder.reset ()

(* The always-on claim: after the calling thread's ring exists, emit must
   not allocate — same Gc-delta pattern as the BRGEMM hot-path test. *)
let test_recorder_emit_no_alloc () =
  Telemetry.Recorder.reset ();
  Telemetry.Recorder.set_enabled true;
  let lbl = Telemetry.Recorder.intern "test.noalloc" in
  for i = 1 to 50 do
    Telemetry.Recorder.emit Telemetry.Recorder.Mark ~label:lbl ~a:i ~b:0
  done;
  let before = Gc.minor_words () in
  for i = 1 to 200 do
    Telemetry.Recorder.emit Telemetry.Recorder.Mark ~label:lbl ~a:i ~b:0
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 64.0 then
    Alcotest.failf "emit allocated %.0f minor words over 200 events" delta;
  Telemetry.Recorder.reset ()

(* ---- causal request tracing (Trace) ---- *)

let trace_fresh () =
  Telemetry.Recorder.reset ();
  Telemetry.Recorder.set_enabled true;
  Telemetry.Trace.reset ();
  (* baseline off: retention below is explicit, never a lucky draw *)
  Telemetry.Trace.set_baseline 0

let trace_done () =
  Telemetry.Trace.set_baseline 16;
  Telemetry.Trace.reset ();
  Telemetry.Recorder.reset ()

let temit k id b =
  Telemetry.Recorder.emit k ~label:Telemetry.Trace.solo_label ~a:id ~b

let test_trace_check () =
  trace_fresh ();
  let lbl = Telemetry.Trace.solo_label in
  (* complete lifecycle: queued -> prefill -> decode -> end *)
  temit Telemetry.Recorder.Trace_queued 1 0;
  temit Telemetry.Recorder.Trace_prefill 1 8;
  temit Telemetry.Recorder.Trace_decode 1 2;
  Telemetry.Trace.terminal ~id:1 ~label:lbl ~state:3 ();
  (match Telemetry.Trace.check 1 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "complete timeline rejected: %s" m);
  checkb "healthy unsampled trace not retained" false
    (Telemetry.Trace.is_retained 1);
  (* negative: no queued first *)
  temit Telemetry.Recorder.Trace_prefill 2 4;
  Telemetry.Trace.terminal ~id:2 ~label:lbl ~state:3 ();
  checkb "missing trace_queued rejected" true
    (Result.is_error (Telemetry.Trace.check 2));
  (* negative: decode before prefill *)
  temit Telemetry.Recorder.Trace_queued 3 0;
  temit Telemetry.Recorder.Trace_decode 3 1;
  Telemetry.Trace.terminal ~id:3 ~label:lbl ~state:3 ();
  checkb "decode before prefill rejected" true
    (Result.is_error (Telemetry.Trace.check 3));
  (* negative: no terminal span *)
  temit Telemetry.Recorder.Trace_queued 4 0;
  checkb "missing trace_end rejected" true
    (Result.is_error (Telemetry.Trace.check 4));
  (* negative: finished while detached (KV copy vanished mid-migration) *)
  temit Telemetry.Recorder.Trace_queued 5 0;
  temit Telemetry.Recorder.Trace_prefill 5 2;
  temit Telemetry.Recorder.Trace_detach 5 3;
  Telemetry.Trace.terminal ~id:5 ~label:lbl ~state:3 ();
  checkb "finished with unmatched detach rejected" true
    (Result.is_error (Telemetry.Trace.check 5));
  (* a full migration join is well-nested *)
  temit Telemetry.Recorder.Trace_queued 6 0;
  temit Telemetry.Recorder.Trace_prefill 6 2;
  temit Telemetry.Recorder.Trace_detach 6 3;
  temit Telemetry.Recorder.Trace_import 6 3;
  temit Telemetry.Recorder.Trace_resume 6 1;
  temit Telemetry.Recorder.Trace_decode 6 1;
  Telemetry.Trace.terminal ~id:6 ~label:lbl ~state:3 ~reason:"migrated" ();
  (match Telemetry.Trace.check 6 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "migration join rejected: %s" m);
  Alcotest.(check (option string))
    "migration retained" (Some "migrated")
    (Telemetry.Trace.retention_reason 6);
  trace_done ()

let test_trace_retention () =
  trace_fresh ();
  let lbl = Telemetry.Trace.solo_label in
  (* an explicit terminal reason always retains *)
  Telemetry.Trace.terminal ~id:10 ~label:lbl ~state:5
    ~reason:"deadline_cancelled" ();
  checkb "breacher retained" true (Telemetry.Trace.is_retained 10);
  (* first reason wins: the mid-flight fault beats the terminal label *)
  Telemetry.Trace.retain ~id:11 ~reason:"fault_retry";
  Telemetry.Trace.terminal ~id:11 ~label:lbl ~state:3
    ~reason:"deadline_breach" ();
  Alcotest.(check (option string))
    "first reason wins" (Some "fault_retry")
    (Telemetry.Trace.retention_reason 11);
  (* baseline 1-in-1 retains every healthy id; the draw is seeded *)
  Telemetry.Trace.set_baseline 1;
  Telemetry.Trace.terminal ~id:12 ~label:lbl ~state:3 ();
  Alcotest.(check (option string))
    "baseline draw retained" (Some "baseline")
    (Telemetry.Trace.retention_reason 12);
  checki "retained count" 3 (List.length (Telemetry.Trace.retained ()));
  trace_done ()

let test_trace_exemplars () =
  trace_fresh ();
  Telemetry.Trace.retain ~id:7 ~reason:"ttft_breach";
  Telemetry.Trace.exemplar ~metric:Telemetry.Trace.metric_ttft ~value_ms:12.0
    ~id:7;
  Telemetry.Trace.exemplar ~metric:Telemetry.Trace.metric_ttft ~value_ms:100.0
    ~id:9;
  (* id 9 observed a worse value but was never retained: the worst
     *resolvable* exemplar is id 7 *)
  (match Telemetry.Trace.worst ~metric:Telemetry.Trace.metric_ttft with
  | Some (7, v) -> checkb "worst value" true (Float.abs (v -. 12.0) < 1e-9)
  | Some (id, _) -> Alcotest.failf "worst resolved unretained trace %d" id
  | None -> Alcotest.fail "no worst exemplar");
  Telemetry.Trace.retain ~id:9 ~reason:"shed";
  (match Telemetry.Trace.worst ~metric:Telemetry.Trace.metric_ttft with
  | Some (9, _) -> ()
  | _ -> Alcotest.fail "worst did not move to the newly retained trace");
  trace_done ()

let test_trace_chrome_lanes () =
  trace_fresh ();
  (* one request crossing two replicas: each lane becomes its own Chrome
     pid so the migration reads as a cross-process arrow *)
  let l0 = Telemetry.Trace.replica_label 0
  and l1 = Telemetry.Trace.replica_label 1 in
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_queued ~label:l0 ~a:21 ~b:0;
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_prefill ~label:l0 ~a:21
    ~b:4;
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_detach ~label:l0 ~a:21 ~b:2;
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_import ~label:l1 ~a:21 ~b:2;
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_resume ~label:l1 ~a:21 ~b:1;
  Telemetry.Trace.terminal ~id:21 ~label:l1 ~state:3 ~reason:"migrated" ();
  let s = Telemetry.Trace.chrome_of_timeline 21 in
  (try parse_json s with
  | Telemetry.Json_check.Bad_json m ->
    Alcotest.failf "invalid chrome timeline: %s" m);
  checkb "replica 0 lane" true (contains ~needle:"\"pid\":2" s);
  checkb "replica 1 lane" true (contains ~needle:"\"pid\":3" s);
  trace_done ()

let test_trace_dump () =
  trace_fresh ();
  let lbl = Telemetry.Trace.solo_label in
  temit Telemetry.Recorder.Trace_queued 31 0;
  temit Telemetry.Recorder.Trace_prefill 31 4;
  temit Telemetry.Recorder.Trace_decode 31 1;
  Telemetry.Trace.terminal ~id:31 ~label:lbl ~state:3 ~reason:"deadline_breach"
    ();
  Telemetry.Trace.exemplar ~metric:Telemetry.Trace.metric_ttft ~value_ms:9.5
    ~id:31;
  let dir = Filename.temp_file "parlooper-traces" ".d" in
  Sys.remove dir;
  checki "one trace dumped" 1 (Telemetry.Trace.dump ~dir);
  checkb "text timeline on disk" true
    (Sys.file_exists (Filename.concat dir "trace-31.txt"));
  let slurp p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let tr = slurp (Filename.concat dir "trace-31.trace.json") in
  (try parse_json tr with
  | Telemetry.Json_check.Bad_json m ->
    Alcotest.failf "dumped chrome timeline invalid: %s" m);
  checkb "index row" true
    (contains ~needle:"31 deadline_breach" (slurp (Filename.concat dir "index.txt")));
  checkb "exemplar row links the retained id" true
    (contains ~needle:"ttft 9.5 31"
       (slurp (Filename.concat dir "exemplars.txt")));
  trace_done ()

(* the regression behind the dedicated trace lane: a drive whose kernel
   events wrap the dense ring thousands of times must not evict the few
   causal spans a timeline is assembled from *)
let test_trace_survives_dense_wrap () =
  trace_fresh ();
  Telemetry.Recorder.set_capacity 16;
  let t =
    Thread.create
      (fun () ->
        let lbl = Telemetry.Trace.solo_label in
        Telemetry.Recorder.emit Telemetry.Recorder.Trace_queued ~label:lbl
          ~a:41 ~b:0;
        Telemetry.Recorder.emit Telemetry.Recorder.Trace_prefill ~label:lbl
          ~a:41 ~b:4;
        for i = 1 to 1_000 do
          Telemetry.Recorder.emit Telemetry.Recorder.Kernel_begin ~label:lbl
            ~a:i ~b:0;
          Telemetry.Recorder.emit Telemetry.Recorder.Kernel_end ~label:lbl
            ~a:i ~b:0
        done;
        Telemetry.Recorder.emit Telemetry.Recorder.Trace_decode ~label:lbl
          ~a:41 ~b:1;
        Telemetry.Trace.terminal ~id:41 ~label:lbl ~state:3 ())
      ()
  in
  Thread.join t;
  Telemetry.Recorder.set_capacity 4096;
  (match Telemetry.Trace.check 41 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "trace evicted by dense wrap: %s" m);
  checki "full causal timeline survived" 4
    (List.length (Telemetry.Trace.timeline 41));
  trace_done ()

(* ---- Prometheus exposition details ---- *)

let test_expose_escape_label () =
  Alcotest.(check string)
    "backslash, quote and newline escaped" "a\\\"b\\\\c\\nd"
    (Telemetry.Expose.escape_label "a\"b\\c\nd")

let test_expose_histogram_exposition () =
  reset_on ();
  let h = Telemetry.Histogram.find_or_create "test.prom.lat_ms" in
  Telemetry.Histogram.observe h 1.0;
  Telemetry.Histogram.observe h 10.0;
  Telemetry.Histogram.observe h 10.0;
  off ();
  let s = Telemetry.Expose.prometheus () in
  checkb "TYPE histogram line" true
    (contains ~needle:"# TYPE test_prom_lat_ms histogram" s);
  checkb "le buckets" true (contains ~needle:"test_prom_lat_ms_bucket{le=\"" s);
  checkb "+Inf bucket" true
    (contains ~needle:"test_prom_lat_ms_bucket{le=\"+Inf\"} 3" s);
  checkb "sum line" true (contains ~needle:"test_prom_lat_ms_sum 21" s);
  checkb "count line" true (contains ~needle:"test_prom_lat_ms_count 3" s);
  match Telemetry.Expose.check s with
  | Ok () -> ()
  | Error m -> Alcotest.failf "exposition rejected by its own checker: %s" m

let test_expose_exemplar_gauge () =
  reset_on ();
  Telemetry.Trace.reset ();
  Telemetry.Trace.retain ~id:77 ~reason:"ttft_breach";
  Telemetry.Trace.exemplar ~metric:Telemetry.Trace.metric_ttft ~value_ms:33.0
    ~id:77;
  let s = Telemetry.Expose.prometheus () in
  off ();
  Telemetry.Trace.reset ();
  checkb "exemplar TYPE line" true
    (contains ~needle:"# TYPE parlooper_trace_exemplar gauge" s);
  checkb "exemplar links trace id" true
    (contains
       ~needle:"parlooper_trace_exemplar{metric=\"ttft\",trace_id=\"77\"} 33"
       s);
  match Telemetry.Expose.check s with
  | Ok () -> ()
  | Error m -> Alcotest.failf "exposition rejected by its own checker: %s" m

(* Json_check-style negative cases: the validator must reject the
   malformations the escaping exists to prevent *)
let test_expose_check_rejects_malformed () =
  let t = "# TYPE m counter\n" in
  let bad =
    [ ("name starting with a digit", "9metric 1\n");
      ("unterminated label value", t ^ "m{l=\"oops} 1\n");
      ("unescaped quote in label value", t ^ "m{l=\"a\"b\"} 1\n");
      ("missing value", t ^ "m{l=\"v\"}\n");
      ("non-numeric value", t ^ "m 1.2.3\n");
      ("sample without a TYPE line", "m 1\n") ]
  in
  List.iter
    (fun (what, s) ->
      match Telemetry.Expose.check s with
      | Ok () -> Alcotest.failf "checker accepted %s" what
      | Error _ -> ())
    bad;
  match Telemetry.Expose.check "# TYPE m counter\nm 1\nm{l=\"a\\\"b\"} 2\n" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "checker rejected a valid exposition: %s" m

let () =
  Alcotest.run "telemetry"
    [
      ("clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ]);
      ( "span",
        [
          Alcotest.test_case "disabled" `Quick test_span_disabled_records_nothing;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception" `Quick
            test_span_exception_still_recorded;
          Alcotest.test_case "bounded store" `Quick test_span_cap;
        ] );
      ( "gauge", [ Alcotest.test_case "basic" `Quick test_gauge_basic ] );
      ( "expose",
        [
          Alcotest.test_case "jsonl snapshots" `Quick test_expose_jsonl;
          Alcotest.test_case "prometheus" `Quick test_expose_prometheus;
          Alcotest.test_case "escape_label" `Quick test_expose_escape_label;
          Alcotest.test_case "histogram buckets" `Quick
            test_expose_histogram_exposition;
          Alcotest.test_case "trace exemplar gauge" `Quick
            test_expose_exemplar_gauge;
          Alcotest.test_case "check rejects malformed" `Quick
            test_expose_check_rejects_malformed;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span-tree conservation" `Quick test_trace_check;
          Alcotest.test_case "tail-based retention" `Quick
            test_trace_retention;
          Alcotest.test_case "exemplars resolve retained" `Quick
            test_trace_exemplars;
          Alcotest.test_case "chrome replica lanes" `Quick
            test_trace_chrome_lanes;
          Alcotest.test_case "dump round-trip" `Quick test_trace_dump;
          Alcotest.test_case "survives dense-lane wrap" `Quick
            test_trace_survives_dense_wrap;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "emit/decode" `Quick test_recorder_emit_decode;
          Alcotest.test_case "kill switch" `Quick test_recorder_kill_switch;
          Alcotest.test_case "ring wrap" `Quick test_recorder_wrap;
          Alcotest.test_case "trace json" `Quick test_recorder_trace_json;
          Alcotest.test_case "post-mortem dump" `Quick
            test_recorder_post_mortem;
          Alcotest.test_case "emit allocates nothing" `Quick
            test_recorder_emit_no_alloc;
        ] );
      ( "counter",
        [ Alcotest.test_case "cross-domain" `Quick test_counter_cross_domain ]
      );
      ( "histogram",
        [
          Alcotest.test_case "observe/quantile" `Quick test_histogram_basic;
          Alcotest.test_case "empty/reset" `Quick
            test_histogram_empty_and_reset;
          Alcotest.test_case "merge across domains" `Quick
            test_histogram_merge_across_domains;
        ] );
      ( "json-check",
        [
          Alcotest.test_case "rejects malformed" `Quick
            test_json_check_rejects_malformed;
        ] );
      ( "registry",
        [
          Alcotest.test_case "kernel stats" `Quick test_registry_kernel_stats;
          Alcotest.test_case "predictions" `Quick test_registry_predictions;
          Alcotest.test_case "reset" `Quick test_registry_reset;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace json" `Quick test_chrome_trace_json;
          Alcotest.test_case "report json" `Quick test_report_json;
          Alcotest.test_case "roofline" `Quick test_roofline;
        ] );
    ]

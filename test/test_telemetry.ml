(* Tests for lib/telemetry: monotonic clock, spans, atomic counters across
   domains, registry aggregation, report/Chrome-trace JSON well-formedness. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let reset_on () =
  Telemetry.Registry.reset ();
  Telemetry.Registry.enable ()

let off () = Telemetry.Registry.disable ()

(* ---- clock ---- *)

let test_clock_monotonic () =
  let a = Telemetry.Clock.now_ns () in
  let b = Telemetry.Clock.now_ns () in
  ignore (Sys.opaque_identity (Array.init 1000 Fun.id));
  let c = Telemetry.Clock.now_ns () in
  checkb "b >= a" true (Int64.compare b a >= 0);
  checkb "c >= b" true (Int64.compare c b >= 0);
  let x, dt = Telemetry.Clock.time (fun () -> 42) in
  checki "time result" 42 x;
  checkb "time non-negative" true (dt >= 0.0)

(* ---- spans ---- *)

let test_span_disabled_records_nothing () =
  Telemetry.Registry.reset ();
  off ();
  Telemetry.Span.record ~name:"ghost" ~start_ns:0L ~dur_ns:1L ();
  let r = Telemetry.Span.with_span "ghost2" (fun () -> 7) in
  checki "with_span passthrough" 7 r;
  checki "nothing recorded while disabled" 0 (Telemetry.Span.count ())

let test_span_nesting () =
  reset_on ();
  let r =
    Telemetry.Span.with_span "outer" (fun () ->
        Telemetry.Span.with_span "inner" (fun () -> 3) + 1)
  in
  off ();
  checki "result" 4 r;
  match Telemetry.Span.all () with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer first by start" "outer" outer.Telemetry.Span.name;
    Alcotest.(check string) "inner second" "inner" inner.Telemetry.Span.name;
    let open Int64 in
    let o_end = add outer.Telemetry.Span.start_ns outer.Telemetry.Span.dur_ns in
    let i_end = add inner.Telemetry.Span.start_ns inner.Telemetry.Span.dur_ns in
    checkb "inner starts after outer" true
      (compare inner.Telemetry.Span.start_ns outer.Telemetry.Span.start_ns >= 0);
    checkb "inner contained in outer" true (compare i_end o_end <= 0)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_still_recorded () =
  reset_on ();
  (try Telemetry.Span.with_span "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  off ();
  checki "span recorded despite exception" 1 (Telemetry.Span.count ())

(* ---- counters across domains ---- *)

let test_counter_cross_domain () =
  Telemetry.Counter.reset_all ();
  let c = Telemetry.Counter.find_or_create "test.cross_domain" in
  let worker () =
    let mine = Telemetry.Counter.find_or_create "test.cross_domain" in
    for _ = 1 to 1000 do
      Telemetry.Counter.incr mine
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  worker ();
  Domain.join d1;
  Domain.join d2;
  checki "3 x 1000 increments aggregated" 3000 (Telemetry.Counter.get c);
  checki "value by name" 3000 (Telemetry.Counter.value "test.cross_domain");
  Telemetry.Counter.reset_all ();
  checki "reset zeroes but keeps identity" 0 (Telemetry.Counter.get c)

(* ---- registry ---- *)

let test_registry_kernel_stats () =
  reset_on ();
  Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:"t" ~flops:2e9
    ~bytes:1e9 ~seconds:0.5;
  Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:"t" ~flops:2e9
    ~bytes:1e9 ~seconds:0.5;
  off ();
  match Telemetry.Registry.kernel_stats () with
  | [ s ] ->
    checki "invocations aggregated" 2 s.Telemetry.Registry.invocations;
    Alcotest.(check (float 1e-6)) "gflops" 4.0 (Telemetry.Registry.gflops s);
    Alcotest.(check (float 1e-6)) "ai" 2.0
      (Telemetry.Registry.arithmetic_intensity s)
  | l -> Alcotest.failf "expected 1 stat, got %d" (List.length l)

let test_registry_predictions () =
  reset_on ();
  Telemetry.Registry.record_prediction ~name:"p" ~predicted_gflops:120.0
    ~measured_gflops:100.0;
  off ();
  match Telemetry.Registry.predictions () with
  | [ p ] ->
    Alcotest.(check (float 1e-9)) "signed deviation" 0.2
      (Telemetry.Registry.deviation p);
    Alcotest.(check (float 1e-9)) "mean abs deviation" 0.2
      (Telemetry.Registry.mean_abs_deviation [ p ])
  | l -> Alcotest.failf "expected 1 prediction, got %d" (List.length l)

let test_registry_reset () =
  reset_on ();
  Telemetry.Span.record ~name:"s" ~start_ns:0L ~dur_ns:1L ();
  Telemetry.Registry.record_kernel ~kind:"k" ~instance:"i" ~flops:1.0
    ~bytes:1.0 ~seconds:1.0;
  Telemetry.Registry.record_prediction ~name:"p" ~predicted_gflops:1.0
    ~measured_gflops:1.0;
  Telemetry.Counter.incr (Telemetry.Counter.find_or_create "test.reset");
  Telemetry.Registry.reset ();
  off ();
  checki "spans cleared" 0 (Telemetry.Span.count ());
  checki "kernels cleared" 0
    (List.length (Telemetry.Registry.kernel_stats ()));
  checki "predictions cleared" 0
    (List.length (Telemetry.Registry.predictions ()));
  checki "counters zeroed" 0 (Telemetry.Counter.value "test.reset")

(* ---- JSON well-formedness (minimal parser, no external deps) ---- *)

exception Bad_json of string

let parse_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> fail "object"
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          elems ()
        | Some ']' -> incr pos
        | _ -> fail "array"
      in
      elems ()
    end
  and string_lit () =
    expect '"';
    let rec chars () =
      match peek () with
      | Some '"' -> incr pos
      | Some '\\' ->
        incr pos;
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> incr pos
        | Some 'u' ->
          incr pos;
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> incr pos
            | _ -> fail "unicode escape"
          done
        | _ -> fail "escape");
        chars ()
      | Some c when Char.code c >= 0x20 ->
        incr pos;
        chars ()
      | _ -> fail "string"
    in
    chars ()
  and keyword () =
    let ok kw =
      let l = String.length kw in
      if !pos + l <= n && String.sub s !pos l = kw then (
        pos := !pos + l;
        true)
      else false
    in
    if not (ok "true" || ok "false" || ok "null") then fail "keyword"
  and number () =
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "number"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_chrome_trace_json () =
  reset_on ();
  Telemetry.Span.record ~cat:"loop" ~tid:0 ~name:"sp\"an\\1"
    ~args:[ ("nthreads", 2.0) ] ~start_ns:1000L ~dur_ns:5000L ();
  Telemetry.Span.record ~cat:"loop" ~tid:1 ~name:"span2" ~start_ns:2000L
    ~dur_ns:3000L ();
  Telemetry.Span.record ~name:"main-span" ~start_ns:500L ~dur_ns:9000L ();
  off ();
  let s = Telemetry.Chrome_trace.to_string () in
  (try parse_json s with Bad_json m -> Alcotest.failf "invalid JSON: %s" m);
  checkb "has traceEvents" true (contains ~needle:"\"traceEvents\"" s);
  checkb "has complete events" true (contains ~needle:"\"ph\":\"X\"" s);
  checkb "names worker thread" true (contains ~needle:"worker-1" s);
  checkb "names main thread" true (contains ~needle:"\"main\"" s);
  checkb "escapes span names" true (contains ~needle:"sp\\\"an\\\\1" s)

let test_report_json () =
  reset_on ();
  Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:"256^3 f32 BCa"
    ~flops:33.5e6 ~bytes:1.05e6 ~seconds:1.0e-3;
  Telemetry.Registry.record_prediction ~name:"gemm 256" ~predicted_gflops:50.0
    ~measured_gflops:40.0;
  off ();
  let j = Telemetry.Report.to_json ~peak_gflops:100.0 ~mem_bw_gbs:50.0 () in
  (try parse_json j with Bad_json m -> Alcotest.failf "invalid JSON: %s" m);
  checkb "kernels in json" true (contains ~needle:"\"kernels\"" j);
  checkb "predictions in json" true (contains ~needle:"\"predictions\"" j);
  let txt = Telemetry.Report.summary ~peak_gflops:100.0 ~mem_bw_gbs:50.0 () in
  checkb "summary names kernel" true (contains ~needle:"256^3 f32 BCa" txt)

let test_roofline () =
  Alcotest.(check (float 1e-9))
    "bandwidth bound" 5.0
    (Telemetry.Report.roofline ~peak_gflops:100.0 ~mem_bw_gbs:50.0 0.1);
  Alcotest.(check (float 1e-9))
    "compute bound" 100.0
    (Telemetry.Report.roofline ~peak_gflops:100.0 ~mem_bw_gbs:50.0 1000.0)

let () =
  Alcotest.run "telemetry"
    [
      ("clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ]);
      ( "span",
        [
          Alcotest.test_case "disabled" `Quick test_span_disabled_records_nothing;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception" `Quick
            test_span_exception_still_recorded;
        ] );
      ( "counter",
        [ Alcotest.test_case "cross-domain" `Quick test_counter_cross_domain ]
      );
      ( "registry",
        [
          Alcotest.test_case "kernel stats" `Quick test_registry_kernel_stats;
          Alcotest.test_case "predictions" `Quick test_registry_predictions;
          Alcotest.test_case "reset" `Quick test_registry_reset;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace json" `Quick test_chrome_trace_json;
          Alcotest.test_case "report json" `Quick test_report_json;
          Alcotest.test_case "roofline" `Quick test_roofline;
        ] );
    ]

(* Tests for lib/telemetry: monotonic clock, spans, atomic counters across
   domains, registry aggregation, report/Chrome-trace JSON well-formedness. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let reset_on () =
  Telemetry.Registry.reset ();
  Telemetry.Registry.enable ()

let off () = Telemetry.Registry.disable ()

(* ---- clock ---- *)

let test_clock_monotonic () =
  let a = Telemetry.Clock.now_ns () in
  let b = Telemetry.Clock.now_ns () in
  ignore (Sys.opaque_identity (Array.init 1000 Fun.id));
  let c = Telemetry.Clock.now_ns () in
  checkb "b >= a" true (Int64.compare b a >= 0);
  checkb "c >= b" true (Int64.compare c b >= 0);
  let x, dt = Telemetry.Clock.time (fun () -> 42) in
  checki "time result" 42 x;
  checkb "time non-negative" true (dt >= 0.0)

(* ---- spans ---- *)

let test_span_disabled_records_nothing () =
  Telemetry.Registry.reset ();
  off ();
  Telemetry.Span.record ~name:"ghost" ~start_ns:0L ~dur_ns:1L ();
  let r = Telemetry.Span.with_span "ghost2" (fun () -> 7) in
  checki "with_span passthrough" 7 r;
  checki "nothing recorded while disabled" 0 (Telemetry.Span.count ())

let test_span_nesting () =
  reset_on ();
  let r =
    Telemetry.Span.with_span "outer" (fun () ->
        Telemetry.Span.with_span "inner" (fun () -> 3) + 1)
  in
  off ();
  checki "result" 4 r;
  match Telemetry.Span.all () with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer first by start" "outer" outer.Telemetry.Span.name;
    Alcotest.(check string) "inner second" "inner" inner.Telemetry.Span.name;
    let open Int64 in
    let o_end = add outer.Telemetry.Span.start_ns outer.Telemetry.Span.dur_ns in
    let i_end = add inner.Telemetry.Span.start_ns inner.Telemetry.Span.dur_ns in
    checkb "inner starts after outer" true
      (compare inner.Telemetry.Span.start_ns outer.Telemetry.Span.start_ns >= 0);
    checkb "inner contained in outer" true (compare i_end o_end <= 0)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_still_recorded () =
  reset_on ();
  (try Telemetry.Span.with_span "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  off ();
  checki "span recorded despite exception" 1 (Telemetry.Span.count ())

(* ---- counters across domains ---- *)

let test_counter_cross_domain () =
  Telemetry.Counter.reset_all ();
  let c = Telemetry.Counter.find_or_create "test.cross_domain" in
  let worker () =
    let mine = Telemetry.Counter.find_or_create "test.cross_domain" in
    for _ = 1 to 1000 do
      Telemetry.Counter.incr mine
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  worker ();
  Domain.join d1;
  Domain.join d2;
  checki "3 x 1000 increments aggregated" 3000 (Telemetry.Counter.get c);
  checki "value by name" 3000 (Telemetry.Counter.value "test.cross_domain");
  Telemetry.Counter.reset_all ();
  checki "reset zeroes but keeps identity" 0 (Telemetry.Counter.get c)

(* ---- registry ---- *)

let test_registry_kernel_stats () =
  reset_on ();
  Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:"t" ~flops:2e9
    ~bytes:1e9 ~seconds:0.5;
  Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:"t" ~flops:2e9
    ~bytes:1e9 ~seconds:0.5;
  off ();
  match Telemetry.Registry.kernel_stats () with
  | [ s ] ->
    checki "invocations aggregated" 2 s.Telemetry.Registry.invocations;
    Alcotest.(check (float 1e-6)) "gflops" 4.0 (Telemetry.Registry.gflops s);
    Alcotest.(check (float 1e-6)) "ai" 2.0
      (Telemetry.Registry.arithmetic_intensity s)
  | l -> Alcotest.failf "expected 1 stat, got %d" (List.length l)

let test_registry_predictions () =
  reset_on ();
  Telemetry.Registry.record_prediction ~name:"p" ~predicted_gflops:120.0
    ~measured_gflops:100.0;
  off ();
  match Telemetry.Registry.predictions () with
  | [ p ] ->
    Alcotest.(check (float 1e-9)) "signed deviation" 0.2
      (Telemetry.Registry.deviation p);
    Alcotest.(check (float 1e-9)) "mean abs deviation" 0.2
      (Telemetry.Registry.mean_abs_deviation [ p ])
  | l -> Alcotest.failf "expected 1 prediction, got %d" (List.length l)

let test_registry_reset () =
  reset_on ();
  Telemetry.Span.record ~name:"s" ~start_ns:0L ~dur_ns:1L ();
  Telemetry.Registry.record_kernel ~kind:"k" ~instance:"i" ~flops:1.0
    ~bytes:1.0 ~seconds:1.0;
  Telemetry.Registry.record_prediction ~name:"p" ~predicted_gflops:1.0
    ~measured_gflops:1.0;
  Telemetry.Counter.incr (Telemetry.Counter.find_or_create "test.reset");
  Telemetry.Registry.reset ();
  off ();
  checki "spans cleared" 0 (Telemetry.Span.count ());
  checki "kernels cleared" 0
    (List.length (Telemetry.Registry.kernel_stats ()));
  checki "predictions cleared" 0
    (List.length (Telemetry.Registry.predictions ()));
  checki "counters zeroed" 0 (Telemetry.Counter.value "test.reset")

(* ---- histograms ---- *)

let test_histogram_basic () =
  Telemetry.Histogram.reset_all ();
  let h = Telemetry.Histogram.find_or_create "test.hist.basic" in
  checkb "same name, same histogram" true
    (h == Telemetry.Histogram.find_or_create "test.hist.basic");
  for i = 1 to 1000 do
    Telemetry.Histogram.observe h (float_of_int i)
  done;
  checki "count" 1000 (Telemetry.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" 500500.0 (Telemetry.Histogram.sum h);
  Alcotest.(check (float 1e-6)) "min exact" 1.0
    (Telemetry.Histogram.min_value h);
  Alcotest.(check (float 1e-6)) "max exact" 1000.0
    (Telemetry.Histogram.max_value h);
  (* log buckets: quantiles within ~9% relative error *)
  let q50 = Telemetry.Histogram.quantile h 0.5 in
  checkb "p50 within bucket resolution"
    true
    (Float.abs (q50 -. 500.0) /. 500.0 < 0.10);
  let q0 = Telemetry.Histogram.quantile h 0.0 in
  let q100 = Telemetry.Histogram.quantile h 1.0 in
  checkb "q0 clamped to observed min" true (q0 >= 1.0);
  checkb "q1 clamped to observed max" true (q100 <= 1000.0);
  checkb "quantiles monotone" true (q0 <= q50 && q50 <= q100)

let test_histogram_empty_and_reset () =
  Telemetry.Histogram.reset_all ();
  let h = Telemetry.Histogram.find_or_create "test.hist.empty" in
  checki "empty count" 0 (Telemetry.Histogram.count h);
  checkb "empty mean is nan" true (Float.is_nan (Telemetry.Histogram.mean h));
  checkb "empty quantile is nan" true
    (Float.is_nan (Telemetry.Histogram.quantile h 0.5));
  Telemetry.Histogram.observe h 3.0;
  Telemetry.Histogram.reset h;
  checki "reset zeroes but keeps identity" 0 (Telemetry.Histogram.count h);
  checkb "registry reset clears histograms" true
    (Telemetry.Histogram.observe h 1.0;
     Telemetry.Registry.reset ();
     Telemetry.Histogram.count h = 0)

let test_histogram_merge_across_domains () =
  Telemetry.Histogram.reset_all ();
  let into = Telemetry.Histogram.find_or_create "test.hist.merged" in
  (* per-domain shards observed concurrently, then merged *)
  let shard i =
    let h =
      Telemetry.Histogram.find_or_create
        (Printf.sprintf "test.hist.shard%d" i)
    in
    for v = 1 to 500 do
      Telemetry.Histogram.observe h (float_of_int v)
    done;
    h
  in
  let d1 = Domain.spawn (fun () -> shard 1) in
  let d2 = Domain.spawn (fun () -> shard 2) in
  let h1 = Domain.join d1 and h2 = Domain.join d2 in
  Telemetry.Histogram.merge_into h1 ~into;
  Telemetry.Histogram.merge_into h2 ~into;
  checki "merged count" 1000 (Telemetry.Histogram.count into);
  Alcotest.(check (float 1e-6)) "merged sum" 250500.0
    (Telemetry.Histogram.sum into);
  Alcotest.(check (float 1e-6)) "merged max" 500.0
    (Telemetry.Histogram.max_value into);
  let q50 = Telemetry.Histogram.quantile into 0.5 in
  checkb "merged p50 sane" true (Float.abs (q50 -. 250.0) /. 250.0 < 0.10)

(* ---- JSON well-formedness (validator lives in Telemetry.Json_check) ---- *)

let parse_json s = Telemetry.Json_check.validate s

let test_json_check_rejects_malformed () =
  let bad =
    [ "{"; "{\"a\":1,}"; "[1 2]"; "\"unterminated"; "{\"a\":01x}"; "{} {}" ]
  in
  List.iter
    (fun s ->
      match Telemetry.Json_check.check s with
      | Ok () -> Alcotest.failf "accepted malformed JSON: %s" s
      | Error _ -> ())
    bad;
  List.iter
    (fun s ->
      match Telemetry.Json_check.check s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "rejected valid JSON %s: %s" s m)
    [ "{}"; "[]"; "{\"a\":[1,2.5,-3e4,true,false,null,\"s\\n\"]}" ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_chrome_trace_json () =
  reset_on ();
  Telemetry.Span.record ~cat:"loop" ~tid:0 ~name:"sp\"an\\1"
    ~args:[ ("nthreads", 2.0) ] ~start_ns:1000L ~dur_ns:5000L ();
  Telemetry.Span.record ~cat:"loop" ~tid:1 ~name:"span2" ~start_ns:2000L
    ~dur_ns:3000L ();
  Telemetry.Span.record ~name:"main-span" ~start_ns:500L ~dur_ns:9000L ();
  off ();
  let s = Telemetry.Chrome_trace.to_string () in
  (try parse_json s with
  | Telemetry.Json_check.Bad_json m -> Alcotest.failf "invalid JSON: %s" m);
  checkb "has traceEvents" true (contains ~needle:"\"traceEvents\"" s);
  checkb "has complete events" true (contains ~needle:"\"ph\":\"X\"" s);
  checkb "names worker thread" true (contains ~needle:"worker-1" s);
  checkb "names main thread" true (contains ~needle:"\"main\"" s);
  checkb "escapes span names" true (contains ~needle:"sp\\\"an\\\\1" s)

let test_report_json () =
  reset_on ();
  Telemetry.Registry.record_kernel ~kind:"gemm" ~instance:"256^3 f32 BCa"
    ~flops:33.5e6 ~bytes:1.05e6 ~seconds:1.0e-3;
  Telemetry.Registry.record_prediction ~name:"gemm 256" ~predicted_gflops:50.0
    ~measured_gflops:40.0;
  Telemetry.Histogram.observe
    (Telemetry.Histogram.find_or_create "test.report.lat_ms")
    1.5;
  off ();
  let j = Telemetry.Report.to_json ~peak_gflops:100.0 ~mem_bw_gbs:50.0 () in
  (try parse_json j with
  | Telemetry.Json_check.Bad_json m -> Alcotest.failf "invalid JSON: %s" m);
  checkb "kernels in json" true (contains ~needle:"\"kernels\"" j);
  checkb "predictions in json" true (contains ~needle:"\"predictions\"" j);
  checkb "histograms in json" true (contains ~needle:"\"histograms\"" j);
  checkb "histogram named in json" true
    (contains ~needle:"test.report.lat_ms" j);
  let txt = Telemetry.Report.summary ~peak_gflops:100.0 ~mem_bw_gbs:50.0 () in
  checkb "summary names kernel" true (contains ~needle:"256^3 f32 BCa" txt)

let test_roofline () =
  Alcotest.(check (float 1e-9))
    "bandwidth bound" 5.0
    (Telemetry.Report.roofline ~peak_gflops:100.0 ~mem_bw_gbs:50.0 0.1);
  Alcotest.(check (float 1e-9))
    "compute bound" 100.0
    (Telemetry.Report.roofline ~peak_gflops:100.0 ~mem_bw_gbs:50.0 1000.0)

let () =
  Alcotest.run "telemetry"
    [
      ("clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ]);
      ( "span",
        [
          Alcotest.test_case "disabled" `Quick test_span_disabled_records_nothing;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception" `Quick
            test_span_exception_still_recorded;
        ] );
      ( "counter",
        [ Alcotest.test_case "cross-domain" `Quick test_counter_cross_domain ]
      );
      ( "histogram",
        [
          Alcotest.test_case "observe/quantile" `Quick test_histogram_basic;
          Alcotest.test_case "empty/reset" `Quick
            test_histogram_empty_and_reset;
          Alcotest.test_case "merge across domains" `Quick
            test_histogram_merge_across_domains;
        ] );
      ( "json-check",
        [
          Alcotest.test_case "rejects malformed" `Quick
            test_json_check_rejects_malformed;
        ] );
      ( "registry",
        [
          Alcotest.test_case "kernel stats" `Quick test_registry_kernel_stats;
          Alcotest.test_case "predictions" `Quick test_registry_predictions;
          Alcotest.test_case "reset" `Quick test_registry_reset;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace json" `Quick test_chrome_trace_json;
          Alcotest.test_case "report json" `Quick test_report_json;
          Alcotest.test_case "roofline" `Quick test_roofline;
        ] );
    ]

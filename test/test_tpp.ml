(* Tests for the TPP backend: unary/binary ops, BRGEMM, SpMM, composite
   blocks and the dispatch cache. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-5)) msg
let qt t = QCheck_alcotest.to_alcotest t

let tensor_of rows cols f =
  Tensor.init Datatype.F32 [| rows; cols |] (fun i -> f i.(0) i.(1))

let random_tensor ?(dtype = Datatype.F32) rng rows cols =
  let t = Tensor.create dtype [| rows; cols |] in
  Tensor.fill_random t rng ~scale:1.0;
  t

(* ---- unary ---- *)

let test_unary_pointwise () =
  let rng = Prng.create 1 in
  let x = random_tensor rng 4 5 in
  let check_op op f name =
    let y = Tensor.create Datatype.F32 [| 4; 5 |] in
    Tpp_unary.exec op ~inp:(Tensor.view2d x) ~out:(Tensor.view2d y);
    for i = 0 to 19 do
      Alcotest.(check (float 1e-6))
        name
        (f (Tensor.get_flat x i))
        (Tensor.get_flat y i)
    done
  in
  check_op Tpp_unary.Relu Reference.relu "relu";
  check_op Tpp_unary.Gelu Reference.gelu "gelu";
  check_op Tpp_unary.Sigmoid Reference.sigmoid "sigmoid";
  check_op Tpp_unary.Tanh tanh "tanh";
  check_op Tpp_unary.Square (fun v -> v *. v) "square";
  check_op Tpp_unary.Negate (fun v -> -.v) "negate";
  check_op Tpp_unary.Abs Float.abs "abs";
  check_op (Tpp_unary.Scale 2.5) (fun v -> 2.5 *. v) "scale";
  check_op (Tpp_unary.Shift (-1.0)) (fun v -> v -. 1.0) "shift";
  check_op Tpp_unary.Copy Fun.id "copy"

let test_unary_zero () =
  let y = tensor_of 3 3 (fun _ _ -> 7.0) in
  Tpp_unary.exec Tpp_unary.Zero ~inp:(Tensor.view2d y) ~out:(Tensor.view2d y);
  checkb "zeroed" true (List.for_all (( = ) 0.0) (Tensor.to_list y))

let test_relu_backward () =
  let g = tensor_of 2 2 (fun i j -> float_of_int ((i * 2) + j + 1)) in
  let x = tensor_of 2 2 (fun i j -> if (i + j) mod 2 = 0 then 1.0 else -1.0) in
  let dx = Tensor.create Datatype.F32 [| 2; 2 |] in
  Tpp_unary.exec2 Tpp_unary.Relu_backward ~inp:(Tensor.view2d g)
    ~aux:(Tensor.view2d x) ~out:(Tensor.view2d dx);
  checkf "passes where x>0" 1.0 (Tensor.get dx [| 0; 0 |]);
  checkf "blocks where x<=0" 0.0 (Tensor.get dx [| 0; 1 |])

let test_gelu_backward_finite_diff () =
  let xs = [ -2.0; -0.5; 0.0; 0.7; 1.9 ] in
  List.iter
    (fun x ->
      let g = tensor_of 1 1 (fun _ _ -> 1.0) in
      let xv = tensor_of 1 1 (fun _ _ -> x) in
      let dx = Tensor.create Datatype.F32 [| 1; 1 |] in
      Tpp_unary.exec2 Tpp_unary.Gelu_backward ~inp:(Tensor.view2d g)
        ~aux:(Tensor.view2d xv) ~out:(Tensor.view2d dx);
      let h = 1e-4 in
      let fd = (Reference.gelu (x +. h) -. Reference.gelu (x -. h)) /. (2. *. h) in
      Alcotest.(check (float 1e-3)) "gelu grad" fd (Tensor.get_flat dx 0))
    xs

let test_reduce () =
  let x = tensor_of 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let rs = Tensor.create Datatype.F32 [| 2; 1 |] in
  Tpp_unary.reduce Tpp_unary.Sum Tpp_unary.Rows ~inp:(Tensor.view2d x)
    ~out:(Tensor.view2d rs);
  checkf "row sum 0" 3.0 (Tensor.get rs [| 0; 0 |]);
  checkf "row sum 1" 12.0 (Tensor.get rs [| 1; 0 |]);
  let cs = Tensor.create Datatype.F32 [| 1; 3 |] in
  Tpp_unary.reduce Tpp_unary.Max Tpp_unary.Cols ~inp:(Tensor.view2d x)
    ~out:(Tensor.view2d cs);
  checkf "col max" 5.0 (Tensor.get cs [| 0; 2 |])

let test_transpose () =
  let x = tensor_of 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let y = Tensor.create Datatype.F32 [| 3; 2 |] in
  Tpp_unary.transpose ~inp:(Tensor.view2d x) ~out:(Tensor.view2d y);
  checkf "transposed" (Tensor.get x [| 1; 2 |]) (Tensor.get y [| 2; 1 |])

let test_broadcasts () =
  let row = tensor_of 1 3 (fun _ j -> float_of_int j) in
  let out = Tensor.create Datatype.F32 [| 2; 3 |] in
  Tpp_unary.broadcast_row ~inp:(Tensor.view2d row) ~out:(Tensor.view2d out);
  checkf "row bcast" 2.0 (Tensor.get out [| 1; 2 |]);
  let col = tensor_of 2 1 (fun i _ -> float_of_int (10 * i)) in
  Tpp_unary.broadcast_col ~inp:(Tensor.view2d col) ~out:(Tensor.view2d out);
  checkf "col bcast" 10.0 (Tensor.get out [| 1; 2 |])

(* ---- binary ---- *)

let test_binary_full () =
  let a = tensor_of 2 2 (fun i j -> float_of_int ((i * 2) + j)) in
  let b = tensor_of 2 2 (fun _ _ -> 2.0) in
  let out = Tensor.create Datatype.F32 [| 2; 2 |] in
  let run op =
    Tpp_binary.exec op ~bcast:Tpp_binary.Full ~a:(Tensor.view2d a)
      ~b:(Tensor.view2d b) ~out:(Tensor.view2d out)
  in
  run Tpp_binary.Add;
  checkf "add" 5.0 (Tensor.get out [| 1; 1 |]);
  run Tpp_binary.Mul;
  checkf "mul" 6.0 (Tensor.get out [| 1; 1 |]);
  run Tpp_binary.Sub;
  checkf "sub" 1.0 (Tensor.get out [| 1; 1 |]);
  run Tpp_binary.Div;
  checkf "div" 1.5 (Tensor.get out [| 1; 1 |]);
  run Tpp_binary.Max;
  checkf "max" 3.0 (Tensor.get out [| 1; 1 |]);
  run Tpp_binary.Min;
  checkf "min" 2.0 (Tensor.get out [| 1; 1 |])

let test_binary_broadcast_row_col () =
  let a = tensor_of 2 3 (fun _ _ -> 0.0) in
  let out = Tensor.create Datatype.F32 [| 2; 3 |] in
  let row = tensor_of 1 3 (fun _ j -> float_of_int j) in
  Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Row ~a:(Tensor.view2d a)
    ~b:(Tensor.view2d row) ~out:(Tensor.view2d out);
  checkf "row bias" 2.0 (Tensor.get out [| 1; 2 |]);
  let col = tensor_of 2 1 (fun i _ -> float_of_int (i + 1)) in
  Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Col ~a:(Tensor.view2d a)
    ~b:(Tensor.view2d col) ~out:(Tensor.view2d out);
  checkf "col bias" 2.0 (Tensor.get out [| 1; 0 |]);
  let s = tensor_of 1 1 (fun _ _ -> 9.0) in
  Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Scalar ~a:(Tensor.view2d a)
    ~b:(Tensor.view2d s) ~out:(Tensor.view2d out);
  checkf "scalar" 9.0 (Tensor.get out [| 0; 0 |])

let test_muladd_axpy () =
  let a = tensor_of 2 2 (fun _ _ -> 2.0) in
  let b = tensor_of 2 2 (fun _ _ -> 3.0) in
  let c = tensor_of 2 2 (fun _ _ -> 1.0) in
  let out = Tensor.create Datatype.F32 [| 2; 2 |] in
  Tpp_binary.muladd ~a:(Tensor.view2d a) ~b:(Tensor.view2d b)
    ~c:(Tensor.view2d c) ~out:(Tensor.view2d out);
  checkf "muladd" 7.0 (Tensor.get out [| 0; 0 |]);
  Tpp_binary.axpy ~alpha:0.5 ~a:(Tensor.view2d a) ~out:(Tensor.view2d out);
  checkf "axpy" 8.0 (Tensor.get out [| 0; 0 |])

(* ---- brgemm ---- *)

let test_brgemm_single () =
  let rng = Prng.create 2 in
  let a = random_tensor rng 8 6 and b = random_tensor rng 6 10 in
  let c = Tensor.create Datatype.F32 [| 8; 10 |] in
  let ker = Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:8 ~n:10 ~k:6 ()) in
  Brgemm.exec ker ~a:(Tensor.view2d a) ~b:(Tensor.view2d b)
    ~c:(Tensor.view2d c);
  let expect = Reference.matmul a b in
  checkb "single gemm" true (Tensor.approx_equal ~tol:1e-5 c expect)

let test_brgemm_beta1_accumulates () =
  let rng = Prng.create 3 in
  let a = random_tensor rng 4 4 and b = random_tensor rng 4 4 in
  let c = tensor_of 4 4 (fun _ _ -> 1.0) in
  let ker = Brgemm.compile (Brgemm.make_config ~beta:1.0 ~m:4 ~n:4 ~k:4 ()) in
  Brgemm.exec ker ~a:(Tensor.view2d a) ~b:(Tensor.view2d b)
    ~c:(Tensor.view2d c);
  let expect = Reference.matmul a b in
  checkf "accumulated" (1.0 +. Tensor.get expect [| 2; 2 |]) (Tensor.get c [| 2; 2 |])

let test_brgemm_stride_batch () =
  (* sum of 3 chunked products == full K product *)
  let rng = Prng.create 4 in
  let a = random_tensor rng 4 12 and b = random_tensor rng 12 5 in
  let c = Tensor.create Datatype.F32 [| 4; 5 |] in
  let ker = Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:4 ~n:5 ~k:4 ()) in
  (* A chunks at column offsets 0,4,8; B chunks at row offsets 0,4,8 *)
  Brgemm.exec_stride ker ~a:(Tensor.view2d a) ~b:(Tensor.view2d b)
    ~c:(Tensor.view2d c) ~stride_a:4 ~stride_b:(4 * 5) ~count:3;
  checkb "batched = full" true
    (Tensor.approx_equal ~tol:1e-5 c (Reference.matmul a b))

let test_brgemm_offsets () =
  let rng = Prng.create 5 in
  let a = random_tensor rng 4 8 and b = random_tensor rng 8 5 in
  let c = Tensor.create Datatype.F32 [| 4; 5 |] in
  let ker = Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:4 ~n:5 ~k:4 ()) in
  Brgemm.exec_offsets ker ~a:(Tensor.view2d a) ~b:(Tensor.view2d b)
    ~c:(Tensor.view2d c) ~offs_a:[| 0; 4 |] ~offs_b:[| 0; 20 |];
  checkb "offsets = full" true
    (Tensor.approx_equal ~tol:1e-5 c (Reference.matmul a b))

let test_brgemm_list () =
  let rng = Prng.create 6 in
  let a1 = random_tensor rng 3 4 and b1 = random_tensor rng 4 3 in
  let a2 = random_tensor rng 3 4 and b2 = random_tensor rng 4 3 in
  let c = Tensor.create Datatype.F32 [| 3; 3 |] in
  let ker = Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:3 ~n:3 ~k:4 ()) in
  Brgemm.exec_list ker
    ~ab:[ (Tensor.view2d a1, Tensor.view2d b1);
          (Tensor.view2d a2, Tensor.view2d b2) ]
    ~c:(Tensor.view2d c);
  let e1 = Reference.matmul a1 b1 and e2 = Reference.matmul a2 b2 in
  checkf "list sum" (Tensor.get e1 [| 1; 1 |] +. Tensor.get e2 [| 1; 1 |])
    (Tensor.get c [| 1; 1 |])

let test_brgemm_vnni () =
  let rng = Prng.create 7 in
  let a = random_tensor ~dtype:Datatype.BF16 rng 4 6 in
  let b = random_tensor ~dtype:Datatype.BF16 rng 6 5 in
  let bp = Vnni.pack b in
  let c = Tensor.create Datatype.F32 [| 4; 5 |] in
  let ker =
    Brgemm.compile
      (Brgemm.make_config ~dtype:Datatype.BF16 ~b_layout:Brgemm.Vnni ~beta:0.0
         ~m:4 ~n:5 ~k:6 ())
  in
  let bv = Tensor.view_flat bp ~off:0 ~rows:3 ~cols:10 ~ld:10 in
  Brgemm.exec ker ~a:(Tensor.view2d a) ~b:bv ~c:(Tensor.view2d c);
  checkb "vnni matches flat" true
    (Tensor.approx_equal ~tol:1e-5 c (Reference.matmul a b))

let prop_brgemm_matches_reference =
  QCheck.Test.make ~name:"brgemm == naive matmul (random shapes)" ~count:40
    QCheck.(triple (int_range 1 12) (int_range 1 12) (int_range 1 12))
    (fun (m, n, k) ->
      let rng = Prng.create ((m * 1000) + (n * 50) + k) in
      let a = random_tensor rng m k and b = random_tensor rng k n in
      let c = Tensor.create Datatype.F32 [| m; n |] in
      let ker = Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m ~n ~k ()) in
      Brgemm.exec ker ~a:(Tensor.view2d a) ~b:(Tensor.view2d b)
        ~c:(Tensor.view2d c);
      Tensor.approx_equal ~tol:1e-4 c (Reference.matmul a b))

(* ---- spmm tpp ---- *)

let test_spmm_tpp_block_row () =
  let rng = Prng.create 8 in
  let a =
    Bcsc.random ~rng ~dtype:Datatype.F32 ~rows:16 ~cols:24 ~bm:4 ~bk:8
      ~sparsity:0.4
  in
  let b = random_tensor rng 24 10 in
  let bp = Vnni.pack b in
  let ker = Spmm.compile (Spmm.make_config ~beta:0.0 ~n:10 ~bm:4 ~bk:8 ()) in
  let c = Tensor.create Datatype.F32 [| 4; 10 |] in
  Spmm.exec ker ~a ~block_row:2
    ~b:(Tensor.view_flat bp ~off:0 ~rows:24 ~cols:10 ~ld:10)
    ~col:0 ~c:(Tensor.view2d c);
  let full = Reference.matmul (Bcsc.to_dense a) b in
  let expect =
    Tensor.init Datatype.F32 [| 4; 10 |] (fun i ->
        Tensor.get full [| 8 + i.(0); i.(1) |])
  in
  checkb "block row 2" true (Tensor.approx_equal ~tol:1e-5 c expect)

(* ---- composite blocks ---- *)

let test_softmax_matches_reference () =
  let rng = Prng.create 9 in
  let x = random_tensor rng 5 7 in
  let y = Tensor.create Datatype.F32 [| 5; 7 |] in
  Blocks.softmax_rows ~inp:(Tensor.view2d x) ~out:(Tensor.view2d y);
  checkb "softmax" true
    (Tensor.approx_equal ~tol:1e-5 y (Reference.softmax_rows x))

let prop_softmax_rows_sum_to_one =
  QCheck.Test.make ~name:"softmax rows sum to 1" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 16))
    (fun (r, c) ->
      let rng = Prng.create ((r * 31) + c) in
      let x = random_tensor rng r c in
      let y = Tensor.create Datatype.F32 [| r; c |] in
      Blocks.softmax_rows ~inp:(Tensor.view2d x) ~out:(Tensor.view2d y);
      let ok = ref true in
      for i = 0 to r - 1 do
        let s = ref 0.0 in
        for j = 0 to c - 1 do
          let v = Tensor.get y [| i; j |] in
          if v < 0.0 then ok := false;
          s := !s +. v
        done;
        if Float.abs (!s -. 1.0) > 1e-4 then ok := false
      done;
      !ok)

let test_softmax_backward () =
  (* numeric check of the Jacobian-vector product *)
  let x = tensor_of 1 3 (fun _ j -> float_of_int j *. 0.5) in
  let y = Tensor.create Datatype.F32 [| 1; 3 |] in
  Blocks.softmax_rows ~inp:(Tensor.view2d x) ~out:(Tensor.view2d y);
  let dy = tensor_of 1 3 (fun _ j -> float_of_int (j + 1)) in
  let dx = Tensor.create Datatype.F32 [| 1; 3 |] in
  Blocks.softmax_rows_backward ~y:(Tensor.view2d y) ~dy:(Tensor.view2d dy)
    ~dx:(Tensor.view2d dx);
  let h = 1e-4 in
  for j = 0 to 2 do
    let xp = Tensor.copy x and xm = Tensor.copy x in
    Tensor.set xp [| 0; j |] (Tensor.get x [| 0; j |] +. h);
    Tensor.set xm [| 0; j |] (Tensor.get x [| 0; j |] -. h);
    let fp = Reference.softmax_rows xp and fm = Reference.softmax_rows xm in
    let fd = ref 0.0 in
    for l = 0 to 2 do
      fd :=
        !fd
        +. (Tensor.get dy [| 0; l |]
            *. (Tensor.get fp [| 0; l |] -. Tensor.get fm [| 0; l |])
            /. (2.0 *. h))
    done;
    Alcotest.(check (float 1e-3)) "softmax bwd" !fd (Tensor.get dx [| 0; j |])
  done

let test_layernorm_matches_reference () =
  let rng = Prng.create 10 in
  let x = random_tensor rng 4 8 in
  let gamma = tensor_of 1 8 (fun _ j -> 1.0 +. (0.1 *. float_of_int j)) in
  let beta = tensor_of 1 8 (fun _ j -> 0.05 *. float_of_int j) in
  let y = Tensor.create Datatype.F32 [| 4; 8 |] in
  let _ =
    Blocks.layernorm_rows ~eps:1e-5 ~inp:(Tensor.view2d x)
      ~gamma:(Tensor.view2d gamma) ~beta:(Tensor.view2d beta)
      ~out:(Tensor.view2d y)
  in
  let g = Array.init 8 (fun j -> Tensor.get gamma [| 0; j |]) in
  let b = Array.init 8 (fun j -> Tensor.get beta [| 0; j |]) in
  checkb "layernorm" true
    (Tensor.approx_equal ~tol:1e-4 y (Reference.layernorm_rows ~eps:1e-5 x g b))

let prop_layernorm_normalizes =
  QCheck.Test.make ~name:"layernorm rows: mean 0, var 1 (unit gamma)"
    ~count:30
    QCheck.(pair (int_range 1 6) (int_range 4 24))
    (fun (r, c) ->
      let rng = Prng.create ((r * 77) + c) in
      let x = random_tensor rng r c in
      let gamma = tensor_of 1 c (fun _ _ -> 1.0) in
      let beta = tensor_of 1 c (fun _ _ -> 0.0) in
      let y = Tensor.create Datatype.F32 [| r; c |] in
      let _ =
        Blocks.layernorm_rows ~eps:1e-9 ~inp:(Tensor.view2d x)
          ~gamma:(Tensor.view2d gamma) ~beta:(Tensor.view2d beta)
          ~out:(Tensor.view2d y)
      in
      let ok = ref true in
      for i = 0 to r - 1 do
        let s = ref 0.0 and sq = ref 0.0 in
        for j = 0 to c - 1 do
          let v = Tensor.get y [| i; j |] in
          s := !s +. v;
          sq := !sq +. (v *. v)
        done;
        let mean = !s /. float_of_int c in
        let var = (!sq /. float_of_int c) -. (mean *. mean) in
        if Float.abs mean > 1e-3 then ok := false;
        if c > 1 && Float.abs (var -. 1.0) > 1e-2 then ok := false
      done;
      !ok)

let test_layernorm_backward_finite_diff () =
  let rng = Prng.create 11 in
  let r, c = (2, 6) in
  let x = random_tensor rng r c in
  let gamma = tensor_of 1 c (fun _ j -> 1.0 +. (0.05 *. float_of_int j)) in
  let beta = tensor_of 1 c (fun _ _ -> 0.0) in
  let dy = random_tensor rng r c in
  let y = Tensor.create Datatype.F32 [| r; c |] in
  let stats =
    Blocks.layernorm_rows ~eps:1e-6 ~inp:(Tensor.view2d x)
      ~gamma:(Tensor.view2d gamma) ~beta:(Tensor.view2d beta)
      ~out:(Tensor.view2d y)
  in
  let dx = Tensor.create Datatype.F32 [| r; c |] in
  let dgamma = Tensor.create Datatype.F32 [| 1; c |] in
  let dbeta = Tensor.create Datatype.F32 [| 1; c |] in
  Blocks.layernorm_rows_backward ~stats ~x:(Tensor.view2d x)
    ~gamma:(Tensor.view2d gamma) ~dy:(Tensor.view2d dy) ~dx:(Tensor.view2d dx)
    ~dgamma:(Tensor.view2d dgamma) ~dbeta:(Tensor.view2d dbeta);
  (* finite differences on a few coordinates *)
  let loss xt =
    let g = Array.init c (fun j -> Tensor.get gamma [| 0; j |]) in
    let b = Array.init c (fun j -> Tensor.get beta [| 0; j |]) in
    let yt = Reference.layernorm_rows ~eps:1e-6 xt g b in
    let s = ref 0.0 in
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        s := !s +. (Tensor.get dy [| i; j |] *. Tensor.get yt [| i; j |])
      done
    done;
    !s
  in
  let h = 1e-3 in
  List.iter
    (fun (i, j) ->
      let xp = Tensor.copy x and xm = Tensor.copy x in
      Tensor.set xp [| i; j |] (Tensor.get x [| i; j |] +. h);
      Tensor.set xm [| i; j |] (Tensor.get x [| i; j |] -. h);
      let fd = (loss xp -. loss xm) /. (2.0 *. h) in
      Alcotest.(check (float 5e-3)) "ln dx" fd (Tensor.get dx [| i; j |]))
    [ (0, 0); (1, 3); (0, 5) ]

let test_dropout_p0_identity () =
  let rng = Prng.create 12 in
  let x = random_tensor rng 3 4 in
  let y = Tensor.create Datatype.F32 [| 3; 4 |] in
  let m = Tensor.create Datatype.F32 [| 3; 4 |] in
  Blocks.dropout ~rng ~p:0.0 ~inp:(Tensor.view2d x) ~mask:(Tensor.view2d m)
    ~out:(Tensor.view2d y);
  checkb "identity" true (Tensor.max_abs_diff x y = 0.0)

let test_dropout_mask_consistency () =
  let rng = Prng.create 13 in
  let x = tensor_of 10 10 (fun _ _ -> 1.0) in
  let y = Tensor.create Datatype.F32 [| 10; 10 |] in
  let m = Tensor.create Datatype.F32 [| 10; 10 |] in
  Blocks.dropout ~rng ~p:0.4 ~inp:(Tensor.view2d x) ~mask:(Tensor.view2d m)
    ~out:(Tensor.view2d y);
  (* output = mask/(1-p) for unit inputs, and mask is 0/1 *)
  for i = 0 to 99 do
    let mv = Tensor.get_flat m i and yv = Tensor.get_flat y i in
    checkb "mask binary" true (mv = 0.0 || mv = 1.0);
    Alcotest.(check (float 1e-6)) "scaled" (mv /. 0.6) yv
  done;
  (* backward uses the same mask *)
  let dy = tensor_of 10 10 (fun _ _ -> 0.6) in
  let dx = Tensor.create Datatype.F32 [| 10; 10 |] in
  Blocks.dropout_backward ~p:0.4 ~dy:(Tensor.view2d dy) ~mask:(Tensor.view2d m)
    ~dx:(Tensor.view2d dx);
  for i = 0 to 99 do
    Alcotest.(check (float 1e-6)) "bwd mask" (Tensor.get_flat m i)
      (Tensor.get_flat dx i)
  done

let test_batchnorm_apply () =
  let x = tensor_of 2 2 (fun i j -> float_of_int ((i * 2) + j)) in
  let y = Tensor.create Datatype.F32 [| 2; 2 |] in
  Blocks.batchnorm_apply ~eps:0.0 ~mean:1.5 ~var:1.25 ~gamma:2.0 ~beta:0.5
    ~inp:(Tensor.view2d x) ~out:(Tensor.view2d y);
  (* (x - 1.5) * 2/sqrt(1.25) + 0.5 *)
  Alcotest.(check (float 1e-5))
    "bn value"
    (((3.0 -. 1.5) *. (2.0 /. sqrt 1.25)) +. 0.5)
    (Tensor.get y [| 1; 1 |])

(* ---- scratch arena & allocation-free hot path ---- *)

let test_arena_lease_release_reuse () =
  Scratch.reset ();
  let ar = Scratch.arena () in
  let misses0 = Telemetry.Counter.value Telemetry.Registry.arena_misses_name in
  let hits0 = Telemetry.Counter.value Telemetry.Registry.arena_hits_name in
  let b1 = Scratch.lease ar 64 in
  checki "first lease is a miss" (misses0 + 1)
    (Telemetry.Counter.value Telemetry.Registry.arena_misses_name);
  (* a busy slot is never handed out twice *)
  let b2 = Scratch.lease ar 64 in
  checkb "nested lease gets a distinct buffer" true (not (b1 == b2));
  Scratch.release ar b1;
  Scratch.release ar b2;
  let b3 = Scratch.lease ar 64 in
  checkb "released buffer is reused" true (b3 == b1 || b3 == b2);
  checki "reuse is a hit" (hits0 + 1)
    (Telemetry.Counter.value Telemetry.Registry.arena_hits_name);
  Scratch.release ar b3;
  checki "two slots live" 2 (Scratch.total_slots ());
  checki "bytes accounted" (2 * 64 * 8) (Scratch.total_bytes ());
  (match Scratch.release ar (Array.make 64 0.0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument for foreign buffer");
  Scratch.reset ();
  checki "reset drops slots" 0 (Scratch.total_slots ())

let test_brgemm_hot_loop_allocates_nothing () =
  (* after warmup, exec_stride must not touch the minor heap: the
     accumulator comes from the arena and loads/stores go through
     unboxed bigarray primitives *)
  let rng = Prng.create 11 in
  let a = random_tensor rng 16 32 and b = random_tensor rng 32 16 in
  let c = Tensor.create Datatype.F32 [| 16; 16 |] in
  let ker =
    Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:16 ~n:16 ~k:16 ())
  in
  let va = Tensor.view2d a and vb = Tensor.view2d b and vc = Tensor.view2d c in
  let exec () =
    Brgemm.exec_stride ker ~a:va ~b:vb ~c:vc ~stride_a:16 ~stride_b:(16 * 16)
      ~count:2
  in
  for _ = 1 to 50 do exec () done;
  let before = Gc.minor_words () in
  for _ = 1 to 200 do exec () done;
  let delta = Gc.minor_words () -. before in
  if delta > 64.0 then
    Alcotest.failf "BRGEMM hot loop allocated %.0f minor words / 200 execs"
      delta

let test_brgemm_list_empty_beta0_zero_fills () =
  let c = tensor_of 3 3 (fun _ _ -> 7.0) in
  let ker0 = Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:3 ~n:3 ~k:4 ()) in
  Brgemm.exec_list ker0 ~ab:[] ~c:(Tensor.view2d c);
  checkb "beta=0 empty batch zeroes C" true
    (List.for_all (( = ) 0.0) (Tensor.to_list c));
  let c1 = tensor_of 3 3 (fun _ _ -> 7.0) in
  let ker1 = Brgemm.compile (Brgemm.make_config ~beta:1.0 ~m:3 ~n:3 ~k:4 ()) in
  Brgemm.exec_list ker1 ~ab:[] ~c:(Tensor.view2d c1);
  checkb "beta=1 empty batch leaves C" true
    (List.for_all (( = ) 7.0) (Tensor.to_list c1))

let test_layernorm_nostats_matches_stats () =
  let rng = Prng.create 12 in
  let x = random_tensor rng 4 16 in
  let gamma = tensor_of 1 16 (fun _ j -> 1.0 +. (0.01 *. float_of_int j)) in
  let beta = tensor_of 1 16 (fun _ j -> 0.02 *. float_of_int j) in
  let y1 = Tensor.create Datatype.F32 [| 4; 16 |] in
  let y2 = Tensor.create Datatype.F32 [| 4; 16 |] in
  let _stats =
    Blocks.layernorm_rows ~eps:1e-5 ~inp:(Tensor.view2d x)
      ~gamma:(Tensor.view2d gamma) ~beta:(Tensor.view2d beta)
      ~out:(Tensor.view2d y1)
  in
  Blocks.layernorm_rows_nostats ~eps:1e-5 ~inp:(Tensor.view2d x)
    ~gamma:(Tensor.view2d gamma) ~beta:(Tensor.view2d beta)
    ~out:(Tensor.view2d y2);
  checkb "nostats == stats" true (Tensor.max_abs_diff y1 y2 = 0.0)

(* ---- dispatch ---- *)

let test_dispatch_cache () =
  Dispatch.clear ();
  let cfg = Brgemm.make_config ~m:4 ~n:4 ~k:4 () in
  let k1 = Dispatch.brgemm cfg in
  let k2 = Dispatch.brgemm cfg in
  checkb "same kernel" true (k1 == k2);
  let s = Dispatch.stats () in
  checki "one miss" 1 s.Dispatch.misses;
  checki "one hit" 1 s.Dispatch.hits;
  let _ = Dispatch.brgemm (Brgemm.make_config ~m:8 ~n:4 ~k:4 ()) in
  checki "two misses" 2 (Dispatch.stats ()).Dispatch.misses;
  Dispatch.clear ();
  checki "cleared" 0 (Dispatch.stats ()).Dispatch.misses

(* ---- numeric guard (Tpp_check) and the BRGEMM poison fault site ---- *)

let with_check_mode mode f =
  let prev = Tpp_check.mode () in
  Tpp_check.set_mode mode;
  Fun.protect ~finally:(fun () -> Tpp_check.set_mode prev) f

let test_tpp_check_finds_nonfinite () =
  let v = Tensor.create Datatype.F32 [| 3; 4 |] in
  Tensor.set v [| 1; 2 |] Float.nan;
  (match Tpp_check.finite_2d ~mode:Tpp_check.Full ~kernel:"t" (Tensor.view2d v) with
  | exception Tpp_check.Numeric_error { kernel; row; col; _ } ->
    Alcotest.(check string) "kernel named" "t" kernel;
    checki "row located" 1 row;
    checki "col located" 2 col
  | () -> Alcotest.fail "expected Numeric_error");
  Tensor.set v [| 1; 2 |] Float.infinity;
  (match Tpp_check.finite_2d ~mode:Tpp_check.Full ~kernel:"t" (Tensor.view2d v) with
  | exception Tpp_check.Numeric_error _ -> ()
  | () -> Alcotest.fail "expected Numeric_error on inf");
  Tensor.set v [| 1; 2 |] 0.0;
  Tpp_check.finite_2d ~mode:Tpp_check.Full ~kernel:"t" (Tensor.view2d v)

let test_tpp_check_sampled_vs_full () =
  (* sampling with step k probes every k-th flattened element plus index
     0: a NaN off the sample grid escapes Sampled but never Full *)
  let v = Tensor.create Datatype.F32 [| 2; 8 |] in
  Tensor.set v [| 0; 3 |] Float.nan;
  (* index 3: not on the step-5 grid {0,5,10,15} *)
  Tpp_check.finite_2d ~mode:(Tpp_check.Sampled 5) ~kernel:"t" (Tensor.view2d v);
  (match Tpp_check.finite_2d ~mode:Tpp_check.Full ~kernel:"t" (Tensor.view2d v) with
  | exception Tpp_check.Numeric_error _ -> ()
  | () -> Alcotest.fail "Full must catch what Sampled missed");
  (* index 0 is probed by every sampling step *)
  Tensor.set v [| 0; 3 |] 0.0;
  Tensor.set v [| 0; 0 |] Float.nan;
  match
    Tpp_check.finite_2d ~mode:(Tpp_check.Sampled 1000) ~kernel:"t"
      (Tensor.view2d v)
  with
  | exception Tpp_check.Numeric_error { row = 0; col = 0; _ } -> ()
  | _ -> Alcotest.fail "Sampled must always probe index 0"

let test_brgemm_poison_detected_and_arenas_clean () =
  (* end-to-end: the injected NaN store is caught by the guard inside the
     kernel's protected region, so the scratch lease is released even
     though the kernel raised *)
  let ker = Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:4 ~n:4 ~k:4 ()) in
  let mk () = Tensor.view2d (tensor_of 4 4 (fun i j -> float_of_int (i + j))) in
  with_check_mode (Tpp_check.Sampled 7) (fun () ->
      Fault.with_plan
        { Fault.seed = 1;
          rules =
            [ { Fault.rsite = "tpp.brgemm.store"; rkind = Fault.Nan;
                rtrigger = Fault.Nth { first = 2; period = None } } ] }
        (fun () ->
          (* invocation 1: clean *)
          Brgemm.exec ker ~a:(mk ()) ~b:(mk ()) ~c:(mk ());
          checki "lease released on clean path" 0 (Scratch.busy_slots ());
          (* invocation 2: poisoned; Sampled always probes index 0 *)
          (match Brgemm.exec ker ~a:(mk ()) ~b:(mk ()) ~c:(mk ()) with
          | exception Tpp_check.Numeric_error { row = 0; col = 0; _ } -> ()
          | () -> Alcotest.fail "expected poisoned store to raise");
          checki "lease released on raise" 0 (Scratch.busy_slots ());
          (* invocation 3: clean again through the same arena *)
          Brgemm.exec ker ~a:(mk ()) ~b:(mk ()) ~c:(mk ());
          checki "arena reusable after poison" 0 (Scratch.busy_slots ())))

let test_check_off_by_default () =
  checkb "guard disabled by default" true (Tpp_check.mode () = Tpp_check.Off)

let () =
  Alcotest.run ~and_exit:false "tpp"
    [
      ( "unary",
        [
          Alcotest.test_case "pointwise ops" `Quick test_unary_pointwise;
          Alcotest.test_case "zero" `Quick test_unary_zero;
          Alcotest.test_case "relu backward" `Quick test_relu_backward;
          Alcotest.test_case "gelu backward" `Quick
            test_gelu_backward_finite_diff;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "broadcasts" `Quick test_broadcasts;
        ] );
      ( "binary",
        [
          Alcotest.test_case "elementwise" `Quick test_binary_full;
          Alcotest.test_case "broadcast modes" `Quick
            test_binary_broadcast_row_col;
          Alcotest.test_case "muladd/axpy" `Quick test_muladd_axpy;
        ] );
      ( "brgemm",
        [
          Alcotest.test_case "single" `Quick test_brgemm_single;
          Alcotest.test_case "beta=1" `Quick test_brgemm_beta1_accumulates;
          Alcotest.test_case "stride batch" `Quick test_brgemm_stride_batch;
          Alcotest.test_case "offsets" `Quick test_brgemm_offsets;
          Alcotest.test_case "address list" `Quick test_brgemm_list;
          Alcotest.test_case "vnni" `Quick test_brgemm_vnni;
          qt prop_brgemm_matches_reference;
        ] );
      ("spmm", [ Alcotest.test_case "block row" `Quick test_spmm_tpp_block_row ]);
      ( "blocks",
        [
          Alcotest.test_case "softmax" `Quick test_softmax_matches_reference;
          qt prop_softmax_rows_sum_to_one;
          Alcotest.test_case "softmax backward" `Quick test_softmax_backward;
          Alcotest.test_case "layernorm" `Quick test_layernorm_matches_reference;
          qt prop_layernorm_normalizes;
          Alcotest.test_case "layernorm backward" `Quick
            test_layernorm_backward_finite_diff;
          Alcotest.test_case "dropout p=0" `Quick test_dropout_p0_identity;
          Alcotest.test_case "dropout mask" `Quick test_dropout_mask_consistency;
          Alcotest.test_case "batchnorm" `Quick test_batchnorm_apply;
        ] );
      ( "arena",
        [
          Alcotest.test_case "lease/release/reuse" `Quick
            test_arena_lease_release_reuse;
          Alcotest.test_case "brgemm hot loop allocation-free" `Quick
            test_brgemm_hot_loop_allocates_nothing;
          Alcotest.test_case "empty batch beta=0" `Quick
            test_brgemm_list_empty_beta0_zero_fills;
          Alcotest.test_case "layernorm nostats" `Quick
            test_layernorm_nostats_matches_stats;
        ] );
      ("dispatch", [ Alcotest.test_case "cache" `Quick test_dispatch_cache ]);
      ( "numeric-guard",
        [
          Alcotest.test_case "finds non-finite" `Quick
            test_tpp_check_finds_nonfinite;
          Alcotest.test_case "sampled vs full" `Quick
            test_tpp_check_sampled_vs_full;
          Alcotest.test_case "brgemm poison end-to-end" `Quick
            test_brgemm_poison_detected_and_arenas_clean;
          Alcotest.test_case "off by default" `Quick test_check_off_by_default;
        ] );
    ]

(* ---- equations (fused elementwise trees) ---- *)

let test_equation_bias_gelu () =
  let rng = Prng.create 20 in
  let x = random_tensor rng 4 6 and b = random_tensor rng 4 6 in
  let out = Tensor.create Datatype.F32 [| 4; 6 |] in
  Equation.exec Equation.bias_gelu
    ~args:[| Tensor.view2d x; Tensor.view2d b |]
    ~out:(Tensor.view2d out);
  for i = 0 to 23 do
    Alcotest.(check (float 1e-6))
      "bias+gelu"
      (Reference.gelu (Tensor.get_flat x i +. Tensor.get_flat b i))
      (Tensor.get_flat out i)
  done

let test_equation_residual_scale () =
  let a = tensor_of 2 2 (fun _ _ -> 3.0) and b = tensor_of 2 2 (fun _ _ -> 1.0) in
  let out = Tensor.create Datatype.F32 [| 2; 2 |] in
  Equation.exec (Equation.residual_scale 0.5)
    ~args:[| Tensor.view2d a; Tensor.view2d b |]
    ~out:(Tensor.view2d out);
  checkf "(3+1)*0.5" 2.0 (Tensor.get out [| 0; 0 |])

let test_equation_matches_sequential_tpps () =
  (* fused tanh(relu(x) * y + 0.5) == sequence of separate TPP calls *)
  let rng = Prng.create 21 in
  let x = random_tensor rng 3 5 and y = random_tensor rng 3 5 in
  let eq =
    Equation.compile ~nargs:2
      (Equation.Unary
         ( Tpp_unary.Tanh,
           Equation.Binary
             ( Tpp_binary.Add,
               Equation.Binary
                 ( Tpp_binary.Mul,
                   Equation.Unary (Tpp_unary.Relu, Equation.Arg 0),
                   Equation.Arg 1 ),
               Equation.Const 0.5 ) ))
  in
  let fused = Tensor.create Datatype.F32 [| 3; 5 |] in
  Equation.exec eq
    ~args:[| Tensor.view2d x; Tensor.view2d y |]
    ~out:(Tensor.view2d fused);
  (* sequential: materialize each intermediate *)
  let t1 = Tensor.create Datatype.F32 [| 3; 5 |] in
  Tpp_unary.exec Tpp_unary.Relu ~inp:(Tensor.view2d x) ~out:(Tensor.view2d t1);
  Tpp_binary.exec Tpp_binary.Mul ~bcast:Tpp_binary.Full ~a:(Tensor.view2d t1)
    ~b:(Tensor.view2d y) ~out:(Tensor.view2d t1);
  Tpp_unary.exec (Tpp_unary.Shift 0.5) ~inp:(Tensor.view2d t1)
    ~out:(Tensor.view2d t1);
  Tpp_unary.exec Tpp_unary.Tanh ~inp:(Tensor.view2d t1) ~out:(Tensor.view2d t1);
  checkb "fused == sequential" true (Tensor.max_abs_diff fused t1 < 1e-6)

let test_equation_validation () =
  (match Equation.compile ~nargs:1 (Equation.Arg 1) with
  | exception Equation.Invalid_equation _ -> ()
  | _ -> Alcotest.fail "expected arity error");
  (match
     Equation.compile ~nargs:1
       (Equation.Unary (Tpp_unary.Relu_backward, Equation.Arg 0))
   with
  | exception Equation.Invalid_equation _ -> ()
  | _ -> Alcotest.fail "expected two-input-op rejection");
  match
    Equation.exec Equation.bias_gelu
      ~args:[| Tensor.view2d (tensor_of 2 2 (fun _ _ -> 0.0)) |]
      ~out:(Tensor.view2d (tensor_of 2 2 (fun _ _ -> 0.0)))
  with
  | exception Equation.Invalid_equation _ -> ()
  | _ -> Alcotest.fail "expected argument-count error"

let () =
  Alcotest.run "tpp-equation"
    [
      ( "equation",
        [
          Alcotest.test_case "bias+gelu" `Quick test_equation_bias_gelu;
          Alcotest.test_case "residual scale" `Quick
            test_equation_residual_scale;
          Alcotest.test_case "fused == sequential" `Quick
            test_equation_matches_sequential_tpps;
          Alcotest.test_case "validation" `Quick test_equation_validation;
        ] );
    ]

(* Tests for the DNN workload library: FC (+backward), attention, BERT
   encoder, LLM decoding with KV cache, ResNet and sparse BERT. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let random_tensor ?(dtype = Datatype.F32) rng dims =
  let t = Tensor.create dtype dims in
  Tensor.fill_random t rng ~scale:1.0;
  t

(* ---- fc ---- *)

let test_fc_forward_matches_reference () =
  let rng = Prng.create 1 in
  let fc = Fc.create ~rng ~block:8 ~in_features:24 ~out_features:16 () in
  let x = random_tensor rng [| 8; 24 |] in
  let y = Fc.forward ~nthreads:2 fc x in
  let wt =
    Tensor.init Datatype.F32 [| 24; 16 |] (fun i ->
        Tensor.get fc.Fc.weights [| i.(1); i.(0) |])
  in
  let expect0 = Reference.matmul x wt in
  let expect =
    Tensor.init Datatype.F32 [| 8; 16 |] (fun i ->
        Tensor.get expect0 i +. Tensor.get fc.Fc.bias [| i.(1) |])
  in
  checkb "fc forward" true (Tensor.approx_equal ~tol:1e-4 y expect)

let test_fc_single_token () =
  (* decode path: one row, block larger than N *)
  let rng = Prng.create 2 in
  let fc = Fc.create ~rng ~block:16 ~in_features:32 ~out_features:32 () in
  let x = random_tensor rng [| 1; 32 |] in
  let y = Fc.forward fc x in
  checki "one row out" 1 (Tensor.dims y).(0)

let test_fc_backward_finite_diff () =
  let rng = Prng.create 3 in
  let fc =
    Fc.create ~rng ~block:8 ~act:Fc.Relu_act ~in_features:8 ~out_features:8 ()
  in
  let x = random_tensor rng [| 8; 8 |] in
  let dy = random_tensor rng [| 8; 8 |] in
  let _, ctx = Fc.forward_ctx fc x in
  let g = Fc.backward fc ctx ~dy in
  let loss x' =
    let y = Fc.forward fc x' in
    let s = ref 0.0 in
    for i = 0 to Tensor.numel y - 1 do
      s := !s +. (Tensor.get_flat y i *. Tensor.get_flat dy i)
    done;
    !s
  in
  let h = 1e-3 in
  List.iter
    (fun (i, j) ->
      let xp = Tensor.copy x and xm = Tensor.copy x in
      Tensor.set xp [| i; j |] (Tensor.get x [| i; j |] +. h);
      Tensor.set xm [| i; j |] (Tensor.get x [| i; j |] -. h);
      let fd = (loss xp -. loss xm) /. (2.0 *. h) in
      Alcotest.(check (float 2e-2)) "d_input" fd (Tensor.get g.Fc.d_input [| i; j |]))
    [ (0, 0); (3, 5); (7, 7) ];
  (* weight gradient *)
  let loss_w w' =
    let fc' = { fc with Fc.weights = w' } in
    let y = Fc.forward fc' x in
    let s = ref 0.0 in
    for i = 0 to Tensor.numel y - 1 do
      s := !s +. (Tensor.get_flat y i *. Tensor.get_flat dy i)
    done;
    !s
  in
  List.iter
    (fun (i, j) ->
      let wp = Tensor.copy fc.Fc.weights and wm = Tensor.copy fc.Fc.weights in
      Tensor.set wp [| i; j |] (Tensor.get fc.Fc.weights [| i; j |] +. h);
      Tensor.set wm [| i; j |] (Tensor.get fc.Fc.weights [| i; j |] -. h);
      let fd = (loss_w wp -. loss_w wm) /. (2.0 *. h) in
      Alcotest.(check (float 2e-2))
        "d_weights" fd
        (Tensor.get g.Fc.d_weights [| i; j |]))
    [ (0, 0); (4, 2) ]

let test_fc_sgd_reduces_loss () =
  let rng = Prng.create 4 in
  let fc = Fc.create ~rng ~block:8 ~in_features:8 ~out_features:8 () in
  let x = random_tensor rng [| 8; 8 |] in
  let target = random_tensor rng [| 8; 8 |] in
  let mse () =
    let y = Fc.forward fc x in
    let s = ref 0.0 in
    for i = 0 to Tensor.numel y - 1 do
      let d = Tensor.get_flat y i -. Tensor.get_flat target i in
      s := !s +. (d *. d)
    done;
    !s
  in
  let before = mse () in
  for _ = 1 to 20 do
    let y, ctx = Fc.forward_ctx fc x in
    let dy =
      Tensor.init Datatype.F32 [| 8; 8 |] (fun i ->
          2.0 *. (Tensor.get y i -. Tensor.get target i))
    in
    let g = Fc.backward fc ctx ~dy in
    Fc.sgd_update fc g ~lr:0.01
  done;
  checkb "loss decreased" true (mse () < 0.5 *. before)

(* ---- attention ---- *)

let test_attention_matches_reference () =
  let rng = Prng.create 5 in
  let att = Attention.create ~rng ~block:8 ~hidden:32 ~heads:4 () in
  let x = random_tensor rng [| 16; 32 |] in
  let got = Attention.forward ~nthreads:2 att x in
  let expect = Attention.reference_forward att x in
  checkb "attention" true (Tensor.approx_equal ~tol:1e-4 got expect)

let test_attention_causal () =
  let rng = Prng.create 6 in
  let att = Attention.create ~rng ~block:8 ~hidden:16 ~heads:2 () in
  let x = random_tensor rng [| 8; 16 |] in
  let got = Attention.forward ~causal:true att x in
  let expect = Attention.reference_forward ~causal:true att x in
  checkb "causal attention" true (Tensor.approx_equal ~tol:1e-4 got expect)

let test_attention_causal_prefix_invariance () =
  (* with causal masking, output at position i only depends on tokens
     <= i: extending the sequence must not change earlier outputs *)
  let rng = Prng.create 7 in
  let att = Attention.create ~rng ~block:8 ~hidden:16 ~heads:2 () in
  let x8 = random_tensor rng [| 8; 16 |] in
  let x6 = Tensor.init Datatype.F32 [| 6; 16 |] (fun i -> Tensor.get x8 i) in
  let y8 = Attention.forward ~causal:true att x8 in
  let y6 = Attention.forward ~causal:true att x6 in
  let y8_prefix =
    Tensor.init Datatype.F32 [| 6; 16 |] (fun i -> Tensor.get y8 i)
  in
  checkb "prefix invariant" true (Tensor.approx_equal ~tol:1e-4 y8_prefix y6)

(* ---- bert ---- *)

let test_bert_layer_matches_reference () =
  let rng = Prng.create 8 in
  let bert = Bert.create ~rng ~block:16 Bert.tiny_config in
  let x = random_tensor rng [| 16; Bert.tiny_config.Bert.hidden |] in
  let layer = bert.Bert.encoder.(0) in
  let got = Bert.encoder_layer ~nthreads:2 bert layer x in
  let expect = Bert.reference_encoder_layer bert layer x in
  checkb "bert encoder layer" true (Tensor.approx_equal ~tol:1e-3 got expect)

let test_bert_forward_shapes () =
  let rng = Prng.create 9 in
  let bert = Bert.create ~rng ~block:16 Bert.tiny_config in
  let ids = Array.init 16 (fun i -> i mod Bert.tiny_config.Bert.vocab) in
  let y = Bert.forward ~rng bert ids in
  checkb "finite outputs" true
    (List.for_all (fun v -> Float.is_finite v) (Tensor.to_list y));
  Alcotest.(check (list int))
    "shape"
    [ 16; Bert.tiny_config.Bert.hidden ]
    (Array.to_list (Tensor.dims y))

let test_bert_flops_accounting () =
  let cfg = Bert.base_config in
  (* one layer at seq 384: 4 proj + attention + FFN, must match the
     closed form *)
  let s = 384.0 and h = 768.0 and i = 3072.0 in
  let expect =
    (4.0 *. 2.0 *. s *. h *. h)
    +. (2.0 *. 2.0 *. s *. s *. h)
    +. (2.0 *. 2.0 *. s *. h *. i)
  in
  Alcotest.(check (float 1.0)) "layer flops" expect
    (Bert.layer_flops cfg ~seq:384);
  Alcotest.(check (float 1.0))
    "forward = layers * layer"
    (12.0 *. expect)
    (Bert.forward_flops cfg ~seq:384)

(* ---- llm ---- *)

let test_llm_cache_matches_full_forward () =
  let rng = Prng.create 10 in
  let llm = Llm.create ~rng ~block:8 Llm.tiny in
  let ids = Array.init 12 (fun i -> i * 3 mod Llm.tiny.Llm.vocab) in
  let emb = Llm.embed llm ids in
  (* full forward *)
  let full = Llm.forward_full llm emb in
  (* prefill 8 then decode 4 *)
  let cache = Llm.new_cache llm in
  let emb8 = Tensor.init Datatype.F32 [| 8; Llm.tiny.Llm.hidden |] (fun i -> Tensor.get emb i) in
  let _ = Llm.prefill llm cache emb8 in
  checki "cache after prefill" 8 (Llm.cache_len cache);
  let last = ref None in
  for t = 8 to 11 do
    let e =
      Tensor.init Datatype.F32 [| 1; Llm.tiny.Llm.hidden |] (fun i ->
          Tensor.get emb [| t; i.(1) |])
    in
    last := Some (Llm.decode_step llm cache e)
  done;
  checki "cache after decode" 12 (Llm.cache_len cache);
  let got = Option.get !last in
  let expect =
    Tensor.init Datatype.F32 [| 1; Llm.tiny.Llm.hidden |] (fun i ->
        Tensor.get full [| 11; i.(1) |])
  in
  checkb "incremental == full" true (Tensor.approx_equal ~tol:1e-3 got expect)

let test_llm_cache_recycling () =
  (* reset_cache rewinds without freeing: a recycled cache must produce
     bit-identical results to a fresh one, and must not reallocate when
     the second sequence fits the grown capacity *)
  let rng = Prng.create 10 in
  let llm = Llm.create ~rng ~block:8 Llm.tiny in
  let ids = Array.init 10 (fun i -> (i * 5) mod Llm.tiny.Llm.vocab) in
  let emb = Llm.embed llm ids in
  let run cache =
    let first = Llm.prefill llm cache emb in
    let e =
      Tensor.init Datatype.F32 [| 1; Llm.tiny.Llm.hidden |] (fun i ->
          Tensor.get emb [| 0; i.(1) |])
    in
    let next = Llm.decode_step llm cache e in
    (first, next)
  in
  let cache = Llm.new_cache ~cap:4 llm in
  let f1, n1 = run cache in
  checki "cache holds the sequence" 11 (Llm.cache_len cache);
  let grown = Llm.cache_capacity cache in
  checkb "capacity grew past the initial 4 rows" true (grown >= 11);
  Llm.reset_cache cache;
  checki "reset rewinds to empty" 0 (Llm.cache_len cache);
  checki "reset keeps the buffers" grown (Llm.cache_capacity cache);
  let f2, n2 = run cache in
  checki "capacity untouched on the second pass" grown
    (Llm.cache_capacity cache);
  checkb "recycled prefill bit-identical" true
    (Tensor.approx_equal ~tol:0.0 f1 f2);
  checkb "recycled decode bit-identical" true
    (Tensor.approx_equal ~tol:0.0 n1 n2)

let test_llm_cache_truncate_bit_identical () =
  (* truncate_cache rewinds a partially-appended step: re-running the
     step after the rewind must be bit-identical to never having failed
     (the property serve's retry path depends on) *)
  let rng = Prng.create 10 in
  let llm = Llm.create ~rng ~block:8 Llm.tiny in
  let ids = Array.init 6 (fun i -> (i * 5) mod Llm.tiny.Llm.vocab) in
  let emb = Llm.embed llm ids in
  let tok =
    Tensor.init Datatype.F32 [| 1; Llm.tiny.Llm.hidden |] (fun i ->
        Tensor.get emb [| 0; i.(1) |])
  in
  (* clean run *)
  let c1 = Llm.new_cache llm in
  let _ = Llm.prefill llm c1 emb in
  let clean = Llm.decode_step llm c1 tok in
  (* interrupted run: decode once, rewind as a failed attempt would, redo *)
  let c2 = Llm.new_cache llm in
  let _ = Llm.prefill llm c2 emb in
  let pre = Llm.cache_len c2 in
  let _ = Llm.decode_step llm c2 tok in
  Llm.truncate_cache c2 pre;
  checki "rewound to pre-step length" pre (Llm.cache_len c2);
  let redone = Llm.decode_step llm c2 tok in
  checki "re-appended one row" (pre + 1) (Llm.cache_len c2);
  checkb "retried step bit-identical" true
    (Tensor.approx_equal ~tol:0.0 clean redone)

let test_llm_flops_model () =
  (* decode flops must be ~ prefill flops / n for large shapes (per
     token), modulo attention's quadratic term *)
  let cfg = Llm.gptj_6b in
  let pf = Llm.prefill_flops cfg ~n_in:1024 in
  let df = Llm.decode_flops cfg ~past:1024 in
  checkb "prefill >> decode" true (pf > 100.0 *. df);
  (* 6B params * 2 bytes *)
  let gb = Llm.param_bytes cfg Datatype.BF16 /. 1e9 in
  checkb "GPTJ ~ 6B params (12GB bf16)" true (gb > 11.0 && gb < 14.0)

let test_llama_param_count () =
  let gb = Llm.param_bytes Llm.llama2_13b Datatype.BF16 /. 1e9 in
  checkb "Llama2-13B ~ 13B params (26GB bf16)" true (gb > 24.0 && gb < 28.0)

(* ---- resnet ---- *)

let test_resnet_matches_reference () =
  let rng = Prng.create 11 in
  let net = Resnet.create ~rng ~channels:8 ~blocks:2 () in
  let images = random_tensor rng [| 2; 3; 16; 16 |] in
  let got = Resnet.forward ~nthreads:2 net images in
  let expect = Resnet.reference_forward net images in
  checkb "resnet forward" true (Tensor.approx_equal ~tol:1e-3 got expect)

let test_resnet50_shape_table () =
  let shapes = Resnet.conv_shapes in
  checkb "about 20 unique shapes" true (List.length shapes >= 20);
  let total = List.fold_left (fun a s -> a + s.Resnet.repeats) 0 shapes in
  checkb "~53 convolutions" true (total >= 50 && total <= 56);
  (* ResNet-50 forward conv flops at N=1 is ~4 GFLOPs x 2 (MACs->flops
     convention: ~8.2e9) *)
  let f = Resnet.total_conv_flops ~n:1 in
  checkb "~7-9 GFLOPs" true (f > 6.5e9 && f < 9.5e9)

(* ---- sparse bert ---- *)

let test_sparse_bert_matches_dense_equivalent () =
  let rng = Prng.create 12 in
  let bert = Bert.create ~rng ~block:16 Bert.tiny_config in
  let sp = Sparse_bert.sparsify ~bm:8 ~bk:8 ~sparsity:0.5 bert in
  let x = random_tensor rng [| 16; Bert.tiny_config.Bert.hidden |] in
  let sparse = Sparse_bert.forward sp x in
  let dense = Sparse_bert.dense_equivalent_forward sp x in
  checkb "sparse == dense on pruned weights" true
    (Tensor.approx_equal ~tol:1e-3 sparse dense)

let test_sparse_bert_sparsity_target () =
  let rng = Prng.create 13 in
  let bert = Bert.create ~rng ~block:16 Bert.tiny_config in
  let sp = Sparse_bert.sparsify ~bm:8 ~bk:8 ~sparsity:0.8 bert in
  let s = Sparse_bert.achieved_sparsity sp in
  checkb "sparsity ~0.8" true (Float.abs (s -. 0.8) < 0.05)

let test_sparse_bert_effective_flops_scale () =
  let rng = Prng.create 14 in
  let bert = Bert.create ~rng ~block:16 Bert.tiny_config in
  let sp80 = Sparse_bert.sparsify ~bm:8 ~bk:8 ~sparsity:0.8 bert in
  let sp0 = Sparse_bert.sparsify ~bm:8 ~bk:8 ~sparsity:0.0 bert in
  let f80 = Sparse_bert.layer_effective_flops sp80 ~seq:64 in
  let f0 = Sparse_bert.layer_effective_flops sp0 ~seq:64 in
  checkb "80% sparsity cuts flops" true (f80 < 0.45 *. f0)

let () =
  Alcotest.run ~and_exit:false "dnn"
    [
      ( "fc",
        [
          Alcotest.test_case "forward" `Quick test_fc_forward_matches_reference;
          Alcotest.test_case "single token" `Quick test_fc_single_token;
          Alcotest.test_case "backward fd" `Quick test_fc_backward_finite_diff;
          Alcotest.test_case "sgd" `Quick test_fc_sgd_reduces_loss;
        ] );
      ( "attention",
        [
          Alcotest.test_case "reference" `Quick test_attention_matches_reference;
          Alcotest.test_case "causal" `Quick test_attention_causal;
          Alcotest.test_case "prefix invariance" `Quick
            test_attention_causal_prefix_invariance;
        ] );
      ( "bert",
        [
          Alcotest.test_case "layer reference" `Quick
            test_bert_layer_matches_reference;
          Alcotest.test_case "forward shapes" `Quick test_bert_forward_shapes;
          Alcotest.test_case "flops" `Quick test_bert_flops_accounting;
        ] );
      ( "llm",
        [
          Alcotest.test_case "kv cache == full" `Quick
            test_llm_cache_matches_full_forward;
          Alcotest.test_case "kv cache recycling" `Quick
            test_llm_cache_recycling;
          Alcotest.test_case "kv cache truncate (retry rewind)" `Quick
            test_llm_cache_truncate_bit_identical;
          Alcotest.test_case "flop model" `Quick test_llm_flops_model;
          Alcotest.test_case "llama params" `Quick test_llama_param_count;
        ] );
      ( "resnet",
        [
          Alcotest.test_case "forward reference" `Quick
            test_resnet_matches_reference;
          Alcotest.test_case "shape table" `Quick test_resnet50_shape_table;
        ] );
      ( "sparse-bert",
        [
          Alcotest.test_case "sparse == dense equivalent" `Quick
            test_sparse_bert_matches_dense_equivalent;
          Alcotest.test_case "sparsity target" `Quick
            test_sparse_bert_sparsity_target;
          Alcotest.test_case "effective flops" `Quick
            test_sparse_bert_effective_flops_scale;
        ] );
    ]

(* ---- dlrm (the paper's §VII future-work workload) ---- *)

let dlrm_inputs rng (cfg : Dlrm.config) batch =
  let dense = Tensor.create Datatype.F32 [| batch; cfg.Dlrm.dense_features |] in
  Tensor.fill_random dense rng ~scale:1.0;
  let sparse =
    Array.init cfg.Dlrm.num_tables (fun f ->
        Array.init batch (fun i ->
            (f + (i * 13)) mod cfg.Dlrm.rows_per_table))
  in
  (dense, sparse)

let test_dlrm_matches_reference () =
  let rng = Prng.create 15 in
  let cfg = Dlrm.default_config in
  let dlrm = Dlrm.create ~rng cfg in
  let dense, sparse = dlrm_inputs rng cfg 16 in
  let got = Dlrm.forward ~nthreads:2 dlrm ~dense ~sparse in
  let expect = Dlrm.reference_forward dlrm ~dense ~sparse in
  checkb "dlrm forward" true (Tensor.approx_equal ~tol:1e-4 got expect)

let test_dlrm_probabilities () =
  let rng = Prng.create 16 in
  let dlrm = Dlrm.create ~rng Dlrm.default_config in
  let dense, sparse = dlrm_inputs rng Dlrm.default_config 8 in
  let p = Dlrm.forward dlrm ~dense ~sparse in
  Alcotest.(check (list int)) "shape" [ 8; 1 ] (Array.to_list (Tensor.dims p));
  checkb "probabilities in (0,1)" true
    (List.for_all (fun v -> v > 0.0 && v < 1.0) (Tensor.to_list p))

let test_dlrm_interaction_width () =
  let cfg = Dlrm.default_config in
  (* embed_dim + C(num_tables+1, 2) = 16 + C(9,2) = 16 + 36 *)
  Alcotest.(check int) "interaction features" 52 (Dlrm.interaction_features cfg)

let test_dlrm_embedding_sensitivity () =
  (* changing a sparse id must change the prediction of that item only *)
  let rng = Prng.create 17 in
  let cfg = Dlrm.default_config in
  let dlrm = Dlrm.create ~rng cfg in
  let dense, sparse = dlrm_inputs rng cfg 4 in
  let p1 = Dlrm.forward dlrm ~dense ~sparse in
  let sparse2 = Array.map Array.copy sparse in
  sparse2.(0).(2) <- (sparse.(0).(2) + 7) mod cfg.Dlrm.rows_per_table;
  let p2 = Dlrm.forward dlrm ~dense ~sparse:sparse2 in
  checkb "item 2 changed" true
    (Float.abs (Tensor.get p1 [| 2; 0 |] -. Tensor.get p2 [| 2; 0 |]) > 1e-9);
  checkb "item 0 unchanged" true
    (Tensor.get p1 [| 0; 0 |] = Tensor.get p2 [| 0; 0 |])

let () =
  Alcotest.run "dnn-dlrm"
    [
      ( "dlrm",
        [
          Alcotest.test_case "matches reference" `Quick
            test_dlrm_matches_reference;
          Alcotest.test_case "probabilities" `Quick test_dlrm_probabilities;
          Alcotest.test_case "interaction width" `Quick
            test_dlrm_interaction_width;
          Alcotest.test_case "embedding sensitivity" `Quick
            test_dlrm_embedding_sensitivity;
        ] );
    ]

(* Tests for the auto-tuner: factorization, constrained spec-string
   generation and the tuning loop itself. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let qt t = QCheck_alcotest.to_alcotest t

(* ---- factorize ---- *)

let test_factorize_known () =
  Alcotest.(check (list int)) "12" [ 2; 2; 3 ] (Factorize.factorize 12);
  Alcotest.(check (list int)) "prime" [ 97 ] (Factorize.factorize 97);
  Alcotest.(check (list int)) "1" [] (Factorize.factorize 1);
  Alcotest.(check (list int)) "64" [ 2; 2; 2; 2; 2; 2 ] (Factorize.factorize 64)

let prop_factorize_product =
  QCheck.Test.make ~name:"product of factors = n" ~count:200
    (QCheck.int_range 1 100000)
    (fun n -> List.fold_left ( * ) 1 (Factorize.factorize n) = n)

let prop_factors_are_prime =
  QCheck.Test.make ~name:"factors are prime" ~count:100
    (QCheck.int_range 2 10000)
    (fun n ->
      List.for_all
        (fun f -> List.length (Factorize.factorize f) = 1)
        (Factorize.factorize n))

let test_prefix_products () =
  Alcotest.(check (list int)) "12" [ 2; 4 ] (Factorize.prefix_products 12);
  Alcotest.(check (list int)) "8" [ 2; 4 ] (Factorize.prefix_products 8);
  Alcotest.(check (list int)) "prime" [] (Factorize.prefix_products 7)

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Factorize.divisors 12)

let prop_blocking_lists_nested =
  QCheck.Test.make ~name:"blocking lists are perfectly nested" ~count:60
    QCheck.(pair (int_range 2 64) (int_range 1 3))
    (fun (trip, depth) ->
      Factorize.blocking_lists ~trip ~step:1 ~depth
      |> List.for_all (fun l ->
             List.length l = depth
             &&
             let rec nested = function
               | a :: (b :: _ as rest) -> a mod b = 0 && a > b && nested rest
               | _ -> true
             in
             nested l
             && List.for_all (fun d -> d > 1 && d < trip && trip mod d = 0) l))

(* ---- spec generation ---- *)

let cons_small =
  Spec_gen.gemm_constraints ~max_k_blockings:1 ~max_mn_blockings:1 ~trip_a:8
    ~trip_b:8 ~trip_c:8 ~step_a:1 ()

let test_generate_nonempty_and_capped () =
  let c = Spec_gen.generate ~max_candidates:50 cons_small in
  checkb "nonempty" true (List.length c > 0);
  checkb "capped" true (List.length c <= 50)

let test_generated_specs_all_compile () =
  let candidates = Spec_gen.generate ~max_candidates:300 cons_small in
  List.iter
    (fun (cand : Spec_gen.candidate) ->
      let specs =
        [
          Loop_spec.make ~bound:8 ~step:1
            ~block_steps:cand.Spec_gen.block_steps.(0) ();
          Loop_spec.make ~bound:8 ~step:1
            ~block_steps:cand.Spec_gen.block_steps.(1) ();
          Loop_spec.make ~bound:8 ~step:1
            ~block_steps:cand.Spec_gen.block_steps.(2) ();
        ]
      in
      match Threaded_loop.create specs cand.Spec_gen.spec with
      | _ -> ()
      | exception Threaded_loop.Invalid_spec m ->
        Alcotest.failf "candidate %S does not compile: %s" cand.Spec_gen.spec m)
    candidates

let test_generated_specs_distinct () =
  let candidates = Spec_gen.generate ~max_candidates:300 cons_small in
  let keys =
    List.map
      (fun (c : Spec_gen.candidate) ->
        ( c.Spec_gen.spec,
          Array.to_list (Array.map (List.map string_of_int) c.Spec_gen.block_steps)
        ))
      candidates
  in
  checki "no duplicates" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_generated_respects_parallelizable () =
  (* loop a (K) must never be capitalized *)
  let candidates = Spec_gen.generate ~max_candidates:300 cons_small in
  List.iter
    (fun (c : Spec_gen.candidate) ->
      checkb "K never parallel" false (String.contains c.Spec_gen.spec 'A'))
    candidates

let test_generated_has_parallel_variants () =
  let candidates = Spec_gen.generate ~max_candidates:300 cons_small in
  checkb "some parallel candidate" true
    (List.exists
       (fun (c : Spec_gen.candidate) ->
         String.exists (fun ch -> ch = 'B' || ch = 'C') c.Spec_gen.spec)
       candidates)

(* ---- autotune ---- *)

let base_cfg = Gemm.make_config ~bm:32 ~bn:32 ~bk:32 ~m:256 ~n:256 ~k:256 ()

let test_tune_modeled_ranked () =
  let report =
    Autotune.tune_gemm ~max_candidates:60
      (Autotune.Modeled { platform = Platform.zen4; nthreads = 8 })
      base_cfg
  in
  checkb "evaluated some" true (report.Autotune.evaluated > 10);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Autotune.gflops >= b.Autotune.gflops && sorted rest
    | _ -> true
  in
  checkb "ranked descending" true (sorted report.Autotune.ranked);
  checkb "times recorded" true (report.Autotune.tuning_seconds >= 0.0)

let test_tune_best_beats_serial () =
  let report =
    Autotune.tune_gemm ~max_candidates:120
      (Autotune.Modeled { platform = Platform.spr; nthreads = 16 })
      base_cfg
  in
  let best = List.hd report.Autotune.ranked in
  let serial =
    (Gemm_trace.score ~platform:Platform.spr ~nthreads:16 base_cfg "abc")
      .Perf_model.gflops
  in
  checkb "tuned beats serial" true (best.Autotune.gflops > serial)

let test_measure_gemm_runs () =
  let cfg = Gemm.make_config ~bm:16 ~bn:16 ~bk:16 ~m:64 ~n:64 ~k:64 () in
  let g = Autotune.measure_gemm ~nthreads:2 ~repeats:2 cfg "BCa" in
  checkb "positive gflops" true (g > 0.0)

(* ---- model-guided search ---- *)

let default_cand =
  { Spec_gen.spec = Gemm.default_spec; block_steps = [| []; []; [] |] }

(* one and two mutation steps away from the default instantiation *)
let mutation_closure cons =
  let one = Search.neighbors cons default_cand in
  let two = List.concat_map (Search.neighbors cons) one in
  default_cand :: (one @ two)

let test_mutations_parse_and_stay_legal () =
  let cands = mutation_closure cons_small in
  checkb "closure is nonempty" true (List.length cands > 10);
  List.iter
    (fun (c : Spec_gen.candidate) ->
      (match Spec_parser.parse_result c.Spec_gen.spec with
      | Ok parsed ->
        (* occurrence counts track the blocking chains: depth+1 each *)
        Array.iteri
          (fun l chain ->
            checki
              (Printf.sprintf "%S: loop %d occurrences" c.Spec_gen.spec l)
              (List.length chain + 1)
              (Spec_parser.occurrence_count parsed l))
          c.Spec_gen.block_steps
      | Error e ->
        Alcotest.failf "mutated spec %S does not parse: %s" c.Spec_gen.spec
          (Spec_parser.error_to_string e));
      (* the reduction loop must stay serial: bit-identity precondition *)
      checkb
        (Printf.sprintf "%S: K never parallel" c.Spec_gen.spec)
        false
        (String.contains c.Spec_gen.spec 'A'))
    cands

let test_mutations_compile () =
  List.iter
    (fun (c : Spec_gen.candidate) ->
      let specs =
        List.mapi
          (fun l _ ->
            Loop_spec.make ~bound:8 ~step:1
              ~block_steps:c.Spec_gen.block_steps.(l) ())
          [ (); (); () ]
      in
      match Threaded_loop.create specs c.Spec_gen.spec with
      | _ -> ()
      | exception Threaded_loop.Invalid_spec m ->
        Alcotest.failf "mutated spec %S does not compile: %s" c.Spec_gen.spec
          m)
    (mutation_closure cons_small)

let ranked_keys (r : Search.report) =
  List.map
    (fun (e : Autotune.entry) ->
      ( e.Autotune.spec,
        e.Autotune.cfg.Gemm.kk_blocks,
        e.Autotune.cfg.Gemm.mk_blocks,
        e.Autotune.cfg.Gemm.nk_blocks,
        e.Autotune.gflops ))
    r.Search.ranked

let test_search_deterministic () =
  let run () =
    Search.search
      ~strategy:(Search.Bandit { epsilon = 0.3; rounds = 40 })
      ~max_evals:80 ~seed:7 ~platform:Platform.spr ~nthreads:16 base_cfg
  in
  let a = run () and b = run () in
  checki "same evaluated" a.Search.evaluated b.Search.evaluated;
  checkb "same ranking" true (ranked_keys a = ranked_keys b);
  (* a different seed explores differently (sanity that the seed matters) *)
  let c =
    Search.search
      ~strategy:(Search.Bandit { epsilon = 0.3; rounds = 40 })
      ~max_evals:80 ~seed:8 ~platform:Platform.spr ~nthreads:16 base_cfg
  in
  checkb "seed changes exploration" true
    (ranked_keys a <> ranked_keys c || a.Search.evaluated = c.Search.evaluated)

let test_search_matches_exhaustive_cheaply () =
  let cfg = Gemm.make_config ~bm:32 ~bn:32 ~bk:32 ~m:128 ~n:128 ~k:128 () in
  let ex =
    Autotune.tune_gemm ~max_candidates:100_000
      (Autotune.Modeled { platform = Platform.spr; nthreads = 16 })
      cfg
  in
  let ex_best = (List.hd ex.Autotune.ranked).Autotune.gflops in
  let r = Search.search ~platform:Platform.spr ~nthreads:16 ~max_evals:100 cfg in
  let best = (List.hd r.Search.ranked).Autotune.gflops in
  checkb "within 2% of exhaustive best" true (best >= 0.98 *. ex_best);
  checkb "under 10% of the space" true
    (10 * r.Search.evaluated < r.Search.space);
  checkb "steps recorded" true (r.Search.steps <> []);
  checkb "space matches enumeration" true
    (r.Search.space = ex.Autotune.evaluated + ex.Autotune.skipped)

let test_search_measured_refinement () =
  let cfg = Gemm.make_config ~bm:16 ~bn:16 ~bk:16 ~m:32 ~n:32 ~k:32 () in
  let r =
    Search.search ~platform:Platform.spr ~nthreads:4 ~max_evals:20
      ~measure_top:2 ~measure_repeats:1 ~measure_nthreads:1 cfg
  in
  checkb "measured some" true (r.Search.measured > 0);
  (* measured entries lead the ranking and carry the model's prediction *)
  let first = List.hd r.Search.ranked in
  checkb "leader was measured" true (first.Autotune.predicted_gflops <> None)

(* ---- online spec cache ---- *)

let test_spec_cache_swaps_and_serves () =
  Spec_cache.enable ~max_evals:40 ~platform:Platform.spr ~nthreads:4 ();
  Fun.protect ~finally:Spec_cache.disable (fun () ->
      let cfg =
        Gemm.make_config ~bm:32 ~bn:32 ~bk:32 ~m:128 ~n:128 ~k:128 ()
      in
      (* first arrival: default served, shape queued *)
      let g0 = Gemm.create_resolved cfg "bca" in
      checkb "first arrival keeps caller spec" true (Gemm.spec g0 = "bca");
      checkb "drained" true (Spec_cache.drain ~timeout_s:30.0);
      let s = Spec_cache.stats () in
      checkb "tuned in background" true (s.Spec_cache.tunes > 0);
      checki "nothing rejected" 0 s.Spec_cache.rejected;
      (* "bca" is far from the model optimum: the tuner must have swapped *)
      checkb "hot-swapped" true (s.Spec_cache.swaps > 0);
      let g1 = Gemm.create_resolved cfg "bca" in
      checkb "resolved to tuned spec" true (Gemm.spec g1 <> "bca");
      checkb "hit recorded" true ((Spec_cache.stats ()).Spec_cache.hits > 0);
      (* bit-identity of the swapped instantiation against the default *)
      let rng = Prng.create 99 in
      let a = Tensor.create Datatype.F32 [| 128; 128 |] in
      let b = Tensor.create Datatype.F32 [| 128; 128 |] in
      Tensor.fill_random a rng ~scale:1.0;
      Tensor.fill_random b rng ~scale:1.0;
      let c0 = Gemm.run_logical (Gemm.create cfg "bca") ~a ~b in
      let c1 = Gemm.run_logical g1 ~a ~b in
      let identical = ref true in
      for i = 0 to Tensor.numel c0 - 1 do
        if
          Int64.bits_of_float (Tensor.get_flat c0 i)
          <> Int64.bits_of_float (Tensor.get_flat c1 i)
        then identical := false
      done;
      checkb "bit-identical outputs" true !identical)

let () =
  Alcotest.run "tuner"
    [
      ( "factorize",
        [
          Alcotest.test_case "known factorizations" `Quick test_factorize_known;
          qt prop_factorize_product;
          qt prop_factors_are_prime;
          Alcotest.test_case "prefix products" `Quick test_prefix_products;
          Alcotest.test_case "divisors" `Quick test_divisors;
          qt prop_blocking_lists_nested;
        ] );
      ( "spec-gen",
        [
          Alcotest.test_case "nonempty + capped" `Quick
            test_generate_nonempty_and_capped;
          Alcotest.test_case "all compile" `Quick test_generated_specs_all_compile;
          Alcotest.test_case "distinct" `Quick test_generated_specs_distinct;
          Alcotest.test_case "K never parallel" `Quick
            test_generated_respects_parallelizable;
          Alcotest.test_case "parallel variants exist" `Quick
            test_generated_has_parallel_variants;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "modeled ranking" `Quick test_tune_modeled_ranked;
          Alcotest.test_case "beats serial" `Quick test_tune_best_beats_serial;
          Alcotest.test_case "measured objective" `Quick test_measure_gemm_runs;
        ] );
      ( "search",
        [
          Alcotest.test_case "mutations parse + stay legal" `Quick
            test_mutations_parse_and_stay_legal;
          Alcotest.test_case "mutations compile" `Quick test_mutations_compile;
          Alcotest.test_case "seeded determinism" `Quick
            test_search_deterministic;
          Alcotest.test_case "matches exhaustive cheaply" `Quick
            test_search_matches_exhaustive_cheaply;
          Alcotest.test_case "measured refinement" `Quick
            test_search_measured_refinement;
        ] );
      ( "spec-cache",
        [
          Alcotest.test_case "swap + serve + bit-identity" `Quick
            test_spec_cache_swaps_and_serves;
        ] );
    ]

(* Tests for lib/fault: plan parsing/printing, deterministic trigger
   semantics (Nth one-shot, periodic, probabilistic), site registration
   and invocation accounting, and the zero-overhead no-plan path. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let nth ?period first = Fault.Nth { first; period }

let rule ?period ?(kind = Fault.Exn) site first =
  { Fault.rsite = site; rkind = kind; rtrigger = nth ?period first }

(* ---- plan grammar ---- *)

let test_plan_parse_roundtrip () =
  let s =
    "a.b:exn@n3;c.d:nan@n2+7;e.f:deny;g.h:stall(5)@n1+2;i.j:exn@p0.25"
  in
  match Fault.plan_of_string ~seed:9 s with
  | Error m -> Alcotest.fail m
  | Ok plan ->
    checki "seed" 9 plan.Fault.seed;
    checki "five rules" 5 (List.length plan.Fault.rules);
    checks "roundtrip" s (Fault.plan_to_string plan);
    (match plan.Fault.rules with
    | [ r1; r2; r3; r4; r5 ] ->
      checkb "one-shot nth" true (r1.Fault.rtrigger = nth 3);
      checkb "periodic nth" true (r2.Fault.rtrigger = nth ~period:7 2);
      checkb "nan kind" true (r2.Fault.rkind = Fault.Nan);
      checkb "default trigger is n1" true (r3.Fault.rtrigger = nth 1);
      checkb "deny kind" true (r3.Fault.rkind = Fault.Deny);
      checkb "stall ms to seconds" true (r4.Fault.rkind = Fault.Stall 0.005);
      checkb "probability" true (r5.Fault.rtrigger = Fault.Prob 0.25)
    | _ -> Alcotest.fail "rule structure")

let test_plan_parse_errors () =
  let bad s =
    match Fault.plan_of_string s with
    | Error m -> checkb ("diagnostic for " ^ s) true (String.length m > 0)
    | Ok _ -> Alcotest.fail ("accepted malformed plan " ^ s)
  in
  bad "";
  bad "site-only";
  bad "a:zap";
  bad "a:exn@x9";
  bad "a:exn@n0";
  bad "a:stall(-1)";
  bad "a:exn@p1.5";
  bad ";;"

(* ---- trigger semantics ---- *)

let fires site n =
  (* run [n] invocations of [site], return the 1-based indices that fired *)
  let s = Fault.site site in
  let out = ref [] in
  for i = 1 to n do
    match Fault.fire s with
    | exception Fault.Injected _ -> out := i :: !out
    | `Nan | `Deny -> out := i :: !out
    | `None -> ()
  done;
  List.rev !out

let test_nth_one_shot_and_periodic () =
  Fault.with_plan
    { Fault.seed = 0; rules = [ rule "t.oneshot" 3 ] }
    (fun () -> Alcotest.(check (list int)) "fires exactly once at 3" [ 3 ]
        (fires "t.oneshot" 10));
  Fault.with_plan
    { Fault.seed = 0; rules = [ rule ~period:4 "t.periodic" 2 ] }
    (fun () ->
      Alcotest.(check (list int)) "fires at first then every period"
        [ 2; 6; 10 ] (fires "t.periodic" 11))

let test_prob_deterministic_per_seed () =
  let run seed =
    Fault.with_plan
      { Fault.seed;
        rules =
          [ { Fault.rsite = "t.prob"; rkind = Fault.Exn;
              rtrigger = Fault.Prob 0.5 } ] }
      (fun () -> fires "t.prob" 200)
  in
  let a = run 1 and b = run 1 and c = run 2 in
  checkb "same seed, same schedule" true (a = b);
  checkb "different seed, different schedule" true (a <> c);
  let hits = List.length a in
  checkb "rate in the right ballpark" true (hits > 50 && hits < 150)

let test_injected_payload_and_counts () =
  let s = Fault.site "t.payload" in
  Fault.with_plan
    { Fault.seed = 0; rules = [ rule "t.payload" 2 ] }
    (fun () ->
      (match Fault.fire s with
      | exception Fault.Injected _ -> Alcotest.fail "fired too early"
      | _ -> ());
      (match Fault.fire s with
      | exception Fault.Injected { site; invocation } ->
        checks "site name in payload" "t.payload" site;
        checki "invocation in payload" 2 invocation
      | _ -> Alcotest.fail "expected injection at invocation 2");
      checkb "site counted" true
        (List.assoc "t.payload" (Fault.sites ()) = 2))

let test_no_plan_is_inert () =
  Fault.clear ();
  let s = Fault.site "t.inert" in
  for _ = 1 to 5 do
    match Fault.fire s with
    | `None -> ()
    | `Nan | `Deny -> Alcotest.fail "fired without a plan"
    | exception Fault.Injected _ -> Alcotest.fail "raised without a plan"
  done;
  (* without a plan, invocations are not even counted (zero overhead) *)
  checki "no accounting without a plan" 0
    (List.assoc "t.inert" (Fault.sites ()));
  checkb "no active plan" true (Fault.active () = None)

let test_with_plan_restores () =
  let plan = { Fault.seed = 0; rules = [ rule "t.restore" 1 ] } in
  (match
     Fault.with_plan plan (fun () ->
         checkb "plan active inside" true (Fault.active () = Some plan);
         failwith "body escapes")
   with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "body should have raised");
  checkb "plan cleared after escape" true (Fault.active () = None);
  let s = Fault.site "t.restore" in
  match Fault.fire s with
  | `None -> ()
  | _ | (exception Fault.Injected _) ->
    Alcotest.fail "site still armed after with_plan"

let test_install_resets_counts () =
  let plan = { Fault.seed = 0; rules = [ rule "t.reset" 2 ] } in
  let once () =
    Fault.with_plan plan (fun () -> fires "t.reset" 5)
  in
  checkb "identical schedule on reinstall" true (once () = once ())

let test_stall_sleeps () =
  Fault.with_plan
    { Fault.seed = 0;
      rules = [ rule ~kind:(Fault.Stall 0.05) "t.stall" 1 ] }
    (fun () ->
      let s = Fault.site "t.stall" in
      let t0 = Telemetry.Clock.now_s () in
      (match Fault.fire s with
      | `None -> ()
      | _ -> Alcotest.fail "stall must not change the result");
      checkb "stalled for the configured duration" true
        (Telemetry.Clock.now_s () -. t0 >= 0.04))

(* ---- flight recorder on the hardened failure path ---- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A worker-body fault must leave a complete post-mortem: the dump has to
   carry the injected-fault event AND the events every other team thread
   recorded before things went wrong — that context is the whole point of
   a flight recorder. *)
let test_worker_failure_dumps_flight () =
  Telemetry.Recorder.reset ();
  Telemetry.Recorder.set_enabled true;
  let dir = Filename.temp_file "parlooper-fault-flight" ".d" in
  Sys.remove dir;
  let old_dir = Telemetry.Recorder.dump_dir () in
  Telemetry.Recorder.set_dump_dir (Some dir);
  let nthreads = 4 in
  let lbl = Telemetry.Recorder.intern "t.flight.body" in
  let s = Fault.site "t.flight" in
  Fault.with_plan
    { Fault.seed = 0; rules = [ rule "t.flight" 3 ] }
    (fun () ->
      match
        Team.run ~nthreads (fun ctx ->
            (* every logical thread leaves its fingerprint in its ring
               before anyone can fail *)
            Telemetry.Recorder.emit Telemetry.Recorder.Mark ~label:lbl
              ~a:ctx.Team.tid ~b:0;
            match Fault.fire s with
            | `None | `Nan | `Deny -> ())
      with
      | () -> Alcotest.fail "expected Parallel_failure"
      | exception Team.Parallel_failure _ -> ());
  Telemetry.Recorder.set_dump_dir old_dir;
  (* the rings (still live after the dump) saw all four logical tids and
     the injected fault *)
  let evs = Telemetry.Recorder.events () in
  let marks =
    List.filter
      (fun e ->
        e.Telemetry.Recorder.ekind = Telemetry.Recorder.Mark
        && e.Telemetry.Recorder.label = "t.flight.body")
      evs
  in
  let seen_tid t =
    List.exists (fun e -> e.Telemetry.Recorder.a = t) marks
  in
  for t = 0 to nthreads - 1 do
    checkb (Printf.sprintf "logical tid %d recorded" t) true (seen_tid t)
  done;
  checkb "fault event recorded" true
    (List.exists
       (fun e ->
         e.Telemetry.Recorder.ekind = Telemetry.Recorder.Fault_fired
         && e.Telemetry.Recorder.label = "t.flight")
       evs);
  (* the failure path wrote a dump, and the dump covers every OS thread
     that recorded anything *)
  checkb "dump written on Parallel_failure" true
    (Telemetry.Recorder.dumps_written () >= 1);
  let traces =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace.json")
  in
  checkb "trace dump present" true (traces <> []);
  let trace_path = Filename.concat dir (List.hd traces) in
  let ic = open_in_bin trace_path in
  let trace = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (try Telemetry.Json_check.validate trace with
  | Telemetry.Json_check.Bad_json m ->
    Alcotest.failf "dumped trace invalid JSON: %s" m);
  checkb "dump carries the fault event" true
    (contains ~needle:"\"cat\":\"fault\"" trace);
  List.iter
    (fun tid ->
      checkb
        (Printf.sprintf "dump carries events from tid %d" tid)
        true
        (contains ~needle:(Printf.sprintf "\"tid\":%d" tid) trace))
    (Telemetry.Recorder.tids ());
  Telemetry.Recorder.reset ()

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "parse/print roundtrip" `Quick
            test_plan_parse_roundtrip;
          Alcotest.test_case "malformed plans" `Quick test_plan_parse_errors;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "nth one-shot and periodic" `Quick
            test_nth_one_shot_and_periodic;
          Alcotest.test_case "prob deterministic per seed" `Quick
            test_prob_deterministic_per_seed;
          Alcotest.test_case "injected payload" `Quick
            test_injected_payload_and_counts;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "no plan is inert" `Quick test_no_plan_is_inert;
          Alcotest.test_case "with_plan restores" `Quick test_with_plan_restores;
          Alcotest.test_case "install resets counts" `Quick
            test_install_resets_counts;
          Alcotest.test_case "stall sleeps" `Quick test_stall_sleeps;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "worker failure dumps all rings" `Quick
            test_worker_failure_dumps_flight;
        ] );
    ]

(* Tests for the PARLOOPER core: spec-string parser, loop-nest semantics
   (coverage / uniqueness / ordering), both parallelization modes,
   barriers, the team runtime and the JIT cache. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let qt t = QCheck_alcotest.to_alcotest t

(* ---- parser ---- *)

let test_parse_simple () =
  let p = Spec_parser.parse "bcab" in
  checki "4 occurrences" 4 (List.length p.Spec_parser.occurrences);
  checki "b twice" 2 (Spec_parser.occurrence_count p 1);
  checki "c once" 1 (Spec_parser.occurrence_count p 2);
  checki "3 loops used" 3 (Spec_parser.num_loops_used p)

let test_parse_parallel () =
  let p = Spec_parser.parse "bcaBCb" in
  let pars =
    List.filter (fun o -> o.Spec_parser.parallel) p.Spec_parser.occurrences
  in
  checki "two parallel" 2 (List.length pars);
  checkb "no grid" false (Spec_parser.has_grid p)

let test_parse_grid () =
  let p = Spec_parser.parse "bC{R:16}aB{C:4}cb" in
  checkb "has grid" true (Spec_parser.has_grid p);
  let r, c, l = Spec_parser.grid_shape p in
  checki "R" 16 r;
  checki "C" 4 c;
  checki "L" 1 l

let test_parse_directives () =
  let p = Spec_parser.parse "bcaBCb @ schedule(dynamic, 1)" in
  checkb "dynamic" true (p.Spec_parser.schedule = Spec_parser.Dynamic 1);
  let p = Spec_parser.parse "BCa @ schedule(dynamic,4)" in
  checkb "dynamic 4" true (p.Spec_parser.schedule = Spec_parser.Dynamic 4);
  let p = Spec_parser.parse "BCa @ schedule(static)" in
  checkb "static" true (p.Spec_parser.schedule = Spec_parser.Static);
  let p = Spec_parser.parse "BCa" in
  checkb "default static" true (p.Spec_parser.schedule = Spec_parser.Static)

let test_parse_barrier () =
  let p = Spec_parser.parse "aBC|b" in
  let with_barrier =
    List.filter (fun o -> o.Spec_parser.barrier_after) p.Spec_parser.occurrences
  in
  checki "one barrier" 1 (List.length with_barrier);
  checki "barrier on loop c" 2 (List.hd with_barrier).Spec_parser.loop

let test_parse_errors () =
  let expect_fail s =
    match Spec_parser.parse s with
    | exception Spec_parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect_fail "";
  expect_fail "b1c";
  expect_fail "|abc";
  expect_fail "B{X:4}";
  expect_fail "B{R:0}";
  expect_fail "B{R:4";
  expect_fail "abc @ schedule(guided)"

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      let p = Spec_parser.parse s in
      Alcotest.(check string) "roundtrip" s (Spec_parser.to_string p))
    [ "bcab"; "bcaBCb"; "bC{R:16}aB{C:4}cb"; "aBC|b"; "BCa @ schedule(dynamic,1)" ]

(* ---- nest semantics ---- *)

let specs_abc =
  [
    Loop_spec.make ~bound:4 ~step:1 ();
    Loop_spec.make ~bound:8 ~step:1 ~block_steps:[ 4; 2 ] ();
    Loop_spec.make ~bound:6 ~step:2 ~block_steps:[ 6 ] ();
  ]

let collect ?nthreads spec =
  let l = Threaded_loop.create specs_abc spec in
  let acc = ref [] in
  let lock = Mutex.create () in
  Threaded_loop.run ?nthreads l (fun ind ->
      Mutex.lock lock;
      acc := (ind.(0), ind.(1), ind.(2)) :: !acc;
      Mutex.unlock lock);
  List.sort compare !acc

let expected_abc =
  (* a in 0..3, b in 0..7, c in {0,2,4} *)
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b -> List.map (fun c -> (a, b, c)) [ 0; 2; 4 ])
        (List.init 8 Fun.id))
    (List.init 4 Fun.id)
  |> List.sort compare

let test_serial_coverage () =
  List.iter
    (fun s ->
      checkb (s ^ " covers space") true (collect s = expected_abc))
    [ "abc"; "cba"; "abcb"; "bacbb"; "abcc" ]

let test_serial_ordering_innermost () =
  (* with order "abc", c varies fastest *)
  let l = Threaded_loop.create specs_abc "abc" in
  let seq = ref [] in
  Threaded_loop.run l (fun ind -> seq := (ind.(0), ind.(1), ind.(2)) :: !seq);
  let seq = List.rev !seq in
  match seq with
  | (0, 0, 0) :: (0, 0, 2) :: (0, 0, 4) :: (0, 1, 0) :: _ -> ()
  | _ -> Alcotest.fail "wrong iteration order for abc"

let test_parallel_collapse_coverage () =
  List.iter
    (fun (s, n) ->
      checkb (s ^ " covers space") true (collect ~nthreads:n s = expected_abc))
    [ ("aBC", 3); ("BCa", 4); ("Abc", 2); ("bcaBCb", 3);
      ("BCa @ schedule(dynamic,1)", 5); ("aBC @ schedule(dynamic,2)", 2) ]

let test_grid_coverage () =
  List.iter
    (fun s -> checkb (s ^ " covers space") true (collect s = expected_abc))
    [ "bC{R:2}aB{C:2}cb"; "A{R:2}bc"; "B{R:4}aC{C:3}"; "A{R:2}B{C:2}C{L:3}" ]

let test_grid_thread_count () =
  let l = Threaded_loop.create specs_abc "bC{R:2}aB{C:2}cb" in
  checki "grid threads" 4 (Threaded_loop.threads_used l);
  match Threaded_loop.run ~nthreads:7 l (fun _ -> ()) with
  | exception Threaded_loop.Invalid_spec _ -> ()
  | _ -> Alcotest.fail "expected thread-count mismatch error"

let test_parallel_partition_disjoint () =
  (* each iteration must be executed exactly once: duplicates in the
     collected list would break the sorted-equality check only if also
     missing entries; check count too *)
  let c = collect ~nthreads:3 "BCa" in
  checki "exact count" (List.length expected_abc) (List.length c)

let test_traced_matches_run () =
  let l = Threaded_loop.create specs_abc "BCa @ schedule(dynamic,1)" in
  let traced = ref [] in
  Threaded_loop.run_traced ~nthreads:3 l (fun ~tid:_ ind ->
      traced := (ind.(0), ind.(1), ind.(2)) :: !traced);
  checkb "traced covers space" true
    (List.sort compare !traced = expected_abc)

let test_traced_static_assignment_matches_run () =
  (* static scheduling: run and trace assign identical index sets per tid *)
  let l = Threaded_loop.create specs_abc "BCa" in
  let by_tid_traced = Array.make 3 [] in
  Threaded_loop.run_traced ~nthreads:3 l (fun ~tid ind ->
      by_tid_traced.(tid) <- (ind.(0), ind.(1), ind.(2)) :: by_tid_traced.(tid));
  (* reconstruct run-time assignment via init/term trick: record with tid
     from a Team-like wrapper — instead exploit determinism: static
     assignment is computed from (tid, nthreads) only, so trace twice *)
  let second = Array.make 3 [] in
  Threaded_loop.run_traced ~nthreads:3 l (fun ~tid ind ->
      second.(tid) <- (ind.(0), ind.(1), ind.(2)) :: second.(tid));
  Array.iteri
    (fun t l1 -> checkb "deterministic" true (l1 = second.(t)))
    by_tid_traced

let test_body_invocations () =
  let l = Threaded_loop.create specs_abc "abc" in
  checki "invocations" (List.length expected_abc)
    (Threaded_loop.body_invocations l)

let test_non_divisible_bounds () =
  (* bound 7 with block 4: clamped trailing block *)
  let specs =
    [ Loop_spec.make ~bound:7 ~step:1 ~block_steps:[ 4 ] () ]
  in
  let l = Threaded_loop.create specs "aa" in
  let acc = ref [] in
  Threaded_loop.run l (fun ind -> acc := ind.(0) :: !acc);
  checkb "0..6 each once" true
    (List.sort compare !acc = List.init 7 Fun.id);
  (* parallel-collapsed blocked occurrence with clamping *)
  let l2 = Threaded_loop.create specs "aA" in
  let acc2 = ref [] in
  let lock = Mutex.create () in
  Threaded_loop.run ~nthreads:2 l2 (fun ind ->
      Mutex.lock lock;
      acc2 := ind.(0) :: !acc2;
      Mutex.unlock lock);
  checkb "clamped parallel covers" true
    (List.sort compare !acc2 = List.init 7 Fun.id)

let test_init_term_per_thread () =
  let l = Threaded_loop.create specs_abc "BCa" in
  let inits = Atomic.make 0 and terms = Atomic.make 0 in
  Threaded_loop.run ~nthreads:3
    ~init:(fun () -> Atomic.incr inits)
    ~term:(fun () -> Atomic.incr terms)
    l
    (fun _ -> ());
  checki "init per thread" 3 (Atomic.get inits);
  checki "term per thread" 3 (Atomic.get terms)

let test_barrier_pipeline () =
  (* MLP-style dependency: loop a = layers (serial, barrier after the
     parallel inner loop); each layer reads the previous layer's full
     output. With the barrier this is race-free and exact. *)
  let layers = 4 and width = 8 in
  let data = Array.make_matrix (layers + 1) width 0 in
  for j = 0 to width - 1 do
    data.(0).(j) <- 1
  done;
  let specs =
    [
      Loop_spec.make ~bound:layers ~step:1 ();
      Loop_spec.make ~bound:width ~step:1 ();
    ]
  in
  let l = Threaded_loop.create specs "aB|" in
  Threaded_loop.run ~nthreads:4 l (fun ind ->
      let layer = ind.(0) and j = ind.(1) in
      (* each output = sum of previous layer *)
      let s = ref 0 in
      for x = 0 to width - 1 do
        s := !s + data.(layer).(x)
      done;
      data.(layer + 1).(j) <- !s);
  (* expected: layer l values = width^l *)
  let expect = int_of_float (float_of_int width ** float_of_int layers) in
  checki "pipeline exact" expect data.(layers).(0)

let test_invalid_specs_rejected () =
  let expect_invalid specs s =
    match Threaded_loop.create specs s with
    | exception Threaded_loop.Invalid_spec _ -> ()
    | _ -> Alcotest.failf "expected Invalid_spec for %S" s
  in
  (* undeclared loop *)
  expect_invalid [ Loop_spec.make ~bound:4 ~step:1 () ] "ab";
  (* loop declared but unused *)
  expect_invalid
    [ Loop_spec.make ~bound:4 ~step:1 (); Loop_spec.make ~bound:4 ~step:1 () ]
    "a";
  (* not enough blocking steps *)
  expect_invalid [ Loop_spec.make ~bound:4 ~step:1 () ] "aa";
  (* imperfect nesting: 3 does not divide 4 *)
  expect_invalid
    [ Loop_spec.make ~bound:12 ~step:1 ~block_steps:[ 4; 3 ] () ]
    "aaa";
  (* mixing PAR-MODE 1 and 2 *)
  expect_invalid
    [ Loop_spec.make ~bound:4 ~step:1 (); Loop_spec.make ~bound:4 ~step:1 () ]
    "A{R:2}B"

let prop_random_serial_specs_cover =
  (* random loop declarations + random serial orders always cover the
     iteration space exactly once *)
  QCheck.Test.make ~name:"random serial nests cover iteration space"
    ~count:60
    QCheck.(
      quad (int_range 1 5) (int_range 1 6) (int_range 1 4) (int_range 0 5))
    (fun (b1, b2, step2, shuffle) ->
      let specs =
        [
          Loop_spec.make ~bound:b1 ~step:1 ();
          Loop_spec.make ~bound:(b2 * step2) ~step:step2 ();
        ]
      in
      let orders = [ "ab"; "ba"; "ab"; "ba"; "ab"; "ba" ] in
      let spec = List.nth orders (shuffle mod List.length orders) in
      let l = Threaded_loop.create specs spec in
      let acc = ref [] in
      Threaded_loop.run l (fun ind -> acc := (ind.(0), ind.(1)) :: !acc);
      let expected =
        List.concat_map
          (fun a -> List.init b2 (fun i -> (a, i * step2)))
          (List.init b1 Fun.id)
        |> List.sort compare
      in
      List.sort compare !acc = expected)

let prop_parallel_equals_serial =
  QCheck.Test.make ~name:"parallel multiset == serial multiset" ~count:40
    QCheck.(pair (int_range 1 6) (int_range 1 8))
    (fun (ba, bb) ->
      let specs =
        [
          Loop_spec.make ~bound:ba ~step:1 ();
          Loop_spec.make ~bound:bb ~step:1 ();
        ]
      in
      let run spec n =
        let l = Threaded_loop.create specs spec in
        let acc = ref [] in
        let lock = Mutex.create () in
        Threaded_loop.run ~nthreads:n l (fun ind ->
            Mutex.lock lock;
            acc := (ind.(0), ind.(1)) :: !acc;
            Mutex.unlock lock);
        List.sort compare !acc
      in
      run "ab" 1 = run "AB" 3 && run "ab" 1 = run "BA" 2)

(* ---- team ---- *)

let test_team_barrier_sync () =
  (* classic phase counter: all threads must see phase k complete before
     k+1 writes happen *)
  let n = 4 and phases = 5 in
  let counter = Atomic.make 0 in
  let ok = Atomic.make true in
  Team.run ~nthreads:n (fun ctx ->
      for p = 1 to phases do
        Atomic.incr counter;
        ctx.Team.barrier ();
        (* after the barrier every thread of phase p has incremented *)
        if Atomic.get counter < p * n then Atomic.set ok false;
        ctx.Team.barrier ()
      done);
  checkb "barrier ordering" true (Atomic.get ok);
  checki "total increments" (n * phases) (Atomic.get counter)

let test_team_exception_propagates () =
  match
    Team.run ~nthreads:3 (fun ctx ->
        if ctx.Team.tid = 1 then failwith "boom")
  with
  | exception Team.Parallel_failure [ (1, Failure m) ] ->
    Alcotest.(check string) "message" "boom" m
  | exception e -> Alcotest.fail ("unexpected exception " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected exception"

let test_team_aggregates_all_failures () =
  (* several threads raise in the same region: nothing is lost, and the
     aggregate lists them in tid order *)
  match
    Team.run ~nthreads:4 (fun ctx ->
        if ctx.Team.tid mod 2 = 1 then
          failwith (Printf.sprintf "boom-%d" ctx.Team.tid))
  with
  | exception Team.Parallel_failure fs ->
    Alcotest.(check (list int)) "tids in order" [ 1; 3 ] (List.map fst fs);
    List.iter
      (fun (tid, e) ->
        Alcotest.(check string)
          (Printf.sprintf "message %d" tid)
          (Printf.sprintf "boom-%d" tid)
          (match e with Failure m -> m | _ -> "?"))
      fs
  | _ -> Alcotest.fail "expected Parallel_failure"

let test_team_dynamic_chunks_disjoint () =
  let claimed = Array.make 40 0 in
  let lock = Mutex.create () in
  Team.run ~nthreads:4 (fun ctx ->
      let continue = ref true in
      while !continue do
        let s = ctx.Team.fetch_chunk ~instance:0 ~chunk:3 in
        if s >= 40 then continue := false
        else
          for i = s to min (s + 3) 40 - 1 do
            Mutex.lock lock;
            claimed.(i) <- claimed.(i) + 1;
            Mutex.unlock lock
          done
      done);
  checkb "each claimed once" true (Array.for_all (( = ) 1) claimed)

(* ---- persistent pool ---- *)

let thread_ids_for_run n =
  let ids = Array.make n (-1) in
  Team.run ~nthreads:n (fun ctx ->
      ids.(ctx.Team.tid) <- Thread.id (Thread.self ()));
  ids

let test_pool_worker_reuse () =
  checkb "pool enabled by default" true (Team.pool_enabled ());
  let n = 3 in
  let first = thread_ids_for_run n in
  checkb "caller is tid 0" true
    (first.(0) = Thread.id (Thread.self ()));
  for _ = 1 to 5 do
    let again = thread_ids_for_run n in
    checkb "same workers serve successive teams" true (again = first)
  done;
  checkb "pool retains workers" true (Team.pool_size () >= n - 1);
  let reused = Telemetry.Counter.value Telemetry.Registry.pool_reuse_name in
  checkb "worker reuse counted" true (reused > 0)

let test_pool_exception_leaves_pool_usable () =
  (match
     Team.run ~nthreads:3 (fun ctx ->
         if ctx.Team.tid = 2 then failwith "pool-boom")
   with
  | exception Team.Parallel_failure [ (2, Failure m) ] ->
    Alcotest.(check string) "message" "pool-boom" m
  | exception e -> Alcotest.fail ("unexpected exception " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected exception");
  (* the same team must still execute correctly afterwards *)
  let hits = Atomic.make 0 in
  Team.run ~nthreads:3 (fun _ -> Atomic.incr hits);
  checki "pool usable after exception" 3 (Atomic.get hits)

let test_pool_barrier_stress () =
  (* hundreds of barrier generations with jittered bodies: any missed or
     double wakeup shows up as a phase-ordering violation *)
  let n = 4 and iters = 300 in
  let counter = Atomic.make 0 in
  let ok = Atomic.make true in
  Team.run ~nthreads:n (fun ctx ->
      for p = 1 to iters do
        (* jitter: stagger arrival order per phase and per thread *)
        let spin = (ctx.Team.tid * 37) + (p * 13) mod 211 in
        let acc = ref 0 in
        for i = 1 to spin do
          acc := !acc + i
        done;
        ignore !acc;
        Atomic.incr counter;
        ctx.Team.barrier ();
        if Atomic.get counter < p * n then Atomic.set ok false;
        ctx.Team.barrier ()
      done);
  checkb "no phase violation" true (Atomic.get ok);
  checki "all increments" (n * iters) (Atomic.get counter)

let test_pool_nested_region_falls_back () =
  (* a nested parallel region while the pool lock is held must fall back
     to spawning and still run to completion with correct semantics *)
  let total = Atomic.make 0 in
  Team.run ~nthreads:2 (fun _ ->
      Team.run ~nthreads:2 (fun _ -> Atomic.incr total));
  checki "nested teams all ran" 4 (Atomic.get total)

(* ---- watchdog, quarantine and fault sites ---- *)

let with_watchdog wd f =
  let prev = Team.current_watchdog () in
  Team.set_watchdog (Some wd);
  Fun.protect ~finally:(fun () -> Team.set_watchdog prev) f

let test_watchdog_warns_without_failing () =
  (* a slow thread inside the warn window trips the watchdog counter but
     the region still completes normally *)
  with_watchdog
    { Team.warn_s = 0.005; abandon_s = 5.0 }
    (fun () ->
      let before =
        Telemetry.Counter.value Telemetry.Registry.watchdog_trips_name
      in
      let hits = Atomic.make 0 in
      Team.run ~nthreads:2 (fun ctx ->
          if ctx.Team.tid = 1 then Thread.delay 0.03;
          Atomic.incr hits);
      checki "region completed" 2 (Atomic.get hits);
      checkb "watchdog tripped" true
        (Telemetry.Counter.value Telemetry.Registry.watchdog_trips_name
        > before))

let test_watchdog_abandons_stuck_worker () =
  (* a worker stuck past abandon_s is reported as Worker_stalled and
     quarantined; the pool respawns and stays usable — no deadlock *)
  with_watchdog
    { Team.warn_s = 0.005; abandon_s = 0.05 }
    (fun () ->
      let before =
        Telemetry.Counter.value Telemetry.Registry.pool_quarantined_name
      in
      (match
         Team.run ~nthreads:2 (fun ctx ->
             if ctx.Team.tid = 1 then Thread.delay 0.3)
       with
      | exception Team.Parallel_failure fs ->
        checkb "stall recorded" true
          (List.exists
             (fun (_, e) ->
               match e with Team.Worker_stalled _ -> true | _ -> false)
             fs)
      | () -> Alcotest.fail "expected abandonment of the stuck worker");
      checkb "worker quarantined" true
        (Telemetry.Counter.value Telemetry.Registry.pool_quarantined_name
        > before);
      (* a fresh worker replaces the quarantined one *)
      let hits = Atomic.make 0 in
      Team.run ~nthreads:2 (fun _ -> Atomic.incr hits);
      checki "pool recovered" 2 (Atomic.get hits))

let test_worker_death_transparent_fallback () =
  (* an injected worker death: the next region's job is stolen and run
     by the caller (same semantics), the dead worker is quarantined, and
     the pool respawns a replacement *)
  with_watchdog
    { Team.warn_s = 0.005; abandon_s = 0.05 }
    (fun () ->
      let before =
        Telemetry.Counter.value Telemetry.Registry.pool_quarantined_name
      in
      Fault.with_plan
        { Fault.seed = 1;
          rules =
            [ { Fault.rsite = "team.worker.loop"; rkind = Fault.Exn;
                rtrigger = Fault.Nth { first = 1; period = None } } ] }
        (fun () ->
          (* the worker dies right after finishing this region's job *)
          let hits = Atomic.make 0 in
          Team.run ~nthreads:2 (fun _ -> Atomic.incr hits);
          checki "region with dying worker" 2 (Atomic.get hits);
          (* its mailbox is dead: the caller steals the job, the region
             still completes with identical semantics *)
          let hits2 = Atomic.make 0 in
          Team.run ~nthreads:2 (fun _ -> Atomic.incr hits2);
          checki "stolen region completed" 2 (Atomic.get hits2));
      checkb "dead worker quarantined" true
        (Telemetry.Counter.value Telemetry.Registry.pool_quarantined_name
        > before);
      let hits3 = Atomic.make 0 in
      Team.run ~nthreads:2 (fun _ -> Atomic.incr hits3);
      checki "pool recovered after death" 2 (Atomic.get hits3))

let test_worker_exception_leaves_arenas_clean () =
  (* a worker raising mid-BRGEMM must release its scratch lease: busy
     slots are 0 after the failure and the pool still runs kernels *)
  let ker =
    Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:8 ~n:8 ~k:8 ())
  in
  let mk () = Tensor.view2d (Tensor.create Datatype.F32 [| 8; 8 |]) in
  Fault.with_plan
    { Fault.seed = 1;
      rules =
        [ { Fault.rsite = "tpp.brgemm.store"; rkind = Fault.Nan;
            rtrigger = Fault.Nth { first = 1; period = Some 1 } } ] }
    (fun () ->
      let prev = Tpp_check.mode () in
      Tpp_check.set_mode Tpp_check.Full;
      Fun.protect
        ~finally:(fun () -> Tpp_check.set_mode prev)
        (fun () ->
          match
            Team.run ~nthreads:2 (fun _ ->
                Brgemm.exec ker ~a:(mk ()) ~b:(mk ()) ~c:(mk ()))
          with
          | exception Team.Parallel_failure fs ->
            checkb "numeric errors surfaced" true
              (List.for_all
                 (fun (_, e) ->
                   match e with
                   | Tpp_check.Numeric_error _ -> true
                   | _ -> false)
                 fs)
          | () -> Alcotest.fail "expected poisoned kernels to raise"));
  checki "no leaked scratch lease" 0 (Scratch.busy_slots ());
  (* kernels still run through the same arenas and pool *)
  let c = mk () in
  Team.run ~nthreads:2 (fun _ -> Brgemm.exec ker ~a:(mk ()) ~b:(mk ()) ~c);
  checki "arenas clean after recovery" 0 (Scratch.busy_slots ())

let test_spec_parse_result_positions () =
  (match Spec_parser.parse_result "aB{" with
  | Error e ->
    checki "position of unterminated brace" 2 e.Spec_parser.pos;
    checkb "reason mentions brace" true
      (String.length e.Spec_parser.reason > 0)
  | Ok _ -> Alcotest.fail "expected parse error");
  (match Spec_parser.parse_result "ab?" with
  | Error e -> checki "position of bad char" 2 e.Spec_parser.pos
  | Ok _ -> Alcotest.fail "expected parse error");
  (match Spec_parser.parse_result "" with
  | Error e -> checki "empty spec at position 0" 0 e.Spec_parser.pos
  | Ok _ -> Alcotest.fail "expected parse error");
  checkb "valid spec parses" true
    (match Spec_parser.parse_result "bcaBCb" with Ok _ -> true | Error _ -> false)

let test_jit_fault_site_leaves_cache_clean () =
  (* an injected dispatch failure surfaces as Fault.Injected; once the
     plan clears, the same instantiation compiles and runs *)
  let specs =
    [ Loop_spec.make ~bound:4 ~step:1 ();
      Loop_spec.make ~bound:4 ~step:1 ();
      Loop_spec.make ~bound:4 ~step:1 () ]
  in
  Fault.with_plan
    { Fault.seed = 1;
      rules =
        [ { Fault.rsite = "parlooper.jit.compile"; rkind = Fault.Exn;
            rtrigger = Fault.Nth { first = 1; period = Some 1 } } ] }
    (fun () ->
      match Threaded_loop.create specs "abc" with
      | exception Fault.Injected _ -> ()
      | exception e ->
        Alcotest.fail ("unexpected exception " ^ Printexc.to_string e)
      | _ -> Alcotest.fail "expected injected dispatch failure");
  let l = Threaded_loop.create specs "abc" in
  let n = ref 0 in
  Threaded_loop.run l (fun _ -> incr n);
  checki "dispatch clean after fault cleared" 64 !n

let test_counters_growth_race () =
  (* many work-sharing instances claimed concurrently: the instance table
     grows under contention and every chunk is handed out exactly once *)
  let exercise runner =
    let n = 4 and instances = 64 in
    let claims = Array.init instances (fun _ -> Array.make n (-1)) in
    runner ~nthreads:n (fun ctx ->
        (* stagger the instance order per thread so growth is contended *)
        for k = 0 to instances - 1 do
          let inst = (k + (ctx.Team.tid * 17)) mod instances in
          let v = ctx.Team.fetch_chunk ~instance:inst ~chunk:1 in
          if v < n then claims.(inst).(v) <- ctx.Team.tid
        done);
    Array.iteri
      (fun i per ->
        checkb
          (Printf.sprintf "instance %d fully claimed" i)
          true
          (Array.for_all (fun t -> t >= 0) per))
      claims
  in
  exercise Team.run;
  exercise Team.run_spawn

(* ---- jit cache ---- *)

let test_jit_cache () =
  Threaded_loop.cache_clear ();
  let s = [ Loop_spec.make ~bound:4 ~step:1 () ] in
  let a = Threaded_loop.create s "a" in
  let b = Threaded_loop.create s "a" in
  checkb "cached object reused" true (a == b);
  let h, m = Threaded_loop.cache_stats () in
  checki "hits" 1 h;
  checki "misses" 1 m;
  let _ = Threaded_loop.create s "A" in
  let _, m2 = Threaded_loop.cache_stats () in
  checki "new spec = new miss" 2 m2;
  (* different bounds are a different cache key *)
  let _ = Threaded_loop.create [ Loop_spec.make ~bound:5 ~step:1 () ] "a" in
  let _, m3 = Threaded_loop.cache_stats () in
  checki "new bounds = new miss" 3 m3

let test_jit_cache_bounded () =
  Threaded_loop.cache_clear ();
  let old_cap = Threaded_loop.cache_get_capacity () in
  Threaded_loop.cache_set_capacity 4;
  for bound = 1 to 6 do
    ignore (Threaded_loop.create [ Loop_spec.make ~bound ~step:1 () ] "a")
  done;
  checki "size capped at capacity" 4 (Threaded_loop.cache_size ());
  (* the most recent entry survived eviction and is served from cache *)
  let s6 = [ Loop_spec.make ~bound:6 ~step:1 () ] in
  let x = Threaded_loop.create s6 "a" in
  let y = Threaded_loop.create s6 "a" in
  checkb "recent entry still cached" true (x == y);
  (* shrinking evicts immediately *)
  Threaded_loop.cache_set_capacity 2;
  checki "shrink evicts down" 2 (Threaded_loop.cache_size ());
  Threaded_loop.cache_set_capacity old_cap;
  Threaded_loop.cache_clear ()

let test_jit_cache_concurrent_domains () =
  (* several domains hammering create over more distinct keys than the
     LRU holds: every returned loop must still be valid, the size bound
     must hold under concurrent insert/evict, and the hit/miss counters
     must account for every lookup *)
  Threaded_loop.cache_clear ();
  let old_cap = Threaded_loop.cache_get_capacity () in
  Threaded_loop.cache_set_capacity 8;
  let domains = 4 and iters = 100 and distinct = 16 in
  let worker seed () =
    let ok = ref true in
    for i = 0 to iters - 1 do
      let bound = 1 + ((seed + i) mod distinct) in
      let l = Threaded_loop.create [ Loop_spec.make ~bound ~step:1 () ] "a" in
      let count = ref 0 in
      Threaded_loop.run l (fun _ -> incr count);
      if !count <> bound then ok := false
    done;
    !ok
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker (3 * d))) in
  let oks = List.map Domain.join ds in
  checkb "every loop iterated its own bounds" true (List.for_all Fun.id oks);
  checkb "size within capacity under churn" true
    (Threaded_loop.cache_size () <= 8);
  let h, m = Threaded_loop.cache_stats () in
  checki "hits + misses account for every create" (domains * iters) (h + m);
  checkb "each distinct key missed at least once" true (m >= distinct);
  Threaded_loop.cache_set_capacity old_cap;
  Threaded_loop.cache_clear ()

(* ---- telemetry integration ---- *)

let test_run_records_span_per_thread () =
  Telemetry.Registry.reset ();
  Telemetry.Registry.enable ();
  let specs =
    [
      Loop_spec.make ~bound:8 ~step:1 ();
      Loop_spec.make ~bound:8 ~step:1 ();
      Loop_spec.make ~bound:8 ~step:1 ();
    ]
  in
  let t = Threaded_loop.create specs "BCa" in
  let hits = Atomic.make 0 in
  Threaded_loop.run ~nthreads:3 t (fun _ -> Atomic.incr hits);
  Telemetry.Registry.disable ();
  checki "all iterations ran" 512 (Atomic.get hits);
  let loop_spans =
    List.filter
      (fun s -> s.Telemetry.Span.cat = "loop")
      (Telemetry.Span.all ())
  in
  checki "one span per team thread" 3 (List.length loop_spans);
  let tids =
    List.sort_uniq compare
      (List.map (fun s -> s.Telemetry.Span.tid) loop_spans)
  in
  checkb "distinct tids 0..2" true (tids = [ 0; 1; 2 ]);
  List.iter
    (fun s ->
      checkb "span named after spec" true
        (s.Telemetry.Span.name = "BCa");
      checkb "barrier arg present" true
        (List.mem_assoc "barrier_wait_ns" s.Telemetry.Span.args))
    loop_spans;
  Telemetry.Registry.reset ()

let () =
  Alcotest.run "parlooper"
    [
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "parallel" `Quick test_parse_parallel;
          Alcotest.test_case "grid" `Quick test_parse_grid;
          Alcotest.test_case "directives" `Quick test_parse_directives;
          Alcotest.test_case "barrier" `Quick test_parse_barrier;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
        ] );
      ( "nest",
        [
          Alcotest.test_case "serial coverage" `Quick test_serial_coverage;
          Alcotest.test_case "iteration order" `Quick
            test_serial_ordering_innermost;
          Alcotest.test_case "collapse coverage" `Quick
            test_parallel_collapse_coverage;
          Alcotest.test_case "grid coverage" `Quick test_grid_coverage;
          Alcotest.test_case "grid thread count" `Quick test_grid_thread_count;
          Alcotest.test_case "disjoint partition" `Quick
            test_parallel_partition_disjoint;
          Alcotest.test_case "traced coverage" `Quick test_traced_matches_run;
          Alcotest.test_case "traced deterministic" `Quick
            test_traced_static_assignment_matches_run;
          Alcotest.test_case "body invocations" `Quick test_body_invocations;
          Alcotest.test_case "non-divisible bounds" `Quick
            test_non_divisible_bounds;
          Alcotest.test_case "init/term per thread" `Quick
            test_init_term_per_thread;
          Alcotest.test_case "barrier pipeline" `Quick test_barrier_pipeline;
          Alcotest.test_case "invalid specs" `Quick test_invalid_specs_rejected;
          qt prop_random_serial_specs_cover;
          qt prop_parallel_equals_serial;
        ] );
      ( "team",
        [
          Alcotest.test_case "barrier" `Quick test_team_barrier_sync;
          Alcotest.test_case "exceptions" `Quick test_team_exception_propagates;
          Alcotest.test_case "aggregates all failures" `Quick
            test_team_aggregates_all_failures;
          Alcotest.test_case "dynamic chunks" `Quick
            test_team_dynamic_chunks_disjoint;
        ] );
      ( "pool",
        [
          Alcotest.test_case "worker reuse" `Quick test_pool_worker_reuse;
          Alcotest.test_case "exception leaves pool usable" `Quick
            test_pool_exception_leaves_pool_usable;
          Alcotest.test_case "barrier stress" `Quick test_pool_barrier_stress;
          Alcotest.test_case "nested fallback" `Quick
            test_pool_nested_region_falls_back;
          Alcotest.test_case "watchdog warns" `Quick
            test_watchdog_warns_without_failing;
          Alcotest.test_case "watchdog abandons stuck worker" `Quick
            test_watchdog_abandons_stuck_worker;
          Alcotest.test_case "worker death transparent fallback" `Quick
            test_worker_death_transparent_fallback;
          Alcotest.test_case "worker exception leaves arenas clean" `Quick
            test_worker_exception_leaves_arenas_clean;
          Alcotest.test_case "spec parse_result positions" `Quick
            test_spec_parse_result_positions;
          Alcotest.test_case "jit fault site" `Quick
            test_jit_fault_site_leaves_cache_clean;
          Alcotest.test_case "counters growth race" `Quick
            test_counters_growth_race;
        ] );
      ( "cache",
        [
          Alcotest.test_case "jit cache" `Quick test_jit_cache;
          Alcotest.test_case "lru bound" `Quick test_jit_cache_bounded;
          Alcotest.test_case "concurrent domains" `Quick
            test_jit_cache_concurrent_domains;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "span per thread" `Quick
            test_run_records_span_per_thread;
        ] );
    ]

(* Tests for lib/serve: continuous-batching determinism (batched decode
   bit-identical to sequential single-session replay), KV-pool recycling,
   bounded-queue backpressure, EDF admission ordering, load-generator
   reproducibility, and driver end-to-end metrics. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let clean () =
  Telemetry.Registry.reset ();
  Telemetry.Registry.disable ()

let make_llm () =
  let rng = Prng.create 7 in
  Llm.create ~rng ~block:8 Llm.tiny

(* exact float equality element-wise: tol 0 makes approx_equal "max
   |a-b| <= 0", i.e. bit-identical for non-NaN values *)
let bits_equal = Tensor.approx_equal ~tol:0.0

let frozen_now () = 0.0

(* a request with deterministic token ids derived from [id] *)
let mk_req ?(deadline_s = Float.infinity) ~prompt_len ~new_tokens id =
  let vocab = Llm.tiny.Llm.vocab in
  let prompt = Array.init prompt_len (fun i -> (7 + (3 * id) + i) mod vocab) in
  let gen = Array.init new_tokens (fun i -> (11 + (5 * id) + i) mod vocab) in
  Serve.Request.make ~id ~prompt ~gen ~deadline_s ()

(* reference: run one request alone against a fresh cache, no scheduler *)
let replay_sequential llm (req : Serve.Request.t) =
  let cache = Llm.new_cache llm in
  let first = Llm.prefill llm cache (Llm.embed llm req.Serve.Request.prompt) in
  let outs = ref [ first ] in
  for k = 0 to req.Serve.Request.new_tokens - 2 do
    let e = Llm.embed llm [| req.Serve.Request.gen.(k) |] in
    outs := Llm.decode_step llm cache e :: !outs
  done;
  List.rev !outs

let acquire_exn pool =
  match Serve.Kv_pool.acquire pool with
  | `Cache c -> c
  | `Denied -> Alcotest.fail "unexpected KV denial"

(* ---- continuous batching is bit-identical to sequential decoding ---- *)

let test_batched_equals_sequential () =
  clean ();
  let llm = make_llm () in
  let reqs =
    [
      mk_req ~prompt_len:5 ~new_tokens:4 0;
      mk_req ~prompt_len:3 ~new_tokens:1 1;  (* prefill-only request *)
      mk_req ~prompt_len:8 ~new_tokens:6 2;
      mk_req ~prompt_len:2 ~new_tokens:3 3;
      mk_req ~prompt_len:6 ~new_tokens:2 4;
    ]
  in
  (* interleave everything: batch big enough to run all five together *)
  let sched = Serve.Scheduler.create llm in
  List.iter
    (fun r -> checkb "accepted" true (Serve.Scheduler.submit sched ~now:0.0 r))
    reqs;
  Serve.Scheduler.drain sched ~now:frozen_now;
  checki "all finished" (List.length reqs)
    (List.length (Serve.Scheduler.finished sched));
  checki "token accounting" (4 + 1 + 6 + 3 + 2)
    (Serve.Scheduler.tokens_emitted sched);
  List.iter
    (fun (r : Serve.Request.t) ->
      checkb "state finished" true (r.Serve.Request.state = Serve.Request.Finished);
      let batched = Serve.Request.outputs r in
      let alone = replay_sequential llm r in
      checki "output count" (List.length alone) (List.length batched);
      List.iteri
        (fun i (b, a) ->
          checkb
            (Printf.sprintf "req %d token %d bit-identical" r.Serve.Request.id i)
            true (bits_equal b a))
        (List.combine batched alone))
    reqs

(* ---- KV-pool recycling ---- *)

let test_kv_pool_recycles () =
  clean ();
  let llm = make_llm () in
  let config =
    { Serve.Scheduler.default_config with Serve.Scheduler.max_batch = 1 }
  in
  let sched = Serve.Scheduler.create ~config llm in
  for id = 0 to 5 do
    ignore
      (Serve.Scheduler.submit sched ~now:0.0
         (mk_req ~prompt_len:4 ~new_tokens:3 id))
  done;
  Serve.Scheduler.drain sched ~now:frozen_now;
  let pool = Serve.Scheduler.pool sched in
  (* sequential sessions (batch = 1) must share one recycled cache *)
  checki "one cache allocated" 1 (Serve.Kv_pool.created pool);
  checki "five reuses" 5 (Serve.Kv_pool.reused pool);
  checki "nothing leaked" 0 (Serve.Kv_pool.in_use pool);
  checki "cache back in free list" 1 (Serve.Kv_pool.free_count pool);
  checkb "peak rows covers prompt+decode" true
    (Serve.Kv_pool.peak_rows pool >= 4 + 2);
  (* results are still correct through recycled caches *)
  List.iter
    (fun (r : Serve.Request.t) ->
      let alone = replay_sequential llm r in
      List.iter2
        (fun b a -> checkb "recycled cache bit-identical" true (bits_equal b a))
        (Serve.Request.outputs r) alone)
    (Serve.Scheduler.finished sched)

let test_kv_pool_acquire_release () =
  clean ();
  let llm = make_llm () in
  let pool = Serve.Kv_pool.create ~init_cap:8 ~max_free:2 llm in
  let c1 = acquire_exn pool in
  let c2 = acquire_exn pool in
  let c3 = acquire_exn pool in
  checki "three created" 3 (Serve.Kv_pool.created pool);
  checki "three in use" 3 (Serve.Kv_pool.in_use pool);
  Serve.Kv_pool.release pool c1;
  Serve.Kv_pool.release pool c2;
  Serve.Kv_pool.release pool c3;
  (* max_free = 2: the third release is dropped, not retained *)
  checki "free list bounded" 2 (Serve.Kv_pool.free_count pool);
  checki "none in use" 0 (Serve.Kv_pool.in_use pool);
  let c4 = acquire_exn pool in
  checki "reused, not created" 3 (Serve.Kv_pool.created pool);
  checki "reuse counted" 1 (Serve.Kv_pool.reused pool);
  checki "recycled cache rewound" 0 (Llm.cache_len c4)

(* ---- bounded queue backpressure ---- *)

let test_queue_rejection () =
  clean ();
  let llm = make_llm () in
  let config =
    { Serve.Scheduler.default_config with Serve.Scheduler.max_queue = 2 }
  in
  let sched = Serve.Scheduler.create ~config llm in
  let reqs =
    List.init 5 (fun id -> mk_req ~prompt_len:3 ~new_tokens:2 id)
  in
  let accepted =
    List.map (fun r -> Serve.Scheduler.submit sched ~now:0.0 r) reqs
  in
  Alcotest.(check (list bool))
    "first two accepted, rest rejected"
    [ true; true; false; false; false ]
    accepted;
  List.iteri
    (fun i (r : Serve.Request.t) ->
      checkb
        (Printf.sprintf "request %d state" i)
        true
        (r.Serve.Request.state
        = (if i < 2 then Serve.Request.Queued else Serve.Request.Rejected)))
    reqs;
  Serve.Scheduler.drain sched ~now:frozen_now;
  checki "only accepted requests finish" 2
    (List.length (Serve.Scheduler.finished sched));
  checki "ledger keeps everything" 5
    (List.length (Serve.Scheduler.requests sched))

(* ---- admission policy ---- *)

let test_edf_orders_by_deadline () =
  clean ();
  let llm = make_llm () in
  let config =
    { Serve.Scheduler.default_config with
      Serve.Scheduler.max_batch = 1;
      policy = Serve.Scheduler.Edf }
  in
  let sched = Serve.Scheduler.create ~config llm in
  (* submitted in deadline order 3.0, 1.0, 2.0 *)
  List.iter
    (fun (id, dl) ->
      ignore
        (Serve.Scheduler.submit sched ~now:0.0
           (mk_req ~deadline_s:dl ~prompt_len:3 ~new_tokens:2 id)))
    [ (0, 3.0); (1, 1.0); (2, 2.0) ];
  Serve.Scheduler.drain sched ~now:frozen_now;
  let order =
    List.map
      (fun (r : Serve.Request.t) -> r.Serve.Request.id)
      (Serve.Scheduler.finished sched)
  in
  Alcotest.(check (list int)) "earliest deadline first" [ 1; 2; 0 ] order;
  (* same workload under FCFS completes in arrival order *)
  let sched2 =
    Serve.Scheduler.create
      ~config:{ config with Serve.Scheduler.policy = Serve.Scheduler.Fcfs }
      llm
  in
  List.iteri
    (fun i dl ->
      ignore
        (Serve.Scheduler.submit sched2 ~now:(0.001 *. float_of_int i)
           (mk_req ~deadline_s:dl ~prompt_len:3 ~new_tokens:2 i)))
    [ 3.0; 1.0; 2.0 ];
  Serve.Scheduler.drain sched2 ~now:frozen_now;
  let order2 =
    List.map
      (fun (r : Serve.Request.t) -> r.Serve.Request.id)
      (Serve.Scheduler.finished sched2)
  in
  Alcotest.(check (list int)) "fcfs keeps arrival order" [ 0; 1; 2 ] order2

let test_policy_of_string () =
  checkb "fcfs" true
    (Serve.Scheduler.policy_of_string "fcfs" = Some Serve.Scheduler.Fcfs);
  checkb "deadline" true
    (Serve.Scheduler.policy_of_string "deadline" = Some Serve.Scheduler.Edf);
  checkb "edf alias" true
    (Serve.Scheduler.policy_of_string "edf" = Some Serve.Scheduler.Edf);
  checkb "unknown" true (Serve.Scheduler.policy_of_string "lifo" = None)

(* ---- load generator ---- *)

let test_load_gen_deterministic () =
  let cfg =
    { Serve.Load_gen.default with
      Serve.Load_gen.rate_hz = 100.0;
      duration_s = 1.0 }
  in
  let t1 = Serve.Load_gen.generate cfg ~vocab:64 in
  let t2 = Serve.Load_gen.generate cfg ~vocab:64 in
  checkb "non-empty" true (t1 <> []);
  checki "same length" (List.length t1) (List.length t2);
  List.iter2
    (fun (at1, (r1 : Serve.Request.t)) (at2, (r2 : Serve.Request.t)) ->
      checkb "same arrival" true (at1 = at2);
      checkb "same prompt" true (r1.Serve.Request.prompt = r2.Serve.Request.prompt);
      checkb "same gen ids" true (r1.Serve.Request.gen = r2.Serve.Request.gen))
    t1 t2;
  (* sorted arrivals, within the window, valid token ids *)
  let last = ref 0.0 in
  List.iter
    (fun (at, (r : Serve.Request.t)) ->
      checkb "sorted" true (at >= !last);
      last := at;
      checkb "inside window" true (at >= 0.0 && at < cfg.Serve.Load_gen.duration_s);
      Array.iter
        (fun id -> checkb "prompt id in vocab" true (id >= 0 && id < 64))
        r.Serve.Request.prompt;
      checkb "lengths in dist" true
        (let n = Array.length r.Serve.Request.prompt in
         n >= 4 && n <= 12))
    t1;
  (* a different seed produces a different trace *)
  let t3 =
    Serve.Load_gen.generate { cfg with Serve.Load_gen.seed = 43 } ~vocab:64
  in
  checkb "seed changes trace" true
    (List.map fst t1 <> List.map fst t3)

(* ---- driver end-to-end ---- *)

let test_driver_end_to_end () =
  clean ();
  Telemetry.Registry.enable ();
  let llm = make_llm () in
  let cfg =
    { Serve.Load_gen.default with
      Serve.Load_gen.rate_hz = 50.0;
      duration_s = 0.3;
      deadline_s = 30.0 }
  in
  let trace = Serve.Load_gen.generate cfg ~vocab:Llm.tiny.Llm.vocab in
  let sched = Serve.Scheduler.create llm in
  let o = Serve.Driver.run sched trace in
  Telemetry.Registry.disable ();
  let s = o.Serve.Driver.summary in
  checki "everything submitted" (List.length trace) s.Serve.Metrics.submitted;
  checki "everything completed"
    (s.Serve.Metrics.submitted - s.Serve.Metrics.rejected)
    s.Serve.Metrics.completed;
  checki "ledger matches" (List.length trace)
    (List.length o.Serve.Driver.requests);
  checkb "tokens flowed" true (s.Serve.Metrics.tokens > 0);
  checkb "throughput positive" true (s.Serve.Metrics.tokens_per_s > 0.0);
  checkb "ttft p50 positive" true (s.Serve.Metrics.ttft_ms.Serve.Metrics.p50 > 0.0);
  checkb "percentiles ordered" true
    (s.Serve.Metrics.ttft_ms.Serve.Metrics.p50
     <= s.Serve.Metrics.ttft_ms.Serve.Metrics.p99);
  checkb "goodput bounded by completed" true
    (s.Serve.Metrics.goodput <= s.Serve.Metrics.completed);
  checkb "summary prints" true
    (String.length (Serve.Metrics.summary_to_string s) > 0);
  clean ()

(* ---- live metrics plane ---- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* pull the integer value of ["name":<int>] out of one JSONL line *)
let json_int_field line name =
  let key = "\"" ^ name ^ "\":" in
  let kl = String.length key and ll = String.length line in
  let rec find i =
    if i + kl > ll then None
    else if String.sub line i kl = key then begin
      let j = ref (i + kl) in
      let start = !j in
      if !j < ll && line.[!j] = '-' then incr j;
      while !j < ll && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      if !j > start then int_of_string_opt (String.sub line start (!j - start))
      else None
    end
    else find (i + 1)
  in
  find 0

let test_driver_live_metrics () =
  clean ();
  Telemetry.Registry.enable ();
  let llm = make_llm () in
  let cfg =
    { Serve.Load_gen.default with
      Serve.Load_gen.rate_hz = 50.0;
      duration_s = 0.4;
      deadline_s = 30.0 }
  in
  let trace = Serve.Load_gen.generate cfg ~vocab:Llm.tiny.Llm.vocab in
  let sched = Serve.Scheduler.create llm in
  let path = Filename.temp_file "parlooper-live" ".jsonl" in
  let oc = open_out path in
  let o =
    Serve.Driver.run ~live:{ Serve.Driver.every_s = 0.05; out = oc } sched
      trace
  in
  close_out oc;
  Telemetry.Registry.disable ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  checkb "at least two snapshots" true (List.length lines >= 2);
  checki "snapshot count matches outcome" o.Serve.Driver.snapshots
    (List.length lines);
  List.iteri
    (fun i line ->
      (try Telemetry.Json_check.validate line with
      | Telemetry.Json_check.Bad_json m ->
        Alcotest.failf "snapshot %d invalid JSON: %s" i m);
      if i > 0 then
        checkb
          (Printf.sprintf "snapshot %d carries deltas" i)
          true
          (contains ~needle:"\"deltas\"" line
          && contains ~needle:"\"rates\"" line))
    lines;
  (* counters are monotonic across the stream *)
  let submitted_series =
    List.filter_map
      (fun l -> json_int_field l Serve.Metrics.submitted_name)
      lines
  in
  checki "every snapshot reports the counter" (List.length lines)
    (List.length submitted_series);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  checkb "submitted counter is monotonic" true (monotone submitted_series);
  (* the final snapshot agrees with the end-of-run state *)
  let last = List.nth lines (List.length lines - 1) in
  let s = o.Serve.Driver.summary in
  (match json_int_field last Serve.Metrics.completed_name with
  | Some v -> checki "final completed matches summary" s.Serve.Metrics.completed v
  | None -> Alcotest.fail "final snapshot missing completed counter");
  (match json_int_field last Serve.Metrics.kv_in_use_name with
  | Some v -> checki "final kv_in_use gauge drained" 0 v
  | None -> Alcotest.fail "final snapshot missing kv_in_use gauge");
  (* the same values flow into Report.to_json: the gauges section must
     agree with the stream's last line *)
  let j = Telemetry.Report.to_json ~peak_gflops:1.0 ~mem_bw_gbs:1.0 () in
  checkb "report has gauges section" true (contains ~needle:"\"gauges\"" j);
  (match json_int_field j Serve.Metrics.kv_free_name with
  | Some rv -> (
    match json_int_field last Serve.Metrics.kv_free_name with
    | Some lv -> checki "kv_free gauge agrees with report" rv lv
    | None -> Alcotest.fail "final snapshot missing kv_free gauge")
  | None -> Alcotest.fail "report missing kv_free gauge");
  clean ()

(* ---- hardened failure paths ---- *)

(* a request whose deadline budget is already gone is refused at submit:
   it could never meet its SLO, so admitting it would only burn compute *)
let test_submit_past_deadline_rejected () =
  clean ();
  let llm = make_llm () in
  let sched = Serve.Scheduler.create llm in
  let r = mk_req ~deadline_s:0.0 ~prompt_len:3 ~new_tokens:2 0 in
  checkb "refused" false (Serve.Scheduler.submit sched ~now:5.0 r);
  checkb "stamped rejected" true
    (r.Serve.Request.state = Serve.Request.Rejected);
  checkb "nothing queued" true (not (Serve.Scheduler.busy sched))

(* a session whose deadline passes mid-flight is cancelled and its KV
   cache goes back to the pool *)
let test_deadline_cancels_inflight () =
  clean ();
  let llm = make_llm () in
  let sched = Serve.Scheduler.create llm in
  let r = mk_req ~deadline_s:0.5 ~prompt_len:3 ~new_tokens:50 0 in
  checkb "accepted" true (Serve.Scheduler.submit sched ~now:0.0 r);
  let vnow = ref 0.0 in
  ignore (Serve.Scheduler.step sched ~now:(fun () -> !vnow));
  checkb "decoding after first step" true
    (r.Serve.Request.state = Serve.Request.Decoding);
  vnow := 1.0;
  (* past the 0.5 s deadline *)
  ignore (Serve.Scheduler.step sched ~now:(fun () -> !vnow));
  checkb "cancelled mid-flight" true
    (r.Serve.Request.state = Serve.Request.Cancelled);
  checki "KV returned to pool" 0
    (Serve.Kv_pool.in_use (Serve.Scheduler.pool sched));
  checkb "scheduler idle" true (not (Serve.Scheduler.busy sched))

(* a transient decode failure is retried after rewinding the KV cache;
   the recovered output must be bit-identical to a run that never saw
   the fault *)
let test_retry_transient_bit_identical () =
  clean ();
  let llm = make_llm () in
  let before = Telemetry.Counter.value Telemetry.Registry.fault_retries_name in
  let r = mk_req ~prompt_len:4 ~new_tokens:4 0 in
  Fault.with_plan
    { Fault.seed = 1;
      rules =
        [ { Fault.rsite = "serve.decode"; rkind = Fault.Exn;
            rtrigger = Fault.Nth { first = 2; period = None } } ] }
    (fun () ->
      let sched = Serve.Scheduler.create llm in
      checkb "accepted" true (Serve.Scheduler.submit sched ~now:0.0 r);
      Serve.Scheduler.drain sched ~now:frozen_now);
  checkb "finished despite fault" true
    (r.Serve.Request.state = Serve.Request.Finished);
  checkb "a retry happened" true
    (Telemetry.Counter.value Telemetry.Registry.fault_retries_name > before);
  List.iter2
    (fun b a -> checkb "recovered output bit-identical" true (bits_equal b a))
    (Serve.Request.outputs r) (replay_sequential llm r)

(* a fault that persists past max_retries fails the request without
   leaking its KV cache or wedging the scheduler *)
let test_retry_exhausted_fails_cleanly () =
  clean ();
  let llm = make_llm () in
  let good = mk_req ~prompt_len:3 ~new_tokens:2 0 in
  let doomed = mk_req ~prompt_len:3 ~new_tokens:2 1 in
  Fault.with_plan
    { Fault.seed = 1;
      rules =
        [ { Fault.rsite = "serve.prefill"; rkind = Fault.Exn;
            (* from invocation 2 every attempt fails: request 0 prefills
               clean, request 1 exhausts all its retries *)
            rtrigger = Fault.Nth { first = 2; period = Some 1 } } ] }
    (fun () ->
      let sched = Serve.Scheduler.create llm in
      checkb "good accepted" true (Serve.Scheduler.submit sched ~now:0.0 good);
      checkb "doomed accepted" true
        (Serve.Scheduler.submit sched ~now:0.0 doomed);
      Serve.Scheduler.drain sched ~now:frozen_now;
      checkb "good finished" true
        (good.Serve.Request.state = Serve.Request.Finished);
      checkb "doomed failed" true
        (doomed.Serve.Request.state = Serve.Request.Failed);
      checki "no KV leaked" 0
        (Serve.Kv_pool.in_use (Serve.Scheduler.pool sched)))

(* KV denial sheds load (shrinks the admission window) but every request
   still completes once the denial clears *)
let test_denial_sheds_then_recovers () =
  clean ();
  let llm = make_llm () in
  let before_shed = Telemetry.Counter.value Telemetry.Registry.fault_shed_name in
  let config =
    { Serve.Scheduler.default_config with Serve.Scheduler.max_batch = 2 }
  in
  let reqs = List.init 4 (fun id -> mk_req ~prompt_len:3 ~new_tokens:2 id) in
  Fault.with_plan
    { Fault.seed = 1;
      rules =
        [ { Fault.rsite = "serve.kv.acquire"; rkind = Fault.Deny;
            rtrigger = Fault.Nth { first = 2; period = Some 3 } } ] }
    (fun () ->
      let sched = Serve.Scheduler.create ~config llm in
      List.iter
        (fun r ->
          checkb "accepted" true (Serve.Scheduler.submit sched ~now:0.0 r))
        reqs;
      Serve.Scheduler.drain sched ~now:frozen_now;
      checkb "denials counted" true (Serve.Kv_pool.denied (Serve.Scheduler.pool sched) > 0));
  checkb "shed counted" true
    (Telemetry.Counter.value Telemetry.Registry.fault_shed_name > before_shed);
  List.iter
    (fun (r : Serve.Request.t) ->
      checkb "finished despite denials" true
        (r.Serve.Request.state = Serve.Request.Finished))
    reqs

(* the chaos harness is deterministic: same seed, same report *)
let test_chaos_deterministic () =
  clean ();
  let config = { Serve.Chaos.default with Serve.Chaos.requests = 8 } in
  let a = Serve.Chaos.run ~config () in
  let b = Serve.Chaos.run ~config () in
  checkb "faults fired" true (a.Serve.Chaos.injected > 0);
  Alcotest.(check (list string)) "no violations" [] a.Serve.Chaos.violations;
  Alcotest.(check (list string)) "no violations (2nd)" [] b.Serve.Chaos.violations;
  (* timing-sensitive counters (trips, quarantines, retries) may differ
     under CI load; the fault schedule and the ledger must not *)
  checki "same injected" a.Serve.Chaos.injected b.Serve.Chaos.injected;
  checki "same submitted" a.Serve.Chaos.submitted b.Serve.Chaos.submitted;
  checki "same finished" a.Serve.Chaos.finished b.Serve.Chaos.finished;
  checki "same cancelled" a.Serve.Chaos.cancelled b.Serve.Chaos.cancelled;
  checki "same failed" a.Serve.Chaos.failed b.Serve.Chaos.failed;
  checki "same compared" a.Serve.Chaos.compared b.Serve.Chaos.compared;
  checki "same mismatched" a.Serve.Chaos.mismatched b.Serve.Chaos.mismatched

(* trace conservation under chaos: with the flight recorder armed, every
   ledgered request — whatever faults it survived — must leave a complete
   well-nested causal timeline (a check failure lands in [violations]) *)
let test_chaos_trace_conservation () =
  clean ();
  Telemetry.Recorder.set_enabled true;
  let config = { Serve.Chaos.default with Serve.Chaos.requests = 8 } in
  let r = Serve.Chaos.run ~config () in
  Alcotest.(check (list string)) "no violations" [] r.Serve.Chaos.violations;
  checki "every ledgered request trace-checked" r.Serve.Chaos.submitted
    r.Serve.Chaos.traces_checked

(* the same invariant over the paged arena with speculative decoding:
   rewinds, spec-verify rounds and block-level COW must not truncate or
   reorder a request's span tree *)
let test_chaos_trace_conservation_paged_spec () =
  clean ();
  Telemetry.Recorder.set_enabled true;
  let scheduler =
    { Serve.Chaos.default.Serve.Chaos.scheduler with
      Serve.Scheduler.paged = true;
      block_size = 16;
      num_blocks = 128;
      spec_k = 4
    }
  in
  let config =
    { Serve.Chaos.default with
      Serve.Chaos.requests = 12;
      scheduler;
      shared_prefix = 12
    }
  in
  let r = Serve.Chaos.run ~config () in
  Alcotest.(check (list string)) "no violations" [] r.Serve.Chaos.violations;
  checki "every ledgered request trace-checked" r.Serve.Chaos.submitted
    r.Serve.Chaos.traces_checked;
  checkb "paged arena actually exercised" true
    (r.Serve.Chaos.pages_allocated > 0)

(* ---- online tuning: hot-swapped specs stay bit-identical ---- *)

(* an online-tune scheduler must produce the same tokens as an untuned
   one: first arrivals decode on the default spec while the background
   domain tunes; once a tuned spec is published (gated on a bit-identity
   probe), later nest compiles pick it up through the resolver hook *)
let test_online_tune_bit_identical () =
  clean ();
  let llm = make_llm () in
  let reqs () =
    [
      mk_req ~prompt_len:5 ~new_tokens:4 0;
      mk_req ~prompt_len:8 ~new_tokens:6 1;
      mk_req ~prompt_len:3 ~new_tokens:5 2;
    ]
  in
  let run_wave sched rs =
    List.iter
      (fun r -> checkb "accepted" true (Serve.Scheduler.submit sched ~now:0.0 r))
      rs;
    Serve.Scheduler.drain sched ~now:frozen_now
  in
  (* reference: untuned scheduler, default specs everywhere *)
  let reference =
    let rs = reqs () in
    run_wave (Serve.Scheduler.create llm) rs;
    List.map Serve.Request.outputs rs
  in
  let config =
    { Serve.Scheduler.default_config with Serve.Scheduler.online_tune = true }
  in
  Fun.protect
    ~finally:(fun () -> Spec_cache.disable ())
    (fun () ->
      (* warm-up wave: first arrivals serve the default spec and enqueue
         their shapes for the background tuner *)
      run_wave (Serve.Scheduler.create ~config llm) (reqs ());
      checkb "tuner drained" true (Spec_cache.drain ~timeout_s:60.0);
      let mid = Spec_cache.stats () in
      checkb "background tunes ran" true (mid.Spec_cache.tunes > 0);
      checkb "at least one hot-swap" true (mid.Spec_cache.swaps > 0);
      (* post-swap wave: the same requests now compile against published
         specs and must reproduce the untuned outputs bit for bit *)
      let rs = reqs () in
      run_wave (Serve.Scheduler.create ~config llm) rs;
      checkb "tuned specs served from cache" true
        ((Spec_cache.stats ()).Spec_cache.hits > mid.Spec_cache.hits);
      List.iter2
        (fun ref_outs (r : Serve.Request.t) ->
          List.iter2
            (fun a b ->
              checkb "tuned decode bit-identical" true (bits_equal a b))
            ref_outs (Serve.Request.outputs r))
        reference rs)

let () =
  Alcotest.run "serve"
    [
      ( "determinism",
        [
          Alcotest.test_case "batched = sequential (bit-identical)" `Quick
            test_batched_equals_sequential;
        ] );
      ( "kv-pool",
        [
          Alcotest.test_case "scheduler recycles" `Quick test_kv_pool_recycles;
          Alcotest.test_case "acquire/release bounds" `Quick
            test_kv_pool_acquire_release;
        ] );
      ( "backpressure",
        [ Alcotest.test_case "bounded queue rejects" `Quick test_queue_rejection ]
      );
      ( "policy",
        [
          Alcotest.test_case "edf vs fcfs order" `Quick
            test_edf_orders_by_deadline;
          Alcotest.test_case "policy_of_string" `Quick test_policy_of_string;
        ] );
      ( "load-gen",
        [
          Alcotest.test_case "deterministic" `Quick test_load_gen_deterministic;
        ] );
      ( "driver",
        [
          Alcotest.test_case "end-to-end" `Quick test_driver_end_to_end;
          Alcotest.test_case "live metrics stream" `Quick
            test_driver_live_metrics;
        ] );
      ( "fault-paths",
        [
          Alcotest.test_case "past-deadline submit refused" `Quick
            test_submit_past_deadline_rejected;
          Alcotest.test_case "deadline cancels in-flight" `Quick
            test_deadline_cancels_inflight;
          Alcotest.test_case "transient retry bit-identical" `Quick
            test_retry_transient_bit_identical;
          Alcotest.test_case "exhausted retries fail cleanly" `Quick
            test_retry_exhausted_fails_cleanly;
          Alcotest.test_case "denial sheds then recovers" `Quick
            test_denial_sheds_then_recovers;
          Alcotest.test_case "chaos deterministic" `Quick
            test_chaos_deterministic;
          Alcotest.test_case "chaos trace conservation" `Quick
            test_chaos_trace_conservation;
          Alcotest.test_case "chaos trace conservation (paged+spec)" `Quick
            test_chaos_trace_conservation_paged_spec;
        ] );
      ( "online-tune",
        [
          Alcotest.test_case "hot-swap bit-identical" `Quick
            test_online_tune_bit_identical;
        ] );
    ]

(* Tests for lib/cluster: tensor-parallel sharding bit-identity,
   Load_gen substream splitting, router conservation under chaos with a
   replica quarantine, per-replica EDF ordering through the router,
   exactly-once KV handoff release, and disaggregated-decode identity. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let clean () =
  Telemetry.Registry.reset ();
  Telemetry.Registry.disable ()

let make_llm () =
  let rng = Prng.create 7 in
  Llm.create ~rng ~block:8 Llm.tiny

let bits_equal = Tensor.approx_equal ~tol:0.0
let frozen_now () = 0.0

let mk_req ?(deadline_s = Float.infinity) ~prompt_len ~new_tokens id =
  let vocab = Llm.tiny.Llm.vocab in
  let prompt = Array.init prompt_len (fun i -> (7 + (3 * id) + i) mod vocab) in
  let gen = Array.init new_tokens (fun i -> (11 + (5 * id) + i) mod vocab) in
  Serve.Request.make ~id ~prompt ~gen ~deadline_s ()

let replay_sequential llm (req : Serve.Request.t) =
  let cache = Llm.new_cache llm in
  let first = Llm.prefill llm cache (Llm.embed llm req.Serve.Request.prompt) in
  let outs = ref [ first ] in
  for k = 0 to req.Serve.Request.new_tokens - 2 do
    let e = Llm.embed llm [| req.Serve.Request.gen.(k) |] in
    outs := Llm.decode_step llm cache e :: !outs
  done;
  List.rev !outs

(* ---- tensor-parallel sharding is bit-identical to unsharded ---- *)

let test_tp_bit_identity () =
  clean ();
  let llm = make_llm () in
  let plan =
    match Llm.tp_plan llm ~shards:2 with
    | Ok p -> p
    | Error e -> Alcotest.fail ("tp_plan: " ^ e)
  in
  checki "shards" 2 (Llm.tp_shards plan);
  let prompt = [| 3; 11; 7; 29; 1 |] in
  let gen = [| 5; 17; 23; 2 |] in
  (* unsharded reference *)
  let c0 = Llm.new_cache llm in
  let ref_first = Llm.prefill llm c0 (Llm.embed llm prompt) in
  let ref_steps =
    Array.map (fun tok -> Llm.decode_step llm c0 (Llm.embed llm [| tok |])) gen
  in
  (* sharded run over the same tokens *)
  let c1 = Llm.new_cache llm in
  let tp_first = Llm.prefill_tp plan c1 (Llm.embed llm prompt) in
  checkb "prefill bit-identical" true (bits_equal ref_first tp_first);
  Array.iteri
    (fun i tok ->
      let got = Llm.decode_step_tp plan c1 (Llm.embed llm [| tok |]) in
      checkb
        (Printf.sprintf "decode step %d bit-identical" i)
        true
        (bits_equal ref_steps.(i) got))
    gen;
  checki "cache lengths agree" (Llm.cache_len c0) (Llm.cache_len c1)

let test_tp_plan_rejects_bad_split () =
  clean ();
  let llm = make_llm () in
  (* tiny has 2 heads: 3 shards cannot split them *)
  checkb "3-way split rejected" true
    (match Llm.tp_plan llm ~shards:3 with Ok _ -> false | Error _ -> true)

(* ---- Load_gen.split: deterministic, disjoint, rate-dividing ---- *)

let test_load_gen_split () =
  clean ();
  let cfg =
    { Serve.Load_gen.default with
      Serve.Load_gen.seed = 5; rate_hz = 30.0; duration_s = 2.0 }
  in
  let subs = Serve.Load_gen.split cfg 3 in
  checki "three substreams" 3 (List.length subs);
  List.iter
    (fun (s : Serve.Load_gen.config) ->
      checkb "rate divided" true
        (Float.abs (s.Serve.Load_gen.rate_hz -. (30.0 /. 3.0)) < 1e-9))
    subs;
  let traces =
    List.map (fun s -> Serve.Load_gen.generate s ~vocab:64) subs
  in
  (* global id uniqueness across substreams, and the id lattice holds *)
  let ids = Hashtbl.create 64 in
  List.iteri
    (fun i trace ->
      List.iter
        (fun ((_, r) : float * Serve.Request.t) ->
          checkb "id on substream lattice" true
            (r.Serve.Request.id mod 3 = i);
          checkb "id globally unique" false (Hashtbl.mem ids r.Serve.Request.id);
          Hashtbl.add ids r.Serve.Request.id ())
        trace)
    traces;
  (* deterministic: regenerating any substream gives the same trace,
     independent of the other substreams *)
  let again = List.nth (Serve.Load_gen.split cfg 3) 1 in
  let t1 = Serve.Load_gen.generate (List.nth subs 1) ~vocab:64 in
  let t2 = Serve.Load_gen.generate again ~vocab:64 in
  checki "substream reproducible" (List.length t1) (List.length t2);
  List.iter2
    (fun ((a, ra) : float * Serve.Request.t) ((b, rb) : float * Serve.Request.t) ->
      checkb "same arrival" true (a = b);
      checki "same id" ra.Serve.Request.id rb.Serve.Request.id;
      checkb "same prompt" true (ra.Serve.Request.prompt = rb.Serve.Request.prompt);
      checkb "same gen" true (ra.Serve.Request.gen = rb.Serve.Request.gen))
    t1 t2;
  (* substreams with different indices draw different schedules *)
  let t0 = List.nth traces 0 in
  checkb "substreams differ" true
    (List.length t0 <> List.length t1
    || List.exists2
         (fun ((a, _) : float * Serve.Request.t) ((b, _) : float * Serve.Request.t) ->
           a <> b)
         t0 t1)

(* ---- router conservation under chaos with a quarantine ---- *)

let test_cluster_chaos_conservation () =
  clean ();
  Telemetry.Recorder.set_enabled true;
  let config =
    { Cluster.Chaos.default with Cluster.Chaos.requests = 16 }
  in
  let r = Cluster.Chaos.run ~config () in
  Alcotest.(check (list string)) "no violations" [] r.Cluster.Chaos.violations;
  checkb "faults fired" true (r.Cluster.Chaos.injected > 0);
  checkb "quarantine exercised the reroute path" true
    (r.Cluster.Chaos.rerouted >= 0);
  checki "ledger conserved" r.Cluster.Chaos.submitted
    (r.Cluster.Chaos.finished + r.Cluster.Chaos.rejected
    + r.Cluster.Chaos.cancelled + r.Cluster.Chaos.failed);
  checki "no double release" 0 r.Cluster.Chaos.double_released;
  checki "no identity mismatch" 0 r.Cluster.Chaos.mismatched;
  checki "every ledgered request trace-checked" r.Cluster.Chaos.submitted
    r.Cluster.Chaos.traces_checked;
  (* deterministic: same seed, same ledger *)
  let b = Cluster.Chaos.run ~config () in
  checki "same injected" r.Cluster.Chaos.injected b.Cluster.Chaos.injected;
  checki "same finished" r.Cluster.Chaos.finished b.Cluster.Chaos.finished;
  checki "same rerouted" r.Cluster.Chaos.rerouted b.Cluster.Chaos.rerouted

let test_cluster_chaos_disaggregated () =
  clean ();
  let config =
    { Cluster.Chaos.default with
      Cluster.Chaos.requests = 16; replicas = 2; disaggregate = true }
  in
  let r = Cluster.Chaos.run ~config () in
  Alcotest.(check (list string)) "no violations" [] r.Cluster.Chaos.violations;
  checkb "handoff adoptions happened" true (r.Cluster.Chaos.adopted > 0);
  checki "no double release" 0 r.Cluster.Chaos.double_released;
  checki "no identity mismatch" 0 r.Cluster.Chaos.mismatched

let test_cluster_chaos_sharded () =
  clean ();
  let config =
    { Cluster.Chaos.default with Cluster.Chaos.requests = 12; shards = 2 }
  in
  let r = Cluster.Chaos.run ~config () in
  Alcotest.(check (list string)) "no violations" [] r.Cluster.Chaos.violations;
  checki "no identity mismatch" 0 r.Cluster.Chaos.mismatched;
  checkb "all finished compared" true
    (r.Cluster.Chaos.compared = r.Cluster.Chaos.finished)

(* ---- quarantine conservation outside chaos: no request lost ---- *)

let test_quarantine_reroutes_queued () =
  clean ();
  Telemetry.Registry.enable ();
  let llm = make_llm () in
  let rcfg =
    { Cluster.Router.default_config with
      Cluster.Router.replicas = 2;
      scheduler =
        { Serve.Scheduler.default_config with
          Serve.Scheduler.max_batch = 1; nthreads = Some 1 } }
  in
  let router =
    match Cluster.Router.create ~config:rcfg llm with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (* round-robin: even ids land on replica 0, odd ids on replica 1 *)
  for id = 0 to 5 do
    checkb "accepted" true
      (Cluster.Router.submit router ~now:0.0
         (mk_req ~prompt_len:3 ~new_tokens:2 id))
  done;
  Cluster.Router.quarantine router 1;
  checkb "replica 1 quarantined" true (Cluster.Router.is_quarantined router 1);
  (* re-routes resubmit without re-bumping serve.submitted: distinct
     requests only, with the moves tallied separately *)
  checki "submitted counts distinct requests" 6
    (Telemetry.Counter.value Serve.Metrics.submitted_name);
  checki "re-routes tallied as resubmissions"
    (Telemetry.Counter.value Cluster.Router.rerouted_name)
    (Telemetry.Counter.value Cluster.Router.resubmitted_name);
  Cluster.Router.drain router ~now:frozen_now;
  let reqs = Cluster.Router.requests router in
  checki "ledger intact" 6 (List.length reqs);
  List.iter
    (fun (r : Serve.Request.t) ->
      checkb
        (Printf.sprintf "request %d finished" r.Serve.Request.id)
        true
        (r.Serve.Request.state = Serve.Request.Finished))
    reqs;
  (* every request decoded bit-identically despite the migration *)
  List.iter
    (fun (r : Serve.Request.t) ->
      let alone = replay_sequential llm r in
      let got = Serve.Request.outputs r in
      checki "output count" (List.length alone) (List.length got);
      List.iter2
        (fun a b -> checkb "bit-identical" true (bits_equal a b))
        alone got)
    reqs;
  List.iter
    (fun p -> checki "pool drained" 0 (Serve.Kv_pool.in_use p))
    (Cluster.Router.pools router)

(* ---- hard kill: in-flight sessions migrate and finish identically ---- *)

let test_hard_fail_migrates_inflight () =
  clean ();
  Telemetry.Registry.enable ();
  let llm = make_llm () in
  let rcfg =
    { Cluster.Router.default_config with
      Cluster.Router.replicas = 2;
      scheduler =
        { Serve.Scheduler.default_config with
          Serve.Scheduler.max_batch = 4; nthreads = Some 1 } }
  in
  let router =
    match Cluster.Router.create ~config:rcfg llm with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (* round-robin: odd ids land on replica 1 *)
  for id = 0 to 5 do
    checkb "accepted" true
      (Cluster.Router.submit router ~now:0.0
         (mk_req ~prompt_len:3 ~new_tokens:8 id))
  done;
  (* a few steps put replica 1's sessions mid-decode, then kill it *)
  for _ = 1 to 3 do
    ignore (Cluster.Router.step router ~now:frozen_now)
  done;
  let victim = (Cluster.Router.schedulers router).(1) in
  checkb "victim has in-flight sessions" true
    (Serve.Scheduler.active_count victim > 0);
  Cluster.Router.hard_fail router ~now:0.0 1;
  checkb "victim quarantined" true (Cluster.Router.is_quarantined router 1);
  let started =
    Telemetry.Counter.value Cluster.Router.migrations_started_name
  in
  checkb "migrations started" true (started > 0);
  Cluster.Router.drain router ~now:frozen_now;
  checki "migration channel drained" 0 (Cluster.Router.migration_depth router);
  checki "all migrations completed" started
    (Telemetry.Counter.value Cluster.Router.migrations_completed_name);
  let reqs = Cluster.Router.requests router in
  checki "ledger intact" 6 (List.length reqs);
  List.iter
    (fun (r : Serve.Request.t) ->
      checkb
        (Printf.sprintf "request %d finished" r.Serve.Request.id)
        true
        (r.Serve.Request.state = Serve.Request.Finished);
      (* migrated decodes are bit-identical to a solo replay *)
      let alone = replay_sequential llm r in
      let got = Serve.Request.outputs r in
      checki "output count" (List.length alone) (List.length got);
      List.iter2
        (fun a b -> checkb "bit-identical" true (bits_equal a b))
        alone got)
    reqs;
  List.iter
    (fun p -> checki "pool drained" 0 (Serve.Kv_pool.in_use p))
    (Cluster.Router.pools router);
  checki "no double release" 0
    (Telemetry.Counter.value Cluster.Kv_handoff.double_release_name)

(* ---- hard-kill chaos: conservation + completed migrations ---- *)

let test_cluster_chaos_hard_kill () =
  clean ();
  Telemetry.Recorder.set_enabled true;
  let r = Cluster.Chaos.run ~config:Cluster.Chaos.hard_kill () in
  Alcotest.(check (list string)) "no violations" [] r.Cluster.Chaos.violations;
  checkb "migrations completed" true (r.Cluster.Chaos.migrations_completed > 0);
  checki "none vanished in transit" r.Cluster.Chaos.migrations_started
    (r.Cluster.Chaos.migrations_completed + r.Cluster.Chaos.migrations_failed);
  checki "no identity mismatch" 0 r.Cluster.Chaos.mismatched;
  checki "no double release" 0 r.Cluster.Chaos.double_released;
  checki "ledger conserved" r.Cluster.Chaos.submitted
    (r.Cluster.Chaos.finished + r.Cluster.Chaos.rejected
    + r.Cluster.Chaos.cancelled + r.Cluster.Chaos.failed);
  (* trace conservation across the failover: every request leaves a
     complete timeline, and every migrated session's trace joins its
     detach to exactly one import + resume on the survivor *)
  checki "every ledgered request trace-checked" r.Cluster.Chaos.submitted
    r.Cluster.Chaos.traces_checked;
  checkb "migrated sessions traced across the join" true
    (r.Cluster.Chaos.migrated_traced > 0);
  (* deterministic: same seed, same failover *)
  let b = Cluster.Chaos.run ~config:Cluster.Chaos.hard_kill () in
  checki "same migrations" r.Cluster.Chaos.migrations_completed
    b.Cluster.Chaos.migrations_completed;
  checki "same finished" r.Cluster.Chaos.finished b.Cluster.Chaos.finished

(* ---- unquarantine is probe-gated and the replica takes work again ---- *)

let test_unquarantine_probe_rejoin () =
  clean ();
  let llm = make_llm () in
  let rcfg =
    { Cluster.Router.default_config with
      Cluster.Router.replicas = 2;
      scheduler =
        { Serve.Scheduler.default_config with
          Serve.Scheduler.max_batch = 2; nthreads = Some 1 } }
  in
  let router =
    match Cluster.Router.create ~config:rcfg llm with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  for id = 0 to 3 do
    checkb "accepted" true
      (Cluster.Router.submit router ~now:0.0
         (mk_req ~prompt_len:3 ~new_tokens:2 id))
  done;
  Cluster.Router.hard_fail router ~now:0.0 1;
  Cluster.Router.drain router ~now:frozen_now;
  checkb "still quarantined after drain" true
    (Cluster.Router.is_quarantined router 1);
  checkb "probe passes, replica rejoins" true
    (Cluster.Router.unquarantine router 1);
  checkb "no longer quarantined" true
    (not (Cluster.Router.is_quarantined router 1));
  checkb "rejoin is idempotent" true (Cluster.Router.unquarantine router 1);
  (* round-robin again: odd ids must land on the rejoined replica *)
  for id = 4 to 7 do
    checkb "accepted after rejoin" true
      (Cluster.Router.submit router ~now:0.0
         (mk_req ~prompt_len:3 ~new_tokens:2 id))
  done;
  checkb "rejoined replica took work" true
    (Serve.Scheduler.requests (Cluster.Router.schedulers router).(1)
     |> List.exists (fun (r : Serve.Request.t) -> r.Serve.Request.id >= 4));
  Cluster.Router.drain router ~now:frozen_now;
  let reqs = Cluster.Router.requests router in
  checki "ledger conserved across kill + rejoin" 8 (List.length reqs);
  List.iter
    (fun (r : Serve.Request.t) ->
      checkb "finished" true (r.Serve.Request.state = Serve.Request.Finished))
    reqs;
  List.iter
    (fun p -> checki "pool drained" 0 (Serve.Kv_pool.in_use p))
    (Cluster.Router.pools router)

(* ---- EDF ordering holds per replica behind the router ---- *)

let test_edf_per_replica () =
  clean ();
  let llm = make_llm () in
  let rcfg =
    { Cluster.Router.default_config with
      Cluster.Router.replicas = 2;
      scheduler =
        { Serve.Scheduler.default_config with
          Serve.Scheduler.policy = Serve.Scheduler.Edf;
          max_batch = 1;
          nthreads = Some 1 } }
  in
  let router =
    match Cluster.Router.create ~config:rcfg llm with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (* submit with descending deadlines so FCFS order would be wrong *)
  let n = 8 in
  for id = 0 to n - 1 do
    let deadline_s = 1000.0 -. (10.0 *. float_of_int id) in
    checkb "accepted" true
      (Cluster.Router.submit router ~now:0.0
         (mk_req ~deadline_s ~prompt_len:2 ~new_tokens:1 id))
  done;
  Cluster.Router.drain router ~now:frozen_now;
  Array.iter
    (fun sched ->
      let fin = Serve.Scheduler.finished sched in
      checkb "replica served something" true (fin <> []);
      let deadlines =
        List.map (fun r -> Serve.Request.deadline_abs r) fin
      in
      checkb "finished in EDF order" true
        (List.sort compare deadlines = deadlines))
    (Cluster.Router.schedulers router)

(* ---- KV handoff releases exactly once ---- *)

let test_handoff_exactly_once () =
  clean ();
  Telemetry.Registry.enable ();
  let llm = make_llm () in
  let h = Cluster.Kv_handoff.create ~cap:2 () in
  let cache = Llm.new_cache llm in
  let released = ref 0 in
  let req = mk_req ~prompt_len:2 ~new_tokens:2 0 in
  (match
     Cluster.Kv_handoff.push h ~req ~cache ~release:(fun _ -> incr released)
   with
  | `Ok -> ()
  | `Full -> Alcotest.fail "push refused on empty channel");
  checki "depth" 1 (Cluster.Kv_handoff.depth h);
  let e =
    match Cluster.Kv_handoff.pop h with
    | Some e -> e
    | None -> Alcotest.fail "pop on non-empty channel"
  in
  checki "depth after pop" 0 (Cluster.Kv_handoff.depth h);
  let before =
    Telemetry.Counter.value Cluster.Kv_handoff.double_release_name
  in
  e.Cluster.Kv_handoff.release e.Cluster.Kv_handoff.cache;
  e.Cluster.Kv_handoff.release e.Cluster.Kv_handoff.cache;
  e.Cluster.Kv_handoff.release e.Cluster.Kv_handoff.cache;
  checki "released exactly once" 1 !released;
  checki "double releases counted" 2
    (Telemetry.Counter.value Cluster.Kv_handoff.double_release_name - before);
  (* capacity bound: a full channel refuses and leaves ownership with
     the caller *)
  let push_ok () =
    Cluster.Kv_handoff.push h
      ~req:(mk_req ~prompt_len:2 ~new_tokens:2 1)
      ~cache:(Llm.new_cache llm)
      ~release:(fun _ -> ())
  in
  checkb "1st fits" true (push_ok () = `Ok);
  checkb "2nd fits" true (push_ok () = `Ok);
  checkb "3rd refused" true (push_ok () = `Full)

(* ---- disaggregated serving is bit-identical to solo decoding ---- *)

let test_disaggregated_bit_identity () =
  clean ();
  let llm = make_llm () in
  let rcfg =
    { Cluster.Router.default_config with
      Cluster.Router.replicas = 2;
      disaggregate = true;
      scheduler =
        { Serve.Scheduler.default_config with
          Serve.Scheduler.max_batch = 2; nthreads = Some 1 } }
  in
  let router =
    match Cluster.Router.create ~config:rcfg llm with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  checkb "prefiller present" true (Cluster.Router.prefiller router <> None);
  for id = 0 to 5 do
    checkb "accepted" true
      (Cluster.Router.submit router ~now:0.0
         (mk_req ~prompt_len:(2 + id) ~new_tokens:3 id))
  done;
  Cluster.Router.drain router ~now:frozen_now;
  let reqs = Cluster.Router.requests router in
  checki "all requests tracked" 6 (List.length reqs);
  List.iter
    (fun (r : Serve.Request.t) ->
      checkb "finished" true (r.Serve.Request.state = Serve.Request.Finished);
      let alone = replay_sequential llm r in
      let got = Serve.Request.outputs r in
      checki "output count" (List.length alone) (List.length got);
      List.iter2
        (fun a b -> checkb "bit-identical" true (bits_equal a b))
        alone got)
    reqs;
  checki "handoff drained" 0 (Cluster.Router.handoff_depth router);
  List.iter
    (fun p -> checki "pool drained" 0 (Serve.Kv_pool.in_use p))
    (Cluster.Router.pools router)

(* ---- placement parsing round-trips ---- *)

let test_placement_of_string () =
  clean ();
  let open Cluster.Router in
  checkb "rr" true (placement_of_string "rr" = Some Round_robin);
  checkb "round-robin" true
    (placement_of_string "round-robin" = Some Round_robin);
  checkb "jsq" true (placement_of_string "jsq" = Some Jsq);
  checkb "deadline" true (placement_of_string "deadline" = Some Deadline_aware);
  checkb "junk" true (placement_of_string "nope" = None);
  List.iter
    (fun p ->
      checkb "round-trip" true (placement_of_string (placement_name p) = Some p))
    [ Round_robin; Jsq; Deadline_aware ]

let () =
  Alcotest.run "cluster"
    [
      ( "sharding",
        [
          Alcotest.test_case "tp = unsharded (bit-identical)" `Quick
            test_tp_bit_identity;
          Alcotest.test_case "tp_plan rejects bad split" `Quick
            test_tp_plan_rejects_bad_split;
        ] );
      ( "load-gen",
        [ Alcotest.test_case "split substreams" `Quick test_load_gen_split ] );
      ( "chaos",
        [
          Alcotest.test_case "conservation + quarantine" `Quick
            test_cluster_chaos_conservation;
          Alcotest.test_case "disaggregated" `Quick
            test_cluster_chaos_disaggregated;
          Alcotest.test_case "sharded" `Quick test_cluster_chaos_sharded;
          Alcotest.test_case "hard kill" `Quick test_cluster_chaos_hard_kill;
        ] );
      ( "router",
        [
          Alcotest.test_case "quarantine re-routes queued" `Quick
            test_quarantine_reroutes_queued;
          Alcotest.test_case "hard fail migrates in-flight" `Quick
            test_hard_fail_migrates_inflight;
          Alcotest.test_case "unquarantine probe-gated rejoin" `Quick
            test_unquarantine_probe_rejoin;
          Alcotest.test_case "EDF order per replica" `Quick
            test_edf_per_replica;
          Alcotest.test_case "placement_of_string" `Quick
            test_placement_of_string;
        ] );
      ( "handoff",
        [
          Alcotest.test_case "releases exactly once" `Quick
            test_handoff_exactly_once;
          Alcotest.test_case "disaggregated bit-identity" `Quick
            test_disaggregated_bit_identity;
        ] );
    ]

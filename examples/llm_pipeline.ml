(* LLM inference pipeline (§IV-A / Fig. 11) at executable scale: prefill +
   KV-cached decoding on a small decoder, verified against the uncached
   full forward, plus the paper-scale latency model for GPT-J-6B and
   Llama2-13B.

     dune exec examples/llm_pipeline.exe
*)

let () =
  let rng = Prng.create 5 in
  let llm = Llm.create ~rng ~block:8 Llm.tiny in
  let n_in = 12 and n_out = 4 in
  let ids = Array.init (n_in + n_out) (fun i -> (i * 5) mod Llm.tiny.Llm.vocab) in
  let emb = Llm.embed llm ids in

  (* prefill over the prompt *)
  let cache = Llm.new_cache llm in
  let prompt =
    Tensor.init Datatype.F32 [| n_in; Llm.tiny.Llm.hidden |] (fun i ->
        Tensor.get emb i)
  in
  let t0 = Unix.gettimeofday () in
  let _first = Llm.prefill llm cache prompt in
  let t_first = Unix.gettimeofday () -. t0 in

  (* decode one token at a time against the cache *)
  let t0 = Unix.gettimeofday () in
  let last = ref None in
  for t = n_in to n_in + n_out - 1 do
    let e =
      Tensor.init Datatype.F32 [| 1; Llm.tiny.Llm.hidden |] (fun i ->
          Tensor.get emb [| t; i.(1) |])
    in
    last := Some (Llm.decode_step llm cache e)
  done;
  let t_next = (Unix.gettimeofday () -. t0) /. float_of_int n_out in

  (* the cached pipeline must equal the uncached full forward *)
  let full = Llm.forward_full llm emb in
  let expect =
    Tensor.init Datatype.F32 [| 1; Llm.tiny.Llm.hidden |] (fun i ->
        Tensor.get full [| n_in + n_out - 1; i.(1) |])
  in
  Printf.printf
    "tiny decoder: prefill(%d tokens) %.2f ms, decode %.2f ms/token, \
     KV-cache exact: %b\n"
    n_in (t_first *. 1e3) (t_next *. 1e3)
    (Tensor.approx_equal ~tol:1e-3 (Option.get !last) expect);

  (* paper-scale latency structure (compute-bound prefill vs
     bandwidth-bound decode) *)
  List.iter
    (fun cfg ->
      Printf.printf
        "%s: %.1f TFLOPs prefill(1024), %.1f GFLOPs/decode-step, %.1f GB \
         weights (bf16)\n"
        cfg.Llm.name
        (Llm.prefill_flops cfg ~n_in:1024 /. 1e12)
        (Llm.decode_flops cfg ~past:1024 /. 1e9)
        (Llm.param_bytes cfg Datatype.BF16 /. 1e9))
    [ Llm.gptj_6b; Llm.llama2_13b ]

(* Benchmark harness: one runner per table and figure of the paper, plus
   Bechamel microbenchmarks of the real kernels on this host, the
   ablation suite, and the serving benchmark.

   Usage:
     dune exec bench/main.exe                 # every paper experiment
     dune exec bench/main.exe -- fig2 fig8    # selected experiments
     dune exec bench/main.exe -- micro        # Bechamel kernel benches
     dune exec bench/main.exe -- gemm         # quick measured GEMM points
     dune exec bench/main.exe -- --serve      # continuous-batching serve
     dune exec bench/main.exe -- --serve --serve-duration 2 --json out.json

   Pass --telemetry (anywhere in the argument list) to run the selected
   experiments with the telemetry registry enabled and print the
   aggregated report — per-kernel achieved GFLOPS, JIT-cache hit rate,
   predicted-vs-measured model deviation — at the end. Pass --json FILE
   to write the machine-readable BENCH file (schema parlooper-bench/6:
   bench name + config + metrics per entry, plus per-replica metric
   blocks and a fleet rollup for cluster runs, and the kv.pages.* /
   serve.spec.* counters on serve entries) for runs that produce
   metrics (serve, gemm, micro); the file is validated before the
   process exits.

   --paged / --block-size / --num-blocks switch the serve and chaos
   harnesses to the paged KV arena, --spec-decode K / --draft-layers N
   turn on speculative decoding, and --sys-prompt N prepends a shared
   prefix to every generated prompt so the prefix trie has something to
   share. The "paged" experiment measures max concurrent width at a
   fixed arena, contiguous vs paged, and fails the process unless paged
   is strictly wider. *)

open Bechamel
open Toolkit

(* ---- machine-readable BENCH output (--json FILE) ----

   Commit-agnostic schema so the perf trajectory can be compared across
   PRs: each entry is {name, config (strings), metrics (numbers)}.
   Schema parlooper-bench/2 adds an optional per-entry "replicas" array
   ([{replica, metrics}] blocks) for cluster runs; /3 adds the paged-KV
   and speculative-decoding counters (kv_pages_..., spec_...) to serve
   entries plus the "paged-width" entry; /4 adds the tuner-cache
   counters; /5 adds the migration counters (resubmitted,
   migrations_started/completed/failed) to cluster-chaos entries; /6
   adds the trace-lane emit cost (trace_emit_ns, trace_overhead_pct) to
   the "recorder" entry. All purely additive: entries without the new
   keys are byte-compatible with earlier consumers and old outputs
   still validate unchanged. *)

type bench_entry = {
  bname : string;
  config : (string * string) list;
  metrics : (string * float) list;  (* fleet rollup for cluster runs *)
  replicas : (int * (string * float) list) list;  (* [] = omit the key *)
}

let bench_entries : bench_entry list ref = ref []

let record_bench ?(replicas = []) ~name ~config ~metrics () =
  bench_entries := { bname = name; config; metrics; replicas } :: !bench_entries

let bench_json_string () =
  let b = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let pr_metrics ms =
    List.iteri
      (fun j (k, v) ->
        if j > 0 then pr ",";
        pr "\"%s\":%s"
          (Telemetry.Report.json_escape k)
          (Telemetry.Report.json_float v))
      ms
  in
  pr "{\"schema\":\"parlooper-bench/6\",\"host\":\"%s\",\"benches\":["
    (Telemetry.Report.json_escape Platform.host.Platform.name);
  List.iteri
    (fun i e ->
      if i > 0 then pr ",";
      pr "{\"name\":\"%s\",\"config\":{" (Telemetry.Report.json_escape e.bname);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then pr ",";
          pr "\"%s\":\"%s\""
            (Telemetry.Report.json_escape k)
            (Telemetry.Report.json_escape v))
        e.config;
      pr "},\"metrics\":{";
      pr_metrics e.metrics;
      pr "}";
      if e.replicas <> [] then begin
        pr ",\"replicas\":[";
        List.iteri
          (fun j (r, ms) ->
            if j > 0 then pr ",";
            pr "{\"replica\":%d,\"metrics\":{" r;
            pr_metrics ms;
            pr "}}")
          e.replicas;
        pr "]"
      end;
      pr "}")
    (List.rev !bench_entries);
  pr "]}";
  Buffer.contents b

let write_bench_json path =
  let s = bench_json_string () in
  (* validate before anyone downstream consumes it *)
  (match Telemetry.Json_check.check s with
  | Ok () -> ()
  | Error m ->
    Printf.eprintf "internal error: bench JSON is malformed: %s\n" m;
    exit 1);
  let oc = open_out path in
  output_string oc s;
  close_out oc;
  Printf.printf "bench JSON written to %s (%d entr%s)\n%!" path
    (List.length !bench_entries)
    (if List.length !bench_entries = 1 then "y" else "ies")

(* ---- perf-regression gate (--compare BASELINE.json) ----

   Reads a committed bench JSON (any parlooper-bench/N schema) and
   compares this run's entries against it with per-metric tolerances:

   - correctness counters (violations, mismatched, double_released,
     numeric_errors) must match the baseline exactly — these are not
     performance numbers and have no noise band;
   - lower-is-better rates (..._ms, ..._ns, ..._pct) may grow at most
     1.5x over the baseline;
   - higher-is-better rates (tokens_per_s, events_per_s, ..._gflops)
     may shrink to at worst 1/1.5 of the baseline;
   - everything else is presence-only: the key must still be reported
     (a silently dropped metric is a regression of the bench itself).

   Any violation prints a FAIL line and the process exits non-zero, so
   `make smoke-regress` can gate a change on a committed baseline. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

(* minimal recursive-descent reader — enough for the bench schema (and
   strict about it); not a general JSON library *)
let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let lit word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape"
               else begin
                 (* bench strings are ASCII; keep the escape verbatim *)
                 Buffer.add_string b ("\\u" ^ String.sub s !pos 4);
                 pos := !pos + 4
               end
             | _ -> fail "unknown escape");
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' ->
      advance ();
      Jstr (string_body ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Jarr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some 't' -> lit "true" (Jbool true)
    | Some 'f' -> lit "false" (Jbool false)
    | Some 'n' -> lit "null" Jnull
    | Some _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes after value";
  v

(* baseline entry name -> metric name -> value *)
let baseline_metrics (j : json) : (string * (string * float) list) list =
  let obj = function Jobj kv -> kv | _ -> raise (Bad_json "expected object") in
  let benches =
    match List.assoc_opt "benches" (obj j) with
    | Some (Jarr l) -> l
    | _ -> raise (Bad_json "no benches array")
  in
  List.map
    (fun e ->
      let kv = obj e in
      let name =
        match List.assoc_opt "name" kv with
        | Some (Jstr s) -> s
        | _ -> raise (Bad_json "bench entry without a name")
      in
      let metrics =
        match List.assoc_opt "metrics" kv with
        | Some (Jobj ms) ->
          List.filter_map
            (fun (k, v) -> match v with Jnum f -> Some (k, f) | _ -> None)
            ms
        | _ -> []
      in
      (name, metrics))
    benches

type tolerance =
  | Exact  (* correctness counter: any drift fails *)
  | Lower_better of float  (* current may be at most [factor] x baseline *)
  | Higher_better of float  (* current may be at least baseline / [factor] *)
  | Presence  (* key must exist; value unconstrained *)

let perf_band = 1.5

let tolerance_of metric =
  let suffix suf =
    let ls = String.length suf and lm = String.length metric in
    lm >= ls && String.sub metric (lm - ls) ls = suf
  in
  match metric with
  | "violations" | "mismatched" | "double_released" | "numeric_errors" ->
    Exact
  | "tokens_per_s" | "events_per_s" -> Higher_better perf_band
  | _ when suffix "_gflops" -> Higher_better perf_band
  | _ when suffix "_ms" || suffix "_ns" || suffix "_pct" || suffix "_s" ->
    Lower_better perf_band
  | _ -> Presence

let compare_with_baseline path =
  let baseline =
    match
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      parse_json s
    with
    | j -> baseline_metrics j
    | exception Sys_error msg ->
      Printf.eprintf "cannot read baseline %s: %s\n" path msg;
      exit 1
    | exception Bad_json msg ->
      Printf.eprintf "baseline %s is not valid bench JSON: %s\n" path msg;
      exit 1
  in
  let current =
    List.map (fun e -> (e.bname, e.metrics)) (List.rev !bench_entries)
  in
  let failures = ref 0 in
  let fail_line fmt =
    Printf.ksprintf
      (fun s ->
        incr failures;
        Printf.printf "  FAIL %s\n" s)
      fmt
  in
  Printf.printf "comparing against baseline %s:\n" path;
  List.iter
    (fun (bname, base_ms) ->
      match List.assoc_opt bname current with
      | None -> fail_line "%s: entry missing from this run" bname
      | Some cur_ms ->
        List.iter
          (fun (metric, base) ->
            match List.assoc_opt metric cur_ms with
            | None -> fail_line "%s.%s: metric no longer reported" bname metric
            | Some cur -> (
              let ok fmt = Printf.printf ("  ok   " ^^ fmt ^^ "\n") in
              match tolerance_of metric with
              | Exact ->
                if cur <> base then
                  fail_line "%s.%s: %g, baseline %g (must match exactly)"
                    bname metric cur base
                else ok "%s.%s: %g (exact)" bname metric cur
              | Lower_better f ->
                (* a zero baseline carries no scale to compare against *)
                if base > 0.0 && cur > base *. f then
                  fail_line "%s.%s: %g exceeds %.2gx baseline %g" bname
                    metric cur f base
                else ok "%s.%s: %g (baseline %g, <=%.2gx)" bname metric cur
                    base f
              | Higher_better f ->
                if base > 0.0 && cur < base /. f then
                  fail_line "%s.%s: %g below baseline %g / %.2g" bname metric
                    cur base f
                else ok "%s.%s: %g (baseline %g, >=1/%.2gx)" bname metric cur
                    base f
              | Presence -> ok "%s.%s: %g (presence)" bname metric cur))
          base_ms)
    baseline;
  if !failures > 0 then begin
    Printf.eprintf "%d perf-regression failure(s) against %s\n" !failures path;
    exit 1
  end;
  Printf.printf "no regressions against %s\n%!" path

(* ---- Bechamel microbenchmarks of the real kernels ---- *)

let gemm_bench ~name ~dtype ~vnni_b dim block =
  let rng = Prng.create 99 in
  let cfg =
    Gemm.make_config ~bm:block ~bn:block ~bk:block ~dtype ~vnni_b ~k_step:4
      ~m:dim ~n:dim ~k:dim ()
  in
  let g = Gemm.create cfg "BCa" in
  let a = Tensor.create dtype [| dim; dim |] in
  let b = Tensor.create dtype [| dim; dim |] in
  Tensor.fill_random a rng ~scale:1.0;
  Tensor.fill_random b rng ~scale:1.0;
  let ap = Gemm.pack_a cfg a and bp = Gemm.pack_b cfg b in
  let cp = Gemm.alloc_c cfg in
  Test.make ~name (Staged.stage (fun () -> Gemm.run g ~a:ap ~b:bp ~c:cp))

let conv_bench ~name dim =
  let rng = Prng.create 98 in
  let cfg =
    Conv.make_config ~pad:1 ~bc:16 ~bk:16 ~c_step:2 ~n:1 ~c:32 ~k:32 ~h:dim
      ~w:dim ~r:3 ~s:3 ()
  in
  let cv = Conv.create cfg "acdebfg" in
  let inp = Tensor.create Datatype.F32 [| 1; 32; dim; dim |] in
  Tensor.fill_random inp rng ~scale:1.0;
  let wts = Tensor.create Datatype.F32 [| 32; 32; 3; 3 |] in
  Tensor.fill_random wts rng ~scale:1.0;
  let ip = Conv.pack_input cfg inp and wp = Conv.pack_weights cfg wts in
  let o = Conv.alloc_output cfg in
  Test.make ~name
    (Staged.stage (fun () -> Conv.run cv ~input:ip ~weights:wp ~output:o))

let spmm_bench ~name ~sparsity dim =
  let rng = Prng.create 97 in
  let a =
    Bcsc.random ~rng ~dtype:Datatype.F32 ~rows:dim ~cols:dim ~bm:16 ~bk:16
      ~sparsity
  in
  let b = Tensor.create Datatype.F32 [| dim; dim |] in
  Tensor.fill_random b rng ~scale:1.0;
  let cfg = Spmm_kernel.make_config ~bn:32 ~m:dim ~n:dim ~k:dim ~bm:16 ~bk:16 () in
  let sp = Spmm_kernel.create cfg "AB" in
  let bp = Spmm_kernel.pack_b cfg b in
  let c = Tensor.create Datatype.F32 [| dim; dim |] in
  Test.make ~name (Staged.stage (fun () -> Spmm_kernel.run sp ~a ~b:bp ~c))

let bert_layer_bench ~name =
  let rng = Prng.create 96 in
  let bert = Bert.create ~rng ~block:16 Bert.tiny_config in
  let x = Tensor.create Datatype.F32 [| 32; Bert.tiny_config.Bert.hidden |] in
  Tensor.fill_random x rng ~scale:1.0;
  let layer = bert.Bert.encoder.(0) in
  Test.make ~name
    (Staged.stage (fun () -> ignore (Bert.encoder_layer bert layer x)))

let micro_tests () =
  [
    gemm_bench ~name:"gemm 256^3 f32" ~dtype:Datatype.F32 ~vnni_b:false 256 32;
    gemm_bench ~name:"gemm 256^3 bf16-vnni" ~dtype:Datatype.BF16 ~vnni_b:true
      256 32;
    conv_bench ~name:"conv 32x32x28^2 3x3" 28;
    spmm_bench ~name:"spmm 256^3 80% sparse" ~sparsity:0.8 256;
    spmm_bench ~name:"spmm 256^3 dense" ~sparsity:0.0 256;
    bert_layer_bench ~name:"bert-tiny encoder layer";
  ]

let run_micro () =
  Modelkit.section "Bechamel microbenchmarks (real kernels, this host)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-28s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    (micro_tests ())

(* ---- quick measured GEMM points (real timings, BENCH_gemm.json) ---- *)

let run_gemm_points () =
  Modelkit.section "measured GEMM points (this host)";
  List.iter
    (fun (dim, block, spec) ->
      let rng = Prng.create 99 in
      let cfg =
        Gemm.make_config ~bm:block ~bn:block ~bk:block ~dtype:Datatype.F32
          ~m:dim ~n:dim ~k:dim ()
      in
      let g = Gemm.create cfg spec in
      let a = Tensor.create Datatype.F32 [| dim; dim |] in
      let b = Tensor.create Datatype.F32 [| dim; dim |] in
      Tensor.fill_random a rng ~scale:1.0;
      Tensor.fill_random b rng ~scale:1.0;
      let ap = Gemm.pack_a cfg a and bp = Gemm.pack_b cfg b in
      let cp = Gemm.alloc_c cfg in
      (* warm-up + best-of-3 *)
      Gemm.run g ~a:ap ~b:bp ~c:cp;
      let best = ref Float.infinity in
      for _ = 1 to 3 do
        let t0 = Telemetry.Clock.now_s () in
        Gemm.run g ~a:ap ~b:bp ~c:cp;
        best := Float.min !best (Telemetry.Clock.now_s () -. t0)
      done;
      let gflops = Gemm.flops cfg /. !best /. 1e9 in
      Printf.printf "  gemm %4dx%4dx%4d f32 %-6s %8.3f ms  %8.2f GFLOPS\n%!"
        dim dim dim spec (1e3 *. !best) gflops;
      record_bench ~name:"gemm"
        ~config:
          [ ("m", string_of_int dim); ("n", string_of_int dim);
            ("k", string_of_int dim); ("block", string_of_int block);
            ("spec", spec); ("dtype", "f32") ]
        ~metrics:[ ("seconds", !best); ("gflops", gflops) ] ())
    [ (128, 32, "BCa"); (256, 32, "BCa") ];
  (* pool-on points: the same contraction dispatched onto the persistent
     worker team (parallel outer loop, 2 logical threads) *)
  List.iter
    (fun (dim, block, spec, nthreads) ->
      let rng = Prng.create 99 in
      let cfg =
        Gemm.make_config ~bm:block ~bn:block ~bk:block ~dtype:Datatype.F32
          ~m:dim ~n:dim ~k:dim ()
      in
      let g = Gemm.create cfg spec in
      let a = Tensor.create Datatype.F32 [| dim; dim |] in
      let b = Tensor.create Datatype.F32 [| dim; dim |] in
      Tensor.fill_random a rng ~scale:1.0;
      Tensor.fill_random b rng ~scale:1.0;
      let ap = Gemm.pack_a cfg a and bp = Gemm.pack_b cfg b in
      let cp = Gemm.alloc_c cfg in
      Gemm.run ~nthreads g ~a:ap ~b:bp ~c:cp;
      let best = ref Float.infinity in
      for _ = 1 to 3 do
        let t0 = Telemetry.Clock.now_s () in
        Gemm.run ~nthreads g ~a:ap ~b:bp ~c:cp;
        best := Float.min !best (Telemetry.Clock.now_s () -. t0)
      done;
      let gflops = Gemm.flops cfg /. !best /. 1e9 in
      Printf.printf
        "  gemm %4dx%4dx%4d f32 %-6s %d thr (pool) %8.3f ms  %8.2f GFLOPS\n%!"
        dim dim dim spec nthreads (1e3 *. !best) gflops;
      record_bench ~name:"gemm"
        ~config:
          [ ("m", string_of_int dim); ("n", string_of_int dim);
            ("k", string_of_int dim); ("block", string_of_int block);
            ("spec", spec); ("dtype", "f32");
            ("nthreads", string_of_int nthreads);
            ("pool", if Team.pool_enabled () then "on" else "off") ]
        ~metrics:[ ("seconds", !best); ("gflops", gflops) ] ())
    [ (128, 32, "BCa", 2); (256, 32, "BCa", 2) ]

(* ---- dispatch-overhead microbenchmark (persistent pool vs spawn) ----

   Times Team.run (pool) against Team.run_spawn (the fresh
   threads-per-call baseline) over identical bodies: an empty region
   (pure dispatch+join cost) and a small-shape BRGEMM per thread, the
   decode-sized work unit where spawn overhead dominated. Records pool
   telemetry counters alongside and fails loudly if the pool never
   reused a worker — that would mean the persistent engine silently fell
   back to spawning. *)

let run_dispatch () =
  Modelkit.section "Nest.exec dispatch overhead: pool vs spawn-per-call";
  let time_per_exec runner ~nthreads body =
    for _ = 1 to 30 do
      runner ~nthreads body
    done;
    let t0 = Telemetry.Clock.now_s () in
    let iters = ref 0 in
    while Telemetry.Clock.now_s () -. t0 < 0.25 do
      for _ = 1 to 10 do
        runner ~nthreads body
      done;
      iters := !iters + 10
    done;
    1e9 *. (Telemetry.Clock.now_s () -. t0) /. float_of_int !iters
  in
  let gemm_body =
    (* per-thread 32x32x32 BRGEMM on private outputs *)
    let rng = Prng.create 95 in
    let n = 8 in
    let ker =
      Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:32 ~n:32 ~k:32 ())
    in
    let mk () =
      let t = Tensor.create Datatype.F32 [| 32; 32 |] in
      Tensor.fill_random t rng ~scale:1.0;
      Tensor.view2d t
    in
    let a = Array.init n (fun _ -> mk ())
    and b = Array.init n (fun _ -> mk ())
    and c = Array.init n (fun _ -> mk ()) in
    fun (ctx : Team.ctx) ->
      let t = ctx.Team.tid in
      Brgemm.exec ker ~a:a.(t) ~b:b.(t) ~c:c.(t)
  in
  let cases =
    [ ("empty", 4, (fun (_ : Team.ctx) -> ()));
      ("gemm32", 8, gemm_body) ]
  in
  List.iter
    (fun (bodyname, nthreads, body) ->
      let pool_ns = time_per_exec Team.run ~nthreads body in
      let spawn_ns = time_per_exec Team.run_spawn ~nthreads body in
      (* dispatch overhead = region time minus the same body executed
         inline with no threading at all (run_sequential covers the
         identical tid range on the calling thread) *)
      let seq_ns = time_per_exec Team.run_sequential ~nthreads body in
      (* overheads smaller than ~1% of the body are below timing noise;
         clamp so the reported ratio stays meaningful *)
      let noise = 1.0 +. (0.01 *. seq_ns) in
      let pool_ov = Float.max noise (pool_ns -. seq_ns) in
      let spawn_ov = Float.max noise (spawn_ns -. seq_ns) in
      let speedup = spawn_ov /. pool_ov in
      Printf.printf
        "  %-7s n=%d  pool %9.0f ns/exec   spawn %9.0f ns/exec   body %9.0f \
         ns  overhead %5.1fx\n\
         %!"
        bodyname nthreads pool_ns spawn_ns seq_ns speedup;
      record_bench ~name:"dispatch"
        ~config:
          [ ("body", bodyname); ("nthreads", string_of_int nthreads);
            ("baseline", "spawn-per-call") ]
        ~metrics:
          [ ("pool_ns_per_exec", pool_ns); ("spawn_ns_per_exec", spawn_ns);
            ("body_ns_per_exec", seq_ns);
            ("pool_overhead_ns", pool_ov); ("spawn_overhead_ns", spawn_ov);
            ("speedup", speedup) ] ())
    cases;
  let cval = Telemetry.Counter.value in
  let reuse = cval Telemetry.Registry.pool_reuse_name in
  record_bench ~name:"pool-counters" ~config:[]
    ~metrics:
      [ ("dispatches", float_of_int (cval Telemetry.Registry.pool_dispatches_name));
        ("worker_reuse", float_of_int reuse);
        ("workers_spawned",
         float_of_int (cval Telemetry.Registry.pool_workers_name));
        ("spin_wakeups", float_of_int (cval Telemetry.Registry.pool_spin_name));
        ("park_wakeups", float_of_int (cval Telemetry.Registry.pool_park_name));
        ("arena_hits", float_of_int (cval Telemetry.Registry.arena_hits_name));
        ("arena_misses",
         float_of_int (cval Telemetry.Registry.arena_misses_name));
        ("arena_bytes", float_of_int (cval Telemetry.Registry.arena_bytes_name))
      ]
    ();
  Printf.printf "  pool: %d workers, %d dispatches, %d reuses\n%!"
    (Team.pool_size ())
    (cval Telemetry.Registry.pool_dispatches_name)
    reuse;
  if Team.pool_enabled () && reuse = 0 then begin
    Printf.eprintf
      "dispatch bench: pool enabled but no worker was ever reused\n";
    exit 1
  end

(* ---- flight-recorder overhead (recorder) ----

   Two costs matter for an always-on recorder: the per-event emit cost
   (ns/event, and the residual cost of the disabled check), and the
   end-to-end impact on real parallel work (the pooled 2-thread GEMM
   point, recorder on vs off). Both are recorded in the bench JSON so
   the overhead budget in DESIGN.md stays an asserted number, not a
   hope. *)

let run_recorder () =
  Modelkit.section "flight-recorder overhead: emit cost and pooled-GEMM impact";
  let was_enabled = Telemetry.Recorder.enabled () in
  let lbl = Telemetry.Recorder.intern "bench.recorder" in
  let time_emits ?(kind = Telemetry.Recorder.Mark) enabled =
    Telemetry.Recorder.set_enabled enabled;
    (* warm-up creates the calling thread's ring so the timed loop sees
       only the steady-state path *)
    for i = 1 to 1_000 do
      Telemetry.Recorder.emit kind ~label:lbl ~a:i ~b:0
    done;
    (* min of 5 passes: the gate below compares two of these numbers,
       so each must be a stable floor, not a one-shot sample *)
    let iters = 1_000_000 in
    let best = ref Float.infinity in
    for _ = 1 to 5 do
      let t0 = Telemetry.Clock.now_s () in
      for i = 1 to iters do
        Telemetry.Recorder.emit kind ~label:lbl ~a:i ~b:0
      done;
      best :=
        Float.min !best (Telemetry.Clock.now_s () -. t0)
    done;
    1e9 *. !best /. float_of_int iters
  in
  let emit_on_ns = time_emits true in
  let emit_off_ns = time_emits false in
  let events_per_s = 1e9 /. emit_on_ns in
  Printf.printf
    "  emit: %6.1f ns/event enabled (%.1f Mevents/s), %6.2f ns/event \
     disabled\n%!"
    emit_on_ns (events_per_s /. 1e6) emit_off_ns;
  (* trace-kind emits route to the per-thread trace lane: same write
     path plus one compare, so tracing a request may add at most 10% per
     event over the dense lane — a hard gate, not a report line *)
  let trace_emit_ns = time_emits ~kind:Telemetry.Recorder.Trace_decode true in
  let trace_overhead_pct =
    100.0 *. ((trace_emit_ns /. emit_on_ns) -. 1.0)
  in
  Printf.printf
    "  trace emit: %6.1f ns/event (%+.1f%% vs dense lane)\n%!"
    trace_emit_ns trace_overhead_pct;
  if trace_overhead_pct > 10.0 then begin
    Printf.eprintf
      "FAIL: trace-lane emit adds %.1f%% per event (budget: 10%%)\n"
      trace_overhead_pct;
    exit 1
  end;
  let gemm_point enabled =
    Telemetry.Recorder.set_enabled enabled;
    let dim = 128 and block = 32 and nthreads = 2 in
    let rng = Prng.create 99 in
    let cfg =
      Gemm.make_config ~bm:block ~bn:block ~bk:block ~dtype:Datatype.F32
        ~m:dim ~n:dim ~k:dim ()
    in
    let g = Gemm.create cfg "BCa" in
    let a = Tensor.create Datatype.F32 [| dim; dim |] in
    let b = Tensor.create Datatype.F32 [| dim; dim |] in
    Tensor.fill_random a rng ~scale:1.0;
    Tensor.fill_random b rng ~scale:1.0;
    let ap = Gemm.pack_a cfg a and bp = Gemm.pack_b cfg b in
    let cp = Gemm.alloc_c cfg in
    Gemm.run ~nthreads g ~a:ap ~b:bp ~c:cp;
    let best = ref Float.infinity in
    for _ = 1 to 5 do
      let t0 = Telemetry.Clock.now_s () in
      Gemm.run ~nthreads g ~a:ap ~b:bp ~c:cp;
      best := Float.min !best (Telemetry.Clock.now_s () -. t0)
    done;
    !best
  in
  let gemm_on_s = gemm_point true in
  let gemm_off_s = gemm_point false in
  Telemetry.Recorder.set_enabled was_enabled;
  let overhead_pct = 100.0 *. ((gemm_on_s /. gemm_off_s) -. 1.0) in
  Printf.printf
    "  gemm 128^3 BCa 2 thr: %8.3f ms on, %8.3f ms off (%+.1f%%)\n%!"
    (1e3 *. gemm_on_s) (1e3 *. gemm_off_s) overhead_pct;
  record_bench ~name:"recorder"
    ~config:
      [ ("gemm", "128x128x128 f32 BCa nthreads=2");
        ("ring_capacity", "4096") ]
    ~metrics:
      [ ("emit_ns_enabled", emit_on_ns); ("emit_ns_disabled", emit_off_ns);
        ("trace_emit_ns", trace_emit_ns);
        ("trace_overhead_pct", trace_overhead_pct);
        ("events_per_s", events_per_s); ("gemm_s_enabled", gemm_on_s);
        ("gemm_s_disabled", gemm_off_s);
        ("gemm_overhead_pct", overhead_pct) ]
    ()

(* ---- serving benchmark (--serve): continuous batching over Llm.tiny ----

   With --replicas N / --shards M / --disaggregate the load runs through
   the cluster tier (Router + per-replica schedulers) instead of a lone
   scheduler; the bench entry then carries the fleet rollup in "metrics"
   and one per-replica block each under "replicas". *)

let summary_metrics (s : Serve.Metrics.summary) =
  [ ("submitted", float_of_int s.Serve.Metrics.submitted);
    ("completed", float_of_int s.Serve.Metrics.completed);
    ("rejected", float_of_int s.Serve.Metrics.rejected);
    ("goodput", float_of_int s.Serve.Metrics.goodput);
    ("tokens", float_of_int s.Serve.Metrics.tokens);
    ("tokens_per_s", s.Serve.Metrics.tokens_per_s);
    ("ttft_p50_ms", s.Serve.Metrics.ttft_ms.Serve.Metrics.p50);
    ("ttft_p95_ms", s.Serve.Metrics.ttft_ms.Serve.Metrics.p95);
    ("ttft_p99_ms", s.Serve.Metrics.ttft_ms.Serve.Metrics.p99);
    ("tpot_p50_ms", s.Serve.Metrics.tpot_ms.Serve.Metrics.p50);
    ("tpot_p95_ms", s.Serve.Metrics.tpot_ms.Serve.Metrics.p95);
    ("tpot_p99_ms", s.Serve.Metrics.tpot_ms.Serve.Metrics.p99) ]

(* kv.pages.* / serve.spec.* counter values for serve bench entries
   (schema parlooper-bench/3); zeros in contiguous / non-speculative
   runs, so the keys cost nothing downstream. *)
let kv_spec_metrics () =
  let c n = float_of_int (Telemetry.Counter.value n) in
  [ ("kv_pages_allocated", c Kv.Block_manager.pages_allocated_name);
    ("kv_pages_freed", c Kv.Block_manager.pages_freed_name);
    ("kv_cow_copies", c Kv.Block_manager.cow_copies_name);
    ("kv_prefix_hits", c Kv.Block_manager.prefix_hits_name);
    ("spec_proposed", c Serve.Metrics.spec_proposed_name);
    ("spec_accepted", c Serve.Metrics.spec_accepted_name);
    ("spec_rejected", c Serve.Metrics.spec_rejected_name) ]

(* tuner.cache.* counter values for serve bench entries (schema
   parlooper-bench/4, additive); zeros without --online-tune *)
let tuner_cache_metrics () =
  let c n = float_of_int (Telemetry.Counter.value n) in
  [ ("tuner_cache_hits", c Telemetry.Registry.tuner_cache_hits_name);
    ("tuner_cache_misses", c Telemetry.Registry.tuner_cache_misses_name);
    ("tuner_cache_swaps", c Telemetry.Registry.tuner_cache_swaps_name);
    ("tuner_cache_rejected", c Telemetry.Registry.tuner_cache_rejected_name);
    ("tuner_cache_tunes", c Telemetry.Registry.tuner_cache_tunes_name) ]

let paged_config_kvs ~paged ~block_size ~num_blocks ~spec_k ~draft_layers
    ~sys_prompt =
  [ ("paged", string_of_bool paged);
    ("block_size", string_of_int block_size);
    ("num_blocks", string_of_int num_blocks);
    ("spec_k", string_of_int spec_k);
    ("draft_layers", string_of_int draft_layers);
    ("sys_prompt", string_of_int sys_prompt) ]

let run_serve ~rate ~duration ~replicas ~shards ~disaggregate ~placement
    ~paged ~block_size ~num_blocks ~spec_k ~draft_layers ~sys_prompt
    ~online_tune () =
  let clustered = replicas > 1 || shards > 1 || disaggregate in
  Modelkit.section
    (if clustered then
       Printf.sprintf
         "serving: %d replicas x %d shards%s (%s) over %s, Poisson %.0f \
          req/s for %.1fs"
         replicas shards
         (if disaggregate then " + prefill tier" else "")
         (Cluster.Router.placement_name placement) Llm.tiny.Llm.name rate duration
     else
       Printf.sprintf
         "serving: continuous batching over %s, Poisson %.0f req/s for %.1fs"
         Llm.tiny.Llm.name rate duration);
  if paged then
    Printf.printf "  paged KV: %d blocks x %d tokens, prefix sharing on\n%!"
      num_blocks block_size;
  if spec_k > 0 then
    Printf.printf "  speculative decoding: k=%d, %d draft layer%s\n%!" spec_k
      draft_layers
      (if draft_layers = 1 then "" else "s");
  let rng = Prng.create 7 in
  let llm = Llm.create ~rng ~block:8 Llm.tiny in
  if online_tune then
    Printf.printf "  online tuning: per-shape spec cache + background tuner on\n%!";
  let scfg =
    { Serve.Scheduler.default_config with
      Serve.Scheduler.paged; block_size; num_blocks; spec_k; draft_layers;
      online_tune }
  in
  let load =
    { Serve.Load_gen.default with
      Serve.Load_gen.rate_hz = rate;
      duration_s = duration;
      deadline_s = 0.25;
      sys_prompt_len = sys_prompt }
  in
  let trace = Serve.Load_gen.generate load ~vocab:Llm.tiny.Llm.vocab in
  Printf.printf "  trace: %d arrivals, deadline %.0f ms, prompts %s, \
                 new tokens %s\n%!"
    (List.length trace)
    (1e3 *. load.Serve.Load_gen.deadline_s)
    (Serve.Load_gen.dist_to_string load.Serve.Load_gen.prompt_len)
    (Serve.Load_gen.dist_to_string load.Serve.Load_gen.new_tokens);
  let slo_metrics () =
    [ ("slo_ttft_breaches",
       float_of_int
         (Telemetry.Counter.value Serve.Metrics.slo_ttft_breaches_name));
      ("slo_deadline_breaches",
       float_of_int
         (Telemetry.Counter.value Serve.Metrics.slo_deadline_breaches_name))
    ]
  in
  (* let queued background tunes land so the recorded tuner.cache.*
     counters are final, then report and stop the tuning domain *)
  let finish_online_tune () =
    if online_tune then begin
      ignore (Spec_cache.drain ~timeout_s:10.0);
      let s = Spec_cache.stats () in
      Printf.printf
        "  spec cache: %d hits, %d misses, %d hot-swaps, %d rejected, %d \
         tunes\n%!"
        s.Spec_cache.hits s.Spec_cache.misses s.Spec_cache.swaps
        s.Spec_cache.rejected s.Spec_cache.tunes;
      Spec_cache.disable ()
    end
  in
  if not clustered then begin
    let sched = Serve.Scheduler.create ~config:scfg llm in
    let o = Serve.Driver.run sched trace in
    finish_online_tune ();
    Serve.Metrics.print o.Serve.Driver.summary;
    (match Serve.Kv_pool.manager (Serve.Scheduler.pool sched) with
    | Some m ->
      Printf.printf "  arena after drain: %d/%d blocks free, %d prefix hits\n%!"
        (Kv.Block_manager.free_blocks m)
        (Kv.Block_manager.num_blocks m)
        (Telemetry.Counter.value Kv.Block_manager.prefix_hits_name)
    | None -> ());
    record_bench ~name:"serve"
      ~config:
        ([ ("model", Llm.tiny.Llm.name); ("rate_hz", Printf.sprintf "%g" rate);
           ("duration_s", Printf.sprintf "%g" duration);
           ("deadline_ms",
            Printf.sprintf "%g" (1e3 *. load.Serve.Load_gen.deadline_s));
           ("policy",
            Serve.Scheduler.policy_name
              (Serve.Scheduler.config sched).Serve.Scheduler.policy);
           ("max_batch",
            string_of_int
              (Serve.Scheduler.config sched).Serve.Scheduler.max_batch)
         ]
        @ paged_config_kvs ~paged ~block_size ~num_blocks ~spec_k
            ~draft_layers ~sys_prompt
        @ [ ("online_tune", string_of_bool online_tune) ])
      ~metrics:
        (summary_metrics o.Serve.Driver.summary
        @ slo_metrics ()
        @ kv_spec_metrics ()
        @ tuner_cache_metrics ())
      ()
  end
  else begin
    let rcfg =
      { Cluster.Router.default_config with
        Cluster.Router.replicas; shards; disaggregate; placement;
        scheduler = scfg }
    in
    let router =
      match Cluster.Router.create ~config:rcfg llm with
      | Ok r -> r
      | Error e ->
        Printf.eprintf "serve: cannot build cluster: %s\n" e;
        exit 1
    in
    let o = Cluster.Driver.run router trace in
    finish_online_tune ();
    Printf.printf "  fleet (merged across %d replica histograms):\n"
      (List.length o.Cluster.Driver.per_replica);
    Serve.Metrics.print o.Cluster.Driver.summary;
    List.iter
      (fun (i, s) ->
        Printf.printf "  replica %d%s: %s\n" i
          (if i >= replicas then " (prefill)" else "")
          (Serve.Metrics.summary_to_string s))
      o.Cluster.Driver.per_replica;
    record_bench ~name:"serve"
      ~config:
        ([ ("model", Llm.tiny.Llm.name); ("rate_hz", Printf.sprintf "%g" rate);
           ("duration_s", Printf.sprintf "%g" duration);
           ("deadline_ms",
            Printf.sprintf "%g" (1e3 *. load.Serve.Load_gen.deadline_s));
           ("replicas", string_of_int replicas);
           ("shards", string_of_int shards);
           ("disaggregate", string_of_bool disaggregate);
           ("placement", Cluster.Router.placement_name placement) ]
        @ paged_config_kvs ~paged ~block_size ~num_blocks ~spec_k
            ~draft_layers ~sys_prompt
        @ [ ("online_tune", string_of_bool online_tune) ])
      ~metrics:
        (summary_metrics o.Cluster.Driver.summary
        @ slo_metrics ()
        @ kv_spec_metrics ()
        @ tuner_cache_metrics ()
        @ [ ("routed",
             float_of_int (Telemetry.Counter.value Cluster.Router.routed_name));
            ("rerouted",
             float_of_int (Telemetry.Counter.value Cluster.Router.rerouted_name));
            ("adopted",
             float_of_int (Telemetry.Counter.value Cluster.Router.adopted_name)) ])
      ~replicas:
        (List.map
           (fun (i, s) -> (i, summary_metrics s))
           o.Cluster.Driver.per_replica)
      ()
  end

(* ---- chaos harness (--chaos): seeded fault injection over serving ----

   Runs Serve.Chaos: a fault-free reference pass and a chaos pass over
   the same virtual-clock trace, with the default plan covering every
   fault-site class. Exits non-zero if any liveness/ledger/bit-identity
   invariant is violated or if no fault actually fired (a plan that
   injects nothing would make the "survived chaos" claim vacuous). *)

let chaos_failed = ref false

(* cluster chaos (--chaos --replicas N): router fleet under the seeded
   plan with a mid-run replica quarantine — or, with --hard-kill, a
   mid-run hard kill whose in-flight sessions must live-migrate; the
   bench entry carries the router conservation + migration counters and
   the fleet SLO-burn gauges, and any invariant violation fails the
   process like the single-replica run. A hard-kill run additionally
   fails unless at least one migration completed (otherwise the run
   proved nothing about failover). *)
let run_cluster_chaos ~seed ~requests ~replicas ~shards ~disaggregate
    ~hard_kill ~paged ~block_size ~num_blocks ~spec_k ~draft_layers
    ~sys_prompt () =
  let base = if hard_kill then Cluster.Chaos.hard_kill else Cluster.Chaos.default in
  Modelkit.section
    (Printf.sprintf
       "chaos: %d-replica fleet under seeded fault injection (seed %d, %d \
        requests, %d shards%s%s, replica %d %s mid-run)"
       replicas seed requests shards
       (if disaggregate then ", disaggregated" else "")
       (if paged then ", paged KV" else "")
       (if hard_kill then base.Cluster.Chaos.hard_kill_replica
        else base.Cluster.Chaos.quarantine_replica)
       (if hard_kill then "hard-killed" else "quarantined"));
  let scheduler =
    { base.Cluster.Chaos.scheduler with
      Serve.Scheduler.paged; block_size; num_blocks; spec_k; draft_layers }
  in
  let config =
    { base with
      Cluster.Chaos.seed; requests; replicas; shards; disaggregate;
      scheduler; shared_prefix = sys_prompt }
  in
  let plan =
    match config.Cluster.Chaos.plan with
    | Some p -> p
    | None -> Cluster.Chaos.default_plan seed
  in
  Printf.printf "  plan: %s\n%!" (Fault.plan_to_string plan);
  let r = Cluster.Chaos.run ~config () in
  print_string (Cluster.Chaos.report_to_string r);
  let f = float_of_int in
  record_bench ~name:"cluster-chaos"
    ~config:
      ([ ("seed", string_of_int seed); ("requests", string_of_int requests);
         ("replicas", string_of_int replicas);
         ("shards", string_of_int shards);
         ("disaggregate", string_of_bool disaggregate);
         ("quarantine_replica",
          string_of_int config.Cluster.Chaos.quarantine_replica);
         ("hard_kill", string_of_bool hard_kill);
         ("hard_kill_replica",
          string_of_int config.Cluster.Chaos.hard_kill_replica);
         ("plan", Fault.plan_to_string plan) ]
      @ paged_config_kvs ~paged ~block_size ~num_blocks ~spec_k ~draft_layers
          ~sys_prompt)
    ~metrics:
      [ ("steps", f r.Cluster.Chaos.steps);
        ("submitted", f r.Cluster.Chaos.submitted);
        ("finished", f r.Cluster.Chaos.finished);
        ("rejected", f r.Cluster.Chaos.rejected);
        ("cancelled", f r.Cluster.Chaos.cancelled);
        ("failed", f r.Cluster.Chaos.failed);
        ("routed", f r.Cluster.Chaos.routed);
        ("rerouted", f r.Cluster.Chaos.rerouted);
        ("resubmitted", f r.Cluster.Chaos.resubmitted);
        ("adopted", f r.Cluster.Chaos.adopted);
        ("route_faults", f r.Cluster.Chaos.route_faults);
        ("migrations_started", f r.Cluster.Chaos.migrations_started);
        ("migrations_completed", f r.Cluster.Chaos.migrations_completed);
        ("migrations_failed", f r.Cluster.Chaos.migrations_failed);
        ("compared", f r.Cluster.Chaos.compared);
        ("mismatched", f r.Cluster.Chaos.mismatched);
        ("fault_injected", f r.Cluster.Chaos.injected);
        ("fault_retries", f r.Cluster.Chaos.retries);
        ("fault_shed", f r.Cluster.Chaos.shed);
        ("kv_denied", f r.Cluster.Chaos.denied);
        ("double_released", f r.Cluster.Chaos.double_released);
        ("fleet_slo_ttft_breaches", f r.Cluster.Chaos.fleet_slo_ttft);
        ("fleet_slo_deadline_breaches", f r.Cluster.Chaos.fleet_slo_deadline);
        ("traces_checked", f r.Cluster.Chaos.traces_checked);
        ("migrated_traced", f r.Cluster.Chaos.migrated_traced);
        ("violations", f (List.length r.Cluster.Chaos.violations)) ]
    ();
  if r.Cluster.Chaos.violations <> [] then begin
    Printf.eprintf "cluster chaos: %d invariant violation(s)\n"
      (List.length r.Cluster.Chaos.violations);
    List.iter (Printf.eprintf "  - %s\n") r.Cluster.Chaos.violations;
    chaos_failed := true
  end;
  if r.Cluster.Chaos.injected = 0 then begin
    Printf.eprintf "cluster chaos: plan injected no faults — run proves \
                    nothing\n";
    chaos_failed := true
  end;
  if hard_kill && r.Cluster.Chaos.migrations_completed = 0 then begin
    Printf.eprintf "cluster chaos: hard kill completed no migrations — run \
                    proves nothing about failover\n";
    chaos_failed := true
  end

let run_chaos ~seed ~requests ~paged ~block_size ~num_blocks ~spec_k
    ~draft_layers ~sys_prompt () =
  Modelkit.section
    (Printf.sprintf
       "chaos: serve loop under seeded fault injection (seed %d, %d \
        requests%s%s)"
       seed requests
       (if paged then ", paged KV" else "")
       (if spec_k > 0 then Printf.sprintf ", spec k=%d" spec_k else ""));
  let scheduler =
    { Serve.Chaos.default.Serve.Chaos.scheduler with
      Serve.Scheduler.paged; block_size; num_blocks; spec_k; draft_layers }
  in
  let config =
    { Serve.Chaos.default with
      Serve.Chaos.seed; requests; scheduler; shared_prefix = sys_prompt }
  in
  let plan =
    match config.Serve.Chaos.plan with
    | Some p -> p
    | None -> Serve.Chaos.default_plan seed
  in
  Printf.printf "  plan: %s\n%!" (Fault.plan_to_string plan);
  let r = Serve.Chaos.run ~config () in
  print_string (Serve.Chaos.report_to_string r);
  let f = float_of_int in
  record_bench ~name:"chaos"
    ~config:
      ([ ("seed", string_of_int seed); ("requests", string_of_int requests);
         ("plan", Fault.plan_to_string plan) ]
      @ paged_config_kvs ~paged ~block_size ~num_blocks ~spec_k ~draft_layers
          ~sys_prompt)
    ~metrics:
      [ ("steps", f r.Serve.Chaos.steps);
        ("submitted", f r.Serve.Chaos.submitted);
        ("finished", f r.Serve.Chaos.finished);
        ("rejected", f r.Serve.Chaos.rejected);
        ("cancelled", f r.Serve.Chaos.cancelled);
        ("failed", f r.Serve.Chaos.failed);
        ("compared", f r.Serve.Chaos.compared);
        ("mismatched", f r.Serve.Chaos.mismatched);
        ("fault_injected", f r.Serve.Chaos.injected);
        ("fault_retries", f r.Serve.Chaos.retries);
        ("fault_shed", f r.Serve.Chaos.shed);
        ("kv_denied", f r.Serve.Chaos.denied);
        ("watchdog_trips", f r.Serve.Chaos.trips);
        ("pool_quarantined", f r.Serve.Chaos.quarantined);
        ("numeric_errors", f r.Serve.Chaos.numeric_errors);
        ("kv_pages_allocated", f r.Serve.Chaos.pages_allocated);
        ("kv_pages_freed", f r.Serve.Chaos.pages_freed);
        ("kv_cow_copies", f r.Serve.Chaos.cow_copies);
        ("kv_prefix_hits", f r.Serve.Chaos.prefix_hits);
        ("traces_checked", f r.Serve.Chaos.traces_checked);
        ("violations", f (List.length r.Serve.Chaos.violations)) ]
    ();
  if r.Serve.Chaos.violations <> [] then begin
    Printf.eprintf "chaos: %d invariant violation(s)\n"
      (List.length r.Serve.Chaos.violations);
    chaos_failed := true
  end;
  if r.Serve.Chaos.injected = 0 then begin
    Printf.eprintf "chaos: plan injected no faults — run proves nothing\n";
    chaos_failed := true
  end

(* ---- paged-width experiment ("paged") ----

   The capacity claim behind the paged arena, measured: at a fixed KV
   row budget, requests sharing a long system prompt are admitted until
   the first [`Denied], once with contiguous per-request buffers (each
   live request reserves its whole footprint — best-case provisioning,
   no fragmentation modelled) and once over the paged arena with the
   prefix trie on (shared prompt blocks are physically deduplicated).
   Real prefills run through [Llm.extend] so the trie, COW boundaries
   and block refcounts are exercised, not simulated. The process fails
   unless paged sustains strictly more concurrent requests and the trie
   recorded at least one hit. *)

let run_paged_width () =
  let block_size = 16 and num_blocks = 40 in
  let arena_rows = block_size * num_blocks in
  let shared = 3 * block_size in  (* a 3-block shared system prompt *)
  let plen = shared + 8 and new_tokens = 8 in
  let total_rows = plen + new_tokens - 1 in
  Modelkit.section
    (Printf.sprintf
       "paged KV: max concurrent width at a fixed %d-row arena, contiguous \
        vs paged+prefix"
       arena_rows);
  let rng = Prng.create 7 in
  let llm = Llm.create ~rng ~block:8 Llm.tiny in
  let vocab = Llm.tiny.Llm.vocab in
  let prompt_of i =
    Array.init plen (fun j ->
        if j < shared then (7 * j + 3) mod vocab
        else (131 * (i + 1) + j) mod vocab)
  in
  (* admit until the first denial, keeping every admitted cache live (the
     concurrent width is the point); prefill really runs so prefix hits
     attach shared blocks and suffixes append fresh ones *)
  let admit_loop pool =
    let live = ref [] and width = ref 0 and stop = ref false in
    while not !stop && !width <= 4 * num_blocks do
      let prompt = prompt_of !width in
      match Serve.Kv_pool.acquire_for pool ~prompt ~total_rows () with
      | `Denied -> stop := true
      | `Cache (cache, matched) ->
        let suffix = Array.sub prompt matched (plen - matched) in
        ignore (Llm.extend llm cache (Llm.embed llm suffix));
        Serve.Kv_pool.register pool ~prompt cache;
        live := cache :: !live;
        incr width
    done;
    let w = !width in
    List.iter (Serve.Kv_pool.release pool) !live;
    w
  in
  (* contiguous provisioning at the same row budget: every live request
     reserves [total_rows] dedicated rows, nothing can be shared *)
  let contig_width =
    admit_loop
      (Serve.Kv_pool.create ~init_cap:total_rows
         ~max_live:(arena_rows / total_rows) llm)
  in
  let hits0 = Telemetry.Counter.value Kv.Block_manager.prefix_hits_name in
  let paged_width =
    admit_loop
      (Serve.Kv_pool.create
         ~policy:
           (Serve.Kv_pool.Paged { block_size; num_blocks; prefix = true })
         llm)
  in
  let hits =
    Telemetry.Counter.value Kv.Block_manager.prefix_hits_name - hits0
  in
  Printf.printf
    "  arena: %d blocks x %d tokens; request: %d prompt (%d shared) + %d \
     new tokens\n"
    num_blocks block_size plen shared new_tokens;
  Printf.printf "  contiguous:   %d concurrent before first Denied\n"
    contig_width;
  Printf.printf
    "  paged+prefix: %d concurrent before first Denied (%d prefix hits)\n%!"
    paged_width hits;
  let f = float_of_int in
  record_bench ~name:"paged-width"
    ~config:
      [ ("model", Llm.tiny.Llm.name);
        ("block_size", string_of_int block_size);
        ("num_blocks", string_of_int num_blocks);
        ("prompt_len", string_of_int plen);
        ("shared_prefix", string_of_int shared);
        ("new_tokens", string_of_int new_tokens) ]
    ~metrics:
      [ ("arena_rows", f arena_rows); ("contiguous_width", f contig_width);
        ("paged_width", f paged_width); ("kv_prefix_hits", f hits) ]
    ();
  if paged_width <= contig_width then begin
    Printf.eprintf
      "paged: width %d is not strictly above contiguous width %d at the \
       same arena\n"
      paged_width contig_width;
    chaos_failed := true
  end;
  if hits = 0 then begin
    Printf.eprintf
      "paged: prefix trie recorded no hits — sharing never happened\n";
    chaos_failed := true
  end

(* ---- tuner benchmark (tune): exhaustive vs model-guided search ----

   Two seed GEMM shapes; every strategy scores candidates with the same
   §II-E model on a fixed platform (SPR, 16 threads), so results are
   machine-independent and deterministic. The process fails unless the
   beam search lands within 2% of the exhaustive best while scoring
   under 10% of the space — the headline claim for replacing §II-D
   enumeration with model-guided search. *)

let run_tune () =
  let platform = Platform.spr and nthreads = 16 in
  Modelkit.section
    (Printf.sprintf
       "tuner: exhaustive vs model-guided search (modeled on %s, %d threads)"
       platform.Platform.name nthreads);
  let shapes =
    [ ("128x128x128/b32", Gemm.make_config ~bm:32 ~bn:32 ~bk:32 ~m:128 ~n:128
         ~k:128 ());
      ("512x128x256/b32", Gemm.make_config ~bm:32 ~bn:32 ~bk:32 ~m:512 ~n:128
         ~k:256 ()) ]
  in
  let f = float_of_int in
  List.iter
    (fun (shape, cfg) ->
      (* ground truth: the full §II-D space, uncapped *)
      let ex =
        Autotune.tune_gemm ~max_candidates:100_000
          (Autotune.Modeled { platform; nthreads })
          cfg
      in
      let ex_best =
        match ex.Autotune.ranked with
        | e :: _ -> e.Autotune.gflops
        | [] -> 0.0
      in
      let space = ex.Autotune.evaluated + ex.Autotune.skipped in
      record_bench ~name:"tune"
        ~config:[ ("shape", shape); ("strategy", "exhaustive") ]
        ~metrics:
          [ ("evaluated", f ex.Autotune.evaluated);
            ("space", f space);
            ("best_gflops", ex_best);
            ("tuning_seconds", ex.Autotune.tuning_seconds) ]
        ();
      Printf.printf "  %-16s exhaustive: best %7.0f GFLOPS, %d candidates, \
                     %.2fs\n%!"
        shape ex_best ex.Autotune.evaluated ex.Autotune.tuning_seconds;
      (* model-guided strategies under a <10%-of-space budget *)
      let budget = max 8 (space / 12) in
      List.iter
        (fun strategy ->
          let r =
            Search.search ~strategy ~max_evals:budget ~platform ~nthreads cfg
          in
          let best =
            match r.Search.ranked with
            | e :: _ -> e.Autotune.gflops
            | [] -> 0.0
          in
          let frac = f r.Search.evaluated /. f (max 1 r.Search.space) in
          record_bench ~name:"tune"
            ~config:
              [ ("shape", shape);
                ("strategy", Search.strategy_name strategy) ]
            ~metrics:
              [ ("evaluated", f r.Search.evaluated);
                ("space", f r.Search.space);
                ("space_fraction", frac);
                ("best_gflops", best);
                ("tuning_seconds", r.Search.tuning_seconds) ]
            ();
          Printf.printf
            "  %-16s %-10s: best %7.0f GFLOPS (%5.1f%% of exhaustive), %d \
             candidates (%.1f%% of space), %.2fs\n%!"
            shape
            (Search.strategy_name strategy)
            best
            (100.0 *. best /. ex_best)
            r.Search.evaluated (100.0 *. frac) r.Search.tuning_seconds;
          if strategy = Search.default_strategy then begin
            if best < 0.98 *. ex_best then begin
              Printf.eprintf
                "tune: %s beam best %.0f GFLOPS is below 98%% of exhaustive \
                 best %.0f\n"
                shape best ex_best;
              chaos_failed := true
            end;
            if f r.Search.evaluated >= 0.10 *. f r.Search.space then begin
              Printf.eprintf
                "tune: %s beam scored %d of %d candidates — not under 10%% \
                 of the space\n"
                shape r.Search.evaluated r.Search.space;
              chaos_failed := true
            end
          end)
        [ Search.default_strategy;
          Search.Greedy { max_steps = 32 };
          Search.Bandit { epsilon = 0.3; rounds = 64 } ])
    shapes

(* ---- experiment registry ---- *)

let experiments =
  [
    ("fig2", Fig2.run);
    ("fig3", Fig3.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("tables", Tables.run);
    ("ablations", Ablations.run);
    ("micro", run_micro);
    ("gemm", run_gemm_points);
    ("dispatch", run_dispatch);
    ("recorder", run_recorder);
    ("paged", run_paged_width);
    ("tune", run_tune);
  ]

let run_all () =
  List.iter
    (fun (name, f) ->
      let t0 = Telemetry.Clock.now_s () in
      f ();
      Printf.printf "[%s completed in %.1fs]\n%!" name
        (Telemetry.Clock.now_s () -. t0))
    experiments

let usage () =
  Printf.eprintf
    "usage: main.exe [EXPERIMENT...] [--serve] [--serve-rate HZ]\n\
    \       [--serve-duration S] [--chaos] [--chaos-seed N]\n\
    \       [--chaos-requests N] [--replicas N] [--shards M]\n\
    \       [--disaggregate] [--hard-kill] [--placement rr|jsq|deadline]\n\
    \       [--paged] [--block-size N] [--num-blocks N]\n\
    \       [--spec-decode K] [--draft-layers N] [--sys-prompt N]\n\
    \       [--online-tune] [--json FILE] [--compare BASELINE.json]\n\
    \       [--telemetry]\n\
     experiments: %s\n"
    (String.concat ", " (List.map fst experiments));
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let telemetry = ref false in
  let serve = ref false in
  let serve_rate = ref 20.0 in
  let serve_duration = ref 5.0 in
  let chaos = ref false in
  let chaos_seed = ref 42 in
  let chaos_requests = ref 24 in
  let replicas = ref 1 in
  let shards = ref 1 in
  let disaggregate = ref false in
  let hard_kill = ref false in
  let placement = ref Cluster.Router.Round_robin in
  let paged = ref false in
  let block_size = ref 16 in
  let num_blocks = ref 64 in
  let spec_decode = ref 0 in
  let draft_layers = ref 1 in
  let sys_prompt = ref 0 in
  let online_tune = ref false in
  let json_path = ref None in
  let compare_path = ref None in
  let names = ref [] in
  let int_arg name rest =
    match rest with
    | v :: rest -> (
      match int_of_string_opt v with
      | Some i when i > 0 -> (i, rest)
      | _ ->
        Printf.eprintf "%s expects a positive integer, got %S\n" name v;
        exit 1)
    | [] ->
      Printf.eprintf "%s expects a value\n" name;
      exit 1
  in
  let float_arg name rest =
    match rest with
    | v :: rest -> (
      match float_of_string_opt v with
      | Some f when f > 0.0 -> (f, rest)
      | _ ->
        Printf.eprintf "%s expects a positive number, got %S\n" name v;
        exit 1)
    | [] ->
      Printf.eprintf "%s expects a value\n" name;
      exit 1
  in
  let rec parse = function
    | [] -> ()
    | "--telemetry" :: rest ->
      telemetry := true;
      parse rest
    | "--serve" :: rest ->
      serve := true;
      parse rest
    | "--serve-rate" :: rest ->
      let v, rest = float_arg "--serve-rate" rest in
      serve_rate := v;
      parse rest
    | "--serve-duration" :: rest ->
      let v, rest = float_arg "--serve-duration" rest in
      serve_duration := v;
      parse rest
    | "--chaos" :: rest ->
      chaos := true;
      parse rest
    | "--chaos-seed" :: v :: rest -> (
      match int_of_string_opt v with
      | Some i ->
        chaos_seed := i;
        chaos := true;
        parse rest
      | None ->
        Printf.eprintf "--chaos-seed expects an integer, got %S\n" v;
        exit 1)
    | "--chaos-seed" :: [] ->
      Printf.eprintf "--chaos-seed expects a value\n";
      exit 1
    | "--chaos-requests" :: rest ->
      let v, rest = int_arg "--chaos-requests" rest in
      chaos_requests := v;
      chaos := true;
      parse rest
    | "--replicas" :: rest ->
      let v, rest = int_arg "--replicas" rest in
      replicas := v;
      parse rest
    | "--shards" :: rest ->
      let v, rest = int_arg "--shards" rest in
      shards := v;
      parse rest
    | "--disaggregate" :: rest ->
      disaggregate := true;
      parse rest
    | "--hard-kill" :: rest ->
      hard_kill := true;
      chaos := true;
      parse rest
    | "--paged" :: rest ->
      paged := true;
      parse rest
    | "--block-size" :: rest ->
      let v, rest = int_arg "--block-size" rest in
      block_size := v;
      paged := true;
      parse rest
    | "--num-blocks" :: rest ->
      let v, rest = int_arg "--num-blocks" rest in
      num_blocks := v;
      paged := true;
      parse rest
    | "--spec-decode" :: rest ->
      let v, rest = int_arg "--spec-decode" rest in
      spec_decode := v;
      parse rest
    | "--draft-layers" :: rest ->
      let v, rest = int_arg "--draft-layers" rest in
      draft_layers := v;
      parse rest
    | "--sys-prompt" :: rest ->
      let v, rest = int_arg "--sys-prompt" rest in
      sys_prompt := v;
      parse rest
    | "--online-tune" :: rest ->
      online_tune := true;
      parse rest
    | "--placement" :: v :: rest -> (
      match Cluster.Router.placement_of_string v with
      | Some p ->
        placement := p;
        parse rest
      | None ->
        Printf.eprintf "--placement expects rr|jsq|deadline, got %S\n" v;
        exit 1)
    | "--placement" :: [] ->
      Printf.eprintf "--placement expects a value\n";
      exit 1
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--json" :: [] ->
      Printf.eprintf "--json expects a file path\n";
      exit 1
    | "--compare" :: path :: rest ->
      compare_path := Some path;
      parse rest
    | "--compare" :: [] ->
      Printf.eprintf "--compare expects a baseline JSON path\n";
      exit 1
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
      Printf.eprintf "unknown flag %S\n" a;
      usage ()
    | name :: rest ->
      names := name :: !names;
      parse rest
  in
  parse args;
  let names = List.rev !names in
  if !telemetry then begin
    Telemetry.Registry.reset ();
    Telemetry.Registry.enable ()
  end;
  (match (names, !serve || !chaos) with
  | [], true -> ()  (* --serve/--chaos alone run only those harnesses *)
  | _ :: _, _ ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names
  | [], false -> run_all ());
  if !serve then
    run_serve ~rate:!serve_rate ~duration:!serve_duration ~replicas:!replicas
      ~shards:!shards ~disaggregate:!disaggregate ~placement:!placement
      ~paged:!paged ~block_size:!block_size ~num_blocks:!num_blocks
      ~spec_k:!spec_decode ~draft_layers:!draft_layers
      ~sys_prompt:!sys_prompt ~online_tune:!online_tune ();
  if !chaos then
    if !replicas > 1 || !shards > 1 || !disaggregate || !hard_kill then
      run_cluster_chaos ~seed:!chaos_seed ~requests:!chaos_requests
        ~replicas:(max 2 !replicas) ~shards:!shards
        ~disaggregate:!disaggregate ~hard_kill:!hard_kill ~paged:!paged
        ~block_size:!block_size ~num_blocks:!num_blocks ~spec_k:!spec_decode
        ~draft_layers:!draft_layers ~sys_prompt:!sys_prompt ()
    else
      run_chaos ~seed:!chaos_seed ~requests:!chaos_requests ~paged:!paged
        ~block_size:!block_size ~num_blocks:!num_blocks ~spec_k:!spec_decode
        ~draft_layers:!draft_layers ~sys_prompt:!sys_prompt ();
  if !telemetry then begin
    Telemetry.Registry.disable ();
    let host = Platform.host in
    Telemetry.Report.print
      ~peak_gflops:(Platform.peak_gflops host Datatype.F32)
      ~mem_bw_gbs:host.Platform.mem_bw_gbs ()
  end;
  (match !json_path with Some p -> write_bench_json p | None -> ());
  (match !compare_path with Some p -> compare_with_baseline p | None -> ());
  if !chaos_failed then exit 1

(* Benchmark harness: one runner per table and figure of the paper, plus
   Bechamel microbenchmarks of the real kernels on this host and the
   ablation suite.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig2 fig8    # selected experiments
     dune exec bench/main.exe -- micro        # Bechamel kernel benches

   Pass --telemetry (anywhere in the argument list) to run the selected
   experiments with the telemetry registry enabled and print the
   aggregated report — per-kernel achieved GFLOPS, JIT-cache hit rate,
   predicted-vs-measured model deviation — at the end. *)

open Bechamel
open Toolkit

(* ---- Bechamel microbenchmarks of the real kernels ---- *)

let gemm_bench ~name ~dtype ~vnni_b dim block =
  let rng = Prng.create 99 in
  let cfg =
    Gemm.make_config ~bm:block ~bn:block ~bk:block ~dtype ~vnni_b ~k_step:4
      ~m:dim ~n:dim ~k:dim ()
  in
  let g = Gemm.create cfg "BCa" in
  let a = Tensor.create dtype [| dim; dim |] in
  let b = Tensor.create dtype [| dim; dim |] in
  Tensor.fill_random a rng ~scale:1.0;
  Tensor.fill_random b rng ~scale:1.0;
  let ap = Gemm.pack_a cfg a and bp = Gemm.pack_b cfg b in
  let cp = Gemm.alloc_c cfg in
  Test.make ~name (Staged.stage (fun () -> Gemm.run g ~a:ap ~b:bp ~c:cp))

let conv_bench ~name dim =
  let rng = Prng.create 98 in
  let cfg =
    Conv.make_config ~pad:1 ~bc:16 ~bk:16 ~c_step:2 ~n:1 ~c:32 ~k:32 ~h:dim
      ~w:dim ~r:3 ~s:3 ()
  in
  let cv = Conv.create cfg "acdebfg" in
  let inp = Tensor.create Datatype.F32 [| 1; 32; dim; dim |] in
  Tensor.fill_random inp rng ~scale:1.0;
  let wts = Tensor.create Datatype.F32 [| 32; 32; 3; 3 |] in
  Tensor.fill_random wts rng ~scale:1.0;
  let ip = Conv.pack_input cfg inp and wp = Conv.pack_weights cfg wts in
  let o = Conv.alloc_output cfg in
  Test.make ~name
    (Staged.stage (fun () -> Conv.run cv ~input:ip ~weights:wp ~output:o))

let spmm_bench ~name ~sparsity dim =
  let rng = Prng.create 97 in
  let a =
    Bcsc.random ~rng ~dtype:Datatype.F32 ~rows:dim ~cols:dim ~bm:16 ~bk:16
      ~sparsity
  in
  let b = Tensor.create Datatype.F32 [| dim; dim |] in
  Tensor.fill_random b rng ~scale:1.0;
  let cfg = Spmm_kernel.make_config ~bn:32 ~m:dim ~n:dim ~k:dim ~bm:16 ~bk:16 () in
  let sp = Spmm_kernel.create cfg "AB" in
  let bp = Spmm_kernel.pack_b cfg b in
  let c = Tensor.create Datatype.F32 [| dim; dim |] in
  Test.make ~name (Staged.stage (fun () -> Spmm_kernel.run sp ~a ~b:bp ~c))

let bert_layer_bench ~name =
  let rng = Prng.create 96 in
  let bert = Bert.create ~rng ~block:16 Bert.tiny_config in
  let x = Tensor.create Datatype.F32 [| 32; Bert.tiny_config.Bert.hidden |] in
  Tensor.fill_random x rng ~scale:1.0;
  let layer = bert.Bert.encoder.(0) in
  Test.make ~name
    (Staged.stage (fun () -> ignore (Bert.encoder_layer bert layer x)))

let micro_tests () =
  [
    gemm_bench ~name:"gemm 256^3 f32" ~dtype:Datatype.F32 ~vnni_b:false 256 32;
    gemm_bench ~name:"gemm 256^3 bf16-vnni" ~dtype:Datatype.BF16 ~vnni_b:true
      256 32;
    conv_bench ~name:"conv 32x32x28^2 3x3" 28;
    spmm_bench ~name:"spmm 256^3 80% sparse" ~sparsity:0.8 256;
    spmm_bench ~name:"spmm 256^3 dense" ~sparsity:0.0 256;
    bert_layer_bench ~name:"bert-tiny encoder layer";
  ]

let run_micro () =
  Modelkit.section "Bechamel microbenchmarks (real kernels, this host)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-28s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    (micro_tests ())

(* ---- experiment registry ---- *)

let experiments =
  [
    ("fig2", Fig2.run);
    ("fig3", Fig3.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("tables", Tables.run);
    ("ablations", Ablations.run);
    ("micro", run_micro);
  ]

let run_all () =
  List.iter
    (fun (name, f) ->
      let t0 = Telemetry.Clock.now_s () in
      f ();
      Printf.printf "[%s completed in %.1fs]\n%!" name
        (Telemetry.Clock.now_s () -. t0))
    experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let telemetry = List.mem "--telemetry" args in
  let names = List.filter (fun a -> a <> "--telemetry") args in
  if telemetry then begin
    Telemetry.Registry.reset ();
    Telemetry.Registry.enable ()
  end;
  (match names with
  | _ :: _ ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names
  | [] -> run_all ());
  if telemetry then begin
    Telemetry.Registry.disable ();
    let host = Platform.host in
    Telemetry.Report.print
      ~peak_gflops:(Platform.peak_gflops host Datatype.F32)
      ~mem_bw_gbs:host.Platform.mem_bw_gbs ()
  end

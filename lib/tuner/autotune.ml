type objective =
  | Measured of { nthreads : int; repeats : int }
  | Modeled of { platform : Platform.t; nthreads : int }

type entry = {
  spec : string;
  cfg : Gemm.config;
  gflops : float;
  predicted_gflops : float option;
}

type report = {
  ranked : entry list;
  evaluated : int;
  skipped : int;
  tuning_seconds : float;
}

exception Measurement_error of { spec : string; reason : string }

let candidate_config (base : Gemm.config) (c : Spec_gen.candidate) =
  {
    base with
    Gemm.kk_blocks = c.Spec_gen.block_steps.(0);
    mk_blocks = c.Spec_gen.block_steps.(1);
    nk_blocks = c.Spec_gen.block_steps.(2);
  }

let measure_gemm ~nthreads ~repeats cfg spec =
  let g = Gemm.create cfg spec in
  let rng = Prng.create 1234 in
  let a =
    Tensor.init cfg.Gemm.dtype [| cfg.Gemm.m; cfg.Gemm.k |] (fun _ ->
        Prng.uniform rng ~scale:1.0)
  in
  let b =
    Tensor.init cfg.Gemm.dtype [| cfg.Gemm.k; cfg.Gemm.n |] (fun _ ->
        Prng.uniform rng ~scale:1.0)
  in
  let ap = Gemm.pack_a cfg a and bp = Gemm.pack_b cfg b in
  let cp = Gemm.alloc_c cfg in
  (* warm-up resolves JIT compilation outside the timed region *)
  Gemm.run ~nthreads g ~a:ap ~b:bp ~c:cp;
  let t0 = Telemetry.Clock.now_ns () in
  for _ = 1 to repeats do
    Gemm.run ~nthreads g ~a:ap ~b:bp ~c:cp
  done;
  let dt = Telemetry.Clock.elapsed_s ~since:t0 /. float_of_int repeats in
  (* a non-positive interval on a monotonic clock means the timed region
     was not observable — surface it instead of reporting 0 GFLOPS, which
     would silently poison the tuning ranking *)
  if dt <= 0.0 then
    raise
      (Measurement_error
         { spec;
           reason =
             Printf.sprintf "degenerate timing (%g s over %d repeats)" dt
               repeats });
  Gemm.flops cfg /. dt /. 1e9

let default_constraints (base : Gemm.config) =
  Spec_gen.gemm_constraints
    ~trip_a:(Gemm.kb base / base.Gemm.k_step)
    ~trip_b:(Gemm.mb base) ~trip_c:(Gemm.nb base) ~step_a:base.Gemm.k_step ()

let tune_gemm ?max_candidates ?constraints ?model_platform objective base =
  let cons =
    match constraints with
    | Some c -> c
    | None -> default_constraints base
  in
  let candidates = Spec_gen.generate ?max_candidates cons in
  let t0 = Telemetry.Clock.now_ns () in
  let skipped = ref 0 in
  let skip () =
    incr skipped;
    None
  in
  let entries =
    List.filter_map
      (fun cand ->
        let cfg = candidate_config base cand in
        match
          (try Some (Gemm.create cfg cand.Spec_gen.spec)
           with Threaded_loop.Invalid_spec _ | Invalid_argument _ -> None)
        with
        | None -> skip ()
        | Some _ -> (
          match
            match objective with
            | Measured { nthreads; repeats } ->
              measure_gemm ~nthreads ~repeats cfg cand.Spec_gen.spec
            | Modeled { platform; nthreads } ->
              (Gemm_trace.score ~platform ~nthreads cfg cand.Spec_gen.spec)
                .Perf_model.gflops
          with
          | exception Measurement_error { spec; reason } ->
            (* an unmeasurable candidate must not abort the sweep: note the
               failing spec, drop it from the ranking, keep tuning *)
            Printf.eprintf "autotune: skipping spec %S: %s\n%!" spec reason;
            skip ()
          | gflops ->
            (* with a measured objective and a platform model of the host
               we can confront the §II-E model with reality per candidate *)
            let predicted_gflops =
              match (objective, model_platform) with
              | Measured { nthreads; _ }, Some platform ->
                let p =
                  (Gemm_trace.score ~platform ~nthreads cfg cand.Spec_gen.spec)
                    .Perf_model.gflops
                in
                Telemetry.Registry.record_prediction
                  ~name:("gemm " ^ cand.Spec_gen.spec) ~predicted_gflops:p
                  ~measured_gflops:gflops;
                Some p
              | _ -> None
            in
            Some { spec = cand.Spec_gen.spec; cfg; gflops; predicted_gflops }))
      candidates
  in
  let ranked =
    List.sort (fun a b -> compare b.gflops a.gflops) entries
  in
  {
    ranked;
    evaluated = List.length entries;
    skipped = !skipped;
    tuning_seconds = Telemetry.Clock.elapsed_s ~since:t0;
  }

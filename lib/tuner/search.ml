(* Model-guided loop_spec_string search (LoopTune / LoopStack style).

   Instead of enumerating the whole §II-D candidate space, the search
   walks it through typed mutations of a structured spec state —
   reordering non-reduction loop occurrences, re-factoring blocking
   chains via Factorize, and reassigning the parallel (capitalized)
   run — with every candidate scored by the §II-E performance model
   (Gemm_trace.score), which costs microseconds instead of a kernel
   run. Only the top-k survivors are promoted to real measurement
   (Autotune.measure_gemm), and the model-vs-measured rank agreement
   over that refined set is reported so model drift is visible.

   Everything is deterministic: neighbor generation order is fixed,
   ranking ties break on the spec string, and the epsilon-bandit draws
   from a seeded splitmix PRNG — the same seed always yields the same
   ranked list (pinned by the tuner tests).

   Legality by construction: mutations only permute occurrences of
   DISTINCT loops (two occurrences of the reduction loop are never
   swapped with each other), so the k occurrences keep their relative
   outer-to-inner order and every visited spec accumulates C blocks in
   increasing-k order — the bit-identity precondition the online spec
   cache relies on. The K loop is never capitalized because the
   constraints mark it non-parallelizable. *)

type strategy =
  | Beam of { width : int; depth : int }
  | Greedy of { max_steps : int }
  | Bandit of { epsilon : float; rounds : int }

let strategy_name = function
  | Beam _ -> "beam"
  | Greedy _ -> "greedy"
  | Bandit _ -> "bandit"

let strategy_of_string = function
  | "beam" -> Some (Beam { width = 8; depth = 8 })
  | "greedy" -> Some (Greedy { max_steps = 32 })
  | "bandit" -> Some (Bandit { epsilon = 0.3; rounds = 64 })
  | _ -> None

type step_stat = {
  step : int;
  generated : int;  (** neighbors proposed this step *)
  pruned : int;  (** duplicates, illegal or over-budget candidates *)
  scored : int;  (** model evaluations this step *)
  best_gflops : float;  (** best modeled GFLOPS after this step *)
}

type report = {
  ranked : Autotune.entry list;  (** best first; measured-first if refined *)
  evaluated : int;  (** distinct candidates model-scored *)
  measured : int;  (** candidates promoted to real measurement *)
  space : int;  (** exhaustive candidate-space size, same constraints *)
  steps : step_stat list;  (** chronological per-step telemetry *)
  rank_correlation : float option;
      (** Spearman rho between model and measured ranks over the refined
          top-k (needs >= 2 successful measurements) *)
  tuning_seconds : float;
}

(* ---- structured spec state ---- *)

(* A candidate as the mutations see it: loop id per occurrence
   (outermost first), the capitalized run, and per-loop blocking
   chains. [order] always keeps same-loop occurrences in declaration
   order (outer chunk first), so rendering occurrence i of loop l picks
   the i-th entry of its blocking chain. *)
type state = {
  order : int array;
  par : (int * int) option;  (** (start, len) of the capitalized run *)
  blocks : int list array;
}

let render st =
  let n = Array.length st.order in
  String.init n (fun i ->
      let ch = Char.chr (st.order.(i) + Char.code 'a') in
      match st.par with
      | Some (s, l) when i >= s && i < s + l -> Char.uppercase_ascii ch
      | _ -> ch)

let to_candidate st =
  { Spec_gen.spec = render st; block_steps = Array.copy st.blocks }

(* parse a plain generated spec (letters only, no grid/barrier
   annotations) back into a state; [None] for anything fancier *)
let of_candidate (c : Spec_gen.candidate) =
  let n = String.length c.Spec_gen.spec in
  let order = Array.make n 0 in
  let par_lo = ref (-1) and par_hi = ref (-1) and plain = ref true in
  String.iteri
    (fun i ch ->
      let lower = Char.lowercase_ascii ch in
      if lower < 'a' || lower > 'z' then plain := false
      else begin
        order.(i) <- Char.code lower - Char.code 'a';
        if ch <> lower then begin
          if !par_lo < 0 then par_lo := i;
          par_hi := i
        end
      end)
    c.Spec_gen.spec;
  let caps = ref 0 in
  String.iter
    (fun ch -> if ch <> Char.lowercase_ascii ch then incr caps)
    c.Spec_gen.spec;
  (* only one consecutive capitalized run is representable *)
  let run_is_consecutive = !par_lo < 0 || !par_hi - !par_lo + 1 = !caps in
  if (not !plain) || n = 0 || not run_is_consecutive then None
  else
    let par =
      if !par_lo < 0 then None else Some (!par_lo, !par_hi - !par_lo + 1)
    in
    Some { order; par; blocks = Array.copy c.Spec_gen.block_steps }

(* a parallel run is legal when its letters are distinct, all
   parallelizable, and it fits the occurrence list *)
let par_legal (cons : Spec_gen.constraints) order = function
  | None -> true
  | Some (s, l) ->
    s >= 0 && l >= 1
    && l <= cons.Spec_gen.max_parallel
    && s + l <= Array.length order
    && (let letters = Array.to_list (Array.sub order s l) in
        List.length (List.sort_uniq compare letters) = l
        && List.for_all (fun c -> cons.Spec_gen.parallelizable.(c)) letters)

let normalize_par cons st =
  if par_legal cons st.order st.par then st else { st with par = None }

(* ---- typed mutations ---- *)

(* adjacent transpositions of occurrences of distinct loops: generates
   every permutation that preserves the relative order of same-loop
   occurrences — in particular the reduction loop's *)
let swap_neighbors cons st =
  let n = Array.length st.order in
  let out = ref [] in
  for i = 0 to n - 2 do
    if st.order.(i) <> st.order.(i + 1) then begin
      let order = Array.copy st.order in
      let tmp = order.(i) in
      order.(i) <- order.(i + 1);
      order.(i + 1) <- tmp;
      out := normalize_par cons { st with order } :: !out
    end
  done;
  List.rev !out

(* re-factor one loop's blocking chain: every legal Factorize chain of
   every allowed depth; the occurrence count of that loop tracks the
   chain length (depth+1 occurrences) *)
let reblock_neighbors (cons : Spec_gen.constraints) st =
  let nloops = Array.length cons.Spec_gen.trip_counts in
  let out = ref [] in
  for l = 0 to nloops - 1 do
    for depth = 0 to cons.Spec_gen.max_blockings.(l) do
      List.iter
        (fun chain ->
          if chain <> st.blocks.(l) then begin
            let cur = Array.fold_left (fun a x -> if x = l then a + 1 else a) 0 st.order in
            let want = List.length chain + 1 in
            let order =
              if want = cur then Array.copy st.order
              else if want > cur then begin
                (* insert extra occurrences just before the innermost one *)
                let last = ref (-1) in
                Array.iteri (fun i x -> if x = l then last := i) st.order;
                let extra = want - cur in
                let n = Array.length st.order in
                Array.init (n + extra) (fun i ->
                    if i < !last then st.order.(i)
                    else if i < !last + extra then l
                    else st.order.(i - extra))
              end
              else begin
                (* drop outermost surplus occurrences of l *)
                let drop = ref (cur - want) in
                let kept = ref [] in
                Array.iter
                  (fun x ->
                    if x = l && !drop > 0 then decr drop
                    else kept := x :: !kept)
                  st.order;
                Array.of_list (List.rev !kept)
              end
            in
            let blocks = Array.copy st.blocks in
            blocks.(l) <- chain;
            (* occurrence positions moved: keep the run only if it still
               denotes a legal collapse at the same indices *)
            let cand = { order; par = st.par; blocks } in
            out := normalize_par cons cand :: !out
          end)
        (Factorize.blocking_lists ~trip:cons.Spec_gen.trip_counts.(l)
           ~step:cons.Spec_gen.steps.(l) ~depth)
    done
  done;
  List.rev !out

(* reassign the parallel dim: every legal capitalized run (including
   dropping parallelism) other than the current one *)
let repar_neighbors (cons : Spec_gen.constraints) st =
  let n = Array.length st.order in
  let out = ref [] in
  if st.par <> None then out := { st with par = None } :: !out;
  for len = 1 to cons.Spec_gen.max_parallel do
    for start = 0 to n - len do
      let par = Some (start, len) in
      if par <> st.par && par_legal cons st.order par then
        out := { st with par } :: !out
    done
  done;
  List.rev !out

let neighbor_states cons st =
  swap_neighbors cons st @ reblock_neighbors cons st @ repar_neighbors cons st

(* the mutation interface the legality tests exercise *)
let neighbors cons (c : Spec_gen.candidate) =
  match of_candidate c with
  | None -> []
  | Some st -> List.map to_candidate (neighbor_states cons st)

(* ---- search proper ---- *)

type ctx = {
  cons : Spec_gen.constraints;
  base : Gemm.config;
  platform : Platform.t;
  nthreads : int;
  max_evals : int;
  seen : (string, float option) Hashtbl.t;
      (** key -> modeled GFLOPS; None = illegal / failed to compile *)
  mutable evals : int;
  mutable stats : step_stat list;
  mutable stepno : int;
  gen_c : Telemetry.Counter.t;
  pruned_c : Telemetry.Counter.t;
  scored_c : Telemetry.Counter.t;
}

let key_of st =
  render st ^ "/"
  ^ String.concat ";"
      (Array.to_list
         (Array.map
            (fun l -> String.concat "," (List.map string_of_int l))
            st.blocks))

let budget_left ctx = ctx.evals < ctx.max_evals

(* score one state through the §II-E model; memoized, budget-counted *)
let score ctx st =
  let key = key_of st in
  match Hashtbl.find_opt ctx.seen key with
  | Some v -> (v, false)
  | None ->
    let cand = to_candidate st in
    let cfg = Autotune.candidate_config ctx.base cand in
    let v =
      match Gemm.create cfg cand.Spec_gen.spec with
      | exception (Threaded_loop.Invalid_spec _ | Invalid_argument _) -> None
      | _ ->
        Some
          (Gemm_trace.score ~platform:ctx.platform ~nthreads:ctx.nthreads cfg
             cand.Spec_gen.spec)
            .Perf_model.gflops
    in
    Hashtbl.add ctx.seen key v;
    (match v with
    | Some _ ->
      ctx.evals <- ctx.evals + 1;
      Telemetry.Counter.incr ctx.scored_c
    | None -> Telemetry.Counter.incr ctx.pruned_c);
    (v, true)

(* deterministic ranking: GFLOPS descending, spec string as tie-break *)
let cmp_scored (ga, sa) (gb, sb) =
  match compare gb ga with 0 -> compare (key_of sa) (key_of sb) | c -> c

(* expand one step: propose neighbors of [frontier], dedup against
   [seen], score the fresh ones; returns scored fresh states *)
let expand ctx frontier =
  let proposed = List.concat_map (neighbor_states ctx.cons) frontier in
  let generated = List.length proposed in
  Telemetry.Counter.add ctx.gen_c generated;
  let scored = ref 0 and pruned = ref 0 in
  let fresh =
    List.filter_map
      (fun st ->
        if not (budget_left ctx) then begin
          incr pruned;
          None
        end
        else
          match score ctx st with
          | Some g, true ->
            incr scored;
            Some (g, st)
          | Some _, false | None, _ ->
            incr pruned;
            None)
      proposed
  in
  ctx.stepno <- ctx.stepno + 1;
  (fresh, generated, !scored, !pruned)

let record_step ctx ~generated ~scored ~pruned ~best =
  ctx.stats <-
    { step = ctx.stepno; generated; pruned; scored; best_gflops = best }
    :: ctx.stats

let run_greedy ctx start ~max_steps =
  let best = ref start in
  let best_g = ref (match score ctx start with Some g, _ -> g | None, _ -> 0.0) in
  let continue = ref true in
  let steps = ref 0 in
  while !continue && !steps < max_steps && budget_left ctx do
    incr steps;
    let fresh, generated, scored, pruned = expand ctx [ !best ] in
    (match List.sort cmp_scored fresh with
    | (g, st) :: _ when g > !best_g ->
      best := st;
      best_g := g
    | _ -> continue := false);
    record_step ctx ~generated ~scored ~pruned ~best:!best_g
  done

let run_beam ctx start ~width ~depth =
  let beam = ref [ (Option.value (fst (score ctx start)) ~default:0.0, start) ] in
  let continue = ref true in
  let d = ref 0 in
  while !continue && !d < depth && budget_left ctx do
    incr d;
    let fresh, generated, scored, pruned =
      expand ctx (List.map snd !beam)
    in
    let merged =
      List.sort_uniq cmp_scored (fresh @ !beam) |> fun l ->
      List.filteri (fun i _ -> i < width) l
    in
    let best_before = match !beam with (g, _) :: _ -> g | [] -> 0.0 in
    let best_after = match merged with (g, _) :: _ -> g | [] -> 0.0 in
    record_step ctx ~generated ~scored ~pruned ~best:best_after;
    if scored = 0 || (merged = !beam && best_after <= best_before) then
      continue := false;
    beam := merged
  done

let run_bandit ctx start ~epsilon ~rounds ~seed =
  let rng = Prng.create seed in
  let pool = ref [ (Option.value (fst (score ctx start)) ~default:0.0, start) ] in
  let r = ref 0 in
  while !r < rounds && budget_left ctx do
    incr r;
    let sorted = List.sort cmp_scored !pool in
    let parent =
      if Prng.float rng < epsilon then
        snd (List.nth sorted (Prng.int rng (List.length sorted)))
      else snd (List.hd sorted)
    in
    let fresh, generated, scored, pruned = expand ctx [ parent ] in
    (* keep one random fresh arm plus the best fresh arm *)
    (match List.sort cmp_scored fresh with
    | [] -> ()
    | (gb, sb) :: _ as all ->
      pool := (gb, sb) :: !pool;
      let n = List.length all in
      if n > 1 then pool := List.nth all (Prng.int rng n) :: !pool);
    let best = match List.sort cmp_scored !pool with (g, _) :: _ -> g | [] -> 0.0 in
    record_step ctx ~generated ~scored ~pruned ~best
  done

(* Spearman rank correlation between model and measured GFLOPS *)
let spearman pairs =
  let n = List.length pairs in
  if n < 2 then None
  else begin
    let rank proj =
      let sorted =
        List.sort
          (fun a b -> compare (proj b, snd b) (proj a, snd a))
          (List.mapi (fun i p -> (p, i)) pairs |> List.map (fun ((m, g), i) ->
               ((m, g), i)))
      in
      let tbl = Hashtbl.create n in
      List.iteri (fun r ((_, i)) -> Hashtbl.replace tbl i r) sorted;
      tbl
    in
    let rm = rank (fun ((m, _), _) -> m) in
    let rg = rank (fun ((_, g), _) -> g) in
    let sum_d2 = ref 0.0 in
    for i = 0 to n - 1 do
      let d = float_of_int (Hashtbl.find rm i - Hashtbl.find rg i) in
      sum_d2 := !sum_d2 +. (d *. d)
    done;
    let nf = float_of_int n in
    Some (1.0 -. (6.0 *. !sum_d2 /. (nf *. ((nf *. nf) -. 1.0))))
  end

let default_strategy = Beam { width = 8; depth = 8 }

let search ?(strategy = default_strategy) ?(max_evals = 200) ?(measure_top = 0)
    ?(measure_repeats = 3) ?measure_nthreads ?(seed = 42) ?constraints
    ~platform ~nthreads (base : Gemm.config) =
  let cons =
    match constraints with
    | Some c -> c
    | None -> Autotune.default_constraints base
  in
  let t0 = Telemetry.Clock.now_ns () in
  let ctx =
    { cons; base; platform; nthreads; max_evals;
      seen = Hashtbl.create 256; evals = 0; stats = []; stepno = 0;
      gen_c =
        Telemetry.Counter.find_or_create
          Telemetry.Registry.tuner_search_generated_name;
      pruned_c =
        Telemetry.Counter.find_or_create
          Telemetry.Registry.tuner_search_pruned_name;
      scored_c =
        Telemetry.Counter.find_or_create
          Telemetry.Registry.tuner_search_scored_name }
  in
  (* start from the default instantiation: canonical blocking-free order
     with the stock parallel collapse (Gemm.default_spec = "BCa") *)
  let start =
    let st =
      { order = [| 1; 2; 0 |]; par = Some (0, 2);
        blocks = Array.make (Array.length cons.Spec_gen.trip_counts) [] }
    in
    normalize_par cons st
  in
  (match strategy with
  | Greedy { max_steps } -> run_greedy ctx start ~max_steps
  | Beam { width; depth } -> run_beam ctx start ~width ~depth
  | Bandit { epsilon; rounds } -> run_bandit ctx start ~epsilon ~rounds ~seed);
  (* modeled ranking over everything scored *)
  let modeled =
    Hashtbl.fold
      (fun key v acc ->
        match v with
        | None -> acc
        | Some g -> (key, g) :: acc)
      ctx.seen []
    |> List.sort (fun (ka, ga) (kb, gb) ->
           match compare gb ga with 0 -> compare ka kb | c -> c)
  in
  (* keys carry "spec/blocks"; rebuild entries through the same parse the
     mutations use, so cfg blocking lists match the candidate *)
  let entry_of_key (key, g) =
    let spec, blocks_s =
      match String.index_opt key '/' with
      | Some i ->
        ( String.sub key 0 i,
          String.sub key (i + 1) (String.length key - i - 1) )
      | None -> (key, "")
    in
    let blocks =
      String.split_on_char ';' blocks_s
      |> List.map (fun s ->
             if s = "" then []
             else String.split_on_char ',' s |> List.map int_of_string)
      |> Array.of_list
    in
    let cand = { Spec_gen.spec; block_steps = blocks } in
    let cfg = Autotune.candidate_config base cand in
    { Autotune.spec; cfg; gflops = g; predicted_gflops = None }
  in
  let modeled_entries = List.map entry_of_key modeled in
  (* measured refinement of the top-k survivors *)
  let measured_c =
    Telemetry.Counter.find_or_create
      Telemetry.Registry.tuner_search_measured_name
  in
  let to_measure =
    List.filteri (fun i _ -> i < measure_top) modeled_entries
  in
  let mnthreads = Option.value measure_nthreads ~default:nthreads in
  let measured =
    List.filter_map
      (fun (e : Autotune.entry) ->
        match
          Autotune.measure_gemm ~nthreads:mnthreads ~repeats:measure_repeats
            e.Autotune.cfg e.Autotune.spec
        with
        | exception Autotune.Measurement_error { spec; reason } ->
          Printf.eprintf "search: skipping measurement of %S: %s\n%!" spec
            reason;
          None
        | g ->
          Telemetry.Counter.incr measured_c;
          Telemetry.Registry.record_prediction ~name:("gemm " ^ e.Autotune.spec)
            ~predicted_gflops:e.Autotune.gflops ~measured_gflops:g;
          Some
            { e with
              Autotune.gflops = g;
              predicted_gflops = Some e.Autotune.gflops })
      to_measure
  in
  let rank_correlation =
    spearman
      (List.map
         (fun (e : Autotune.entry) ->
           (Option.value e.Autotune.predicted_gflops ~default:0.0,
            e.Autotune.gflops))
         measured)
  in
  let measured_specs =
    List.map (fun (e : Autotune.entry) -> e.Autotune.spec) measured
  in
  let ranked =
    List.sort
      (fun (a : Autotune.entry) b -> compare b.Autotune.gflops a.Autotune.gflops)
      measured
    @ List.filter
        (fun (e : Autotune.entry) ->
          not (List.mem e.Autotune.spec measured_specs))
        modeled_entries
  in
  let space =
    List.length (Spec_gen.generate ~max_candidates:100_000 cons)
  in
  { ranked;
    evaluated = ctx.evals;
    measured = List.length measured;
    space;
    steps = List.rev ctx.stats;
    rank_correlation;
    tuning_seconds = Telemetry.Clock.elapsed_s ~since:t0 }

(* Online per-shape spec cache for the serve path.

   When enabled, a resolver installed in Gemm intercepts every
   create_resolved call: the first arrival of a (shape, dtype, blocks,
   spec) key is served the caller's default instantiation and the shape
   is queued for background tuning; a background domain runs the
   model-guided Search over it and — once the winning candidate passes a
   bit-identity probe against the default spec — publishes the tuned
   (config, spec), so the next nest compile for that shape (serve layers
   re-create their Gemm per forward through the JIT LRU) hot-swaps to
   the tuned instantiation. A candidate that fails the probe publishes
   the default instead, pinning the shape so it is never re-queued.

   The bit-identity gate is sound because every candidate the search can
   reach keeps the K loop serial and its occurrences in outer-to-inner
   order, so each C block accumulates its K contributions in the same
   increasing-k sequence regardless of loop order, blocking or thread
   assignment — float addition order is identical, hence bits are. The
   probe still verifies this end-to-end (nthreads:1 on deterministic
   PRNG inputs) rather than trusting the invariant.

   All counters land in Telemetry under the tuner.cache prefix: hits
   (resolved from a published entry), misses (not yet published), swaps
   (tuned spec published), rejected (probe failed, default pinned),
   tunes (background tunes completed). *)

type status = Pending | Published of Gemm.config * string

type tuning = {
  platform : Platform.t;
  nthreads : int;
  strategy : Search.strategy;
  max_evals : int;
}

let lock = Mutex.create ()
let cond = Condition.create ()
let table : (string, status) Hashtbl.t = Hashtbl.create 16
let queue : (string * Gemm.config * string) Queue.t = Queue.create ()
let worker : unit Domain.t option ref = ref None
let stop = ref false
let busy = ref false
let tuning : tuning option ref = ref None

let hits_c = Telemetry.Counter.find_or_create Telemetry.Registry.tuner_cache_hits_name
let misses_c = Telemetry.Counter.find_or_create Telemetry.Registry.tuner_cache_misses_name
let swaps_c = Telemetry.Counter.find_or_create Telemetry.Registry.tuner_cache_swaps_name
let rejected_c = Telemetry.Counter.find_or_create Telemetry.Registry.tuner_cache_rejected_name
let tunes_c = Telemetry.Counter.find_or_create Telemetry.Registry.tuner_cache_tunes_name

(* the caller's spec is part of the key: two call sites hitting the same
   shape with different baseline specs tune independently *)
let key_of (c : Gemm.config) spec =
  Printf.sprintf "%dx%dx%d/b%dx%dx%d/%s%s/ks%d/%s" c.Gemm.m c.Gemm.n c.Gemm.k
    c.Gemm.bm c.Gemm.bn c.Gemm.bk
    (Datatype.to_string c.Gemm.dtype)
    (if c.Gemm.vnni_b then "v" else "")
    c.Gemm.k_step spec

(* ---- bit-identity probe ----
   run default and candidate instantiations on the same deterministic
   inputs and require every C bit to match. Packing depends only on
   shape/blocks/dtype (not on blocking lists or spec), so one packed
   A/B pair serves both. nthreads:1 suffices: thread assignment cannot
   change per-block accumulation order for any reachable spec. *)
let bit_identical (base : Gemm.config) base_spec (cand : Gemm.config)
    cand_spec =
  match
    let g0 = Gemm.create base base_spec in
    let g1 = Gemm.create cand cand_spec in
    let rng = Prng.create 20260808 in
    let a =
      Tensor.init base.Gemm.dtype [| base.Gemm.m; base.Gemm.k |] (fun _ ->
          Prng.uniform rng ~scale:1.0)
    in
    let b =
      Tensor.init base.Gemm.dtype [| base.Gemm.k; base.Gemm.n |] (fun _ ->
          Prng.uniform rng ~scale:1.0)
    in
    let ap = Gemm.pack_a base a and bp = Gemm.pack_b base b in
    let c0 = Gemm.alloc_c base and c1 = Gemm.alloc_c cand in
    Gemm.run ~nthreads:1 g0 ~a:ap ~b:bp ~c:c0;
    Gemm.run ~nthreads:1 g1 ~a:ap ~b:bp ~c:c1;
    let n = Tensor.numel c0 in
    let ok = ref (Tensor.numel c1 = n) in
    let i = ref 0 in
    while !ok && !i < n do
      if
        Int64.bits_of_float (Tensor.get_flat c0 !i)
        <> Int64.bits_of_float (Tensor.get_flat c1 !i)
      then ok := false;
      incr i
    done;
    !ok
  with
  | ok -> ok
  | exception _ -> false

(* ---- background tuner ---- *)

let tune_one (t : tuning) (base : Gemm.config) spec =
  Telemetry.Counter.incr tunes_c;
  match
    Search.search ~strategy:t.strategy ~max_evals:t.max_evals
      ~platform:t.platform ~nthreads:t.nthreads base
  with
  | exception e ->
    Printf.eprintf "spec_cache: tuning failed (%s), pinning default\n%!"
      (Printexc.to_string e);
    Telemetry.Counter.incr rejected_c;
    Published (base, spec)
  | report -> (
    match report.Search.ranked with
    | [] ->
      Telemetry.Counter.incr rejected_c;
      Published (base, spec)
    | best :: _ ->
      let bcfg = best.Autotune.cfg and bspec = best.Autotune.spec in
      if bspec = spec && bcfg = base then
        (* search agrees with the default: publish it, neither a swap nor
           a rejection *)
        Published (base, spec)
      else if bit_identical base spec bcfg bspec then begin
        Telemetry.Counter.incr swaps_c;
        Published (bcfg, bspec)
      end
      else begin
        Telemetry.Counter.incr rejected_c;
        Published (base, spec)
      end)

let rec worker_loop () =
  Mutex.lock lock;
  while Queue.is_empty queue && not !stop do
    Condition.wait cond lock
  done;
  if !stop then Mutex.unlock lock
  else begin
    let key, base, spec = Queue.pop queue in
    busy := true;
    let t = Option.get !tuning in
    Mutex.unlock lock;
    let result = tune_one t base spec in
    Mutex.lock lock;
    Hashtbl.replace table key result;
    busy := false;
    Condition.broadcast cond;
    Mutex.unlock lock;
    worker_loop ()
  end

(* ---- the resolver (serve path, any domain) ---- *)

let resolve cfg spec =
  let key = key_of cfg spec in
  Mutex.lock lock;
  let r =
    match Hashtbl.find_opt table key with
    | Some (Published (c, s)) ->
      Telemetry.Counter.incr hits_c;
      Some (c, s)
    | Some Pending ->
      Telemetry.Counter.incr misses_c;
      None
    | None ->
      Telemetry.Counter.incr misses_c;
      Hashtbl.replace table key Pending;
      Queue.push (key, cfg, spec) queue;
      Condition.broadcast cond;
      None
  in
  Mutex.unlock lock;
  r

(* ---- lifecycle ---- *)

let enabled_flag = ref false
let enabled () = !enabled_flag

let disable () =
  if !enabled_flag then begin
    Gemm.clear_spec_resolver ();
    Mutex.lock lock;
    stop := true;
    Condition.broadcast cond;
    Mutex.unlock lock;
    (match !worker with Some d -> Domain.join d | None -> ());
    worker := None;
    Mutex.lock lock;
    Queue.clear queue;
    Hashtbl.reset table;
    busy := false;
    tuning := None;
    Mutex.unlock lock;
    enabled_flag := false
  end

let enable ?(strategy = Search.default_strategy) ?(max_evals = 64)
    ?(platform = Platform.host) ~nthreads () =
  disable ();
  Mutex.lock lock;
  stop := false;
  tuning := Some { platform; nthreads; strategy; max_evals };
  Mutex.unlock lock;
  worker := Some (Domain.spawn worker_loop);
  Gemm.set_spec_resolver resolve;
  enabled_flag := true

let drain ~timeout_s =
  let t0 = Telemetry.Clock.now_ns () in
  let rec wait () =
    Mutex.lock lock;
    let idle = Queue.is_empty queue && not !busy in
    Mutex.unlock lock;
    if idle then true
    else if Telemetry.Clock.elapsed_s ~since:t0 > timeout_s then false
    else begin
      Domain.cpu_relax ();
      wait ()
    end
  in
  wait ()

type entry = { shape : string; state : string; spec : string }

let entries () =
  Mutex.lock lock;
  let l =
    Hashtbl.fold
      (fun shape st acc ->
        let state, spec =
          match st with
          | Pending -> ("pending", "")
          | Published (_, s) -> ("published", s)
        in
        { shape; state; spec } :: acc)
      table []
  in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.shape b.shape) l

type stats = {
  hits : int;
  misses : int;
  swaps : int;
  rejected : int;
  tunes : int;
}

let stats () =
  {
    hits = Telemetry.Counter.get hits_c;
    misses = Telemetry.Counter.get misses_c;
    swaps = Telemetry.Counter.get swaps_c;
    rejected = Telemetry.Counter.get rejected_c;
    tunes = Telemetry.Counter.get tunes_c;
  }

(** Off-line auto-tuning of PARLOOPER GEMMs (§II-D / Fig. 1-Box B2).

    Candidates from {!Spec_gen} are evaluated either by actually running
    the kernel (measured objective) or through the §II-E performance model
    (modeled objective, enabling cross-architecture tuning without the
    target machine). Zero lines of user kernel code change between
    candidates — only the [loop_spec_string] and blocking lists vary. *)

type objective =
  | Measured of { nthreads : int; repeats : int }
  | Modeled of { platform : Platform.t; nthreads : int }

type entry = {
  spec : string;
  cfg : Gemm.config;
  gflops : float;
  predicted_gflops : float option;
      (** §II-E model score for this candidate, when [model_platform] was
          given alongside a measured objective *)
}

type report = {
  ranked : entry list;  (** best first *)
  evaluated : int;
  skipped : int;
      (** candidates dropped from the ranking: spec failed to compile for
          this shape, or its measurement raised {!Measurement_error} *)
  tuning_seconds : float;
}

(** Instantiate [base] with a candidate's blocking step lists (its
    m/n/k/block sizes and dtype are kept). Shared with {!Search} so both
    tuners derive configs the same way. *)
val candidate_config : Gemm.config -> Spec_gen.candidate -> Gemm.config

(** GEMM constraints derived from a config's trips/steps (§II-D stock
    search space). *)
val default_constraints : Gemm.config -> Spec_gen.constraints

exception Measurement_error of { spec : string; reason : string }
(** Raised by {!measure_gemm} when the timed region measures a
    non-positive interval — instead of silently reporting 0 GFLOPS. The
    payload names the spec string being measured so a failing candidate is
    attributable; {!tune_gemm} catches it per candidate and counts the
    skip in the report instead of aborting the sweep. *)

(** [tune_gemm ?max_candidates objective base] sweeps instantiations of the
    GEMM described by [base] (its m/n/k/block sizes and dtype are kept; its
    blocking lists are replaced per candidate).

    With a [Measured] objective, pass [model_platform] (a model of the
    machine the measurement runs on) to also score every candidate with the
    §II-E performance model: each entry then carries [predicted_gflops] and
    a predicted-vs-measured record is deposited in [Telemetry.Registry], so
    model error is visible in telemetry reports. *)
val tune_gemm :
  ?max_candidates:int -> ?constraints:Spec_gen.constraints ->
  ?model_platform:Platform.t -> objective -> Gemm.config -> report

(** Measured GFLOPS of a single (config, spec) point (used by benches).
    Timed with the monotonic [Telemetry.Clock]. *)
val measure_gemm : nthreads:int -> repeats:int -> Gemm.config -> string -> float

(** Online per-shape spec cache for the serve path.

    {!enable} installs a {!Gemm.set_spec_resolver} hook and spawns one
    background tuning domain. Serve-path layers that compile their GEMMs
    through [Gemm.create_resolved] then behave as follows, with zero
    layer-code changes:

    - first arrival of a shape: the caller's default instantiation is
      served unchanged and the shape is queued for background tuning
      ([tuner.cache.misses]);
    - the background domain runs the model-guided {!Search} over the
      shape and probes the winning candidate for bit-identity against
      the default spec on deterministic inputs; on success the tuned
      (config, spec) is published ([tuner.cache.swaps]), on failure the
      default is published instead, pinning the shape
      ([tuner.cache.rejected]);
    - subsequent arrivals resolve to the published instantiation
      ([tuner.cache.hits]) — the next nest compile hot-swaps to it.

    Decode outputs are bit-identical to an untuned run by construction
    (every reachable spec keeps the per-C-block K accumulation order)
    and by the probe (verified end-to-end before any swap).

    All entry points are thread- and domain-safe. *)

(** Enable online tuning: install the resolver and start the background
    tuning domain. [nthreads] is the thread count candidates are modeled
    at (pass the serve worker count); [max_evals] bounds model scorings
    per shape (keep small — tuning shares the machine with serving).
    Re-enabling restarts with a fresh cache. *)
val enable :
  ?strategy:Search.strategy ->
  ?max_evals:int ->
  ?platform:Platform.t ->
  nthreads:int ->
  unit ->
  unit

(** Uninstall the resolver, stop the background domain (joining it) and
    drop all published entries and queued work. No-op when disabled. *)
val disable : unit -> unit

val enabled : unit -> bool

(** Block until the tuning queue is empty and the worker idle, or
    [timeout_s] elapses; returns whether it drained. For tests and
    smoke runs that need deterministic swap points. *)
val drain : timeout_s:float -> bool

type entry = {
  shape : string;  (** cache key: shape/blocks/dtype/k_step/spec *)
  state : string;  (** "pending" or "published" *)
  spec : string;  (** published spec; "" while pending *)
}

(** Current cache contents, sorted by shape key. *)
val entries : unit -> entry list

type stats = {
  hits : int;
  misses : int;
  swaps : int;
  rejected : int;
  tunes : int;
}

(** The [tuner.cache.*] counter values. *)
val stats : unit -> stats

(** Model-guided [loop_spec_string] search (LoopTune / LoopStack style,
    replacing §II-D exhaustive enumeration for large spaces).

    The search walks the candidate space through typed mutations of a
    structured spec — reordering non-reduction loop occurrences,
    re-factoring blocking chains via {!Factorize}, reassigning the
    parallel (capitalized) run — scoring every candidate with the §II-E
    performance model ({!Gemm_trace.score}) and promoting only the top-k
    survivors to real measurement ({!Autotune.measure_gemm}).

    All mutations preserve the relative order of reduction-loop
    occurrences and never capitalize the reduction loop, so every visited
    spec accumulates C blocks in the same increasing-k order — the
    bit-identity precondition {!Spec_cache} relies on. Given the same
    seed, strategy and constraints, the ranked result is deterministic. *)

type strategy =
  | Beam of { width : int; depth : int }
      (** keep the [width] best states, expand all, repeat [depth] times *)
  | Greedy of { max_steps : int }
      (** hill-climb from the default spec; stop at a local optimum *)
  | Bandit of { epsilon : float; rounds : int }
      (** epsilon-greedy arm selection over discovered states, seeded *)

val default_strategy : strategy
val strategy_name : strategy -> string

(** Parse "beam" | "greedy" | "bandit" (CLI flag values) into a strategy
    with stock parameters. *)
val strategy_of_string : string -> strategy option

(** Telemetry for one expansion step of the search. *)
type step_stat = {
  step : int;
  generated : int;  (** neighbors proposed this step *)
  pruned : int;  (** duplicates, illegal or over-budget candidates *)
  scored : int;  (** model evaluations this step *)
  best_gflops : float;  (** best modeled GFLOPS after this step *)
}

type report = {
  ranked : Autotune.entry list;
      (** best first; measured entries (carrying [predicted_gflops]) lead
          when [measure_top] > 0, modeled-only entries follow *)
  evaluated : int;  (** distinct candidates model-scored *)
  measured : int;  (** candidates promoted to real measurement *)
  space : int;
      (** exhaustive §II-D candidate-space size under the same
          constraints, for "<10% of the space evaluated" assertions *)
  steps : step_stat list;  (** chronological per-step telemetry *)
  rank_correlation : float option;
      (** Spearman rho between model and measured ranks over the refined
          top-k (requires at least 2 successful measurements) *)
  tuning_seconds : float;
}

(** The typed mutation set, exported for the legality tests: every
    returned candidate parses, compiles for the shape it was derived
    from, and keeps the reduction loop serial and in-order. Candidates
    whose spec carries annotations beyond plain letters are not
    mutable ([]). *)
val neighbors :
  Spec_gen.constraints -> Spec_gen.candidate -> Spec_gen.candidate list

(** [search ~platform ~nthreads base] explores spec instantiations of the
    GEMM described by [base] (blocking lists replaced per candidate, like
    {!Autotune.tune_gemm}) under [strategy], scoring at most [max_evals]
    candidates with the §II-E model for [platform] at [nthreads].

    [measure_top] > 0 re-ranks that many model-best survivors by real
    measurement ([measure_repeats] runs at [measure_nthreads], default
    [nthreads]) and deposits predicted-vs-measured records in
    [Telemetry.Registry]. [seed] only affects the [Bandit] strategy.
    Search progress bumps the [tuner.search.*] counters. *)
val search :
  ?strategy:strategy ->
  ?max_evals:int ->
  ?measure_top:int ->
  ?measure_repeats:int ->
  ?measure_nthreads:int ->
  ?seed:int ->
  ?constraints:Spec_gen.constraints ->
  platform:Platform.t ->
  nthreads:int ->
  Gemm.config ->
  report

type access = {
  tensor : int;
  block : int;
  bytes : int;
  occupancy : int;
}

let access ?occupancy ~tensor ~block ~bytes () =
  let occupancy = match occupancy with Some o -> o | None -> bytes in
  { tensor; block; bytes; occupancy }

type work = {
  flops : float;
  chain : int;
  accesses : access list;
  store_bytes : int;
  overhead_cycles : float;
  working_set_bytes : int;
}

let work ?(overhead_cycles = 0.0) ?(working_set_bytes = 0) ~flops ~chain
    ~accesses ~store_bytes () =
  { flops; chain; accesses; store_bytes; overhead_cycles; working_set_bytes }

type result = {
  time_s : float;
  gflops : float;
  max_thread_cycles : float;
  mem_read_bytes : float;
  total_flops : float;
  level_hits : int array;
  mem_accesses : int;
  compute_bound_fraction : float;
}

(* slice key: tensor id in the top bits *)
let key_of a = (a.tensor * 0x40000000) + a.block

type thread_sim = {
  l1_bytes : int;
  levels : Lru.t array;
  bandwidths : float array;  (** bytes/cycle per level *)
  latencies : float array;  (** cycles per slice access per level *)
  mem_bw_cycles : float;  (** bytes/cycle/core from DRAM *)
  peak_flops_per_cycle : float;
  isa : Isa.t option;
  mutable cycles : float;
  mutable mem_bytes : float;
  hits : int array;  (* per level; elements bumped in place *)
  mutable mem_accesses : int;
  mutable compute_bound : int;
  mutable invocations : int;
}

let make_thread_sim (platform : Platform.t) dtype ~nthreads =
  let isa = Platform.contraction_isa platform dtype in
  let isa =
    match isa with
    | Some _ -> isa
    | None -> Platform.contraction_isa platform Datatype.F32
  in
  let freq =
    (* fastest group clock *)
    Array.fold_left
      (fun m (g : Platform.core_group) -> Float.max m g.freq_ghz)
      0.0 platform.core_groups
  in
  let peak =
    Platform.core_peak_gflops platform dtype /. freq
    (* flops per cycle per core *)
  in
  let peak =
    if peak > 0.0 then peak
    else Platform.core_peak_gflops platform Datatype.F32 /. freq
  in
  let active = max 1 (min nthreads (Platform.cores platform)) in
  let mem_bw_cycles =
    platform.mem_bw_gbs /. float_of_int active /. freq
  in
  {
    l1_bytes = platform.caches.(0).Platform.size_bytes;
    levels =
      Array.map
        (fun (c : Platform.cache_level) ->
          Lru.create ~capacity_bytes:c.size_bytes)
        platform.caches;
    bandwidths =
      Array.map
        (fun (c : Platform.cache_level) -> c.bw_bytes_per_cycle)
        platform.caches;
    latencies =
      Array.map
        (fun (c : Platform.cache_level) -> c.latency_cycles)
        platform.caches;
    mem_bw_cycles;
    peak_flops_per_cycle = peak;
    isa;
    cycles = 0.0;
    mem_bytes = 0.0;
    hits = Array.make (Array.length platform.caches) 0;
    mem_accesses = 0;
    compute_bound = 0;
    invocations = 0;
  }

let run_work sim w =
  let eff =
    match sim.isa with
    | Some isa -> Isa.chain_efficiency isa ~chain:w.chain
    | None -> 1.0
  in
  (* an L1-spilling microkernel working set throttles the pipeline *)
  let l1_penalty =
    if float_of_int w.working_set_bytes > 0.55 *. float_of_int sim.l1_bytes
    then 0.7
    else 1.0
  in
  let compute =
    w.flops /. Float.max 1e-9 (sim.peak_flops_per_cycle *. eff *. l1_penalty)
  in
  let nlevels = Array.length sim.levels in
  let transfer = ref 0.0 in
  List.iter
    (fun a ->
      (* find the innermost level holding the slice *)
      let level = ref (-1) in
      (try
         for l = 0 to nlevels - 1 do
           if Lru.mem sim.levels.(l) (key_of a) then begin
             level := l;
             raise Exit
           end
         done
       with Exit -> ());
      (* hardware prefetchers stream the body of a slice at bandwidth;
         latency is paid once on the leading miss *)
      (if !level >= 0 then begin
         sim.hits.(!level) <- sim.hits.(!level) + 1;
         transfer :=
           !transfer
           +. (float_of_int a.bytes /. sim.bandwidths.(!level))
           +. sim.latencies.(!level)
       end
       else begin
         sim.mem_accesses <- sim.mem_accesses + 1;
         sim.mem_bytes <- sim.mem_bytes +. float_of_int a.bytes;
         transfer :=
           !transfer
           +. (float_of_int a.bytes /. sim.mem_bw_cycles)
           +. Platform.mem_latency_cycles
       end);
      (* inclusive insertion into every level *)
      for l = 0 to nlevels - 1 do
        Lru.touch sim.levels.(l) (key_of a) ~bytes:a.occupancy
      done)
    w.accesses;
  (* stores stream out at the L1 write bandwidth; also count DRAM
     write-back pressure at half weight *)
  let store = float_of_int w.store_bytes /. sim.bandwidths.(0) in
  let total_transfer = !transfer +. store in
  sim.invocations <- sim.invocations + 1;
  if compute >= total_transfer then sim.compute_bound <- sim.compute_bound + 1;
  sim.cycles <-
    sim.cycles +. Float.max compute total_transfer +. w.overhead_cycles

let simulate ?representative ~(platform : Platform.t) ~dtype ~nthreads ~traces
    () =
  let nthreads_actual = Array.length traces in
  let to_sim =
    match representative with
    | Some r -> min r nthreads_actual
    | None -> nthreads_actual
  in
  let freq =
    Array.fold_left
      (fun m (g : Platform.core_group) -> Float.max m g.freq_ghz)
      0.0 platform.core_groups
  in
  let max_cycles = ref 0.0 in
  let mem_bytes = ref 0.0 in
  let flops = ref 0.0 in
  let hits = Array.make (Array.length platform.caches) 0 in
  let mem_accesses = ref 0 in
  let compute_bound = ref 0 in
  let invocations = ref 0 in
  for t = 0 to to_sim - 1 do
    let sim = make_thread_sim platform dtype ~nthreads in
    List.iter (fun w -> run_work sim w) traces.(t);
    if sim.cycles > !max_cycles then max_cycles := sim.cycles;
    mem_bytes := !mem_bytes +. sim.mem_bytes;
    Array.iteri (fun l h -> hits.(l) <- hits.(l) + h) sim.hits;
    mem_accesses := !mem_accesses + sim.mem_accesses;
    compute_bound := !compute_bound + sim.compute_bound;
    invocations := !invocations + sim.invocations
  done;
  (* account flops over ALL traces (cheap), and extrapolate the memory
     traffic of unsimulated threads from the simulated average *)
  Array.iter
    (fun tr -> List.iter (fun w -> flops := !flops +. w.flops) tr)
    traces;
  let scale =
    if to_sim = 0 then 0.0
    else float_of_int nthreads_actual /. float_of_int to_sim
  in
  let mem_bytes_total = !mem_bytes *. scale in
  let t_compute = !max_cycles /. (freq *. 1e9) in
  let t_mem = mem_bytes_total /. (platform.mem_bw_gbs *. 1e9) in
  let time_s = Float.max t_compute t_mem in
  {
    time_s;
    gflops = (if time_s > 0.0 then !flops /. time_s /. 1e9 else 0.0);
    max_thread_cycles = !max_cycles;
    mem_read_bytes = mem_bytes_total;
    total_flops = !flops;
    level_hits = hits;
    mem_accesses = !mem_accesses;
    compute_bound_fraction =
      (if !invocations = 0 then 0.0
       else float_of_int !compute_bound /. float_of_int !invocations);
  }

let trace_loop loop ~nthreads ~body =
  let n = Threaded_loop.threads_used ~nthreads loop in
  let acc = Array.make n [] in
  Threaded_loop.run_traced ~nthreads loop (fun ~tid ind ->
      acc.(tid) <- body ind :: acc.(tid));
  Array.map List.rev acc

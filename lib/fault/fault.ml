(* Seeded, deterministic fault injection.

   Code under test registers *injection sites* by name ([site "serve.decode"])
   and calls [fire] on the hot path.  With no plan installed, [fire] is a
   single load of an immutable [None] plus an atomic bump — effectively free.
   Installing a {!plan} arms a subset of the sites: each site keeps a global
   invocation counter, and a rule's {!trigger} decides, purely from that
   counter (and the plan seed for probabilistic triggers), on which
   invocations the fault fires.  Determinism is the whole point: the same
   plan + seed against the same program produces the same fault schedule,
   which is what lets the chaos harness assert bit-identical recovery.

   Fault kinds:
   - [Exn]     raise {!Injected} out of the site;
   - [Stall s] sleep [s] seconds at the site (exercises watchdogs);
   - [Nan]     ask the caller to poison its output ([fire] returns [`Nan]);
   - [Deny]    ask the caller to refuse the resource ([fire] returns [`Deny]).

   Plan grammar (see {!plan_of_string}):
     plan    := rule (';' rule)*
     rule    := site ':' kind ['@' trigger]
     kind    := 'exn' | 'nan' | 'deny' | 'stall' [ '(' float-ms ')' ]
     trigger := 'n' INT ['+' INT]   -- fire on invocation INT (1-based),
                                       then every +INT thereafter
              | 'p' FLOAT           -- seeded Bernoulli per invocation
   Default trigger is [n1]; default stall duration is 20 ms.
   Example: "serve.decode:exn@n3+11;serve.kv.acquire:deny@p0.25" *)

type kind =
  | Exn
  | Stall of float  (* seconds *)
  | Nan
  | Deny

type trigger =
  | Nth of { first : int; period : int option }  (* 1-based *)
  | Prob of float

type rule = { rsite : string; rkind : kind; rtrigger : trigger }

type plan = { seed : int; rules : rule list }

exception Injected of { site : string; invocation : int }

let () =
  Printexc.register_printer (function
    | Injected { site; invocation } ->
      Some
        (Printf.sprintf "Fault.Injected(site=%s, invocation=%d)" site
           invocation)
    | _ -> None)

type site = {
  sname : string;
  shash : int64;
  slabel : int;  (* flight-recorder label, interned at registration *)
  invocations : int Atomic.t;
  (* rules of the installed plan that target this site; rebuilt on
     [install]/[clear] and on late registration *)
  mutable armed : rule list;
}

(* splitmix64 finalizer — cheap, well-mixed hash for Prob triggers *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let site_hash name = mix64 (Int64.of_int (Hashtbl.hash name + 0x9e3779b9))

let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()
let installed : plan option ref = ref None

let injected_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.fault_injected_name

let rules_for plan name =
  List.filter (fun r -> String.equal r.rsite name) plan.rules

let site name =
  Mutex.lock registry_lock;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
      let s =
        { sname = name; shash = site_hash name;
          slabel = Telemetry.Recorder.intern name;
          invocations = Atomic.make 0;
          armed =
            (match !installed with
            | None -> []
            | Some p -> rules_for p name) }
      in
      Hashtbl.add registry name s;
      s
  in
  Mutex.unlock registry_lock;
  s

let install plan =
  Mutex.lock registry_lock;
  installed := Some plan;
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.invocations 0;
      s.armed <- rules_for plan s.sname)
    registry;
  Mutex.unlock registry_lock

let clear () =
  Mutex.lock registry_lock;
  installed := None;
  Hashtbl.iter
    (fun _ s ->
      s.armed <- [];
      Atomic.set s.invocations 0)
    registry;
  Mutex.unlock registry_lock

let active () = !installed

let sites () =
  Mutex.lock registry_lock;
  let l =
    Hashtbl.fold
      (fun name s acc -> (name, Atomic.get s.invocations) :: acc)
      registry []
  in
  Mutex.unlock registry_lock;
  List.sort compare l

(* map a (seed, site, invocation) triple to a uniform float in [0, 1) *)
let draw ~seed ~shash ~invocation =
  let h =
    mix64
      (Int64.logxor shash
         (Int64.of_int ((seed * 1_000_003) + (invocation * 2_654_435))))
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let matches ~seed ~shash ~invocation = function
  | Nth { first; period } -> (
    invocation = first
    ||
    match period with
    | Some p -> invocation > first && (invocation - first) mod p = 0
    | None -> false)
  | Prob q -> draw ~seed ~shash ~invocation < q

let fire s =
  match !installed with
  | None -> `None
  | Some plan -> (
    let invocation = 1 + Atomic.fetch_and_add s.invocations 1 in
    match
      List.find_opt
        (fun r -> matches ~seed:plan.seed ~shash:s.shash ~invocation r.rtrigger)
        s.armed
    with
    | None -> `None
    | Some r -> (
      Telemetry.Counter.incr injected_c;
      Telemetry.Recorder.emit Telemetry.Recorder.Fault_fired ~label:s.slabel
        ~a:invocation
        ~b:(match r.rkind with Exn -> 0 | Stall _ -> 1 | Nan -> 2 | Deny -> 3);
      match r.rkind with
      | Exn -> raise (Injected { site = s.sname; invocation })
      | Stall sec ->
        Thread.delay sec;
        `None
      | Nan -> `Nan
      | Deny -> `Deny))

let with_plan plan f =
  install plan;
  Fun.protect ~finally:clear f

(* ---- plan printing / parsing ------------------------------------------ *)

let kind_to_string = function
  | Exn -> "exn"
  | Nan -> "nan"
  | Deny -> "deny"
  | Stall s -> Printf.sprintf "stall(%g)" (s *. 1e3)

let trigger_to_string = function
  | Nth { first; period = None } -> Printf.sprintf "n%d" first
  | Nth { first; period = Some p } -> Printf.sprintf "n%d+%d" first p
  | Prob q -> Printf.sprintf "p%g" q

let rule_to_string r =
  match r.rtrigger with
  | Nth { first = 1; period = None } ->
    (* the default trigger; omit so parse/print round-trips *)
    Printf.sprintf "%s:%s" r.rsite (kind_to_string r.rkind)
  | t ->
    Printf.sprintf "%s:%s@%s" r.rsite (kind_to_string r.rkind)
      (trigger_to_string t)

let plan_to_string plan =
  String.concat ";" (List.map rule_to_string plan.rules)

let parse_kind s =
  match s with
  | "exn" -> Ok Exn
  | "nan" -> Ok Nan
  | "deny" -> Ok Deny
  | "stall" -> Ok (Stall 20e-3)
  | _ ->
    let n = String.length s in
    if n > 7 && String.sub s 0 6 = "stall(" && s.[n - 1] = ')' then
      match float_of_string_opt (String.sub s 6 (n - 7)) with
      | Some ms when ms >= 0.0 -> Ok (Stall (ms *. 1e-3))
      | _ -> Error (Printf.sprintf "bad stall duration in %S" s)
    else Error (Printf.sprintf "unknown fault kind %S" s)

let parse_trigger s =
  let n = String.length s in
  if n < 2 then Error (Printf.sprintf "bad trigger %S" s)
  else
    let body = String.sub s 1 (n - 1) in
    match s.[0] with
    | 'n' -> (
      let first, period =
        match String.index_opt body '+' with
        | None -> (int_of_string_opt body, Ok None)
        | Some i -> (
          ( int_of_string_opt (String.sub body 0 i),
            match int_of_string_opt (String.sub body (i + 1) (n - 2 - i)) with
            | Some p when p > 0 -> Ok (Some p)
            | _ -> Error () ))
      in
      match (first, period) with
      | Some f, Ok p when f > 0 -> Ok (Nth { first = f; period = p })
      | _ -> Error (Printf.sprintf "bad trigger %S" s))
    | 'p' -> (
      match float_of_string_opt body with
      | Some q when q >= 0.0 && q <= 1.0 -> Ok (Prob q)
      | _ -> Error (Printf.sprintf "bad probability in trigger %S" s))
    | _ -> Error (Printf.sprintf "bad trigger %S (expected nK[+P] or pF)" s)

let parse_rule s =
  match String.index_opt s ':' with
  | None | Some 0 -> Error (Printf.sprintf "rule %S: expected site:kind[@trigger]" s)
  | Some i -> (
    let site = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let kind_s, trig_s =
      match String.rindex_opt rest '@' with
      | None -> (rest, None)
      | Some j ->
        ( String.sub rest 0 j,
          Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
    in
    match parse_kind kind_s with
    | Error e -> Error (Printf.sprintf "rule %S: %s" s e)
    | Ok k -> (
      match trig_s with
      | None -> Ok { rsite = site; rkind = k; rtrigger = Nth { first = 1; period = None } }
      | Some ts -> (
        match parse_trigger ts with
        | Error e -> Error (Printf.sprintf "rule %S: %s" s e)
        | Ok t -> Ok { rsite = site; rkind = k; rtrigger = t })))

let plan_of_string ?(seed = 0) s =
  let parts =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go acc = function
    | [] -> Ok { seed; rules = List.rev acc }
    | p :: rest -> (
      match parse_rule p with
      | Ok r -> go (r :: acc) rest
      | Error e -> Error e)
  in
  if parts = [] then Error "empty fault plan (expected rule[;rule...])"
  else go [] parts

module View = Tensor.View

type b_layout = Flat | Vnni

type config = {
  m : int;
  n : int;
  k : int;
  dtype : Datatype.t;
  b_layout : b_layout;
  beta : float;
}

let make_config ?(dtype = Datatype.F32) ?(b_layout = Flat) ?(beta = 1.0) ~m ~n
    ~k () =
  assert (m > 0 && n > 0 && k > 0);
  assert (beta = 0.0 || beta = 1.0);
  (match b_layout with
  | Vnni -> assert (k mod Datatype.vnni_factor dtype = 0)
  | Flat -> ());
  { m; n; k; dtype; b_layout; beta }

let config_to_string c =
  Printf.sprintf "brgemm_%dx%dx%d_%s_%s_beta%g" c.m c.n c.k
    (Datatype.to_string c.dtype)
    (match c.b_layout with Flat -> "flat" | Vnni -> "vnni")
    c.beta

(* Kernels are stateless (safe to share across threads from the dispatch
   cache); the FP32 accumulator — the emulated tile-register file — is
   leased from the calling thread's scratch arena per invocation, so
   after warm-up the hot path allocates nothing. [rlabel] is the kernel's
   flight-recorder label, interned once at compile so the begin/end
   events in the exec paths stay allocation-free. *)
type kernel = { cfg : config; rlabel : int }

let compile cfg =
  { cfg; rlabel = Telemetry.Recorder.intern (config_to_string cfg) }

let config_of k = k.cfg

let load_acc ker acc (c : View.t) =
  let { m; n; beta; _ } = ker.cfg in
  if beta = 0.0 then Array.fill acc 0 (m * n) 0.0
  else begin
    let cdata = c.View.data and cld = c.View.ld in
    for i = 0 to m - 1 do
      let crow = c.View.off + (i * cld) and arow = i * n in
      for j = 0 to n - 1 do
        Array.unsafe_set acc (arow + j)
          (Bigarray.Array1.unsafe_get cdata (crow + j))
      done
    done
  end

(* the store quantizes to C's dtype; the dtype dispatch is hoisted out of
   the loop so the F32 path stays free of boxing *)
let store_acc ker acc (c : View.t) =
  let { m; n; _ } = ker.cfg in
  let cdata = c.View.data and cld = c.View.ld in
  match c.View.dtype with
  | Datatype.F32 ->
    for i = 0 to m - 1 do
      let crow = c.View.off + (i * cld) and arow = i * n in
      for j = 0 to n - 1 do
        Bigarray.Array1.unsafe_set cdata (crow + j)
          (Array.unsafe_get acc (arow + j))
      done
    done
  | _ ->
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        View.set c i j acc.((i * n) + j)
      done
    done

(* One batch step: acc += A x B with A at element offset [oa] from [a]'s
   origin and B at [ob] from [b]'s. The i-k-j loop order walks both B and
   the accumulator row-contiguously (the emulated register-blocked
   microkernel). *)
let accumulate ker acc (a : View.t) (b : View.t) oa ob =
  let { m; n; k; b_layout; dtype; _ } = ker.cfg in
  let adata = a.View.data and bdata = b.View.data in
  let abase = a.View.off + oa and bbase = b.View.off + ob in
  let alda = a.View.ld and bldb = b.View.ld in
  match b_layout with
  | Flat ->
    for i = 0 to m - 1 do
      let arow = abase + (i * alda) in
      let crow = i * n in
      for p = 0 to k - 1 do
        let av = Bigarray.Array1.unsafe_get adata (arow + p) in
        if av <> 0.0 then begin
          let brow = bbase + (p * bldb) in
          for j = 0 to n - 1 do
            Array.unsafe_set acc (crow + j)
              (Array.unsafe_get acc (crow + j)
              +. (av *. Bigarray.Array1.unsafe_get bdata (brow + j)))
          done
        end
      done
    done
  | Vnni ->
    (* B stored as [k/v] rows of [n*v] elements: element (p, j) lives at
       row (p/v), column j*v + p mod v. *)
    let v = Datatype.vnni_factor dtype in
    for i = 0 to m - 1 do
      let arow = abase + (i * alda) in
      let crow = i * n in
      for p = 0 to k - 1 do
        let av = Bigarray.Array1.unsafe_get adata (arow + p) in
        if av <> 0.0 then begin
          let brow = bbase + (p / v * bldb) + (p mod v) in
          for j = 0 to n - 1 do
            Array.unsafe_set acc (crow + j)
              (Array.unsafe_get acc (crow + j)
              +. (av *. Bigarray.Array1.unsafe_get bdata (brow + (j * v))))
          done
        end
      done
    done

(* NaN-poison fault site: a fired [`Nan] corrupts c(0,0) after the store,
   modelling a defective kernel. Poison lands at flattened index 0 so
   even a [Sampled _] guard (which always probes index 0) detects it. *)
let poison_site = Fault.site "tpp.brgemm.store"

(* post-store guard: runs inside the accumulator's protected region so a
   raised Numeric_error still releases the lease *)
let guard ker (c : View.t) =
  (match Fault.fire poison_site with
  | `Nan -> View.set c 0 0 Float.nan
  | `None | `Deny -> ());
  if Tpp_check.mode () <> Tpp_check.Off then
    Tpp_check.finite_2d ~kernel:(config_to_string ker.cfg) c

let check_views ker ~(a : View.t) ~(b : View.t) ~(c : View.t) =
  let { m; n; k; b_layout; dtype; _ } = ker.cfg in
  assert (a.View.rows >= m && a.View.cols >= k);
  (match b_layout with
  | Flat -> assert (b.View.rows >= k && b.View.cols >= n)
  | Vnni ->
    let v = Datatype.vnni_factor dtype in
    assert (b.View.rows >= k / v && b.View.cols >= n * v));
  assert (c.View.rows >= m && c.View.cols >= n)

let exec_stride ker ~a ~b ~c ~stride_a ~stride_b ~count =
  check_views ker ~a ~b ~c;
  Telemetry.Recorder.emit Telemetry.Recorder.Kernel_begin ~label:ker.rlabel
    ~a:count ~b:0;
  let ar = Scratch.arena () in
  let acc = Scratch.lease ar (ker.cfg.m * ker.cfg.n) in
  (* try/with (not Fun.protect) keeps the no-exception path allocation-free *)
  (try
     load_acc ker acc c;
     for i = 0 to count - 1 do
       accumulate ker acc a b (i * stride_a) (i * stride_b)
     done;
     store_acc ker acc c;
     guard ker c
   with e ->
     Scratch.release ar acc;
     Telemetry.Recorder.emit Telemetry.Recorder.Kernel_end ~label:ker.rlabel
       ~a:count ~b:1;
     raise e);
  Scratch.release ar acc;
  Telemetry.Recorder.emit Telemetry.Recorder.Kernel_end ~label:ker.rlabel
    ~a:count ~b:0

let exec_offsets ker ~a ~b ~c ~offs_a ~offs_b =
  assert (Array.length offs_a = Array.length offs_b);
  check_views ker ~a ~b ~c;
  Telemetry.Recorder.emit Telemetry.Recorder.Kernel_begin ~label:ker.rlabel
    ~a:(Array.length offs_a) ~b:0;
  let ar = Scratch.arena () in
  let acc = Scratch.lease ar (ker.cfg.m * ker.cfg.n) in
  (try
     load_acc ker acc c;
     for i = 0 to Array.length offs_a - 1 do
       accumulate ker acc a b offs_a.(i) offs_b.(i)
     done;
     store_acc ker acc c;
     guard ker c
   with e ->
     Scratch.release ar acc;
     Telemetry.Recorder.emit Telemetry.Recorder.Kernel_end ~label:ker.rlabel
       ~a:(Array.length offs_a) ~b:1;
     raise e);
  Scratch.release ar acc;
  Telemetry.Recorder.emit Telemetry.Recorder.Kernel_end ~label:ker.rlabel
    ~a:(Array.length offs_a) ~b:0

let exec_list ker ~ab ~c =
  match ab with
  | [] ->
    (* empty batch: the contraction contributes nothing, so beta = 0 just
       means "zero the C block" — no accumulator round trip *)
    if ker.cfg.beta = 0.0 then
      let { m; n; _ } = ker.cfg in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          View.set c i j 0.0
        done
      done
  | (a0, b0) :: _ ->
    check_views ker ~a:a0 ~b:b0 ~c;
    Telemetry.Recorder.emit Telemetry.Recorder.Kernel_begin ~label:ker.rlabel
      ~a:(List.length ab) ~b:0;
    let ar = Scratch.arena () in
    let acc = Scratch.lease ar (ker.cfg.m * ker.cfg.n) in
    (try
       load_acc ker acc c;
       List.iter
         (fun ((a : View.t), (b : View.t)) ->
           (* views may come from different buffers; fold their origins in *)
           accumulate ker acc
             { a with View.off = 0 }
             { b with View.off = 0 }
             a.View.off b.View.off)
         ab;
       store_acc ker acc c;
       guard ker c
     with e ->
       Scratch.release ar acc;
       Telemetry.Recorder.emit Telemetry.Recorder.Kernel_end ~label:ker.rlabel
         ~a:(List.length ab) ~b:1;
       raise e);
    Scratch.release ar acc;
    Telemetry.Recorder.emit Telemetry.Recorder.Kernel_end ~label:ker.rlabel
      ~a:(List.length ab) ~b:0

let exec ker ~a ~b ~c = exec_stride ker ~a ~b ~c ~stride_a:0 ~stride_b:0 ~count:1

let flops cfg ~count =
  2.0 *. float_of_int cfg.m *. float_of_int cfg.n *. float_of_int cfg.k
  *. float_of_int count

module View = Tensor.View

type config = {
  n : int;
  bm : int;
  bk : int;
  dtype : Datatype.t;
  beta : float;
}

let make_config ?(dtype = Datatype.F32) ?(beta = 1.0) ~n ~bm ~bk () =
  assert (n > 0 && bm > 0 && bk > 0);
  assert (beta = 0.0 || beta = 1.0);
  { n; bm; bk; dtype; beta }

let config_to_string c =
  Printf.sprintf "bcsc_spmm_n%d_%dx%d_%s_beta%g" c.n c.bm c.bk
    (Datatype.to_string c.dtype)
    c.beta

type kernel = { cfg : config }

let compile cfg = { cfg }
let config_of k = k.cfg

let exec ker ~a ~block_row ~b ~col ~c =
  let { n; bm; bk; dtype; beta } = ker.cfg in
  assert (a.Bcsc.bm = bm && a.Bcsc.bk = bk);
  assert (c.View.rows >= bm && c.View.cols >= n);
  let v = Datatype.vnni_factor dtype in
  let ar = Scratch.arena () in
  let acc = Scratch.lease ar (bm * n) in
  if beta = 0.0 then Array.fill acc 0 (bm * n) 0.0;
  if beta <> 0.0 then
    for i = 0 to bm - 1 do
      for j = 0 to n - 1 do
        acc.((i * n) + j) <- View.get c i j
      done
    done;
  let blocks = Bcsc.row_blocks a block_row in
  Array.iter
    (fun (jb, ablk) ->
      let bdata = b.View.data in
      let bbase = b.View.off + (col * v) in
      for i = 0 to bm - 1 do
        let crow = i * n in
        for p = 0 to bk - 1 do
          let av = View.get ablk i p in
          if av <> 0.0 then begin
            (* logical K row of this element; VNNI packed row = lp/v *)
            let lp = (jb * bk) + p in
            let boff = bbase + (lp / v * b.View.ld) + (lp mod v) in
            for j = 0 to n - 1 do
              Array.unsafe_set acc (crow + j)
                (Array.unsafe_get acc (crow + j)
                +. (av *. Bigarray.Array1.unsafe_get bdata (boff + (j * v))))
            done
          end
        done
      done)
    blocks;
  for i = 0 to bm - 1 do
    for j = 0 to n - 1 do
      View.set c i j acc.((i * n) + j)
    done
  done;
  Scratch.release ar acc

let effective_flops cfg ~a ~block_row =
  let nblocks = Array.length (Bcsc.row_blocks a block_row) in
  2.0 *. float_of_int cfg.bm *. float_of_int cfg.bk *. float_of_int cfg.n
  *. float_of_int nblocks

(** TPP equations: small fused element-wise operator trees evaluated on 2D
    blocks in one pass — the mechanism behind the paper's fused
    "layernorm-equation TPPs" and bias+GELU / residual-add chains (§IV-A).

    An equation is built from argument views, constants, and the unary /
    binary TPP operators; [compile] validates it once (argument arity,
    supported operators) and returns a kernel that evaluates the whole
    tree per element without materializing intermediates. *)

type expr =
  | Arg of int  (** index into the argument array passed at exec *)
  | Const of float
  | Unary of Tpp_unary.op * expr
  | Binary of Tpp_binary.op * expr * expr

type t

exception Invalid_equation of string

(** [compile ~nargs expr] — rejects out-of-range arguments and the
    two-input unary ops (which need [Tpp_unary.exec2]). *)
val compile : nargs:int -> expr -> t

val nargs : t -> int

(** The expression tree the equation was compiled from. *)
val expr : t -> expr

(** [exec t ~args ~out] — all argument views and [out] must share the
    output's shape; [out] may alias an argument. *)
val exec : t -> args:Tensor.View.t array -> out:Tensor.View.t -> unit

(** Common fused blocks, prebuilt:
    bias+GELU: gelu(arg0 + arg1) — the Bert-Intermediate tail. *)
val bias_gelu : t

(** residual add + scale: (arg0 + arg1) * c. *)
val residual_scale : float -> t

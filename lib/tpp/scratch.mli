(** Per-thread scratch arenas for kernel accumulators.

    TPP kernels are stateless and shareable across threads, but their
    emulated tile-register file (the FP32 accumulator) needs backing
    storage per invocation. Allocating it fresh on every call puts GC
    pressure on the hottest loop in the stack; the arena instead hands
    out size-keyed reusable [float array] buffers owned by the calling
    thread, so after the first call of each shape the kernel hot path
    allocates nothing.

    Arenas are keyed by execution thread (not domain: systhreads
    multiplexed onto one domain interleave at safepoints, so a
    domain-local buffer could be leased twice concurrently). Looking up
    the calling thread's arena takes a global lock but allocates nothing;
    all lease/release traffic on the arena itself is lock-free because
    only its owner touches it. Persistent pool workers (see
    {!Team}) therefore keep their arenas warm across team dispatches.

    Lease hits/misses and bytes allocated are published on the
    [tpp.arena.*] telemetry counters. *)

type arena

(** The calling thread's arena (created on first use). *)
val arena : unit -> arena

(** [lease a n] returns a buffer of exactly [n] elements, contents
    unspecified. Must only be called on the calling thread's own arena,
    and the buffer must be {!release}d (to the same arena) before the
    thread leases more than it ever releases — unreleased buffers are not
    reused and count as leaked slots. Nested leases of the same size are
    safe: a busy slot is never handed out twice. *)
val lease : arena -> int -> float array

(** Return a leased buffer to its arena. Raises [Invalid_argument] if the
    buffer was not leased from [a]. *)
val release : arena -> float array -> unit

(** Total bytes currently held by all arenas (live buffers, leased or
    free). *)
val total_bytes : unit -> int

(** Number of slots (free + busy) across all arenas. *)
val total_slots : unit -> int

(** Number of slots currently leased out (and not yet released) across
    all arenas. Zero whenever no kernel is in flight — including after a
    worker raised out of a kernel, since the hot path releases its lease
    on the way out. *)
val busy_slots : unit -> int

(** Drop every arena and its buffers. Only safe when no kernel is in
    flight; intended for tests. Telemetry counters are not reset. *)
val reset : unit -> unit

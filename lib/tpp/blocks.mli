(** Composite TPP blocks: softmax, layernorm, batchnorm and dropout on 2D
    views. These are the fused-operator building blocks the paper composes
    after contractions (bias + dropout + residual + layernorm in
    Bert-Output, scale + softmax in attention, batchnorm after ResNet
    convolutions). *)

(** Row-wise numerically-stabilized softmax: out may alias inp. *)
val softmax_rows : inp:Tensor.View.t -> out:Tensor.View.t -> unit

(** Backward of row softmax: given saved output [y] and upstream grad [dy],
    dx := y * (dy - rowsum(dy * y)). *)
val softmax_rows_backward :
  y:Tensor.View.t -> dy:Tensor.View.t -> dx:Tensor.View.t -> unit

type layernorm_stats = { mean : float array; rstd : float array }

(** Row-wise layernorm with per-column gamma/beta ([1 x cols] views).
    Returns per-row statistics for the backward pass. Out may alias inp. *)
val layernorm_rows :
  eps:float ->
  inp:Tensor.View.t ->
  gamma:Tensor.View.t ->
  beta:Tensor.View.t ->
  out:Tensor.View.t ->
  layernorm_stats

(** Inference-path layernorm: identical numerics to {!layernorm_rows} but
    records no statistics and allocates nothing — the variant DNN forward
    passes use on the serving hot path. *)
val layernorm_rows_nostats :
  eps:float ->
  inp:Tensor.View.t ->
  gamma:Tensor.View.t ->
  beta:Tensor.View.t ->
  out:Tensor.View.t ->
  unit

(** Backward of row layernorm. [x] is the saved input. Accumulates
    dgamma/dbeta ([1 x cols] views, caller zeroes them first). *)
val layernorm_rows_backward :
  stats:layernorm_stats ->
  x:Tensor.View.t ->
  gamma:Tensor.View.t ->
  dy:Tensor.View.t ->
  dx:Tensor.View.t ->
  dgamma:Tensor.View.t ->
  dbeta:Tensor.View.t ->
  unit

(** Inverted dropout: out := inp * mask / (1-p), mask recorded as 0/1 in
    [mask]. Deterministic given [rng]. p = 0 degenerates to copy. *)
val dropout :
  rng:Prng.t ->
  p:float ->
  inp:Tensor.View.t ->
  mask:Tensor.View.t ->
  out:Tensor.View.t ->
  unit

(** Backward: dx := dy * mask / (1-p). *)
val dropout_backward :
  p:float ->
  dy:Tensor.View.t ->
  mask:Tensor.View.t ->
  dx:Tensor.View.t ->
  unit

(** Inference-mode batchnorm on a 2D view whose rows share one channel:
    out := (inp - mean) * gamma / sqrt(var+eps) + beta, scalars per call
    (convolution layers apply it per feature-map block). *)
val batchnorm_apply :
  eps:float ->
  mean:float ->
  var:float ->
  gamma:float ->
  beta:float ->
  inp:Tensor.View.t ->
  out:Tensor.View.t ->
  unit

module View = Tensor.View

type expr =
  | Arg of int
  | Const of float
  | Unary of Tpp_unary.op * expr
  | Binary of Tpp_binary.op * expr * expr

type t = { expr : expr; nargs : int; staged : float array -> float }

exception Invalid_equation of string

let rec validate nargs = function
  | Arg i ->
    if i < 0 || i >= nargs then
      raise
        (Invalid_equation
           (Printf.sprintf "argument %d out of range (nargs = %d)" i nargs))
  | Const _ -> ()
  | Unary (op, e) ->
    (match op with
    | Tpp_unary.Relu_backward | Tpp_unary.Gelu_backward ->
      raise
        (Invalid_equation
           (Tpp_unary.op_to_string op ^ " needs two inputs; not allowed"))
    | _ -> ());
    validate nargs e
  | Binary (_, a, b) ->
    validate nargs a;
    validate nargs b

let nargs t = t.nargs
let expr t = t.expr

let unary_fn op =
  match op with
  | Tpp_unary.Zero -> fun _ -> 0.0
  | Tpp_unary.Copy -> Fun.id
  | Tpp_unary.Relu -> fun x -> if x > 0.0 then x else 0.0
  | Tpp_unary.Gelu -> fun x -> 0.5 *. x *. (1.0 +. Float.erf (x /. Float.sqrt 2.0))
  | Tpp_unary.Sigmoid -> fun x -> 1.0 /. (1.0 +. exp (-.x))
  | Tpp_unary.Tanh -> tanh
  | Tpp_unary.Exp -> exp
  | Tpp_unary.Sqrt -> sqrt
  | Tpp_unary.Square -> fun x -> x *. x
  | Tpp_unary.Reciprocal -> fun x -> 1.0 /. x
  | Tpp_unary.Negate -> fun x -> -.x
  | Tpp_unary.Abs -> Float.abs
  | Tpp_unary.Scale a -> fun x -> a *. x
  | Tpp_unary.Shift a -> fun x -> a +. x
  | Tpp_unary.Relu_backward | Tpp_unary.Gelu_backward -> assert false

let binary_fn = function
  | Tpp_binary.Add -> ( +. )
  | Tpp_binary.Sub -> ( -. )
  | Tpp_binary.Mul -> ( *. )
  | Tpp_binary.Div -> ( /. )
  | Tpp_binary.Max -> Float.max
  | Tpp_binary.Min -> Float.min

(* stage the tree into a closure once, at compile time, then apply per
   element *)
let rec stage = function
  | Arg i -> fun (args : float array) -> args.(i)
  | Const c -> fun _ -> c
  | Unary (op, e) ->
    let f = unary_fn op and inner = stage e in
    fun args -> f (inner args)
  | Binary (op, a, b) ->
    let f = binary_fn op and fa = stage a and fb = stage b in
    fun args -> f (fa args) (fb args)

let compile ~nargs expr =
  if nargs < 0 then raise (Invalid_equation "negative nargs");
  validate nargs expr;
  { expr; nargs; staged = stage expr }

let exec t ~args ~out =
  if Array.length args <> t.nargs then
    raise
      (Invalid_equation
         (Printf.sprintf "expected %d arguments, got %d" t.nargs
            (Array.length args)));
  Array.iter
    (fun (a : View.t) ->
      if a.View.rows <> out.View.rows || a.View.cols <> out.View.cols then
        raise (Invalid_equation "argument/output shape mismatch"))
    args;
  let f = t.staged in
  let ar = Scratch.arena () in
  let cell = Scratch.lease ar t.nargs in
  for i = 0 to out.View.rows - 1 do
    for j = 0 to out.View.cols - 1 do
      for a = 0 to t.nargs - 1 do
        Array.unsafe_set cell a (View.get (Array.unsafe_get args a) i j)
      done;
      View.set out i j (f cell)
    done
  done;
  Scratch.release ar cell

let bias_gelu =
  compile ~nargs:2 (Unary (Tpp_unary.Gelu, Binary (Tpp_binary.Add, Arg 0, Arg 1)))

let residual_scale c =
  compile ~nargs:2
    (Binary (Tpp_binary.Mul, Binary (Tpp_binary.Add, Arg 0, Arg 1), Const c))

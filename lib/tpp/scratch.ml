let hits_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.arena_hits_name

let misses_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.arena_misses_name

let bytes_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.arena_bytes_name

type slot = { buf : float array; mutable busy : bool }

(* slots as a list: pushes allocate only on the miss path and the scan
   allocates nothing, keeping the lease hot path GC-silent *)
type arena = { mutable slots : slot list; mutable nbytes : int }

(* keyed by systhread id; the registry lock is only for table lookup —
   arena contents are owned by one thread and accessed without locks *)
let arenas : (int, arena) Hashtbl.t = Hashtbl.create 16
let arenas_lock = Mutex.create ()

let arena () =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock arenas_lock;
  let a =
    try Hashtbl.find arenas id
    with Not_found ->
      let a = { slots = []; nbytes = 0 } in
      Hashtbl.replace arenas id a;
      a
  in
  Mutex.unlock arenas_lock;
  a

let rec find_free size = function
  | [] -> raise Not_found
  | s :: tl ->
    if (not s.busy) && Array.length s.buf = size then s else find_free size tl

let lease a size =
  assert (size >= 0);
  match find_free size a.slots with
  | s ->
    s.busy <- true;
    Telemetry.Counter.incr hits_c;
    s.buf
  | exception Not_found ->
    let s = { buf = Array.make size 0.0; busy = true } in
    a.slots <- s :: a.slots;
    a.nbytes <- a.nbytes + (8 * size);
    Telemetry.Counter.incr misses_c;
    Telemetry.Counter.add bytes_c (8 * size);
    s.buf

let rec find_slot buf = function
  | [] -> raise Not_found
  | s :: tl -> if s.buf == buf then s else find_slot buf tl

let release a buf =
  match find_slot buf a.slots with
  | s -> s.busy <- false
  | exception Not_found ->
    invalid_arg "Scratch.release: buffer was not leased from this arena"

let total_bytes () =
  Mutex.lock arenas_lock;
  let n = Hashtbl.fold (fun _ a acc -> acc + a.nbytes) arenas 0 in
  Mutex.unlock arenas_lock;
  n

(* slots currently leased across all arenas — a robustness invariant:
   between kernel invocations this must be 0 even after a kernel raised
   mid-execution, or arenas leak a buffer per failure *)
let busy_slots () =
  Mutex.lock arenas_lock;
  let n =
    Hashtbl.fold
      (fun _ a acc ->
        acc + List.length (List.filter (fun s -> s.busy) a.slots))
      arenas 0
  in
  Mutex.unlock arenas_lock;
  n

let total_slots () =
  Mutex.lock arenas_lock;
  let n =
    Hashtbl.fold (fun _ a acc -> acc + List.length a.slots) arenas 0
  in
  Mutex.unlock arenas_lock;
  n

let reset () =
  Mutex.lock arenas_lock;
  Hashtbl.reset arenas;
  Mutex.unlock arenas_lock

module View = Tensor.View

let softmax_rows ~inp ~out =
  assert (inp.View.rows = out.View.rows && inp.View.cols = out.View.cols);
  for i = 0 to inp.View.rows - 1 do
    let mx = ref neg_infinity in
    for j = 0 to inp.View.cols - 1 do
      mx := Float.max !mx (View.get inp i j)
    done;
    let sum = ref 0.0 in
    for j = 0 to inp.View.cols - 1 do
      let e = exp (View.get inp i j -. !mx) in
      View.set out i j e;
      sum := !sum +. e
    done;
    let inv = 1.0 /. !sum in
    for j = 0 to inp.View.cols - 1 do
      View.set out i j (View.get out i j *. inv)
    done
  done

let softmax_rows_backward ~y ~dy ~dx =
  for i = 0 to y.View.rows - 1 do
    let dot = ref 0.0 in
    for j = 0 to y.View.cols - 1 do
      dot := !dot +. (View.get dy i j *. View.get y i j)
    done;
    for j = 0 to y.View.cols - 1 do
      View.set dx i j (View.get y i j *. (View.get dy i j -. !dot))
    done
  done

type layernorm_stats = { mean : float array; rstd : float array }

(* shared row loop; [record] receives each row's (mean, rstd) so the
   training variant can save them for backward while the inference
   variant allocates nothing *)
let layernorm_core ~eps ~inp ~gamma ~beta ~out ~record =
  let rows = inp.View.rows and cols = inp.View.cols in
  assert (gamma.View.cols = cols && beta.View.cols = cols);
  let fcols = float_of_int cols in
  for i = 0 to rows - 1 do
    let m = ref 0.0 in
    for j = 0 to cols - 1 do
      m := !m +. View.get inp i j
    done;
    let mean = !m /. fcols in
    let v = ref 0.0 in
    for j = 0 to cols - 1 do
      let d = View.get inp i j -. mean in
      v := !v +. (d *. d)
    done;
    let rstd = 1.0 /. sqrt ((!v /. fcols) +. eps) in
    record i mean rstd;
    for j = 0 to cols - 1 do
      let nx = (View.get inp i j -. mean) *. rstd in
      View.set out i j ((nx *. View.get gamma 0 j) +. View.get beta 0 j)
    done
  done

let layernorm_rows ~eps ~inp ~gamma ~beta ~out =
  let rows = inp.View.rows in
  let stats = { mean = Array.make rows 0.0; rstd = Array.make rows 0.0 } in
  layernorm_core ~eps ~inp ~gamma ~beta ~out ~record:(fun i mean rstd ->
      stats.mean.(i) <- mean;
      stats.rstd.(i) <- rstd);
  stats

let layernorm_rows_nostats ~eps ~inp ~gamma ~beta ~out =
  layernorm_core ~eps ~inp ~gamma ~beta ~out ~record:(fun _ _ _ -> ())

let layernorm_rows_backward ~stats ~x ~gamma ~dy ~dx ~dgamma ~dbeta =
  let rows = x.View.rows and cols = x.View.cols in
  let fcols = float_of_int cols in
  for i = 0 to rows - 1 do
    let mean = stats.mean.(i) and rstd = stats.rstd.(i) in
    (* two row reductions of the standard layernorm backward formula *)
    let sum_dyg = ref 0.0 and sum_dyg_nx = ref 0.0 in
    for j = 0 to cols - 1 do
      let nx = (View.get x i j -. mean) *. rstd in
      let dyg = View.get dy i j *. View.get gamma 0 j in
      sum_dyg := !sum_dyg +. dyg;
      sum_dyg_nx := !sum_dyg_nx +. (dyg *. nx)
    done;
    for j = 0 to cols - 1 do
      let nx = (View.get x i j -. mean) *. rstd in
      let dyg = View.get dy i j *. View.get gamma 0 j in
      let d =
        rstd /. fcols *. ((fcols *. dyg) -. !sum_dyg -. (nx *. !sum_dyg_nx))
      in
      View.set dx i j d;
      View.set dgamma 0 j (View.get dgamma 0 j +. (View.get dy i j *. nx));
      View.set dbeta 0 j (View.get dbeta 0 j +. View.get dy i j)
    done
  done

let dropout ~rng ~p ~inp ~mask ~out =
  assert (p >= 0.0 && p < 1.0);
  let scale = 1.0 /. (1.0 -. p) in
  for i = 0 to inp.View.rows - 1 do
    for j = 0 to inp.View.cols - 1 do
      let keep = p = 0.0 || not (Prng.bernoulli rng ~p) in
      View.set mask i j (if keep then 1.0 else 0.0);
      View.set out i j (if keep then View.get inp i j *. scale else 0.0)
    done
  done

let dropout_backward ~p ~dy ~mask ~dx =
  let scale = 1.0 /. (1.0 -. p) in
  for i = 0 to dy.View.rows - 1 do
    for j = 0 to dy.View.cols - 1 do
      View.set dx i j (View.get dy i j *. View.get mask i j *. scale)
    done
  done

let batchnorm_apply ~eps ~mean ~var ~gamma ~beta ~inp ~out =
  let scale = gamma /. sqrt (var +. eps) in
  for i = 0 to inp.View.rows - 1 do
    for j = 0 to inp.View.cols - 1 do
      View.set out i j (((View.get inp i j -. mean) *. scale) +. beta)
    done
  done

(* Opt-in numeric guard for TPP kernel output.

   A NaN/Inf produced by a kernel (bad input, a defective JITed kernel, a
   flipped bit) silently poisons everything downstream; by the time a
   serving layer notices, the token is already wrong. [finite_2d] scans a
   2-D view and turns the first non-finite element into a structured
   {!Numeric_error} naming the kernel and the offending tile coordinates,
   so the failure surfaces *at* the kernel that produced it and a serving
   retry can re-run just that step.

   The guard is off by default (the hot path pays one ref load). [Full]
   checks every element; [Sampled k] checks every k-th element of the
   row-major flattening — index 0 is always probed, so a guard-aware
   poison (or a whole-tile corruption) is still caught at 1/k the cost. *)

module View = Tensor.View

exception
  Numeric_error of { kernel : string; row : int; col : int; value : float }

let () =
  Printexc.register_printer (function
    | Numeric_error { kernel; row; col; value } ->
      Some
        (Printf.sprintf "Tpp_check.Numeric_error(kernel=%s, at=(%d,%d), v=%h)"
           kernel row col value)
    | _ -> None)

type mode = Off | Sampled of int | Full

let mode_ref = ref Off
let set_mode m = mode_ref := m
let mode () = !mode_ref

let errors_c =
  Telemetry.Counter.find_or_create Telemetry.Registry.numeric_errors_name

let check ~kernel (v : View.t) ~step =
  let total = v.View.rows * v.View.cols in
  let i = ref 0 in
  while !i < total do
    let r = !i / v.View.cols and c = !i mod v.View.cols in
    let x = View.get v r c in
    if not (Float.is_finite x) then begin
      Telemetry.Counter.incr errors_c;
      (* already off the happy path: intern + dump are affordable here *)
      Telemetry.Recorder.emit Telemetry.Recorder.Mark
        ~label:(Telemetry.Recorder.intern ("numeric_error:" ^ kernel))
        ~a:r ~b:c;
      ignore (Telemetry.Recorder.post_mortem ~reason:"tpp.numeric_error");
      raise (Numeric_error { kernel; row = r; col = c; value = x })
    end;
    i := !i + step
  done

let finite_2d ?mode ~kernel (v : View.t) =
  match (match mode with Some m -> m | None -> !mode_ref) with
  | Off -> ()
  | Full -> check ~kernel v ~step:1
  | Sampled k -> check ~kernel v ~step:(max 1 k)

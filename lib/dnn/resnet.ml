module View = Tensor.View

type conv_shape = {
  layer_id : int;
  c : int;
  k : int;
  h : int;
  w : int;
  r : int;
  s : int;
  stride : int;
  pad : int;
  repeats : int;
}

let shape layer_id (c, k, h, w, r, s, stride, pad, repeats) =
  { layer_id; c; k; h; w; r; s; stride; pad; repeats }

(* ResNet-50 v1.5 unique convolution shapes on 224x224 inputs. (h, w) are
   input spatial dims; repeats counts occurrences across the network
   (including downsample projections that share a shape). *)
let conv_shapes =
  List.mapi shape
    [
      (3, 64, 224, 224, 7, 7, 2, 3, 1);
      (* conv2_x, 56x56 *)
      (64, 64, 56, 56, 1, 1, 1, 0, 1);
      (64, 64, 56, 56, 3, 3, 1, 1, 3);
      (64, 256, 56, 56, 1, 1, 1, 0, 4);
      (256, 64, 56, 56, 1, 1, 1, 0, 2);
      (* conv3_x, 28x28 *)
      (256, 128, 56, 56, 1, 1, 1, 0, 1);
      (128, 128, 56, 56, 3, 3, 2, 1, 1);
      (256, 512, 56, 56, 1, 1, 2, 0, 1);
      (128, 512, 28, 28, 1, 1, 1, 0, 4);
      (512, 128, 28, 28, 1, 1, 1, 0, 3);
      (128, 128, 28, 28, 3, 3, 1, 1, 3);
      (* conv4_x, 14x14 *)
      (512, 256, 28, 28, 1, 1, 1, 0, 1);
      (256, 256, 28, 28, 3, 3, 2, 1, 1);
      (512, 1024, 28, 28, 1, 1, 2, 0, 1);
      (256, 1024, 14, 14, 1, 1, 1, 0, 6);
      (1024, 256, 14, 14, 1, 1, 1, 0, 5);
      (256, 256, 14, 14, 3, 3, 1, 1, 5);
      (* conv5_x, 7x7 *)
      (1024, 512, 14, 14, 1, 1, 1, 0, 1);
      (512, 512, 14, 14, 3, 3, 2, 1, 1);
      (1024, 2048, 14, 14, 1, 1, 2, 0, 1);
      (512, 2048, 7, 7, 1, 1, 1, 0, 3);
      (2048, 512, 7, 7, 1, 1, 1, 0, 2);
      (512, 512, 7, 7, 3, 3, 1, 1, 2);
    ]

let conv_shape_flops sh ~n =
  let p = ((sh.h + (2 * sh.pad) - sh.r) / sh.stride) + 1 in
  let q = ((sh.w + (2 * sh.pad) - sh.s) / sh.stride) + 1 in
  2.0 *. float_of_int n *. float_of_int sh.k *. float_of_int p
  *. float_of_int q *. float_of_int sh.c *. float_of_int sh.r
  *. float_of_int sh.s

let total_conv_flops ~n =
  List.fold_left
    (fun acc sh -> acc +. (float_of_int sh.repeats *. conv_shape_flops sh ~n))
    0.0 conv_shapes

let train_step_flops ~n = 3.0 *. total_conv_flops ~n

(* ---- executable residual CNN ---- *)

type bn = { scale : Tensor.t; shift : Tensor.t }  (* per channel, [1 x k] *)

type conv_layer = {
  conv : Conv.t;
  weights : Tensor.t;  (** blocked *)
  bn : bn;
  relu : bool;
}

type t = {
  channels : int;
  classes : int;
  stem : conv_layer;
  blocks : (conv_layer * conv_layer) array;
  fc : Fc.t;
  dtype : Datatype.t;
}

let channels t = t.channels
let classes t = t.classes
let dtype t = t.dtype

let make_bn rng k =
  {
    scale =
      Tensor.init Datatype.F32 [| 1; k |] (fun _ ->
          1.0 +. Prng.uniform rng ~scale:0.1);
    shift =
      Tensor.init Datatype.F32 [| 1; k |] (fun _ -> Prng.uniform rng ~scale:0.1);
  }

let make_conv ~rng ~dtype ~spec ~relu ~n ~c ~k ~h ~w =
  let cfg =
    Conv.make_config ~stride:1 ~pad:1 ~bc:(min 8 c) ~bk:8 ~dtype ~n ~c ~k ~h
      ~w ~r:3 ~s:3 ()
  in
  let conv = Conv.create cfg spec in
  let scale = sqrt (2.0 /. float_of_int (c * 9)) in
  let logical =
    Tensor.init dtype [| k; c; 3; 3 |] (fun _ -> Prng.uniform rng ~scale)
  in
  { conv; weights = Conv.pack_weights cfg logical; bn = make_bn rng k;
    relu }

(* fused batchnorm(+ReLU) post-op: the conv post hook hands one
   [w_step x bk] block whose columns are output channels *)
let bn_relu_post (layer : conv_layer) ~n:_ ~kb ~p:_ ~q:_ ~block =
  let bk = block.View.cols in
  let sc =
    Tensor.view_flat layer.bn.scale ~off:(kb * bk) ~rows:1 ~cols:bk ~ld:bk
  in
  let sh =
    Tensor.view_flat layer.bn.shift ~off:(kb * bk) ~rows:1 ~cols:bk ~ld:bk
  in
  Tpp_binary.exec Tpp_binary.Mul ~bcast:Tpp_binary.Row ~a:block ~b:sc ~out:block;
  Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Row ~a:block ~b:sh ~out:block;
  if layer.relu then Tpp_unary.exec Tpp_unary.Relu ~inp:block ~out:block

let create ~rng ?(dtype = Datatype.F32) ?(spec = Conv.default_spec)
    ?(classes = 16) ~channels ~blocks () =
  if channels mod 8 <> 0 then invalid_arg "Resnet.create: channels mod 8";
  (* the executable network keeps one spatial resolution; `create`'s [n],
     [h], [w] are fixed by the first forward call — use canonical 16x16 *)
  let n = 2 and h = 16 and w = 16 in
  let stem = make_conv ~rng ~dtype ~spec ~relu:true ~n ~c:3 ~k:channels ~h ~w in
  let blocks =
    Array.init blocks (fun _ ->
        ( make_conv ~rng ~dtype ~spec ~relu:true ~n ~c:channels ~k:channels ~h
            ~w,
          make_conv ~rng ~dtype ~spec ~relu:false ~n ~c:channels ~k:channels
            ~h ~w ))
  in
  let fc =
    Fc.create ~rng ~dtype ~block:8 ~in_features:channels
      ~out_features:classes ()
  in
  { channels; classes; stem; blocks; fc; dtype }

let run_conv ?nthreads t (layer : conv_layer) x =
  ignore t;
  let cfg = Conv.config layer.conv in
  let packed = Conv.pack_input cfg x in
  let out = Conv.alloc_output cfg in
  Conv.run ?nthreads ~post:(bn_relu_post layer) layer.conv ~input:packed
    ~weights:layer.weights ~output:out;
  Conv.unpack_output cfg out

let relu_inplace x =
  let v =
    Tensor.view_flat x ~off:0 ~rows:1 ~cols:(Tensor.numel x)
      ~ld:(Tensor.numel x)
  in
  Tpp_unary.exec Tpp_unary.Relu ~inp:v ~out:v

let forward ?nthreads t images =
  let x = run_conv ?nthreads t t.stem images in
  let x =
    Array.fold_left
      (fun x (c1, c2) ->
        let y = run_conv ?nthreads t c1 x in
        let y = run_conv ?nthreads t c2 y in
        (* residual add + relu *)
        let flat a =
          Tensor.view_flat a ~off:0 ~rows:1 ~cols:(Tensor.numel a)
            ~ld:(Tensor.numel a)
        in
        Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Full ~a:(flat y)
          ~b:(flat x) ~out:(flat y);
        relu_inplace y;
        y)
      x t.blocks
  in
  let pooled = Reference.global_avgpool x in
  Fc.forward ?nthreads t.fc pooled

let reference_conv t (layer : conv_layer) x =
  ignore t;
  let cfg = Conv.config layer.conv in
  let w =
    Tensor.init Datatype.F32
      [| cfg.Conv.k; cfg.Conv.c; 3; 3 |]
      (fun i ->
        Tensor.get layer.weights
          [|
            i.(0) / cfg.Conv.bk;
            i.(1) / cfg.Conv.bc;
            i.(2);
            i.(3);
            i.(1) mod cfg.Conv.bc;
            i.(0) mod cfg.Conv.bk;
          |])
  in
  let y = Reference.conv2d ~stride:1 ~pad:1 x w in
  Tensor.init Datatype.F32 (Tensor.dims y) (fun i ->
      let ch = i.(1) in
      let v =
        (Tensor.get y i *. Tensor.get layer.bn.scale [| 0; ch |])
        +. Tensor.get layer.bn.shift [| 0; ch |]
      in
      if layer.relu then Reference.relu v else v)

let reference_forward t images =
  let x = reference_conv t t.stem images in
  let x =
    Array.fold_left
      (fun x (c1, c2) ->
        let y = reference_conv t c1 x in
        let y = reference_conv t c2 y in
        Tensor.init Datatype.F32 (Tensor.dims y) (fun i ->
            Reference.relu (Tensor.get y i +. Tensor.get x i)))
      x t.blocks
  in
  let pooled = Reference.global_avgpool x in
  let fc = t.fc in
  let wt =
    Tensor.init Datatype.F32 [| fc.Fc.in_features; fc.Fc.out_features |]
      (fun i -> Tensor.get fc.Fc.weights [| i.(1); i.(0) |])
  in
  let y = Reference.matmul pooled wt in
  Tensor.init Datatype.F32 (Tensor.dims y) (fun i ->
      Tensor.get y i +. Tensor.get fc.Fc.bias [| i.(1) |])

(** Decoder-only LLM inference pipeline (§IV-A / Fig. 11): GPT-J- and
    Llama2-style transformer decoders with causal attention, a KV cache,
    and the two-phase latency structure the paper measures — a
    compute-bound {e first token} (prefill over all input tokens) and
    bandwidth-bound {e next tokens} (one token per step against the cache).

    Executable at scaled-down shapes (verified: incremental decoding with
    the cache reproduces full-sequence forward); paper-scale GPT-J-6B and
    Llama2-13B shapes feed the benchmark harness's analytic models. *)

type config = {
  name : string;
  hidden : int;
  heads : int;
  intermediate : int;
  layers : int;
  vocab : int;
  gated_ffn : bool;
      (** SwiGLU-style 3-matrix FFN (Llama2) vs 2-matrix GELU FFN (GPT-J) *)
}

val gptj_6b : config
val llama2_13b : config
val tiny : config

type t

val create :
  rng:Prng.t -> ?dtype:Datatype.t -> ?block:int -> ?spec:string -> config -> t

val config : t -> config

type kv_cache

(** Fresh empty cache. K/V are stored in capacity-backed per-layer
    buffers ([cap] initial rows, default 16) that double in place as the
    sequence grows — decode steps append without reallocating the cache. *)
val new_cache : ?cap:int -> t -> kv_cache

(** Tokens currently cached. *)
val cache_len : kv_cache -> int

(** Allocated rows per layer (>= [cache_len]; grows geometrically). *)
val cache_capacity : kv_cache -> int

(** Rewind to empty {e keeping the allocated buffers}, so the cache can be
    recycled for a new session without touching the allocator (the KV-pool
    fast path in [lib/serve]). *)
val reset_cache : kv_cache -> unit

(** [truncate_cache c len] rewinds the cache to [len] valid rows,
    discarding rows a partially-completed (failed) step appended; buffers
    and capacity are untouched, so a retried step re-appends into the
    same storage and recovery is bit-identical. *)
val truncate_cache : kv_cache -> int -> unit

(** [prefill t cache embeddings] runs the prefill phase over
    [n_in x hidden] input embeddings, fills the cache and returns the last
    hidden state [1 x hidden] ("first token" computation). *)
val prefill : ?nthreads:int -> t -> kv_cache -> Tensor.t -> Tensor.t

(** [decode_step t cache emb] appends one token ([1 x hidden]) and returns
    its output hidden state ("next token" computation). *)
val decode_step : ?nthreads:int -> t -> kv_cache -> Tensor.t -> Tensor.t

(** Full-sequence forward without a cache (reference for tests). *)
val forward_full : ?nthreads:int -> t -> Tensor.t -> Tensor.t

(** {2 Tensor-parallel (sharded) execution}

    A [tp_plan] column-splits every projection of every decoder layer
    into [shards] contiguous, block-aligned output slices (attention
    slices are additionally head-aligned). Each shard computes its output
    columns with the full input and the same k-reduction order as the
    unsharded GEMM; shards combine by concatenation (disjoint column
    writes), never by summation — so [prefill_tp]/[decode_step_tp] are
    bit-identical to {!prefill}/{!decode_step} on the same cache state.
    Shards execute as one [Team] region per dependency phase of the
    block, with inner kernels pinned to [~nthreads:1]. *)

type tp_plan

(** Build a plan or explain why the shape can't be sharded: [shards] must
    divide [heads] and [intermediate], and every per-shard slice must be
    a multiple of the layer's GEMM block. [shards = 1] always succeeds
    and degenerates to the unsharded path run inline. *)
val tp_plan : t -> shards:int -> (tp_plan, string) result

val tp_llm : tp_plan -> t
val tp_shards : tp_plan -> int

(** Sharded {!prefill}: same contract, bit-identical output. *)
val prefill_tp : tp_plan -> kv_cache -> Tensor.t -> Tensor.t

(** Sharded {!decode_step}: same contract, bit-identical output. *)
val decode_step_tp : tp_plan -> kv_cache -> Tensor.t -> Tensor.t

(** Deterministic synthetic embedding matrix for a token-id sequence. *)
val embed : t -> int array -> Tensor.t

(** FLOPs of the prefill phase for [n_in] tokens. *)
val prefill_flops : config -> n_in:int -> float

(** FLOPs of one decode step at cache length [past]. *)
val decode_flops : config -> past:int -> float

(** Total parameter bytes at a given precision (weights streamed per next
    token — the bandwidth-bound term of Fig. 11). *)
val param_bytes : config -> Datatype.t -> float

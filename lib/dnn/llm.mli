(** Decoder-only LLM inference pipeline (§IV-A / Fig. 11): GPT-J- and
    Llama2-style transformer decoders with causal attention, a KV cache,
    and the two-phase latency structure the paper measures — a
    compute-bound {e first token} (prefill over all input tokens) and
    bandwidth-bound {e next tokens} (one token per step against the cache).

    Executable at scaled-down shapes (verified: incremental decoding with
    the cache reproduces full-sequence forward); paper-scale GPT-J-6B and
    Llama2-13B shapes feed the benchmark harness's analytic models. *)

type config = {
  name : string;
  hidden : int;
  heads : int;
  intermediate : int;
  layers : int;
  vocab : int;
  gated_ffn : bool;
      (** SwiGLU-style 3-matrix FFN (Llama2) vs 2-matrix GELU FFN (GPT-J) *)
}

val gptj_6b : config
val llama2_13b : config
val tiny : config

type t

val create :
  rng:Prng.t -> ?dtype:Datatype.t -> ?block:int -> ?spec:string -> config -> t

val config : t -> config

type kv_cache

(** Fresh empty cache with {e contiguous} storage: capacity-backed
    per-layer buffers ([cap] initial rows, default 16) that double in
    place as the sequence grows — decode steps append without
    reallocating the cache. *)
val new_cache : ?cap:int -> t -> kv_cache

(** Fresh empty cache with {e paged} storage: a per-request block table
    over the given shared arena. Fixed-size token blocks are acquired on
    demand and freed by {!truncate_cache}/{!reset_cache}; gather scratch
    bridges the block table to the same dense attention kernels the
    contiguous path runs, so the two policies are bit-identical. Raises
    [Invalid_argument] when the arena's layers/hidden do not match the
    model. *)
val new_paged_cache : t -> Kv.Block_manager.t -> kv_cache

(** The block table of a paged cache ([None] for contiguous). *)
val cache_seq : kv_cache -> Kv.Seq.t option

(** [attach_prefix c ~blocks ~len] seeds an empty paged cache with shared
    prefix blocks (a prefix-trie hit) covering the first [len] prompt
    tokens; each block gains a reference, and the first append past a
    mid-block [len] copies-on-write. The suffix is then computed with
    {!extend}. *)
val attach_prefix : kv_cache -> blocks:int array -> len:int -> unit

(** Tokens currently cached. *)
val cache_len : kv_cache -> int

(** Allocated rows (contiguous: per-layer buffer capacity; paged: block
    table size in rows). *)
val cache_capacity : kv_cache -> int

(** Rewind to empty {e keeping the allocated buffers}, so the cache can be
    recycled for a new session without touching the allocator (the KV-pool
    fast path in [lib/serve]). *)
val reset_cache : kv_cache -> unit

(** [truncate_cache c len] rewinds the cache to [len] valid rows,
    discarding rows a partially-completed (failed) step appended.
    Contiguous buffers keep their capacity; a paged table frees exactly
    the tail blocks past row [len-1]. Either way a retried step
    re-appends into writable storage and recovery is bit-identical. *)
val truncate_cache : kv_cache -> int -> unit

(** Snapshot the cache's valid rows into an arena-independent dense
    {!Kv.Block_manager.export} (either storage policy). A pure read —
    the cache stays the live copy of the session's KV state. *)
val export_cache : kv_cache -> Kv.Block_manager.export

(** [import_cache c ?attach e] restores a snapshot into an {e empty}
    cache — the commit point of a live migration. Paged caches may
    [?attach] destination-trie blocks covering the first [alen]
    (block-aligned) rows as [(blocks, alen)] — bit-identical to the
    exported bytes, since every replica runs the same deterministic
    engine over the same prefix — and the remainder is imported as
    private blocks. On arena denial the destination is left untouched
    and [Kv.Seq.Out_of_blocks] raises, so the caller's snapshot remains
    the one live copy. Raises [Invalid_argument] on shape mismatch. *)
val import_cache :
  kv_cache -> ?attach:int array * int -> Kv.Block_manager.export -> unit

(** [prefill t cache embeddings] runs the prefill phase over
    [n_in x hidden] input embeddings, fills the cache and returns the last
    hidden state [1 x hidden] ("first token" computation). *)
val prefill : ?nthreads:int -> t -> kv_cache -> Tensor.t -> Tensor.t

(** [decode_step t cache emb] appends one token ([1 x hidden]) and returns
    its output hidden state ("next token" computation). *)
val decode_step : ?nthreads:int -> t -> kv_cache -> Tensor.t -> Tensor.t

(** [extend t cache embs] appends [n] token rows over an already-filled
    cache and returns all [n] output rows ([n x hidden]). Per-row outputs
    are bit-identical to feeding the same tokens one {!decode_step} at a
    time — the exactness that prefix-hit suffix prefills and speculative
    verification rely on. On an empty cache, [last_row (extend ...)] is
    {!prefill}. *)
val extend : ?nthreads:int -> t -> kv_cache -> Tensor.t -> Tensor.t

(** Copy of the last row of an [n x hidden] tensor (the "first token"
    hidden state of a prefill-shaped output). *)
val last_row : Tensor.t -> Tensor.t

(** Full-sequence forward without a cache (reference for tests). *)
val forward_full : ?nthreads:int -> t -> Tensor.t -> Tensor.t

(** [draft t ~layers] — a proposer model sharing the target's first
    [layers] decoder layers and weights (no copy; clamped to
    [1, t.layers]). The draft half of speculative decoding: cheap
    proposals whose acceptance is decided by the target's batched
    verification pass. *)
val draft : t -> layers:int -> t

(** {2 Tensor-parallel (sharded) execution}

    A [tp_plan] column-splits every projection of every decoder layer
    into [shards] contiguous, block-aligned output slices (attention
    slices are additionally head-aligned). Each shard computes its output
    columns with the full input and the same k-reduction order as the
    unsharded GEMM; shards combine by concatenation (disjoint column
    writes), never by summation — so [prefill_tp]/[decode_step_tp] are
    bit-identical to {!prefill}/{!decode_step} on the same cache state.
    Shards execute as one [Team] region per dependency phase of the
    block, with inner kernels pinned to [~nthreads:1]. *)

type tp_plan

(** Build a plan or explain why the shape can't be sharded: [shards] must
    divide [heads] and [intermediate], and every per-shard slice must be
    a multiple of the layer's GEMM block. [shards = 1] always succeeds
    and degenerates to the unsharded path run inline. *)
val tp_plan : t -> shards:int -> (tp_plan, string) result

val tp_llm : tp_plan -> t
val tp_shards : tp_plan -> int

(** Sharded {!prefill}: same contract, bit-identical output. *)
val prefill_tp : tp_plan -> kv_cache -> Tensor.t -> Tensor.t

(** Sharded {!decode_step}: same contract, bit-identical output. *)
val decode_step_tp : tp_plan -> kv_cache -> Tensor.t -> Tensor.t

(** Sharded {!extend}: same contract, bit-identical output. *)
val extend_tp : tp_plan -> kv_cache -> Tensor.t -> Tensor.t

(** Deterministic synthetic embedding matrix for a token-id sequence. *)
val embed : t -> int array -> Tensor.t

(** FLOPs of the prefill phase for [n_in] tokens. *)
val prefill_flops : config -> n_in:int -> float

(** FLOPs of one decode step at cache length [past]. *)
val decode_flops : config -> past:int -> float

(** Total parameter bytes at a given precision (weights streamed per next
    token — the bandwidth-bound term of Fig. 11). *)
val param_bytes : config -> Datatype.t -> float

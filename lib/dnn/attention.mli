(** Multi-head self-attention built from TPP blocks: blocked tensor
    contractions fused with scale, mask, softmax and dropout TPPs — the
    computational pattern of Bert-Self-Attention (§IV-A) and of the
    decoder-attention in the LLM pipelines (with a KV cache and causal
    masking). *)

type t = {
  hidden : int;
  heads : int;
  head_dim : int;
  wq : Fc.t;
  wk : Fc.t;
  wv : Fc.t;
  wo : Fc.t;
}

val create :
  rng:Prng.t ->
  ?dtype:Datatype.t ->
  ?block:int ->
  ?spec:string ->
  hidden:int ->
  heads:int ->
  unit ->
  t

(** QKV projections of [tokens x hidden] input. *)
val project : ?nthreads:int -> t -> Tensor.t -> Tensor.t * Tensor.t * Tensor.t

(** [attend ~heads ~causal q k v] — scaled-dot-product attention per head.
    [q : Nq x hidden], [k v : Nk x hidden]; returns [Nq x hidden].
    With [causal], query i attends keys j <= i + (Nk - Nq), which is the
    standard decode-with-cache alignment. *)
val attend :
  ?causal:bool -> heads:int -> Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t

(** [attend_range ~heads ~h0 ~h1 ~out q k v] — the same computation
    restricted to heads [h0, h1), writing each head's context into its
    column slice of [out] (a caller-owned [Nq x hidden] tensor; columns
    of other heads are left untouched). Head h is computed exactly as
    {!attend} computes it, so a head-partitioned (tensor-parallel) run
    that covers [0, heads) across workers is bit-identical to one
    {!attend} call. *)
val attend_range :
  ?causal:bool ->
  heads:int ->
  h0:int ->
  h1:int ->
  out:Tensor.t ->
  Tensor.t ->
  Tensor.t ->
  Tensor.t ->
  unit

(** Full block: projections, attention, output projection. *)
val forward : ?nthreads:int -> ?causal:bool -> t -> Tensor.t -> Tensor.t

(** Naive float reference of the whole block (tests). *)
val reference_forward : ?causal:bool -> t -> Tensor.t -> Tensor.t

(** Forward FLOPs for a [n]-token sequence attending [nk] keys. *)
val flops : t -> n:int -> nk:int -> float

type config = {
  name : string;
  hidden : int;
  heads : int;
  intermediate : int;
  layers : int;
  vocab : int;
  gated_ffn : bool;
}

let gptj_6b =
  { name = "GPTJ-6B"; hidden = 4096; heads = 16; intermediate = 16384;
    layers = 28; vocab = 50400; gated_ffn = false }

let llama2_13b =
  { name = "Llama2-13B"; hidden = 5120; heads = 40; intermediate = 13824;
    layers = 40; vocab = 32000; gated_ffn = true }

let tiny =
  { name = "tiny"; hidden = 32; heads = 2; intermediate = 64; layers = 2;
    vocab = 64; gated_ffn = true }

type layer = {
  attention : Attention.t;
  ffn_up : Fc.t;
  ffn_gate : Fc.t option;  (** SwiGLU gate projection *)
  ffn_down : Fc.t;
  ln1_gamma : Tensor.t;
  ln1_beta : Tensor.t;
  ln2_gamma : Tensor.t;
  ln2_beta : Tensor.t;
}

type t = { cfg : config; decoder : layer array }

let ln_params rng hidden =
  ( Tensor.init Datatype.F32 [| 1; hidden |] (fun _ ->
        1.0 +. Prng.uniform rng ~scale:0.02),
    Tensor.init Datatype.F32 [| 1; hidden |] (fun _ ->
        Prng.uniform rng ~scale:0.02) )

let create ~rng ?(dtype = Datatype.F32) ?(block = 16) ?(spec = Gemm.default_spec)
    cfg =
  let mk_layer () =
    let attention =
      Attention.create ~rng ~dtype ~block ~spec ~hidden:cfg.hidden
        ~heads:cfg.heads ()
    in
    let ffn_up =
      Fc.create ~rng ~dtype ~block ~spec
        ~act:(if cfg.gated_ffn then Fc.Linear else Fc.Gelu_act)
        ~in_features:cfg.hidden ~out_features:cfg.intermediate ()
    in
    let ffn_gate =
      if cfg.gated_ffn then
        Some
          (Fc.create ~rng ~dtype ~block ~spec ~in_features:cfg.hidden
             ~out_features:cfg.intermediate ())
      else None
    in
    let ffn_down =
      Fc.create ~rng ~dtype ~block ~spec ~in_features:cfg.intermediate
        ~out_features:cfg.hidden ()
    in
    let ln1_gamma, ln1_beta = ln_params rng cfg.hidden in
    let ln2_gamma, ln2_beta = ln_params rng cfg.hidden in
    { attention; ffn_up; ffn_gate; ffn_down; ln1_gamma; ln1_beta; ln2_gamma;
      ln2_beta }
  in
  { cfg; decoder = Array.init cfg.layers (fun _ -> mk_layer ()) }

let config t = t.cfg

(* Per-layer K/V store over capacity-backed [cap x hidden] buffers: rows
   [0, used) are valid, appends write in place, capacity doubles when
   exhausted. This keeps the decode hot loop free of the O(cache_len)
   reallocate-and-copy per layer per step that a grow-by-rebuild cache
   pays, and it makes caches recyclable: [reset_cache] rewinds [used]
   without touching the allocator, so a serving layer can hand the same
   buffers to session after session (lib/serve's KV pool). *)
type kv_entry = {
  mutable k : Tensor.t;
  mutable v : Tensor.t;
  mutable used : int;
  mutable cap : int;
}

(* Paged storage: a per-request block table over a shared arena
   (lib/kv), plus gather scratch that the attention kernels read from.
   The scratch grows geometrically and survives [reset_cache], so pooled
   paged caches stop allocating at steady state just like contiguous
   ones. One scratch pair serves all layers — layers run sequentially
   and each gathers before its attention. *)
type paged_store = {
  seq : Kv.Seq.t;
  mutable gk : Tensor.t;
  mutable gv : Tensor.t;
  mutable gcap : int;
}

(* Storage policy: [Contig] = one private capacity-doubling buffer pair
   per layer; [Paged] = fixed-size token blocks from a shared refcounted
   arena (block table per request, copy-on-write on shared tails). Both
   feed the same dense attention kernels — paged gathers valid rows into
   contiguous scratch first — so the two policies are bit-identical by
   construction (the correctness gate the kv tests pin down). *)
type kv_store = Contig of kv_entry array | Paged of paged_store

type kv_cache = { store : kv_store; mutable len : int; hidden : int }

let new_cache ?(cap = 16) t =
  let cap = max 1 cap in
  { store =
      Contig
        (Array.init t.cfg.layers (fun _ ->
             { k = Tensor.create Datatype.F32 [| cap; t.cfg.hidden |];
               v = Tensor.create Datatype.F32 [| cap; t.cfg.hidden |];
               used = 0; cap }));
    len = 0;
    hidden = t.cfg.hidden }

let new_paged_cache t mgr =
  if
    Kv.Block_manager.layers mgr <> t.cfg.layers
    || Kv.Block_manager.hidden mgr <> t.cfg.hidden
  then invalid_arg "Llm.new_paged_cache: arena shape does not match model";
  let gcap = max 1 (Kv.Block_manager.block_size mgr) in
  { store =
      Paged
        { seq = Kv.Seq.create mgr;
          gk = Tensor.create Datatype.F32 [| gcap; t.cfg.hidden |];
          gv = Tensor.create Datatype.F32 [| gcap; t.cfg.hidden |];
          gcap };
    len = 0;
    hidden = t.cfg.hidden }

let cache_len c = c.len

let cache_seq c =
  match c.store with Contig _ -> None | Paged p -> Some p.seq

let cache_capacity c =
  match c.store with
  | Contig entries -> if Array.length entries = 0 then 0 else entries.(0).cap
  | Paged p -> Kv.Seq.capacity p.seq

let reset_cache c =
  (match c.store with
  | Contig entries -> Array.iter (fun e -> e.used <- 0) entries
  | Paged p -> Kv.Seq.release_all p.seq);
  c.len <- 0

(* rewind the cache to its state at [len] valid rows, discarding any rows
   a partially-completed (failed) prefill/decode step appended. Contig
   buffers keep their capacity; a paged table frees exactly the tail
   blocks past row [len-1]. Either way a retried step re-appends into
   writable storage and recovery is bit-identical to a run that never
   failed. *)
let truncate_cache c len =
  assert (len >= 0);
  (match c.store with
  | Contig entries -> Array.iter (fun e -> e.used <- min e.used len) entries
  | Paged p -> if len < Kv.Seq.capacity p.seq then Kv.Seq.truncate p.seq ~len);
  c.len <- min c.len len

(* seed an empty paged cache with shared prefix blocks covering [len]
   prompt tokens (a prefix-trie hit); the suffix is then computed with
   [extend]. [len] may land mid-block — the first append COWs the shared
   tail. *)
let attach_prefix c ~blocks ~len =
  match c.store with
  | Contig _ -> invalid_arg "Llm.attach_prefix: contiguous cache"
  | Paged p ->
    assert (c.len = 0 && len >= 0);
    Kv.Seq.attach p.seq ~blocks;
    c.len <- len

(* copy the first [rows] rows of [src] into [dst] starting at [dst_row];
   both are contiguous [_ x hidden] F32 buffers *)
let copy_rows ~hidden ~rows (src : Tensor.t) (dst : Tensor.t) ~dst_row =
  Bigarray.Array1.blit
    (Bigarray.Array1.sub src.Tensor.data 0 (rows * hidden))
    (Bigarray.Array1.sub dst.Tensor.data (dst_row * hidden) (rows * hidden))

let append_rows cache (e : kv_entry) ~k_new ~v_new =
  let hidden = cache.hidden in
  let n = (Tensor.dims k_new).(0) in
  if e.used + n > e.cap then begin
    let cap = max (e.used + n) (2 * e.cap) in
    let grow old =
      let t = Tensor.create Datatype.F32 [| cap; hidden |] in
      if e.used > 0 then copy_rows ~hidden ~rows:e.used old t ~dst_row:0;
      t
    in
    e.k <- grow e.k;
    e.v <- grow e.v;
    e.cap <- cap
  end;
  copy_rows ~hidden ~rows:n k_new e.k ~dst_row:e.used;
  copy_rows ~hidden ~rows:n v_new e.v ~dst_row:e.used;
  e.used <- e.used + n

(* ---- live-migration checkpoint/restore over the dense export ----

   [export_cache] snapshots the first [len] valid rows of every layer
   into an arena-independent dense export (a pure read — the cache stays
   the live copy); [import_cache] materializes such a snapshot into an
   EMPTY cache on any replica, either storage policy. Because both
   policies feed attention dense rows in token order, a resumed decode
   over an imported cache is bit-identical to the source continuing. *)
let export_cache c =
  match c.store with
  | Paged p -> Kv.Seq.export p.seq ~rows:c.len
  | Contig entries ->
    let layers = Array.length entries in
    let dense () =
      Array.init layers (fun _ ->
          Tensor.create Datatype.F32 [| max c.len 1; c.hidden |])
    in
    let xk = dense () and xv = dense () in
    Array.iteri
      (fun l e ->
        copy_rows ~hidden:c.hidden ~rows:c.len e.k xk.(l) ~dst_row:0;
        copy_rows ~hidden:c.hidden ~rows:c.len e.v xv.(l) ~dst_row:0)
      entries;
    { Kv.Block_manager.xrows = c.len; xlayers = layers; xhidden = c.hidden;
      xk; xv }

(* Restore a snapshot into an empty cache. Paged: [attach] re-shares the
   destination trie's blocks for the first [alen] (block-aligned) rows —
   bit-identical to the exported bytes since both replicas run the same
   deterministic engine over the same prefix — then the remainder is
   imported as private blocks; the freshly acquired blocks are adopted
   without an extra retain (ownership transfer). This is the commit
   point of a migration: on a [`Denied] arena the attached blocks are
   released and [Kv.Seq.Out_of_blocks] is raised with the destination
   left untouched, so the caller's export snapshot remains the one live
   copy. Contig: the dense rows are appended per layer. *)
let import_cache c ?attach:att (e : Kv.Block_manager.export) =
  assert (c.len = 0);
  if e.Kv.Block_manager.xhidden <> c.hidden then
    invalid_arg "Llm.import_cache: hidden mismatch";
  (match c.store with
  | Contig entries ->
    if e.Kv.Block_manager.xlayers <> Array.length entries then
      invalid_arg "Llm.import_cache: layer mismatch";
    if att <> None then invalid_arg "Llm.import_cache: attach on contiguous";
    if e.Kv.Block_manager.xrows > 0 then
      Array.iteri
        (fun l entry ->
          append_rows c entry
            ~k_new:(Tensor.sub_rows e.Kv.Block_manager.xk.(l)
                      e.Kv.Block_manager.xrows)
            ~v_new:(Tensor.sub_rows e.Kv.Block_manager.xv.(l)
                      e.Kv.Block_manager.xrows))
        entries
  | Paged p ->
    let from =
      match att with
      | None -> 0
      | Some (blocks, alen) ->
        assert (alen <= e.Kv.Block_manager.xrows);
        Kv.Seq.attach p.seq ~blocks;
        alen
    in
    (match Kv.Block_manager.import (Kv.Seq.manager p.seq) e ~from with
    | `Blocks fresh -> Kv.Seq.adopt p.seq ~blocks:fresh
    | `Denied ->
      Kv.Seq.release_all p.seq;
      raise Kv.Seq.Out_of_blocks
    | exception exn ->
      Kv.Seq.release_all p.seq;
      raise exn));
  c.len <- e.Kv.Block_manager.xrows

(* storage-agnostic append: write this layer's fresh K/V rows at token
   positions [cache.len, cache.len + n). Layer 0 reserves the block-table
   capacity for the whole forward pass (allocation is per token position,
   shared by all layers); later layers write into the same slots. *)
let append_layer cache ~layer ~k_new ~v_new =
  match cache.store with
  | Contig entries -> append_rows cache entries.(layer) ~k_new ~v_new
  | Paged p ->
    let n = (Tensor.dims k_new).(0) in
    if layer = 0 then Kv.Seq.ensure p.seq ~len:cache.len ~extra:n;
    Kv.Seq.append p.seq ~layer ~at:cache.len ~rows:n ~k_src:k_new ~v_src:v_new

(* storage-agnostic view of this layer's first [rows] K/V rows as
   contiguous [rows x hidden] tensors. Contig returns shared-storage
   views; paged gathers the block rows into the cache's scratch (grown
   geometrically, reused across layers and steps) — after which the
   dense attention path is byte-for-byte the same computation, which is
   what makes paged decode bit-identical to contiguous decode. *)
let layer_kv cache ~layer ~rows =
  match cache.store with
  | Contig entries ->
    let e = entries.(layer) in
    (Tensor.sub_rows e.k rows, Tensor.sub_rows e.v rows)
  | Paged p ->
    if p.gcap < rows then begin
      let cap = max rows (2 * p.gcap) in
      p.gk <- Tensor.create Datatype.F32 [| cap; cache.hidden |];
      p.gv <- Tensor.create Datatype.F32 [| cap; cache.hidden |];
      p.gcap <- cap
    end;
    Kv.Seq.gather p.seq ~layer ~rows ~k_dst:p.gk ~v_dst:p.gv;
    (Tensor.sub_rows p.gk rows, Tensor.sub_rows p.gv rows)

let layernorm gamma beta x =
  let y = Tensor.create Datatype.F32 (Tensor.dims x) in
  Blocks.layernorm_rows_nostats ~eps:1e-5 ~inp:(Tensor.view2d x)
    ~gamma:(Tensor.view2d gamma) ~beta:(Tensor.view2d beta)
    ~out:(Tensor.view2d y);
  y

let add_inplace a b =
  Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Full ~a:(Tensor.view2d a)
    ~b:(Tensor.view2d b) ~out:(Tensor.view2d a)

(* pre-norm decoder block with a cache: x += Attn(LN1(x)); x += FFN(LN2(x)) *)
let decoder_block ?nthreads cache (layer : layer) layer_idx x =
  let n = (Tensor.dims x).(0) in
  let normed = layernorm layer.ln1_gamma layer.ln1_beta x in
  let q, k_new, v_new = Attention.project ?nthreads layer.attention normed in
  append_layer cache ~layer:layer_idx ~k_new ~v_new;
  let k_all, v_all = layer_kv cache ~layer:layer_idx ~rows:(cache.len + n) in
  let ctx =
    Attention.attend ~causal:true ~heads:layer.attention.Attention.heads q
      k_all v_all
  in
  let att = Fc.forward ?nthreads layer.attention.Attention.wo ctx in
  add_inplace att x;
  (* att now holds x + attention *)
  let normed2 = layernorm layer.ln2_gamma layer.ln2_beta att in
  let up = Fc.forward ?nthreads layer.ffn_up normed2 in
  (match layer.ffn_gate with
  | Some gate_fc ->
    (* SwiGLU: up := silu(gate) * up *)
    let gate = Fc.forward ?nthreads gate_fc normed2 in
    let s = Tensor.create Datatype.F32 (Tensor.dims gate) in
    Tpp_unary.exec Tpp_unary.Sigmoid ~inp:(Tensor.view2d gate)
      ~out:(Tensor.view2d s);
    Tpp_binary.exec Tpp_binary.Mul ~bcast:Tpp_binary.Full
      ~a:(Tensor.view2d gate) ~b:(Tensor.view2d s) ~out:(Tensor.view2d gate);
    Tpp_binary.exec Tpp_binary.Mul ~bcast:Tpp_binary.Full
      ~a:(Tensor.view2d up) ~b:(Tensor.view2d gate) ~out:(Tensor.view2d up)
  | None -> ());
  let down = Fc.forward ?nthreads layer.ffn_down up in
  add_inplace down att;
  down

let run_tokens ?nthreads t cache x =
  let out =
    Array.to_list t.decoder
    |> List.mapi (fun i l -> (i, l))
    |> List.fold_left
         (fun acc (i, layer) -> decoder_block ?nthreads cache layer i acc)
         x
  in
  cache.len <- cache.len + (Tensor.dims x).(0);
  out

let last_row x =
  let d = Tensor.dims x in
  Tensor.init Datatype.F32 [| 1; d.(1) |] (fun i ->
      Tensor.get x [| d.(0) - 1; i.(1) |])

(* batched extension over an already-filled cache: append [n] token rows
   and return all [n] output rows. Per-row outputs are bit-identical to
   feeding the same tokens one decode step at a time (the k-reduction
   order of every kernel is independent of the batch row count) — the
   property that makes prefix-hit suffix prefills and speculative
   verification exact, not approximate. *)
let extend ?nthreads t cache x = run_tokens ?nthreads t cache x

let prefill ?nthreads t cache x =
  assert (cache.len = 0);
  last_row (run_tokens ?nthreads t cache x)

let decode_step ?nthreads t cache x =
  assert ((Tensor.dims x).(0) = 1);
  run_tokens ?nthreads t cache x

let forward_full ?nthreads t x =
  let cache = new_cache t in
  run_tokens ?nthreads t cache x

(* a draft model sharing the target's first [layers] decoder layers (and
   weights) — the proposer half of speculative decoding. No copy: slices
   reference the same layer records. *)
let draft t ~layers =
  let layers = max 1 (min layers t.cfg.layers) in
  { cfg = { t.cfg with layers; name = t.cfg.name ^ "-draft" };
    decoder = Array.sub t.decoder 0 layers }

(* ---------- tensor-parallel (sharded) execution ---------- *)

(* Every projection in the decoder block is column-split (split along its
   OUTPUT features): shard s owns a contiguous, block-aligned slice of the
   output dimension and computes it with the full input. The "all-reduce"
   of Megatron-style row splits never happens — each float of every
   intermediate tensor is produced by exactly one shard with the same
   k-reduction order as the unsharded GEMM, and shards only concatenate
   (disjoint column writes into a shared tensor), so the sharded path is
   bit-identical to the unsharded one by construction. The price is that
   every shard reads the full input of each projection; for the
   bandwidth-bound decode step the weights dominate traffic, and those
   really are split 1/shards per shard. *)

type tp_fc = { pfc : Fc.t; col0 : int }

type tp_layer = {
  tq : tp_fc;
  tk : tp_fc;
  tv : tp_fc;
  two : tp_fc;
  tup : tp_fc;
  tgate : tp_fc option;
  tdown : tp_fc;
  th0 : int;  (** first attention head owned by this shard *)
  th1 : int;  (** one past the last owned head *)
}

type tp_plan = {
  tpl : t;
  shards : int;
  slices : tp_layer array array;  (** [shard].(layer) *)
}

(* rows [r0, r1) of an [out x in] projection: same block/spec/act/dtype,
   so the sliced GEMM tiles and reduces exactly like the full one. *)
let slice_fc (fc : Fc.t) r0 r1 =
  let rows = r1 - r0 in
  let weights =
    Tensor.init fc.Fc.dtype [| rows; fc.Fc.in_features |] (fun i ->
        Tensor.get fc.Fc.weights [| r0 + i.(0); i.(1) |])
  in
  let bias =
    Tensor.init fc.Fc.dtype [| rows |] (fun i ->
        Tensor.get fc.Fc.bias [| r0 + i.(0) |])
  in
  { pfc = { fc with Fc.out_features = rows; weights; bias }; col0 = r0 }

let tp_plan t ~shards =
  let cfg = t.cfg in
  if shards < 1 then Error "tp_plan: shards must be >= 1"
  else if cfg.heads mod shards <> 0 then
    Error
      (Printf.sprintf "tp_plan: heads (%d) not divisible by shards (%d)"
         cfg.heads shards)
  else if cfg.intermediate mod shards <> 0 then
    Error
      (Printf.sprintf
         "tp_plan: intermediate (%d) not divisible by shards (%d)"
         cfg.intermediate shards)
  else begin
    let head_dim = cfg.hidden / cfg.heads in
    let hchunk = cfg.heads / shards * head_dim in
    let ichunk = cfg.intermediate / shards in
    let l0 = t.decoder.(0) in
    let ablock = l0.attention.Attention.wq.Fc.block in
    let ublock = l0.ffn_up.Fc.block in
    let oblock = l0.ffn_down.Fc.block in
    if hchunk mod ablock <> 0 || hchunk mod oblock <> 0 then
      Error
        (Printf.sprintf
           "tp_plan: hidden slice (%d) not a multiple of the GEMM block \
            (%d/%d)"
           hchunk ablock oblock)
    else if ichunk mod ublock <> 0 then
      Error
        (Printf.sprintf
           "tp_plan: intermediate slice (%d) not a multiple of the GEMM \
            block (%d)"
           ichunk ublock)
    else begin
      let heads_per = cfg.heads / shards in
      let slice_layer s (layer : layer) =
        let h0 = s * hchunk and h1 = (s + 1) * hchunk in
        let i0 = s * ichunk and i1 = (s + 1) * ichunk in
        { tq = slice_fc layer.attention.Attention.wq h0 h1;
          tk = slice_fc layer.attention.Attention.wk h0 h1;
          tv = slice_fc layer.attention.Attention.wv h0 h1;
          two = slice_fc layer.attention.Attention.wo h0 h1;
          tup = slice_fc layer.ffn_up i0 i1;
          tgate = Option.map (fun g -> slice_fc g i0 i1) layer.ffn_gate;
          tdown = slice_fc layer.ffn_down h0 h1;
          th0 = s * heads_per;
          th1 = (s + 1) * heads_per }
      in
      Ok
        { tpl = t;
          shards;
          slices =
            Array.init shards (fun s -> Array.map (slice_layer s) t.decoder)
        }
    end
  end

let tp_llm p = p.tpl
let tp_shards p = p.shards

(* write [src : n x w] into columns [col0, col0+w) of [dst : n x W] —
   the concat step; shards write disjoint slices, so no synchronization
   beyond the enclosing region's join/barrier is needed. *)
let scatter_cols ~dst ~col0 src =
  let d = Tensor.dims src in
  let n = d.(0) and w = d.(1) in
  let wd = (Tensor.dims dst).(1) in
  for r = 0 to n - 1 do
    for c = 0 to w - 1 do
      Tensor.set_flat dst ((r * wd) + col0 + c)
        (Tensor.get_flat src ((r * w) + c))
    done
  done

(* One decoder block across [shards] team workers, three parallel regions:
   A) q/k/v column slices; (join) cache append by the caller;
   B) owned heads' attention into a shared ctx, barrier, wo column slice
      over the full ctx;
   C) up/gate column slices (+SwiGLU on the slice), barrier, down column
      slice over the full intermediate. LN / residual / cache glue runs on
      the caller between regions, identical to the unsharded block. All
      inner kernels run with [~nthreads:1] — parallelism lives at the
      shard level, and nesting teams would fall back to spawn-per-call. *)
let decoder_block_tp plan cache entry_idx x =
  let t = plan.tpl in
  let layer = t.decoder.(entry_idx) in
  let n = (Tensor.dims x).(0) in
  let hidden = t.cfg.hidden in
  let inter = t.cfg.intermediate in
  let shards = plan.shards in
  let sl ctx = plan.slices.(ctx.Team.tid).(entry_idx) in
  let normed = layernorm layer.ln1_gamma layer.ln1_beta x in
  let q = Tensor.create Datatype.F32 [| n; hidden |] in
  let k_new = Tensor.create Datatype.F32 [| n; hidden |] in
  let v_new = Tensor.create Datatype.F32 [| n; hidden |] in
  Team.run ~nthreads:shards (fun ctx ->
      let s = sl ctx in
      scatter_cols ~dst:q ~col0:s.tq.col0 (Fc.forward ~nthreads:1 s.tq.pfc normed);
      scatter_cols ~dst:k_new ~col0:s.tk.col0
        (Fc.forward ~nthreads:1 s.tk.pfc normed);
      scatter_cols ~dst:v_new ~col0:s.tv.col0
        (Fc.forward ~nthreads:1 s.tv.pfc normed));
  (* cache append + gather run on the caller between regions — the block
     table (or contig buffer) is storage the shards only ever read *)
  append_layer cache ~layer:entry_idx ~k_new ~v_new;
  let k_all, v_all = layer_kv cache ~layer:entry_idx ~rows:(cache.len + n) in
  let ctx_t = Tensor.create Datatype.F32 [| n; hidden |] in
  let att = Tensor.create Datatype.F32 [| n; hidden |] in
  Team.run ~nthreads:shards (fun ctx ->
      let s = sl ctx in
      Attention.attend_range ~causal:true
        ~heads:layer.attention.Attention.heads ~h0:s.th0 ~h1:s.th1 ~out:ctx_t
        q k_all v_all;
      ctx.Team.barrier ();
      scatter_cols ~dst:att ~col0:s.two.col0
        (Fc.forward ~nthreads:1 s.two.pfc ctx_t));
  add_inplace att x;
  let normed2 = layernorm layer.ln2_gamma layer.ln2_beta att in
  let up = Tensor.create Datatype.F32 [| n; inter |] in
  let down = Tensor.create Datatype.F32 [| n; hidden |] in
  Team.run ~nthreads:shards (fun ctx ->
      let s = sl ctx in
      let u = Fc.forward ~nthreads:1 s.tup.pfc normed2 in
      (match s.tgate with
      | Some g ->
        let gate = Fc.forward ~nthreads:1 g.pfc normed2 in
        let sig_t = Tensor.create Datatype.F32 (Tensor.dims gate) in
        Tpp_unary.exec Tpp_unary.Sigmoid ~inp:(Tensor.view2d gate)
          ~out:(Tensor.view2d sig_t);
        Tpp_binary.exec Tpp_binary.Mul ~bcast:Tpp_binary.Full
          ~a:(Tensor.view2d gate) ~b:(Tensor.view2d sig_t)
          ~out:(Tensor.view2d gate);
        Tpp_binary.exec Tpp_binary.Mul ~bcast:Tpp_binary.Full
          ~a:(Tensor.view2d u) ~b:(Tensor.view2d gate)
          ~out:(Tensor.view2d u)
      | None -> ());
      scatter_cols ~dst:up ~col0:s.tup.col0 u;
      ctx.Team.barrier ();
      scatter_cols ~dst:down ~col0:s.tdown.col0
        (Fc.forward ~nthreads:1 s.tdown.pfc up));
  add_inplace down att;
  down

let run_tokens_tp plan cache x =
  let t = plan.tpl in
  let out = ref x in
  for i = 0 to Array.length t.decoder - 1 do
    out := decoder_block_tp plan cache i !out
  done;
  cache.len <- cache.len + (Tensor.dims x).(0);
  !out

(* sharded batched extension — same contract (and bit-identity) as
   {!extend}, with the FLOPs split across the shard team *)
let extend_tp plan cache x = run_tokens_tp plan cache x

let prefill_tp plan cache x =
  assert (cache.len = 0);
  last_row (run_tokens_tp plan cache x)

let decode_step_tp plan cache x =
  assert ((Tensor.dims x).(0) = 1);
  run_tokens_tp plan cache x

let embed t ids =
  (* deterministic per-token-id synthetic embedding *)
  Tensor.init Datatype.F32
    [| Array.length ids; t.cfg.hidden |]
    (fun i ->
      let r = Prng.create ((ids.(i.(0)) * 7919) + i.(1)) in
      Prng.uniform r ~scale:0.5)

let layer_params (cfg : config) =
  (* 4 attention mats + 2 (or 3 gated) FFN mats *)
  let ffn_mats = if cfg.gated_ffn then 3.0 else 2.0 in
  (4.0 *. float_of_int cfg.hidden *. float_of_int cfg.hidden)
  +. (ffn_mats *. float_of_int cfg.hidden *. float_of_int cfg.intermediate)

let prefill_flops (cfg : config) ~n_in =
  let n = float_of_int n_in in
  let h = float_of_int cfg.hidden in
  float_of_int cfg.layers
  *. ((2.0 *. n *. layer_params cfg) (* dense contractions *)
     +. (2.0 *. 2.0 *. n *. n *. h) (* attention scores + context *))

let decode_flops (cfg : config) ~past =
  let h = float_of_int cfg.hidden in
  float_of_int cfg.layers
  *. ((2.0 *. layer_params cfg)
     +. (2.0 *. 2.0 *. float_of_int (past + 1) *. h))

let param_bytes (cfg : config) dtype =
  (float_of_int cfg.layers *. layer_params cfg
  +. (float_of_int cfg.vocab *. float_of_int cfg.hidden))
  *. float_of_int (Datatype.bytes dtype)

(** ResNet-50 (§IV-C): topology table, the standalone convolution shapes of
    Fig. 7, and an executable residual CNN built from the PARLOOPER
    convolution kernel with fused batchnorm + ReLU post-ops, max/avg
    pooling and a final FC layer.

    The full 224x224 ResNet-50 shapes feed the benchmark harness; the
    executable network is exercised at reduced sizes in tests/examples. *)

(** One convolution layer shape: [(c, k, h, w, r, s, stride, pad)] with
    input spatial dims [h x w]. *)
type conv_shape = {
  layer_id : int;
  c : int;
  k : int;
  h : int;
  w : int;
  r : int;
  s : int;
  stride : int;
  pad : int;
  repeats : int;  (** times this shape occurs in ResNet-50 *)
}

(** The 20 unique convolution shapes of ResNet-50 (Fig. 7's x-axis),
    224x224 input. *)
val conv_shapes : conv_shape list

(** FLOPs of one instance of a shape at minibatch [n]. *)
val conv_shape_flops : conv_shape -> n:int -> float

(** Total conv FLOPs of one ResNet-50 forward at minibatch [n]. *)
val total_conv_flops : n:int -> float

(** FLOPs of one training step (fwd + ~2x bwd) at minibatch [n]. *)
val train_step_flops : n:int -> float

(** Executable residual CNN. *)
type t

val channels : t -> int  (** input image channels *)
val classes : t -> int  (** classifier width *)
val dtype : t -> Datatype.t

(** [create ~rng ~channels ~blocks ()] — a small ResNet-style network:
    stem conv, [blocks] residual bottleneck-ish stages on [channels] maps,
    global average pooling and an FC classifier. All channel counts must
    be divisible by 8. *)
val create :
  rng:Prng.t ->
  ?dtype:Datatype.t ->
  ?spec:string ->
  ?classes:int ->
  channels:int ->
  blocks:int ->
  unit ->
  t

(** Forward on logical [N; 3; H; W] images; returns [N; classes] logits. *)
val forward : ?nthreads:int -> t -> Tensor.t -> Tensor.t

(** Naive reference forward (tests). *)
val reference_forward : t -> Tensor.t -> Tensor.t

(* a sparse fully-connected layer: W in BCSC, Y = X W^T computed as
   W_sparse x X^T via the Block-SpMM PARLOOPER kernel *)
type sfc = {
  a : Bcsc.t;
  bias : Tensor.t;
  act : Fc.activation;
  in_features : int;
  out_features : int;
}

type slayer = {
  q : sfc;
  k : sfc;
  v : sfc;
  o : sfc;
  heads : int;
  att_output : sfc;
  att_gamma : Tensor.t;
  att_beta : Tensor.t;
  intermediate : sfc;
  out : sfc;
  out_gamma : Tensor.t;
  out_beta : Tensor.t;
}

type t = {
  bert : Bert.t;
  layers : slayer array;
  dense_layers : Bert.layer array;  (** same pruned weights, dense kernels *)
  bm : int;
  bk : int;
}

let sparsify_fc ~bm ~bk ~sparsity (fc : Fc.t) =
  let a = Bcsc.prune_dense ~bm ~bk ~sparsity fc.Fc.weights in
  ( {
      a;
      bias = fc.Fc.bias;
      act = fc.Fc.act;
      in_features = fc.Fc.in_features;
      out_features = fc.Fc.out_features;
    },
    { fc with Fc.weights = Bcsc.to_dense a } )

let sparsify ~bm ~bk ~sparsity (bert : Bert.t) =
  let layers, dense_layers =
    Array.map
      (fun (l : Bert.layer) ->
        let att = l.Bert.attention in
        let q, qd = sparsify_fc ~bm ~bk ~sparsity att.Attention.wq in
        let k, kd = sparsify_fc ~bm ~bk ~sparsity att.Attention.wk in
        let v, vd = sparsify_fc ~bm ~bk ~sparsity att.Attention.wv in
        let o, od = sparsify_fc ~bm ~bk ~sparsity att.Attention.wo in
        let att_output, att_output_d =
          sparsify_fc ~bm ~bk ~sparsity l.Bert.att_output
        in
        let intermediate, intermediate_d =
          sparsify_fc ~bm ~bk ~sparsity l.Bert.intermediate_fc
        in
        let out, out_d = sparsify_fc ~bm ~bk ~sparsity l.Bert.out_fc in
        ( {
            q;
            k;
            v;
            o;
            heads = att.Attention.heads;
            att_output;
            att_gamma = l.Bert.att_gamma;
            att_beta = l.Bert.att_beta;
            intermediate;
            out;
            out_gamma = l.Bert.out_gamma;
            out_beta = l.Bert.out_beta;
          },
          {
            l with
            Bert.attention = { att with Attention.wq = qd; wk = kd; wv = vd; wo = od };
            att_output = att_output_d;
            intermediate_fc = intermediate_d;
            out_fc = out_d;
          } ))
      bert.Bert.encoder
    |> fun arr -> (Array.map fst arr, Array.map snd arr)
  in
  { bert; layers; dense_layers; bm; bk }

let bert t = t.bert
let blocking t = (t.bm, t.bk)

let achieved_sparsity t =
  let sfcs l = [ l.q; l.k; l.v; l.o; l.att_output; l.intermediate; l.out ] in
  let all = Array.to_list t.layers |> List.concat_map sfcs in
  List.fold_left (fun acc s -> acc +. Bcsc.sparsity s.a) 0.0 all
  /. float_of_int (List.length all)

let transpose t0 =
  let d = Tensor.dims t0 in
  Tensor.init (Tensor.dtype t0) [| d.(1); d.(0) |] (fun i ->
      Tensor.get t0 [| i.(1); i.(0) |])

let sfc_forward ?nthreads sfc x =
  let n = (Tensor.dims x).(0) in
  let bn = if n mod 16 = 0 then 16 else if n mod 8 = 0 then 8 else 1 in
  let cfg =
    Spmm_kernel.make_config ~bn ~m:sfc.out_features ~n ~k:sfc.in_features
      ~bm:(Bcsc.(sfc.a.bm)) ~bk:(Bcsc.(sfc.a.bk)) ()
  in
  let sp = Spmm_kernel.create cfg Spmm_kernel.default_spec in
  let ct = Spmm_kernel.run_logical ?nthreads sp ~a:sfc.a ~b:(transpose x) in
  let y = transpose ct in
  (* bias + activation *)
  let bias_row =
    Tensor.view_flat sfc.bias ~off:0 ~rows:1 ~cols:sfc.out_features
      ~ld:sfc.out_features
  in
  Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Row ~a:(Tensor.view2d y)
    ~b:bias_row ~out:(Tensor.view2d y);
  (match sfc.act with
  | Fc.Linear -> ()
  | Fc.Relu_act ->
    Tpp_unary.exec Tpp_unary.Relu ~inp:(Tensor.view2d y) ~out:(Tensor.view2d y)
  | Fc.Gelu_act ->
    Tpp_unary.exec Tpp_unary.Gelu ~inp:(Tensor.view2d y) ~out:(Tensor.view2d y));
  y

let layernorm gamma beta x =
  let y = Tensor.create Datatype.F32 (Tensor.dims x) in
  Blocks.layernorm_rows_nostats ~eps:1e-12 ~inp:(Tensor.view2d x)
    ~gamma:(Tensor.view2d gamma) ~beta:(Tensor.view2d beta)
    ~out:(Tensor.view2d y);
  y

let encoder_layer ?nthreads t idx x =
  let l = t.layers.(idx) in
  let q = sfc_forward ?nthreads l.q x in
  let k = sfc_forward ?nthreads l.k x in
  let v = sfc_forward ?nthreads l.v x in
  let ctx = Attention.attend ~heads:l.heads q k v in
  let att = sfc_forward ?nthreads l.o ctx in
  let so = sfc_forward ?nthreads l.att_output att in
  Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Full ~a:(Tensor.view2d so)
    ~b:(Tensor.view2d x) ~out:(Tensor.view2d so);
  let x1 = layernorm l.att_gamma l.att_beta so in
  let inter = sfc_forward ?nthreads l.intermediate x1 in
  let out = sfc_forward ?nthreads l.out inter in
  Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Full ~a:(Tensor.view2d out)
    ~b:(Tensor.view2d x1) ~out:(Tensor.view2d out);
  layernorm l.out_gamma l.out_beta out

let forward ?nthreads t x =
  let n = Array.length t.layers in
  let rec go i x = if i = n then x else go (i + 1) (encoder_layer ?nthreads t i x) in
  go 0 x

let dense_equivalent_forward ?nthreads t x =
  Array.fold_left
    (fun x l ->
      (* the dense path includes the extra SelfOutput dense of the sparse
         formulation? No: the sparse encoder adds att_output after wo; the
         dense Bert layer applies att_output once. Keep them identical by
         running the same structure with dense kernels. *)
      x |> fun x ->
      let att = Attention.forward ?nthreads l.Bert.attention x in
      let so = Fc.forward ?nthreads l.Bert.att_output att in
      Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Full
        ~a:(Tensor.view2d so) ~b:(Tensor.view2d x) ~out:(Tensor.view2d so);
      let x1 = layernorm l.Bert.att_gamma l.Bert.att_beta so in
      let inter = Fc.forward ?nthreads l.Bert.intermediate_fc x1 in
      let out = Fc.forward ?nthreads l.Bert.out_fc inter in
      Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Full
        ~a:(Tensor.view2d out) ~b:(Tensor.view2d x1) ~out:(Tensor.view2d out);
      layernorm l.Bert.out_gamma l.Bert.out_beta out)
    x t.dense_layers

let layer_effective_flops t ~seq =
  let l = t.layers.(0) in
  let s = float_of_int seq in
  let fc sfc =
    2.0 *. s
    *. float_of_int sfc.in_features
    *. float_of_int sfc.out_features
    *. (1.0 -. Bcsc.sparsity sfc.a)
  in
  let hidden = float_of_int l.q.in_features in
  fc l.q +. fc l.k +. fc l.v +. fc l.o +. fc l.att_output +. fc l.intermediate
  +. fc l.out
  +. (2.0 *. 2.0 *. s *. s *. hidden)

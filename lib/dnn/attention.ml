type t = {
  hidden : int;
  heads : int;
  head_dim : int;
  wq : Fc.t;
  wk : Fc.t;
  wv : Fc.t;
  wo : Fc.t;
}

let create ~rng ?(dtype = Datatype.F32) ?(block = 32) ?(spec = Gemm.default_spec)
    ~hidden ~heads () =
  if hidden mod heads <> 0 then
    invalid_arg "Attention.create: hidden must be divisible by heads";
  let mk () =
    Fc.create ~rng ~dtype ~block ~spec ~in_features:hidden
      ~out_features:hidden ()
  in
  { hidden; heads; head_dim = hidden / heads; wq = mk (); wk = mk ();
    wv = mk (); wo = mk () }

let project ?nthreads t x =
  ( Fc.forward ?nthreads t.wq x,
    Fc.forward ?nthreads t.wk x,
    Fc.forward ?nthreads t.wv x )

(* head h occupies columns [h*d, (h+1)*d) of a [tokens x hidden] tensor *)
let head_view x ~heads ~h =
  let dims = Tensor.dims x in
  let n = dims.(0) and hidden = dims.(1) in
  let d = hidden / heads in
  Tensor.view_flat x ~off:(h * d) ~rows:n ~cols:d ~ld:hidden

let attend_range ?(causal = false) ~heads ~h0 ~h1 ~out q k v =
  let dq = Tensor.dims q and dk = Tensor.dims k in
  let nq = dq.(0) and nk = dk.(0) and hidden = dq.(1) in
  assert (dk.(1) = hidden && (Tensor.dims v).(1) = hidden);
  assert (0 <= h0 && h0 <= h1 && h1 <= heads);
  let od = Tensor.dims out in
  assert (od.(0) = nq && od.(1) = hidden);
  let d = hidden / heads in
  let scale = 1.0 /. sqrt (float_of_int d) in
  let scores = Tensor.create Datatype.F32 [| nq; nk |] in
  let kt = Tensor.create Datatype.F32 [| d; nk |] in
  let score_ker = Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:nq ~n:nk ~k:d ()) in
  let ctx_ker = Brgemm.compile (Brgemm.make_config ~beta:0.0 ~m:nq ~n:d ~k:nk ()) in
  for h = h0 to h1 - 1 do
    let qh = head_view q ~heads ~h in
    let kh = head_view k ~heads ~h in
    let vh = head_view v ~heads ~h in
    (* S = Q_h x K_h^T, scaled *)
    Tpp_unary.transpose ~inp:kh ~out:(Tensor.view2d kt);
    Brgemm.exec score_ker ~a:qh ~b:(Tensor.view2d kt) ~c:(Tensor.view2d scores);
    Tpp_unary.exec (Tpp_unary.Scale scale) ~inp:(Tensor.view2d scores)
      ~out:(Tensor.view2d scores);
    if causal then begin
      let offset = nk - nq in
      for i = 0 to nq - 1 do
        for j = i + offset + 1 to nk - 1 do
          Tensor.set scores [| i; j |] (-1e30)
        done
      done
    end;
    Blocks.softmax_rows ~inp:(Tensor.view2d scores) ~out:(Tensor.view2d scores);
    (* C_h = S x V_h *)
    let oh = head_view out ~heads ~h in
    Brgemm.exec ctx_ker ~a:(Tensor.view2d scores) ~b:vh ~c:oh
  done

let attend ?causal ~heads q k v =
  let dq = Tensor.dims q in
  let out = Tensor.create Datatype.F32 [| dq.(0); dq.(1) |] in
  attend_range ?causal ~heads ~h0:0 ~h1:heads ~out q k v;
  out

let forward ?nthreads ?causal t x =
  let q, k, v = project ?nthreads t x in
  let ctx = attend ?causal ~heads:t.heads q k v in
  Fc.forward ?nthreads t.wo ctx

let reference_forward ?(causal = false) t x =
  let n = (Tensor.dims x).(0) in
  let proj (fc : Fc.t) =
    let w = fc.Fc.weights in
    let wt =
      Tensor.init Datatype.F32 [| fc.Fc.in_features; fc.Fc.out_features |]
        (fun i -> Tensor.get w [| i.(1); i.(0) |])
    in
    let y = Reference.matmul x wt in
    Tensor.init Datatype.F32 [| n; fc.Fc.out_features |] (fun i ->
        Tensor.get y i +. Tensor.get fc.Fc.bias [| i.(1) |])
  in
  let q = proj t.wq and k = proj t.wk and v = proj t.wv in
  let d = t.head_dim in
  let out = Tensor.create Datatype.F32 [| n; t.hidden |] in
  for h = 0 to t.heads - 1 do
    let s = Tensor.create Datatype.F32 [| n; n |] in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0.0 in
        for x' = 0 to d - 1 do
          acc :=
            !acc
            +. Tensor.get q [| i; (h * d) + x' |]
               *. Tensor.get k [| j; (h * d) + x' |]
        done;
        let v' = !acc /. sqrt (float_of_int d) in
        Tensor.set s [| i; j |] (if causal && j > i then -1e30 else v')
      done
    done;
    let p = Reference.softmax_rows s in
    for i = 0 to n - 1 do
      for x' = 0 to d - 1 do
        let acc = ref 0.0 in
        for j = 0 to n - 1 do
          acc := !acc +. (Tensor.get p [| i; j |] *. Tensor.get v [| j; (h * d) + x' |])
        done;
        Tensor.set out [| i; (h * d) + x' |] !acc
      done
    done
  done;
  let proj_o =
    let wt =
      Tensor.init Datatype.F32 [| t.hidden; t.hidden |] (fun i ->
          Tensor.get t.wo.Fc.weights [| i.(1); i.(0) |])
    in
    let y = Reference.matmul out wt in
    Tensor.init Datatype.F32 [| n; t.hidden |] (fun i ->
        Tensor.get y i +. Tensor.get t.wo.Fc.bias [| i.(1) |])
  in
  proj_o

let flops t ~n ~nk =
  let proj = 4.0 *. 2.0 *. float_of_int n *. float_of_int t.hidden *. float_of_int t.hidden in
  let scores = 2.0 *. float_of_int n *. float_of_int nk *. float_of_int t.hidden in
  let ctx = 2.0 *. float_of_int n *. float_of_int nk *. float_of_int t.hidden in
  proj +. scores +. ctx

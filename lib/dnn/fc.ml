type activation = Linear | Relu_act | Gelu_act

type t = {
  in_features : int;
  out_features : int;
  weights : Tensor.t;
  bias : Tensor.t;
  act : activation;
  block : int;
  dtype : Datatype.t;
  spec : string;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let create ~rng ?(dtype = Datatype.F32) ?(act = Linear) ?(block = 32)
    ?(spec = Gemm.default_spec) ~in_features ~out_features () =
  (* largest block not exceeding the request that tiles both features *)
  let g = gcd in_features out_features in
  let rec fit b = if b >= 1 && g mod b = 0 then b else fit (b - 1) in
  let block = fit (min block g) in
  let scale = sqrt (2.0 /. float_of_int in_features) in
  let weights =
    Tensor.init dtype [| out_features; in_features |] (fun _ ->
        Prng.uniform rng ~scale)
  in
  let bias = Tensor.create Datatype.F32 [| out_features |] in
  Tensor.fill_random bias rng ~scale:0.01;
  { in_features; out_features; weights; bias; act; block; dtype; spec }

(* transpose a logical [N x F] activation into the GEMM B layout
   ([F x N] blocked as [Nb][Kb][bk][bn]) and back *)
let transpose t0 =
  let d = Tensor.dims t0 in
  Tensor.init (Tensor.dtype t0) [| d.(1); d.(0) |] (fun i ->
      Tensor.get t0 [| i.(1); i.(0) |])

(* largest divisor of n not exceeding cap (>= 1) *)
let divisor_block n cap =
  let rec go d = if d >= 1 && n mod d = 0 then d else go (d - 1) in
  go (min cap n)

let gemm_cfg t ~n =
  Gemm.make_config ~bm:t.block ~bn:(divisor_block n t.block) ~bk:t.block
    ~dtype:t.dtype ~m:t.out_features ~n ~k:t.in_features ()

let act_unary = function
  | Linear -> None
  | Relu_act -> Some Tpp_unary.Relu
  | Gelu_act -> Some Tpp_unary.Gelu

type ctx = {
  input : Tensor.t;  (** logical [N x in] *)
  pre_act : Tensor.t;  (** logical [N x out], before activation *)
}

let forward_internal ?nthreads t x =
  let dx = Tensor.dims x in
  assert (Array.length dx = 2 && dx.(1) = t.in_features);
  let n = dx.(0) in
  (* any token count works: bn falls back to the largest divisor of n *)
  let cfg = gemm_cfg t ~n in
  (* routed through the spec-resolver hook: with online tuning enabled the
     per-shape cache may substitute a tuned (config, spec) here *)
  let g = Gemm.create_resolved cfg t.spec in
  let a = Gemm.pack_a cfg t.weights in
  let b = Gemm.pack_b cfg (transpose x) in
  let c = Gemm.alloc_c cfg in
  let bias = t.bias in
  let block = t.block in
  let post ~im ~in_:_ ~c_block =
    let bias_col = Tensor.view_flat bias ~off:(im * block) ~rows:block ~cols:1 ~ld:1 in
    Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Col ~a:c_block ~b:bias_col
      ~out:c_block
  in
  Gemm.run ?nthreads ~post g ~a ~b ~c;
  (* unpack to logical [N x out] (transpose of the GEMM C) *)
  let o = Gemm.unpack_c cfg c in
  let pre = transpose o in
  let y =
    match act_unary t.act with
    | None -> Tensor.copy pre
    | Some op ->
      let y = Tensor.create Datatype.F32 (Tensor.dims pre) in
      Tpp_unary.exec op ~inp:(Tensor.view2d pre) ~out:(Tensor.view2d y);
      y
  in
  (y, { input = x; pre_act = pre })

let forward ?nthreads t x = fst (forward_internal ?nthreads t x)
let forward_ctx ?nthreads t x = forward_internal ?nthreads t x

type grads = { d_input : Tensor.t; d_weights : Tensor.t; d_bias : Tensor.t }

(* plain blocked GEMM on logical tensors, used for the two backward
   contractions (dX = dY W, dW = dY^T X) *)
let gemm_logical ?nthreads ~block ~spec a b =
  let da = Tensor.dims a and db = Tensor.dims b in
  let m = da.(0) and k = da.(1) and n = db.(1) in
  let bm = min block m and bn = min block n and bk = min block k in
  (* fall back to reference for shapes indivisible by any small block *)
  if m mod bm <> 0 || n mod bn <> 0 || k mod bk <> 0 then
    Reference.matmul a b
  else begin
    let cfg = Gemm.make_config ~bm ~bn ~bk ~m ~n ~k () in
    let g = Gemm.create cfg spec in
    Gemm.run_logical ?nthreads g ~a ~b
  end

let backward ?nthreads t ctx ~dy =
  let ddy = Tensor.dims dy in
  assert (ddy.(1) = t.out_features);
  let n = ddy.(0) in
  (* activation backward *)
  let dpre =
    match t.act with
    | Linear -> dy
    | Relu_act ->
      let d = Tensor.create Datatype.F32 (Tensor.dims dy) in
      Tpp_unary.exec2 Tpp_unary.Relu_backward ~inp:(Tensor.view2d dy)
        ~aux:(Tensor.view2d ctx.pre_act) ~out:(Tensor.view2d d);
      d
    | Gelu_act ->
      let d = Tensor.create Datatype.F32 (Tensor.dims dy) in
      Tpp_unary.exec2 Tpp_unary.Gelu_backward ~inp:(Tensor.view2d dy)
        ~aux:(Tensor.view2d ctx.pre_act) ~out:(Tensor.view2d d);
      d
  in
  (* dX[N x in] = dPre[N x out] * W[out x in] *)
  let d_input = gemm_logical ?nthreads ~block:t.block ~spec:t.spec dpre t.weights in
  (* dW[out x in] = dPre^T[out x N] * X[N x in] *)
  let d_weights =
    gemm_logical ?nthreads ~block:t.block ~spec:t.spec (transpose dpre) ctx.input
  in
  (* db[out] = column sums of dPre *)
  let d_bias = Tensor.create Datatype.F32 [| t.out_features |] in
  let db_view = Tensor.view_flat d_bias ~off:0 ~rows:1 ~cols:t.out_features ~ld:t.out_features in
  Tpp_unary.reduce Tpp_unary.Sum Tpp_unary.Cols ~inp:(Tensor.view2d dpre)
    ~out:db_view;
  ignore n;
  { d_input; d_weights; d_bias }

let sgd_update t grads ~lr =
  for i = 0 to Tensor.numel t.weights - 1 do
    Tensor.set_flat t.weights i
      (Tensor.get_flat t.weights i -. (lr *. Tensor.get_flat grads.d_weights i))
  done;
  for i = 0 to Tensor.numel t.bias - 1 do
    Tensor.set_flat t.bias i
      (Tensor.get_flat t.bias i -. (lr *. Tensor.get_flat grads.d_bias i))
  done

let flops t ~n =
  2.0 *. float_of_int n *. float_of_int t.in_features
  *. float_of_int t.out_features

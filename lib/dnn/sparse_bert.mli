(** Unstructured block-sparse BERT inference (§IV-B / Fig. 10).

    A dense BERT's FC weight matrices are magnitude-pruned block-wise
    ({!Bcsc.prune_dense}) to a target sparsity — the structural half of the
    paper's distillation + pruning recipe — and the dense BRGEMM tensor
    contractions are replaced by the Block-SpMM PARLOOPER kernels. The
    attention score/context contractions and all element-wise blocks stay
    dense, exactly as in the paper's roofline construction. *)

type t

(** The dense model this sparse model was pruned from. *)
val bert : t -> Bert.t

(** The (bm, bk) BCSC block shape used for pruning. *)
val blocking : t -> int * int

(** [sparsify ~bm ~bk ~sparsity bert] prunes every encoder FC weight
    (QKV/out projections, intermediate, output) of a dense {!Bert.t}. *)
val sparsify : bm:int -> bk:int -> sparsity:float -> Bert.t -> t

(** Achieved sparsity averaged over pruned matrices. *)
val achieved_sparsity : t -> float

(** One encoder layer forward with sparse contractions. *)
val encoder_layer : ?nthreads:int -> t -> int -> Tensor.t -> Tensor.t

(** Full encoder forward on precomputed embeddings. *)
val forward : ?nthreads:int -> t -> Tensor.t -> Tensor.t

(** Dense-equivalent forward on the SAME pruned weights (zeros kept),
    for correctness comparison. *)
val dense_equivalent_forward : ?nthreads:int -> t -> Tensor.t -> Tensor.t

(** Effective FLOPs of one layer at [seq] (contractions scaled by
    density). *)
val layer_effective_flops : t -> seq:int -> float

type config = {
  hidden : int;
  heads : int;
  intermediate : int;
  layers : int;
  vocab : int;
  max_seq : int;
}

let base_config =
  { hidden = 768; heads = 12; intermediate = 3072; layers = 12; vocab = 30522;
    max_seq = 512 }

let large_config =
  { hidden = 1024; heads = 16; intermediate = 4096; layers = 24;
    vocab = 30522; max_seq = 512 }

let tiny_config =
  { hidden = 64; heads = 4; intermediate = 128; layers = 2; vocab = 100;
    max_seq = 64 }

type layer = {
  attention : Attention.t;
  att_output : Fc.t;
  att_gamma : Tensor.t;
  att_beta : Tensor.t;
  intermediate_fc : Fc.t;
  out_fc : Fc.t;
  out_gamma : Tensor.t;
  out_beta : Tensor.t;
}

type t = {
  cfg : config;
  token_embedding : Tensor.t;
  position_embedding : Tensor.t;
  emb_gamma : Tensor.t;
  emb_beta : Tensor.t;
  encoder : layer array;
  dropout_p : float;
}

let ln_params rng hidden =
  let gamma =
    Tensor.init Datatype.F32 [| 1; hidden |] (fun _ ->
        1.0 +. Prng.uniform rng ~scale:0.02)
  in
  let beta =
    Tensor.init Datatype.F32 [| 1; hidden |] (fun _ ->
        Prng.uniform rng ~scale:0.02)
  in
  (gamma, beta)

let create ~rng ?(dtype = Datatype.F32) ?(block = 32) ?(spec = Gemm.default_spec)
    ?(dropout_p = 0.1) cfg =
  let mk_layer () =
    let attention =
      Attention.create ~rng ~dtype ~block ~spec ~hidden:cfg.hidden
        ~heads:cfg.heads ()
    in
    let att_output =
      Fc.create ~rng ~dtype ~block ~spec ~in_features:cfg.hidden
        ~out_features:cfg.hidden ()
    in
    let att_gamma, att_beta = ln_params rng cfg.hidden in
    let intermediate_fc =
      Fc.create ~rng ~dtype ~block ~spec ~act:Fc.Gelu_act
        ~in_features:cfg.hidden ~out_features:cfg.intermediate ()
    in
    let out_fc =
      Fc.create ~rng ~dtype ~block ~spec ~in_features:cfg.intermediate
        ~out_features:cfg.hidden ()
    in
    let out_gamma, out_beta = ln_params rng cfg.hidden in
    { attention; att_output; att_gamma; att_beta; intermediate_fc; out_fc;
      out_gamma; out_beta }
  in
  let emb scale rows =
    Tensor.init Datatype.F32 [| rows; cfg.hidden |] (fun _ ->
        Prng.uniform rng ~scale)
  in
  let emb_gamma, emb_beta = ln_params rng cfg.hidden in
  {
    cfg;
    token_embedding = emb 0.05 cfg.vocab;
    position_embedding = emb 0.05 cfg.max_seq;
    emb_gamma;
    emb_beta;
    encoder = Array.init cfg.layers (fun _ -> mk_layer ());
    dropout_p;
  }

let embed ?(training = false) ~rng t ids =
  let seq = Array.length ids in
  assert (seq <= t.cfg.max_seq);
  let x =
    Tensor.init Datatype.F32 [| seq; t.cfg.hidden |] (fun i ->
        Tensor.get t.token_embedding [| ids.(i.(0)); i.(1) |]
        +. Tensor.get t.position_embedding [| i.(0); i.(1) |])
  in
  let y = Tensor.create Datatype.F32 [| seq; t.cfg.hidden |] in
  Blocks.layernorm_rows_nostats ~eps:1e-12 ~inp:(Tensor.view2d x)
    ~gamma:(Tensor.view2d t.emb_gamma) ~beta:(Tensor.view2d t.emb_beta)
    ~out:(Tensor.view2d y);
  if training && t.dropout_p > 0.0 then begin
    let mask = Tensor.create Datatype.F32 [| seq; t.cfg.hidden |] in
    Blocks.dropout ~rng ~p:t.dropout_p ~inp:(Tensor.view2d y)
      ~mask:(Tensor.view2d mask) ~out:(Tensor.view2d y)
  end;
  y

(* dense + residual add + layernorm: the Listing 6 fusion (inference mode,
   dropout off) *)
let output_block ?nthreads fc gamma beta ~residual x =
  let dense = Fc.forward ?nthreads fc x in
  Tpp_binary.exec Tpp_binary.Add ~bcast:Tpp_binary.Full
    ~a:(Tensor.view2d dense) ~b:(Tensor.view2d residual)
    ~out:(Tensor.view2d dense);
  let y = Tensor.create Datatype.F32 (Tensor.dims dense) in
  Blocks.layernorm_rows_nostats ~eps:1e-12 ~inp:(Tensor.view2d dense)
    ~gamma:(Tensor.view2d gamma) ~beta:(Tensor.view2d beta)
    ~out:(Tensor.view2d y);
  y

let encoder_layer ?nthreads t layer x =
  ignore t;
  (* Bert-Self-Attention *)
  let att = Attention.forward ?nthreads layer.attention x in
  (* Bert-SelfOutput: dense + residual + layernorm *)
  let x1 =
    output_block ?nthreads layer.att_output layer.att_gamma layer.att_beta
      ~residual:x att
  in
  (* Bert-Intermediate: dense + GELU (fused in the FC post-op) *)
  let inter = Fc.forward ?nthreads layer.intermediate_fc x1 in
  (* Bert-Output: dense + residual + layernorm *)
  output_block ?nthreads layer.out_fc layer.out_gamma layer.out_beta
    ~residual:x1 inter

let forward ?nthreads ~rng t ids =
  let x = embed ~rng t ids in
  Array.fold_left (fun x l -> encoder_layer ?nthreads t l x) x t.encoder

(* naive reference for one layer *)
let reference_encoder_layer t layer x =
  ignore t;
  let ln x gamma beta =
    let cols = (Tensor.dims x).(1) in
    let g = Array.init cols (fun j -> Tensor.get gamma [| 0; j |]) in
    let b = Array.init cols (fun j -> Tensor.get beta [| 0; j |]) in
    Reference.layernorm_rows ~eps:1e-12 x g b
  in
  let fc_ref (fc : Fc.t) act x =
    let wt =
      Tensor.init Datatype.F32 [| fc.Fc.in_features; fc.Fc.out_features |]
        (fun i -> Tensor.get fc.Fc.weights [| i.(1); i.(0) |])
    in
    let y = Reference.matmul x wt in
    Tensor.init Datatype.F32 (Tensor.dims y) (fun i ->
        act (Tensor.get y i +. Tensor.get fc.Fc.bias [| i.(1) |]))
  in
  let add a b =
    Tensor.init Datatype.F32 (Tensor.dims a) (fun i ->
        Tensor.get a i +. Tensor.get b i)
  in
  let att = Attention.reference_forward layer.attention x in
  let x1 = ln (add (fc_ref layer.att_output Fun.id att) x) layer.att_gamma layer.att_beta in
  let inter = fc_ref layer.intermediate_fc Reference.gelu x1 in
  ln (add (fc_ref layer.out_fc Fun.id inter) x1) layer.out_gamma layer.out_beta

let layer_flops cfg ~seq =
  let h = float_of_int cfg.hidden
  and i = float_of_int cfg.intermediate
  and s = float_of_int seq in
  (* 4 attention projections + scores + context + 2 FFN matmuls *)
  (4.0 *. 2.0 *. s *. h *. h)
  +. (2.0 *. 2.0 *. s *. s *. h)
  +. (2.0 *. 2.0 *. s *. h *. i)

let forward_flops cfg ~seq = float_of_int cfg.layers *. layer_flops cfg ~seq

let train_step_flops cfg ~seq ~batch =
  3.0 *. float_of_int batch *. forward_flops cfg ~seq

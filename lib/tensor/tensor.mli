(** Dense N-dimensional tensors over a flat FP32 buffer.

    Tensors are row-major and contiguous. Each tensor carries a {!Datatype.t}
    tag; for [BF16] tensors every store rounds the value onto the BF16 grid
    (see {!Bf16}), matching hardware semantics where data at rest is BF16 and
    arithmetic accumulates in FP32.

    The TPP backend operates on {!View.t}: a strided 2D window into a
    tensor's buffer (offset, rows, cols, leading dimension), the exact
    sub-tensor granularity of the paper's TPPs. *)

type buffer =
  (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  data : buffer;
  dims : int array;
  strides : int array;  (** row-major element strides *)
  dtype : Datatype.t;
}

module View : sig
  (** A 2D window: element [(i, j)] lives at [off + i*ld + j]. *)
  type view = {
    data : buffer;
    off : int;
    rows : int;
    cols : int;
    ld : int;
    dtype : Datatype.t;
  }

  type t = view

  val get : t -> int -> int -> float

  (** Stores quantize to the view's dtype. *)
  val set : t -> int -> int -> float -> unit

  (** Sub-window at row/col offset within the view. *)
  val sub : t -> row:int -> col:int -> rows:int -> cols:int -> t
end

(** [create dtype dims] allocates a zero-filled tensor. *)
val create : Datatype.t -> int array -> t

(** [init dtype dims f] fills element-wise from multi-index. *)
val init : Datatype.t -> int array -> (int array -> float) -> t

(** Total number of elements. *)
val numel : t -> int

(** Number of dimensions. *)
val rank : t -> int

val dims : t -> int array
val dtype : t -> Datatype.t

(** Flat (linear, row-major) element access. Stores quantize to dtype. *)
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

(** Multi-index element access; index length must equal [rank]. *)
val get : t -> int array -> float
val set : t -> int array -> float -> unit

(** Linear offset of a multi-index. *)
val offset : t -> int array -> int

val fill : t -> float -> unit

(** Fill with uniform values in [-scale, scale) from [rng]. *)
val fill_random : t -> Prng.t -> scale:float -> unit

(** Deep copy (same dtype and contents). *)
val copy : t -> t

(** Same buffer reinterpreted with new dims; [numel] must be preserved. *)
val reshape : t -> int array -> t

(** [sub_rows t n] — the first [n] rows of the leading dimension as a
    tensor {e sharing storage} with [t] (no copy; writes are visible in
    both). The contiguous-prefix counterpart of {!View.sub}, used by
    capacity-backed buffers (e.g. the LLM KV cache) to expose only their
    valid prefix. *)
val sub_rows : t -> int -> t

(** Convert to another datatype (rounding values as needed). *)
val cast : t -> Datatype.t -> t

(** Element-wise maximum absolute difference. Dims must match. *)
val max_abs_diff : t -> t -> float

(** [approx_equal ?tol a b] — max |a-b| <= tol * (1 + max|reference|). *)
val approx_equal : ?tol:float -> t -> t -> bool

(** All elements as a list (tests only; small tensors). *)
val to_list : t -> float list

(** [view t idx ~rows ~cols] — 2D window whose top-left corner is
    multi-index [idx] (length = [rank t]), spanning [rows] of the
    second-to-last dimension and [cols] of the last dimension. *)
val view : t -> int array -> rows:int -> cols:int -> View.t

(** Whole rank-2 tensor as a view. *)
val view2d : t -> View.t

(** Arbitrary window by flat element offset — for kernels addressing
    blocked tensors by strides (BRGEMM stride variant). *)
val view_flat : t -> off:int -> rows:int -> cols:int -> ld:int -> View.t

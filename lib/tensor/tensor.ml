type buffer =
  (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  data : buffer;
  dims : int array;
  strides : int array;
  dtype : Datatype.t;
}

let compute_strides dims =
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  strides

let numel_of_dims dims = Array.fold_left ( * ) 1 dims

module View = struct
  type view = {
    data : buffer;
    off : int;
    rows : int;
    cols : int;
    ld : int;
    dtype : Datatype.t;
  }

  type t = view

  let get v i j = Bigarray.Array1.unsafe_get v.data (v.off + (i * v.ld) + j)

  let set v i j x =
    Bigarray.Array1.unsafe_set v.data
      (v.off + (i * v.ld) + j)
      (Datatype.quantize v.dtype x)

  let sub v ~row ~col ~rows ~cols =
    assert (row + rows <= v.rows && col + cols <= v.cols);
    { v with off = v.off + (row * v.ld) + col; rows; cols }
end

let create dtype dims =
  assert (Array.length dims > 0);
  Array.iter (fun d -> assert (d > 0)) dims;
  let data =
    Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout
      (numel_of_dims dims)
  in
  Bigarray.Array1.fill data 0.0;
  { data; dims = Array.copy dims; strides = compute_strides dims; dtype }

let numel t = numel_of_dims t.dims
let rank t = Array.length t.dims
let dims t = Array.copy t.dims
let dtype t = t.dtype

let get_flat t i = Bigarray.Array1.get t.data i

let set_flat t i x =
  Bigarray.Array1.set t.data i (Datatype.quantize t.dtype x)

let offset t idx =
  assert (Array.length idx = Array.length t.dims);
  let off = ref 0 in
  for d = 0 to Array.length idx - 1 do
    assert (idx.(d) >= 0 && idx.(d) < t.dims.(d));
    off := !off + (idx.(d) * t.strides.(d))
  done;
  !off

let get t idx = get_flat t (offset t idx)
let set t idx x = set_flat t (offset t idx) x

let iter_indices dims f =
  let n = Array.length dims in
  let idx = Array.make n 0 in
  let total = numel_of_dims dims in
  for _ = 1 to total do
    f idx;
    (* increment multi-index *)
    let d = ref (n - 1) in
    let carry = ref true in
    while !carry && !d >= 0 do
      idx.(!d) <- idx.(!d) + 1;
      if idx.(!d) = dims.(!d) then begin
        idx.(!d) <- 0;
        decr d
      end
      else carry := false
    done
  done

let init dtype dims f =
  let t = create dtype dims in
  let i = ref 0 in
  iter_indices dims (fun idx ->
      set_flat t !i (f idx);
      incr i);
  t

let fill t x =
  let q = Datatype.quantize t.dtype x in
  Bigarray.Array1.fill t.data q

let fill_random t rng ~scale =
  for i = 0 to numel t - 1 do
    set_flat t i (Prng.uniform rng ~scale)
  done

let copy t =
  let c = create t.dtype t.dims in
  Bigarray.Array1.blit t.data c.data;
  c

let reshape t new_dims =
  assert (numel_of_dims new_dims = numel t);
  {
    data = t.data;
    dims = Array.copy new_dims;
    strides = compute_strides new_dims;
    dtype = t.dtype;
  }

let sub_rows t n =
  assert (rank t >= 1);
  assert (n > 0 && n <= t.dims.(0));
  let dims = Array.copy t.dims in
  dims.(0) <- n;
  let row_elems = numel_of_dims dims / n in
  {
    data = Bigarray.Array1.sub t.data 0 (n * row_elems);
    dims;
    strides = compute_strides dims;
    dtype = t.dtype;
  }

let cast t dtype =
  if Datatype.equal dtype t.dtype then copy t
  else begin
    let c = create dtype t.dims in
    for i = 0 to numel t - 1 do
      set_flat c i (get_flat t i)
    done;
    c
  end

let max_abs_diff a b =
  assert (a.dims = b.dims);
  let m = ref 0.0 in
  for i = 0 to numel a - 1 do
    let d = Float.abs (get_flat a i -. get_flat b i) in
    if d > !m then m := d
  done;
  !m

let approx_equal ?(tol = 1e-5) a b =
  let ref_mag = ref 0.0 in
  for i = 0 to numel b - 1 do
    let v = Float.abs (get_flat b i) in
    if v > !ref_mag then ref_mag := v
  done;
  max_abs_diff a b <= tol *. (1.0 +. !ref_mag)

let to_list t = List.init (numel t) (get_flat t)

let view t idx ~rows ~cols =
  let r = rank t in
  assert (r >= 2 && Array.length idx = r);
  let off = ref 0 in
  for d = 0 to r - 1 do
    off := !off + (idx.(d) * t.strides.(d))
  done;
  assert (idx.(r - 2) + rows <= t.dims.(r - 2));
  assert (idx.(r - 1) + cols <= t.dims.(r - 1));
  {
    View.data = t.data;
    off = !off;
    rows;
    cols;
    ld = t.strides.(r - 2);
    dtype = t.dtype;
  }

let view2d t =
  assert (rank t = 2);
  view t [| 0; 0 |] ~rows:t.dims.(0) ~cols:t.dims.(1)

let view_flat t ~off ~rows ~cols ~ld =
  assert (off >= 0 && off + ((rows - 1) * ld) + cols <= numel t);
  { View.data = t.data; off; rows; cols; ld; dtype = t.dtype }

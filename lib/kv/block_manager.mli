(** Paged KV arena: per-layer K/V tensors carved into fixed-size token
    blocks with a free-list allocator and per-block refcounts, so several
    sequences (and the prefix trie) can share one physical copy of a
    block. Block [b] of layer [l] occupies rows
    [b*block_size, (b+1)*block_size) of [k_arena l] / [v_arena l]; one
    refcount per physical block covers all layers.

    Telemetry: [kv.pages.{allocated,freed,cow_copies}] counters plus the
    [kv.pages.{in_use,total}] occupancy gauges. Fault sites
    [kv.page.acquire] (arena pressure) and [kv.cow.copy] (failing COW)
    let the chaos harnesses drive the shed/retry paths. *)

val pages_allocated_name : string
val pages_freed_name : string
val cow_copies_name : string
val prefix_hits_name : string
val pages_in_use_name : string
val pages_total_name : string

type t

val create :
  ?block_size:int -> num_blocks:int -> layers:int -> hidden:int -> unit -> t

val block_size : t -> int
val num_blocks : t -> int
val layers : t -> int
val hidden : t -> int

(** Blocks currently on the free list. *)
val free_blocks : t -> int

(** Allocated (referenced) blocks; [free_blocks + live_blocks = num_blocks]
    always — the conservation identity the chaos harnesses check. *)
val live_blocks : t -> int

val k_arena : t -> int -> Tensor.t
val v_arena : t -> int -> Tensor.t

(** Re-publish the occupancy gauges (callers holding the arena at a
    quiescent point, e.g. Expose snapshots). *)
val publish : t -> unit

(** Pop a free block with refcount 1, or [`Denied] when the arena is
    exhausted (or the [kv.page.acquire] fault fires [`Deny]; an [Exn]
    rule raises instead — the retryable mid-flight path). *)
val acquire : t -> [ `Block of int | `Denied ]

(** Add a reference to a live block (sharing). Raises [Invalid_argument]
    on a free block. *)
val retain : t -> int -> unit

(** Drop a reference; the block returns to the free list at zero. Raises
    [Invalid_argument] on refcount underflow — a refcount can never go
    negative. *)
val release : t -> int -> unit

val refcount : t -> int -> int

(** [cow t b ~rows] — copy-on-write: allocate a fresh block, copy the
    first [rows] valid rows of [b] in every layer, drop the caller's
    reference on [b] and return the private copy. [`Denied] when the
    arena is exhausted or the [kv.cow.copy] fault fires [`Deny]; the
    shared source is left untouched either way. *)
val cow : t -> int -> rows:int -> [ `Block of int | `Denied ]

(** Arena-independent checkpoint of a sequence's valid K/V rows: per
    layer, token rows [0, xrows) packed densely. Carries no block ids,
    so it can be materialized into a different replica's arena with the
    exact row layout preserved — the property that keeps [Seq.gather]-fed
    attention bit-identical across a live migration. *)
type export = {
  xrows : int;
  xlayers : int;
  xhidden : int;
  xk : Tensor.t array;  (** layer -> [xrows x hidden], dense *)
  xv : Tensor.t array;
}

(** [import t e ~from] materializes export rows [from, xrows) into this
    arena: acquires the covering blocks (each refcount 1, governed by the
    [kv.page.acquire] fault site) and blits every layer's rows into their
    slots. All-or-nothing: on [`Denied] or an exception mid-import the
    partially acquired blocks are released first, leaving the destination
    arena untouched — the source snapshot stays the one live copy.
    [from] must be block-aligned (prefix re-attach covers only full trie
    chunks). Raises [Invalid_argument] on a shape/alignment mismatch. *)
val import : t -> export -> from:int -> [ `Blocks of int array | `Denied ]

(** [blit_rows ~hidden ~rows src ~src_row dst ~dst_row] — row copy
    between contiguous [_ x hidden] F32 buffers (exposed for {!Seq}). *)
val blit_rows :
  hidden:int ->
  rows:int ->
  Tensor.t ->
  src_row:int ->
  Tensor.t ->
  dst_row:int ->
  unit

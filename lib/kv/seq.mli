(** Per-request block table over a {!Block_manager} arena. The table
    carries no committed-row count — the owning cache's length is the
    single source of truth and every operation takes explicit row
    indices, so rewind-and-retry lines up exactly. *)

(** Arena exhausted (or [kv.page.acquire]/[kv.cow.copy] fired [`Deny])
    while extending a table mid-flight; the caller's retry/fail path
    owns recovery. *)
exception Out_of_blocks

type t

val create : Block_manager.t -> t
val manager : t -> Block_manager.t
val block_count : t -> int

(** Allocated rows ([block_count * block_size]). *)
val capacity : t -> int

(** Snapshot of the physical block ids, table order. *)
val blocks : t -> int array

(** Seed an empty table with shared blocks (a prefix-trie hit); each
    block gains a reference. *)
val attach : t -> blocks:int array -> unit

(** [ensure t ~len ~extra] makes rows [len, len+extra) writable: performs
    the copy-on-write when row [len] lands mid-block in a shared block,
    then extends the table from the free list.
    @raise Out_of_blocks on exhaustion or a fired [`Deny]. *)
val ensure : t -> len:int -> extra:int -> unit

(** Write [rows] K/V rows of one layer at token positions [at, at+rows);
    capacity must have been [ensure]d. *)
val append :
  t ->
  layer:int ->
  at:int ->
  rows:int ->
  k_src:Tensor.t ->
  v_src:Tensor.t ->
  unit

(** Gather token rows [0, rows) of one layer into contiguous scratch
    ([rows x hidden] prefixes of [k_dst]/[v_dst]) — the bridge that lets
    the dense attention kernels run unchanged over a block table. *)
val gather : t -> layer:int -> rows:int -> k_dst:Tensor.t -> v_dst:Tensor.t -> unit

(** Append already-owned blocks (e.g. fresh from {!Block_manager.import})
    — ownership transfer, no extra retain; the counterpart of [attach],
    which shares. *)
val adopt : t -> blocks:int array -> unit

(** [export t ~rows] snapshots token rows [0, rows) into a dense,
    arena-independent {!Block_manager.export}. A pure read — no refcount
    or table change — so the source sequence stays the live copy until a
    destination import commits. *)
val export : t -> rows:int -> Block_manager.export

(** Release every block past the one holding row [len-1] — frees exactly
    the tail blocks. *)
val truncate : t -> len:int -> unit

(** Release every block (the table becomes empty and reusable). *)
val release_all : t -> unit

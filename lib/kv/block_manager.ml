(* Paged KV arena: per-layer K/V tensors carved into fixed-size token
   blocks, a free-list allocator, and per-block refcounts so several
   sequences (and the prefix trie) can share one physical copy of a
   block. A shared block is never written in place — writers that need
   to extend a partially-filled shared block go through [cow], which
   copies the valid rows into a fresh block first (copy-on-write).

   Layout: block [b] of layer [l] is rows [b*block_size, (b+1)*block_size)
   of [k_arena l] / [v_arena l]. One refcount per *physical* block covers
   all layers — a token slot exists in every layer at the same offset, so
   allocation is per token position, not per (layer, position).

   Occupancy is published under the [kv.pages.*] telemetry names; the
   [kv.page.acquire] fault site models arena exhaustion ([`Denied]) and
   [kv.cow.copy] models a failing copy, so the chaos harnesses can drive
   the shed/retry paths deterministically. *)

let pages_allocated_name = "kv.pages.allocated"
let pages_freed_name = "kv.pages.freed"
let cow_copies_name = "kv.pages.cow_copies"
let prefix_hits_name = "kv.pages.prefix_hits"

(* gauges: pool occupancy (live blocks) and arena size *)
let pages_in_use_name = "kv.pages.in_use"
let pages_total_name = "kv.pages.total"

(* [`Deny] = arena pressure at allocation; Exn = transient allocator
   failure. Fired per block acquire, so periodic plans exercise both the
   admission (`Denied -> shed) and mid-flight (raise -> retry) paths. *)
let acquire_site = Fault.site "kv.page.acquire"

(* governs the copy half of copy-on-write: [`Deny] refuses the fresh
   block, Exn aborts the copy — either way the shared source block is
   left untouched and correctly refcounted *)
let cow_site = Fault.site "kv.cow.copy"

type t = {
  block_size : int;
  num_blocks : int;
  layers : int;
  hidden : int;
  k : Tensor.t array;  (* layer -> [num_blocks*block_size x hidden] *)
  v : Tensor.t array;
  refc : int array;
  mutable free : int list;
  mutable free_n : int;
  lock : Mutex.t;
  alloc_c : Telemetry.Counter.t;
  freed_c : Telemetry.Counter.t;
  cow_c : Telemetry.Counter.t;
  in_use_g : Telemetry.Gauge.t;
  total_g : Telemetry.Gauge.t;
}

let publish t =
  Telemetry.Gauge.set t.in_use_g (t.num_blocks - t.free_n);
  Telemetry.Gauge.set t.total_g t.num_blocks

let create ?(block_size = 16) ~num_blocks ~layers ~hidden () =
  assert (block_size > 0 && num_blocks > 0 && layers > 0 && hidden > 0);
  let rows = num_blocks * block_size in
  let arena () =
    Array.init layers (fun _ -> Tensor.create Datatype.F32 [| rows; hidden |])
  in
  let t =
    { block_size; num_blocks; layers; hidden; k = arena (); v = arena ();
      refc = Array.make num_blocks 0;
      free = List.init num_blocks Fun.id;
      free_n = num_blocks;
      lock = Mutex.create ();
      alloc_c = Telemetry.Counter.find_or_create pages_allocated_name;
      freed_c = Telemetry.Counter.find_or_create pages_freed_name;
      cow_c = Telemetry.Counter.find_or_create cow_copies_name;
      in_use_g = Telemetry.Gauge.find_or_create pages_in_use_name;
      total_g = Telemetry.Gauge.find_or_create pages_total_name }
  in
  publish t;
  t

let block_size t = t.block_size
let num_blocks t = t.num_blocks
let layers t = t.layers
let hidden t = t.hidden
let free_blocks t = t.free_n
let live_blocks t = t.num_blocks - t.free_n
let k_arena t l = t.k.(l)
let v_arena t l = t.v.(l)

let refcount t b =
  Mutex.lock t.lock;
  let r = t.refc.(b) in
  Mutex.unlock t.lock;
  r

(* allocation without the fault site — shared by [acquire] and [cow]
   (each path is governed by its own site). Caller holds no lock. *)
let alloc t =
  Mutex.lock t.lock;
  match t.free with
  | [] ->
    Mutex.unlock t.lock;
    `Denied
  | b :: rest ->
    t.free <- rest;
    t.free_n <- t.free_n - 1;
    t.refc.(b) <- 1;
    Telemetry.Counter.incr t.alloc_c;
    publish t;
    Mutex.unlock t.lock;
    `Block b

let acquire t =
  match Fault.fire acquire_site with
  | `Deny -> `Denied
  | `None | `Nan -> alloc t

let retain t b =
  Mutex.lock t.lock;
  if t.refc.(b) <= 0 then begin
    Mutex.unlock t.lock;
    invalid_arg "Block_manager.retain: block is free"
  end;
  t.refc.(b) <- t.refc.(b) + 1;
  Mutex.unlock t.lock

let release t b =
  Mutex.lock t.lock;
  if t.refc.(b) <= 0 then begin
    Mutex.unlock t.lock;
    invalid_arg "Block_manager.release: refcount underflow"
  end;
  t.refc.(b) <- t.refc.(b) - 1;
  if t.refc.(b) = 0 then begin
    t.free <- b :: t.free;
    t.free_n <- t.free_n + 1;
    Telemetry.Counter.incr t.freed_c
  end;
  publish t;
  Mutex.unlock t.lock

(* copy [rows] rows between contiguous [_ x hidden] F32 buffers *)
let blit_rows ~hidden ~rows (src : Tensor.t) ~src_row (dst : Tensor.t)
    ~dst_row =
  if rows > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src.Tensor.data (src_row * hidden) (rows * hidden))
      (Bigarray.Array1.sub dst.Tensor.data (dst_row * hidden) (rows * hidden))

(* ---- live-migration snapshot: dense export / arena import ----

   An [export] is an arena-independent checkpoint of a sequence's valid
   K/V rows: per layer, token rows [0, xrows) packed contiguously. It
   carries no block ids, so it can be materialized into a *different*
   replica's arena; because import writes row j of the export at token
   position j, a [Seq.gather] over the imported table reproduces exactly
   the dense K/V the source replica's attention saw — the row-layout
   preservation that keeps gather-fed attention bit-identical across a
   migration. *)
type export = {
  xrows : int;
  xlayers : int;
  xhidden : int;
  xk : Tensor.t array;  (* layer -> [xrows x hidden], dense *)
  xv : Tensor.t array;
}

(* Materialize export rows [from, xrows) into this arena: acquire the
   covering blocks (refcount 1 each, fault-governed like any acquire)
   and blit every layer's rows into their slots. All-or-nothing: a
   denial or an exception mid-import releases the partially acquired
   blocks before reporting, so a failed import leaves the destination
   arena untouched — the source snapshot stays the one live copy.
   [from] must be block-aligned (the caller's prefix re-attach covers
   only full trie chunks). *)
let import t (e : export) ~from =
  if e.xlayers <> t.layers || e.xhidden <> t.hidden then
    invalid_arg "Block_manager.import: export shape does not match arena";
  if from < 0 || from > e.xrows || from mod t.block_size <> 0 then
    invalid_arg "Block_manager.import: bad block-aligned offset";
  let rows = e.xrows - from in
  let nblocks = (rows + t.block_size - 1) / t.block_size in
  let acquired = ref [] in
  let cleanup () = List.iter (release t) !acquired in
  let rec grab n =
    if n = 0 then `Ok
    else
      match acquire t with
      | `Denied -> `Denied
      | `Block b ->
        acquired := b :: !acquired;
        grab (n - 1)
  in
  match grab nblocks with
  | `Denied ->
    cleanup ();
    `Denied
  | exception e ->
    cleanup ();
    raise e
  | `Ok ->
    let blocks = Array.of_list (List.rev !acquired) in
    Array.iteri
      (fun j b ->
        let n = min t.block_size (rows - (j * t.block_size)) in
        let src_row = from + (j * t.block_size) in
        for l = 0 to t.layers - 1 do
          blit_rows ~hidden:t.hidden ~rows:n e.xk.(l) ~src_row t.k.(l)
            ~dst_row:(b * t.block_size);
          blit_rows ~hidden:t.hidden ~rows:n e.xv.(l) ~src_row t.v.(l)
            ~dst_row:(b * t.block_size)
        done)
      blocks;
    `Blocks blocks

(* Copy-on-write: allocate a fresh block, copy the first [rows] valid
   rows of shared block [b] across every layer, drop this caller's
   reference on [b]. The source keeps its other references — readers of
   the shared copy never observe the write that motivated the COW. *)
let cow t b ~rows =
  assert (rows >= 0 && rows <= t.block_size);
  match Fault.fire cow_site with
  | `Deny -> `Denied
  | `None | `Nan -> (
    match alloc t with
    | `Denied -> `Denied
    | `Block nb ->
      for l = 0 to t.layers - 1 do
        blit_rows ~hidden:t.hidden ~rows t.k.(l)
          ~src_row:(b * t.block_size)
          t.k.(l)
          ~dst_row:(nb * t.block_size);
        blit_rows ~hidden:t.hidden ~rows t.v.(l)
          ~src_row:(b * t.block_size)
          t.v.(l)
          ~dst_row:(nb * t.block_size)
      done;
      Telemetry.Counter.incr t.cow_c;
      release t b;
      `Block nb)

(* Per-request block table over a Block_manager arena: an ordered list of
   physical block ids plus enough arithmetic to map token rows onto
   (block, slot) spans. The table itself carries no length — the owning
   Llm.kv_cache's [len] is the single source of truth for committed rows,
   and every operation takes explicit row indices, so a failed step's
   rewind ([truncate]) and the retry's re-append line up exactly.

   Sharing: [attach] seeds a fresh table with retained blocks (prefix
   hits); [ensure] performs the copy-on-write when an append would write
   into a partially-filled block someone else still references. *)

exception Out_of_blocks

type t = {
  mgr : Block_manager.t;
  mutable blocks : int array;  (* physical ids, table order; prefix valid *)
  mutable nblocks : int;
}

let create mgr = { mgr; blocks = [||]; nblocks = 0 }
let manager t = t.mgr
let block_count t = t.nblocks
let capacity t = t.nblocks * Block_manager.block_size t.mgr
let blocks t = Array.sub t.blocks 0 t.nblocks

let push t b =
  if t.nblocks = Array.length t.blocks then begin
    let cap = max 4 (2 * Array.length t.blocks) in
    let grown = Array.make cap 0 in
    Array.blit t.blocks 0 grown 0 t.nblocks;
    t.blocks <- grown
  end;
  t.blocks.(t.nblocks) <- b;
  t.nblocks <- t.nblocks + 1

(* seed an empty table with shared blocks (a prefix-trie hit): each block
   gains a reference; the caller owns the matching [len] bookkeeping *)
let attach t ~blocks =
  assert (t.nblocks = 0);
  Array.iter (Block_manager.retain t.mgr) blocks;
  t.blocks <- Array.copy blocks;
  t.nblocks <- Array.length blocks

(* Make room for [extra] rows after row [len]: COW the tail block when
   row [len] lands mid-block in a shared one, then extend the table from
   the free list. Raises [Out_of_blocks] on exhaustion or a fired
   [`Deny] — the caller's retry/fail path owns recovery. *)
let ensure t ~len ~extra =
  let bs = Block_manager.block_size t.mgr in
  assert (len >= 0 && len <= t.nblocks * bs);
  if extra > 0 && len mod bs <> 0 then begin
    let bi = len / bs in
    let b = t.blocks.(bi) in
    if Block_manager.refcount t.mgr b > 1 then
      match Block_manager.cow t.mgr b ~rows:(len mod bs) with
      | `Denied -> raise Out_of_blocks
      | `Block nb -> t.blocks.(bi) <- nb
  end;
  let needed = (len + extra + bs - 1) / bs in
  while t.nblocks < needed do
    match Block_manager.acquire t.mgr with
    | `Denied -> raise Out_of_blocks
    | `Block b -> push t b
  done

(* map token rows [at, at+rows) onto contiguous (block, slot) spans;
   [off] is the offset into the caller's flat row stream *)
let iter_spans t ~at ~rows f =
  let bs = Block_manager.block_size t.mgr in
  let rec go at off rows =
    if rows > 0 then begin
      let bi = at / bs and slot = at mod bs in
      let n = min rows (bs - slot) in
      f ~block:t.blocks.(bi) ~slot ~off ~n;
      go (at + n) (off + n) (rows - n)
    end
  in
  go at 0 rows

(* write [rows] K/V rows for one layer at token positions [at, at+rows);
   the caller has [ensure]d capacity (and COW) beforehand *)
let append t ~layer ~at ~rows ~k_src ~v_src =
  let bs = Block_manager.block_size t.mgr in
  let hidden = Block_manager.hidden t.mgr in
  let ka = Block_manager.k_arena t.mgr layer in
  let va = Block_manager.v_arena t.mgr layer in
  iter_spans t ~at ~rows (fun ~block ~slot ~off ~n ->
      let dst_row = (block * bs) + slot in
      Block_manager.blit_rows ~hidden ~rows:n k_src ~src_row:off ka ~dst_row;
      Block_manager.blit_rows ~hidden ~rows:n v_src ~src_row:off va ~dst_row)

(* gather token rows [0, rows) of one layer into contiguous scratch —
   the bridge that lets the existing dense attention kernels run
   unchanged over a block table *)
let gather t ~layer ~rows ~k_dst ~v_dst =
  let bs = Block_manager.block_size t.mgr in
  let hidden = Block_manager.hidden t.mgr in
  let ka = Block_manager.k_arena t.mgr layer in
  let va = Block_manager.v_arena t.mgr layer in
  iter_spans t ~at:0 ~rows (fun ~block ~slot ~off ~n ->
      let src_row = (block * bs) + slot in
      Block_manager.blit_rows ~hidden ~rows:n ka ~src_row k_dst ~dst_row:off;
      Block_manager.blit_rows ~hidden ~rows:n va ~src_row v_dst ~dst_row:off)

(* append already-owned blocks (refcount held by the caller, e.g. fresh
   from [Block_manager.import]) — ownership transfer, no extra retain;
   the counterpart of [attach], which shares *)
let adopt t ~blocks = Array.iter (push t) blocks

(* snapshot rows [0, rows) into a dense, arena-independent export — a
   pure read of the source arena (no refcount or table change), so the
   source stays the live copy until a destination import commits *)
let export t ~rows =
  let mgr = t.mgr in
  let layers = Block_manager.layers mgr in
  let hidden = Block_manager.hidden mgr in
  let dense () =
    Array.init layers (fun _ ->
        Tensor.create Datatype.F32 [| max rows 1; hidden |])
  in
  let xk = dense () and xv = dense () in
  for l = 0 to layers - 1 do
    gather t ~layer:l ~rows ~k_dst:xk.(l) ~v_dst:xv.(l)
  done;
  { Block_manager.xrows = rows; xlayers = layers; xhidden = hidden; xk; xv }

(* drop every block past the one holding row [len-1] — frees exactly the
   tail blocks; a truncated-to shared block keeps its other references *)
let truncate t ~len =
  assert (len >= 0);
  let bs = Block_manager.block_size t.mgr in
  let keep = (len + bs - 1) / bs in
  while t.nblocks > keep do
    t.nblocks <- t.nblocks - 1;
    Block_manager.release t.mgr t.blocks.(t.nblocks)
  done

let release_all t = truncate t ~len:0

(** Shared-prefix deduplication: a trie over [block_size]-sized chunks of
    prompt token ids, each node pinning one physical block of prompt K/V
    state. Keyed on chunk hashes, compared on the full token arrays (hash
    collisions cannot alias prompts). Hits count into
    [kv.pages.prefix_hits]. *)

type t

(** [create ?max_pinned mgr] — the trie holds at most [max_pinned] block
    references (default: half the arena), bounding how much memory
    sharing may pin. *)
val create : ?max_pinned:int -> Block_manager.t -> t

(** Blocks currently pinned by the trie. *)
val pinned : t -> int

(** [lookup t ~prompt] — the longest chain of full prompt chunks present:
    the pinned blocks (in prompt order, {e not} retained — attach them to
    a {!Seq} to take references) and the token count they cover (a
    multiple of the block size). *)
val lookup : t -> prompt:int array -> int array * int

(** [insert t ~prompt ~blocks] — register a prefilled prompt, pinning
    [blocks.(i)] for each full chunk [i] not already present. Existing
    chunks keep their blocks (dedup); insertion stops at the pin
    budget. *)
val insert : t -> prompt:int array -> blocks:int array -> unit

(** Release every pinned block and empty the trie. *)
val flush : t -> unit

(* Shared-prefix deduplication: a trie over block_size-sized chunks of
   prompt token ids. Each node pins one physical block (a reference held
   by the trie) whose K/V rows are the chunk's attention state — valid
   for every request whose prompt starts with the same chunks, because a
   causal position's K/V depends only on the tokens at and before it.

   Matching is exact: nodes are keyed on a hash of the chunk but compared
   on the full token array, so hash collisions cannot alias prompts.
   Only full chunks are ever shared — a partially-filled tail block is
   private to its request until it fills (and COW keeps it private even
   when attached mid-block).

   The pin budget ([max_pinned], default half the arena) bounds how much
   of the arena the trie may hold; insertion past the budget stops
   quietly rather than evicting — the shared system-prompt workload this
   targets re-registers hot prefixes constantly, so cold chains simply
   never get pinned. *)

type node = {
  hash : int;
  chunk : int array;
  block : int;
  mutable children : node list;
}

type t = {
  mgr : Block_manager.t;
  mutable roots : node list;
  mutable pinned : int;
  max_pinned : int;
  hits_c : Telemetry.Counter.t;
}

let create ?max_pinned mgr =
  let mp =
    match max_pinned with
    | Some m -> max 1 m
    | None -> max 1 (Block_manager.num_blocks mgr / 2)
  in
  { mgr; roots = []; pinned = 0; max_pinned = mp;
    hits_c = Telemetry.Counter.find_or_create Block_manager.prefix_hits_name }

let pinned t = t.pinned

let chunk_of prompt i bs = Array.sub prompt (i * bs) bs

let find nodes h c =
  List.find_opt (fun n -> n.hash = h && n.chunk = c) nodes

(* longest chain of full prompt chunks present in the trie: the pinned
   blocks (not retained here — the caller attaches, which retains) and
   the token count they cover. Each matched block is a prefix hit. *)
let lookup t ~prompt =
  let bs = Block_manager.block_size t.mgr in
  let nchunks = Array.length prompt / bs in
  let rec go i nodes acc =
    if i >= nchunks then acc
    else
      let c = chunk_of prompt i bs in
      match find nodes (Hashtbl.hash c) c with
      | None -> acc
      | Some n ->
        Telemetry.Counter.incr t.hits_c;
        go (i + 1) n.children (n.block :: acc)
  in
  let matched = List.rev (go 0 t.roots []) in
  (Array.of_list matched, List.length matched * bs)

(* register a prefilled request's prompt: walk/create a node per full
   chunk, pinning the request's block for each newly created node. A
   chunk already present keeps its existing block (dedup); creation
   stops at the pin budget — deeper chunks would dangle without their
   ancestors anyway. *)
let insert t ~prompt ~blocks =
  let bs = Block_manager.block_size t.mgr in
  let nchunks = min (Array.length prompt / bs) (Array.length blocks) in
  let children_of = function None -> t.roots | Some p -> p.children in
  let set_children parent l =
    match parent with None -> t.roots <- l | Some p -> p.children <- l
  in
  let rec go i parent =
    if i < nchunks then begin
      let c = chunk_of prompt i bs in
      let h = Hashtbl.hash c in
      match find (children_of parent) h c with
      | Some n -> go (i + 1) (Some n)
      | None ->
        if t.pinned < t.max_pinned then begin
          let b = blocks.(i) in
          Block_manager.retain t.mgr b;
          t.pinned <- t.pinned + 1;
          let n = { hash = h; chunk = c; block = b; children = [] } in
          set_children parent (n :: children_of parent);
          go (i + 1) (Some n)
        end
    end
  in
  go 0 None

(* drop every pin — after this (and all sequences released) the arena
   free list must equal its size again *)
let flush t =
  let rec rel n =
    Block_manager.release t.mgr n.block;
    List.iter rel n.children
  in
  List.iter rel t.roots;
  t.roots <- [];
  t.pinned <- 0

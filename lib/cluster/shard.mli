(** Tensor-parallel shard layer: adapts {!Llm.tp_plan} to the
    scheduler's pluggable {!Serve.Scheduler.engine}, so a replica runs
    its GEMM/attention layers column-split across its slice of the
    persistent Team pool. Sharded execution is bit-identical to the
    unsharded path — swapping the engine changes only where the FLOPs
    run. *)

(** Engine over an existing plan. *)
val engine : Llm.tp_plan -> Serve.Scheduler.engine

(** [engine_for ?nthreads llm ~shards] — [shards <= 1] yields the
    classic single-team engine (kernels parallelized by [nthreads]);
    [shards > 1] builds a tensor-parallel plan, or returns [Error] with
    the shape constraint that failed. *)
val engine_for :
  ?nthreads:int -> Llm.t -> shards:int -> (Serve.Scheduler.engine, string) result

(** Dedicated prefill replica (prefill/decode disaggregation): runs only
    the compute-bound first-token phase against its own {!Serve.Kv_pool},
    then hands the filled KV state to the decode tier through a
    {!Kv_handoff}. The handoff entry's exactly-once release returns the
    cache to this pool when the decode side retires the session.

    Accounting split: the prefiller counts submission, TTFT and the first
    token; the adopting decode replica counts the rest — together the two
    sides cover each request exactly once. The [cluster.prefill] fault
    site fires ahead of each prefill (no retry here; retry-with-rewind
    lives in the decode tier's scheduler). *)

type config = {
  max_queue : int;
  kv_cap : int;  (** initial rows of pooled KV caches *)
  max_live : int;  (** concurrent live caches (incl. in-handoff ones) *)
  replica : int;  (** telemetry index: observes into [serve.r<i>.*] *)
}

(** queue 64, 16 KV rows, 8 live caches, replica 0. *)
val default_config : config

type t

(** [create ?config ?engine ?policy llm ~handoff] — the default engine
    is the unsharded [Llm.prefill]; pass {!Shard.engine} for
    tensor-parallel prefill. [policy] is the pool's KV storage policy
    (default contiguous): under [Paged] the handoff carries block
    tables over this prefiller's arena — the decode tier appends into
    the same blocks and the exactly-once release returns them here. *)
val create :
  ?config:config ->
  ?engine:Serve.Scheduler.engine ->
  ?policy:Serve.Kv_pool.policy ->
  Llm.t ->
  handoff:Kv_handoff.t ->
  t

(** Mirrors [Scheduler.submit]: [false] = rejected (queue full or
    deadline already blown). *)
val submit : t -> now:float -> Serve.Request.t -> bool

(** Run at most one prefill (pop head, acquire KV, prefill, hand off);
    [false] when nothing could progress — empty queue, full handoff, or
    a tolerated KV denial. Single-token requests finish here; a refused
    handoff or a failed prefill reclaims the cache and fails the
    request. *)
val step : t -> now:(unit -> float) -> bool

val busy : t -> bool
val queue_depth : t -> int
val tokens_emitted : t -> int
val pool : t -> Serve.Kv_pool.t

(** Submission ledger, oldest first. *)
val requests : t -> Serve.Request.t list

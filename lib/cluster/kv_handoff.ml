(* Bounded prefill -> decode KV handoff channel — the disaggregation seam.
   A prefill replica pushes a finished prefill (request + filled KV cache)
   and a decode replica adopts it; the cache never moves or copies, only
   ownership does. The [release] stored with each entry returns the cache
   to the pool that created it (the prefill side's), and it is wrapped to
   fire exactly once — a buggy double retirement is swallowed and counted
   under [cluster.handoff.double_release] instead of corrupting the pool's
   occupancy accounting. *)

type entry = {
  req : Serve.Request.t;
  cache : Llm.kv_cache;
  release : Llm.kv_cache -> unit;  (* exactly-once, owning-pool release *)
}

(* fires inside [push]: Deny simulates a full channel, Exn a transport
   failure — both exercise the prefiller's reclaim path *)
let push_site = Fault.site "cluster.handoff.push"

let pushed_name = "cluster.handoff.pushed"
let popped_name = "cluster.handoff.popped"
let double_release_name = "cluster.handoff.double_release"
let depth_name = "cluster.handoff.depth"

type t = {
  cap : int;
  mutable items : entry list;  (* oldest first *)
  pushed_c : Telemetry.Counter.t;
  popped_c : Telemetry.Counter.t;
  double_release_c : Telemetry.Counter.t;
  depth_g : Telemetry.Gauge.t;
}

let create ?(cap = 16) () =
  assert (cap > 0);
  { cap;
    items = [];
    pushed_c = Telemetry.Counter.find_or_create pushed_name;
    popped_c = Telemetry.Counter.find_or_create popped_name;
    double_release_c = Telemetry.Counter.find_or_create double_release_name;
    depth_g = Telemetry.Gauge.find_or_create depth_name }

let depth t = List.length t.items
let is_full t = depth t >= t.cap

(* wrap an owning-pool release so retirement can only happen once *)
let once t ~release =
  let released = ref false in
  fun cache ->
    if !released then Telemetry.Counter.incr t.double_release_c
    else begin
      released := true;
      release cache
    end

let push t ~req ~cache ~release =
  match Fault.fire push_site with
  | `Deny -> `Full
  | `None | `Nan ->
    if is_full t then `Full
    else begin
      t.items <- t.items @ [ { req; cache; release = once t ~release } ];
      Telemetry.Counter.incr t.pushed_c;
      Telemetry.Gauge.set t.depth_g (depth t);
      `Ok
    end

let pop t =
  match t.items with
  | [] -> None
  | e :: rest ->
    t.items <- rest;
    Telemetry.Counter.incr t.popped_c;
    Telemetry.Gauge.set t.depth_g (depth t);
    Some e

(* put back an entry a full decode batch could not adopt — head position,
   so handoff order is preserved; no push/pop accounting *)
let requeue t e =
  t.items <- e :: t.items;
  Telemetry.Gauge.set t.depth_g (depth t)

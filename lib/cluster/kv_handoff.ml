(* Bounded handoff channels — the seam work crosses when it moves between
   replicas. The generic ['a chan] is a capacity-bounded FIFO with
   push/pop/requeue and depth telemetry; [`Full] is backpressure the
   producer must handle structurally (reclaim, drain-and-retry), never a
   silent drop. Two instantiations live here:

   - the prefill -> decode KV handoff ([t], the disaggregation seam): a
     prefill replica pushes a finished prefill (request + filled KV
     cache) and a decode replica adopts it; the cache never moves or
     copies, only ownership does. The [release] stored with each entry
     returns the cache to the pool that created it (the prefill side's),
     wrapped to fire exactly once — a buggy double retirement is
     swallowed and counted under [cluster.handoff.double_release]
     instead of corrupting the pool's occupancy accounting.

   - the migration channel (built by the router from the same ['a chan]):
     detached in-flight sessions in transit during a hard-kill
     failover. *)

type 'a chan = {
  ccap : int;
  mutable citems : 'a list;  (* oldest first *)
  cpushed_c : Telemetry.Counter.t;
  cpopped_c : Telemetry.Counter.t;
  cdepth_g : Telemetry.Gauge.t;
}

(* the channel is "full" when at [cap] — a structured, retryable
   condition: producers reclaim or drain-and-retry, they never drop *)
exception Backpressure of string

let chan_create ?(cap = 16) ~pushed ~popped ~depth () =
  assert (cap > 0);
  { ccap = cap;
    citems = [];
    cpushed_c = Telemetry.Counter.find_or_create pushed;
    cpopped_c = Telemetry.Counter.find_or_create popped;
    cdepth_g = Telemetry.Gauge.find_or_create depth }

let chan_depth c = List.length c.citems
let chan_is_full c = chan_depth c >= c.ccap

let chan_push c x =
  if chan_is_full c then `Full
  else begin
    c.citems <- c.citems @ [ x ];
    Telemetry.Counter.incr c.cpushed_c;
    Telemetry.Gauge.set c.cdepth_g (chan_depth c);
    `Ok
  end

let chan_pop c =
  match c.citems with
  | [] -> None
  | x :: rest ->
    c.citems <- rest;
    Telemetry.Counter.incr c.cpopped_c;
    Telemetry.Gauge.set c.cdepth_g (chan_depth c);
    Some x

(* put back an item a consumer could not take — head position, so channel
   order is preserved; no push/pop accounting *)
let chan_requeue c x =
  c.citems <- x :: c.citems;
  Telemetry.Gauge.set c.cdepth_g (chan_depth c)

(* ---- the prefill -> decode instantiation ---- *)

type entry = {
  req : Serve.Request.t;
  cache : Llm.kv_cache;
  release : Llm.kv_cache -> unit;  (* exactly-once, owning-pool release *)
}

(* fires inside [push]: Deny simulates a full channel, Exn a transport
   failure — both exercise the prefiller's reclaim path *)
let push_site = Fault.site "cluster.handoff.push"

(* causal-trace lane label for the cross-replica handoff seam *)
let lbl_handoff = Telemetry.Recorder.intern "cluster.handoff"

let pushed_name = "cluster.handoff.pushed"
let popped_name = "cluster.handoff.popped"
let double_release_name = "cluster.handoff.double_release"
let depth_name = "cluster.handoff.depth"

type t = entry chan

let create ?(cap = 16) () =
  chan_create ~cap ~pushed:pushed_name ~popped:popped_name ~depth:depth_name
    ()

let depth = chan_depth
let is_full = chan_is_full

(* wrap an owning-pool release so retirement can only happen once *)
let once ~release =
  let double_release_c =
    Telemetry.Counter.find_or_create double_release_name
  in
  let released = ref false in
  fun cache ->
    if !released then Telemetry.Counter.incr double_release_c
    else begin
      released := true;
      release cache
    end

let push t ~req ~cache ~release =
  match Fault.fire push_site with
  | `Deny -> `Full
  | `None | `Nan -> (
    match chan_push t { req; cache; release = once ~release } with
    | `Ok ->
      Telemetry.Recorder.emit Telemetry.Recorder.Trace_handoff
        ~label:lbl_handoff ~a:req.Serve.Request.trace ~b:(chan_depth t);
      `Ok
    | `Full -> `Full)

let pop = chan_pop
let requeue = chan_requeue

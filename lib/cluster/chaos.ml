(* Cluster chaos harness: drive the router fleet under a seeded fault
   plan with a mid-run replica quarantine, and check the router-level
   conservation invariants on top of everything Serve.Chaos establishes
   for a single scheduler:

     - liveness: the fleet drains within the step budget;
     - router-ledger conservation: every routed request reaches a
       terminal state; finished + rejected + cancelled + failed =
       submitted; every id appears exactly once in the router ledger and
       in at most one decode replica's ledger (quarantine re-routes move
       requests, never duplicate them);
     - no double serve: no request carries more outputs than its
       [new_tokens]; finished requests carry exactly [new_tokens];
     - quarantine isolation: the quarantined replica's ledger does not
       grow after the quarantine (no new routes, no adoptions);
     - fleet drain: every KV pool (decode replicas + prefiller) reports
       zero caches in use and the handoff channel is empty;
     - exactly-once handoff release: the double-release counter stays 0;
     - bit-identity: every finished request's outputs equal a solo
       fault-free replay on the same model — sharding, placement,
       disaggregation and recovery must be semantically invisible.

   The drive is virtual-clock and fault triggers are invocation-count
   based, so a seed reproduces the same schedule anywhere. *)

type config = {
  seed : int;
  requests : int;
  replicas : int;
  shards : int;
  disaggregate : bool;
  placement : Router.placement;
  prompt_len : Serve.Load_gen.dist;
  new_tokens : Serve.Load_gen.dist;
  shared_prefix : int;
      (* tokens of a common prefix prepended to every prompt (0 = none):
         with a paged scheduler config this exercises prefix sharing and
         COW across the whole fleet *)
  arrival_gap_s : float;  (* virtual seconds between arrivals *)
  deadline_s : float;
  dt_s : float;  (* virtual seconds per drive step *)
  scheduler : Serve.Scheduler.config;
  handoff_cap : int;
  quarantine_step : int;
      (* drive step at which the quarantine fires; -1 = never *)
  quarantine_replica : int;
  hard_kill_step : int;
      (* drive step at which a replica hard-fails (in-flight sessions
         migrate); -1 = never *)
  hard_kill_replica : int;
  plan : Fault.plan option;  (* None = default_plan seed *)
  max_steps : int;
}

let default =
  { seed = 42;
    requests = 24;
    replicas = 3;
    shards = 1;
    disaggregate = false;
    placement = Router.Round_robin;
    prompt_len = Serve.Load_gen.Uniform (2, 6);
    new_tokens = Serve.Load_gen.Uniform (1, 5);
    shared_prefix = 0;
    arrival_gap_s = 0.01;
    deadline_s = Float.infinity;
    dt_s = 0.002;
    scheduler =
      { Serve.Scheduler.default_config with
        max_batch = 4; nthreads = Some 1; kv_cap = 8; max_retries = 4;
        check_numerics = true };
    handoff_cap = 8;
    quarantine_step = 40;
    quarantine_replica = 1;
    hard_kill_step = -1;
    hard_kill_replica = 1;
    plan = None;
    max_steps = 50_000 }

(* Hard-kill scenario: one arrival per drive step and longer decodes so
   the victim has sessions mid-decode when it dies — migration, not
   drain-in-place, is what the invariants then exercise (the quarantine
   path is disabled). *)
let hard_kill =
  { default with
    new_tokens = Serve.Load_gen.Uniform (8, 14);
    arrival_gap_s = default.dt_s;
    quarantine_step = -1;
    hard_kill_step = 12;
    hard_kill_replica = 1 }

(* Router/handoff/prefill sites plus the serve-level transients; the
   periods keep each fault a transient so the conservation ledger — not
   wholesale failure — is what gets exercised. *)
let default_plan seed =
  let nth first period = Fault.Nth { first; period = Some period } in
  { Fault.seed;
    rules =
      [ { rsite = "serve.prefill"; rkind = Fault.Exn; rtrigger = nth 3 9 };
        { rsite = "serve.decode"; rkind = Fault.Exn; rtrigger = nth 4 11 };
        { rsite = "serve.kv.acquire"; rkind = Fault.Deny; rtrigger = nth 3 13 };
        { rsite = "cluster.router.route"; rkind = Fault.Deny;
          rtrigger = nth 7 19 };
        { rsite = "cluster.router.route"; rkind = Fault.Exn;
          rtrigger = nth 11 23 };
        { rsite = "cluster.prefill"; rkind = Fault.Exn; rtrigger = nth 5 9 };
        { rsite = "cluster.handoff.push"; rkind = Fault.Deny;
          rtrigger = nth 4 17 };
        (* paged-KV sites — inert unless the scheduler config is paged *)
        { rsite = "kv.page.acquire"; rkind = Fault.Deny; rtrigger = nth 6 17 };
        { rsite = "kv.cow.copy"; rkind = Fault.Exn; rtrigger = nth 2 7 };
        (* migration sites — inert unless a hard kill fires mid-run. An
           export Exn fails that session in place (still conserved); an
           import Deny forces the router to retry the next replica. *)
        { rsite = "cluster.migrate.export"; rkind = Fault.Exn;
          rtrigger = nth 4 9 };
        { rsite = "cluster.migrate.import"; rkind = Fault.Deny;
          rtrigger = nth 2 5 }
      ] }

type report = {
  steps : int;
  terminated : bool;
  submitted : int;
  finished : int;
  rejected : int;
  cancelled : int;
  failed : int;
  routed : int;
  rerouted : int;
  resubmitted : int;
  adopted : int;
  route_faults : int;
  migrations_started : int;
  migrations_completed : int;
  migrations_failed : int;
  injected : int;
  retries : int;
  shed : int;
  denied : int;
  double_released : int;
  compared : int;
  mismatched : int;
  fleet_slo_ttft : int;  (* fleet SLO-burn gauges after the drain *)
  fleet_slo_deadline : int;
  traces_checked : int;  (* causal timelines verified complete (0 when
                            the flight recorder is disabled) *)
  migrated_traced : int;  (* timelines carrying a detach→resume join *)
  violations : string list;
}

let make_trace cfg ~vocab =
  let rng = Prng.create cfg.seed in
  let shared =
    Array.init (max 0 cfg.shared_prefix) (fun _ -> Prng.int rng vocab)
  in
  List.init cfg.requests (fun id ->
      let plen = max 1 (Serve.Load_gen.sample rng cfg.prompt_len) in
      let glen = max 1 (Serve.Load_gen.sample rng cfg.new_tokens) in
      let prompt =
        Array.append shared (Array.init plen (fun _ -> Prng.int rng vocab))
      in
      let gen = Array.init glen (fun _ -> Prng.int rng vocab) in
      ( cfg.arrival_gap_s *. float_of_int id,
        Serve.Request.make ~id ~prompt ~gen ~deadline_s:cfg.deadline_s () ))

(* fault-free solo replay — the bit-identity reference for one request *)
let replay_solo llm (req : Serve.Request.t) =
  let cache = Llm.new_cache llm in
  let first = Llm.prefill llm cache (Llm.embed llm req.Serve.Request.prompt) in
  let outs = ref [ first ] in
  for k = 0 to req.Serve.Request.new_tokens - 2 do
    outs :=
      Llm.decode_step llm cache (Llm.embed llm [| req.Serve.Request.gen.(k) |])
      :: !outs
  done;
  List.rev !outs

let counter_names =
  [ Telemetry.Registry.fault_injected_name;
    Telemetry.Registry.fault_retries_name;
    Telemetry.Registry.fault_shed_name;
    Serve.Metrics.kv_denied_name;
    Router.routed_name;
    Router.rerouted_name;
    Router.resubmitted_name;
    Router.adopted_name;
    Router.route_faults_name;
    Router.migrations_started_name;
    Router.migrations_completed_name;
    Router.migrations_failed_name;
    Kv_handoff.double_release_name ]

let snapshot () = List.map Telemetry.Counter.value counter_names

let run ?(config = default) () =
  assert (config.quarantine_replica >= 0
          && config.quarantine_replica < config.replicas);
  assert (config.hard_kill_step < 0
          || (config.hard_kill_replica >= 0
             && config.hard_kill_replica < config.replicas));
  let llm = Llm.create ~rng:(Prng.create 7) ~block:8 Llm.tiny in
  let vocab = (Llm.config llm).Llm.vocab in
  Fault.clear ();
  Fun.protect
    ~finally:(fun () -> Fault.clear ())
    (fun () ->
      let rcfg =
        { Router.replicas = config.replicas;
          shards = config.shards;
          disaggregate = config.disaggregate;
          placement = config.placement;
          scheduler = config.scheduler;
          handoff_cap = config.handoff_cap;
          prefill_queue = config.requests + 1 }
      in
      (* a clean flight recorder per run: request ids recur across runs
         in one process, and the trace-conservation checks below read
         whole timelines back from the rings — bigger rings keep early
         spans from being evicted first *)
      let rec_on = Telemetry.Recorder.enabled () in
      if rec_on then begin
        Telemetry.Recorder.set_capacity 65536;
        Telemetry.Recorder.reset ();
        Telemetry.Trace.reset ()
      end;
      let router =
        match Router.create ~config:rcfg llm with
        | Ok r -> r
        | Error e -> failwith ("cluster chaos: " ^ e)
      in
      let trace = make_trace config ~vocab in
      let plan =
        match config.plan with
        | Some p -> p
        | None -> default_plan config.seed
      in
      let before = snapshot () in
      Fault.install plan;
      (* virtual-clock drive with the quarantine at a fixed step *)
      let vnow = ref 0.0 in
      let now () = !vnow in
      let pending = ref trace in
      let steps = ref 0 in
      let live = ref true in
      let q_ledger_after = ref (-1) in
      let qsched = (Router.schedulers router).(config.quarantine_replica) in
      (* hard-kill bookkeeping: the victim's ledger ids at the kill
         (after detach moved the in-flight sessions out) — the frozen
         set the isolation invariant checks against *)
      let hk_ids = ref None in
      let ksched = (Router.schedulers router).(config.hard_kill_replica) in
      while !live && !steps < config.max_steps do
        let rec admit_due () =
          match !pending with
          | (at, r) :: rest when at <= !vnow ->
            ignore (Router.submit router ~now:!vnow r);
            pending := rest;
            admit_due ()
          | _ -> ()
        in
        admit_due ();
        if !steps = config.quarantine_step then begin
          Router.quarantine router config.quarantine_replica;
          q_ledger_after :=
            List.length (Serve.Scheduler.requests qsched)
        end;
        if !steps = config.hard_kill_step then begin
          Router.hard_fail router ~now:!vnow config.hard_kill_replica;
          hk_ids :=
            Some
              (List.map
                 (fun (r : Serve.Request.t) -> r.Serve.Request.id)
                 (Serve.Scheduler.requests ksched))
        end;
        ignore (Router.step router ~now);
        incr steps;
        vnow := !vnow +. config.dt_s;
        live := !pending <> [] || Router.busy router
      done;
      let terminated = (not !live) && !pending = [] in
      Fault.clear ();
      let delta = List.map2 (fun a b -> b - a) before (snapshot ()) in
      let ( injected, retries, shed, denied, routed, rerouted, resubmitted,
            adopted, route_faults, migrations_started, migrations_completed,
            migrations_failed, double_released ) =
        match delta with
        | [ a; b; c; d; e; f; g; h; i; j; k; l; m ] ->
          (a, b, c, d, e, f, g, h, i, j, k, l, m)
        | _ -> assert false
      in
      let reqs = Router.requests router in
      let count st =
        List.length
          (List.filter (fun r -> r.Serve.Request.state = st) reqs)
      in
      let finished = count Serve.Request.Finished in
      let rejected = count Serve.Request.Rejected in
      let cancelled = count Serve.Request.Cancelled in
      let failed = count Serve.Request.Failed in
      let submitted = List.length reqs in
      (* bit-identity vs a fault-free solo replay of each finished req *)
      let compared = ref 0 and mismatched = ref 0 in
      List.iter
        (fun (r : Serve.Request.t) ->
          if r.Serve.Request.state = Serve.Request.Finished then begin
            incr compared;
            let got = Serve.Request.outputs r in
            let want = replay_solo llm r in
            if
              List.length got <> List.length want
              || not
                   (List.for_all2
                      (fun x y -> Tensor.approx_equal ~tol:0.0 x y)
                      got want)
            then incr mismatched
          end)
        reqs;
      let violations = ref [] in
      let check cond msg = if not cond then violations := msg :: !violations in
      check terminated "fleet did not drain within max_steps";
      check (submitted = config.requests)
        "router ledger lost submissions (ledger <> trace length)";
      check
        (List.for_all
           (fun r -> Serve.Request.terminal r.Serve.Request.state)
           reqs)
        "non-terminal request left in the router ledger";
      check
        (finished + rejected + cancelled + failed = submitted)
        "terminal states do not sum to submitted";
      (* each id exactly once in the router ledger *)
      let ids = Hashtbl.create 64 in
      List.iter
        (fun (r : Serve.Request.t) ->
          Hashtbl.replace ids r.Serve.Request.id
            (1 + Option.value ~default:0 (Hashtbl.find_opt ids r.Serve.Request.id)))
        reqs;
      check
        (Hashtbl.fold (fun _ n ok -> ok && n = 1) ids true)
        "request id duplicated in the router ledger";
      (* each id in at most one decode replica's ledger — re-routes move,
         never duplicate *)
      let decode_seen = Hashtbl.create 64 in
      Array.iter
        (fun s ->
          List.iter
            (fun (r : Serve.Request.t) ->
              Hashtbl.replace decode_seen r.Serve.Request.id
                (1
                + Option.value ~default:0
                    (Hashtbl.find_opt decode_seen r.Serve.Request.id)))
            (Serve.Scheduler.requests s))
        (Router.schedulers router);
      check
        (Hashtbl.fold (fun _ n ok -> ok && n <= 1) decode_seen true)
        "request present in more than one decode replica's ledger";
      (* no double serve: outputs bounded by new_tokens, exact when
         finished *)
      check
        (List.for_all
           (fun (r : Serve.Request.t) ->
             let n = List.length (Serve.Request.outputs r) in
             n <= r.Serve.Request.new_tokens
             && (r.Serve.Request.state <> Serve.Request.Finished
                || n = r.Serve.Request.new_tokens))
           reqs)
        "request served more tokens than requested (double serve)";
      check
        (!q_ledger_after < 0
        || List.length (Serve.Scheduler.requests qsched) = !q_ledger_after)
        "quarantined replica kept receiving work";
      (* hard-kill isolation: the dead replica's ledger is frozen at the
         kill (detach moved the in-flight ids out; nothing routes back)
         and holds only terminal requests *)
      (match !hk_ids with
      | None -> ()
      | Some frozen ->
        let final =
          List.map
            (fun (r : Serve.Request.t) -> r.Serve.Request.id)
            (Serve.Scheduler.requests ksched)
        in
        check
          (List.length final = List.length frozen
          && List.for_all (fun id -> List.mem id frozen) final)
          "hard-failed replica's ledger changed after the kill";
        check
          (List.for_all
             (fun (r : Serve.Request.t) ->
               Serve.Request.terminal r.Serve.Request.state)
             (Serve.Scheduler.requests ksched))
          "non-terminal request left on the hard-failed replica";
        check
          (migrations_started
          = migrations_completed + migrations_failed)
          "migrations started <> completed + failed (a session vanished \
           in transit)");
      check
        (Router.migration_depth router = 0)
        "migration channel not drained";
      check
        (List.for_all (fun p -> Serve.Kv_pool.in_use p = 0) (Router.pools router))
        "KV caches leaked (a fleet pool has in_use <> 0 after drain)";
      (* paged-arena conservation, fleet-wide: in every replica's arena
         the free list plus the prefix trie's pins must account for all
         blocks — no block table leaked through handoff, quarantine,
         retry-rewind or shed paths *)
      check
        (List.for_all
           (fun p ->
             match Serve.Kv_pool.manager p with
             | None -> true
             | Some m ->
               let pinned =
                 match Serve.Kv_pool.prefix_cache p with
                 | Some px -> Kv.Prefix.pinned px
                 | None -> 0
               in
               Kv.Block_manager.free_blocks m + pinned
               = Kv.Block_manager.num_blocks m)
           (Router.pools router))
        "paged KV blocks leaked (free + trie pins <> arena size)";
      check (Router.handoff_depth router = 0)
        "handoff channel not drained";
      check (double_released = 0) "KV handoff released a cache twice";
      check (!mismatched = 0)
        "finished outputs not bit-identical to solo fault-free replay";
      (* trace conservation, fleet-wide: every routed request leaves a
         complete well-nested causal timeline whatever combination of
         re-routes, handoffs, faults and migrations it crossed; a
         migrated request carries exactly one detach→resume join (its
         one live KV copy moved exactly once) *)
      let traces_checked = ref 0 and migrated_traced = ref 0 in
      if rec_on then
        List.iter
          (fun (r : Serve.Request.t) ->
            incr traces_checked;
            let tr = r.Serve.Request.trace in
            (match Telemetry.Trace.check tr with
            | Ok () -> ()
            | Error m -> check false ("trace conservation: " ^ m));
            let evs = Telemetry.Trace.timeline tr in
            let n k =
              List.length
                (List.filter
                   (fun e -> e.Telemetry.Recorder.ekind = k)
                   evs)
            in
            let detaches = n Telemetry.Recorder.Trace_detach in
            let resumes = n Telemetry.Recorder.Trace_resume in
            if resumes > 0 then begin
              incr migrated_traced;
              check
                (detaches = 1 && resumes = 1)
                (Printf.sprintf
                   "trace %d: migrated request has %d detach / %d resume \
                    joins (want exactly one of each)"
                   tr detaches resumes)
            end)
          reqs;
      if !violations <> [] then
        ignore (Telemetry.Recorder.post_mortem ~reason:"cluster.chaos.invariant");
      { steps = !steps; terminated; submitted; finished; rejected; cancelled;
        failed; routed; rerouted; resubmitted; adopted; route_faults;
        migrations_started; migrations_completed; migrations_failed;
        injected; retries; shed; denied; double_released;
        compared = !compared;
        mismatched = !mismatched;
        fleet_slo_ttft = Telemetry.Gauge.value Router.fleet_slo_ttft_name;
        fleet_slo_deadline =
          Telemetry.Gauge.value Router.fleet_slo_deadline_name;
        traces_checked = !traces_checked;
        migrated_traced = !migrated_traced;
        violations = List.rev !violations })

let report_to_string r =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "== cluster chaos report ==\n";
  pr "drive:    %d steps, terminated=%b\n" r.steps r.terminated;
  pr "ledger:   %d submitted = %d finished + %d rejected + %d cancelled + \
      %d failed\n"
    r.submitted r.finished r.rejected r.cancelled r.failed;
  pr "router:   %d routed, %d rerouted (%d resubmitted), %d adopted \
      (handoff), %d route faults\n"
    r.routed r.rerouted r.resubmitted r.adopted r.route_faults;
  pr "failover: %d migrations started, %d completed, %d failed\n"
    r.migrations_started r.migrations_completed r.migrations_failed;
  pr "identity: %d finished compared vs solo replay, %d mismatched\n"
    r.compared r.mismatched;
  pr "faults:   %d injected, %d retries, %d shed, %d KV denials, %d double \
      releases\n"
    r.injected r.retries r.shed r.denied r.double_released;
  pr "slo burn: fleet ttft breaches %d, deadline breaches %d\n"
    r.fleet_slo_ttft r.fleet_slo_deadline;
  if r.traces_checked > 0 then
    pr "traces:   %d causal timelines checked complete, %d with a \
        migration join\n"
      r.traces_checked r.migrated_traced;
  (match r.violations with
  | [] -> pr "invariants: all passed\n"
  | vs ->
    pr "invariants: %d VIOLATED\n" (List.length vs);
    List.iter (fun v -> pr "  - %s\n" v) vs);
  Buffer.contents b

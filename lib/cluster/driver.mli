(** Open-loop real-time replay of a load trace against the whole fleet
    ({!Router}): the {!Serve.Driver} loop with the router in the
    scheduler's place, including the optional live-metrics stream. The
    final summary is fleet-merged ({!Serve.Metrics.collect_fleet} over
    every replica's histograms) and [per_replica] carries each replica's
    own cut from its [serve.r<i>.*] telemetry. *)

type outcome = {
  summary : Serve.Metrics.summary;  (** fleet rollup, merged histograms *)
  per_replica : (int * Serve.Metrics.summary) list;
      (** decode replicas 0..N-1, plus the prefill replica when
          disaggregated *)
  requests : Serve.Request.t list;  (** router ledger, oldest first *)
  snapshots : int;  (** live JSONL lines written; 0 when [live] absent *)
}

(** [run ?live ?hard_kill router trace] — [trace] must be
    arrival-time-sorted. Blocks until the fleet drains.
    [hard_kill = (at_s, replica)] hard-fails [replica]
    ({!Router.hard_fail}) once the wall clock passes [at_s]: its
    in-flight sessions live-migrate to the survivors and the migration
    counters are printed after the drain. *)
val run :
  ?live:Serve.Driver.live ->
  ?hard_kill:float * int ->
  Router.t ->
  (float * Serve.Request.t) list ->
  outcome

(* Dedicated prefill replica for prefill/decode disaggregation: runs only
   the compute-bound first-token phase, then hands the finished KV state
   to the decode tier through a Kv_handoff channel. It owns its own
   Kv_pool — the handoff transfers cache ownership, and the exactly-once
   release stored with each entry brings the cache back here when the
   decode side retires the session.

   Accounting split: the prefiller counts the submission, the TTFT and
   the first token (it produced them); the decode replica that adopts the
   session counts everything from the second token on. Together the two
   ledgers cover each request exactly once — the conservation invariant
   the cluster chaos harness checks. *)

(* fires ahead of the model call: Exn = prefill transient (fails the
   request — the prefiller does not retry; retry-with-rewind lives in the
   decode tier's scheduler) *)
let prefill_site = Fault.site "cluster.prefill"

(* consecutive KV denials tolerated while nothing could possibly release
   a cache back; beyond this the head request fails instead of spinning *)
let max_idle_denials = 8

type config = {
  max_queue : int;
  kv_cap : int;
  max_live : int;
  replica : int;  (* telemetry index: serve.r<replica>.* *)
}

let default_config = { max_queue = 64; kv_cap = 16; max_live = 8; replica = 0 }

type t = {
  llm : Llm.t;
  cfg : config;
  engine : Serve.Scheduler.engine;
  pool : Serve.Kv_pool.t;
  handoff : Kv_handoff.t;
  tr_lbl : int;  (* causal-trace lane label: "replica:<replica>" *)
  mutable queue : Serve.Request.t list;  (* oldest first *)
  mutable ledger : Serve.Request.t list;  (* newest first *)
  mutable tokens : int;
  mutable idle_denials : int;
  ttft_h : Telemetry.Histogram.t;
  r_ttft_h : Telemetry.Histogram.t;
  submitted_c : Telemetry.Counter.t;
  r_submitted_c : Telemetry.Counter.t;
  rejected_c : Telemetry.Counter.t;
  r_rejected_c : Telemetry.Counter.t;
  completed_c : Telemetry.Counter.t;
  r_completed_c : Telemetry.Counter.t;
  failed_c : Telemetry.Counter.t;
  r_failed_c : Telemetry.Counter.t;
  ttft_breach_c : Telemetry.Counter.t;
  r_ttft_breach_c : Telemetry.Counter.t;
  deadline_breach_c : Telemetry.Counter.t;
  r_deadline_breach_c : Telemetry.Counter.t;
}

let create ?(config = default_config) ?engine
    ?(policy = Serve.Kv_pool.Contiguous) llm ~handoff =
  let engine =
    match engine with
    | Some e -> e
    | None ->
      { Serve.Scheduler.extend = (fun cache emb -> Llm.extend llm cache emb) }
  in
  let c = Telemetry.Counter.find_or_create in
  let h = Telemetry.Histogram.find_or_create in
  let i = config.replica in
  { llm; cfg = config; engine;
    pool =
      Serve.Kv_pool.create ~init_cap:config.kv_cap ~max_live:config.max_live
        ~policy llm;
    handoff; tr_lbl = Telemetry.Trace.replica_label i;
    queue = []; ledger = []; tokens = 0; idle_denials = 0;
    ttft_h = h Serve.Metrics.ttft_ms_name;
    r_ttft_h = h (Serve.Metrics.replica_ttft_ms_name i);
    submitted_c = c Serve.Metrics.submitted_name;
    r_submitted_c = c (Serve.Metrics.replica_submitted_name i);
    rejected_c = c Serve.Metrics.rejected_name;
    r_rejected_c = c (Serve.Metrics.replica_rejected_name i);
    completed_c = c Serve.Metrics.completed_name;
    r_completed_c = c (Serve.Metrics.replica_completed_name i);
    failed_c = c Serve.Metrics.failed_name;
    r_failed_c = c (Serve.Metrics.replica_failed_name i);
    ttft_breach_c = c Serve.Metrics.slo_ttft_breaches_name;
    r_ttft_breach_c = c (Serve.Metrics.replica_slo_ttft_breaches_name i);
    deadline_breach_c = c Serve.Metrics.slo_deadline_breaches_name;
    r_deadline_breach_c = c (Serve.Metrics.replica_slo_deadline_breaches_name i)
  }

let pool t = t.pool
let queue_depth t = List.length t.queue
let busy t = t.queue <> []
let tokens_emitted t = t.tokens
let requests t = List.rev t.ledger

let incr2 a b =
  Telemetry.Counter.incr a;
  Telemetry.Counter.incr b

let submit t ~now (req : Serve.Request.t) =
  req.Serve.Request.arrival_s <- now;
  t.ledger <- req :: t.ledger;
  incr2 t.submitted_c t.r_submitted_c;
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_queued ~label:t.tr_lbl
    ~a:req.Serve.Request.trace
    ~b:(List.length t.queue);
  if
    req.Serve.Request.deadline_s <= 0.0
    || List.length t.queue >= t.cfg.max_queue
  then begin
    if req.Serve.Request.deadline_s <= 0.0 then
      incr2 t.deadline_breach_c t.r_deadline_breach_c;
    req.Serve.Request.state <- Serve.Request.Rejected;
    incr2 t.rejected_c t.r_rejected_c;
    Telemetry.Trace.terminal ~id:req.Serve.Request.trace ~label:t.tr_lbl
      ~state:(Serve.Request.state_code Serve.Request.Rejected)
      ~reason:"rejected" ();
    false
  end
  else begin
    req.Serve.Request.state <- Serve.Request.Queued;
    t.queue <- t.queue @ [ req ];
    true
  end

let fail t (req : Serve.Request.t) ~now_s =
  req.Serve.Request.state <- Serve.Request.Failed;
  req.Serve.Request.finish_s <- now_s -. req.Serve.Request.arrival_s;
  incr2 t.failed_c t.r_failed_c;
  Telemetry.Trace.terminal ~id:req.Serve.Request.trace ~label:t.tr_lbl
    ~state:(Serve.Request.state_code Serve.Request.Failed)
    ~reason:"failed" ()

(* single-token request: the prefill IS the whole serve — finish here,
   the decode tier never sees it *)
let finish_now t (req : Serve.Request.t) cache ~now_s =
  req.Serve.Request.state <- Serve.Request.Finished;
  req.Serve.Request.finish_s <- now_s -. req.Serve.Request.arrival_s;
  Serve.Kv_pool.release t.pool cache;
  incr2 t.completed_c t.r_completed_c;
  let breached = not (Serve.Request.met_deadline req) in
  if breached then incr2 t.deadline_breach_c t.r_deadline_breach_c;
  Telemetry.Trace.terminal ~id:req.Serve.Request.trace ~label:t.tr_lbl
    ~state:(Serve.Request.state_code Serve.Request.Finished)
    ?reason:(if breached then Some "deadline_breach" else None)
    ()

(* Run at most one prefill: pop the head, acquire KV, prefill, hand off.
   Returns false when nothing could progress (empty queue, handoff full,
   or a tolerated KV denial). *)
let step t ~now =
  match t.queue with
  | [] -> false
  | req :: rest ->
    if Kv_handoff.is_full t.handoff then false
    else begin
      let prompt = req.Serve.Request.prompt in
      let total_rows =
        Array.length prompt + req.Serve.Request.new_tokens - 1
      in
      match
        Serve.Kv_pool.acquire_for t.pool ~owner:req.Serve.Request.trace
          ~prompt ~total_rows ()
      with
      | `Denied ->
        (* a denial can only clear once an in-flight cache is released;
           if nothing is in flight anywhere downstream, fail the head
           request after a bounded number of attempts (liveness) *)
        t.idle_denials <- t.idle_denials + 1;
        if
          t.idle_denials > max_idle_denials
          && Serve.Kv_pool.in_use t.pool = 0
          && Kv_handoff.depth t.handoff = 0
        then begin
          t.idle_denials <- 0;
          t.queue <- rest;
          fail t req ~now_s:(now ());
          true
        end
        else false
      | `Cache (cache, matched) -> (
        t.idle_denials <- 0;
        t.queue <- rest;
        req.Serve.Request.state <- Serve.Request.Prefilling;
        (* a prefix-trie hit pre-seeded [matched] prompt rows from shared
           blocks — only the suffix needs compute *)
        let suffix =
          Array.sub prompt matched (Array.length prompt - matched)
        in
        let emb = Llm.embed t.llm suffix in
        match
          (match Fault.fire prefill_site with _ -> ());
          Llm.last_row (t.engine.Serve.Scheduler.extend cache emb)
        with
        | exception _ ->
          Serve.Kv_pool.release t.pool cache;
          fail t req ~now_s:(now ());
          true
        | first ->
          Serve.Kv_pool.register t.pool ~prompt cache;
          let now_s = now () in
          req.Serve.Request.ttft_s <- now_s -. req.Serve.Request.arrival_s;
          let ms = 1000.0 *. req.Serve.Request.ttft_s in
          Telemetry.Histogram.observe t.ttft_h ms;
          Telemetry.Histogram.observe t.r_ttft_h ms;
          Telemetry.Trace.exemplar ~metric:Telemetry.Trace.metric_ttft
            ~value_ms:ms ~id:req.Serve.Request.trace;
          if now_s > Serve.Request.deadline_abs req then begin
            incr2 t.ttft_breach_c t.r_ttft_breach_c;
            Telemetry.Trace.retain ~id:req.Serve.Request.trace
              ~reason:"ttft_breach"
          end;
          Telemetry.Recorder.emit Telemetry.Recorder.Trace_prefill
            ~label:t.tr_lbl ~a:req.Serve.Request.trace
            ~b:(Array.length prompt - matched);
          req.Serve.Request.outputs <- [ first ];
          req.Serve.Request.state <- Serve.Request.Decoding;
          t.tokens <- t.tokens + 1;
          if req.Serve.Request.new_tokens <= 1 then
            finish_now t req cache ~now_s
          else begin
            match
              Kv_handoff.push t.handoff ~req ~cache
                ~release:(Serve.Kv_pool.release t.pool)
            with
            | `Ok -> ()
            | `Full | (exception _) ->
              (* channel refused after the prefill ran: reclaim the cache
                 and fail the request — never strand a live cache *)
              Serve.Kv_pool.release t.pool cache;
              fail t req ~now_s
          end;
          true)
    end

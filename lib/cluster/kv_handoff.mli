(** Bounded handoff channels — the seam work crosses when it moves
    between replicas. The generic ['a chan] is a capacity-bounded FIFO
    with depth telemetry whose [`Full] is a {e structured, retryable}
    backpressure signal (producers reclaim or drain-and-retry, never
    drop). The prefill → decode KV handoff ([t]) is one instantiation:
    a prefill replica pushes a finished prefill — request plus filled KV
    cache — and a decode replica adopts it. The cache itself never
    moves; only ownership does. Each entry carries an {e exactly-once}
    [release] closure returning the cache to the pool that created it; a
    second invocation is swallowed and counted under
    [cluster.handoff.double_release]. The router builds its migration
    channel (detached in-flight sessions during a hard-kill failover)
    from the same ['a chan]. *)

(** Generic bounded FIFO channel. *)
type 'a chan

(** Raised by producers that exhausted their structured retry path on a
    persistently full channel (drain-and-retry found no room). *)
exception Backpressure of string

(** [chan_create ?cap ~pushed ~popped ~depth ()] — a channel of at most
    [cap] (default 16) items publishing under the given counter/gauge
    telemetry names. *)
val chan_create :
  ?cap:int -> pushed:string -> popped:string -> depth:string -> unit -> 'a chan

val chan_depth : 'a chan -> int
val chan_is_full : 'a chan -> bool

(** [`Full] when at capacity — backpressure, the caller keeps ownership
    and must reclaim or drain-and-retry. *)
val chan_push : 'a chan -> 'a -> [ `Ok | `Full ]

(** Oldest item, transferring ownership to the caller. *)
val chan_pop : 'a chan -> 'a option

(** Put a popped item back at the head (the consumer could not take it);
    preserves channel order, no push/pop accounting. *)
val chan_requeue : 'a chan -> 'a -> unit

type entry = {
  req : Serve.Request.t;
  cache : Llm.kv_cache;
  release : Llm.kv_cache -> unit;  (** exactly-once, owning-pool release *)
}

(** The prefill → decode KV handoff channel. *)
type t = entry chan

val pushed_name : string
val popped_name : string
val double_release_name : string
val depth_name : string

(** [create ?cap ()] — at most [cap] (default 16) entries in flight. *)
val create : ?cap:int -> unit -> t

val depth : t -> int
val is_full : t -> bool

(** Wrap a release closure for exactly-once invocation; a second call is
    swallowed and counted under [cluster.handoff.double_release]. *)
val once :
  release:(Llm.kv_cache -> unit) -> Llm.kv_cache -> unit

(** [`Full] when at capacity (or fault-denied); the caller keeps
    ownership of [cache] and must reclaim it. May raise
    [Fault.Injected]. On [`Ok] the channel owns the cache until {!pop};
    [release] is wrapped for exactly-once invocation. *)
val push :
  t ->
  req:Serve.Request.t ->
  cache:Llm.kv_cache ->
  release:(Llm.kv_cache -> unit) ->
  [ `Ok | `Full ]

(** Oldest entry, transferring ownership to the caller. *)
val pop : t -> entry option

(** Put a popped entry back at the head (a full decode batch could not
    adopt it); preserves handoff order, no push/pop accounting. *)
val requeue : t -> entry -> unit

(** Bounded prefill → decode KV handoff channel (disaggregation seam,
    built on {!Serve.Kv_pool} ownership transfer): a prefill replica
    pushes a finished prefill — request plus filled KV cache — and a
    decode replica adopts it. The cache itself never moves; only
    ownership does. Each entry carries an {e exactly-once} [release]
    closure returning the cache to the pool that created it; a second
    invocation is swallowed and counted under
    [cluster.handoff.double_release]. The [cluster.handoff.push] fault
    site fires inside {!push} (Deny = channel full, Exn = transport
    failure). *)

type entry = {
  req : Serve.Request.t;
  cache : Llm.kv_cache;
  release : Llm.kv_cache -> unit;  (** exactly-once, owning-pool release *)
}

type t

val pushed_name : string
val popped_name : string
val double_release_name : string
val depth_name : string

(** [create ?cap ()] — at most [cap] (default 16) entries in flight. *)
val create : ?cap:int -> unit -> t

val depth : t -> int
val is_full : t -> bool

(** [`Full] when at capacity (or fault-denied); the caller keeps
    ownership of [cache] and must reclaim it. May raise
    [Fault.Injected]. On [`Ok] the channel owns the cache until {!pop};
    [release] is wrapped for exactly-once invocation. *)
val push :
  t ->
  req:Serve.Request.t ->
  cache:Llm.kv_cache ->
  release:(Llm.kv_cache -> unit) ->
  [ `Ok | `Full ]

(** Oldest entry, transferring ownership to the caller. *)
val pop : t -> entry option

(** Put a popped entry back at the head (a full decode batch could not
    adopt it); preserves handoff order, no push/pop accounting. *)
val requeue : t -> entry -> unit

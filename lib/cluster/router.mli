(** Front-end router: spreads an arrival stream across N
    {!Serve.Scheduler} replicas with pluggable placement (round-robin /
    join-shortest-queue / deadline-aware), optional tensor-parallel
    sharding inside each replica ({!Shard}, bit-identical), and optional
    prefill/decode disaggregation behind a {!Prefiller} + {!Kv_handoff}.

    Quarantine protocol: a quarantined replica receives no new routes or
    adoptions; its queued requests are evicted (from queue {e and}
    ledger) and re-routed with their original arrival stamps, so
    deadlines never reset; its in-flight sessions drain normally. Each
    request lives in exactly one decode ledger at any time — the
    conservation invariant {!Chaos} checks. The router's own ledger
    (each request exactly once) is the fleet's source of truth.

    Hard failure ({!hard_fail}) treats the replica as dead: even its
    in-flight sessions move — detached ({!Serve.Scheduler.detach_next}),
    carried through a bounded migration channel (backpressure is
    structured and retryable, never a drop), and resumed on healthy
    replicas. The destination import is the commit point; the source KV
    is freed only after, so faults mid-migration (the
    [cluster.migrate.export]/[cluster.migrate.import] sites) leave
    exactly one live copy. Migrations are counted under
    [cluster.migrations.{started,completed,failed}] with latencies in
    the [cluster.migration_ms] histogram.

    Fault site [cluster.router.route] fires per routing decision:
    [Deny] rejects at the front door (accounted), [Exn] degrades to
    first-healthy placement. Per-replica queue/active/quarantine levels
    and fleet in-flight + SLO-burn totals are published as
    {!Telemetry.Gauge}s every step. *)

type placement = Round_robin | Jsq | Deadline_aware

val placement_name : placement -> string

(** ["rr"]/["round-robin"], ["jsq"], ["deadline"]. *)
val placement_of_string : string -> placement option

type config = {
  replicas : int;  (** decode replicas *)
  shards : int;  (** tensor-parallel width inside each replica *)
  disaggregate : bool;  (** dedicated prefill replica + KV handoff *)
  placement : placement;
  scheduler : Serve.Scheduler.config;  (** per-replica template *)
  handoff_cap : int;
  prefill_queue : int;
}

(** 2 replicas, unsharded, aggregated (no prefill tier), round-robin. *)
val default_config : config

type t

(** [Error] when the model shape cannot be split [shards] ways. *)
val create : ?config:config -> Llm.t -> (t, string) result

val config : t -> config
val schedulers : t -> Serve.Scheduler.t array
val prefiller : t -> Prefiller.t option
val handoff_depth : t -> int

(** Route one request (ledger, placement, replica admission). [false] =
    rejected — by fault-denial at the router, by having no healthy
    replica, or by the chosen replica's own admission control. *)
val submit : t -> now:float -> Serve.Request.t -> bool

(** One fleet iteration: prefiller step, handoff adoption into healthy
    replicas, one scheduler step per replica (quarantined ones included —
    their batches must drain), gauge publication. *)
val step : t -> now:(unit -> float) -> bool

val busy : t -> bool
val drain : t -> now:(unit -> float) -> unit

(** Stop routing to replica [i], evict + re-route its queued requests
    (original arrival stamps), let its in-flight batch drain. Idempotent. *)
val quarantine : t -> int -> unit

(** [hard_fail t ~now i] — replica [i] died: quarantine it, then detach
    every in-flight session and migrate each through the bounded
    migration channel to a healthy replica chosen by the placement
    policy (original arrival stamps preserved inside the requests).
    Sessions no replica can take right now stay in the channel and are
    retried every {!step}; with no healthy replica at all they fail
    terminally (exactly one KV release) rather than spin. Idempotent. *)
val hard_fail : t -> now:float -> int -> unit

(** Rejoin replica [i], gated on a health probe (one successful no-op
    engine step — {!Serve.Scheduler.probe}) rather than a bare flag
    flip. [false]: the probe failed, the replica stays quarantined.
    [true] on an already-healthy replica. Hard-failed replicas may
    rejoin too (the probe models their restart). *)
val unquarantine : t -> int -> bool

val is_quarantined : t -> int -> bool
val healthy : t -> int list

(** Detached sessions currently in transit (0 once drained). *)
val migration_depth : t -> int

(** Router ledger, oldest first — each request exactly once, regardless
    of re-routes or disaggregation. *)
val requests : t -> Serve.Request.t list

val tokens_emitted : t -> int

(** Every KV pool in the fleet (decode replicas + prefiller). *)
val pools : t -> Serve.Kv_pool.t list

(** Telemetry names published by the router. *)
val routed_name : string

val rerouted_name : string
val resubmitted_name : string
val rejected_name : string
val route_faults_name : string
val quarantines_name : string
val rejoins_name : string
val hard_fails_name : string
val adopted_name : string
val migrations_started_name : string
val migrations_completed_name : string
val migrations_failed_name : string
val migrate_backpressure_name : string
val migration_ms_name : string
val fleet_inflight_name : string
val fleet_slo_ttft_name : string
val fleet_slo_deadline_name : string
val replica_queue_name : int -> string
val replica_active_name : int -> string
val replica_quarantined_name : int -> string

(** Telemetry replica indices in use (decode replicas, plus the prefill
    replica's when disaggregated). *)
val replica_indices : t -> int list

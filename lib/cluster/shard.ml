(* Tensor-parallel shard layer: adapt an [Llm.tp_plan] to the scheduler's
   pluggable engine, so a replica runs its GEMM/attention layers split
   column-wise across its slice of the Team pool. The sharded entry
   point is bit-identical to the unsharded one (see Llm's tp notes), so
   swapping the engine changes only where the FLOPs run. *)

let engine plan =
  { Serve.Scheduler.extend = (fun cache emb -> Llm.extend_tp plan cache emb) }

(* [shards <= 1] keeps the classic single-team path (with [nthreads]
   inside the kernels); [shards > 1] builds a tp plan or explains why the
   model shape cannot be split that way. *)
let engine_for ?nthreads llm ~shards =
  if shards <= 1 then
    Ok
      { Serve.Scheduler.extend =
          (fun cache emb -> Llm.extend ?nthreads llm cache emb) }
  else Result.map engine (Llm.tp_plan llm ~shards)

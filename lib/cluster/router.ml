(* Front-end router: spreads an arrival stream across N scheduler
   replicas with pluggable placement, optionally behind a dedicated
   prefill replica (disaggregation). Each decode replica owns its own
   Kv_pool and — when [shards > 1] — runs its model tensor-parallel
   across its slice of the persistent Team pool via the scheduler's
   pluggable engine (bit-identical to the unsharded path, so placement
   and sharding can never change what a request computes).

   Quarantine protocol (the chaos harness's conservation target): a
   quarantined replica receives no new routes or adoptions; its queued
   (never admitted) requests are evicted from queue AND ledger and
   re-routed to healthy replicas with their original arrival stamp, so
   deadlines do not reset; its in-flight sessions keep decoding until
   they drain. Each request therefore lives in exactly one decode
   ledger at any time — nothing is lost, nothing is double-served.
   Rejoin ([unquarantine]) is gated on a health probe, not a flag flip.

   Hard failure ([hard_fail]) goes further: the replica is dead, so even
   its in-flight sessions move — each is detached (KV snapshot + ledger
   removal + exactly-once source release), carried through the bounded
   migration channel, and resumed on a healthy replica chosen by the
   placement policy with its original arrival stamp. The destination
   import is the commit point: the source KV is freed only after a
   successful resume, so a fault anywhere mid-migration leaves exactly
   one live copy.

   Accounting note: re-routing re-submits through
   [Serve.Scheduler.resubmit], which does NOT bump the monotonic global
   serve.submitted counter again — each resubmission is tallied under
   [cluster.router.resubmitted] instead, so serve.submitted, the
   router's ledger (each request exactly once) and the resubmission
   count reconcile exactly. [cluster.router.rerouted] still counts
   re-route events. *)

(* fires per routing decision: Deny = admission refused at the front
   door (request rejected, accounted), Exn = placement failure (degrades
   to first-healthy routing) *)
let route_site = Fault.site "cluster.router.route"

(* migration fault sites: [export] fires before a session is
   checkpointed off a dead replica (Exn/Deny fail that session in place
   — terminal, ledgered, nothing lost); [import] fires at the
   destination just before the commit point (Exn/Deny leave the package
   intact and the router retries the next healthy replica) *)
let migrate_export_site = Fault.site "cluster.migrate.export"
let migrate_import_site = Fault.site "cluster.migrate.import"

let routed_name = "cluster.router.routed"
let rerouted_name = "cluster.router.rerouted"
let resubmitted_name = "cluster.router.resubmitted"
let rejected_name = "cluster.router.rejected"
let route_faults_name = "cluster.router.route_faults"
let quarantines_name = "cluster.router.quarantines"
let rejoins_name = "cluster.router.rejoins"
let hard_fails_name = "cluster.router.hard_fails"
let adopted_name = "cluster.adopted"
let migrations_started_name = "cluster.migrations.started"
let migrations_completed_name = "cluster.migrations.completed"
let migrations_failed_name = "cluster.migrations.failed"
let migrate_backpressure_name = "cluster.migrate.backpressure"
let migrate_pushed_name = "cluster.migrate.pushed"
let migrate_popped_name = "cluster.migrate.popped"
let migrate_depth_name = "cluster.migrate.depth"
let migration_ms_name = "cluster.migration_ms"
let fleet_inflight_name = "cluster.fleet.inflight"
let fleet_slo_ttft_name = "cluster.fleet.slo.ttft_breaches"
let fleet_slo_deadline_name = "cluster.fleet.slo.deadline_breaches"
let replica_queue_name i = Printf.sprintf "cluster.r%d.queue_depth" i
let replica_active_name i = Printf.sprintf "cluster.r%d.active" i
let replica_quarantined_name i = Printf.sprintf "cluster.r%d.quarantined" i

type placement = Round_robin | Jsq | Deadline_aware

let placement_name = function
  | Round_robin -> "rr"
  | Jsq -> "jsq"
  | Deadline_aware -> "deadline"

let placement_of_string = function
  | "rr" | "round-robin" -> Some Round_robin
  | "jsq" -> Some Jsq
  | "deadline" -> Some Deadline_aware
  | _ -> None

type config = {
  replicas : int;  (* decode replicas *)
  shards : int;  (* tensor-parallel width inside each replica *)
  disaggregate : bool;  (* dedicated prefill replica + KV handoff *)
  placement : placement;
  scheduler : Serve.Scheduler.config;  (* per-replica template *)
  handoff_cap : int;
  prefill_queue : int;
}

let default_config =
  { replicas = 2; shards = 1; disaggregate = false; placement = Round_robin;
    scheduler = Serve.Scheduler.default_config; handoff_cap = 16;
    prefill_queue = 64 }

type t = {
  cfg : config;
  scheds : Serve.Scheduler.t array;
  handoff : Kv_handoff.t option;
  prefiller : Prefiller.t option;
  quarantined : bool array;
  hard_failed : bool array;  (* implies quarantined *)
  migrations : (float * Serve.Scheduler.detached) Kv_handoff.chan;
      (* detached sessions in transit, stamped with detach wall time *)
  mutable rr : int;  (* round-robin cursor *)
  mutable ledger : Serve.Request.t list;  (* every submission, newest first *)
  routed_c : Telemetry.Counter.t;
  rerouted_c : Telemetry.Counter.t;
  resubmitted_c : Telemetry.Counter.t;
  rejected_c : Telemetry.Counter.t;
  route_faults_c : Telemetry.Counter.t;
  quarantines_c : Telemetry.Counter.t;
  rejoins_c : Telemetry.Counter.t;
  hard_fails_c : Telemetry.Counter.t;
  adopted_c : Telemetry.Counter.t;
  migr_started_c : Telemetry.Counter.t;
  migr_completed_c : Telemetry.Counter.t;
  migr_failed_c : Telemetry.Counter.t;
  migr_backpressure_c : Telemetry.Counter.t;
  migration_ms_h : Telemetry.Histogram.t;
  inflight_g : Telemetry.Gauge.t;
  slo_ttft_g : Telemetry.Gauge.t;
  slo_deadline_g : Telemetry.Gauge.t;
  queue_gs : Telemetry.Gauge.t array;
  active_gs : Telemetry.Gauge.t array;
  quarantine_gs : Telemetry.Gauge.t array;
}

(* prefill replica's telemetry index sits after the decode replicas *)
let prefill_replica_index cfg = cfg.replicas

let replica_indices t =
  let n = t.cfg.replicas in
  List.init (if t.prefiller = None then n else n + 1) Fun.id

let create ?(config = default_config) llm =
  if config.replicas < 1 then Error "Router.create: replicas must be >= 1"
  else
    match
      Shard.engine_for ?nthreads:config.scheduler.Serve.Scheduler.nthreads llm
        ~shards:config.shards
    with
    | Error e -> Error e
    | Ok engine ->
      let scheds =
        Array.init config.replicas (fun i ->
            Serve.Scheduler.create
              ~config:{ config.scheduler with Serve.Scheduler.replica = Some i }
              ~engine llm)
      in
      let handoff, prefiller =
        if config.disaggregate then begin
          let h = Kv_handoff.create ~cap:config.handoff_cap () in
          (* under a paged template the prefiller gets its own arena: the
             handoff then carries block tables over it, and the decode
             tier appends into those blocks until the exactly-once
             release returns them *)
          let policy =
            let s = config.scheduler in
            if s.Serve.Scheduler.paged then
              Serve.Kv_pool.Paged
                { block_size = s.Serve.Scheduler.block_size;
                  num_blocks = s.Serve.Scheduler.num_blocks;
                  prefix = s.Serve.Scheduler.prefix_share }
            else Serve.Kv_pool.Contiguous
          in
          let p =
            Prefiller.create
              ~config:
                { Prefiller.max_queue = config.prefill_queue;
                  kv_cap = config.scheduler.Serve.Scheduler.kv_cap;
                  (* live caches bound the whole prefill->handoff window *)
                  max_live =
                    config.handoff_cap
                    + config.scheduler.Serve.Scheduler.max_batch;
                  replica = prefill_replica_index config }
              ~engine ~policy llm ~handoff:h
          in
          (Some h, Some p)
        end
        else (None, None)
      in
      let c = Telemetry.Counter.find_or_create in
      let g = Telemetry.Gauge.find_or_create in
      Ok
        { cfg = config; scheds; handoff; prefiller;
          quarantined = Array.make config.replicas false;
          hard_failed = Array.make config.replicas false;
          migrations =
            Kv_handoff.chan_create ~cap:config.handoff_cap
              ~pushed:migrate_pushed_name ~popped:migrate_popped_name
              ~depth:migrate_depth_name ();
          rr = 0; ledger = [];
          routed_c = c routed_name;
          rerouted_c = c rerouted_name;
          resubmitted_c = c resubmitted_name;
          rejected_c = c rejected_name;
          route_faults_c = c route_faults_name;
          quarantines_c = c quarantines_name;
          rejoins_c = c rejoins_name;
          hard_fails_c = c hard_fails_name;
          adopted_c = c adopted_name;
          migr_started_c = c migrations_started_name;
          migr_completed_c = c migrations_completed_name;
          migr_failed_c = c migrations_failed_name;
          migr_backpressure_c = c migrate_backpressure_name;
          migration_ms_h = Telemetry.Histogram.find_or_create migration_ms_name;
          inflight_g = g fleet_inflight_name;
          slo_ttft_g = g fleet_slo_ttft_name;
          slo_deadline_g = g fleet_slo_deadline_name;
          queue_gs = Array.init config.replicas (fun i -> g (replica_queue_name i));
          active_gs =
            Array.init config.replicas (fun i -> g (replica_active_name i));
          quarantine_gs =
            Array.init config.replicas (fun i ->
                g (replica_quarantined_name i)) }

let config t = t.cfg
let schedulers t = t.scheds
let prefiller t = t.prefiller
let handoff_depth t = match t.handoff with None -> 0 | Some h -> Kv_handoff.depth h
let requests t = List.rev t.ledger
let is_quarantined t i = t.quarantined.(i)

let healthy t =
  List.filter
    (fun i -> not t.quarantined.(i))
    (List.init t.cfg.replicas Fun.id)

let tokens_emitted t =
  Array.fold_left (fun a s -> a + Serve.Scheduler.tokens_emitted s) 0 t.scheds
  + match t.prefiller with None -> 0 | Some p -> Prefiller.tokens_emitted p

let pools t =
  Array.to_list (Array.map Serve.Scheduler.pool t.scheds)
  @ match t.prefiller with None -> [] | Some p -> [ Prefiller.pool p ]

(* shortest queue among healthy replicas: queued + active, first index
   wins ties — deterministic for the chaos harness *)
let pick_jsq t hs =
  let load i =
    Serve.Scheduler.queue_depth t.scheds.(i)
    + Serve.Scheduler.active_count t.scheds.(i)
  in
  List.fold_left
    (fun best i ->
      match best with
      | Some b when load b <= load i -> best
      | _ -> Some i)
    None hs

let pick_rr t hs =
  let n = List.length hs in
  let i = List.nth hs (t.rr mod n) in
  t.rr <- t.rr + 1;
  Some i

(* placement: deadline-aware sends SLO-carrying requests to the shortest
   queue (their budget burns in queues) and best-effort ones round-robin *)
let choose t (req : Serve.Request.t) =
  match healthy t with
  | [] -> None
  | hs -> (
    match t.cfg.placement with
    | Round_robin -> pick_rr t hs
    | Jsq -> pick_jsq t hs
    | Deadline_aware ->
      if req.Serve.Request.deadline_s < Float.infinity then pick_jsq t hs
      else pick_rr t hs)

let reject_at_router t (req : Serve.Request.t) ~now =
  req.Serve.Request.arrival_s <- now;
  req.Serve.Request.state <- Serve.Request.Rejected;
  Telemetry.Counter.incr t.rejected_c;
  Telemetry.Trace.terminal ~id:req.Serve.Request.trace
    ~label:Telemetry.Trace.router_label
    ~state:(Serve.Request.state_code Serve.Request.Rejected)
    ~reason:"rejected" ()

(* the routing decision lands in the request's causal timeline: operand
   [b] is the chosen replica index (the prefill replica for a
   disaggregated fleet) *)
let trace_routed (req : Serve.Request.t) i =
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_routed
    ~label:Telemetry.Trace.router_label ~a:req.Serve.Request.trace ~b:i

(* route one request: ledger first (the router's ledger is the fleet's
   source of truth), then placement, then the replica's own admission *)
let submit t ~now (req : Serve.Request.t) =
  t.ledger <- req :: t.ledger;
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_queued
    ~label:Telemetry.Trace.router_label ~a:req.Serve.Request.trace ~b:0;
  match Fault.fire route_site with
  | `Deny ->
    Telemetry.Counter.incr t.route_faults_c;
    reject_at_router t req ~now;
    false
  | exception Fault.Injected _ ->
    (* placement failure: degrade to first-healthy, never drop *)
    Telemetry.Counter.incr t.route_faults_c;
    (match healthy t with
    | [] ->
      reject_at_router t req ~now;
      false
    | i :: _ ->
      Telemetry.Counter.incr t.routed_c;
      (match t.prefiller with
      | Some p ->
        trace_routed req (prefill_replica_index t.cfg);
        Prefiller.submit p ~now req
      | None ->
        trace_routed req i;
        Serve.Scheduler.submit t.scheds.(i) ~now req))
  | `None | `Nan -> (
    match t.prefiller with
    | Some p ->
      Telemetry.Counter.incr t.routed_c;
      trace_routed req (prefill_replica_index t.cfg);
      Prefiller.submit p ~now req
    | None -> (
      match choose t req with
      | None ->
        reject_at_router t req ~now;
        false
      | Some i ->
        Telemetry.Counter.incr t.routed_c;
        trace_routed req i;
        Serve.Scheduler.submit t.scheds.(i) ~now req))

(* quarantine: stop routing to [i], evict its queued requests and
   re-route them (original arrival stamp — deadlines never reset), let
   its in-flight batch drain. Safe to call twice. *)
let quarantine t i =
  if i < 0 || i >= t.cfg.replicas then
    invalid_arg "Router.quarantine: bad replica";
  if not t.quarantined.(i) then begin
    t.quarantined.(i) <- true;
    Telemetry.Counter.incr t.quarantines_c;
    Telemetry.Gauge.set t.quarantine_gs.(i) 1;
    let evicted = Serve.Scheduler.evict_queued t.scheds.(i) in
    List.iter
      (fun (r : Serve.Request.t) ->
        Telemetry.Counter.incr t.rerouted_c;
        match choose t r with
        | None -> reject_at_router t r ~now:r.Serve.Request.arrival_s
        | Some j ->
          Telemetry.Counter.incr t.resubmitted_c;
          trace_routed r j;
          ignore
            (Serve.Scheduler.resubmit t.scheds.(j)
               ~now:r.Serve.Request.arrival_s r))
      evicted
  end

(* Rejoin is gated on a health probe — one successful no-op engine step
   on the replica — not a bare flag flip; [false] means the probe failed
   and the replica stays out of the rotation. A hard-failed replica may
   rejoin the same way (the probe is what models its restart). *)
let unquarantine t i =
  if i < 0 || i >= t.cfg.replicas then
    invalid_arg "Router.unquarantine: bad replica"
  else if not t.quarantined.(i) then true
  else begin
    let ok = Serve.Scheduler.probe t.scheds.(i) in
    if ok then begin
      t.quarantined.(i) <- false;
      t.hard_failed.(i) <- false;
      Telemetry.Counter.incr t.rejoins_c;
      Telemetry.Gauge.set t.quarantine_gs.(i) 0
    end;
    ok
  end

let migration_depth t = Kv_handoff.chan_depth t.migrations

(* one destination attempt: [`Resumed] commits; [`Full]/[`Denied]/an
   exception (the [cluster.migrate.import] site, or any import error)
   leave the package intact for the next candidate *)
let try_resume t ~now (d : Serve.Scheduler.detached) j =
  match
    Serve.Scheduler.resume t.scheds.(j)
      ~before_import:(fun () ->
        match Fault.fire migrate_import_site with
        | `Deny -> failwith "cluster.migrate.import: denied"
        | `None | `Nan -> ())
      ~now d
  with
  | `Resumed -> true
  | `Full | `Denied -> false
  | exception _ -> false

(* Drain the migration channel: place each detached session on a healthy
   replica (placement policy first, then the remaining healthy replicas
   in order). On success the destination import has committed, so — and
   only then — the source KV is released and the latency recorded. A
   session no replica can take *right now* ([`Full]/[`Denied]
   everywhere) is requeued at the head and retried next step; with no
   healthy replica at all it fails terminally (exactly one release,
   counted under cluster.migrations.failed) rather than spinning —
   conservation over availability, never a silent drop. *)
let drain_migrations t ~now =
  let worked = ref false in
  let fail_terminally (d : Serve.Scheduler.detached) =
    let r = d.Serve.Scheduler.d_req in
    r.Serve.Request.state <- Serve.Request.Failed;
    r.Serve.Request.finish_s <- now -. r.Serve.Request.arrival_s;
    d.Serve.Scheduler.d_release ();
    Telemetry.Counter.incr t.migr_failed_c;
    Telemetry.Trace.terminal ~id:r.Serve.Request.trace
      ~label:Telemetry.Trace.router_label
      ~state:(Serve.Request.state_code Serve.Request.Failed)
      ~reason:"failed" ()
  in
  let rec go () =
    match Kv_handoff.chan_pop t.migrations with
    | None -> ()
    | Some (t0, d) -> (
      match healthy t with
      | [] ->
        fail_terminally d;
        worked := true;
        go ()
      | hs ->
        let candidates =
          match choose t d.Serve.Scheduler.d_req with
          | Some j -> j :: List.filter (fun k -> k <> j) hs
          | None -> hs
        in
        if List.exists (try_resume t ~now d) candidates then begin
          (* commit point passed: the destination owns the session *)
          d.Serve.Scheduler.d_release ();
          Telemetry.Counter.incr t.migr_completed_c;
          Telemetry.Histogram.observe t.migration_ms_h
            (1000.0 *. (Telemetry.Clock.now_s () -. t0));
          worked := true;
          go ()
        end
        else Kv_handoff.chan_requeue t.migrations (t0, d))
  in
  go ();
  !worked

(* Hard failure: unlike [quarantine] (stop routing, drain in place),
   replica [i] is dead — its queued requests are evicted and re-routed
   exactly as in quarantine, and every in-flight session is detached and
   pushed through the bounded migration channel. A [`Full] push is
   structured backpressure: drain in place, retry, and as a last resort
   place the session directly — never drop it. Safe to call twice. *)
let hard_fail t ~now i =
  if i < 0 || i >= t.cfg.replicas then
    invalid_arg "Router.hard_fail: bad replica";
  if not t.hard_failed.(i) then begin
    t.hard_failed.(i) <- true;
    Telemetry.Counter.incr t.hard_fails_c;
    quarantine t i;
    (* gauge level 2 distinguishes dead from drained-in-place *)
    Telemetry.Gauge.set t.quarantine_gs.(i) 2;
    let sched = t.scheds.(i) in
    let rec detach_all () =
      match
        Serve.Scheduler.detach_next sched ~now_s:now
          ~before_export:(fun () ->
            match Fault.fire migrate_export_site with
            | `Deny -> failwith "cluster.migrate.export: denied"
            | `None | `Nan -> ())
      with
      | `Empty -> ()
      | `Failed _ ->
        (* export fault: the session failed in place, still ledgered *)
        Telemetry.Counter.incr t.migr_started_c;
        Telemetry.Counter.incr t.migr_failed_c;
        detach_all ()
      | `Detached d ->
        Telemetry.Counter.incr t.migr_started_c;
        let item = (Telemetry.Clock.now_s (), d) in
        (match Kv_handoff.chan_push t.migrations item with
        | `Ok -> ()
        | `Full -> (
          Telemetry.Counter.incr t.migr_backpressure_c;
          ignore (drain_migrations t ~now);
          match Kv_handoff.chan_push t.migrations item with
          | `Ok -> ()
          | `Full ->
            (* channel still full (all destinations refusing): place
               this one directly rather than drop it *)
            let placed =
              match healthy t with
              | [] -> false
              | hs -> List.exists (try_resume t ~now d) hs
            in
            if placed then begin
              d.Serve.Scheduler.d_release ();
              Telemetry.Counter.incr t.migr_completed_c
            end
            else begin
              let r = d.Serve.Scheduler.d_req in
              r.Serve.Request.state <- Serve.Request.Failed;
              r.Serve.Request.finish_s <- now -. r.Serve.Request.arrival_s;
              d.Serve.Scheduler.d_release ();
              Telemetry.Counter.incr t.migr_failed_c;
              Telemetry.Trace.terminal ~id:r.Serve.Request.trace
                ~label:Telemetry.Trace.router_label
                ~state:(Serve.Request.state_code Serve.Request.Failed)
                ~reason:"failed" ()
            end));
        detach_all ()
    in
    detach_all ();
    ignore (drain_migrations t ~now)
  end

(* per-replica + fleet gauges: levels recomputed once per step *)
let publish t =
  let inflight = ref (handoff_depth t) in
  (match t.prefiller with
  | Some p -> inflight := !inflight + Prefiller.queue_depth p
  | None -> ());
  Array.iteri
    (fun i s ->
      let q = Serve.Scheduler.queue_depth s in
      let a = Serve.Scheduler.active_count s in
      inflight := !inflight + q + a;
      Telemetry.Gauge.set t.queue_gs.(i) q;
      Telemetry.Gauge.set t.active_gs.(i) a)
    t.scheds;
  Telemetry.Gauge.set t.inflight_g !inflight;
  let sum name_of =
    List.fold_left
      (fun a i -> a + Telemetry.Counter.value (name_of i))
      0 (replica_indices t)
  in
  Telemetry.Gauge.set t.slo_ttft_g
    (sum Serve.Metrics.replica_slo_ttft_breaches_name);
  Telemetry.Gauge.set t.slo_deadline_g
    (sum Serve.Metrics.replica_slo_deadline_breaches_name)

(* adopt finished prefills into healthy decode replicas; stop at the
   first replica refusal ([`Full]) to preserve handoff order *)
let drain_handoff t ~now =
  match t.handoff with
  | None -> false
  | Some h ->
    let worked = ref false in
    let rec go () =
      match Kv_handoff.pop h with
      | None -> ()
      | Some e -> (
        match choose t e.Kv_handoff.req with
        | None -> Kv_handoff.requeue h e
        | Some i -> (
          match
            Serve.Scheduler.adopt t.scheds.(i) ~now:(now ())
              ~release:e.Kv_handoff.release e.Kv_handoff.req
              e.Kv_handoff.cache
          with
          | `Adopted ->
            Telemetry.Counter.incr t.adopted_c;
            trace_routed e.Kv_handoff.req i;
            worked := true;
            go ()
          | `Full -> Kv_handoff.requeue h e))
    in
    go ();
    !worked

let step t ~now =
  let worked = ref false in
  (match t.prefiller with
  | Some p -> if Prefiller.step p ~now then worked := true
  | None -> ());
  if drain_handoff t ~now then worked := true;
  (* sessions stranded in the migration channel retry every step — a
     destination that was [`Full] frees slots as its batch drains *)
  if migration_depth t > 0 && drain_migrations t ~now:(now ()) then
    worked := true;
  (* quarantined replicas still step (their in-flight batch must drain);
     hard-failed ones are dead — detach emptied them, nothing runs *)
  Array.iteri
    (fun i s ->
      if (not t.hard_failed.(i)) && Serve.Scheduler.step s ~now then
        worked := true)
    t.scheds;
  publish t;
  !worked

let busy t =
  Array.exists Serve.Scheduler.busy t.scheds
  || handoff_depth t > 0
  || migration_depth t > 0
  || match t.prefiller with None -> false | Some p -> Prefiller.busy p

let drain t ~now =
  while busy t do
    ignore (step t ~now)
  done

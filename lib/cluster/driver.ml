(* Open-loop real-time replay of a load trace against the whole fleet:
   the Serve.Driver loop with the Router in the scheduler's place. The
   final report is fleet-merged (Metrics.collect_fleet over every
   replica's histograms) and each replica also gets its own summary cut
   from its serve.r<i>.* telemetry — never the other way around. *)

type outcome = {
  summary : Serve.Metrics.summary;  (* fleet rollup, merged histograms *)
  per_replica : (int * Serve.Metrics.summary) list;
  requests : Serve.Request.t list;  (* router ledger, oldest first *)
  snapshots : int;
}

let replica_summary i sched ~elapsed_s =
  let base =
    Serve.Metrics.collect
      ~requests:(Serve.Scheduler.requests sched)
      ~tokens:(Serve.Scheduler.tokens_emitted sched)
      ~elapsed_s
  in
  { base with
    Serve.Metrics.ttft_ms =
      Serve.Metrics.percentiles_of
        (Telemetry.Histogram.find_or_create
           (Serve.Metrics.replica_ttft_ms_name i));
    tpot_ms =
      Serve.Metrics.percentiles_of
        (Telemetry.Histogram.find_or_create
           (Serve.Metrics.replica_tpot_ms_name i)) }

let run ?live ?hard_kill router trace =
  let t0 = Telemetry.Clock.now_s () in
  let now () = Telemetry.Clock.now_s () -. t0 in
  let pending = ref trace in
  let killed = ref false in
  let maybe_kill () =
    match hard_kill with
    | Some (at, replica) when (not !killed) && now () >= at ->
      killed := true;
      Printf.printf
        "hard-killing replica %d at t=%.2fs: migrating its in-flight \
         sessions\n%!"
        replica (now ());
      (* pin the kill instant into the flight recorder so a trace dump
         shows which spans straddle the failover *)
      Telemetry.Recorder.mark ~label:(Telemetry.Trace.replica_label replica);
      Router.hard_fail router ~now:(now ()) replica
    | _ -> ()
  in
  let snapshots = ref 0 in
  let prev = ref None in
  let last_emit = ref 0.0 in
  let emit_snapshot () =
    match live with
    | None -> ()
    | Some l ->
      let snap = Telemetry.Expose.take () in
      output_string l.Serve.Driver.out (Telemetry.Expose.jsonl ?prev:!prev snap);
      output_char l.Serve.Driver.out '\n';
      flush l.Serve.Driver.out;
      prev := Some snap;
      incr snapshots;
      last_emit := now ()
  in
  let maybe_emit () =
    match live with
    | None -> ()
    | Some l ->
      if now () -. !last_emit >= l.Serve.Driver.every_s then emit_snapshot ()
  in
  let submit_due () =
    let t = now () in
    let rec go () =
      match !pending with
      | (at, req) :: rest when at <= t ->
        ignore (Router.submit router ~now:t req);
        pending := rest;
        go ()
      | _ -> ()
    in
    go ()
  in
  let rec loop () =
    submit_due ();
    maybe_kill ();
    let worked = Router.step router ~now in
    maybe_emit ();
    if !pending <> [] || Router.busy router then begin
      if not worked then Domain.cpu_relax ();
      loop ()
    end
  in
  loop ();
  emit_snapshot ();
  if !killed then
    Printf.printf
      "failover: %d migrations started, %d completed, %d failed\n%!"
      (Telemetry.Counter.value Router.migrations_started_name)
      (Telemetry.Counter.value Router.migrations_completed_name)
      (Telemetry.Counter.value Router.migrations_failed_name);
  let elapsed = now () in
  let requests = Router.requests router in
  let tokens = Router.tokens_emitted router in
  let replicas = Router.replica_indices router in
  { summary =
      Serve.Metrics.collect_fleet ~replicas ~requests ~tokens
        ~elapsed_s:elapsed;
    per_replica =
      List.map
        (fun i ->
          if i < Array.length (Router.schedulers router) then
            (i, replica_summary i (Router.schedulers router).(i) ~elapsed_s:elapsed)
          else
            (* prefill replica: ledger lives in the prefiller *)
            let base =
              match Router.prefiller router with
              | Some p ->
                Serve.Metrics.collect
                  ~requests:(Prefiller.requests p)
                  ~tokens:(Prefiller.tokens_emitted p) ~elapsed_s:elapsed
              | None ->
                Serve.Metrics.collect ~requests:[] ~tokens:0
                  ~elapsed_s:elapsed
            in
            ( i,
              { base with
                Serve.Metrics.ttft_ms =
                  Serve.Metrics.percentiles_of
                    (Telemetry.Histogram.find_or_create
                       (Serve.Metrics.replica_ttft_ms_name i));
                tpot_ms =
                  Serve.Metrics.percentiles_of
                    (Telemetry.Histogram.find_or_create
                       (Serve.Metrics.replica_tpot_ms_name i)) } ))
        replicas;
    requests;
    snapshots = !snapshots }

(** Cluster-level chaos harness: drives a {!Router} fleet under a seeded
    {!Fault} plan with a mid-run replica quarantine (or hard kill), then
    checks the router conservation invariants — fleet drains, router
    ledger conserves every request exactly once (terminal states sum to
    submissions, no id duplicated, each id in at most one decode
    replica's ledger — including ids that migrated off a dead replica),
    nothing is double-served, the quarantined replica receives no work
    after the quarantine, a hard-failed replica's ledger is frozen at
    the kill with only terminal entries, every started migration either
    completes or fails (none vanish in transit), all KV pools, the
    handoff channel and the migration channel drain, no handoff cache is
    released twice, and every finished request's outputs are
    bit-identical to a fault-free solo contiguous replay of the same
    model. When the flight recorder is enabled, trace conservation is
    checked too: every routed request leaves a complete causal timeline
    ({!Telemetry.Trace.check}) and every migrated request carries
    exactly one detach→resume join. The drive is virtual-clock and the
    plan is invocation-count triggered, so a seed reproduces
    everywhere. *)

type config = {
  seed : int;
  requests : int;
  replicas : int;
  shards : int;  (** tensor-parallel width inside each replica *)
  disaggregate : bool;
  placement : Router.placement;
  prompt_len : Serve.Load_gen.dist;
  new_tokens : Serve.Load_gen.dist;
  shared_prefix : int;
      (** tokens of a common prefix prepended to every prompt (0 = none):
          with a paged scheduler config this exercises fleet-wide prefix
          sharing and COW under faults *)
  arrival_gap_s : float;  (** virtual seconds between arrivals *)
  deadline_s : float;
  dt_s : float;  (** virtual seconds per drive step *)
  scheduler : Serve.Scheduler.config;
  handoff_cap : int;
  quarantine_step : int;
      (** drive step at which the quarantine fires; -1 = never *)
  quarantine_replica : int;
  hard_kill_step : int;
      (** drive step at which a replica hard-fails ({!Router.hard_fail} —
          in-flight sessions migrate); -1 = never *)
  hard_kill_replica : int;
  plan : Fault.plan option;  (** [None] = {!default_plan} [seed] *)
  max_steps : int;  (** liveness bound on the drive loop *)
}

(** 24 requests over 3 replicas, replica 1 quarantined at step 40,
    transient faults on prefill/decode/KV-admission/route/handoff; no
    hard kill. *)
val default : config

(** {!default} with the quarantine replaced by a hard kill of replica 1
    at step 12, one arrival per drive step and longer decodes — the
    victim dies with sessions mid-decode, so live migration (not
    drain-in-place) is what the invariants exercise. *)
val hard_kill : config

(** Router, prefill and handoff sites plus the serve-level transients;
    all periodic, so recovery — not wholesale failure — is exercised. *)
val default_plan : int -> Fault.plan

type report = {
  steps : int;
  terminated : bool;
  submitted : int;
  finished : int;
  rejected : int;
  cancelled : int;
  failed : int;
  routed : int;
  rerouted : int;  (** moved off the quarantined replica *)
  resubmitted : int;  (** re-route resubmissions (not double-counted) *)
  adopted : int;  (** decode sessions adopted from the handoff *)
  route_faults : int;
  migrations_started : int;  (** in-flight sessions detached at the kill *)
  migrations_completed : int;  (** resumed on a healthy replica *)
  migrations_failed : int;  (** failed terminally (still conserved) *)
  injected : int;
  retries : int;
  shed : int;
  denied : int;  (** KV admission denials *)
  double_released : int;  (** must be 0 *)
  compared : int;  (** finished requests checked for bit-identity *)
  mismatched : int;  (** must be 0 *)
  fleet_slo_ttft : int;  (** fleet SLO-burn gauges after the drain *)
  fleet_slo_deadline : int;
  traces_checked : int;
      (** causal timelines verified complete ({!Telemetry.Trace.check});
          0 when the flight recorder is disabled *)
  migrated_traced : int;
      (** timelines carrying a detach→resume join — each checked to have
          exactly one (a migrated KV copy moves exactly once) *)
  violations : string list;  (** empty = all invariants held *)
}

(** Builds the model and fleet, installs the plan, drives to drain (or
    [max_steps]), restores fault state, and verifies the invariants. A
    non-empty [violations] also triggers a flight-recorder post-mortem
    dump under reason [cluster.chaos.invariant]. *)
val run : ?config:config -> unit -> report

val report_to_string : report -> string

(** Chaos harness: the serving loop under seeded deterministic fault
    injection ({!Fault}), checked against a fault-free reference run.

    [run] drives the same virtual-clock request trace twice through
    identically-configured schedulers — once clean, once with the fault
    plan installed, the {!Team} watchdog armed and the {!Tpp_check}
    numeric guard sampling kernel output — and asserts:

    - liveness: both runs terminate within the step budget;
    - ledger conservation: every submitted request ends terminal, and
      finished + rejected + cancelled + failed = submitted;
    - no KV leak: the pool has zero caches in use after the drain; with
      a paged pool, additionally arena conservation — free blocks plus
      prefix-trie pins must equal the arena size (no block leaked by any
      rewind path);
    - bit-identical recovery: requests finished by both runs have
      exactly equal outputs (tolerance 0.0) — retries, rewinds, steals
      and quarantines must be semantically invisible;
    - trace conservation (when the flight recorder is enabled): every
      ledgered request leaves a complete well-nested causal timeline
      ({!Telemetry.Trace.check}) whatever faults it survived.

    Faults are triggered by per-site invocation counts, and the clock
    driving deadlines is virtual, so the same seed reproduces the same
    fault schedule and the same report on any host. *)

type config = {
  seed : int;
  requests : int;
  prompt_len : Load_gen.dist;
  new_tokens : Load_gen.dist;
  shared_prefix : int;
      (** tokens of a common prefix prepended to every prompt (0 = none):
          exercises the prefix trie + COW paths under fault injection *)
  arrival_gap_s : float;  (** virtual seconds between arrivals *)
  deadline_s : float;  (** virtual-clock SLO per request *)
  dt_s : float;  (** virtual seconds per drive step *)
  scheduler : Scheduler.config;
  plan : Fault.plan option;  (** [None] = [default_plan seed] *)
  watchdog : Team.watchdog option;
  max_steps : int;
}

(** Seed 42, 24 requests, batch 4 over 2 threads, retries + numeric
    checks on, watchdog armed; roughly a 2 s run. *)
val default : config

(** One rule per fault-site class (serve transients, KV denial, JIT
    failure, NaN poison, worker exception/stall/death), with periods
    calibrated so injected faults behave as transients on [Llm.tiny]. *)
val default_plan : int -> Fault.plan

type report = {
  steps : int;
  terminated : bool;
  submitted : int;
  finished : int;
  rejected : int;
  cancelled : int;
  failed : int;
  compared : int;  (** finished by both runs and compared bit-for-bit *)
  mismatched : int;
  injected : int;
  retries : int;
  shed : int;
  trips : int;
  quarantined : int;
  denied : int;
  numeric_errors : int;
  pages_allocated : int;  (** paged KV: arena blocks handed out *)
  pages_freed : int;
  cow_copies : int;
  prefix_hits : int;
  traces_checked : int;
      (** causal timelines verified complete (0 when the flight recorder
          is disabled) *)
  violations : string list;  (** empty iff every invariant held *)
}

val run : ?config:config -> unit -> report
val report_to_string : report -> string

(* KV-cache pool: recycles [Llm.kv_cache] buffers across sessions instead
   of allocating a fresh cache per request. [acquire] prefers a rewound
   free cache (its capacity-backed buffers survive [Llm.reset_cache], so a
   recycled session appends into already-grown storage without touching
   the allocator); [release] rewinds and returns it, dropping caches
   beyond [max_free]. Occupancy is published as telemetry gauges so the
   report shows pool behaviour under load. *)

(* fault site: a fired [`Deny] models KV memory pressure — the scheduler
   must shed load, it cannot conjure cache space *)
let deny_site = Fault.site "serve.kv.acquire"

(* flight-recorder label for all KV pool events *)
let lbl_kv = Telemetry.Recorder.intern "serve.kv_pool"

type t = {
  llm : Llm.t;
  init_cap : int;  (* initial rows of a freshly created cache *)
  max_free : int;
  max_live : int;  (* hard bound on concurrently acquired caches *)
  lock : Mutex.t;
  mutable free : Llm.kv_cache list;
  mutable free_n : int;
  mutable in_use : int;
  mutable peak_rows : int;  (* largest per-layer capacity seen *)
  in_use_g : Telemetry.Gauge.t;
  free_g : Telemetry.Gauge.t;
  peak_rows_g : Telemetry.Gauge.t;
  created_c : Telemetry.Counter.t;
  reused_c : Telemetry.Counter.t;
  denied_c : Telemetry.Counter.t;
}

let create ?(init_cap = 16) ?(max_free = 64) ?(max_live = max_int) llm =
  assert (max_live > 0);
  { llm; init_cap; max_free; max_live; lock = Mutex.create (); free = [];
    free_n = 0;
    in_use = 0; peak_rows = 0;
    in_use_g = Telemetry.Gauge.find_or_create Metrics.kv_in_use_name;
    free_g = Telemetry.Gauge.find_or_create Metrics.kv_free_name;
    peak_rows_g = Telemetry.Gauge.find_or_create Metrics.kv_peak_rows_name;
    created_c = Telemetry.Counter.find_or_create Metrics.kv_created_name;
    reused_c = Telemetry.Counter.find_or_create Metrics.kv_reused_name;
    denied_c = Telemetry.Counter.find_or_create Metrics.kv_denied_name }

let publish t =
  Telemetry.Gauge.set t.in_use_g t.in_use;
  Telemetry.Gauge.set t.free_g t.free_n;
  Telemetry.Gauge.set t.peak_rows_g t.peak_rows

(* [`Denied] instead of unbounded growth: the pool refuses an acquire
   beyond [max_live] live caches (or when the fault site fires), and the
   scheduler degrades (sheds load) rather than letting memory grow
   without limit under pressure. The fault fires outside the lock: a
   [Stall] rule must not block [release]. *)
let acquire t =
  let fault_denied =
    match Fault.fire deny_site with `Deny -> true | `None | `Nan -> false
  in
  Mutex.lock t.lock;
  if fault_denied || t.in_use >= t.max_live then begin
    Telemetry.Counter.incr t.denied_c;
    let in_use = t.in_use in
    Mutex.unlock t.lock;
    Telemetry.Recorder.emit Telemetry.Recorder.Kv_deny ~label:lbl_kv
      ~a:t.init_cap ~b:in_use;
    `Denied
  end
  else begin
    let cache =
      match t.free with
      | c :: rest ->
        t.free <- rest;
        t.free_n <- t.free_n - 1;
        Telemetry.Counter.incr t.reused_c;
        c
      | [] ->
        Telemetry.Counter.incr t.created_c;
        Llm.new_cache ~cap:t.init_cap t.llm
    in
    t.in_use <- t.in_use + 1;
    publish t;
    let in_use = t.in_use in
    Mutex.unlock t.lock;
    Telemetry.Recorder.emit Telemetry.Recorder.Kv_acquire ~label:lbl_kv
      ~a:(Llm.cache_capacity cache)
      ~b:in_use;
    `Cache cache
  end

let release t cache =
  Llm.reset_cache cache;
  Mutex.lock t.lock;
  t.peak_rows <- max t.peak_rows (Llm.cache_capacity cache);
  t.in_use <- t.in_use - 1;
  if t.free_n < t.max_free then begin
    t.free <- cache :: t.free;
    t.free_n <- t.free_n + 1
  end;
  publish t;
  let in_use = t.in_use in
  Mutex.unlock t.lock;
  Telemetry.Recorder.emit Telemetry.Recorder.Kv_release ~label:lbl_kv
    ~a:(Llm.cache_capacity cache) ~b:in_use

let in_use t = t.in_use
let denied t = Telemetry.Counter.get t.denied_c
let free_count t = t.free_n
let peak_rows t = t.peak_rows
let created t = Telemetry.Counter.get t.created_c
let reused t = Telemetry.Counter.get t.reused_c

(* KV-cache pool: recycles [Llm.kv_cache] objects across sessions instead
   of allocating fresh state per request. [acquire] prefers a rewound
   free cache (contiguous buffers survive [Llm.reset_cache]; a paged
   cache keeps its gather scratch while its blocks return to the arena),
   so a recycled session starts without touching the allocator.
   [release] rewinds and returns it, dropping caches beyond [max_free].
   Occupancy is published as telemetry gauges so the report shows pool
   behaviour under load.

   The pool owns the storage policy: [Contiguous] hands out
   capacity-backed per-request buffers; [Paged] hands out block tables
   over one shared [Kv.Block_manager] arena, optionally fronted by a
   [Kv.Prefix] trie so requests sharing a prompt prefix share physical
   blocks. *)

(* fault site: a fired [`Deny] models KV memory pressure — the scheduler
   must shed load, it cannot conjure cache space *)
let deny_site = Fault.site "serve.kv.acquire"

(* flight-recorder label for all KV pool events *)
let lbl_kv = Telemetry.Recorder.intern "serve.kv_pool"

type policy =
  | Contiguous
  | Paged of { block_size : int; num_blocks : int; prefix : bool }

type t = {
  llm : Llm.t;
  policy : policy;
  mgr : Kv.Block_manager.t option;  (* Some iff policy is Paged *)
  pfx : Kv.Prefix.t option;  (* Some iff Paged with prefix sharing *)
  init_cap : int;  (* initial rows of a freshly created contiguous cache *)
  max_free : int;
  max_live : int;  (* hard bound on concurrently acquired caches *)
  lock : Mutex.t;
  mutable free : Llm.kv_cache list;
  mutable free_n : int;
  mutable in_use : int;
  mutable peak_rows : int;  (* largest cache capacity seen at release *)
  in_use_g : Telemetry.Gauge.t;
  free_g : Telemetry.Gauge.t;
  peak_rows_g : Telemetry.Gauge.t;
  created_c : Telemetry.Counter.t;
  reused_c : Telemetry.Counter.t;
  denied_c : Telemetry.Counter.t;
}

let create ?(init_cap = 16) ?(max_free = 64) ?(max_live = max_int)
    ?(policy = Contiguous) ?manager llm =
  assert (max_live > 0);
  let mgr, pfx =
    match policy with
    | Contiguous -> (None, None)
    | Paged { block_size; num_blocks; prefix } ->
      let cfg = Llm.config llm in
      let m =
        match manager with
        | Some m -> m
        | None ->
          Kv.Block_manager.create ~block_size ~num_blocks
            ~layers:cfg.Llm.layers ~hidden:cfg.Llm.hidden ()
      in
      (Some m, if prefix then Some (Kv.Prefix.create m) else None)
  in
  { llm; policy; mgr; pfx; init_cap; max_free; max_live;
    lock = Mutex.create (); free = []; free_n = 0;
    in_use = 0; peak_rows = 0;
    in_use_g = Telemetry.Gauge.find_or_create Metrics.kv_in_use_name;
    free_g = Telemetry.Gauge.find_or_create Metrics.kv_free_name;
    peak_rows_g = Telemetry.Gauge.find_or_create Metrics.kv_peak_rows_name;
    created_c = Telemetry.Counter.find_or_create Metrics.kv_created_name;
    reused_c = Telemetry.Counter.find_or_create Metrics.kv_reused_name;
    denied_c = Telemetry.Counter.find_or_create Metrics.kv_denied_name }

let publish t =
  Telemetry.Gauge.set t.in_use_g t.in_use;
  Telemetry.Gauge.set t.free_g t.free_n;
  Telemetry.Gauge.set t.peak_rows_g t.peak_rows;
  match t.mgr with
  | Some m -> Kv.Block_manager.publish m
  | None -> ()

let manager t = t.mgr
let prefix_cache t = t.pfx
let policy t = t.policy

let new_cache_for t =
  match t.mgr with
  | Some m -> Llm.new_paged_cache t.llm m
  | None -> Llm.new_cache ~cap:t.init_cap t.llm

(* Common acquire body: caller holds no lock; [extra_deny] runs under the
   pool lock and may veto (paged admission capacity check). [owner] is
   the requesting trace id: when given, the grant/denial also lands in
   the request's causal timeline as a [Trace_kv] event. *)
let acquire_common t ?owner ~extra_deny ~on_cache () =
  let fault_denied =
    match Fault.fire deny_site with `Deny -> true | `None | `Nan -> false
  in
  Mutex.lock t.lock;
  if fault_denied || t.in_use >= t.max_live || extra_deny () then begin
    Telemetry.Counter.incr t.denied_c;
    let in_use = t.in_use in
    Mutex.unlock t.lock;
    Telemetry.Recorder.emit Telemetry.Recorder.Kv_deny ~label:lbl_kv
      ~a:t.init_cap ~b:in_use;
    (match owner with
    | Some tr ->
      Telemetry.Recorder.emit Telemetry.Recorder.Trace_kv ~label:lbl_kv ~a:tr
        ~b:(-1)
    | None -> ());
    `Denied
  end
  else begin
    let cache =
      match t.free with
      | c :: rest ->
        t.free <- rest;
        t.free_n <- t.free_n - 1;
        Telemetry.Counter.incr t.reused_c;
        c
      | [] ->
        Telemetry.Counter.incr t.created_c;
        new_cache_for t
    in
    t.in_use <- t.in_use + 1;
    publish t;
    let in_use = t.in_use in
    Mutex.unlock t.lock;
    Telemetry.Recorder.emit Telemetry.Recorder.Kv_acquire ~label:lbl_kv
      ~a:(Llm.cache_capacity cache)
      ~b:in_use;
    (match owner with
    | Some tr ->
      Telemetry.Recorder.emit Telemetry.Recorder.Trace_kv ~label:lbl_kv ~a:tr
        ~b:(Llm.cache_capacity cache)
    | None -> ());
    on_cache cache
  end

(* [`Denied] instead of unbounded growth: the pool refuses an acquire
   beyond [max_live] live caches (or when the fault site fires), and the
   scheduler degrades (sheds load) rather than letting memory grow
   without limit under pressure. The fault fires outside the lock: a
   [Stall] rule must not block [release]. *)
let acquire t =
  acquire_common t ~extra_deny:(fun () -> false)
    ~on_cache:(fun c -> `Cache c)
    ()

(* Prefix-aware, admission-gated acquire. [total_rows] is the request's
   whole KV footprint (prompt + generated tokens); a paged pool denies
   up front when the arena cannot cover the un-shared part, so requests
   are shed at admission instead of failing mid-decode. The matched
   prefix is capped at [prompt-1] tokens: at least one suffix row must
   remain to compute the first token. *)
let acquire_for t ?owner ~prompt ~total_rows () =
  match t.mgr with
  | None ->
    acquire_common t ?owner
      ~extra_deny:(fun () -> false)
      ~on_cache:(fun c -> `Cache (c, 0))
      ()
  | Some m ->
    let bs = Kv.Block_manager.block_size m in
    let blocks, btok =
      match t.pfx with
      | Some p -> Kv.Prefix.lookup p ~prompt
      | None -> ([||], 0)
    in
    let matched = min (Array.length prompt - 1) btok in
    let matched = max matched 0 in
    let attach_n = (matched + bs - 1) / bs in
    let needed =
      ((total_rows + bs - 1) / bs) - attach_n
      (* a mid-block shared boundary copies-on-write into one extra block *)
      + (if matched mod bs <> 0 && matched > 0 then 1 else 0)
    in
    let extra_deny () = Kv.Block_manager.free_blocks m < needed in
    acquire_common t ?owner ~extra_deny
      ~on_cache:(fun c ->
        if matched > 0 then
          Llm.attach_prefix c ~blocks:(Array.sub blocks 0 attach_n)
            ~len:matched;
        `Cache (c, matched))
      ()

let release t cache =
  (* capture capacity before the rewind: a paged cache's block table
     empties on reset, a contiguous cache keeps its buffers either way *)
  let cap = Llm.cache_capacity cache in
  Llm.reset_cache cache;
  Mutex.lock t.lock;
  t.peak_rows <- max t.peak_rows cap;
  t.in_use <- t.in_use - 1;
  if t.free_n < t.max_free then begin
    t.free <- cache :: t.free;
    t.free_n <- t.free_n + 1
  end;
  publish t;
  let in_use = t.in_use in
  Mutex.unlock t.lock;
  Telemetry.Recorder.emit Telemetry.Recorder.Kv_release ~label:lbl_kv ~a:cap
    ~b:in_use

(* Admission-gated restore of a migrated session's KV snapshot — the
   destination half of a live migration. Same admission discipline as
   [acquire_for] ([serve.kv.acquire] fault, max_live bound, arena
   headroom for the request's whole footprint), but the cache is filled
   from the export instead of a fresh prefill: matched prompt chunks
   re-attach against *this* replica's trie (block-aligned by
   construction — the trie pins only full chunks — and bit-identical to
   the exported bytes since every replica runs the same deterministic
   engine), the remainder is imported as private blocks. On a mid-import
   denial the half-acquired cache is returned to the pool and [`Denied]
   is reported — the caller's snapshot stays the one live copy. *)
let import t ?owner ~prompt ~total_rows (e : Kv.Block_manager.export) =
  match t.mgr with
  | None ->
    acquire_common t ?owner
      ~extra_deny:(fun () -> false)
      ~on_cache:(fun c ->
        Llm.import_cache c e;
        `Cache c)
      ()
  | Some m ->
    let bs = Kv.Block_manager.block_size m in
    let blocks, btok =
      match t.pfx with
      | Some p -> Kv.Prefix.lookup p ~prompt
      | None -> ([||], 0)
    in
    (* never attach past the snapshot, and keep the boundary aligned *)
    let matched = min btok e.Kv.Block_manager.xrows / bs * bs in
    let attach_n = matched / bs in
    let needed = ((total_rows + bs - 1) / bs) - attach_n in
    let extra_deny () = Kv.Block_manager.free_blocks m < needed in
    acquire_common t ?owner ~extra_deny
      ~on_cache:(fun c ->
        match
          Llm.import_cache c
            ?attach:
              (if matched > 0 then
                 Some (Array.sub blocks 0 attach_n, matched)
               else None)
            e
        with
        | () -> `Cache c
        | exception Kv.Seq.Out_of_blocks ->
          release t c;
          `Denied
        | exception exn ->
          release t c;
          raise exn)
      ()

(* Register a finished prefill in the prefix trie so later requests with
   the same prompt prefix reuse its blocks. No-op for contiguous pools. *)
let register t ~prompt cache =
  match (t.pfx, Llm.cache_seq cache) with
  | Some p, Some seq -> Kv.Prefix.insert p ~prompt ~blocks:(Kv.Seq.blocks seq)
  | _ -> ()

let in_use t = t.in_use
let denied t = Telemetry.Counter.get t.denied_c
let free_count t = t.free_n
let peak_rows t = t.peak_rows
let created t = Telemetry.Counter.get t.created_c
let reused t = Telemetry.Counter.get t.reused_c

(** One inference request through its serving lifecycle:
    arrival -> [Queued] -> [Prefilling] -> [Decoding] -> [Finished], or
    terminally: [Rejected] at submission (admission queue full, or the
    deadline already passed), [Cancelled] by mid-flight deadline
    enforcement, [Failed] when prefill/decode kept failing after the
    scheduler's bounded retries. *)

type state =
  | Queued
  | Prefilling
  | Decoding
  | Finished
  | Rejected
  | Cancelled
  | Failed

val state_name : state -> string

(** Compact state code carried in [Trace_end] recorder events (0=queued …
    6=failed; agrees with {!Telemetry.Trace.state_name}). *)
val state_code : state -> int

(** True for states that can never change again ([Finished], [Rejected],
    [Cancelled], [Failed]). *)
val terminal : state -> bool

type t = {
  id : int;
  trace : int;
      (** causal-trace id tagging this request's recorder events; assigned
          at {!Load_gen}/submit time (defaults to [id]) and carried across
          routing, handoff and migration unchanged *)
  prompt : int array;  (** prefill input token ids *)
  gen : int array;
      (** pre-drawn "sampled" ids fed back during decode: [gen.(k)] is the
          input of decode step [k+1]; only [gen.(0 .. new_tokens - 2)] are
          consumed *)
  new_tokens : int;
      (** total output tokens: 1 from prefill + decode steps *)
  deadline_s : float;  (** SLO: total-latency budget from arrival *)
  mutable arrival_s : float;  (** set by the scheduler at submission *)
  mutable state : state;
  mutable ttft_s : float;  (** time-to-first-token; [nan] until prefilled *)
  mutable finish_s : float;  (** total latency; [nan] until finished *)
  mutable outputs : Tensor.t list;  (** hidden states, newest first *)
}

(** [make ~id ~prompt ~gen ()] — [new_tokens] is [Array.length gen];
    default deadline is infinite (never violates the SLO); default
    [trace] is [id]. *)
val make :
  id:int ->
  ?trace:int ->
  prompt:int array ->
  gen:int array ->
  ?deadline_s:float ->
  unit ->
  t

(** Absolute deadline on the serving clock (arrival + budget). *)
val deadline_abs : t -> float

val met_deadline : t -> bool

(** Per-token hidden states in emission order. *)
val outputs : t -> Tensor.t list

(** Synthetic open-loop load: Poisson arrivals with configurable
    prompt/output length distributions, fully reproducible from a seed.
    The generator also plays the sampler's role — each request carries the
    pre-drawn token ids it feeds back during decode. *)

type dist = Fixed of int | Uniform of int * int  (** inclusive bounds *)

val sample : Prng.t -> dist -> int
val dist_to_string : dist -> string

type config = {
  seed : int;
  rate_hz : float;  (** mean Poisson arrival rate *)
  duration_s : float;  (** arrivals are drawn in [0, duration_s) *)
  prompt_len : dist;
  new_tokens : dist;
  deadline_s : float;  (** per-request SLO; [infinity] disables *)
}

(** 20 req/s for 5 s, prompts of 4–12 tokens, 2–8 output tokens, no
    deadline. *)
val default : config

(** [generate cfg ~vocab] — arrival-time-sorted [(arrival_s, request)]
    trace; token ids are uniform over [0, vocab). *)
val generate : config -> vocab:int -> (float * Request.t) list

(** Synthetic open-loop load: Poisson arrivals with configurable
    prompt/output length distributions, fully reproducible from a seed.
    The generator also plays the sampler's role — each request carries the
    pre-drawn token ids it feeds back during decode. *)

type dist = Fixed of int | Uniform of int * int  (** inclusive bounds *)

val sample : Prng.t -> dist -> int
val dist_to_string : dist -> string

type config = {
  seed : int;
  rate_hz : float;  (** mean Poisson arrival rate *)
  duration_s : float;  (** arrivals are drawn in [0, duration_s) *)
  prompt_len : dist;
  new_tokens : dist;
  deadline_s : float;  (** per-request SLO; [infinity] disables *)
  id_base : int;  (** first request id (default 0) *)
  id_stride : int;  (** id increment between requests (default 1) *)
  sys_prompt_len : int;
      (** tokens of a shared "system prompt" prepended to every prompt —
          drawn from a fixed seed so every {!split} substream shares it
          (the workload shape prefix sharing exploits); 0 disables *)
}

(** 20 req/s for 5 s, prompts of 4–12 tokens, 2–8 output tokens, no
    deadline, ids 0, 1, 2, … *)
val default : config

(** [generate cfg ~vocab] — arrival-time-sorted [(arrival_s, request)]
    trace; token ids are uniform over [0, vocab). *)
val generate : config -> vocab:int -> (float * Request.t) list

(** [split cfg n] — [n] independent seeded substreams, one per replica.
    Substream [i] gets a seed mixed from [(cfg.seed, i)], rate
    [cfg.rate_hz / n], and the id lattice [id_base + i, stride n x] so
    request ids are globally unique across substreams. Each substream is
    deterministic in isolation: the trace a replica sees depends only on
    [cfg] and its index, never on how a router interleaves replicas. *)
val split : config -> int -> config list

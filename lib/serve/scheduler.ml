(* Continuous-batching serving loop over one [Llm.t] — the Orca-style
   iteration-level scheduler the paper's two-phase latency structure
   (§IV-A / Fig. 11) calls for:

     - [submit] appends to a bounded admission queue (explicit rejection
       when full — backpressure instead of unbounded memory); a request
       whose deadline has already passed is rejected up front;
     - each [step] first enforces deadlines (a session past its SLO is
       cancelled and its KV cache returned to the pool; a queued request
       past its SLO is cancelled without ever running), then admits
       queued requests up to the current batch limit, running the
       compute-bound prefill for every admission and recording its TTFT;
       then runs ONE bandwidth-bound decode step for EVERY active
       session — requests join and leave the batch at token granularity,
       never waiting for a batch-mate to finish;
     - finished sessions release their KV cache back to the pool, making
       room for the next admission on the following iteration.

   Failure handling (the serving half of lib/fault's contract):
     - a prefill/decode step that raises is retried up to [max_retries]
       times with optional exponential backoff; before each retry the KV
       cache is rewound ([Llm.truncate_cache]) to its pre-step length, so
       a recovered run is bit-identical to one that never failed. A step
       that keeps failing marks the request [Failed] and releases its KV.
     - a [`Denied] KV acquire sheds load: the request goes back to the
       queue head and the effective batch limit shrinks (never below 1);
       after [recovery_steps] denial-free iterations it grows back toward
       [max_batch]. Denial with an empty active set means no release can
       ever unblock us, so the request fails instead of spinning.
     - [check_numerics] turns each step's output through the TPP numeric
       guard, so a NaN poisoned into a kernel surfaces as a retryable
       structured error instead of a corrupt token.

   Sessions are independent (no cross-request math), so batched decoding
   is bit-identical to running each session alone — the invariant the
   serve tests pin down. The scheduler is deterministic given a submission
   order: wall-clock time feeds only the latency telemetry — unless
   deadlines are finite, in which case the caller chooses the clock (the
   chaos harness drives a virtual one for determinism). *)

type policy = Fcfs | Edf

let policy_name = function Fcfs -> "fcfs" | Edf -> "deadline"

let policy_of_string = function
  | "fcfs" -> Some Fcfs
  | "deadline" | "edf" -> Some Edf
  | _ -> None

type config = {
  max_queue : int;  (* bounded admission queue; submit rejects beyond *)
  max_batch : int;  (* max concurrently decoding sessions *)
  policy : policy;
  nthreads : int option;  (* team size handed to prefill/decode *)
  kv_cap : int;  (* initial rows of pooled KV caches *)
  max_retries : int;  (* extra attempts for a failing prefill/decode *)
  retry_backoff_s : float;  (* base sleep before retry k doubles; 0 = none *)
  check_numerics : bool;  (* guard step outputs with Tpp_check.finite_2d *)
  replica : int option;
      (* cluster replica index: observe into serve.r<i>.* telemetry
         alongside the global serve.* names *)
}

let default_config =
  { max_queue = 64; max_batch = 8; policy = Fcfs; nthreads = None;
    kv_cap = 16; max_retries = 2; retry_backoff_s = 0.0;
    check_numerics = false; replica = None }

(* pluggable model entry points, so a cluster replica can substitute the
   tensor-parallel (sharded) kernels for the default single-team path
   without the scheduler knowing the difference *)
type engine = {
  prefill : Llm.kv_cache -> Tensor.t -> Tensor.t;
  decode : Llm.kv_cache -> Tensor.t -> Tensor.t;
}

(* denial-free steps before the shed batch limit is raised by one *)
let recovery_steps = 8

type session = {
  req : Request.t;
  cache : Llm.kv_cache;
  release : Llm.kv_cache -> unit;
      (* where the cache goes on retirement: the scheduler's own pool for
         locally admitted sessions, the prefill replica's pool for
         sessions adopted through a KV handoff *)
  mutable emitted : int;  (* output tokens produced so far *)
  mutable last_token_s : float;  (* inter-token latency anchor *)
}

(* per-replica telemetry shadow: bumped alongside the global handles *)
type replica_tel = {
  r_ttft : Telemetry.Histogram.t;
  r_tpot : Telemetry.Histogram.t;
  r_submitted : Telemetry.Counter.t;
  r_rejected : Telemetry.Counter.t;
  r_completed : Telemetry.Counter.t;
  r_cancelled : Telemetry.Counter.t;
  r_failed : Telemetry.Counter.t;
  r_ttft_breach : Telemetry.Counter.t;
  r_deadline_breach : Telemetry.Counter.t;
}

type t = {
  llm : Llm.t;
  cfg : config;
  engine : engine;
  rtel : replica_tel option;
  pool : Kv_pool.t;
  mutable queue : Request.t list;  (* oldest first *)
  mutable active : session list;  (* admission order *)
  mutable ledger : Request.t list;  (* every submission, newest first *)
  mutable finished : Request.t list;  (* completion order, newest first *)
  mutable tokens : int;
  mutable eff_batch : int;  (* current (possibly shed) batch limit *)
  mutable clean : int;  (* consecutive denial-free steps *)
  mutable denied_step : bool;  (* saw a KV denial this step *)
  mutable idle_denials : int;  (* consecutive denials with an empty batch *)
  ttft_h : Telemetry.Histogram.t;
  tpot_h : Telemetry.Histogram.t;
  submitted_c : Telemetry.Counter.t;
  rejected_c : Telemetry.Counter.t;
  completed_c : Telemetry.Counter.t;
  cancelled_c : Telemetry.Counter.t;
  failed_c : Telemetry.Counter.t;
  queue_g : Telemetry.Gauge.t;
  eff_batch_g : Telemetry.Gauge.t;
  retries_c : Telemetry.Counter.t;
  shed_c : Telemetry.Counter.t;
  ttft_breach_c : Telemetry.Counter.t;
  deadline_breach_c : Telemetry.Counter.t;
}

(* fault sites: fire ahead of the real model call, inside the retry
   scope, so an injected transient exercises exactly the recovery path a
   real kernel failure would *)
let prefill_site = Fault.site "serve.prefill"
let decode_site = Fault.site "serve.decode"

(* flight-recorder label for scheduler iteration events *)
let lbl_sched = Telemetry.Recorder.intern "serve.scheduler"

(* this many deadline cancellations in one sweep is a cancellation storm:
   worth a post-mortem dump, because by the next report the evidence of
   *why* the batch fell behind (stalls, faults, KV denials) is gone *)
let storm_threshold = 4

let create ?(config = default_config) ?engine llm =
  assert (config.max_queue > 0 && config.max_batch > 0);
  assert (config.max_retries >= 0 && config.retry_backoff_s >= 0.0);
  let engine =
    match engine with
    | Some e -> e
    | None ->
      { prefill =
          (fun cache emb -> Llm.prefill ?nthreads:config.nthreads llm cache emb);
        decode =
          (fun cache emb ->
            Llm.decode_step ?nthreads:config.nthreads llm cache emb) }
  in
  let rtel =
    Option.map
      (fun i ->
        { r_ttft =
            Telemetry.Histogram.find_or_create (Metrics.replica_ttft_ms_name i);
          r_tpot =
            Telemetry.Histogram.find_or_create (Metrics.replica_tpot_ms_name i);
          r_submitted =
            Telemetry.Counter.find_or_create (Metrics.replica_submitted_name i);
          r_rejected =
            Telemetry.Counter.find_or_create (Metrics.replica_rejected_name i);
          r_completed =
            Telemetry.Counter.find_or_create (Metrics.replica_completed_name i);
          r_cancelled =
            Telemetry.Counter.find_or_create (Metrics.replica_cancelled_name i);
          r_failed =
            Telemetry.Counter.find_or_create (Metrics.replica_failed_name i);
          r_ttft_breach =
            Telemetry.Counter.find_or_create
              (Metrics.replica_slo_ttft_breaches_name i);
          r_deadline_breach =
            Telemetry.Counter.find_or_create
              (Metrics.replica_slo_deadline_breaches_name i) })
      config.replica
  in
  let t =
    { llm; cfg = config; engine; rtel;
      pool =
        Kv_pool.create ~init_cap:config.kv_cap ~max_live:config.max_batch llm;
      queue = []; active = []; ledger = []; finished = []; tokens = 0;
      eff_batch = config.max_batch; clean = 0; denied_step = false;
      idle_denials = 0;
      ttft_h = Telemetry.Histogram.find_or_create Metrics.ttft_ms_name;
      tpot_h = Telemetry.Histogram.find_or_create Metrics.tpot_ms_name;
      submitted_c = Telemetry.Counter.find_or_create Metrics.submitted_name;
      rejected_c = Telemetry.Counter.find_or_create Metrics.rejected_name;
      completed_c = Telemetry.Counter.find_or_create Metrics.completed_name;
      cancelled_c = Telemetry.Counter.find_or_create Metrics.cancelled_name;
      failed_c = Telemetry.Counter.find_or_create Metrics.failed_name;
      queue_g = Telemetry.Gauge.find_or_create Metrics.queue_depth_name;
      eff_batch_g = Telemetry.Gauge.find_or_create Metrics.eff_batch_name;
      retries_c =
        Telemetry.Counter.find_or_create Telemetry.Registry.fault_retries_name;
      shed_c =
        Telemetry.Counter.find_or_create Telemetry.Registry.fault_shed_name;
      ttft_breach_c =
        Telemetry.Counter.find_or_create Metrics.slo_ttft_breaches_name;
      deadline_breach_c =
        Telemetry.Counter.find_or_create Metrics.slo_deadline_breaches_name }
  in
  Telemetry.Gauge.set t.eff_batch_g t.eff_batch;
  t

let config t = t.cfg
let pool t = t.pool
let queue_depth t = List.length t.queue
let active_count t = List.length t.active
let tokens_emitted t = t.tokens
let effective_batch t = t.eff_batch
let busy t = t.queue <> [] || t.active <> []

(* submission ledger, oldest first *)
let requests t = List.rev t.ledger

(* completed requests in completion order *)
let finished t = List.rev t.finished

(* bump a global counter and, on a cluster replica, its serve.r<i>.*
   shadow — the per-replica split the fleet report exposes *)
let incr2 t global sel =
  Telemetry.Counter.incr global;
  match t.rtel with
  | None -> ()
  | Some r -> Telemetry.Counter.incr (sel r)

let observe2 t global sel v =
  Telemetry.Histogram.observe global v;
  match t.rtel with
  | None -> ()
  | Some r -> Telemetry.Histogram.observe (sel r) v

let submit t ~now (req : Request.t) =
  req.Request.arrival_s <- now;
  t.ledger <- req :: t.ledger;
  incr2 t t.submitted_c (fun r -> r.r_submitted);
  if req.Request.deadline_s <= 0.0 || List.length t.queue >= t.cfg.max_queue
  then begin
    (* queue full, or the SLO is already blown at submission: running it
       could only waste batch slots on a guaranteed miss *)
    if req.Request.deadline_s <= 0.0 then
      incr2 t t.deadline_breach_c (fun r -> r.r_deadline_breach);
    req.Request.state <- Request.Rejected;
    incr2 t t.rejected_c (fun r -> r.r_rejected);
    false
  end
  else begin
    req.Request.state <- Request.Queued;
    t.queue <- t.queue @ [ req ];
    Telemetry.Gauge.set t.queue_g (List.length t.queue);
    true
  end

(* next admission per policy; queue order is arrival order, and the fold
   keeps the earlier element on ties, so FCFS and EDF are deterministic *)
let pop_next t =
  match t.queue with
  | [] -> None
  | q ->
    let key (r : Request.t) =
      match t.cfg.policy with
      | Fcfs -> r.Request.arrival_s
      | Edf -> Request.deadline_abs r
    in
    let best =
      List.fold_left
        (fun acc r ->
          match acc with Some b when key b <= key r -> acc | _ -> Some r)
        None q
    in
    (match best with
    | Some b ->
      t.queue <- List.filter (fun r -> r != b) q;
      Telemetry.Gauge.set t.queue_g (List.length t.queue)
    | None -> ());
    best

let embed t ids = Llm.embed t.llm ids

let retire t (s : session) ~now_s ~(state : Request.state) =
  s.req.Request.state <- state;
  s.req.Request.finish_s <- now_s -. s.req.Request.arrival_s;
  s.release s.cache;
  t.active <- List.filter (fun x -> x != s) t.active

let finish t (s : session) ~now_s =
  retire t s ~now_s ~state:Request.Finished;
  incr2 t t.completed_c (fun r -> r.r_completed);
  if not (Request.met_deadline s.req) then
    incr2 t t.deadline_breach_c (fun r -> r.r_deadline_breach);
  t.finished <- s.req :: t.finished

let cancel t (s : session) ~now_s =
  retire t s ~now_s ~state:Request.Cancelled;
  incr2 t t.cancelled_c (fun r -> r.r_cancelled)

let fail_session t (s : session) ~now_s =
  retire t s ~now_s ~state:Request.Failed;
  incr2 t t.failed_c (fun r -> r.r_failed)

(* deadline enforcement: an active session past its absolute deadline is
   cancelled (KV back to the pool); a queued request past its deadline is
   cancelled before wasting a prefill *)
let sweep_deadlines t ~now_s =
  let storm = ref 0 in
  List.iter
    (fun s ->
      if now_s > Request.deadline_abs s.req then begin
        cancel t s ~now_s;
        incr2 t t.deadline_breach_c (fun r -> r.r_deadline_breach);
        incr storm
      end)
    t.active;
  let late, ok =
    List.partition
      (fun (r : Request.t) -> now_s > Request.deadline_abs r)
      t.queue
  in
  if late <> [] then begin
    t.queue <- ok;
    Telemetry.Gauge.set t.queue_g (List.length t.queue);
    List.iter
      (fun (r : Request.t) ->
        r.Request.state <- Request.Cancelled;
        r.Request.finish_s <- now_s -. r.Request.arrival_s;
        incr2 t t.cancelled_c (fun rt -> rt.r_cancelled);
        incr2 t t.deadline_breach_c (fun rt -> rt.r_deadline_breach);
        incr storm)
      late
  end;
  (* a burst of deadline kills in a single sweep = cancellation storm:
     snapshot the flight recorder while the evidence is still in the rings *)
  if !storm >= storm_threshold then
    ignore (Telemetry.Recorder.post_mortem ~reason:"serve.deadline_storm")

(* run one prefill/decode attempt with bounded retry; [rewind] restores
   the pre-attempt KV state so the retried step recomputes from identical
   inputs — the source of the bit-identical-recovery guarantee *)
let with_retries t ~rewind f =
  let rec go attempt =
    try f ()
    with e when attempt < t.cfg.max_retries ->
      ignore e;
      rewind ();
      Telemetry.Counter.incr t.retries_c;
      if t.cfg.retry_backoff_s > 0.0 then
        Thread.delay (t.cfg.retry_backoff_s *. float_of_int (1 lsl attempt));
      go (attempt + 1)
  in
  go 0

let guard t ~kernel out =
  if t.cfg.check_numerics then
    Tpp_check.finite_2d ~mode:Tpp_check.Full ~kernel (Tensor.view2d out);
  out

let shed t (req : Request.t) ~now_s =
  t.denied_step <- true;
  Telemetry.Counter.incr t.shed_c;
  if t.active = [] then begin
    (* nothing holds a cache, so no release can unblock this request;
       tolerate up to [max_retries] consecutive idle denials (the denial
       may be transient), then refuse — the bound preserves liveness *)
    t.idle_denials <- t.idle_denials + 1;
    if t.idle_denials > t.cfg.max_retries then begin
      t.idle_denials <- 0;
      req.Request.state <- Request.Failed;
      req.Request.finish_s <- now_s -. req.Request.arrival_s;
      incr2 t t.failed_c (fun r -> r.r_failed)
    end
    else begin
      req.Request.state <- Request.Queued;
      t.queue <- req :: t.queue;
      Telemetry.Gauge.set t.queue_g (List.length t.queue)
    end
  end
  else begin
    (* degrade: requeue at the head and shrink the admission window *)
    req.Request.state <- Request.Queued;
    t.queue <- req :: t.queue;
    Telemetry.Gauge.set t.queue_g (List.length t.queue);
    t.eff_batch <- max 1 (t.eff_batch - 1);
    Telemetry.Gauge.set t.eff_batch_g t.eff_batch
  end

(* admit one queued request: acquire KV, run the prefill phase (with
   retries), record TTFT; the prefill output is the request's first
   token *)
let admit_one t ~now =
  match pop_next t with
  | None -> `Empty
  | Some req -> (
    match Kv_pool.acquire t.pool with
    | `Denied ->
      shed t req ~now_s:(now ());
      `Denied
    | `Cache cache -> (
      t.idle_denials <- 0;
      req.Request.state <- Request.Prefilling;
      let emb = embed t req.Request.prompt in
      match
        with_retries t
          ~rewind:(fun () -> Llm.reset_cache cache)
          (fun () ->
            (match Fault.fire prefill_site with _ -> ());
            let out =
              Telemetry.Span.with_span ~cat:"serve"
                ~args:[ ("request", float_of_int req.Request.id) ]
                "prefill"
                (fun () -> t.engine.prefill cache emb)
            in
            guard t ~kernel:"serve.prefill" out)
      with
      | exception _ ->
        (* permanent: retries exhausted *)
        Llm.reset_cache cache;
        Kv_pool.release t.pool cache;
        let now_s = now () in
        req.Request.state <- Request.Failed;
        req.Request.finish_s <- now_s -. req.Request.arrival_s;
        incr2 t t.failed_c (fun r -> r.r_failed);
        `Progress
      | first ->
        let now_s = now () in
        req.Request.ttft_s <- now_s -. req.Request.arrival_s;
        observe2 t t.ttft_h (fun r -> r.r_ttft) (1000.0 *. req.Request.ttft_s);
        if now_s > Request.deadline_abs req then
          incr2 t t.ttft_breach_c (fun r -> r.r_ttft_breach);
        Telemetry.Recorder.emit Telemetry.Recorder.Sched_admit ~label:lbl_sched
          ~a:req.Request.id ~b:(List.length t.queue);
        req.Request.outputs <- [ first ];
        req.Request.state <- Request.Decoding;
        t.tokens <- t.tokens + 1;
        let s =
          { req; cache; release = Kv_pool.release t.pool; emitted = 1;
            last_token_s = now_s }
        in
        t.active <- t.active @ [ s ];
        if s.emitted >= req.Request.new_tokens then finish t s ~now_s;
        `Progress))

(* one decode step for every active session (continuous batching) *)
let decode_round t ~now =
  match t.active with
  | [] -> false
  | sessions ->
    Telemetry.Recorder.emit Telemetry.Recorder.Sched_decode ~label:lbl_sched
      ~a:(List.length sessions) ~b:t.tokens;
    List.iter
      (fun s ->
        (* the snapshot may contain sessions retired earlier this round *)
        if s.req.Request.state = Request.Decoding then begin
          let pre_len = Llm.cache_len s.cache in
          let id = s.req.Request.gen.(s.emitted - 1) in
          let e = embed t [| id |] in
          match
            with_retries t
              ~rewind:(fun () -> Llm.truncate_cache s.cache pre_len)
              (fun () ->
                (match Fault.fire decode_site with _ -> ());
                let out =
                  Telemetry.Span.with_span ~cat:"serve"
                    ~args:[ ("request", float_of_int s.req.Request.id) ]
                    "decode"
                    (fun () -> t.engine.decode s.cache e)
                in
                guard t ~kernel:"serve.decode" out)
          with
          | exception _ ->
            Llm.truncate_cache s.cache pre_len;
            fail_session t s ~now_s:(now ())
          | out ->
            let now_s = now () in
            observe2 t t.tpot_h
              (fun r -> r.r_tpot)
              (1000.0 *. (now_s -. s.last_token_s));
            s.last_token_s <- now_s;
            s.req.Request.outputs <- out :: s.req.Request.outputs;
            s.emitted <- s.emitted + 1;
            t.tokens <- t.tokens + 1;
            if s.emitted >= s.req.Request.new_tokens then finish t s ~now_s
        end)
      sessions;
    true

let step t ~now =
  t.denied_step <- false;
  sweep_deadlines t ~now_s:(now ());
  let rec admit did =
    if List.length t.active < t.eff_batch then
      match admit_one t ~now with
      | `Progress -> admit true
      | `Empty -> did
      | `Denied -> true (* stop admitting this step; shedding already done *)
    else did
  in
  let admitted = admit false in
  let decoded = decode_round t ~now in
  (* shed recovery: a run of denial-free steps earns the window back *)
  if t.denied_step then t.clean <- 0
  else if t.eff_batch < t.cfg.max_batch then begin
    t.clean <- t.clean + 1;
    if t.clean >= recovery_steps then begin
      t.clean <- 0;
      t.eff_batch <- t.eff_batch + 1;
      Telemetry.Gauge.set t.eff_batch_g t.eff_batch
    end
  end;
  admitted || decoded

let drain t ~now =
  while busy t do
    ignore (step t ~now)
  done

(* ---- cluster hooks: KV handoff adoption and quarantine eviction ---- *)

(* Adopt a session whose prefill already ran elsewhere (prefill/decode
   disaggregation): the request arrives Decoding with its first token in
   [outputs] and a filled [cache]; [release] returns the cache to its
   owning (prefill-side) pool on retirement. The prefill side already
   counted the submission, TTFT and first token, so adoption only takes
   over the decode loop — it bumps neither [submitted] nor [tokens]. *)
let adopt t ~now ~release (req : Request.t) cache =
  if List.length t.active >= t.eff_batch then `Full
  else begin
    assert (req.Request.state = Request.Decoding);
    t.ledger <- req :: t.ledger;
    let s = { req; cache; release; emitted = 1; last_token_s = now } in
    t.active <- t.active @ [ s ];
    if s.emitted >= req.Request.new_tokens then finish t s ~now_s:now;
    `Adopted
  end

(* Evict every queued (not yet admitted) request, removing it from the
   ledger as well — the quarantine path: a router re-routes the returned
   requests to healthy replicas, where re-submission re-enters them into
   that replica's ledger. In-flight sessions keep decoding (the batch
   drains); the KV caches never move. *)
let evict_queued t =
  let q = t.queue in
  t.queue <- [];
  Telemetry.Gauge.set t.queue_g 0;
  t.ledger <- List.filter (fun r -> not (List.memq r q)) t.ledger;
  q

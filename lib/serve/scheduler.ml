(* Continuous-batching serving loop over one [Llm.t] — the Orca-style
   iteration-level scheduler the paper's two-phase latency structure
   (§IV-A / Fig. 11) calls for:

     - [submit] appends to a bounded admission queue (explicit rejection
       when full — backpressure instead of unbounded memory); a request
       whose deadline has already passed is rejected up front;
     - each [step] first enforces deadlines (a session past its SLO is
       cancelled and its KV cache returned to the pool; a queued request
       past its SLO is cancelled without ever running), then admits
       queued requests up to the current batch limit, running the
       compute-bound prefill for every admission and recording its TTFT;
       then runs ONE bandwidth-bound decode step for EVERY active
       session — requests join and leave the batch at token granularity,
       never waiting for a batch-mate to finish;
     - finished sessions release their KV cache back to the pool, making
       room for the next admission on the following iteration.

   Failure handling (the serving half of lib/fault's contract):
     - a prefill/decode step that raises is retried up to [max_retries]
       times with optional exponential backoff; before each retry the KV
       cache is rewound ([Llm.truncate_cache]) to its pre-step length, so
       a recovered run is bit-identical to one that never failed. A step
       that keeps failing marks the request [Failed] and releases its KV.
     - a [`Denied] KV acquire sheds load: the request goes back to the
       queue head and the effective batch limit shrinks (never below 1);
       after [recovery_steps] denial-free iterations it grows back toward
       [max_batch]. Denial with an empty active set means no release can
       ever unblock us, so the request fails instead of spinning.
     - [check_numerics] turns each step's output through the TPP numeric
       guard, so a NaN poisoned into a kernel surfaces as a retryable
       structured error instead of a corrupt token.

   Sessions are independent (no cross-request math), so batched decoding
   is bit-identical to running each session alone — the invariant the
   serve tests pin down. The scheduler is deterministic given a submission
   order: wall-clock time feeds only the latency telemetry — unless
   deadlines are finite, in which case the caller chooses the clock (the
   chaos harness drives a virtual one for determinism). *)

type policy = Fcfs | Edf

let policy_name = function Fcfs -> "fcfs" | Edf -> "deadline"

let policy_of_string = function
  | "fcfs" -> Some Fcfs
  | "deadline" | "edf" -> Some Edf
  | _ -> None

type config = {
  max_queue : int;  (* bounded admission queue; submit rejects beyond *)
  max_batch : int;  (* max concurrently decoding sessions *)
  policy : policy;
  nthreads : int option;  (* team size handed to prefill/decode *)
  kv_cap : int;  (* initial rows of pooled KV caches *)
  max_retries : int;  (* extra attempts for a failing prefill/decode *)
  retry_backoff_s : float;  (* base sleep before retry k doubles; 0 = none *)
  check_numerics : bool;  (* guard step outputs with Tpp_check.finite_2d *)
  replica : int option;
      (* cluster replica index: observe into serve.r<i>.* telemetry
         alongside the global serve.* names *)
  paged : bool;  (* paged KV storage over a shared block arena *)
  block_size : int;  (* tokens per KV block (paged only) *)
  num_blocks : int;  (* arena size in blocks (paged only) *)
  prefix_share : bool;  (* dedupe shared prompt prefixes (paged only) *)
  spec_k : int;  (* speculative decoding: draft tokens per round; 0 = off *)
  draft_layers : int;  (* decoder layers of the draft model *)
  spec_accuracy : float;
      (* deterministic draft-acceptance model: the probability a proposed
         token matches the truth (there is no LM head — acceptance is
         drawn from a hash of (request id, position), so runs replay) *)
  online_tune : bool;
      (* enable the online per-shape spec cache: serve-path GEMM shapes
         are tuned on a background domain and hot-swapped after a
         bit-identity check *)
}

let default_config =
  { max_queue = 64; max_batch = 8; policy = Fcfs; nthreads = None;
    kv_cap = 16; max_retries = 2; retry_backoff_s = 0.0;
    check_numerics = false; replica = None;
    paged = false; block_size = 16; num_blocks = 64; prefix_share = true;
    spec_k = 0; draft_layers = 1; spec_accuracy = 0.75; online_tune = false }

(* pluggable model entry point, so a cluster replica can substitute the
   tensor-parallel (sharded) kernels for the default single-team path
   without the scheduler knowing the difference. One batched [extend]
   covers every phase: prefill (empty cache, last row = first token),
   single-token decode (one row) and speculative verification (k+1
   rows) — per-row outputs are bit-identical across all three. *)
type engine = { extend : Llm.kv_cache -> Tensor.t -> Tensor.t }

(* denial-free steps before the shed batch limit is raised by one *)
let recovery_steps = 8

type session = {
  req : Request.t;
  cache : Llm.kv_cache;
  release : Llm.kv_cache -> unit;
      (* where the cache goes on retirement: the scheduler's own pool for
         locally admitted sessions, the prefill replica's pool for
         sessions adopted through a KV handoff *)
  mutable emitted : int;  (* output tokens produced so far *)
  mutable last_token_s : float;  (* inter-token latency anchor *)
  draft : Llm.kv_cache option;
      (* speculative decoding draft-model cache (contiguous, private,
         dropped to the GC on retirement); None = greedy decode *)
}

(* per-replica telemetry shadow: bumped alongside the global handles *)
type replica_tel = {
  r_ttft : Telemetry.Histogram.t;
  r_tpot : Telemetry.Histogram.t;
  r_submitted : Telemetry.Counter.t;
  r_rejected : Telemetry.Counter.t;
  r_completed : Telemetry.Counter.t;
  r_cancelled : Telemetry.Counter.t;
  r_failed : Telemetry.Counter.t;
  r_ttft_breach : Telemetry.Counter.t;
  r_deadline_breach : Telemetry.Counter.t;
}

type t = {
  llm : Llm.t;
  cfg : config;
  engine : engine;
  draft_llm : Llm.t option;  (* Some iff spec_k > 0 *)
  rtel : replica_tel option;
  tr_lbl : int;
      (* causal-trace lane label: "replica:<i>" on a cluster replica
         (rendered as its own Chrome process lane), "serve" standalone *)
  pool : Kv_pool.t;
  mutable queue : Request.t list;  (* oldest first *)
  mutable active : session list;  (* admission order *)
  mutable ledger : Request.t list;  (* every submission, newest first *)
  mutable finished : Request.t list;  (* completion order, newest first *)
  mutable tokens : int;
  mutable eff_batch : int;  (* current (possibly shed) batch limit *)
  mutable clean : int;  (* consecutive denial-free steps *)
  mutable denied_step : bool;  (* saw a KV denial this step *)
  mutable idle_denials : int;  (* consecutive denials with an empty batch *)
  ttft_h : Telemetry.Histogram.t;
  tpot_h : Telemetry.Histogram.t;
  submitted_c : Telemetry.Counter.t;
  rejected_c : Telemetry.Counter.t;
  completed_c : Telemetry.Counter.t;
  cancelled_c : Telemetry.Counter.t;
  failed_c : Telemetry.Counter.t;
  queue_g : Telemetry.Gauge.t;
  eff_batch_g : Telemetry.Gauge.t;
  retries_c : Telemetry.Counter.t;
  shed_c : Telemetry.Counter.t;
  ttft_breach_c : Telemetry.Counter.t;
  deadline_breach_c : Telemetry.Counter.t;
  spec_proposed_c : Telemetry.Counter.t;
  spec_accepted_c : Telemetry.Counter.t;
  spec_rejected_c : Telemetry.Counter.t;
}

(* fault sites: fire ahead of the real model call, inside the retry
   scope, so an injected transient exercises exactly the recovery path a
   real kernel failure would *)
let prefill_site = Fault.site "serve.prefill"
let decode_site = Fault.site "serve.decode"

(* flight-recorder label for scheduler iteration events *)
let lbl_sched = Telemetry.Recorder.intern "serve.scheduler"

(* this many deadline cancellations in one sweep is a cancellation storm:
   worth a post-mortem dump, because by the next report the evidence of
   *why* the batch fell behind (stalls, faults, KV denials) is gone *)
let storm_threshold = 4

let create ?(config = default_config) ?engine llm =
  assert (config.max_queue > 0 && config.max_batch > 0);
  assert (config.max_retries >= 0 && config.retry_backoff_s >= 0.0);
  assert (config.spec_k >= 0 && config.block_size > 0 && config.num_blocks > 0);
  (* the spec cache is process-global (it hooks Gemm's resolver); the
     scheduler only switches it on — a cluster of replicas shares one
     cache and one background tuning domain *)
  if config.online_tune && not (Spec_cache.enabled ()) then
    Spec_cache.enable ~nthreads:(Option.value config.nthreads ~default:1) ();
  let engine =
    match engine with
    | Some e -> e
    | None ->
      { extend =
          (fun cache emb -> Llm.extend ?nthreads:config.nthreads llm cache emb)
      }
  in
  let draft_llm =
    if config.spec_k > 0 then Some (Llm.draft llm ~layers:config.draft_layers)
    else None
  in
  let rtel =
    Option.map
      (fun i ->
        { r_ttft =
            Telemetry.Histogram.find_or_create (Metrics.replica_ttft_ms_name i);
          r_tpot =
            Telemetry.Histogram.find_or_create (Metrics.replica_tpot_ms_name i);
          r_submitted =
            Telemetry.Counter.find_or_create (Metrics.replica_submitted_name i);
          r_rejected =
            Telemetry.Counter.find_or_create (Metrics.replica_rejected_name i);
          r_completed =
            Telemetry.Counter.find_or_create (Metrics.replica_completed_name i);
          r_cancelled =
            Telemetry.Counter.find_or_create (Metrics.replica_cancelled_name i);
          r_failed =
            Telemetry.Counter.find_or_create (Metrics.replica_failed_name i);
          r_ttft_breach =
            Telemetry.Counter.find_or_create
              (Metrics.replica_slo_ttft_breaches_name i);
          r_deadline_breach =
            Telemetry.Counter.find_or_create
              (Metrics.replica_slo_deadline_breaches_name i) })
      config.replica
  in
  let pool_policy =
    if config.paged then
      Kv_pool.Paged
        { block_size = config.block_size; num_blocks = config.num_blocks;
          prefix = config.prefix_share }
    else Kv_pool.Contiguous
  in
  let tr_lbl =
    match config.replica with
    | Some i -> Telemetry.Trace.replica_label i
    | None -> Telemetry.Trace.solo_label
  in
  let t =
    { llm; cfg = config; engine; draft_llm; rtel; tr_lbl;
      pool =
        Kv_pool.create ~init_cap:config.kv_cap ~max_live:config.max_batch
          ~policy:pool_policy llm;
      queue = []; active = []; ledger = []; finished = []; tokens = 0;
      eff_batch = config.max_batch; clean = 0; denied_step = false;
      idle_denials = 0;
      ttft_h = Telemetry.Histogram.find_or_create Metrics.ttft_ms_name;
      tpot_h = Telemetry.Histogram.find_or_create Metrics.tpot_ms_name;
      submitted_c = Telemetry.Counter.find_or_create Metrics.submitted_name;
      rejected_c = Telemetry.Counter.find_or_create Metrics.rejected_name;
      completed_c = Telemetry.Counter.find_or_create Metrics.completed_name;
      cancelled_c = Telemetry.Counter.find_or_create Metrics.cancelled_name;
      failed_c = Telemetry.Counter.find_or_create Metrics.failed_name;
      queue_g = Telemetry.Gauge.find_or_create Metrics.queue_depth_name;
      eff_batch_g = Telemetry.Gauge.find_or_create Metrics.eff_batch_name;
      retries_c =
        Telemetry.Counter.find_or_create Telemetry.Registry.fault_retries_name;
      shed_c =
        Telemetry.Counter.find_or_create Telemetry.Registry.fault_shed_name;
      ttft_breach_c =
        Telemetry.Counter.find_or_create Metrics.slo_ttft_breaches_name;
      deadline_breach_c =
        Telemetry.Counter.find_or_create Metrics.slo_deadline_breaches_name;
      spec_proposed_c =
        Telemetry.Counter.find_or_create Metrics.spec_proposed_name;
      spec_accepted_c =
        Telemetry.Counter.find_or_create Metrics.spec_accepted_name;
      spec_rejected_c =
        Telemetry.Counter.find_or_create Metrics.spec_rejected_name }
  in
  Telemetry.Gauge.set t.eff_batch_g t.eff_batch;
  t

let config t = t.cfg
let pool t = t.pool
let queue_depth t = List.length t.queue
let active_count t = List.length t.active
let tokens_emitted t = t.tokens
let effective_batch t = t.eff_batch
let busy t = t.queue <> [] || t.active <> []

(* submission ledger, oldest first *)
let requests t = List.rev t.ledger

(* completed requests in completion order *)
let finished t = List.rev t.finished

(* bump a global counter and, on a cluster replica, its serve.r<i>.*
   shadow — the per-replica split the fleet report exposes *)
let incr2 t global sel =
  Telemetry.Counter.incr global;
  match t.rtel with
  | None -> ()
  | Some r -> Telemetry.Counter.incr (sel r)

let observe2 t global sel v =
  Telemetry.Histogram.observe global v;
  match t.rtel with
  | None -> ()
  | Some r -> Telemetry.Histogram.observe (sel r) v

let submit_common t ~now ~count_submitted (req : Request.t) =
  req.Request.arrival_s <- now;
  t.ledger <- req :: t.ledger;
  if count_submitted then incr2 t t.submitted_c (fun r -> r.r_submitted);
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_queued ~label:t.tr_lbl
    ~a:req.Request.trace
    ~b:(List.length t.queue);
  if req.Request.deadline_s <= 0.0 || List.length t.queue >= t.cfg.max_queue
  then begin
    (* queue full, or the SLO is already blown at submission: running it
       could only waste batch slots on a guaranteed miss *)
    if req.Request.deadline_s <= 0.0 then
      incr2 t t.deadline_breach_c (fun r -> r.r_deadline_breach);
    req.Request.state <- Request.Rejected;
    incr2 t t.rejected_c (fun r -> r.r_rejected);
    Telemetry.Trace.terminal ~id:req.Request.trace ~label:t.tr_lbl
      ~state:(Request.state_code Request.Rejected)
      ~reason:"rejected" ();
    false
  end
  else begin
    req.Request.state <- Request.Queued;
    t.queue <- t.queue @ [ req ];
    Telemetry.Gauge.set t.queue_g (List.length t.queue);
    true
  end

let submit t ~now req = submit_common t ~now ~count_submitted:true req

(* Re-route resubmission (quarantine/failover): identical admission to
   [submit], but the original submission was already counted on the
   evicting replica — bumping [serve.submitted] again here is the
   double-count the router header used to document. The router records
   the event under its own [cluster.router.resubmitted] counter instead,
   so fleet telemetry reconciles with the ledger. *)
let resubmit t ~now req = submit_common t ~now ~count_submitted:false req

(* next admission per policy; queue order is arrival order, and the fold
   keeps the earlier element on ties, so FCFS and EDF are deterministic *)
let pop_next t =
  match t.queue with
  | [] -> None
  | q ->
    let key (r : Request.t) =
      match t.cfg.policy with
      | Fcfs -> r.Request.arrival_s
      | Edf -> Request.deadline_abs r
    in
    let best =
      List.fold_left
        (fun acc r ->
          match acc with Some b when key b <= key r -> acc | _ -> Some r)
        None q
    in
    (match best with
    | Some b ->
      t.queue <- List.filter (fun r -> r != b) q;
      Telemetry.Gauge.set t.queue_g (List.length t.queue)
    | None -> ());
    best

let embed t ids = Llm.embed t.llm ids

(* copy of row [r] of an [n x hidden] output — per-token outputs must not
   alias the (recycled) batched output tensor *)
let row_copy x r =
  let d = Tensor.dims x in
  Tensor.init Datatype.F32 [| 1; d.(1) |] (fun i -> Tensor.get x [| r; i.(1) |])

(* deterministic draft-acceptance draw: splitmix64 over (request id,
   token position) mapped to [0,1). No mutable RNG state — replays and
   the chaos reference run see identical accept/reject sequences. *)
let splitmix64 z =
  let open Int64 in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let accept_draw ~id ~pos =
  let h = splitmix64 (Int64.of_int (((id * 0x9E3779B1) lxor pos) + pos)) in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

(* true token id at cache position [i] of a request: prompt, then the
   pre-drawn generator ids *)
let token_at (req : Request.t) i =
  let plen = Array.length req.Request.prompt in
  if i < plen then req.Request.prompt.(i) else req.Request.gen.(i - plen)

let retire t (s : session) ~now_s ~(state : Request.state) =
  s.req.Request.state <- state;
  s.req.Request.finish_s <- now_s -. s.req.Request.arrival_s;
  s.release s.cache;
  t.active <- List.filter (fun x -> x != s) t.active

let finish t (s : session) ~now_s =
  retire t s ~now_s ~state:Request.Finished;
  incr2 t t.completed_c (fun r -> r.r_completed);
  let breached = not (Request.met_deadline s.req) in
  if breached then
    incr2 t t.deadline_breach_c (fun r -> r.r_deadline_breach);
  Telemetry.Trace.terminal ~id:s.req.Request.trace ~label:t.tr_lbl
    ~state:(Request.state_code Request.Finished)
    ?reason:(if breached then Some "deadline_breach" else None)
    ();
  t.finished <- s.req :: t.finished

let cancel t (s : session) ~now_s =
  retire t s ~now_s ~state:Request.Cancelled;
  incr2 t t.cancelled_c (fun r -> r.r_cancelled);
  Telemetry.Trace.terminal ~id:s.req.Request.trace ~label:t.tr_lbl
    ~state:(Request.state_code Request.Cancelled)
    ~reason:"deadline_cancelled" ()

let fail_session t (s : session) ~now_s =
  retire t s ~now_s ~state:Request.Failed;
  incr2 t t.failed_c (fun r -> r.r_failed);
  Telemetry.Trace.terminal ~id:s.req.Request.trace ~label:t.tr_lbl
    ~state:(Request.state_code Request.Failed)
    ~reason:"failed" ()

(* deadline enforcement: an active session past its absolute deadline is
   cancelled (KV back to the pool); a queued request past its deadline is
   cancelled before wasting a prefill *)
let sweep_deadlines t ~now_s =
  let storm = ref 0 in
  List.iter
    (fun s ->
      if now_s > Request.deadline_abs s.req then begin
        cancel t s ~now_s;
        incr2 t t.deadline_breach_c (fun r -> r.r_deadline_breach);
        incr storm
      end)
    t.active;
  let late, ok =
    List.partition
      (fun (r : Request.t) -> now_s > Request.deadline_abs r)
      t.queue
  in
  if late <> [] then begin
    t.queue <- ok;
    Telemetry.Gauge.set t.queue_g (List.length t.queue);
    List.iter
      (fun (r : Request.t) ->
        r.Request.state <- Request.Cancelled;
        r.Request.finish_s <- now_s -. r.Request.arrival_s;
        incr2 t t.cancelled_c (fun rt -> rt.r_cancelled);
        incr2 t t.deadline_breach_c (fun rt -> rt.r_deadline_breach);
        Telemetry.Trace.terminal ~id:r.Request.trace ~label:t.tr_lbl
          ~state:(Request.state_code Request.Cancelled)
          ~reason:"deadline_cancelled" ();
        incr storm)
      late
  end;
  (* a burst of deadline kills in a single sweep = cancellation storm:
     snapshot the flight recorder while the evidence is still in the rings *)
  if !storm >= storm_threshold then
    ignore (Telemetry.Recorder.post_mortem ~reason:"serve.deadline_storm")

(* run one prefill/decode attempt with bounded retry; [rewind] restores
   the pre-attempt KV state so the retried step recomputes from identical
   inputs — the source of the bit-identical-recovery guarantee. [tr] is
   the request's trace id: a retry-with-rewind lands in its causal
   timeline and force-retains the trace (a recovered fault is exactly
   the kind of tail event post-hoc debugging wants the full story for) *)
let with_retries ?tr t ~rewind f =
  let rec go attempt =
    try f ()
    with e when attempt < t.cfg.max_retries ->
      ignore e;
      rewind ();
      Telemetry.Counter.incr t.retries_c;
      (match tr with
      | Some id ->
        Telemetry.Recorder.emit Telemetry.Recorder.Trace_retry ~label:t.tr_lbl
          ~a:id ~b:(attempt + 1);
        Telemetry.Trace.retain ~id ~reason:"fault_retry"
      | None -> ());
      if t.cfg.retry_backoff_s > 0.0 then
        Thread.delay (t.cfg.retry_backoff_s *. float_of_int (1 lsl attempt));
      go (attempt + 1)
  in
  go 0

let guard t ~kernel out =
  if t.cfg.check_numerics then
    Tpp_check.finite_2d ~mode:Tpp_check.Full ~kernel (Tensor.view2d out);
  out

let shed t (req : Request.t) ~now_s =
  t.denied_step <- true;
  Telemetry.Counter.incr t.shed_c;
  Telemetry.Recorder.emit Telemetry.Recorder.Trace_shed ~label:t.tr_lbl
    ~a:req.Request.trace ~b:t.eff_batch;
  Telemetry.Trace.retain ~id:req.Request.trace ~reason:"shed";
  if t.active = [] then begin
    (* nothing holds a cache, so no release can unblock this request;
       tolerate up to [max_retries] consecutive idle denials (the denial
       may be transient), then refuse — the bound preserves liveness *)
    t.idle_denials <- t.idle_denials + 1;
    if t.idle_denials > t.cfg.max_retries then begin
      t.idle_denials <- 0;
      req.Request.state <- Request.Failed;
      req.Request.finish_s <- now_s -. req.Request.arrival_s;
      incr2 t t.failed_c (fun r -> r.r_failed);
      Telemetry.Trace.terminal ~id:req.Request.trace ~label:t.tr_lbl
        ~state:(Request.state_code Request.Failed)
        ~reason:"shed" ()
    end
    else begin
      req.Request.state <- Request.Queued;
      t.queue <- req :: t.queue;
      Telemetry.Gauge.set t.queue_g (List.length t.queue)
    end
  end
  else begin
    (* degrade: requeue at the head and shrink the admission window *)
    req.Request.state <- Request.Queued;
    t.queue <- req :: t.queue;
    Telemetry.Gauge.set t.queue_g (List.length t.queue);
    t.eff_batch <- max 1 (t.eff_batch - 1);
    Telemetry.Gauge.set t.eff_batch_g t.eff_batch
  end

(* Speculative-decoding draft setup for a freshly admitted session: a
   private contiguous cache for the draft model, prefilled over the full
   prompt. Failure is non-fatal — the session falls back to greedy
   decoding with [draft = None]. *)
let make_draft t (req : Request.t) =
  match t.draft_llm with
  | None -> None
  | Some d -> (
    let dc = Llm.new_cache ~cap:t.cfg.kv_cap d in
    match
      with_retries ~tr:req.Request.trace t
        ~rewind:(fun () -> Llm.reset_cache dc)
        (fun () ->
          ignore
            (Llm.prefill ?nthreads:t.cfg.nthreads d dc
               (embed t req.Request.prompt)))
    with
    | () -> Some dc
    | exception _ -> None)

(* admit one queued request: acquire KV (prefix-aware and, for a paged
   pool, admission-gated on arena capacity), run the prefill phase over
   the un-shared prompt suffix (with retries), record TTFT; the last
   output row is the request's first token *)
let admit_one t ~now =
  match pop_next t with
  | None -> `Empty
  | Some req -> (
    let plen = Array.length req.Request.prompt in
    let total_rows = plen + req.Request.new_tokens - 1 in
    match
      Kv_pool.acquire_for t.pool ~owner:req.Request.trace
        ~prompt:req.Request.prompt ~total_rows ()
    with
    | `Denied ->
      shed t req ~now_s:(now ());
      `Denied
    | `Cache (cache, matched) -> (
      t.idle_denials <- 0;
      req.Request.state <- Request.Prefilling;
      let suffix = Array.sub req.Request.prompt matched (plen - matched) in
      let emb = embed t suffix in
      match
        with_retries ~tr:req.Request.trace t
          ~rewind:(fun () -> Llm.truncate_cache cache matched)
          (fun () ->
            (match Fault.fire prefill_site with _ -> ());
            let out =
              Telemetry.Span.with_span ~cat:"serve"
                ~args:[ ("request", float_of_int req.Request.id) ]
                "prefill"
                (fun () -> t.engine.extend cache emb)
            in
            Llm.last_row (guard t ~kernel:"serve.prefill" out))
      with
      | exception _ ->
        (* permanent: retries exhausted *)
        Kv_pool.release t.pool cache;
        let now_s = now () in
        req.Request.state <- Request.Failed;
        req.Request.finish_s <- now_s -. req.Request.arrival_s;
        incr2 t t.failed_c (fun r -> r.r_failed);
        Telemetry.Trace.terminal ~id:req.Request.trace ~label:t.tr_lbl
          ~state:(Request.state_code Request.Failed)
          ~reason:"failed" ();
        `Progress
      | first ->
        (* pin the prompt's full blocks for later prefix hits *)
        Kv_pool.register t.pool ~prompt:req.Request.prompt cache;
        let now_s = now () in
        req.Request.ttft_s <- now_s -. req.Request.arrival_s;
        let ttft_ms = 1000.0 *. req.Request.ttft_s in
        observe2 t t.ttft_h (fun r -> r.r_ttft) ttft_ms;
        Telemetry.Trace.exemplar ~metric:Telemetry.Trace.metric_ttft
          ~value_ms:ttft_ms ~id:req.Request.trace;
        if now_s > Request.deadline_abs req then begin
          incr2 t t.ttft_breach_c (fun r -> r.r_ttft_breach);
          Telemetry.Trace.retain ~id:req.Request.trace ~reason:"ttft_breach"
        end;
        Telemetry.Recorder.emit Telemetry.Recorder.Trace_prefill
          ~label:t.tr_lbl ~a:req.Request.trace ~b:(plen - matched);
        Telemetry.Recorder.emit Telemetry.Recorder.Sched_admit ~label:lbl_sched
          ~a:req.Request.id ~b:(List.length t.queue);
        req.Request.outputs <- [ first ];
        req.Request.state <- Request.Decoding;
        t.tokens <- t.tokens + 1;
        let s =
          { req; cache; release = Kv_pool.release t.pool; emitted = 1;
            last_token_s = now_s; draft = make_draft t req }
        in
        t.active <- t.active @ [ s ];
        if s.emitted >= req.Request.new_tokens then finish t s ~now_s;
        `Progress))

(* plain greedy decode: one token for session [s] *)
let decode_greedy t (s : session) ~now =
  let pre_len = Llm.cache_len s.cache in
  let id = s.req.Request.gen.(s.emitted - 1) in
  let e = embed t [| id |] in
  match
    with_retries ~tr:s.req.Request.trace t
      ~rewind:(fun () -> Llm.truncate_cache s.cache pre_len)
      (fun () ->
        (match Fault.fire decode_site with _ -> ());
        let out =
          Telemetry.Span.with_span ~cat:"serve"
            ~args:[ ("request", float_of_int s.req.Request.id) ]
            "decode"
            (fun () -> t.engine.extend s.cache e)
        in
        guard t ~kernel:"serve.decode" out)
  with
  | exception _ ->
    Llm.truncate_cache s.cache pre_len;
    fail_session t s ~now_s:(now ())
  | out ->
    let now_s = now () in
    let tpot_ms = 1000.0 *. (now_s -. s.last_token_s) in
    observe2 t t.tpot_h (fun r -> r.r_tpot) tpot_ms;
    Telemetry.Trace.exemplar ~metric:Telemetry.Trace.metric_tpot
      ~value_ms:tpot_ms ~id:s.req.Request.trace;
    Telemetry.Recorder.emit Telemetry.Recorder.Trace_decode ~label:t.tr_lbl
      ~a:s.req.Request.trace
      ~b:(List.length t.active);
    s.last_token_s <- now_s;
    s.req.Request.outputs <- out :: s.req.Request.outputs;
    s.emitted <- s.emitted + 1;
    t.tokens <- t.tokens + 1;
    if s.emitted >= s.req.Request.new_tokens then finish t s ~now_s

(* Speculative round for session [s] against draft cache [dc]:

     1. catch up the draft (it lags the target by the tokens the last
        round accepted beyond its own proposals);
     2. run [rows-1] draft decode steps; each proposes the next input —
        the true generator id when the acceptance draw passes, a
        deliberately wrong id otherwise (there is no LM head: proposal
        quality is modelled, the compute is real);
     3. verify all [rows] inputs in ONE batched target [extend] — row j
        of the output is bit-identical to the j'th greedy decode step
        provided inputs 0..j are true (causal attention: later wrong
        inputs cannot pollute earlier rows);
     4. accept the longest true prefix (row 0's input is the known last
        token, so every round emits at least one token) and roll both
        caches back over the rejected tail — paged storage frees the
        tail blocks.

   The whole round sits in one retry scope whose rewind restores both
   cache lengths, so a mid-round fault recovers bit-identically. *)
let decode_spec t (s : session) dc ~now =
  let req = s.req in
  let pre = Llm.cache_len s.cache in
  let d_start = Llm.cache_len dc in
  let e0 = s.emitted in
  let remaining = req.Request.new_tokens - e0 in
  let rows = 1 + min t.cfg.spec_k (remaining - 1) in
  let inputs = Array.make rows 0 in
  inputs.(0) <- req.Request.gen.(e0 - 1);
  let d = Option.get t.draft_llm in
  match
    with_retries ~tr:req.Request.trace t
      ~rewind:(fun () ->
        Llm.truncate_cache s.cache pre;
        Llm.truncate_cache dc d_start)
      (fun () ->
        (match Fault.fire decode_site with _ -> ());
        (* draft catch-up: append the true tokens the draft missed *)
        if d_start < pre then begin
          let ids =
            Array.init (pre - d_start) (fun k -> token_at req (d_start + k))
          in
          ignore (Llm.extend ?nthreads:t.cfg.nthreads d dc (embed t ids))
        end;
        (* propose: draft decode steps (output discarded — acceptance is
           drawn deterministically, the compute models the draft cost) *)
        for j = 0 to rows - 2 do
          ignore
            (Llm.decode_step ?nthreads:t.cfg.nthreads d dc
               (embed t [| inputs.(j) |]));
          let truth = req.Request.gen.(e0 + j) in
          inputs.(j + 1) <-
            (if accept_draw ~id:req.Request.id ~pos:(e0 + j)
               < t.cfg.spec_accuracy
             then truth
             else truth + 1)
        done;
        (* verify: one batched prefill-style pass over all proposals *)
        let out =
          Telemetry.Span.with_span ~cat:"serve"
            ~args:[ ("request", float_of_int req.Request.id) ]
            "spec_verify"
            (fun () -> t.engine.extend s.cache (embed t inputs))
        in
        guard t ~kernel:"serve.spec_verify" out)
  with
  | exception _ ->
    Llm.truncate_cache s.cache pre;
    Llm.truncate_cache dc d_start;
    fail_session t s ~now_s:(now ())
  | out ->
    (* longest prefix of true inputs; row 0 is always true *)
    let a = ref 1 in
    while !a < rows && inputs.(!a) = req.Request.gen.(e0 - 1 + !a) do
      incr a
    done;
    let a = !a in
    (* roll back the rejected tail on both caches (frees tail blocks);
       the draft keeps only proposals the target confirmed *)
    Llm.truncate_cache s.cache (pre + a);
    Llm.truncate_cache dc (pre + min a (rows - 1));
    Telemetry.Counter.add t.spec_proposed_c (rows - 1);
    Telemetry.Counter.add t.spec_accepted_c (a - 1);
    Telemetry.Counter.add t.spec_rejected_c (rows - a);
    Telemetry.Recorder.emit Telemetry.Recorder.Trace_spec ~label:t.tr_lbl
      ~a:req.Request.trace ~b:(a - 1);
    let now_s = now () in
    let dt_ms = 1000.0 *. (now_s -. s.last_token_s) /. float_of_int a in
    Telemetry.Trace.exemplar ~metric:Telemetry.Trace.metric_tpot
      ~value_ms:dt_ms ~id:req.Request.trace;
    for j = 0 to a - 1 do
      observe2 t t.tpot_h (fun r -> r.r_tpot) dt_ms;
      s.req.Request.outputs <- row_copy out j :: s.req.Request.outputs
    done;
    s.last_token_s <- now_s;
    s.emitted <- s.emitted + a;
    t.tokens <- t.tokens + a;
    if s.emitted >= req.Request.new_tokens then finish t s ~now_s

(* one decode round for every active session (continuous batching):
   greedy sessions advance one token, speculative sessions advance by
   their accepted prefix (at least one) *)
let decode_round t ~now =
  match t.active with
  | [] -> false
  | sessions ->
    Telemetry.Recorder.emit Telemetry.Recorder.Sched_decode ~label:lbl_sched
      ~a:(List.length sessions) ~b:t.tokens;
    List.iter
      (fun s ->
        (* the snapshot may contain sessions retired earlier this round *)
        if s.req.Request.state = Request.Decoding then
          match s.draft with
          | Some dc -> decode_spec t s dc ~now
          | None -> decode_greedy t s ~now)
      sessions;
    true

let step t ~now =
  t.denied_step <- false;
  sweep_deadlines t ~now_s:(now ());
  let rec admit did =
    if List.length t.active < t.eff_batch then
      match admit_one t ~now with
      | `Progress -> admit true
      | `Empty -> did
      | `Denied -> true (* stop admitting this step; shedding already done *)
    else did
  in
  let admitted = admit false in
  let decoded = decode_round t ~now in
  (* shed recovery: a run of denial-free steps earns the window back *)
  if t.denied_step then t.clean <- 0
  else if t.eff_batch < t.cfg.max_batch then begin
    t.clean <- t.clean + 1;
    if t.clean >= recovery_steps then begin
      t.clean <- 0;
      t.eff_batch <- t.eff_batch + 1;
      Telemetry.Gauge.set t.eff_batch_g t.eff_batch
    end
  end;
  admitted || decoded

let drain t ~now =
  while busy t do
    ignore (step t ~now)
  done

(* ---- cluster hooks: KV handoff adoption and quarantine eviction ---- *)

(* Adopt a session whose prefill already ran elsewhere (prefill/decode
   disaggregation): the request arrives Decoding with its first token in
   [outputs] and a filled [cache]; [release] returns the cache to its
   owning (prefill-side) pool on retirement. The prefill side already
   counted the submission, TTFT and first token, so adoption only takes
   over the decode loop — it bumps neither [submitted] nor [tokens]. *)
let adopt t ~now ~release (req : Request.t) cache =
  if List.length t.active >= t.eff_batch then `Full
  else begin
    assert (req.Request.state = Request.Decoding);
    t.ledger <- req :: t.ledger;
    (* adopted sessions decode greedily: the draft model would have to
       re-prefill the whole prompt this replica never saw *)
    let s =
      { req; cache; release; emitted = 1; last_token_s = now; draft = None }
    in
    t.active <- t.active @ [ s ];
    if s.emitted >= req.Request.new_tokens then finish t s ~now_s:now;
    `Adopted
  end

(* Evict every queued (not yet admitted) request, removing it from the
   ledger as well — the quarantine path: a router re-routes the returned
   requests to healthy replicas, where re-submission re-enters them into
   that replica's ledger. In-flight sessions keep decoding (the batch
   drains); the KV caches never move. *)
let evict_queued t =
  let q = t.queue in
  t.queue <- [];
  Telemetry.Gauge.set t.queue_g 0;
  t.ledger <- List.filter (fun r -> not (List.memq r q)) t.ledger;
  q

(* ---- live migration: checkpoint/restore of in-flight sessions ---- *)

(* A detached session: everything another replica needs to resume the
   decode mid-flight. The decode position is rng-free — greedy decode
   reads only [gen.(emitted-1)] and the cache, and the pre-drawn [gen]
   ids travel inside the request — so resuming elsewhere replays the
   exact token stream. [d_export] is the one live copy of the KV state
   between detach and a successful destination import; [d_release] frees
   the source cache exactly once (idempotent), and the migration driver
   calls it only after the destination commits (or the migration fails
   terminally) — never before. *)
type detached = {
  d_req : Request.t;
  d_emitted : int;
  d_export : Kv.Block_manager.export;
  d_release : unit -> unit;
}

(* Detach the oldest in-flight session: snapshot its valid KV rows into
   a dense arena-independent export (a pure read), remove it from the
   active set AND the ledger (the destination's resume re-enters it), and
   package it for the router. [before_export] is the migration driver's
   fault hook (the [cluster.migrate.export] site): if it raises, the
   session fails in place — terminal, still ledgered, cache released —
   and is reported as [`Failed]; the fleet never silently loses it. *)
let detach_next ?(before_export = fun () -> ()) t ~now_s =
  match t.active with
  | [] -> `Empty
  | s :: _ -> (
    match before_export () with
    | exception _ ->
      fail_session t s ~now_s;
      `Failed s.req
    | () ->
      let d_export = Llm.export_cache s.cache in
      let released = ref false in
      let d_release () =
        if not !released then begin
          released := true;
          s.release s.cache
        end
      in
      t.active <- List.filter (fun x -> x != s) t.active;
      t.ledger <- List.filter (fun r -> r != s.req) t.ledger;
      Telemetry.Recorder.emit Telemetry.Recorder.Trace_detach ~label:t.tr_lbl
        ~a:s.req.Request.trace ~b:s.emitted;
      Telemetry.Trace.retain ~id:s.req.Request.trace ~reason:"migrated";
      (* the draft cache is dropped: a resumed session decodes greedily,
         which emits the same tokens by the spec-decode invariant *)
      `Detached { d_req = s.req; d_emitted = s.emitted; d_export; d_release })

(* Resume a detached session mid-decode — the destination half of a
   migration, and its commit point. The KV snapshot is imported through
   the pool (prefix re-attach + admission gating); only on success does
   the session enter the active set and the ledger, at its saved decode
   position, through the same machinery [adopt] uses. Bumps neither
   [submitted] nor [tokens] — both were counted where they happened.
   [`Full]/[`Denied] (and an exception from [before_import], the
   [cluster.migrate.import] fault hook) leave this replica untouched and
   the caller's package intact, so the export snapshot remains the one
   live copy and the router can retry elsewhere. *)
let resume ?(before_import = fun () -> ()) t ~now (d : detached) =
  if List.length t.active >= t.eff_batch then `Full
  else begin
    before_import ();
    let req = d.d_req in
    let plen = Array.length req.Request.prompt in
    let total_rows = plen + req.Request.new_tokens - 1 in
    match
      Kv_pool.import t.pool ~owner:req.Request.trace ~prompt:req.Request.prompt
        ~total_rows d.d_export
    with
    | `Denied -> `Denied
    | `Cache cache ->
      assert (req.Request.state = Request.Decoding);
      Telemetry.Recorder.emit Telemetry.Recorder.Trace_import ~label:t.tr_lbl
        ~a:req.Request.trace ~b:d.d_export.Kv.Block_manager.xrows;
      Telemetry.Recorder.emit Telemetry.Recorder.Trace_resume ~label:t.tr_lbl
        ~a:req.Request.trace
        ~b:(Option.value t.cfg.replica ~default:(-1));
      (* re-pin the prompt's full blocks in this replica's trie *)
      Kv_pool.register t.pool ~prompt:req.Request.prompt cache;
      t.ledger <- req :: t.ledger;
      let s =
        { req; cache; release = Kv_pool.release t.pool;
          emitted = d.d_emitted; last_token_s = now; draft = None }
      in
      t.active <- t.active @ [ s ];
      if s.emitted >= req.Request.new_tokens then finish t s ~now_s:now;
      `Resumed
  end

(* Health probe: one single-token engine extend on a private scratch
   cache (bypassing the pool, so admission pressure cannot fail it),
   checked finite — the "successful no-op step" a router demands before
   letting a quarantined or restarted replica rejoin the rotation. *)
let probe t =
  match
    let cache = Llm.new_cache ~cap:4 t.llm in
    let out = t.engine.extend cache (embed t [| 0 |]) in
    Tensor.get out [| 0; 0 |]
  with
  | x -> Float.is_finite x
  | exception _ -> false

(* Continuous-batching serving loop over one [Llm.t] — the Orca-style
   iteration-level scheduler the paper's two-phase latency structure
   (§IV-A / Fig. 11) calls for:

     - [submit] appends to a bounded admission queue (explicit rejection
       when full — backpressure instead of unbounded memory);
     - each [step] first admits queued requests up to [max_batch] active
       sessions (policy knob: FCFS or earliest-deadline-first), running
       the compute-bound prefill for every admission and recording its
       TTFT; then runs ONE bandwidth-bound decode step for EVERY active
       session — requests join and leave the batch at token granularity,
       never waiting for a batch-mate to finish;
     - finished sessions release their KV cache back to the pool, making
       room for the next admission on the following iteration.

   Sessions are independent (no cross-request math), so batched decoding
   is bit-identical to running each session alone — the invariant the
   serve tests pin down. The scheduler is deterministic given a submission
   order: wall-clock time feeds only the latency telemetry, never a
   control-flow decision. *)

type policy = Fcfs | Edf

let policy_name = function Fcfs -> "fcfs" | Edf -> "deadline"

let policy_of_string = function
  | "fcfs" -> Some Fcfs
  | "deadline" | "edf" -> Some Edf
  | _ -> None

type config = {
  max_queue : int;  (* bounded admission queue; submit rejects beyond *)
  max_batch : int;  (* max concurrently decoding sessions *)
  policy : policy;
  nthreads : int option;  (* team size handed to prefill/decode *)
  kv_cap : int;  (* initial rows of pooled KV caches *)
}

let default_config =
  { max_queue = 64; max_batch = 8; policy = Fcfs; nthreads = None;
    kv_cap = 16 }

type session = {
  req : Request.t;
  cache : Llm.kv_cache;
  mutable emitted : int;  (* output tokens produced so far *)
  mutable last_token_s : float;  (* inter-token latency anchor *)
}

type t = {
  llm : Llm.t;
  cfg : config;
  pool : Kv_pool.t;
  embed_rng : Prng.t;  (* Llm.embed is deterministic; rng is vestigial *)
  mutable queue : Request.t list;  (* oldest first *)
  mutable active : session list;  (* admission order *)
  mutable ledger : Request.t list;  (* every submission, newest first *)
  mutable finished : Request.t list;  (* completion order, newest first *)
  mutable tokens : int;
  ttft_h : Telemetry.Histogram.t;
  tpot_h : Telemetry.Histogram.t;
  submitted_c : Telemetry.Counter.t;
  rejected_c : Telemetry.Counter.t;
  completed_c : Telemetry.Counter.t;
  queue_c : Telemetry.Counter.t;
}

let create ?(config = default_config) llm =
  assert (config.max_queue > 0 && config.max_batch > 0);
  { llm; cfg = config;
    pool = Kv_pool.create ~init_cap:config.kv_cap llm;
    embed_rng = Prng.create 0; queue = []; active = []; ledger = [];
    finished = []; tokens = 0;
    ttft_h = Telemetry.Histogram.find_or_create Metrics.ttft_ms_name;
    tpot_h = Telemetry.Histogram.find_or_create Metrics.tpot_ms_name;
    submitted_c = Telemetry.Counter.find_or_create Metrics.submitted_name;
    rejected_c = Telemetry.Counter.find_or_create Metrics.rejected_name;
    completed_c = Telemetry.Counter.find_or_create Metrics.completed_name;
    queue_c = Telemetry.Counter.find_or_create Metrics.queue_depth_name }

let config t = t.cfg
let pool t = t.pool
let queue_depth t = List.length t.queue
let active_count t = List.length t.active
let tokens_emitted t = t.tokens
let busy t = t.queue <> [] || t.active <> []

(* submission ledger, oldest first *)
let requests t = List.rev t.ledger

(* completed requests in completion order *)
let finished t = List.rev t.finished

let submit t ~now (req : Request.t) =
  req.Request.arrival_s <- now;
  t.ledger <- req :: t.ledger;
  Telemetry.Counter.incr t.submitted_c;
  if List.length t.queue >= t.cfg.max_queue then begin
    req.Request.state <- Request.Rejected;
    Telemetry.Counter.incr t.rejected_c;
    false
  end
  else begin
    req.Request.state <- Request.Queued;
    t.queue <- t.queue @ [ req ];
    Telemetry.Counter.set t.queue_c (List.length t.queue);
    true
  end

(* next admission per policy; queue order is arrival order, and the fold
   keeps the earlier element on ties, so FCFS and EDF are deterministic *)
let pop_next t =
  match t.queue with
  | [] -> None
  | q ->
    let key (r : Request.t) =
      match t.cfg.policy with
      | Fcfs -> r.Request.arrival_s
      | Edf -> Request.deadline_abs r
    in
    let best =
      List.fold_left
        (fun acc r ->
          match acc with Some b when key b <= key r -> acc | _ -> Some r)
        None q
    in
    (match best with
    | Some b ->
      t.queue <- List.filter (fun r -> r != b) q;
      Telemetry.Counter.set t.queue_c (List.length t.queue)
    | None -> ());
    best

let embed t ids = Llm.embed t.llm ~rng:t.embed_rng ids

let finish t (s : session) ~now_s =
  s.req.Request.state <- Request.Finished;
  s.req.Request.finish_s <- now_s -. s.req.Request.arrival_s;
  Kv_pool.release t.pool s.cache;
  t.active <- List.filter (fun x -> x != s) t.active;
  t.finished <- s.req :: t.finished;
  Telemetry.Counter.incr t.completed_c

(* admit one queued request: acquire KV, run the prefill phase, record
   TTFT; the prefill output is the request's first token *)
let admit_one t ~now =
  match pop_next t with
  | None -> false
  | Some req ->
    let cache = Kv_pool.acquire t.pool in
    req.Request.state <- Request.Prefilling;
    let emb = embed t req.Request.prompt in
    let first =
      Telemetry.Span.with_span ~cat:"serve"
        ~args:[ ("request", float_of_int req.Request.id) ]
        "prefill"
        (fun () -> Llm.prefill ?nthreads:t.cfg.nthreads t.llm cache emb)
    in
    let now_s = now () in
    req.Request.ttft_s <- now_s -. req.Request.arrival_s;
    Telemetry.Histogram.observe t.ttft_h (1000.0 *. req.Request.ttft_s);
    req.Request.outputs <- [ first ];
    req.Request.state <- Request.Decoding;
    t.tokens <- t.tokens + 1;
    let s = { req; cache; emitted = 1; last_token_s = now_s } in
    t.active <- t.active @ [ s ];
    if s.emitted >= req.Request.new_tokens then finish t s ~now_s;
    true

(* one decode step for every active session (continuous batching) *)
let decode_round t ~now =
  match t.active with
  | [] -> false
  | sessions ->
    List.iter
      (fun s ->
        let id = s.req.Request.gen.(s.emitted - 1) in
        let e = embed t [| id |] in
        let out =
          Telemetry.Span.with_span ~cat:"serve"
            ~args:[ ("request", float_of_int s.req.Request.id) ]
            "decode"
            (fun () -> Llm.decode_step ?nthreads:t.cfg.nthreads t.llm s.cache e)
        in
        let now_s = now () in
        Telemetry.Histogram.observe t.tpot_h
          (1000.0 *. (now_s -. s.last_token_s));
        s.last_token_s <- now_s;
        s.req.Request.outputs <- out :: s.req.Request.outputs;
        s.emitted <- s.emitted + 1;
        t.tokens <- t.tokens + 1;
        if s.emitted >= s.req.Request.new_tokens then finish t s ~now_s)
      sessions;
    true

let step t ~now =
  let rec admit did =
    if List.length t.active < t.cfg.max_batch && admit_one t ~now then
      admit true
    else did
  in
  let admitted = admit false in
  let decoded = decode_round t ~now in
  admitted || decoded

let drain t ~now =
  while busy t do
    ignore (step t ~now)
  done

(** Serving telemetry names and end-of-run aggregation: the scheduler
    observes latencies into {!Telemetry.Histogram}s and state into
    counters under these well-known names; [collect] folds the request
    ledger and histograms into one printable summary. *)

(** TTFT histogram name (milliseconds). *)
val ttft_ms_name : string

(** Per-output-token (inter-token) latency histogram name (ms). *)
val tpot_ms_name : string

val submitted_name : string
val rejected_name : string
val completed_name : string
val kv_created_name : string
val kv_reused_name : string
val kv_denied_name : string
val cancelled_name : string
val failed_name : string

(** SLO-burn counters: first token produced past the deadline, and
    requests that missed their deadline outright (cancelled, refused as
    already blown, or finished late). *)
val slo_ttft_breaches_name : string

val slo_deadline_breaches_name : string

(** Speculative decoding counters: draft tokens offered for verification,
    confirmed by the target's batched pass, and rolled back. *)
val spec_proposed_name : string

val spec_accepted_name : string
val spec_rejected_name : string

(** {!Telemetry.Gauge} counting the causal timelines the tail sampler
    retained (SLO breaches, faults, sheds, migrations, plus the seeded
    1-in-N baseline); refreshed by [observe_traces]. *)
val traces_retained_name : string

(** Refresh {!traces_retained_name} from {!Telemetry.Trace.retained};
    called by [collect], and cheap enough for a scrape path. *)
val observe_traces : unit -> unit

(** {!Telemetry.Gauge} names (levels, not counts): instantaneous queue
    depth, KV-pool occupancy/free, KV high-water mark in rows, and the
    scheduler's current load-shedding batch limit. *)
val queue_depth_name : string

val kv_in_use_name : string
val kv_free_name : string
val kv_peak_rows_name : string
val eff_batch_name : string

(** {2 Per-replica and fleet names}

    A scheduler created with [replica = Some i] observes into the
    [serve.r<i>.*] names {e alongside} the global [serve.*] names, so a
    cluster run exposes both views through {!Telemetry.Expose}. *)

val replica_ttft_ms_name : int -> string
val replica_tpot_ms_name : int -> string
val replica_submitted_name : int -> string
val replica_rejected_name : int -> string
val replica_completed_name : int -> string
val replica_cancelled_name : int -> string
val replica_failed_name : int -> string
val replica_slo_ttft_breaches_name : int -> string
val replica_slo_deadline_breaches_name : int -> string

(** Fleet rollup histograms, rebuilt by {!collect_fleet} from the
    per-replica histograms via [Telemetry.Histogram.merge_into]. *)
val fleet_ttft_ms_name : string

val fleet_tpot_ms_name : string

type percentiles = { p50 : float; p95 : float; p99 : float }

(** p50/p95/p99 of one histogram (nan while empty). *)
val percentiles_of : Telemetry.Histogram.t -> percentiles

type summary = {
  submitted : int;
  rejected : int;
  completed : int;
  cancelled : int;  (** terminated by deadline enforcement *)
  failed : int;  (** prefill/decode failed after bounded retries *)
  goodput : int;  (** completed within their deadline *)
  tokens : int;
  elapsed_s : float;
  tokens_per_s : float;
  ttft_ms : percentiles;
  tpot_ms : percentiles;
  spec_proposed : int;  (** draft tokens offered for verification *)
  spec_accepted : int;  (** draft tokens the target confirmed *)
  spec_rejected : int;  (** draft tokens rolled back (blocks freed) *)
}

(** [collect ~requests ~tokens ~elapsed_s] — [requests] is the full
    submission ledger (finished, rejected and in-flight alike); latency
    percentiles are read from the global histograms. *)
val collect : requests:Request.t list -> tokens:int -> elapsed_s:float -> summary

(** Fleet final report for a multi-replica run: merges every replica's
    latency histograms into the fleet rollups ({!fleet_ttft_ms_name} /
    {!fleet_tpot_ms_name}) via [Histogram.merge_into] and computes the
    percentiles over the merged distribution, never over a single
    replica's view. [requests] is the deduplicated fleet ledger. *)
val collect_fleet :
  replicas:int list ->
  requests:Request.t list ->
  tokens:int ->
  elapsed_s:float ->
  summary

val summary_to_string : summary -> string
val print : summary -> unit

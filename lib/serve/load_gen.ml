(* Synthetic open-loop load: Poisson arrivals (exponential inter-arrival
   gaps drawn from the repo's deterministic splitmix PRNG) with
   configurable prompt/output length distributions. The generator is the
   "sampler" of this serving stack — there is no LM head, so each request
   carries the pre-drawn ids it will feed back during decode. Everything
   is reproducible from [seed]. *)

type dist = Fixed of int | Uniform of int * int

let sample rng = function
  | Fixed n -> n
  | Uniform (lo, hi) ->
    assert (hi >= lo);
    lo + Prng.int rng (hi - lo + 1)

let dist_to_string = function
  | Fixed n -> string_of_int n
  | Uniform (lo, hi) -> Printf.sprintf "%d..%d" lo hi

type config = {
  seed : int;
  rate_hz : float;  (* mean Poisson arrival rate *)
  duration_s : float;  (* arrivals are drawn in [0, duration_s) *)
  prompt_len : dist;
  new_tokens : dist;
  deadline_s : float;  (* per-request SLO; infinity disables *)
  id_base : int;  (* first request id *)
  id_stride : int;  (* id increment between requests *)
  sys_prompt_len : int;
      (* tokens of a shared "system prompt" prepended to every request's
         prompt (drawn once from the seed) — the realistic workload shape
         prefix sharing exploits; 0 disables *)
}

let default =
  { seed = 42; rate_hz = 20.0; duration_s = 5.0;
    prompt_len = Uniform (4, 12); new_tokens = Uniform (2, 8);
    deadline_s = Float.infinity; id_base = 0; id_stride = 1;
    sys_prompt_len = 0 }

(* exponential inter-arrival gap; 1 - U in (0, 1] keeps log finite *)
let exp_gap rng ~rate = -.Float.log (1.0 -. Prng.float rng) /. rate

let generate cfg ~vocab =
  assert (cfg.rate_hz > 0.0 && vocab > 0);
  let stride = max 1 cfg.id_stride in
  let rng = Prng.create cfg.seed in
  let draw_ids n = Array.init n (fun _ -> Prng.int rng vocab) in
  (* shared system prompt: drawn from a fixed-seed stream, NOT the
     per-config stream, so every replica substream (split) prepends the
     same prefix — the cross-request sharing the prefix trie dedupes *)
  let sys_prompt =
    if cfg.sys_prompt_len <= 0 then [||]
    else
      let srng = Prng.create 0x5157 in
      Array.init cfg.sys_prompt_len (fun _ -> Prng.int srng vocab)
  in
  let rec go acc id at =
    let at = at +. exp_gap rng ~rate:cfg.rate_hz in
    if at >= cfg.duration_s then List.rev acc
    else
      let prompt =
        Array.append sys_prompt (draw_ids (max 1 (sample rng cfg.prompt_len)))
      in
      let gen = draw_ids (max 1 (sample rng cfg.new_tokens)) in
      let req =
        (* the request id doubles as the causal-trace id: the id lattice
           ([id_base]/[id_stride]) already makes it fleet-unique *)
        Request.make ~id ~trace:id ~prompt ~gen ~deadline_s:cfg.deadline_s ()
      in
      go ((at, req) :: acc) (id + stride) at
  in
  go [] cfg.id_base 0.0

(* substream i's seed: splitmix-style mix of (seed, i) so substreams are
   decorrelated from each other and from the parent stream *)
let mix_seed seed i =
  let z = (seed * 0x9e3779b9) lxor (i * 0x85ebca6b) lxor ((seed + i) lsr 13) in
  (abs z lor 1) + i

let split cfg n =
  if n < 1 then invalid_arg "Load_gen.split: n must be >= 1";
  List.init n (fun i ->
      { cfg with
        seed = mix_seed cfg.seed i;
        rate_hz = cfg.rate_hz /. float_of_int n;
        id_base = cfg.id_base + (i * max 1 cfg.id_stride);
        id_stride = n * max 1 cfg.id_stride })

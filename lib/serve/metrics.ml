(* Serving telemetry names and end-of-run aggregation. Latencies are
   observed into log-bucketed Telemetry histograms (milliseconds) while
   the scheduler runs; counters/gauges cover queue and KV-pool state.
   [collect] folds the request ledger + histograms into one summary the
   CLI and bench print and export. *)

(* histogram names (unit: milliseconds) *)
let ttft_ms_name = "serve.ttft_ms"
let tpot_ms_name = "serve.tpot_ms"

(* counters (monotonic) *)
let submitted_name = "serve.submitted"
let rejected_name = "serve.rejected"
let completed_name = "serve.completed"
let kv_created_name = "serve.kv_pool.created"
let kv_reused_name = "serve.kv_pool.reused"
let kv_denied_name = "serve.kv_pool.denied"
let cancelled_name = "serve.cancelled"
let failed_name = "serve.failed"

(* SLO-burn counters: how often the service broke its promises. TTFT
   breach = first token produced after the request's deadline; deadline
   breach = the request missed its deadline outright (cancelled by the
   sweep, refused at submit as already blown, or finished late). *)
let slo_ttft_breaches_name = "serve.slo.ttft_breaches"
let slo_deadline_breaches_name = "serve.slo.deadline_breaches"

(* speculative decoding: draft proposals issued, accepted by the target's
   batched verification pass, and rolled back (blocks freed) *)
let spec_proposed_name = "serve.spec.proposed"
let spec_accepted_name = "serve.spec.accepted"
let spec_rejected_name = "serve.spec.rejected"

(* causal tracing: timelines kept by the tail sampler (SLO breaches,
   faults, sheds, migrations, plus the seeded 1-in-N baseline) *)
let traces_retained_name = "serve.traces_retained"

let observe_traces () =
  Telemetry.Gauge.set
    (Telemetry.Gauge.find_or_create traces_retained_name)
    (List.length (Telemetry.Trace.retained ()))

(* gauges (levels, Telemetry.Gauge) *)
let queue_depth_name = "serve.queue_depth"
let kv_in_use_name = "serve.kv_pool.in_use"
let kv_free_name = "serve.kv_pool.free"
let kv_peak_rows_name = "serve.kv_pool.peak_rows"
let eff_batch_name = "serve.effective_batch"

(* per-replica metric names: a scheduler created with [replica = Some i]
   observes into these alongside the global serve.* names, so a cluster
   run exposes both the per-replica split and the process-wide totals *)
let replica_prefix i = Printf.sprintf "serve.r%d." i
let replica_ttft_ms_name i = replica_prefix i ^ "ttft_ms"
let replica_tpot_ms_name i = replica_prefix i ^ "tpot_ms"
let replica_submitted_name i = replica_prefix i ^ "submitted"
let replica_rejected_name i = replica_prefix i ^ "rejected"
let replica_completed_name i = replica_prefix i ^ "completed"
let replica_cancelled_name i = replica_prefix i ^ "cancelled"
let replica_failed_name i = replica_prefix i ^ "failed"
let replica_slo_ttft_breaches_name i = replica_prefix i ^ "slo.ttft_breaches"

let replica_slo_deadline_breaches_name i =
  replica_prefix i ^ "slo.deadline_breaches"

(* fleet rollup histograms: rebuilt by [collect_fleet] from the
   per-replica histograms via Histogram.merge_into *)
let fleet_ttft_ms_name = "cluster.fleet.ttft_ms"
let fleet_tpot_ms_name = "cluster.fleet.tpot_ms"

type percentiles = { p50 : float; p95 : float; p99 : float }

type summary = {
  submitted : int;
  rejected : int;
  completed : int;
  cancelled : int;  (** terminated by deadline enforcement *)
  failed : int;  (** prefill/decode failed after bounded retries *)
  goodput : int;  (** completed within their deadline *)
  tokens : int;
  elapsed_s : float;
  tokens_per_s : float;
  ttft_ms : percentiles;
  tpot_ms : percentiles;
  spec_proposed : int;  (** draft tokens offered for verification *)
  spec_accepted : int;  (** draft tokens the target confirmed *)
  spec_rejected : int;  (** draft tokens rolled back (blocks freed) *)
}

let percentiles_of h =
  { p50 = Telemetry.Histogram.quantile h 0.50;
    p95 = Telemetry.Histogram.quantile h 0.95;
    p99 = Telemetry.Histogram.quantile h 0.99 }

let collect ~(requests : Request.t list) ~tokens ~elapsed_s =
  observe_traces ();
  let count st =
    List.length (List.filter (fun r -> r.Request.state = st) requests)
  in
  { submitted = List.length requests;
    rejected = count Request.Rejected;
    completed = count Request.Finished;
    cancelled = count Request.Cancelled;
    failed = count Request.Failed;
    goodput = List.length (List.filter Request.met_deadline requests);
    tokens;
    elapsed_s;
    tokens_per_s = (if elapsed_s > 0.0 then float_of_int tokens /. elapsed_s
                    else 0.0);
    ttft_ms = percentiles_of (Telemetry.Histogram.find_or_create ttft_ms_name);
    tpot_ms = percentiles_of (Telemetry.Histogram.find_or_create tpot_ms_name);
    spec_proposed = Telemetry.Counter.value spec_proposed_name;
    spec_accepted = Telemetry.Counter.value spec_accepted_name;
    spec_rejected = Telemetry.Counter.value spec_rejected_name
  }

(* Fleet final report: merge every replica's latency histograms into the
   fleet rollup histograms (the existing mergeable-histogram mechanism)
   and compute percentiles over the merged distribution — never over a
   single replica's view. [requests] is the deduplicated fleet ledger. *)
let collect_fleet ~replicas ~(requests : Request.t list) ~tokens ~elapsed_s =
  let merged name per_replica =
    let into = Telemetry.Histogram.find_or_create name in
    Telemetry.Histogram.reset into;
    List.iter
      (fun i ->
        Telemetry.Histogram.merge_into
          (Telemetry.Histogram.find_or_create (per_replica i))
          ~into)
      replicas;
    into
  in
  let fttft = merged fleet_ttft_ms_name replica_ttft_ms_name in
  let ftpot = merged fleet_tpot_ms_name replica_tpot_ms_name in
  let base = collect ~requests ~tokens ~elapsed_s in
  { base with ttft_ms = percentiles_of fttft; tpot_ms = percentiles_of ftpot }

let summary_to_string s =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "== serve summary ==\n";
  pr "requests: %d submitted, %d completed, %d rejected, %d cancelled, \
      %d failed, goodput %d/%d (met deadline)\n"
    s.submitted s.completed s.rejected s.cancelled s.failed s.goodput
    s.submitted;
  pr "tokens:   %d in %.2fs -> %.1f tokens/s\n" s.tokens s.elapsed_s
    s.tokens_per_s;
  pr "TTFT ms:  p50 %.2f  p95 %.2f  p99 %.2f\n" s.ttft_ms.p50 s.ttft_ms.p95
    s.ttft_ms.p99;
  pr "TPOT ms:  p50 %.2f  p95 %.2f  p99 %.2f\n" s.tpot_ms.p50 s.tpot_ms.p95
    s.tpot_ms.p99;
  if s.spec_proposed > 0 then
    pr "spec:     %d proposed, %d accepted, %d rejected (%.0f%% accept)\n"
      s.spec_proposed s.spec_accepted s.spec_rejected
      (100.0 *. float_of_int s.spec_accepted /. float_of_int s.spec_proposed);
  Buffer.contents b

let print s =
  print_string (summary_to_string s);
  flush stdout

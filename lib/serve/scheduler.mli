(** Continuous-batching serving loop over one {!Llm.t}: a bounded
    admission queue with explicit rejection, an admission policy knob
    (FCFS / earliest-deadline-first), per-admission prefill, and one
    decode step per active session per iteration — requests join and
    leave the running batch at token granularity. KV caches come from a
    {!Kv_pool} and return to it on completion. Latencies land in the
    [serve.*] telemetry histograms/counters ({!Metrics}).

    Hardened failure paths: deadline enforcement cancels sessions past
    their SLO and returns their KV to the pool; failing prefill/decode
    steps are retried up to [max_retries] times after rewinding the KV
    cache to its pre-step state (so recovery is bit-identical to a run
    that never failed), then marked [Failed]; a [`Denied] KV acquire
    sheds load by shrinking the effective batch limit, which grows back
    after a denial-free recovery window.

    Sessions are mathematically independent, so batched decoding produces
    bit-identical hidden states to running each session alone with
    [Llm.prefill]/[Llm.decode_step] — wall-clock time feeds only
    telemetry, never control flow (with finite deadlines, the caller's
    [now] clock becomes part of the schedule; the chaos harness drives a
    virtual clock to stay deterministic). *)

type policy = Fcfs | Edf  (** earliest absolute deadline first *)

val policy_name : policy -> string

(** ["fcfs"], ["deadline"] (or ["edf"]). *)
val policy_of_string : string -> policy option

type config = {
  max_queue : int;  (** bounded admission queue; submissions beyond reject *)
  max_batch : int;  (** max concurrently decoding sessions *)
  policy : policy;
  nthreads : int option;  (** team size for prefill/decode kernels *)
  kv_cap : int;  (** initial rows of pooled KV caches *)
  max_retries : int;  (** extra attempts for a failing prefill/decode step *)
  retry_backoff_s : float;
      (** base sleep before retry [k] is [retry_backoff_s * 2^k]; 0 = none *)
  check_numerics : bool;
      (** run each step's output through [Tpp_check.finite_2d] so NaN/Inf
          surfaces as a retryable structured error *)
  replica : int option;
      (** cluster replica index: observe into the [serve.r<i>.*] telemetry
          names alongside the global [serve.*] names *)
  paged : bool;  (** paged KV storage over a shared block arena *)
  block_size : int;  (** tokens per KV block (paged only) *)
  num_blocks : int;  (** arena size in blocks (paged only) *)
  prefix_share : bool;  (** dedupe shared prompt prefixes (paged only) *)
  spec_k : int;
      (** speculative decoding: draft tokens proposed per round; 0 = off *)
  draft_layers : int;  (** decoder layers of the draft model *)
  spec_accuracy : float;
      (** deterministic draft-acceptance model: probability a proposal
          matches the truth, drawn from a hash of (request id, position)
          so runs replay exactly *)
  online_tune : bool;
      (** enable the online per-shape spec cache ({!Spec_cache}): GEMM
          shapes arriving in the serve path are tuned on a background
          domain and hot-swapped after a bit-identity check; decode
          outputs are unchanged, only the loop instantiation is *)
}

(** queue 64, batch 8, FCFS, default threads, 16 KV rows, 2 retries, no
    backoff, numeric checks off, no replica index; contiguous KV
    (16-token blocks, 64-block arena, prefix sharing when paged);
    speculation off (k=0, 1 draft layer, 75% modelled accuracy); online
    tuning off. *)
val default_config : config

(** Pluggable model entry point. One batched [extend] covers every
    phase — prefill (empty cache, last row = first token), single-token
    decode (one row), speculative verification ([k+1] rows) — because
    per-row outputs are bit-identical across batch shapes. The default
    engine wraps [Llm.extend] with the config's [nthreads]; a cluster
    replica substitutes the tensor-parallel [Llm.extend_tp], which is
    bit-identical, so nothing downstream can tell the difference. *)
type engine = { extend : Llm.kv_cache -> Tensor.t -> Tensor.t }

type t

val create : ?config:config -> ?engine:engine -> Llm.t -> t
val config : t -> config
val pool : t -> Kv_pool.t

(** [submit t ~now req] — [false] means rejected: the queue is full, or
    the request's deadline budget is already non-positive (it could never
    meet its SLO). The request is stamped [Rejected] and never runs.
    [now] is the serving-clock timestamp of arrival. *)
val submit : t -> now:float -> Request.t -> bool

(** One serving iteration: enforce deadlines (cancel late sessions and
    queued requests), admit up to the effective batch limit (prefill +
    TTFT, with retries), then one decode step for every active session
    (with retries). Returns [false] when there was nothing to do. *)
val step : t -> now:(unit -> float) -> bool

(** Run [step] until queue and batch are empty. Terminates even under
    persistent faults: bounded retries end in [Failed], and a KV denial
    with an idle pool fails the request rather than spinning. *)
val drain : t -> now:(unit -> float) -> unit

val busy : t -> bool
val queue_depth : t -> int
val active_count : t -> int
val tokens_emitted : t -> int

(** Current load-shedding admission window, in [1, max_batch]. *)
val effective_batch : t -> int

(** Submission ledger, oldest first (includes rejected and in-flight). *)
val requests : t -> Request.t list

(** Completed requests in completion order. *)
val finished : t -> Request.t list

(** {2 Cluster hooks} *)

(** [adopt t ~now ~release req cache] — take over the decode phase of a
    request whose prefill ran elsewhere (prefill/decode disaggregation).
    [req] must be in state [Decoding] with its first token already in
    [outputs]; [cache] holds the prefilled KV state and is returned via
    [release] (to its owning pool) on retirement. [`Full] means the batch
    is at its (possibly shed) limit and the caller should retry later.
    Adoption adds the request to this scheduler's ledger but bumps
    neither [submitted] nor token counts — the prefill side already
    accounted for the submission and the first token. *)
val adopt :
  t ->
  now:float ->
  release:(Llm.kv_cache -> unit) ->
  Request.t ->
  Llm.kv_cache ->
  [ `Adopted | `Full ]

(** Remove every queued (not yet admitted) request from the queue {e and}
    the ledger, returning them oldest-first — the quarantine path: the
    router re-routes them to healthy replicas (re-submission re-enters
    them into that replica's ledger, preserving the original arrival
    stamp when called with [~now:req.arrival_s]). Active sessions are
    untouched and drain normally. *)
val evict_queued : t -> Request.t list

(** Like {!submit} but without bumping [serve.submitted] — the re-route
    path: the original submission was already counted on the evicting
    replica, and the router tallies the event under its own
    [cluster.router.resubmitted] counter, so fleet telemetry reconciles
    with the ledger. *)
val resubmit : t -> now:float -> Request.t -> bool

(** {2 Live migration (checkpoint/restore of in-flight sessions)} *)

(** A detached in-flight session: the request (with its pre-drawn
    generator ids — the decode position is rng-free), the tokens emitted
    so far, and a dense arena-independent KV snapshot. [d_export] is the
    one live copy of the KV state between detach and a successful
    destination import; [d_release] frees the source cache exactly once
    (idempotent) and must be called only after the destination commits
    or the migration fails terminally. *)
type detached = {
  d_req : Request.t;
  d_emitted : int;
  d_export : Kv.Block_manager.export;
  d_release : unit -> unit;
}

(** [detach_next t ~now_s] checkpoints the oldest in-flight session and
    removes it from the active set and the ledger (the destination's
    {!resume} re-enters it). [`Failed req]: [before_export] (the
    router's [cluster.migrate.export] fault hook) raised, so the session
    failed in place — terminal, still ledgered, cache released; nothing
    is silently lost. [`Empty]: no in-flight sessions. *)
val detach_next :
  ?before_export:(unit -> unit) ->
  t ->
  now_s:float ->
  [ `Detached of detached | `Failed of Request.t | `Empty ]

(** [resume t ~now d] — the destination half of a migration and its
    commit point: import the KV snapshot through this replica's pool
    (prefix re-attach, admission gating), then adopt the session at its
    saved decode position. Bumps neither [submitted] nor token counts.
    [`Full]/[`Denied] (and an exception from [before_import], the
    [cluster.migrate.import] fault hook) leave this replica untouched
    and the package intact — the snapshot stays the one live copy and
    the caller can retry elsewhere. *)
val resume :
  ?before_import:(unit -> unit) ->
  t ->
  now:float ->
  detached ->
  [ `Resumed | `Full | `Denied ]

(** Health probe: one single-token engine extend on a private scratch
    cache (bypassing the pool), checked finite — the "successful no-op
    step" gating a quarantined replica's rejoin. *)
val probe : t -> bool

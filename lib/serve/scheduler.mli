(** Continuous-batching serving loop over one {!Llm.t}: a bounded
    admission queue with explicit rejection, an admission policy knob
    (FCFS / earliest-deadline-first), per-admission prefill, and one
    decode step per active session per iteration — requests join and
    leave the running batch at token granularity. KV caches come from a
    {!Kv_pool} and return to it on completion. Latencies land in the
    [serve.*] telemetry histograms/counters ({!Metrics}).

    Sessions are mathematically independent, so batched decoding produces
    bit-identical hidden states to running each session alone with
    [Llm.prefill]/[Llm.decode_step] — wall-clock time feeds only
    telemetry, never control flow. *)

type policy = Fcfs | Edf  (** earliest absolute deadline first *)

val policy_name : policy -> string

(** ["fcfs"], ["deadline"] (or ["edf"]). *)
val policy_of_string : string -> policy option

type config = {
  max_queue : int;  (** bounded admission queue; submissions beyond reject *)
  max_batch : int;  (** max concurrently decoding sessions *)
  policy : policy;
  nthreads : int option;  (** team size for prefill/decode kernels *)
  kv_cap : int;  (** initial rows of pooled KV caches *)
}

(** queue 64, batch 8, FCFS, default threads, 16 KV rows. *)
val default_config : config

type t

val create : ?config:config -> Llm.t -> t
val config : t -> config
val pool : t -> Kv_pool.t

(** [submit t ~now req] — [false] means rejected (queue full); the request
    is stamped [Rejected] and never runs. [now] is the serving-clock
    timestamp of arrival. *)
val submit : t -> now:float -> Request.t -> bool

(** One serving iteration: admit up to capacity (prefill + TTFT), then one
    decode step for every active session. Returns [false] when there was
    nothing to do. [now] is sampled around kernel runs for latency
    telemetry only. *)
val step : t -> now:(unit -> float) -> bool

(** Run [step] until queue and batch are empty. *)
val drain : t -> now:(unit -> float) -> unit

val busy : t -> bool
val queue_depth : t -> int
val active_count : t -> int
val tokens_emitted : t -> int

(** Submission ledger, oldest first (includes rejected and in-flight). *)
val requests : t -> Request.t list

(** Completed requests in completion order. *)
val finished : t -> Request.t list

(** Pool of recycled {!Llm.kv_cache}s, owning the KV storage policy.

    [Contiguous] hands out capacity-backed per-request buffers (a
    released cache is rewound but keeps its buffers, so steady-state
    serving does not touch the allocator). [Paged] hands out block
    tables over one shared {!Kv.Block_manager} arena — fixed-size token
    blocks, copy-on-write sharing, and (optionally) a {!Kv.Prefix} trie
    deduplicating common prompt prefixes across requests. Occupancy
    (in-use / free / created / reused / peak rows) is published under
    the [serve.kv_pool.*] telemetry names; a paged pool additionally
    publishes the [kv.pages.*] arena gauges. *)

type t

type policy =
  | Contiguous
  | Paged of { block_size : int; num_blocks : int; prefix : bool }

(** [create ?init_cap ?max_free ?max_live ?policy ?manager llm] —
    [init_cap] rows are pre-allocated per layer in freshly created
    contiguous caches; at most [max_free] rewound caches are retained
    for reuse; at most [max_live] caches may be acquired concurrently
    (default: unbounded). A [Paged] policy builds its own arena sized
    [num_blocks] blocks of [block_size] tokens unless an existing
    [manager] is supplied (shared-arena setups). *)
val create :
  ?init_cap:int ->
  ?max_free:int ->
  ?max_live:int ->
  ?policy:policy ->
  ?manager:Kv.Block_manager.t ->
  Llm.t ->
  t

val policy : t -> policy

(** The shared arena of a paged pool ([None] for contiguous). *)
val manager : t -> Kv.Block_manager.t option

(** The prefix trie of a paged pool with [prefix = true]. *)
val prefix_cache : t -> Kv.Prefix.t option

(** [`Cache c]: a recycled free cache when available, else a fresh one.
    [`Denied]: the pool is at [max_live] live caches (or fault injection
    simulated memory pressure) — counted under [serve.kv_pool.denied];
    the caller must degrade, the pool will not grow unboundedly. *)
val acquire : t -> [ `Cache of Llm.kv_cache | `Denied ]

(** [acquire_for t ~prompt ~total_rows ()] — prefix-aware,
    admission-gated acquire. [total_rows] is the request's whole KV
    footprint (prompt plus generated tokens): a paged pool also denies
    when the arena cannot cover the un-shared part, shedding at
    admission instead of failing mid-decode. On [`Cache (c, matched)]
    the first [matched] prompt tokens are already cached via shared
    prefix blocks (0 when no trie, no hit, or contiguous policy) —
    prefill only the suffix. When [owner] (the requesting trace id) is
    given, the grant or denial is also emitted as a [Trace_kv] event in
    that request's causal timeline. *)
val acquire_for :
  t ->
  ?owner:int ->
  prompt:int array ->
  total_rows:int ->
  unit ->
  [ `Cache of Llm.kv_cache * int | `Denied ]

(** [import t ~prompt ~total_rows e] — admission-gated restore of a
    migrated session's KV snapshot (the destination half of a live
    migration). Same admission discipline as {!acquire_for}, but the
    cache is filled from the export instead of a fresh prefill: matched
    prompt chunks re-attach against this replica's trie, the remainder
    is imported as private blocks. [`Denied] (admission, arena pressure,
    or a mid-import denial — in which case the half-acquired cache is
    returned to the pool) leaves the destination untouched, so the
    caller's snapshot stays the one live copy. [owner] as in
    {!acquire_for}. *)
val import :
  t ->
  ?owner:int ->
  prompt:int array ->
  total_rows:int ->
  Kv.Block_manager.export ->
  [ `Cache of Llm.kv_cache | `Denied ]

(** [register t ~prompt cache] — after a successful prefill, pin the
    prompt's full blocks in the prefix trie so later requests sharing
    the prefix reuse them. No-op for contiguous pools / no trie. *)
val register : t -> prompt:int array -> Llm.kv_cache -> unit

(** Rewind and return a cache to the pool (a paged cache's blocks go
    back to the arena). The caller must not use it afterwards. *)
val release : t -> Llm.kv_cache -> unit

val in_use : t -> int
val free_count : t -> int

(** Largest cache capacity (rows) ever released (high-water mark). *)
val peak_rows : t -> int

val created : t -> int
val reused : t -> int

(** Acquires refused so far. *)
val denied : t -> int

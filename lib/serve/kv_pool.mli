(** Pool of recycled {!Llm.kv_cache}s. A released cache is rewound
    ([Llm.reset_cache]) but keeps its capacity-backed buffers, so the next
    session appends into already-grown storage — steady-state serving does
    not touch the allocator for KV storage. Occupancy (in-use / free /
    created / reused / peak rows) is published under the
    [serve.kv_pool.*] telemetry names. *)

type t

(** [create ?init_cap ?max_free llm] — [init_cap] rows are pre-allocated
    per layer in freshly created caches; at most [max_free] rewound caches
    are retained for reuse (excess ones are dropped to the GC). *)
val create : ?init_cap:int -> ?max_free:int -> Llm.t -> t

(** Recycled free cache when available, else a fresh one. *)
val acquire : t -> Llm.kv_cache

(** Rewind and return a cache to the pool. The caller must not use it
    afterwards. *)
val release : t -> Llm.kv_cache -> unit

val in_use : t -> int
val free_count : t -> int

(** Largest per-layer row capacity ever released (high-water mark). *)
val peak_rows : t -> int

val created : t -> int
val reused : t -> int

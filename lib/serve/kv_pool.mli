(** Pool of recycled {!Llm.kv_cache}s. A released cache is rewound
    ([Llm.reset_cache]) but keeps its capacity-backed buffers, so the next
    session appends into already-grown storage — steady-state serving does
    not touch the allocator for KV storage. Occupancy (in-use / free /
    created / reused / peak rows) is published under the
    [serve.kv_pool.*] telemetry names. *)

type t

(** [create ?init_cap ?max_free ?max_live llm] — [init_cap] rows are
    pre-allocated per layer in freshly created caches; at most [max_free]
    rewound caches are retained for reuse (excess ones are dropped to the
    GC); at most [max_live] caches may be acquired concurrently
    (default: unbounded). *)
val create : ?init_cap:int -> ?max_free:int -> ?max_live:int -> Llm.t -> t

(** [`Cache c]: a recycled free cache when available, else a fresh one.
    [`Denied]: the pool is at [max_live] live caches (or fault injection
    simulated memory pressure) — counted under [serve.kv_pool.denied];
    the caller must degrade, the pool will not grow unboundedly. *)
val acquire : t -> [ `Cache of Llm.kv_cache | `Denied ]

(** Rewind and return a cache to the pool. The caller must not use it
    afterwards. *)
val release : t -> Llm.kv_cache -> unit

val in_use : t -> int
val free_count : t -> int

(** Largest per-layer row capacity ever released (high-water mark). *)
val peak_rows : t -> int

val created : t -> int
val reused : t -> int

(** Acquires refused so far. *)
val denied : t -> int

(* One inference request through its serving lifecycle:

     arrival -> Queued -> Prefilling -> Decoding -> Finished
            \-> Rejected     (bounded-queue backpressure, or already
                              past deadline at submit)
            \-> Cancelled    (deadline enforcement mid-flight)
            \-> Failed       (prefill/decode failed after bounded retries)

   The request carries everything the scheduler needs to run it without
   callbacks: the prompt token ids (prefill input), the pre-drawn ids fed
   back during decode (there is no LM head — the load generator plays the
   role of the sampler), a latency SLO, and mutable slots the scheduler
   fills in as the request advances. Timestamps are relative seconds:
   [arrival_s] on the serving clock, [ttft_s]/[finish_s] relative to
   arrival. *)

type state =
  | Queued
  | Prefilling
  | Decoding
  | Finished
  | Rejected
  | Cancelled
  | Failed

let state_name = function
  | Queued -> "queued"
  | Prefilling -> "prefilling"
  | Decoding -> "decoding"
  | Finished -> "finished"
  | Rejected -> "rejected"
  | Cancelled -> "cancelled"
  | Failed -> "failed"

(* compact code carried in Trace_end recorder events; must agree with
   Telemetry.Trace.state_name *)
let state_code = function
  | Queued -> 0
  | Prefilling -> 1
  | Decoding -> 2
  | Finished -> 3
  | Rejected -> 4
  | Cancelled -> 5
  | Failed -> 6

(* a request in a terminal state will never change again; every ledger
   entry must be terminal once the scheduler drains *)
let terminal t_state =
  match t_state with
  | Finished | Rejected | Cancelled | Failed -> true
  | Queued | Prefilling | Decoding -> false

type t = {
  id : int;
  trace : int;  (* causal-trace id tagging this request's recorder events *)
  prompt : int array;
  gen : int array;
      (* gen.(k) is the input id of decode step k+1; the request emits
         [new_tokens] hidden states: one from prefill, the rest from
         decode steps feeding gen.(0) .. gen.(new_tokens - 2) *)
  new_tokens : int;
  deadline_s : float;  (* SLO: total-latency budget from arrival *)
  mutable arrival_s : float;
  mutable state : state;
  mutable ttft_s : float;  (* first-token latency; nan until prefilled *)
  mutable finish_s : float;  (* total latency; nan until finished *)
  mutable outputs : Tensor.t list;  (* per-token hidden states, newest first *)
}

let make ~id ?trace ~prompt ~gen ?(deadline_s = Float.infinity) () =
  assert (Array.length prompt > 0);
  assert (Array.length gen > 0);
  let trace = match trace with Some tr -> tr | None -> id in
  { id; trace; prompt; gen; new_tokens = Array.length gen; deadline_s;
    arrival_s = 0.0; state = Queued; ttft_s = Float.nan;
    finish_s = Float.nan; outputs = [] }

(* absolute deadline on the serving clock *)
let deadline_abs t = t.arrival_s +. t.deadline_s

let met_deadline t = t.state = Finished && t.finish_s <= t.deadline_s

(* per-token hidden states in emission order *)
let outputs t = List.rev t.outputs

(* Chaos harness: drive the continuous-batching scheduler under a seeded
   fault plan and check that the hardened stack keeps its promises.

   Two runs over the same deterministic trace (virtual-clock arrivals, so
   wall-clock jitter cannot change the schedule):

     1. a reference run with no faults installed;
     2. a chaos run with the plan armed, the Team watchdog on, and the
        TPP numeric guard sampling kernel output.

   Invariants asserted on the chaos run:
     - liveness: the drive loop terminates well under its step budget;
     - ledger conservation: every submitted request reaches a terminal
       state, and finished + rejected + cancelled + failed = submitted;
     - no KV leak: the pool reports zero caches in use after the drain;
     - bit-identical recovery: every request finished by BOTH runs has
       exactly equal output hidden states — retries, rewinds, worker
       steals and quarantines must be semantically invisible.

   The default plan covers every registered site class: serve-level
   transients (prefill/decode exceptions), KV denial, JIT/dispatch
   failure, NaN poison in the BRGEMM store, worker-body exceptions and
   stalls, and outright worker death. Triggers are invocation-count
   based, so the same seed gives the same fault schedule on any host. *)

type config = {
  seed : int;
  requests : int;
  prompt_len : Load_gen.dist;
  new_tokens : Load_gen.dist;
  shared_prefix : int;
      (* tokens of a common prefix prepended to every prompt (0 = none):
         exercises the prefix trie + COW paths under fault injection *)
  arrival_gap_s : float;  (* virtual seconds between arrivals *)
  deadline_s : float;  (* virtual-clock SLO per request *)
  dt_s : float;  (* virtual seconds per drive step *)
  scheduler : Scheduler.config;
  plan : Fault.plan option;  (* None = default_plan seed *)
  watchdog : Team.watchdog option;
  max_steps : int;
}

let default =
  { seed = 42;
    requests = 24;
    prompt_len = Load_gen.Uniform (2, 6);
    new_tokens = Load_gen.Uniform (1, 5);
    shared_prefix = 0;
    arrival_gap_s = 0.01;
    deadline_s = Float.infinity;
    dt_s = 0.002;
    scheduler =
      { Scheduler.default_config with
        max_batch = 4; nthreads = Some 2; kv_cap = 8; max_retries = 4;
        check_numerics = true };
    plan = None;
    watchdog = Some { Team.warn_s = 0.005; abandon_s = 0.05 };
    max_steps = 50_000 }

(* One rule per fault class. Periods are calibrated against how often
   each site fires per serving step on [Llm.tiny]: a single prefill or
   decode attempt runs ~1000 BRGEMM stores, ~15 JIT dispatches and ~30
   worker bodies, so inner-site periods sit well above one attempt's
   invocation count — a retried step then sees a clean window and the
   fault behaves as a transient (the point of retry-with-rewind). The
   serve-level sites fire once per attempt, so small periods are fine
   there. Co-prime periods keep fault combinations varied; stall
   durations and the watchdog budget keep wall time at ~2 s. *)
let default_plan seed =
  let nth first period =
    Fault.Nth { first; period = Some period }
  in
  { Fault.seed;
    rules =
      [ { rsite = "serve.prefill"; rkind = Fault.Exn; rtrigger = nth 2 9 };
        { rsite = "serve.decode"; rkind = Fault.Exn; rtrigger = nth 3 11 };
        { rsite = "serve.kv.acquire"; rkind = Fault.Deny; rtrigger = nth 2 7 };
        (* paged-KV sites: fire only when the pool policy is Paged (a
           contiguous run never invokes them, so the rules are inert).
           Block acquires run once per block per ensure, so the periods
           sit above one attempt's worth of acquires — a retried step
           sees a clean window. *)
        { rsite = "kv.page.acquire"; rkind = Fault.Deny; rtrigger = nth 5 13 };
        { rsite = "kv.cow.copy"; rkind = Fault.Exn; rtrigger = nth 2 5 };
        { rsite = "parlooper.jit.compile"; rkind = Fault.Exn;
          rtrigger = nth 101 1013 };
        { rsite = "tpp.brgemm.store"; rkind = Fault.Nan;
          rtrigger = nth 137 9973 };
        { rsite = "team.worker.body"; rkind = Fault.Exn; rtrigger = nth 47 499 };
        { rsite = "team.worker.body"; rkind = Fault.Stall 0.02;
          rtrigger = nth 160 1601 };
        { rsite = "team.worker.loop"; rkind = Fault.Exn; rtrigger = nth 31 997 }
      ] }

type report = {
  steps : int;
  terminated : bool;
  submitted : int;
  finished : int;
  rejected : int;
  cancelled : int;
  failed : int;
  compared : int;  (* finished by both runs and compared bit-for-bit *)
  mismatched : int;
  injected : int;
  retries : int;
  shed : int;
  trips : int;
  quarantined : int;
  denied : int;
  numeric_errors : int;
  pages_allocated : int;  (* paged KV: arena blocks handed out *)
  pages_freed : int;
  cow_copies : int;
  prefix_hits : int;
  traces_checked : int;  (* causal timelines verified complete (0 when
                            the flight recorder is disabled) *)
  violations : string list;
}

(* deterministic trace: fixed arrival cadence, lengths/ids from the seed;
   [shared_prefix] tokens are drawn once and prepended to every prompt *)
let make_trace cfg ~vocab =
  let rng = Prng.create cfg.seed in
  let shared =
    Array.init (max 0 cfg.shared_prefix) (fun _ -> Prng.int rng vocab)
  in
  List.init cfg.requests (fun id ->
      let plen = max 1 (Load_gen.sample rng cfg.prompt_len) in
      let glen = max 1 (Load_gen.sample rng cfg.new_tokens) in
      let prompt =
        Array.append shared (Array.init plen (fun _ -> Prng.int rng vocab))
      in
      let gen = Array.init glen (fun _ -> Prng.int rng vocab) in
      ( cfg.arrival_gap_s *. float_of_int id,
        Request.make ~id ~prompt ~gen ~deadline_s:cfg.deadline_s () ))

(* virtual-clock drive: submissions happen by virtual arrival time and
   [dt_s] advances per step, so the schedule — including any deadline
   decisions — is a pure function of the trace and the fault plan *)
let drive cfg sched trace =
  let vnow = ref 0.0 in
  let now () = !vnow in
  let pending = ref trace in
  let steps = ref 0 in
  let live = ref true in
  while !live && !steps < cfg.max_steps do
    let rec admit_due () =
      match !pending with
      | (at, r) :: rest when at <= !vnow ->
        ignore (Scheduler.submit sched ~now:!vnow r);
        pending := rest;
        admit_due ()
      | _ -> ()
    in
    admit_due ();
    ignore (Scheduler.step sched ~now);
    incr steps;
    vnow := !vnow +. cfg.dt_s;
    live := !pending <> [] || Scheduler.busy sched
  done;
  (!steps, (not !live) && !pending = [])

let counter_names =
  [ Telemetry.Registry.fault_injected_name;
    Telemetry.Registry.fault_retries_name;
    Telemetry.Registry.fault_shed_name;
    Telemetry.Registry.watchdog_trips_name;
    Telemetry.Registry.pool_quarantined_name;
    Telemetry.Registry.numeric_errors_name;
    Metrics.kv_denied_name;
    Kv.Block_manager.pages_allocated_name;
    Kv.Block_manager.pages_freed_name;
    Kv.Block_manager.cow_copies_name;
    Kv.Block_manager.prefix_hits_name ]

let snapshot () = List.map Telemetry.Counter.value counter_names

let run ?(config = default) () =
  let llm = Llm.create ~rng:(Prng.create 7) ~block:8 Llm.tiny in
  let vocab = (Llm.config llm).Llm.vocab in
  let prev_wd = Team.current_watchdog () in
  let prev_mode = Tpp_check.mode () in
  Fault.clear ();
  Team.set_watchdog config.watchdog;
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Team.set_watchdog prev_wd;
      Tpp_check.set_mode prev_mode)
    (fun () ->
      (* a clean flight recorder per drive: request ids recur between
         the reference and chaos runs (same trace), so the causal-trace
         assembler must only ever see one drive's events; bigger rings
         keep early spans from being evicted before the conservation
         checks read them back *)
      let rec_on = Telemetry.Recorder.enabled () in
      let fresh_recorder () =
        if rec_on then begin
          Telemetry.Recorder.set_capacity 65536;
          Telemetry.Recorder.reset ();
          Telemetry.Trace.reset ()
        end
      in
      fresh_recorder ();
      (* reference: identical trace and scheduler config, no faults *)
      let ref_sched = Scheduler.create ~config:config.scheduler llm in
      let ref_trace = make_trace config ~vocab in
      let _, ref_done = drive config ref_sched ref_trace in
      fresh_recorder ();
      (* chaos run *)
      let plan =
        match config.plan with
        | Some p -> p
        | None -> default_plan config.seed
      in
      let sched = Scheduler.create ~config:config.scheduler llm in
      let trace = make_trace config ~vocab in
      let before = snapshot () in
      Tpp_check.set_mode (Tpp_check.Sampled 13);
      Fault.install plan;
      let steps, terminated = drive config sched trace in
      Fault.clear ();
      Tpp_check.set_mode prev_mode;
      let delta = List.map2 (fun a b -> b - a) before (snapshot ()) in
      let ( injected, retries, shed, trips, quarantined, numeric_errors,
            denied, pages_allocated, pages_freed, cow_copies, prefix_hits ) =
        match delta with
        | [ a; b; c; d; e; f; g; h; i; j; k ] ->
          (a, b, c, d, e, f, g, h, i, j, k)
        | _ -> assert false
      in
      let reqs = Scheduler.requests sched in
      let count st =
        List.length (List.filter (fun r -> r.Request.state = st) reqs)
      in
      let finished = count Request.Finished in
      let rejected = count Request.Rejected in
      let cancelled = count Request.Cancelled in
      let failed = count Request.Failed in
      let submitted = List.length reqs in
      (* bit-identity: requests finished by both runs must match exactly *)
      let ref_by_id =
        List.map (fun (r : Request.t) -> (r.Request.id, r))
          (Scheduler.requests ref_sched)
      in
      let compared = ref 0 and mismatched = ref 0 in
      List.iter
        (fun (r : Request.t) ->
          if r.Request.state = Request.Finished then
            match List.assoc_opt r.Request.id ref_by_id with
            | Some rr when rr.Request.state = Request.Finished ->
              incr compared;
              let a = Request.outputs r and b = Request.outputs rr in
              if
                List.length a <> List.length b
                || not
                     (List.for_all2
                        (fun x y -> Tensor.approx_equal ~tol:0.0 x y)
                        a b)
              then incr mismatched
            | _ -> ())
        reqs;
      let violations = ref [] in
      let check cond msg = if not cond then violations := msg :: !violations in
      check ref_done "reference run did not terminate";
      check terminated "chaos run did not terminate within max_steps";
      check (submitted = config.requests)
        "ledger lost submissions (submitted <> trace length)";
      check
        (List.for_all (fun r -> Request.terminal r.Request.state) reqs)
        "non-terminal request left in ledger";
      check
        (finished + rejected + cancelled + failed = submitted)
        "terminal states do not sum to submitted";
      check
        (Kv_pool.in_use (Scheduler.pool sched) = 0)
        "KV caches leaked (pool in_use <> 0 after drain)";
      (* paged-arena conservation: after the drain the only live blocks
         are the prefix trie's pins — free list + trie pins must account
         for the whole arena, or a rewind path leaked a block *)
      (match Kv_pool.manager (Scheduler.pool sched) with
      | None -> ()
      | Some m ->
        let pinned =
          match Kv_pool.prefix_cache (Scheduler.pool sched) with
          | Some p -> Kv.Prefix.pinned p
          | None -> 0
        in
        check
          (Kv.Block_manager.free_blocks m + pinned
          = Kv.Block_manager.num_blocks m)
          "paged KV blocks leaked (free + trie pins <> arena size)";
        check
          (Kv.Block_manager.live_blocks m = pinned)
          "paged KV blocks live beyond trie pins after drain");
      check (!mismatched = 0)
        "recovered outputs not bit-identical to fault-free run";
      (* trace conservation: every ledgered request — whatever faults,
         sheds or retries it survived — must leave a complete well-nested
         causal timeline in the rings *)
      let traces_checked = ref 0 in
      if rec_on then
        List.iter
          (fun (r : Request.t) ->
            incr traces_checked;
            match Telemetry.Trace.check r.Request.trace with
            | Ok () -> ()
            | Error m -> check false ("trace conservation: " ^ m))
          reqs;
      (* an invariant violation is exactly the situation the flight
         recorder exists for: capture the rings before the report is the
         only evidence left *)
      if !violations <> [] then
        ignore (Telemetry.Recorder.post_mortem ~reason:"chaos.invariant");
      { steps; terminated; submitted; finished; rejected; cancelled; failed;
        compared = !compared; mismatched = !mismatched; injected; retries;
        shed; trips; quarantined; denied; numeric_errors;
        pages_allocated; pages_freed; cow_copies; prefix_hits;
        traces_checked = !traces_checked;
        violations = List.rev !violations })

let report_to_string r =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "== chaos report ==\n";
  pr "drive:    %d steps, terminated=%b\n" r.steps r.terminated;
  pr "ledger:   %d submitted = %d finished + %d rejected + %d cancelled + \
      %d failed\n"
    r.submitted r.finished r.rejected r.cancelled r.failed;
  pr "identity: %d finished-in-both compared, %d mismatched\n" r.compared
    r.mismatched;
  pr "faults:   %d injected, %d retries, %d shed, %d KV denials, %d numeric \
      errors\n"
    r.injected r.retries r.shed r.denied r.numeric_errors;
  pr "team:     %d watchdog trips, %d workers quarantined\n" r.trips
    r.quarantined;
  if r.traces_checked > 0 then
    pr "traces:   %d causal timelines checked complete\n" r.traces_checked;
  if r.pages_allocated > 0 then
    pr "paged kv: %d blocks allocated, %d freed, %d COW copies, %d prefix \
        hits\n"
      r.pages_allocated r.pages_freed r.cow_copies r.prefix_hits;
  (match r.violations with
  | [] -> pr "invariants: all passed\n"
  | vs ->
    pr "invariants: %d VIOLATED\n" (List.length vs);
    List.iter (fun v -> pr "  - %s\n" v) vs);
  Buffer.contents b

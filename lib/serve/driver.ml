(* Open-loop replay of a load-generator trace against a scheduler in real
   time: arrivals are submitted when the serving clock reaches their
   timestamp (whether or not the scheduler is keeping up — that is what
   makes the load "open loop" and the queue/SLO numbers honest), and the
   loop spins through serving iterations until the trace is exhausted and
   the scheduler drains.

   With [live] set, the driver doubles as the live metrics plane: every
   [every_s] seconds it writes one {!Telemetry.Expose.jsonl} line
   (counters, gauges, and deltas/rates vs the previous snapshot) to
   [out], plus one final line after the drain — so a run of any length
   produces at least interval + final snapshots, and the last line's
   absolute values agree with the end-of-run report. *)

type live = { every_s : float; out : out_channel }

type outcome = {
  summary : Metrics.summary;
  requests : Request.t list;  (* submission ledger, oldest first *)
  snapshots : int;  (* live-metrics JSONL lines written (0 without [live]) *)
}

let run ?live sched trace =
  let t0 = Telemetry.Clock.now_s () in
  let now () = Telemetry.Clock.now_s () -. t0 in
  let pending = ref trace in
  let snapshots = ref 0 in
  let prev = ref None in
  let last_emit = ref 0.0 in
  let emit_snapshot () =
    match live with
    | None -> ()
    | Some l ->
      let snap = Telemetry.Expose.take () in
      output_string l.out (Telemetry.Expose.jsonl ?prev:!prev snap);
      output_char l.out '\n';
      flush l.out;
      prev := Some snap;
      incr snapshots;
      last_emit := now ()
  in
  let maybe_emit () =
    match live with
    | None -> ()
    | Some l -> if now () -. !last_emit >= l.every_s then emit_snapshot ()
  in
  let submit_due () =
    let t = now () in
    let rec go () =
      match !pending with
      | (at, req) :: rest when at <= t ->
        ignore (Scheduler.submit sched ~now:t req);
        pending := rest;
        go ()
      | _ -> ()
    in
    go ()
  in
  let rec loop () =
    submit_due ();
    let worked = Scheduler.step sched ~now in
    maybe_emit ();
    if !pending <> [] || Scheduler.busy sched then begin
      (* idle gap before the next arrival: yield rather than burn *)
      if not worked then Domain.cpu_relax ();
      loop ()
    end
  in
  loop ();
  (* final snapshot after the drain, so the stream's last line matches
     the end-of-run report *)
  emit_snapshot ();
  let elapsed = now () in
  { summary =
      Metrics.collect
        ~requests:(Scheduler.requests sched)
        ~tokens:(Scheduler.tokens_emitted sched)
        ~elapsed_s:elapsed;
    requests = Scheduler.requests sched;
    snapshots = !snapshots }

(* Multi-replica replay: each replica gets its own (pre-split) trace and
   scheduler; arrivals are submitted per replica when due and every
   replica steps each iteration. The final report merges every replica's
   latency histograms through Metrics.collect_fleet — it never reports a
   single replica's histogram as the fleet's. *)
let run_many ?live pairs =
  assert (pairs <> []);
  let t0 = Telemetry.Clock.now_s () in
  let now () = Telemetry.Clock.now_s () -. t0 in
  let scheds = Array.of_list (List.map fst pairs) in
  let pending = Array.of_list (List.map (fun (_, tr) -> ref tr) pairs) in
  let n = Array.length scheds in
  let snapshots = ref 0 in
  let prev = ref None in
  let last_emit = ref 0.0 in
  let emit_snapshot () =
    match live with
    | None -> ()
    | Some l ->
      let snap = Telemetry.Expose.take () in
      output_string l.out (Telemetry.Expose.jsonl ?prev:!prev snap);
      output_char l.out '\n';
      flush l.out;
      prev := Some snap;
      incr snapshots;
      last_emit := now ()
  in
  let maybe_emit () =
    match live with
    | None -> ()
    | Some l -> if now () -. !last_emit >= l.every_s then emit_snapshot ()
  in
  let submit_due i =
    let t = now () in
    let rec go () =
      match !(pending.(i)) with
      | (at, req) :: rest when at <= t ->
        ignore (Scheduler.submit scheds.(i) ~now:t req);
        pending.(i) := rest;
        go ()
      | _ -> ()
    in
    go ()
  in
  let busy_any () =
    let b = ref false in
    for i = 0 to n - 1 do
      if !(pending.(i)) <> [] || Scheduler.busy scheds.(i) then b := true
    done;
    !b
  in
  let rec loop () =
    let worked = ref false in
    for i = 0 to n - 1 do
      submit_due i;
      if Scheduler.step scheds.(i) ~now then worked := true
    done;
    maybe_emit ();
    if busy_any () then begin
      if not !worked then Domain.cpu_relax ();
      loop ()
    end
  in
  loop ();
  emit_snapshot ();
  let elapsed = now () in
  let requests =
    List.concat_map (fun (s, _) -> Scheduler.requests s) pairs
  in
  let tokens =
    List.fold_left (fun a (s, _) -> a + Scheduler.tokens_emitted s) 0 pairs
  in
  let replicas =
    List.filter_map (fun (s, _) -> (Scheduler.config s).Scheduler.replica) pairs
  in
  let summary =
    if replicas = [] then Metrics.collect ~requests ~tokens ~elapsed_s:elapsed
    else Metrics.collect_fleet ~replicas ~requests ~tokens ~elapsed_s:elapsed
  in
  { summary; requests; snapshots = !snapshots }

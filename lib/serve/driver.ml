(* Open-loop replay of a load-generator trace against a scheduler in real
   time: arrivals are submitted when the serving clock reaches their
   timestamp (whether or not the scheduler is keeping up — that is what
   makes the load "open loop" and the queue/SLO numbers honest), and the
   loop spins through serving iterations until the trace is exhausted and
   the scheduler drains. *)

type outcome = {
  summary : Metrics.summary;
  requests : Request.t list;  (* submission ledger, oldest first *)
}

let run sched trace =
  let t0 = Telemetry.Clock.now_s () in
  let now () = Telemetry.Clock.now_s () -. t0 in
  let pending = ref trace in
  let submit_due () =
    let t = now () in
    let rec go () =
      match !pending with
      | (at, req) :: rest when at <= t ->
        ignore (Scheduler.submit sched ~now:t req);
        pending := rest;
        go ()
      | _ -> ()
    in
    go ()
  in
  let rec loop () =
    submit_due ();
    let worked = Scheduler.step sched ~now in
    if !pending <> [] || Scheduler.busy sched then begin
      (* idle gap before the next arrival: yield rather than burn *)
      if not worked then Domain.cpu_relax ();
      loop ()
    end
  in
  loop ();
  let elapsed = now () in
  { summary =
      Metrics.collect
        ~requests:(Scheduler.requests sched)
        ~tokens:(Scheduler.tokens_emitted sched)
        ~elapsed_s:elapsed;
    requests = Scheduler.requests sched }

(* Open-loop replay of a load-generator trace against a scheduler in real
   time: arrivals are submitted when the serving clock reaches their
   timestamp (whether or not the scheduler is keeping up — that is what
   makes the load "open loop" and the queue/SLO numbers honest), and the
   loop spins through serving iterations until the trace is exhausted and
   the scheduler drains.

   With [live] set, the driver doubles as the live metrics plane: every
   [every_s] seconds it writes one {!Telemetry.Expose.jsonl} line
   (counters, gauges, and deltas/rates vs the previous snapshot) to
   [out], plus one final line after the drain — so a run of any length
   produces at least interval + final snapshots, and the last line's
   absolute values agree with the end-of-run report. *)

type live = { every_s : float; out : out_channel }

type outcome = {
  summary : Metrics.summary;
  requests : Request.t list;  (* submission ledger, oldest first *)
  snapshots : int;  (* live-metrics JSONL lines written (0 without [live]) *)
}

let run ?live sched trace =
  let t0 = Telemetry.Clock.now_s () in
  let now () = Telemetry.Clock.now_s () -. t0 in
  let pending = ref trace in
  let snapshots = ref 0 in
  let prev = ref None in
  let last_emit = ref 0.0 in
  let emit_snapshot () =
    match live with
    | None -> ()
    | Some l ->
      let snap = Telemetry.Expose.take () in
      output_string l.out (Telemetry.Expose.jsonl ?prev:!prev snap);
      output_char l.out '\n';
      flush l.out;
      prev := Some snap;
      incr snapshots;
      last_emit := now ()
  in
  let maybe_emit () =
    match live with
    | None -> ()
    | Some l -> if now () -. !last_emit >= l.every_s then emit_snapshot ()
  in
  let submit_due () =
    let t = now () in
    let rec go () =
      match !pending with
      | (at, req) :: rest when at <= t ->
        ignore (Scheduler.submit sched ~now:t req);
        pending := rest;
        go ()
      | _ -> ()
    in
    go ()
  in
  let rec loop () =
    submit_due ();
    let worked = Scheduler.step sched ~now in
    maybe_emit ();
    if !pending <> [] || Scheduler.busy sched then begin
      (* idle gap before the next arrival: yield rather than burn *)
      if not worked then Domain.cpu_relax ();
      loop ()
    end
  in
  loop ();
  (* final snapshot after the drain, so the stream's last line matches
     the end-of-run report *)
  emit_snapshot ();
  let elapsed = now () in
  { summary =
      Metrics.collect
        ~requests:(Scheduler.requests sched)
        ~tokens:(Scheduler.tokens_emitted sched)
        ~elapsed_s:elapsed;
    requests = Scheduler.requests sched;
    snapshots = !snapshots }

(** Open-loop real-time replay of a load trace against a scheduler:
    arrivals are submitted when the serving clock reaches their timestamp
    regardless of scheduler backlog, then the loop iterates until the
    trace is exhausted and the scheduler drains. Optionally doubles as
    the live metrics plane, streaming periodic {!Telemetry.Expose}
    snapshots while serving. *)

(** Live-metrics stream: one {!Telemetry.Expose.jsonl} line to [out]
    every [every_s] seconds, plus a final line after the drain. *)
type live = { every_s : float; out : out_channel }

type outcome = {
  summary : Metrics.summary;
  requests : Request.t list;  (** submission ledger, oldest first *)
  snapshots : int;  (** live JSONL lines written; 0 when [live] absent *)
}

(** [run ?live sched trace] — [trace] must be arrival-time-sorted (what
    {!Load_gen.generate} returns). Blocks until everything accepted has
    finished. *)
val run : ?live:live -> Scheduler.t -> (float * Request.t) list -> outcome

(** [run_many pairs] — drive several replicas at once, each against its
    own (pre-split, see {!Load_gen.split}) trace. The final report merges
    every replica's latency histograms via {!Metrics.collect_fleet}
    (when the schedulers carry replica indices) instead of reporting a
    single replica's histogram as the fleet's; [requests] concatenates
    the per-replica ledgers in replica order. *)
val run_many :
  ?live:live -> (Scheduler.t * (float * Request.t) list) list -> outcome

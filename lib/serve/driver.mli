(** Open-loop real-time replay of a load trace against a scheduler:
    arrivals are submitted when the serving clock reaches their timestamp
    regardless of scheduler backlog, then the loop iterates until the
    trace is exhausted and the scheduler drains. *)

type outcome = {
  summary : Metrics.summary;
  requests : Request.t list;  (** submission ledger, oldest first *)
}

(** [run sched trace] — [trace] must be arrival-time-sorted (what
    {!Load_gen.generate} returns). Blocks until everything accepted has
    finished. *)
val run : Scheduler.t -> (float * Request.t) list -> outcome

let blocked_vs_flat () =
  Modelkit.section "Ablation: blocked vs flat B layout (SPR BF16, LD 4096)";
  let cfg =
    Gemm.make_config ~bm:128 ~bn:128 ~bk:128 ~dtype:Datatype.BF16 ~k_step:4
      ~m:2048 ~n:4096 ~k:2048 ()
  in
  let blocked =
    (Gemm_trace.score ~representative:4 ~platform:Platform.spr ~nthreads:112
       cfg "BCa")
      .Perf_model.gflops
  in
  let flat =
    (Gemm_trace.score ~flat_b:true ~representative:4 ~platform:Platform.spr
       ~nthreads:112 cfg "BCa")
      .Perf_model.gflops
  in
  Printf.printf "blocked B: %.0f GF, flat B: %.0f GF -> %.2fx from layout\n"
    blocked flat (blocked /. flat)

let jit_cache_cost () =
  Modelkit.section "Ablation: loop-nest JIT compile vs cache hit (measured)";
  Threaded_loop.cache_clear ();
  let specs =
    [
      Loop_spec.make ~bound:64 ~step:1 ~block_steps:[ 16; 4 ] ();
      Loop_spec.make ~bound:64 ~step:1 ~block_steps:[ 8 ] ();
      Loop_spec.make ~bound:64 ~step:2 ();
    ]
  in
  let reps = 2000 in
  let t0 = Telemetry.Clock.now_s () in
  for i = 0 to reps - 1 do
    (* distinct strings defeat the cache: compile every time *)
    let s = if i mod 2 = 0 then "aabcab" else "aabcba" in
    Threaded_loop.cache_clear ();
    ignore (Threaded_loop.create specs s)
  done;
  let compile_us = (Telemetry.Clock.now_s () -. t0) /. float_of_int reps *. 1e6 in
  Threaded_loop.cache_clear ();
  ignore (Threaded_loop.create specs "aabcab");
  let t0 = Telemetry.Clock.now_s () in
  for _ = 1 to reps do
    ignore (Threaded_loop.create specs "aabcab")
  done;
  let hit_us = (Telemetry.Clock.now_s () -. t0) /. float_of_int reps *. 1e6 in
  Printf.printf
    "compile: %.1f us/nest, cache hit: %.2f us -> %.0fx cheaper (hits %d)\n"
    compile_us hit_us
    (compile_us /. Float.max 1e-3 hit_us)
    (fst (Threaded_loop.cache_stats ()))

let hybrid_scheduling () =
  Modelkit.section "Ablation: static vs dynamic scheduling on hybrid ADL";
  let sh = List.nth Resnet.conv_shapes 4 in
  let dyn =
    Modelkit.parlooper_conv ~platform:Platform.adl ~dtype:Datatype.F32 sh
  in
  let stat =
    Modelkit.onednn_conv ~platform:Platform.adl ~dtype:Datatype.F32 sh
  in
  Printf.printf
    "dynamic (P+E proportional): %.0f GF, static: %.0f GF -> %.2fx\n" dyn stat
    (dyn /. stat)

let model_robustness () =
  Modelkit.section
    "Ablation: perf-model ranking robustness to cache-size error";
  let pts = Fig6.compute ~candidates:10 () in
  let rank = Fig6.best_measured_model_rank pts in
  let perturb scale =
    {
      Platform.host with
      Platform.caches =
        Array.map
          (fun (c : Platform.cache_level) ->
            { c with
              Platform.size_bytes =
                int_of_float (float_of_int c.Platform.size_bytes *. scale) })
          Platform.host.Platform.caches;
    }
  in
  let rank_under platform =
    Fig6.best_measured_model_rank (Fig6.remodel ~platform pts)
  in
  Printf.printf
    "best-measured schedule modeled rank: %d (nominal), %d (caches x0.5), %d \
     (caches x1.5)\n"
    rank
    (rank_under (perturb 0.5))
    (rank_under (perturb 1.5))

let run () =
  blocked_vs_flat ();
  jit_cache_cost ();
  hybrid_scheduling ();
  model_robustness ()

type point = {
  m : int;
  n : int;
  k : int;
  parlooper : float;
  onednn : float;
  tvm : float;
  parlooper_tune_s : float;
  tvm_tune_s : float;
}

(* the four GEMMs of Fig. 4, small to large *)
let shapes = [ (256, 256, 1024); (512, 512, 1024); (1024, 1024, 1024); (4096, 4096, 4096) ]

let n_schedules_for (m, _, _) = if m >= 4096 then 300 else 1000

let compute () =
  let p = Platform.spr in
  let cores = Platform.cores p in
  List.map
    (fun (m, n, k) ->
      let parlooper =
        Modelkit.parlooper_gemm ~platform:p ~nthreads:cores
          ~dtype:Datatype.F32 ~m ~n ~k
      in
      let b = if m >= 1024 then 128 else 64 in
      let cfg =
        Gemm.make_config ~bm:(min b m) ~bn:(min b n) ~bk:(min b k)
          ~k_step:4 ~m ~n ~k ()
      in
      let onednn = Onednn.gemm_gflops ~platform:p ~nthreads:cores cfg in
      let tvm = Tvm.gemm_gflops ~platform:p ~nthreads:cores cfg in
      (* PARLOOPER's tuning cost: actually evaluate the modeled
         candidates on this host and time it *)
      let n_schedules = n_schedules_for (m, n, k) in
      let t0 = Telemetry.Clock.now_s () in
      let report =
        Autotune.tune_gemm ~max_candidates:n_schedules
          (Autotune.Modeled { platform = p; nthreads = cores })
          cfg
      in
      ignore report.Autotune.ranked;
      let parlooper_tune_s = Telemetry.Clock.now_s () -. t0 in
      {
        m;
        n;
        k;
        parlooper;
        onednn;
        tvm;
        parlooper_tune_s;
        tvm_tune_s = Tvm.autotune_seconds ~n_schedules;
      })
    shapes

let run () =
  Modelkit.section
    "Figure 4: FP32 GEMM on SPR - PARLOOPER vs oneDNN vs TVM-Autoscheduler";
  Printf.printf "%-18s %10s %10s %10s %12s %12s %9s\n" "MxKxN" "PARLOOPER"
    "oneDNN" "TVM" "tune PL (s)" "tune TVM (s)" "tune gap";
  let pts = compute () in
  List.iter
    (fun pt ->
      Printf.printf "%6dx%-5dx%-5d %10.0f %10.0f %10.0f %12.2f %12.0f %8.0fx\n"
        pt.m pt.k pt.n pt.parlooper pt.onednn pt.tvm pt.parlooper_tune_s
        pt.tvm_tune_s
        (pt.tvm_tune_s /. Float.max 1e-3 pt.parlooper_tune_s))
    pts;
  let small = List.hd pts and large = List.nth pts 3 in
  Printf.printf
    "small GEMM: PARLOOPER %.2fx over TVM (paper: 1.24x-1.76x); large: %.2fx \
     (paper: comparable)\n"
    (small.parlooper /. small.tvm)
    (large.parlooper /. large.tvm)

(* Global aggregation point. Everything the stack reports at runtime lands
   here: kernel instances accumulate flops/bytes/seconds so achieved GFLOPS
   is derivable, the perf model and tuner deposit predicted-vs-measured
   pairs, and enable/disable/reset fan out to the span and counter stores.
   All entry points are safe to call from any domain or systhread. *)

type kernel_stat = {
  kind : string;  (** "gemm", "conv", "mlp", "spmm" *)
  instance : string;  (** shape/dtype/spec identity, e.g. "512x512x512 f32 BCa" *)
  mutable invocations : int;
  mutable flops : float;
  mutable bytes : float;
  mutable seconds : float;
}

type prediction = {
  pname : string;
  predicted_gflops : float;
  measured_gflops : float;
}

let lock = Mutex.create ()
let kernels : (string * string, kernel_stat) Hashtbl.t = Hashtbl.create 16
let preds : prediction list ref = ref []

(* ---- master switch ---- *)

let enable () = Span.set_enabled true
let disable () = Span.set_enabled false
let enabled () = Span.enabled ()

let with_enabled f =
  enable ();
  Fun.protect ~finally:disable f

(* ---- kernel statistics ---- *)

let record_kernel ~kind ~instance ~flops ~bytes ~seconds =
  Mutex.lock lock;
  let s =
    match Hashtbl.find_opt kernels (kind, instance) with
    | Some s -> s
    | None ->
      let s = { kind; instance; invocations = 0; flops = 0.0; bytes = 0.0;
                seconds = 0.0 }
      in
      Hashtbl.replace kernels (kind, instance) s;
      s
  in
  s.invocations <- s.invocations + 1;
  s.flops <- s.flops +. flops;
  s.bytes <- s.bytes +. bytes;
  s.seconds <- s.seconds +. seconds;
  Mutex.unlock lock

let kernel_stats () =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun _ s acc -> s :: acc) kernels [] in
  Mutex.unlock lock;
  List.sort (fun a b -> compare (a.kind, a.instance) (b.kind, b.instance)) l

let gflops s = if s.seconds > 0.0 then s.flops /. s.seconds /. 1e9 else 0.0

let arithmetic_intensity s =
  if s.bytes > 0.0 then s.flops /. s.bytes else 0.0

(* ---- predicted vs measured ---- *)

let record_prediction ~name ~predicted_gflops ~measured_gflops =
  Mutex.lock lock;
  preds := { pname = name; predicted_gflops; measured_gflops } :: !preds;
  Mutex.unlock lock

let predictions () =
  Mutex.lock lock;
  let l = List.rev !preds in
  Mutex.unlock lock;
  l

(* signed relative model error: positive = model over-predicts *)
let deviation p =
  if p.measured_gflops > 0.0 then
    (p.predicted_gflops -. p.measured_gflops) /. p.measured_gflops
  else 0.0

let mean_abs_deviation ps =
  match ps with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun a p -> a +. Float.abs (deviation p)) 0.0 ps
    /. float_of_int (List.length ps)

(* ---- JIT-cache counter names (owned by Threaded_loop, read by Report) ---- *)

let jit_hits_name = "parlooper.jit.hits"
let jit_misses_name = "parlooper.jit.misses"
let jit_evictions_name = "parlooper.jit.evictions"
let jit_compile_ns_name = "parlooper.jit.compile_ns"
let barrier_wait_ns_name = "parlooper.barrier_wait_ns"

(* ---- persistent worker-pool counter names (owned by Team) ---- *)

let pool_dispatches_name = "parlooper.pool.dispatches"
let pool_reuse_name = "parlooper.pool.worker_reuse"
let pool_spin_name = "parlooper.pool.spin_wakeups"
let pool_park_name = "parlooper.pool.park_wakeups"
let pool_workers_name = "parlooper.pool.workers_spawned"
let pool_dispatch_ns_name = "parlooper.pool.dispatch_ns"

(* ---- scratch-arena counter names (owned by Tpp.Scratch) ---- *)

let arena_hits_name = "tpp.arena.hits"
let arena_misses_name = "tpp.arena.misses"
let arena_bytes_name = "tpp.arena.bytes"

(* ---- fault-injection / robustness counter names ----
   owned by lib/fault (injected), Team (trips/quarantined), Tpp_check
   (numeric errors) and Serve.Scheduler (retries/shed) *)

let fault_injected_name = "fault.injected"
let fault_retries_name = "fault.retries"
let fault_shed_name = "fault.shed"
let watchdog_trips_name = "watchdog.trips"
let pool_quarantined_name = "pool.quarantined"
let numeric_errors_name = "tpp.numeric_errors"

(* ---- tuner counter names ----
   owned by lib/tuner (Search bumps the search counters, Spec_cache the
   cache counters); declared here so Expose consumers and the bench have
   one canonical spelling *)

let tuner_search_generated_name = "tuner.search.generated"
let tuner_search_pruned_name = "tuner.search.pruned"
let tuner_search_scored_name = "tuner.search.scored"
let tuner_search_measured_name = "tuner.search.measured"
let tuner_cache_hits_name = "tuner.cache.hits"
let tuner_cache_misses_name = "tuner.cache.misses"
let tuner_cache_swaps_name = "tuner.cache.swaps"
let tuner_cache_rejected_name = "tuner.cache.rejected"
let tuner_cache_tunes_name = "tuner.cache.tunes"

(* ---- telemetry self-accounting ---- *)

let spans_dropped_name = Span.dropped_name

(* ---- lifecycle ---- *)

let reset () =
  Mutex.lock lock;
  Hashtbl.reset kernels;
  preds := [];
  Mutex.unlock lock;
  Span.reset ();
  Counter.reset_all ();
  Gauge.reset_all ();
  Histogram.reset_all ();
  Recorder.reset ()

(* Named atomic counters, interned in a global table so any domain or
   systhread can increment the same counter without coordination beyond the
   atomic itself. Resetting zeroes values but keeps identities, so modules
   may cache the counter they obtained from [find_or_create]. *)

type t = { name : string; cell : int Atomic.t }

let table : (string, t) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let find_or_create name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt table name with
    | Some c -> c
    | None ->
      let c = { name; cell = Atomic.make 0 } in
      Hashtbl.replace table name c;
      c
  in
  Mutex.unlock lock;
  c

let name t = t.name
let incr t = Atomic.incr t.cell
let add t n = ignore (Atomic.fetch_and_add t.cell n)
let get t = Atomic.get t.cell
let set t v = Atomic.set t.cell v

(* value by name; 0 if the counter was never created *)
let value name =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt table name with
    | Some c -> Atomic.get c.cell
    | None -> 0
  in
  Mutex.unlock lock;
  v

let all () =
  Mutex.lock lock;
  let l =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) table []
  in
  Mutex.unlock lock;
  List.sort compare l

let reset_all () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) table;
  Mutex.unlock lock

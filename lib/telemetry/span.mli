(** Scoped per-thread timers. A span is a closed interval on one logical
    thread's timeline; {!Chrome_trace} renders the collection as a
    per-thread timeline. The global enable flag lives here so the disabled
    path is a single bool load ([with_span] then just calls [f]). *)

type t = {
  name : string;
  cat : string;  (** e.g. ["loop"], ["kernel"] *)
  tid : int;  (** logical thread id; -1 = orchestrating (main) thread *)
  start_ns : int64;
  dur_ns : int64;
  args : (string * float) list;  (** numeric annotations *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

(** The span store is bounded: once [limit ()] spans are held, further
    records are discarded and counted into the counter named
    [dropped_name] ("telemetry.spans.dropped"). {!reset} empties the
    store, re-admitting new spans. *)
val set_limit : int -> unit

val limit : unit -> int
val dropped_name : string

(** Record a finished span (no-op while disabled). *)
val record :
  ?args:(string * float) list ->
  ?cat:string ->
  ?tid:int ->
  name:string ->
  start_ns:int64 ->
  dur_ns:int64 ->
  unit ->
  unit

(** [with_span name f] times [f] and records the span on the way out (also
    on exceptions). While disabled, exactly [f ()]. *)
val with_span :
  ?args:(string * float) list ->
  ?cat:string ->
  ?tid:int ->
  string ->
  (unit -> 'a) ->
  'a

(** All recorded spans, sorted by start time. *)
val all : unit -> t list

val count : unit -> int

(** [(tid, span count)] per thread track, sorted by tid. *)
val by_tid : unit -> (int * int) list

val reset : unit -> unit

(* Live metrics plane: interval snapshots of the counter/gauge stores
   with per-counter deltas and rates, rendered either as one JSON line
   per snapshot (the Serve.Driver live-metrics stream) or as Prometheus
   text exposition (for scraping / humans). Reads the same interned
   stores the runtime writes, so a snapshot is just two sorted assoc
   lists — cheap enough to take every few hundred ms during a serve
   run. *)

type snapshot = {
  at_s : float;  (* Clock.now_s at capture *)
  counters : (string * int) list;
  gauges : (string * int) list;
}

let take () =
  { at_s = Clock.now_s (); counters = Counter.all (); gauges = Gauge.all () }

(* per-counter increase since [prev]; counters absent from [prev] count
   from zero (they were created mid-interval) *)
let deltas ~prev snap =
  List.map
    (fun (n, v) ->
      let p = match List.assoc_opt n prev.counters with
        | Some p -> p
        | None -> 0
      in
      (n, v - p))
    snap.counters

let jsonl ?prev snap =
  let b = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let obj pairs render =
    List.iteri
      (fun i (n, v) ->
        if i > 0 then pr ",";
        pr "\"%s\":%s" (Json_check.escape n) (render v))
      pairs
  in
  pr "{\"at_s\":%s," (Json_check.float_repr snap.at_s);
  pr "\"counters\":{";
  obj snap.counters string_of_int;
  pr "},\"gauges\":{";
  obj snap.gauges string_of_int;
  pr "}";
  (match prev with
  | None -> ()
  | Some prev ->
    let interval = snap.at_s -. prev.at_s in
    let ds = deltas ~prev snap in
    pr ",\"interval_s\":%s" (Json_check.float_repr interval);
    pr ",\"deltas\":{";
    obj ds string_of_int;
    pr "},\"rates\":{";
    obj ds (fun d ->
        Json_check.float_repr
          (if interval > 0.0 then float_of_int d /. interval else 0.0));
    pr "}");
  pr "}";
  Buffer.contents b

(* ---- Prometheus text exposition ---------------------------------------- *)

(* metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prometheus () =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun (n, v) ->
      let m = sanitize n in
      pr "# TYPE %s counter\n%s %d\n" m m v)
    (Counter.all ());
  List.iter
    (fun (n, v) ->
      let m = sanitize n in
      pr "# TYPE %s gauge\n%s %d\n" m m v)
    (Gauge.all ());
  List.iter
    (fun h ->
      if Histogram.count h > 0 then begin
        let m = sanitize (Histogram.name h) in
        pr "# TYPE %s summary\n" m;
        List.iter
          (fun q ->
            pr "%s{quantile=\"%g\"} %s\n" m q
              (Json_check.float_repr (Histogram.quantile h q)))
          [ 0.5; 0.9; 0.95; 0.99 ];
        pr "%s_sum %s\n" m (Json_check.float_repr (Histogram.sum h));
        pr "%s_count %d\n" m (Histogram.count h)
      end)
    (Histogram.all ());
  Buffer.contents b
